// Concurrent operation histories.
//
// A history is the sequence of method-call invocations and responses that
// occur in an execution on an implemented object (paper, Preliminaries).
// We record each completed method call as one Op carrying its process,
// semantic method code, argument, return value, and invocation/response
// timestamps drawn from a monotonic logical clock. The derived happens-
// before order (a precedes b iff a responded before b was invoked) is the
// order linearizability must respect.
//
// Histories are produced by two kinds of harness:
//   - simulator drivers, where timestamps come from SimWorld's logical clock;
//   - native stress tests, where timestamps come from a shared atomic counter
//     sampled at method start and end.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace aba::spec {

// Method codes, shared across specs. Each object family uses its own subset.
enum class Method : std::uint8_t {
  // ABA-detecting register (paper Section 1, "Results").
  kDRead,   // ret = (value, flag) packed via pack_dread_result
  kDWrite,  // arg = value

  // LL/SC/VL object.
  kLL,  // ret = value
  kSC,  // arg = value, ret = 1 (success) or 0 (failure)
  kVL,  // ret = 1 (true) or 0 (false)

  // Plain read/write register (sanity baseline).
  kRead,   // ret = value
  kWrite,  // arg = value

  // LIFO stack / FIFO queue (application structures).
  kPush,  // arg = value, ret = 1 if pushed (0 = full pool)
  kPop,   // ret = pack_opt(value) — 0 means empty
  kEnq,   // arg = value, ret = 1 if enqueued
  kDeq,   // ret = pack_opt(value) — 0 means empty
};

const char* to_string(Method m);

// DRead returns a pair (value, flag); pack it into one word for Op::ret.
constexpr std::uint64_t pack_dread_result(std::uint64_t value, bool flag) {
  return (value << 1) | (flag ? 1u : 0u);
}
constexpr std::uint64_t dread_value(std::uint64_t packed) { return packed >> 1; }
constexpr bool dread_flag(std::uint64_t packed) { return (packed & 1u) != 0; }

// Optional values for Pop/Deq: 0 = empty, otherwise value+1.
constexpr std::uint64_t pack_opt(bool present, std::uint64_t value) {
  return present ? value + 1 : 0;
}

struct Op {
  int pid = -1;
  Method method = Method::kRead;
  std::uint64_t arg = 0;
  std::uint64_t ret = 0;
  std::uint64_t invoke_ts = 0;
  std::uint64_t response_ts = 0;

  std::string to_string() const;
};

// Thread-compatible during simulation (handshake-serialized), internally
// locked so native stress tests can record from many threads.
class History {
 public:
  // Records the invocation; returns the op index to pass to complete().
  std::size_t begin_op(int pid, Method method, std::uint64_t arg,
                       std::uint64_t invoke_ts);

  void complete(std::size_t index, std::uint64_t ret, std::uint64_t response_ts);

  // All ops must be complete before calling ops().
  std::vector<Op> ops() const;

  // The completed subset, for crash executions: a process killed mid-method
  // leaves its last op pending forever. Standard linearizability treats
  // pending ops as optionally includable; the crash tests use the completed
  // prefix plus structure-side accounting for the pending effect.
  std::vector<Op> completed_ops() const;

  // The incomplete subset — what the crashed processes were doing. The
  // conservation checker credits a crashed victim's pending put (its effect
  // may have landed without the op completing), so a survivor legitimately
  // taking that value is not a violation.
  std::vector<Op> pending_ops() const;

  std::size_t size() const;
  void clear();

  std::string to_string() const;

 private:
  struct Slot {
    Op op;
    bool complete = false;
  };

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
};

}  // namespace aba::spec
