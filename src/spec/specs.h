// Sequential specifications.
//
// Each spec models the object's sequential behaviour as a value-semantic
// state (a flat vector of words, so states can be encoded and memoized by
// the linearizability checker) plus an `apply` function that checks whether
// an operation with its recorded response is legal from a state and, if so,
// advances the state.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "spec/history.h"

namespace aba::spec {

// ---------------------------------------------------------------------------
// ABA-detecting register (single- or multi-writer; the spec doesn't care who
// writes). State: value, and one dirty flag per process. DWrite(x) by anyone
// sets the value and marks every process dirty; DRead by q must return
// (value, dirty[q]) and clears q's flag. A DRead before any DWrite returns
// the initial value with flag false.
// ---------------------------------------------------------------------------
struct AbaRegisterSpec {
  using State = std::vector<std::uint64_t>;  // [value, dirty_0, ..., dirty_{n-1}]

  static State initial(int n, std::uint64_t initial_value) {
    State s(static_cast<std::size_t>(n) + 1, 0);
    s[0] = initial_value;
    return s;
  }

  static bool apply(State& s, const Op& op) {
    switch (op.method) {
      case Method::kDWrite: {
        s[0] = op.arg;
        for (std::size_t i = 1; i < s.size(); ++i) s[i] = 1;
        return true;
      }
      case Method::kDRead: {
        const std::size_t q = static_cast<std::size_t>(op.pid) + 1;
        const bool dirty = s[q] != 0;
        if (op.ret != pack_dread_result(s[0], dirty)) return false;
        s[q] = 0;
        return true;
      }
      default:
        return false;
    }
  }
};

// ---------------------------------------------------------------------------
// LL/SC/VL object. State: value plus one "valid link" bit per process.
// LL by p returns the value and validates p's link. SC(x) by p succeeds iff
// p's link is valid (no successful SC since p's last LL); a successful SC
// writes x and invalidates every link. VL by p reports p's link validity and
// changes nothing.
//
// `initially_linked` controls the links' initial state. The paper (Fig. 5
// footnote) assumes w.l.o.g. that a VL before any LL succeeds while no SC
// has been executed, i.e. initially-linked semantics; the stand-alone Fig. 3
// object is also exercised with initially-unlinked semantics.
// ---------------------------------------------------------------------------
struct LlscSpec {
  using State = std::vector<std::uint64_t>;  // [value, valid_0, ..., valid_{n-1}]

  static State initial(int n, std::uint64_t initial_value, bool initially_linked) {
    State s(static_cast<std::size_t>(n) + 1, initially_linked ? 1 : 0);
    s[0] = initial_value;
    return s;
  }

  static bool apply(State& s, const Op& op) {
    const std::size_t p = static_cast<std::size_t>(op.pid) + 1;
    switch (op.method) {
      case Method::kLL: {
        if (op.ret != s[0]) return false;
        s[p] = 1;
        return true;
      }
      case Method::kSC: {
        const bool can_succeed = s[p] != 0;
        if (op.ret == 1) {
          if (!can_succeed) return false;
          s[0] = op.arg;
          for (std::size_t i = 1; i < s.size(); ++i) s[i] = 0;
          return true;
        }
        // A failed SC is legal only if p's link is broken.
        return !can_succeed;
      }
      case Method::kVL: {
        return op.ret == (s[p] != 0 ? 1u : 0u);
      }
      default:
        return false;
    }
  }
};

// ---------------------------------------------------------------------------
// Plain atomic register (sanity checks for the harness itself).
// ---------------------------------------------------------------------------
struct RegisterSpec {
  using State = std::vector<std::uint64_t>;  // [value]

  static State initial(std::uint64_t initial_value) { return {initial_value}; }

  static bool apply(State& s, const Op& op) {
    switch (op.method) {
      case Method::kWrite:
        s[0] = op.arg;
        return true;
      case Method::kRead:
        return op.ret == s[0];
      default:
        return false;
    }
  }
};

// ---------------------------------------------------------------------------
// LIFO stack over uint64 values (bounded-pool push may report full).
// State encoding: [depth, v_0 ... v_{depth-1}] with v_0 the bottom.
// ---------------------------------------------------------------------------
struct StackSpec {
  using State = std::vector<std::uint64_t>;

  static State initial() { return {0}; }

  static bool apply(State& s, const Op& op) {
    switch (op.method) {
      case Method::kPush: {
        if (op.ret == 0) return true;  // Pool exhaustion may legally refuse.
        s.push_back(op.arg);
        ++s[0];
        return true;
      }
      case Method::kPop: {
        if (s[0] == 0) return op.ret == pack_opt(false, 0);
        if (op.ret != pack_opt(true, s.back())) return false;
        s.pop_back();
        --s[0];
        return true;
      }
      default:
        return false;
    }
  }
};

// ---------------------------------------------------------------------------
// FIFO queue over uint64 values.
// State encoding: [length, v_0 ... v_{len-1}] with v_0 the head.
// ---------------------------------------------------------------------------
struct QueueSpec {
  using State = std::vector<std::uint64_t>;

  static State initial() { return {0}; }

  static bool apply(State& s, const Op& op) {
    switch (op.method) {
      case Method::kEnq: {
        if (op.ret == 0) return true;  // Pool exhaustion may legally refuse.
        s.push_back(op.arg);
        ++s[0];
        return true;
      }
      case Method::kDeq: {
        if (s[0] == 0) return op.ret == pack_opt(false, 0);
        if (op.ret != pack_opt(true, s[1])) return false;
        s.erase(s.begin() + 1);
        --s[0];
        return true;
      }
      default:
        return false;
    }
  }
};

// ---------------------------------------------------------------------------
// Bounded FIFO queue (the ring-buffer family). Unlike QueueSpec, capacity is
// ABSTRACT STATE: a refused enqueue (ret == 0) is legal only when the queue
// holds exactly `capacity` elements — there is no pool-exhaustion escape
// hatch. This is the spec that distinguishes a ring whose full/empty refusal
// is anchored to a fresh position read (linearizable) from one that refuses
// off a stale slot-sequence observation (not linearizable; see the refusal
// contract in structures/ring_buffer.h).
// State encoding: [capacity, length, v_0 ... v_{len-1}] with v_0 the head.
// ---------------------------------------------------------------------------
struct BoundedQueueSpec {
  using State = std::vector<std::uint64_t>;

  static State initial(std::uint64_t capacity) { return {capacity, 0}; }

  static bool apply(State& s, const Op& op) {
    switch (op.method) {
      case Method::kEnq: {
        if (op.ret == 0) return s[1] == s[0];  // "Full" must mean full.
        if (s[1] == s[0]) return false;        // No overfill either.
        s.push_back(op.arg);
        ++s[1];
        return true;
      }
      case Method::kDeq: {
        if (s[1] == 0) return op.ret == pack_opt(false, 0);
        if (op.ret != pack_opt(true, s[2])) return false;
        s.erase(s.begin() + 2);
        --s[1];
        return true;
      }
      default:
        return false;
    }
  }
};

}  // namespace aba::spec
