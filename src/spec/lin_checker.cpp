#include "spec/lin_checker.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "util/assert.h"

namespace aba::spec {

const char* to_string(Method m) {
  switch (m) {
    case Method::kDRead: return "DRead";
    case Method::kDWrite: return "DWrite";
    case Method::kLL: return "LL";
    case Method::kSC: return "SC";
    case Method::kVL: return "VL";
    case Method::kRead: return "Read";
    case Method::kWrite: return "Write";
    case Method::kPush: return "Push";
    case Method::kPop: return "Pop";
    case Method::kEnq: return "Enq";
    case Method::kDeq: return "Deq";
  }
  return "?";
}

std::string Op::to_string() const {
  std::ostringstream out;
  out << "p" << pid << "." << spec::to_string(method) << "(";
  switch (method) {
    case Method::kDWrite:
    case Method::kWrite:
    case Method::kSC:
    case Method::kPush:
    case Method::kEnq:
      out << arg;
      break;
    default:
      break;
  }
  out << ")";
  switch (method) {
    case Method::kDRead:
      out << " -> (" << dread_value(ret) << ", " << (dread_flag(ret) ? "T" : "F")
          << ")";
      break;
    case Method::kLL:
    case Method::kRead:
      out << " -> " << ret;
      break;
    case Method::kSC:
    case Method::kVL:
      out << " -> " << (ret != 0 ? "T" : "F");
      break;
    case Method::kPop:
    case Method::kDeq:
      out << " -> " << (ret == 0 ? "empty" : std::to_string(ret - 1));
      break;
    default:
      break;
  }
  out << " [" << invoke_ts << "," << response_ts << "]";
  return out.str();
}

std::size_t History::begin_op(int pid, Method method, std::uint64_t arg,
                              std::uint64_t invoke_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot slot;
  slot.op.pid = pid;
  slot.op.method = method;
  slot.op.arg = arg;
  slot.op.invoke_ts = invoke_ts;
  slots_.push_back(slot);
  return slots_.size() - 1;
}

void History::complete(std::size_t index, std::uint64_t ret,
                       std::uint64_t response_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  ABA_ASSERT(index < slots_.size());
  ABA_ASSERT_MSG(!slots_[index].complete, "operation completed twice");
  slots_[index].op.ret = ret;
  slots_[index].op.response_ts = response_ts;
  slots_[index].complete = true;
}

std::vector<Op> History::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Op> result;
  result.reserve(slots_.size());
  for (const auto& slot : slots_) {
    ABA_ASSERT_MSG(slot.complete,
                   "history contains a pending operation; linearizability "
                   "checking requires complete histories");
    result.push_back(slot.op);
  }
  return result;
}

std::vector<Op> History::completed_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Op> result;
  result.reserve(slots_.size());
  for (const auto& slot : slots_) {
    if (slot.complete) result.push_back(slot.op);
  }
  return result;
}

std::vector<Op> History::pending_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Op> result;
  for (const auto& slot : slots_) {
    if (!slot.complete) result.push_back(slot.op);
  }
  return result;
}

std::size_t History::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

void History::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
}

std::string History::to_string() const {
  std::ostringstream out;
  for (const auto& op : ops()) out << op.to_string() << "\n";
  return out.str();
}

namespace {

// Exact memo key: chosen-set mask followed by the state words, rendered into
// a byte string. Exactness matters — a hash collision could make the checker
// wrongly report a linearizable history as non-linearizable.
std::string memo_key(std::uint64_t mask, const std::vector<std::uint64_t>& state) {
  std::string key;
  key.reserve((state.size() + 1) * sizeof(std::uint64_t));
  auto append = [&key](std::uint64_t w) {
    key.append(reinterpret_cast<const char*>(&w), sizeof w);
  };
  append(mask);
  for (std::uint64_t w : state) append(w);
  return key;
}

struct Searcher {
  const std::vector<Op>& ops;
  const std::function<bool(std::vector<std::uint64_t>&, const Op&)>& apply;
  // Per-process program order: op indices sorted by invocation time.
  std::vector<std::vector<std::size_t>> per_process;
  std::vector<std::size_t> next_of_process;
  std::unordered_set<std::string> visited;
  std::vector<std::size_t> chosen;
  std::uint64_t nodes = 0;

  bool dfs(std::uint64_t mask, std::vector<std::uint64_t>& state) {
    ++nodes;
    if (chosen.size() == ops.size()) return true;
    if (!visited.insert(memo_key(mask, state)).second) return false;

    // A candidate may be linearized next iff no *other* unchosen operation
    // responded before the candidate was invoked (happens-before minimality).
    // Track the two smallest response times among unchosen ops so that each
    // candidate can exclude itself from the minimum.
    std::uint64_t min_resp = ~0ULL;
    std::uint64_t second_resp = ~0ULL;
    std::size_t min_idx = ops.size();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (mask & (1ULL << i)) continue;
      if (ops[i].response_ts < min_resp) {
        second_resp = min_resp;
        min_resp = ops[i].response_ts;
        min_idx = i;
      } else if (ops[i].response_ts < second_resp) {
        second_resp = ops[i].response_ts;
      }
    }

    for (std::size_t p = 0; p < per_process.size(); ++p) {
      if (next_of_process[p] >= per_process[p].size()) continue;
      const std::size_t cand = per_process[p][next_of_process[p]];
      if (mask & (1ULL << cand)) continue;
      const std::uint64_t min_resp_excl = (cand == min_idx) ? second_resp : min_resp;
      if (ops[cand].invoke_ts > min_resp_excl) continue;

      std::vector<std::uint64_t> next_state = state;
      if (!apply(next_state, ops[cand])) continue;

      chosen.push_back(cand);
      ++next_of_process[p];
      if (dfs(mask | (1ULL << cand), next_state)) return true;
      --next_of_process[p];
      chosen.pop_back();
    }
    return false;
  }
};

}  // namespace

LinResult check_linearizable(
    const std::vector<Op>& ops, std::vector<std::uint64_t> initial_state,
    const std::function<bool(std::vector<std::uint64_t>&, const Op&)>& apply) {
  ABA_ASSERT_MSG(ops.size() <= 64, "checker supports at most 64 operations");

  int max_pid = -1;
  for (const auto& op : ops) max_pid = std::max(max_pid, op.pid);

  Searcher searcher{ops, apply, {}, {}, {}, {}, 0};
  searcher.per_process.resize(static_cast<std::size_t>(max_pid) + 1);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    searcher.per_process[ops[i].pid].push_back(i);
  }
  for (auto& list : searcher.per_process) {
    std::sort(list.begin(), list.end(), [&](std::size_t a, std::size_t b) {
      return ops[a].invoke_ts < ops[b].invoke_ts;
    });
    // Program order sanity: operations of one process must not overlap.
    for (std::size_t i = 1; i < list.size(); ++i) {
      ABA_ASSERT_MSG(ops[list[i - 1]].response_ts < ops[list[i]].invoke_ts,
                     "operations of a single process overlap");
    }
  }
  searcher.next_of_process.assign(searcher.per_process.size(), 0);

  LinResult result;
  std::vector<std::uint64_t> state = std::move(initial_state);
  result.linearizable = searcher.dfs(0, state);
  result.nodes = searcher.nodes;
  if (result.linearizable) result.witness = searcher.chosen;
  return result;
}

std::string explain(const std::vector<Op>& ops, const LinResult& result) {
  std::ostringstream out;
  if (result.linearizable) {
    out << "linearizable; witness order:\n";
    for (std::size_t idx : result.witness) out << "  " << ops[idx].to_string() << "\n";
  } else {
    out << "NOT linearizable (" << result.nodes << " nodes searched); history:\n";
    for (const auto& op : ops) out << "  " << op.to_string() << "\n";
  }
  return out.str();
}

}  // namespace aba::spec
