// Linearizability checker (Wing–Gong / Lowe style).
//
// Given a complete concurrent history and a sequential specification, the
// checker searches for a linearization: a total order of the operations that
// (a) respects the history's happens-before order (op a precedes op b if a
// responded before b was invoked) and (b) is a legal sequential execution of
// the spec, with every operation's recorded response.
//
// The search is exponential in the worst case; states reached by distinct
// linearization prefixes are memoized on (chosen-operation set, exact state
// encoding), which makes the checker fast on the small-to-medium histories
// our property tests generate (up to 64 operations).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "spec/history.h"

namespace aba::spec {

struct LinResult {
  bool linearizable = false;
  // If linearizable, the witness order (indices into the checked ops vector).
  std::vector<std::size_t> witness;
  // Number of search nodes expanded (for diagnostics / bench reporting).
  std::uint64_t nodes = 0;

  explicit operator bool() const { return linearizable; }
};

// Generic checker. `State` must be std::vector<uint64_t>;
// `apply(state, op)` returns whether op (with its recorded response) is legal
// from `state` and advances it in place.
LinResult check_linearizable(
    const std::vector<Op>& ops, std::vector<std::uint64_t> initial_state,
    const std::function<bool(std::vector<std::uint64_t>&, const Op&)>& apply);

// Convenience wrapper for spec structs with a static `apply`.
template <class Spec>
LinResult check_linearizable(const std::vector<Op>& ops,
                             typename Spec::State initial_state) {
  return check_linearizable(
      ops, std::move(initial_state),
      [](std::vector<std::uint64_t>& s, const Op& op) { return Spec::apply(s, op); });
}

// Renders a human-readable witness or failure explanation, for diagnostics.
std::string explain(const std::vector<Op>& ops, const LinResult& result);

}  // namespace aba::spec
