// TaggedReclaimer — immediate FIFO reuse; ABA safety is delegated to the
// CAS site.
//
// A retired node index goes straight back onto the retiring process's free
// list and is handed out by its next allocate. This is the reuse discipline
// of classic tag-based lock-free code (the practice the paper critiques):
// nothing prevents a node from reappearing under the same index while a
// slow reader still holds a stale snapshot, so the structure's CAS word
// must detect the recycling itself — a bounded tag (TaggedCasHead, the MS
// queue's packed (index, tag) words via util/packed_word.h idioms) or an
// LL/SC head. With k tag bits the protection is only probabilistic: E7
// measures the 2^k escape threshold, and the 1-bit-tag test in
// tests/test_structures.cpp drives the wraparound deterministically.
//
// Paired with RawCasHead this is the deliberately ABA-vulnerable
// configuration (the deterministic corruption schedule in the tests).
//
// Zero overhead: no shared state, no guards, allocate/retire are
// thread-private deque operations — the step sequence of the resulting
// structure is exactly the paper's pseudo-code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "core/platform.h"
#include "reclaim/reclaimer.h"
#include "util/assert.h"
#include "util/cacheline.h"

namespace aba::reclaim {

template <Platform P>
class TaggedReclaimer {
 public:
  static constexpr const char* kName = "tagged";
  static constexpr bool kNeedsGuard = false;

  TaggedReclaimer(typename P::Env&, int n, FreeLists initial_free)
      : procs_(static_cast<std::size_t>(n)) {
    ABA_CHECK(static_cast<int>(initial_free.size()) == n);
    for (int p = 0; p < n; ++p) {
      procs_[p].free = std::move(initial_free[p]);
      pool_size_ += procs_[p].free.size();
    }
  }

  void begin_op(int /*p*/) {}
  void guard(int /*p*/, int /*slot*/, std::uint64_t /*idx*/) {}
  void end_op(int /*p*/) {}

  std::optional<std::uint64_t> allocate(int p) {
    auto& free = procs_[p].free;
    if (free.empty()) return std::nullopt;
    const std::uint64_t idx = free.front();  // FIFO: maximizes reuse churn.
    free.pop_front();
    return idx;
  }

  void retire(int p, std::uint64_t idx) { procs_[p].free.push_back(idx); }

  // Default-forward of the concept's batched verb: retire here is already
  // zero shared steps, so there is nothing to amortize.
  void retire_batch(int p, const std::uint64_t* idxs, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) retire(p, idxs[i]);
  }

  std::size_t pool_size() const { return pool_size_; }
  std::size_t unreclaimed(int /*p*/) const { return 0; }
  std::size_t free_count(int p) const { return procs_[p].free.size(); }

  // Immediate reuse holds nothing back, so the only live statistic is pool
  // occupancy; there is no protected region to phase-track.
  ReclaimStats stats() const {
    ReclaimStats s;
    s.pool_size = pool_size_;
    for (const auto& proc : procs_) s.free_nodes += proc.free.size();
    return s;
  }
  ReclaimPhase phase(int /*p*/) const { return ReclaimPhase::kIdle; }

  // All hidden state is the free lists: their *order* decides which index
  // the next allocate recycles, so it is part of the model-checker key.
  std::uint64_t fingerprint() const {
    Fingerprint fp;
    for (const auto& proc : procs_) fp.mix_range(proc.free);
    return fp.value();
  }

 private:
  // One cache line per process: the free-list header is touched on every
  // allocate/retire and must not false-share with its neighbours.
  struct alignas(util::kCacheLineSize) PerProcess {
    std::deque<std::uint64_t> free;
  };

  std::vector<PerProcess> procs_;
  std::size_t pool_size_ = 0;
};

}  // namespace aba::reclaim
