// The Reclaimer concept — pluggable node-reuse policies for the index-based
// lock-free structures.
//
// The paper frames lock-free data structures as choosing among answers to
// the ABA problem: bounded tags (cheap, probabilistically correct), LL/SC
// (immune at the word, which the paper constructs from bounded CAS), or
// application-specific memory reclamation such as hazard pointers. In this
// repository the *structures* own the CAS-site policy (RawCasHead /
// TaggedCasHead / LlscHead, or the MS queue's internal tags) and a
// Reclaimer owns the orthogonal axis: when a retired node index may be
// handed out again. Five policies implement the concept:
//
//   TaggedReclaimer        — immediate FIFO reuse; safety is delegated to a
//                            bounded-tag (or LL/SC) CAS site. The regime the
//                            paper critiques as only probabilistically
//                            correct (E7 quantifies the escape probability).
//   LeakyReclaimer         — retired nodes are never reused. The no-free
//                            baseline: trivially ABA-immune (an index never
//                            reappears) and the throughput floor benches
//                            compare against.
//   HazardPointerReclaimer — per-process hazard slots; reuse of a retired
//                            node is deferred until no slot guards it
//                            (Michael). Bounded unreclaimed garbage. Its
//                            CachedGuards mode (alias
//                            CachedHazardPointerReclaimer, "hazard_cached")
//                            keeps slots published across operations so a
//                            repeat guard costs zero shared steps; see
//                            hazard_pointer.h for the detach contract.
//   EpochBasedReclaimer    — per-process epoch announcements against a
//                            global epoch; reuse is deferred two epoch
//                            advances. Amortized O(1) retire, but a single
//                            stalled reader blocks reclamation system-wide.
//                            Its DeferredAnnounce mode (alias
//                            DeferredEpochReclaimer, "epoch_deferred")
//                            caches the announcement across operations and
//                            batches retires through a per-process ring —
//                            one shared read per op steady-state, with the
//                            StoreLoad heavy side carried by the advance
//                            path (see epoch.h for the detach contract).
//
// All four operate on *node indices* into a fixed pool, not raw pointers,
// so they run unchanged on the simulator (every shared access a scheduled,
// traceable step — this is how the linearizability suite checks each
// platform × reclaimer combination) and natively. Shared state lives in
// Platform objects; per-process bookkeeping (retired/limbo lists, free
// lists) is thread-private plain memory, which costs no shared steps.
//
// The protocol a structure follows (see treiber_stack.h / ms_queue.h):
//
//   allocate(p)        — outside any begin_op/end_op region: obtain a node
//                        index whose reuse is safe, or nullopt under pool
//                        pressure. May reclaim internally (hazard scan,
//                        epoch flush).
//   begin_op(p)        — enter a protected region (epoch announce; no-op
//                        for the others).
//   guard(p, slot, i)  — publish intent to dereference node i. Only needed
//                        when kNeedsGuard; the structure must re-validate
//                        its source word after the publish (the classic
//                        publish-then-revalidate handshake) before trusting
//                        node i's fields.
//   end_op(p)          — leave the region, clearing any guards this op set
//                        (the cached-guard hazard mode deliberately leaves
//                        them published; detach(p) is its release point).
//   retire(p, i)       — after end_op: node i was unlinked by p's CAS and
//                        may be recycled once the policy's safety condition
//                        holds.
//   retire_batch(p, v, n) — retire n unlinked nodes in one call. Policies
//                        with a per-retire shared cost (epoch's stamp read,
//                        hazard's threshold check) amortize it over the
//                        batch; tagged/leaky default-forward to a retire()
//                        loop (their retire is already zero shared steps).
//
// kNeedsGuard lets no-guard policies compile the publish/revalidate steps
// out entirely (if constexpr), so the Tagged/Leaky fast paths execute the
// exact step sequence of the paper's pseudo-code — the deterministic
// step-counted schedules in the test suite rely on that.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/platform.h"

namespace aba::reclaim {

// Per-process initial free lists of 0-based node indices; the pool size is
// their total. Every reclaimer is constructed from (Env&, n, FreeLists).
using FreeLists = std::vector<std::deque<std::uint64_t>>;

// Where a process currently stands in its reclaimer's protocol. The value
// is thread-private bookkeeping (updated by p's own calls, read by the
// engine while every simulated process is parked at an announcement), so
// querying it costs no shared steps and cannot perturb a schedule. The
// schedule-search engine (sim/schedule_search.h) uses it to park a process
// at exactly the step the retire-bound arguments care about: a hazard guard
// that has just become visible, or an epoch announcement that now pins the
// global epoch.
enum class ReclaimPhase : std::uint8_t {
  kIdle,            // Not inside any protected region.
  kInRegion,        // begin_op ran; nothing vulnerable published yet.
  kGuardPublished,  // Hazard: a slot write is visible; the structure is
                    // about to revalidate — parking here pins the node.
  kEpochAnnounced,  // Epoch: the announcement is written; parking here
                    // freezes the global epoch for the region's duration.
  kMidRetire,       // Inside retire(), including any triggered scan.
  kMidAllocate,     // Crash-marked allocation window (leased reclaimers):
                    // in_flight[p] is set and the node is off the free list
                    // but commit(p) has not yet cleared the marker — a kill
                    // here is what the quarantine rule exists for.
};

// The phases a parked process turns into a reclamation attack.
constexpr bool is_vulnerable(ReclaimPhase phase) {
  return phase == ReclaimPhase::kGuardPublished ||
         phase == ReclaimPhase::kEpochAnnounced;
}

inline const char* to_string(ReclaimPhase phase) {
  switch (phase) {
    case ReclaimPhase::kIdle: return "idle";
    case ReclaimPhase::kInRegion: return "in-region";
    case ReclaimPhase::kGuardPublished: return "guard-published";
    case ReclaimPhase::kEpochAnnounced: return "epoch-announced";
    case ReclaimPhase::kMidRetire: return "mid-retire";
    case ReclaimPhase::kMidAllocate: return "mid-allocate";
  }
  return "?";
}

// Aggregate reclamation damage, sampled by the engine between steps. Like
// ReclaimPhase this is computed from thread-private bookkeeping (plus, for
// the epoch lag, relaxed mirror fields maintained at the write sites), so
// sampling it costs no shared steps on either platform. The schedule-search
// cost functions are thin projections of this struct.
struct ReclaimStats {
  std::size_t retired_unreclaimed = 0;  // Sum over processes: retired/limbo.
  std::size_t free_nodes = 0;           // Sum over free lists.
  std::size_t pool_size = 0;
  std::size_t guard_slots_occupied = 0;  // Hazard modes: published slots.
  std::uint64_t epoch_lag = 0;  // Epoch: global - oldest active announcement.
  // Crash-robustness accounting (reclaim/death.h). Quarantined nodes are a
  // dead process's in-flight allocations — possibly linked, so never reused;
  // at most one per crash. in_flight counts live allocated-but-unlinked
  // nodes; expropriations counts confirmed dead-lease drains by survivors.
  std::size_t quarantined = 0;
  std::size_t in_flight = 0;
  std::size_t expropriations = 0;

  ReclaimStats& operator+=(const ReclaimStats& o) {
    retired_unreclaimed += o.retired_unreclaimed;
    free_nodes += o.free_nodes;
    pool_size += o.pool_size;
    guard_slots_occupied += o.guard_slots_occupied;
    if (o.epoch_lag > epoch_lag) epoch_lag = o.epoch_lag;
    quarantined += o.quarantined;
    in_flight += o.in_flight;
    expropriations += o.expropriations;
    return *this;
  }
};

// Order-sensitive FNV-1a accumulator over 64-bit words. Reclaimers use it
// to expose a fingerprint() of their thread-private bookkeeping (free-list
// order, retired/limbo contents, published guards, in-flight markers) —
// state that SimWorld::signature_key() deliberately omits but that decides
// every future allocation and scan. The schedule-search engine folds the
// fingerprint into its DPOR state key so two configurations are merged only
// when their *reclamation futures* are identical too, not just their shared
// memory. Like ReclaimStats, computing it reads thread-private bookkeeping
// while all simulated processes are parked: no shared steps, no schedule
// perturbation.
class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t word) {
    hash_ ^= word;
    hash_ *= 0x100000001b3ull;
    return *this;
  }

  // Length-prefixed so adjacent ranges cannot alias ([1],[2] vs [1,2]).
  template <class Range>
  Fingerprint& mix_range(const Range& range) {
    mix(static_cast<std::uint64_t>(range.size()));
    for (const auto& word : range) mix(static_cast<std::uint64_t>(word));
    return *this;
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

template <class R, class P>
concept ReclaimerFor =
    Platform<P> &&
    std::constructible_from<R, typename P::Env&, int, FreeLists> &&
    requires(R r, const R cr, int p, std::uint64_t idx,
             const std::uint64_t* idxs, std::size_t count) {
      { R::kName } -> std::convertible_to<const char*>;
      { R::kNeedsGuard } -> std::convertible_to<bool>;
      { r.begin_op(p) } -> std::same_as<void>;
      { r.guard(p, 0, idx) } -> std::same_as<void>;
      { r.end_op(p) } -> std::same_as<void>;
      { r.allocate(p) } -> std::same_as<std::optional<std::uint64_t>>;
      { r.retire(p, idx) } -> std::same_as<void>;
      { r.retire_batch(p, idxs, count) } -> std::same_as<void>;
      { cr.pool_size() } -> std::same_as<std::size_t>;
      { cr.unreclaimed(p) } -> std::same_as<std::size_t>;
      { cr.stats() } -> std::same_as<ReclaimStats>;
      { cr.phase(p) } -> std::same_as<ReclaimPhase>;
    };

}  // namespace aba::reclaim
