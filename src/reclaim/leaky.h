// LeakyReclaimer — the no-free baseline: retired nodes are never reused.
//
// Every allocate consumes a fresh index from the initial pool and retire
// only counts. Because an index never reappears, the pointer-recycling ABA
// is impossible by construction even under a raw CAS head — this is the
// "infinite tags / never reuse memory" idealization the paper's unbounded
// constructions assume away, made runnable. The price is unbounded space:
// a workload of W pushes needs a pool of W nodes, after which push reports
// pool pressure.
//
// Benches use it as the reclamation-cost floor: the delta between leaky and
// any real reclaimer is the price of that reclaimer's bookkeeping (tags:
// none; hazard: publish + fence + scans; epoch: announce + advance). Leaky
// bench cells are drain-limited — they end when the pool runs out — and the
// JSON pipeline records the actual measured ops and seconds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "core/platform.h"
#include "reclaim/reclaimer.h"
#include "util/assert.h"
#include "util/cacheline.h"

namespace aba::reclaim {

template <Platform P>
class LeakyReclaimer {
 public:
  static constexpr const char* kName = "leaky";
  static constexpr bool kNeedsGuard = false;

  LeakyReclaimer(typename P::Env&, int n, FreeLists initial_free)
      : procs_(static_cast<std::size_t>(n)) {
    ABA_CHECK(static_cast<int>(initial_free.size()) == n);
    for (int p = 0; p < n; ++p) {
      procs_[p].free = std::move(initial_free[p]);
      pool_size_ += procs_[p].free.size();
    }
  }

  void begin_op(int /*p*/) {}
  void guard(int /*p*/, int /*slot*/, std::uint64_t /*idx*/) {}
  void end_op(int /*p*/) {}

  std::optional<std::uint64_t> allocate(int p) {
    auto& free = procs_[p].free;
    if (free.empty()) return std::nullopt;
    const std::uint64_t idx = free.front();
    free.pop_front();
    return idx;
  }

  // The index is abandoned: safe (it can never ABA) but gone for good.
  void retire(int p, std::uint64_t /*idx*/) { ++procs_[p].leaked; }

  // Default-forward of the concept's batched verb (nothing to amortize).
  void retire_batch(int p, const std::uint64_t* idxs, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) retire(p, idxs[i]);
  }

  std::size_t pool_size() const { return pool_size_; }
  std::size_t unreclaimed(int p) const { return procs_[p].leaked; }
  std::size_t free_count(int p) const { return procs_[p].free.size(); }

  // Leaked nodes count as retired-but-unreclaimed: they are exactly the
  // garbage this baseline never collects (no regions, no phases).
  ReclaimStats stats() const {
    ReclaimStats s;
    s.pool_size = pool_size_;
    for (const auto& proc : procs_) {
      s.free_nodes += proc.free.size();
      s.retired_unreclaimed += proc.leaked;
    }
    return s;
  }
  ReclaimPhase phase(int /*p*/) const { return ReclaimPhase::kIdle; }

  // Free-list order plus the leak counters: everything the next allocate
  // (and the stats the search engine scores) can depend on.
  std::uint64_t fingerprint() const {
    Fingerprint fp;
    for (const auto& proc : procs_) {
      fp.mix_range(proc.free);
      fp.mix(proc.leaked);
    }
    return fp.value();
  }

 private:
  // One cache line per process: allocate/retire touch these fields on the
  // hot path and must not false-share with neighbouring processes.
  struct alignas(util::kCacheLineSize) PerProcess {
    std::deque<std::uint64_t> free;
    std::size_t leaked = 0;
  };

  std::vector<PerProcess> procs_;
  std::size_t pool_size_ = 0;
};

}  // namespace aba::reclaim
