// The mutant zoo — deliberately-broken reclamation variants for mutation
// testing the spec-driven schedule search. Two families live here:
//
//   * MutantTaggedReclaimer — the in-process reuse-ABA mutant (below).
//   * LeaseMutation — one-decision mutations of the crash-robust leased
//     tier (shm/pid_lease.h + shm/leased_reclaimer.h). The shm classes
//     accept a LeaseMutation and flip exactly one branch of the death
//     handshake; kNone is the shipped behavior. The sim-hosted fixtures
//     (sim/sim_lease.h, reclaim_fixture names stack_leased_mutant_*) are
//     the only place a non-kNone value is ever constructed.
//
// Never use any of this outside tests; it exists to be caught.
//
// MutantTaggedReclaimer — a deliberately-broken reclaimer for mutation
// testing the spec-driven schedule search.
//
// The correct tag-based configuration in this repository is immediate FIFO
// reuse (TaggedReclaimer) paired with a CAS site that bumps a version on
// every successful swing (TaggedCasHead::try_swing — the bump is what turns
// a recycled index into a visibly different CAS word). This mutant keeps
// the immediate-reuse discipline but its fixture wires it to a RawCasHead:
// the version bump is skipped at the one site that needed it, so a node
// index can reappear under a bit-identical head word while a parked reader
// still holds a stale snapshot — the textbook pointer-recycling ABA.
//
// Under the search engine's storm workload the failure is reachable in a
// handful of grants: park a reader mid-pop between its head read and its
// CAS, drain the stack, push a value that recycles the parked reader's
// snapshot index, and the reader's CAS succeeds against a freed node — the
// next take returns a value that was never (or already) taken, which the
// StackSpec/QueueSpec linearizability checkers reject. The mutation test
// (tests/test_model_check.cpp) asserts the spec-driven search catches this
// within a small budget while all five real reclaimers survive the same
// budget on the same workload — the contrast that proves the searcher hunts
// correctness, not just reclamation cost.
//
// Never use this outside tests; it exists to be caught.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "core/platform.h"
#include "reclaim/reclaimer.h"
#include "util/assert.h"
#include "util/cacheline.h"

namespace aba::reclaim {

// The lease-mutant zoo: each value names ONE removed safety decision in the
// leased tier's suspect/confirm expropriation machinery. The conviction
// channel for each (the workload/crash pattern a bounded DPOR search uses
// to produce a spec violation) is documented in docs/RECLAMATION.md and
// asserted by LeaseMutantCatch.* in tests/test_model_check.cpp; the identical
// search budget must leave every kNone (shipped) leased fixture clean.
enum class LeaseMutation : std::uint8_t {
  kNone = 0,         // Shipped behavior.
  kStaleConfirm,     // PidLeaseTable::advance_death confirms a kSuspect
                     // lease on staleness alone — it skips the second
                     // gone-AND-heartbeat-unmoved pass, so a live-but-slow
                     // (parked) process can be confirmed dead and its
                     // guards/lists seized while it still holds a snapshot.
  kNoQuarantine,     // SharedBook::drain_dead frees a dead process's
                     // ambiguous in-flight node instead of quarantining it:
                     // a node that was already linked into the structure
                     // when the kill landed goes back into circulation
                     // while still reachable.
  kNoRestamp,        // LeasedEpochReclaimer::expropriate_dead skips the
                     // orphan re-stamp: a node orphaned mid-retire keeps
                     // its stale/zero epoch stamp, so collect() frees it
                     // before readers announced in earlier epochs are done
                     // with it (the exact bug the PR 6 review fixed).
};

inline const char* to_string(LeaseMutation m) {
  switch (m) {
    case LeaseMutation::kNone: return "none";
    case LeaseMutation::kStaleConfirm: return "stale_confirm";
    case LeaseMutation::kNoQuarantine: return "no_quarantine";
    case LeaseMutation::kNoRestamp: return "no_restamp";
  }
  return "?";
}

template <Platform P>
class MutantTaggedReclaimer {
 public:
  static constexpr const char* kName = "mutant_tagged";
  static constexpr bool kNeedsGuard = false;

  MutantTaggedReclaimer(typename P::Env&, int n, FreeLists initial_free)
      : procs_(static_cast<std::size_t>(n)) {
    ABA_CHECK(static_cast<int>(initial_free.size()) == n);
    for (int p = 0; p < n; ++p) {
      procs_[p].free = std::move(initial_free[p]);
      pool_size_ += procs_[p].free.size();
    }
  }

  void begin_op(int /*p*/) {}
  void guard(int /*p*/, int /*slot*/, std::uint64_t /*idx*/) {}
  void end_op(int /*p*/) {}

  std::optional<std::uint64_t> allocate(int p) {
    auto& free = procs_[p].free;
    if (free.empty()) return std::nullopt;
    const std::uint64_t idx = free.front();  // FIFO: the oldest retiree —
    free.pop_front();                        // exactly the index a parked
    return idx;                              // reader's snapshot still names.
  }

  void retire(int p, std::uint64_t idx) { procs_[p].free.push_back(idx); }

  void retire_batch(int p, const std::uint64_t* idxs, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) retire(p, idxs[i]);
  }

  std::size_t pool_size() const { return pool_size_; }
  std::size_t unreclaimed(int /*p*/) const { return 0; }
  std::size_t free_count(int p) const { return procs_[p].free.size(); }

  ReclaimStats stats() const {
    ReclaimStats s;
    s.pool_size = pool_size_;
    for (const auto& proc : procs_) s.free_nodes += proc.free.size();
    return s;
  }
  ReclaimPhase phase(int /*p*/) const { return ReclaimPhase::kIdle; }

  std::uint64_t fingerprint() const {
    Fingerprint fp;
    for (const auto& proc : procs_) fp.mix_range(proc.free);
    return fp.value();
  }

 private:
  struct alignas(util::kCacheLineSize) PerProcess {
    std::deque<std::uint64_t> free;
  };

  std::vector<PerProcess> procs_;
  std::size_t pool_size_ = 0;
};

}  // namespace aba::reclaim
