// Death detection and expropriation support for crash-robust reclamation.
//
// The delay adversaries (covering schedules, parked readers) model a process
// that is slow; the cross-process tier has to survive one that is *dead* —
// SIGKILLed while a hazard guard is published, an epoch announcement is
// frozen, or a retire is half-recorded. A dead process can never clear its
// own published state, so the reclamation paths (hazard scan, epoch advance)
// must detect the death and expropriate: clear the dead process's guards or
// announcement and drain its retired/free bookkeeping back into a survivor's.
//
// Detection is delegated to a DeathOracle. In the simulator the oracle is
// SimWorld::is_crashed (exact); in the shm tier it is kill(pid, 0) plus
// heartbeat staleness on the pid-lease table (sound for real deaths, but
// capable of *false* suspicion under pid reuse or scheduling delay). The
// expropriation protocol therefore runs a two-phase handshake over a
// per-process death state machine:
//
//     kDeathLive --suspect--> kDeathSuspect --confirm--> kDeathExpropriated
//
// A reclaimer only suspects on one scan/advance and confirms on a *later*
// one, re-consulting the oracle both times. Between the two, a
// falsely-suspected live process vetoes the suspicion: every reclaimer entry
// point self-checks its own death word and CASes kDeathSuspect back to
// kDeathLive. If the process instead finds itself already expropriated (it
// lost the race, or the oracle was simply right twice), it must self-fence:
// throw LeaseRevoked without touching any shared word, because a survivor
// now owns its guards, free list and retired list. Self-fencing instead of
// continuing is what keeps a false confirmation from corrupting the pool —
// the fenced process loses its lease, never its peers' memory safety.
//
// The state word is advanced only by CAS, so when several survivors race to
// confirm the same death exactly one wins and gains exclusive splice rights
// over the victim's lists.
//
// Nodes a victim had allocated but not yet linked (its in-flight node) are
// never freed by the expropriator — they are *quarantined*: on real hardware
// the kill can land between the linking CAS and the bookkeeping store that
// records it, and freeing a possibly-linked node is a double-free waiting to
// happen. Quarantine costs at most one node per crash, which the stats
// surface (ReclaimStats::quarantined) so tests can assert the bound.
#pragma once

#include <atomic>
#include <cstdint>

namespace aba::reclaim {

// Thrown by a reclaimer entry point when the calling process finds its own
// lease expropriated. The process must treat this as its own death: unwind
// without touching the structure again (the simulator marks the process
// crashed; a real process should release its lease slot and exit).
struct LeaseRevoked {};

// Liveness oracle consulted by scan/advance paths. is_dead(pid) must be
// *stable* for real deaths (a dead pid stays dead); it may transiently
// return true for a live process — that is exactly what the two-phase
// handshake above absorbs. Implementations: sim::SimDeathOracle (exact,
// engine-side), the shm tier's lease probe (kill(pid,0) + heartbeat).
class DeathOracle {
 public:
  virtual ~DeathOracle() = default;
  virtual bool is_dead(int pid) const = 0;
};

// Death state machine values (held in a per-process std::atomic<uint8_t>).
inline constexpr std::uint8_t kDeathLive = 0;
inline constexpr std::uint8_t kDeathSuspect = 1;
inline constexpr std::uint8_t kDeathExpropriated = 2;

// What one scan/advance visit did to a dead-looking process's state word.
enum class DeathStep : std::uint8_t {
  kSuspected,            // First phase recorded; confirm on a later visit.
  kConfirmed,            // We won the confirm CAS: we own the drain.
  kAlreadyExpropriated,  // Another survivor drained it (or we did earlier).
  kVetoed,               // The process proved alive between our two visits.
};

// One visit of the two-phase handshake. The caller has already consulted
// its oracle and believes `state`'s owner is dead.
inline DeathStep advance_death(std::atomic<std::uint8_t>& state) {
  std::uint8_t s = state.load(std::memory_order_acquire);
  if (s == kDeathExpropriated) return DeathStep::kAlreadyExpropriated;
  if (s == kDeathLive) {
    state.compare_exchange_strong(s, kDeathSuspect,
                                  std::memory_order_acq_rel);
    return DeathStep::kSuspected;
  }
  // kDeathSuspect, seen on a later visit: confirm. Exactly one confirmer
  // wins; a concurrent self-check veto makes the CAS fail benignly.
  if (state.compare_exchange_strong(s, kDeathExpropriated,
                                    std::memory_order_acq_rel)) {
    return DeathStep::kConfirmed;
  }
  return s == kDeathExpropriated ? DeathStep::kAlreadyExpropriated
                                 : DeathStep::kVetoed;
}

// The victim side of the handshake, run at every reclaimer entry point on
// the caller's *own* state word: veto a pending suspicion, self-fence on
// expropriation. Costs one relaxed-ish load on the (overwhelmingly common)
// live path.
inline void death_self_check(std::atomic<std::uint8_t>& state) {
  std::uint8_t s = state.load(std::memory_order_acquire);
  if (s == kDeathLive) return;
  if (s == kDeathSuspect &&
      state.compare_exchange_strong(s, kDeathLive,
                                    std::memory_order_acq_rel)) {
    return;  // Falsely suspected; demonstrably alive — suspicion vetoed.
  }
  // Expropriated (possibly during the CAS above): a survivor owns our
  // lists now. Self-fence — unwind without another shared access.
  throw LeaseRevoked{};
}

}  // namespace aba::reclaim
