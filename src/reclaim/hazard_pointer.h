// HazardPointerReclaimer — Michael's hazard pointers over the index pool.
//
// Migrated from the pointer-based HazardDomain (now reclaim/hazard_domain.h)
// into a platform-generic index policy: each process owns kSlotsPerProcess
// single-writer multi-reader Platform registers; guard(p, slot, i) publishes
// i there, and the structure re-validates its source word after the publish
// (if the word is unchanged, node i was not yet retired when the guard
// became visible, so every later scan sees it). retire(p, i) defers i on a
// thread-private list; once the list reaches the scan threshold — the
// standard 2·H rule, H = total slots — scan(p) reads all H slots once and
// releases every unguarded index back to p's free list.
//
// Guarantees (docs/RECLAMATION.md has the comparison table):
//   space  — unreclaimed garbage is bounded: per process at most the scan
//            threshold + H guarded nodes, independent of stalled readers'
//            *duration* (a stalled reader pins at most its own slots). This
//            is the bound the hazard-vs-epoch stress test measures.
//   time   — retire is O(1) amortized; every 2·H retires pay one O(H) scan.
//            guard costs one shared write plus the structure's revalidation
//            read on every dereference — the per-op tax E8/E9 measure.
//
// The paper's trichotomy: this is the application-specific reclamation
// answer to ABA, contrasted with bounded tags (TaggedReclaimer + tagged
// head) and LL/SC (which the paper constructs from bounded CAS).
//
// Memory orderings: publish-then-revalidate is a StoreLoad pattern (the
// guard write must be visible before the revalidation read of a different
// word), exactly like the Figure 4 announce-array register. On native
// platforms run it under seq_cst orderings — Counted or Fast, not
// FastRelaxed (E9's matrix makes that carve-out per reclaimer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/platform.h"
#include "reclaim/reclaimer.h"
#include "util/assert.h"
#include "util/cacheline.h"

namespace aba::reclaim {

template <Platform P>
class HazardPointerReclaimer {
 public:
  static constexpr const char* kName = "hazard";
  static constexpr bool kNeedsGuard = true;
  // Two slots cover every structure here: the Treiber stack guards the head
  // node (slot 0); the MS queue guards head (0) and head->next (1).
  static constexpr int kSlotsPerProcess = 2;

  HazardPointerReclaimer(typename P::Env& env, int n, FreeLists initial_free)
      : n_(n), procs_(static_cast<std::size_t>(n)) {
    ABA_CHECK(static_cast<int>(initial_free.size()) == n);
    for (int p = 0; p < n; ++p) {
      procs_[p].free = std::move(initial_free[p]);
      pool_size_ += procs_[p].free.size();
    }
    slots_.reserve(static_cast<std::size_t>(n) * kSlotsPerProcess);
    for (int i = 0; i < n * kSlotsPerProcess; ++i) {
      slots_.push_back(std::make_unique<typename P::Register>(
          env, "hp.slot", kNone, sim::BoundSpec::unbounded()));
    }
  }

  void begin_op(int /*p*/) {}

  // Publishes node `idx` in (p, slot). One shared write; the *structure*
  // must re-read its source word afterwards and retry if it moved.
  void guard(int p, int slot, std::uint64_t idx) {
    ABA_ASSERT(slot >= 0 && slot < kSlotsPerProcess);
    slot_ref(p, slot).write(idx + 1);
    procs_[p].dirty_slots |= 1u << slot;
  }

  // Clears only the slots this op actually published (tracked privately),
  // so an op that never guarded pays no shared steps here.
  void end_op(int p) {
    std::uint32_t dirty = procs_[p].dirty_slots;
    for (int slot = 0; dirty != 0; ++slot, dirty >>= 1) {
      if (dirty & 1u) slot_ref(p, slot).write(kNone);
    }
    procs_[p].dirty_slots = 0;
  }

  std::optional<std::uint64_t> allocate(int p) {
    auto& free = procs_[p].free;
    if (free.empty()) scan(p);  // Pool pressure: reclaim eagerly.
    if (free.empty()) return std::nullopt;
    const std::uint64_t idx = free.front();
    free.pop_front();
    return idx;
  }

  void retire(int p, std::uint64_t idx) {
    procs_[p].retired.push_back(idx);
    if (procs_[p].retired.size() >= scan_threshold()) scan(p);
  }

  // Reads every hazard slot once and frees p's retired nodes that no slot
  // guards. O(H + retired) local work, H shared reads.
  void scan(int p) {
    std::vector<std::uint64_t> guarded;
    guarded.reserve(slots_.size());
    for (const auto& slot : slots_) {
      const std::uint64_t word = slot->read();
      if (word != kNone) guarded.push_back(word - 1);
    }
    auto& retired = procs_[p].retired;
    std::vector<std::uint64_t> keep;
    keep.reserve(retired.size());
    for (const std::uint64_t idx : retired) {
      bool pinned = false;
      for (const std::uint64_t g : guarded) {
        if (g == idx) {
          pinned = true;
          break;
        }
      }
      if (pinned) {
        keep.push_back(idx);
      } else {
        procs_[p].free.push_back(idx);
      }
    }
    retired = std::move(keep);
  }

  // 2·H: scans amortize to O(1) shared reads per retire while unreclaimed
  // garbage stays linear in the slot count.
  std::size_t scan_threshold() const { return 2 * slots_.size(); }

  std::size_t pool_size() const { return pool_size_; }
  std::size_t unreclaimed(int p) const { return procs_[p].retired.size(); }
  std::size_t free_count(int p) const { return procs_[p].free.size(); }

 private:
  static constexpr std::uint64_t kNone = 0;  // Indices are stored +1.

  typename P::Register& slot_ref(int p, int slot) {
    ABA_ASSERT(p >= 0 && p < n_);
    return *slots_[static_cast<std::size_t>(p) * kSlotsPerProcess + slot];
  }

  // Thread-private bookkeeping, one cache line per process: the dirty mask
  // is written on every guard/end_op and the container headers on every
  // allocate/retire, so packing neighbours together would false-share.
  struct alignas(util::kCacheLineSize) PerProcess {
    std::deque<std::uint64_t> free;
    std::vector<std::uint64_t> retired;
    std::uint32_t dirty_slots = 0;
  };

  int n_;
  // unique_ptr because platform objects wrap std::atomic and are immovable;
  // the native Fast policy pads each register to its own cache line, which
  // keeps one process's publish/clear traffic from invalidating its
  // neighbours' slots (the role HazardDomain's alignas played).
  std::vector<std::unique_ptr<typename P::Register>> slots_;
  std::vector<PerProcess> procs_;
  std::size_t pool_size_ = 0;
};

}  // namespace aba::reclaim
