// HazardPointerReclaimer — Michael's hazard pointers over the index pool,
// with a pluggable guard-publication mode.
//
// Migrated from the pointer-based HazardDomain (now reclaim/hazard_domain.h)
// into a platform-generic index policy: each process owns kSlotsPerProcess
// single-writer multi-reader Platform registers; guard(p, slot, i) publishes
// i there, and the structure re-validates its source word after the publish
// (if the word is unchanged, node i was not yet retired when the guard
// became visible, so every later scan sees it). retire(p, i) defers i on a
// thread-private list; once the list reaches the scan threshold, scan(p)
// reads all H slots once (H = total slots) and releases every unguarded
// index back to p's free list.
//
// Guard modes (the Mode template parameter):
//
//   EagerGuards (default, kName "hazard") — the textbook per-op protocol:
//       every guarded dereference publishes, every end_op clears what the
//       op published. Step sequence identical to the pre-guard-cache
//       reclaimer, which the deterministic sim schedules count on.
//
//   CachedGuards (kName "hazard_cached") — guard caching: a published slot
//       STAYS published across consecutive operations on the same
//       structure. The hot path compares the requested index against the
//       thread-private record of what the slot already holds; on a hit the
//       publish (a shared store, plus its fence on seq_cst platforms) is
//       skipped entirely and only the structure's revalidation load runs.
//       end_op clears nothing. The costs move:
//         * a process's slots pin up to kSlotsPerProcess nodes between
//           operations — including, transiently, its own latest retiree —
//           so the unreclaimed bound gains +H but stays independent of
//           stall duration;
//         * a process that stops operating on this structure must call
//           detach(p) (the epoch-style explicit clear) or its cached
//           guards pin those nodes indefinitely. allocate(p) self-heals
//           under pool pressure: it runs outside any protected region, so
//           it may drop p's own cached guards and rescan.
//       The hit/miss decision is a pure function of the operation sequence
//       (thread-private state only), so sim runs stay deterministic and
//       Fast ≡ Counted trace equivalence holds.
//
// Fences: on platforms that opt into an asymmetric StoreLoad scheme
// (PlatformFenceT, see util/asymmetric_fence.h and the FastAsymmetric
// native policy), every performed publish is followed by Fence::light()
// (a compiler barrier) and every scan opens with Fence::heavy() (the
// membarrier/mprotect side). Scans amortize the heavy fence: on such
// platforms the scan threshold is raised to at least kHeavyScanFloor
// retires so the per-op share of the syscall stays in the noise. On
// seq_cst platforms both fences are no-ops and the threshold is the
// standard 2·H rule.
//
// Guarantees (docs/RECLAMATION.md has the comparison table):
//   space  — unreclaimed garbage is bounded: per process at most the scan
//            threshold + H guarded nodes, independent of stalled readers'
//            *duration* (a stalled reader pins at most its own slots).
//   time   — retire is O(1) amortized; every threshold retires pay one
//            O(H) scan (plus one heavy fence on asymmetric platforms).
//            guard costs at most one shared write plus the structure's
//            revalidation read per dereference — zero shared writes on a
//            cached hit.
//
// The paper's trichotomy: this is the application-specific reclamation
// answer to ABA, contrasted with bounded tags (TaggedReclaimer + tagged
// head) and LL/SC (which the paper constructs from bounded CAS).
//
// Memory orderings: publish-then-revalidate is a StoreLoad pattern (the
// guard write must be visible before the revalidation read of a different
// word), exactly like the Figure 4 announce-array register. On native
// platforms run it under seq_cst orderings — Counted or Fast — or under
// FastAsymmetric, where the fence pair above replaces seq_cst's per-access
// cost. Never under plain FastRelaxed.
//
// Crash robustness (reclaim/death.h): with a DeathOracle installed, every
// scan first sweeps for dead processes and — after the two-phase
// suspect/confirm handshake — expropriates them: clears their published
// guards, splices their retired and free lists into the scanning process's,
// and quarantines their in-flight allocation. Entry points self-check the
// caller's own death word (veto a false suspicion, self-fence via
// LeaseRevoked once expropriated). With no oracle (the default) every one
// of these paths is inert and the step sequence is exactly the classic
// protocol — the committed schedule corpus replays bit-identically.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/platform.h"
#include "reclaim/death.h"
#include "reclaim/reclaimer.h"
#include "util/assert.h"
#include "util/cacheline.h"

namespace aba::reclaim {

// Guard-publication modes (see the header comment).
struct EagerGuards {
  static constexpr bool kCached = false;
};
struct CachedGuards {
  static constexpr bool kCached = true;
};

template <Platform P, class Mode = EagerGuards>
class HazardPointerReclaimer {
 public:
  static constexpr bool kCachesGuards = Mode::kCached;
  static constexpr const char* kName =
      kCachesGuards ? "hazard_cached" : "hazard";
  static constexpr bool kNeedsGuard = true;
  // Two slots cover every structure here: the Treiber stack guards the head
  // node (slot 0); the MS queue guards head (0) and head->next (1).
  static constexpr int kSlotsPerProcess = 2;
  // On platforms with a real heavy fence (asymmetric scheme), scans batch
  // at least this many retires so the membarrier cost amortizes to noise.
  static constexpr std::size_t kHeavyScanFloor = 256;
  static constexpr bool kHeavyScan =
      !std::is_same_v<PlatformFenceT<P>, util::NoFence>;

  HazardPointerReclaimer(typename P::Env& env, int n, FreeLists initial_free)
      : n_(n), procs_(static_cast<std::size_t>(n)) {
    ABA_CHECK(static_cast<int>(initial_free.size()) == n);
    for (int p = 0; p < n; ++p) {
      procs_[p].free = std::move(initial_free[p]);
      pool_size_ += procs_[p].free.size();
    }
    slots_.reserve(static_cast<std::size_t>(n) * kSlotsPerProcess);
    for (int i = 0; i < n * kSlotsPerProcess; ++i) {
      slots_.push_back(std::make_unique<typename P::Register>(
          env, "hp.slot", kNone, sim::BoundSpec::unbounded()));
    }
  }

  // Installs the liveness oracle that arms the expropriation paths. Not a
  // transfer of ownership; pass nullptr to disarm. Call before any process
  // operates (the pointer itself is not synchronized).
  void set_death_oracle(const DeathOracle* oracle) { death_oracle_ = oracle; }

  void begin_op(int p) {
    death_self_check(procs_[p].death);
    procs_[p].phase = ReclaimPhase::kInRegion;
  }

  // Publishes node `idx` in (p, slot). At most one shared write; zero when
  // the cached mode finds the slot already naming idx. The *structure*
  // must re-read its source word afterwards and retry if it moved.
  void guard(int p, int slot, std::uint64_t idx) {
    ABA_ASSERT(slot >= 0 && slot < kSlotsPerProcess);
    const std::uint64_t word = idx + 1;
    auto& published = procs_[p].published;
    // The phase marker flips before returning either way: a cache hit
    // protects exactly like a fresh publish, and the caller is now headed
    // into its revalidation read — the worst step to park at.
    procs_[p].phase = ReclaimPhase::kGuardPublished;
    if constexpr (kCachesGuards) {
      if (published[static_cast<std::size_t>(slot)] == word) return;  // Hit.
    }
    slot_ref(p, slot).write(word);
    PlatformFenceT<P>::light();
    published[static_cast<std::size_t>(slot)] = word;
  }

  // Eager mode: clears only the slots this op actually published (tracked
  // privately), so an op that never guarded pays no shared steps here.
  // Cached mode: nothing — the published guards ARE the cache.
  void end_op(int p) {
    if constexpr (!kCachesGuards) clear_published(p);
    procs_[p].phase = ReclaimPhase::kIdle;
  }

  // The epoch-style explicit clear: drops every guard p has published.
  // Call when p stops operating on this structure (a structure switch, a
  // worker retiring) — in the cached mode this is the only way p's slots
  // release their last pinned nodes.
  void detach(int p) { clear_published(p); }

  std::optional<std::uint64_t> allocate(int p) {
    death_self_check(procs_[p].death);
    auto& free = procs_[p].free;
    if (free.empty()) {
      scan(p);  // Pool pressure: reclaim eagerly.
      if constexpr (kCachesGuards) {
        // Still dry? allocate runs outside any protected region, so p's
        // cached guards protect nothing in flight — drop them (they may
        // pin p's own recent retirees) and rescan.
        if (free.empty() && has_published(p)) {
          detach(p);
          scan(p);
        }
      }
    }
    if (free.empty()) return std::nullopt;
    const std::uint64_t idx = free.front();
    free.pop_front();
    // In-flight marker: if p dies before its linking CAS commits, an
    // expropriator quarantines this node instead of freeing it.
    procs_[p].in_flight = idx + 1;
    return idx;
  }

  // The structure's linking CAS for p's in-flight node just succeeded: the
  // node is reachable, no longer at risk of being stranded by p's death.
  void commit(int p) { procs_[p].in_flight = kNone; }

  void retire(int p, std::uint64_t idx) {
    death_self_check(procs_[p].death);
    const ReclaimPhase resume = procs_[p].phase;
    procs_[p].phase = ReclaimPhase::kMidRetire;
    procs_[p].retired.push_back(idx);
    if (procs_[p].retired.size() >= scan_threshold()) scan(p);
    procs_[p].phase = resume;
  }

  // Batch hand-off (the Reclaimer concept's batched verb): the whole batch
  // lands on the retired list under ONE threshold check, so at most one
  // scan (and one heavy fence) runs regardless of the batch size.
  void retire_batch(int p, const std::uint64_t* idxs, std::size_t count) {
    death_self_check(procs_[p].death);
    if (count == 0) return;
    const ReclaimPhase resume = procs_[p].phase;
    procs_[p].phase = ReclaimPhase::kMidRetire;
    for (std::size_t i = 0; i < count; ++i) {
      procs_[p].retired.push_back(idxs[i]);
    }
    if (procs_[p].retired.size() >= scan_threshold()) scan(p);
    procs_[p].phase = resume;
  }

  // Reads every hazard slot once and frees p's retired nodes that no slot
  // guards. O(H + retired) local work, H shared reads — and, on asymmetric
  // platforms, the one heavy fence that makes every reader's pending guard
  // publish visible before the slot reads.
  void scan(int p) {
    PlatformFenceT<P>::heavy();
    // Dead-lease sweep first, so a dead process's just-cleared guards are
    // already gone from the slot reads below and its spliced-in retirees
    // get filtered in this very scan — a confirmed death is fully drained
    // within the same scan that confirms it.
    expropriate_dead(p);
    std::vector<std::uint64_t> guarded;
    guarded.reserve(slots_.size());
    for (const auto& slot : slots_) {
      const std::uint64_t word = slot->read();
      if (word != kNone) guarded.push_back(word - 1);
    }
    auto& retired = procs_[p].retired;
    std::vector<std::uint64_t> keep;
    keep.reserve(retired.size());
    for (const std::uint64_t idx : retired) {
      bool pinned = false;
      for (const std::uint64_t g : guarded) {
        if (g == idx) {
          pinned = true;
          break;
        }
      }
      if (pinned) {
        keep.push_back(idx);
      } else {
        procs_[p].free.push_back(idx);
      }
    }
    retired = std::move(keep);
  }

  // 2·H — scans amortize to O(1) shared reads per retire while unreclaimed
  // garbage stays linear in the slot count — raised to the batch floor on
  // platforms where each scan also pays a heavy fence.
  std::size_t scan_threshold() const {
    const std::size_t base = 2 * slots_.size();
    if constexpr (kHeavyScan) return std::max(base, kHeavyScanFloor);
    return base;
  }

  std::size_t pool_size() const { return pool_size_; }
  std::size_t unreclaimed(int p) const { return procs_[p].retired.size(); }
  std::size_t free_count(int p) const { return procs_[p].free.size(); }

  // Engine-side observability (reclaimer.h): everything below reads only
  // thread-private bookkeeping, so sampling between steps is free.
  ReclaimStats stats() const {
    ReclaimStats s;
    s.pool_size = pool_size_;
    for (const auto& proc : procs_) {
      s.retired_unreclaimed += proc.retired.size();
      s.free_nodes += proc.free.size();
      for (const std::uint64_t word : proc.published) {
        if (word != kNone) ++s.guard_slots_occupied;
      }
      s.quarantined += proc.quarantine.size();
      if (proc.in_flight != kNone) ++s.in_flight;
      s.expropriations += proc.expropriations;
    }
    return s;
  }
  ReclaimPhase phase(int p) const { return procs_[p].phase; }

  // The thread-private state the signature key misses: free-list order and
  // retired contents decide which indices future allocates/scans move, the
  // published mirror and phase decide where the next guard lands, and the
  // crash bookkeeping decides what an expropriator would drain.
  std::uint64_t fingerprint() const {
    Fingerprint fp;
    for (const auto& proc : procs_) {
      fp.mix_range(proc.free);
      fp.mix_range(proc.retired);
      fp.mix_range(proc.published);
      fp.mix(static_cast<std::uint64_t>(proc.phase));
      fp.mix(proc.in_flight);
      fp.mix_range(proc.quarantine);
      fp.mix(proc.expropriations);
      fp.mix(proc.death.load(std::memory_order_relaxed));
    }
    return fp.value();
  }

 private:
  static constexpr std::uint64_t kNone = 0;  // Indices are stored +1.

  typename P::Register& slot_ref(int p, int slot) {
    ABA_ASSERT(p >= 0 && p < n_);
    return *slots_[static_cast<std::size_t>(p) * kSlotsPerProcess + slot];
  }

  bool has_published(int p) const {
    for (const std::uint64_t word : procs_[p].published) {
      if (word != kNone) return true;
    }
    return false;
  }

  void clear_published(int p) {
    auto& published = procs_[p].published;
    for (int slot = 0; slot < kSlotsPerProcess; ++slot) {
      if (published[static_cast<std::size_t>(slot)] != kNone) {
        slot_ref(p, slot).write(kNone);
        published[static_cast<std::size_t>(slot)] = kNone;
      }
    }
  }

  // Two-phase dead-lease sweep (reclaim/death.h): suspect a dead-looking
  // process on one scan, confirm — re-consulting the oracle — on a later
  // one. The confirm CAS winner drains the victim. With no oracle (or no
  // deaths) this loop performs no shared steps, which is what keeps the
  // committed schedule corpus bit-identical.
  void expropriate_dead(int p) {
    if (death_oracle_ == nullptr) return;
    for (int q = 0; q < n_; ++q) {
      if (q == p || !death_oracle_->is_dead(q)) continue;
      if (advance_death(procs_[q].death) == DeathStep::kConfirmed) {
        expropriate(p, q);
      }
    }
  }

  // p won the confirm CAS on q's death word: drain q. Clearing q's slots is
  // a shared write per published guard; everything else splices q's
  // (orphaned, now exclusively-owned) thread-private bookkeeping into p's.
  void expropriate(int p, int q) {
    auto& victim = procs_[q];
    auto& mine = procs_[p];
    for (int slot = 0; slot < kSlotsPerProcess; ++slot) {
      if (victim.published[static_cast<std::size_t>(slot)] != kNone) {
        slot_ref(q, slot).write(kNone);
        victim.published[static_cast<std::size_t>(slot)] = kNone;
      }
    }
    for (const std::uint64_t idx : victim.retired) mine.retired.push_back(idx);
    victim.retired.clear();
    while (!victim.free.empty()) {
      mine.free.push_back(victim.free.front());
      victim.free.pop_front();
    }
    if (victim.in_flight != kNone) {
      // Possibly linked by a CAS whose bookkeeping store never ran (on real
      // hardware the kill can land between the two) — quarantine, never free.
      mine.quarantine.push_back(victim.in_flight - 1);
      victim.in_flight = kNone;
    }
    ++mine.expropriations;
  }

  // Thread-private bookkeeping, one cache line per process: published[] is
  // consulted/written on every guard and the container headers on every
  // allocate/retire, so packing neighbours together would false-share.
  struct alignas(util::kCacheLineSize) PerProcess {
    std::deque<std::uint64_t> free;
    std::vector<std::uint64_t> retired;
    // What each of p's slots currently holds (the guard cache; also the
    // eager mode's dirty tracking). kNone = slot clear.
    std::array<std::uint64_t, kSlotsPerProcess> published{};
    // Protocol position for the schedule-search engine (reclaimer.h).
    ReclaimPhase phase = ReclaimPhase::kIdle;
    // Crash-robustness bookkeeping (reclaim/death.h). in_flight is p's
    // allocated-but-unlinked node (stored +1); quarantine holds nodes p
    // quarantined from victims it expropriated; death is p's own state in
    // the suspect/confirm handshake — the one field other processes write.
    std::uint64_t in_flight = kNone;
    std::vector<std::uint64_t> quarantine;
    std::size_t expropriations = 0;
    std::atomic<std::uint8_t> death{kDeathLive};
  };

  const DeathOracle* death_oracle_ = nullptr;
  int n_;
  // unique_ptr because platform objects wrap std::atomic and are immovable;
  // the native Fast policy pads each register to its own cache line, which
  // keeps one process's publish/clear traffic from invalidating its
  // neighbours' slots (the role HazardDomain's alignas played).
  std::vector<std::unique_ptr<typename P::Register>> slots_;
  std::vector<PerProcess> procs_;
  std::size_t pool_size_ = 0;
};

// The guard-caching instantiation under its own name (the reclaimer axis
// treats it as a fifth policy: same safety argument as hazard, different
// hot-path cost model).
template <Platform P>
using CachedHazardPointerReclaimer = HazardPointerReclaimer<P, CachedGuards>;

}  // namespace aba::reclaim
