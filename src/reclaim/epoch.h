// EpochBasedReclaimer — epoch-based reclamation (Fraser-style EBR) over the
// index pool, with a pluggable announce mode.
//
// One global epoch counter (a WritableCas) plus one announcement register
// per process. begin_op(p) reads the global epoch and announces it,
// validating that the epoch did not move past the announcement (see the
// method comment); end_op(p) announces quiescence (eager mode). No
// per-dereference guards: an op pins *every* node reachable during its
// region at once, which is the whole appeal — dereference is free, and
// retire is one shared read plus thread-private work (the index appended to
// a limbo list stamped with the current global epoch). The epoch advances
// from e to e+1 only when every non-quiescent announcement equals e, so
// once the global epoch reaches s+2 no active region can still hold a node
// stamped s — that is the classic two-epoch grace period under which limbo
// nodes flow back to the free list.
//
// Announce modes (the Mode template parameter, mirroring the hazard
// reclaimer's EagerGuards/CachedGuards):
//
//   EagerAnnounce (default, kName "epoch") — the textbook per-op protocol:
//       every begin_op announces, every end_op writes quiescent. The
//       announce-then-validate pair is a StoreLoad pattern, so on native
//       platforms it needs seq_cst orderings — run it on Counted or Fast,
//       not FastRelaxed/FastAsymmetric (E9's matrix makes that carve-out).
//       Step sequence identical to the pre-mode reclaimer, which the
//       committed schedule corpus counts on.
//
//   DeferredAnnounce (alias DeferredEpochReclaimer, kName "epoch_deferred")
//       — announcement caching + light announce / heavy advance:
//       * The announcement STAYS published across operations. begin_op
//         compares the freshly read global epoch against the thread-private
//         announce mirror; on a hit the whole op costs ONE shared read (no
//         store, no validation). On a miss the announce store is a plain
//         (relaxed-ordering) store followed by Fence::light() — a compiler
//         barrier — and the validation loop.
//       * end_op writes nothing; detach(p) is the explicit release point
//         (epoch-style, exactly the cached-hazard contract). A process that
//         stops operating must detach or its parked announcement pins the
//         epoch indefinitely.
//       * retire(p, i) lands in a per-process LocalRing batch buffer: ZERO
//         shared steps. A full batch is flushed in one shot — one global
//         read stamps the whole batch (a flush-time stamp is >= each
//         retire-time stamp, so the grace period only lengthens), then one
//         amortized advance+flush runs.
//       * try_advance is the heavy side: it opens with Fence::heavy()
//         (membarrier/mprotect on FastAsymmetric — the same amortized home
//         the hazard scan uses), which forces every in-flight light
//         announce into visibility before the announcement scan. Soundness:
//         a reader's validated announce store retired (program order) before
//         its validation load completed, and any advance past a+1 starts
//         heavy() after that load, so its scan must observe the store and
//         veto — the global epoch can never be more than one ahead of an
//         active region's announcement, same invariant as eager mode.
//       * Because the deferred end_op leaves the announcement published,
//         try_advance(p) first refreshes p's OWN stale announcement to the
//         current epoch (p is outside any region there — allocate and
//         retire run post-end_op — so the overwrite is safe); otherwise p
//         would veto every advance it attempts itself.
//       The hit/miss decision is a pure function of the operation sequence
//       (thread-private mirror vs. the read epoch), so sim runs stay
//       deterministic and the Counted ≡ Fast ≡ FastAsymmetric tokenized
//       trace equivalence holds. The protocol is the same on every
//       platform; only the fence pair degrades (NoFence on SimPlatform /
//       Counted / Fast, where orderings or the scheduler carry the edge).
//
// Cost model (the ledger tests pin this): deferred steady state is 1 shared
// read per op (begin_op hit), 0 shared stores, 0 shared RMW; each announce
// miss adds one plain store + one validation read; each kRetireBatch
// retires pay one stamp read plus one advance (O(n) announcement reads + at
// most one CAS) — amortized to ~zero per op at native batch sizes.
//
// The dual weakness, measured by the retire-bound stress test: one stalled
// reader freezes the epoch and makes *system-wide* unreclaimed garbage
// unbounded, where hazard pointers bound it by the slot count. Deferred
// mode sharpens it: an *idle* process's cached announcement pins the epoch
// too, until detach. The paper's lens: epochs answer ABA like tags with an
// unbounded tag you only advance when it is provably safe — immune like
// LL/SC, but at the cost of unbounded space under stalls (exactly the
// bounded-vs-unbounded tension Theorem 1 is about).
//
// Contract: allocate(p) must be called *outside* p's begin_op/end_op
// region — a process cannot advance the epoch past its own stale
// announcement (deferred mode self-heals: allocate under pressure flushes
// the pending batch and refreshes p's own announcement before advancing).
//
// Crash robustness (reclaim/death.h): a dead process's stale announcement
// would otherwise freeze the epoch forever — the catastrophic version of
// the stalled-reader weakness. With a DeathOracle installed, every advance
// attempt sweeps all dead-looking processes — not just stale announcers: a
// victim that died inside a post-region retire() has a quiescent
// announcement but orphaned bookkeeping — through the two-phase
// suspect/confirm handshake; the confirm winner
// expropriates: writes the victim's announcement to quiescent (unfreezing
// the epoch), splices its limbo (re-stamping its half-recorded retiree
// conservatively) and free list into its own, drains its pending retire
// batch (re-stamped with the current epoch, so a batch parked in a dead
// process's ring is bounded garbage like the quarantine, never a leak), and
// quarantines its in-flight allocation. Entry points self-check the
// caller's own death word and self-fence via LeaseRevoked once
// expropriated. With no oracle every path is inert and the step sequence is
// the classic protocol.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iterator>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/platform.h"
#include "reclaim/death.h"
#include "reclaim/reclaimer.h"
#include "structures/ring_buffer.h"
#include "util/assert.h"
#include "util/cacheline.h"

namespace aba::reclaim {

// Announce modes (see the header comment).
struct EagerAnnounce {
  static constexpr bool kDeferred = false;
};
struct DeferredAnnounce {
  static constexpr bool kDeferred = true;
};

template <Platform P, class Mode = EagerAnnounce, std::size_t kBatchOverride = 0>
class EpochBasedReclaimer {
 public:
  static constexpr bool kDeferred = Mode::kDeferred;
  static constexpr const char* kName = kDeferred ? "epoch_deferred" : "epoch";
  static constexpr bool kNeedsGuard = false;
  // Retires between advance attempts: amortizes the O(n) announcement scan.
  static constexpr std::size_t kAdvanceEvery = 4;
  // On platforms with a real heavy fence the deferred batch is raised so
  // the per-op share of the advance-side membarrier stays in the noise —
  // the same cadence as the hazard kHeavyScanFloor (256), since both sides
  // pay one membarrier per flush and the E9 batch axis shows throughput
  // still climbing past 64. Elsewhere it matches kAdvanceEvery, so the
  // deferred advance cadence equals the eager one and sim searches cross
  // the batch boundary constantly. kBatchOverride pins it for the E9
  // retire-batch-size axis.
  static constexpr bool kHeavyAdvance =
      !std::is_same_v<PlatformFenceT<P>, util::NoFence>;
  static constexpr std::size_t kRetireBatch =
      kBatchOverride != 0 ? kBatchOverride
                          : (kHeavyAdvance ? 256 : kAdvanceEvery);
  // Starved allocates between heavy advance re-attempts while the epoch is
  // frozen (the allocate() pressure-path throttle; heavy platforms only).
  static constexpr std::uint64_t kCoastStride = 64;
  // The eager announce-validate pair is StoreLoad-shaped with no heavy side
  // to carry it: it must not compile on platforms whose orderings are
  // relaxed-with-fence (FastAsymmetric). Deferred mode is that heavy side.
  static_assert(kDeferred || !kHeavyAdvance,
                "eager epoch needs seq_cst orderings; use "
                "DeferredEpochReclaimer on asymmetric-fence platforms");

  EpochBasedReclaimer(typename P::Env& env, int n, FreeLists initial_free)
      : n_(n),
        global_(env, "epoch.global", 0, sim::BoundSpec::unbounded()),
        procs_(static_cast<std::size_t>(n)) {
    ABA_CHECK(static_cast<int>(initial_free.size()) == n);
    for (int p = 0; p < n; ++p) {
      procs_[p].free = std::move(initial_free[p]);
      pool_size_ += procs_[p].free.size();
    }
    announce_.reserve(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      announce_.push_back(std::make_unique<typename P::Register>(
          env, "epoch.announce", kQuiescent, sim::BoundSpec::unbounded()));
    }
  }

  // Installs the liveness oracle that arms the expropriation paths (see
  // the header comment). Not a transfer of ownership; call before any
  // process operates.
  void set_death_oracle(const DeathOracle* oracle) { death_oracle_ = oracle; }

  // Announce-then-validate: after writing the announcement we re-read the
  // global epoch and retry until it matches. Without the validation a
  // process that stalls between reading the epoch and publishing it could
  // announce an arbitrarily stale value — the epoch would meanwhile have
  // advanced past it, collapsing the grace period for nodes other readers
  // still hold. With it, once begin_op returns the global epoch can be at
  // most announce+1 for as long as this region is active (the advance rule
  // vetoes anything further), which is what the reuse bound relies on.
  //
  // Deferred mode adds the cache fast path: when the read epoch equals the
  // announcement already published (the thread-private mirror — no shared
  // re-read), the store AND the validation are skipped; the old validated
  // publish still carries the invariant, because its visibility guarantee
  // is permanent once established (see the header comment).
  void begin_op(int p) {
    death_self_check(procs_[p].death);
    if constexpr (kDeferred) {
      std::uint64_t e = global_.read();
      if (procs_[p].announce_mirror == e) {  // Hit: zero shared stores.
        procs_[p].phase = ReclaimPhase::kEpochAnnounced;
        return;
      }
      for (;;) {
        announce_[p]->write(e);
        PlatformFenceT<P>::light();
        // The announcement is visible from here on (on asymmetric
        // platforms: from the next heavy advance on): a process parked at
        // the validation read below already pins the epoch.
        procs_[p].announce_mirror = e;
        procs_[p].phase = ReclaimPhase::kEpochAnnounced;
        const std::uint64_t now = global_.read();
        if (now == e) return;
        e = now;
      }
    } else {
      for (;;) {
        const std::uint64_t e = global_.read();
        announce_[p]->write(e);
        // The announcement is visible from here on: a process parked at the
        // validation read below already pins the epoch, which is exactly the
        // worst step the schedule-search engine aims for.
        procs_[p].announce_mirror = e;
        procs_[p].phase = ReclaimPhase::kEpochAnnounced;
        if (global_.read() == e) return;
      }
    }
  }

  void guard(int /*p*/, int /*slot*/, std::uint64_t /*idx*/) {}

  // Eager: announce quiescence. Deferred: nothing — the published
  // announcement IS the cache; detach(p) is the release point.
  void end_op(int p) {
    if constexpr (!kDeferred) {
      announce_[p]->write(kQuiescent);
      procs_[p].announce_mirror = kQuiescent;
    }
    procs_[p].phase = ReclaimPhase::kIdle;
  }

  // The explicit release: announce quiescence and drop the cache. Call when
  // p stops operating on this structure — in deferred mode this is the only
  // way p's parked announcement stops pinning the epoch. No-op when already
  // quiescent (eager mode outside a region), so structures may forward it
  // unconditionally.
  void detach(int p) {
    if (procs_[p].announce_mirror != kQuiescent) {
      announce_[p]->write(kQuiescent);
      procs_[p].announce_mirror = kQuiescent;
    }
  }

  std::optional<std::uint64_t> allocate(int p) {
    death_self_check(procs_[p].death);
    auto& free = procs_[p].free;
    if (free.empty()) {
      // Pool pressure: a fresh retiree needs two advances to mature, so try
      // up to two advance+flush rounds before reporting exhaustion. The
      // deferred batch buffer flushes first — its nodes are invisible to
      // flush() until stamped — and each advance round self-refreshes p's
      // own parked announcement (try_advance), the self-heal that keeps
      // allocate's outside-a-region contract honest in deferred mode.
      //
      // Heavy-fence throttle (FastAsymmetric only): when the epoch is
      // frozen by a descheduled peer's cached announcement, every one of
      // these advance attempts pays the membarrier just to be vetoed by
      // the same stale announcer — an oversubscribed host can spend more
      // time in the pressure-path syscalls than in the ops. After a full
      // round fails with the epoch unmoved, coast: re-attempt the heavy
      // advance only every kCoastStride-th starved allocate (or as soon as
      // the epoch moves), and meanwhile just sweep limbo against the
      // current epoch. Coasting frees nothing new — by construction
      // nothing CAN mature while the epoch is frozen — so refusals are
      // identical; only the fence cadence changes. All throttle state is
      // thread-private, and the stride bounds how long a recovered system
      // waits for its next real advance attempt.
      if constexpr (kDeferred && kHeavyAdvance) {
        auto& proc = procs_[p];
        const std::uint64_t g = global_.read();
        global_mirror_.store(g, std::memory_order_relaxed);
        if (proc.coast_epoch == g + 1 &&
            ++proc.coast_tries % kCoastStride != 0) {
          flush(p, g);
          if (!free.empty()) proc.coast_epoch = 0;
        } else {
          flush_pending(p);
          std::uint64_t e = g;
          for (int round = 0; round < 2 && free.empty(); ++round) {
            e = try_advance(p);
            flush(p, e);
          }
          proc.coast_epoch = (free.empty() && e == g) ? g + 1 : 0;
          proc.coast_tries = 0;
        }
      } else {
        if constexpr (kDeferred) flush_pending(p);
        for (int round = 0; round < 2 && free.empty(); ++round) {
          flush(p, try_advance(p));
        }
      }
    }
    if (free.empty()) return std::nullopt;
    const std::uint64_t idx = free.front();
    free.pop_front();
    // In-flight marker: if p dies before its linking CAS commits, an
    // expropriator quarantines this node instead of freeing it.
    procs_[p].in_flight = idx + 1;
    return idx;
  }

  // The structure's linking CAS for p's in-flight node just succeeded.
  void commit(int p) { procs_[p].in_flight = 0; }

  // Eager: stamps the node with the global epoch read *now* (one shared
  // read per retire), not with the retiring region's announced epoch: a
  // concurrent reader may have announced one epoch later than the retirer
  // and still hold a pre-unlink snapshot of this node, and the begin-time
  // stamp would let the node mature while that reader is active. With the
  // retire-time stamp g, every reader that can hold the node announced
  // a ≤ g, and the epoch cannot pass a+1 ≤ g+1 < g+2 while it is active.
  //
  // Deferred: ZERO shared steps — the index lands in the pending ring; a
  // full ring flushes the whole batch under one stamp read (flush-time
  // g' ≥ each retire-time g, so the grace period only lengthens — strictly
  // conservative) plus one amortized advance.
  void retire(int p, std::uint64_t idx) {
    death_self_check(procs_[p].death);
    const ReclaimPhase resume = procs_[p].phase;
    procs_[p].phase = ReclaimPhase::kMidRetire;
    if constexpr (kDeferred) {
      procs_[p].pending.enqueue(idx);
      if (procs_[p].pending.full()) flush_pending(p);
    } else {
      // In-retire marker: the global read below is a shared step p can die
      // at, with idx unlinked but not yet on any list. An expropriator that
      // finds the marker set re-records the node itself.
      procs_[p].in_retire = idx + 1;
      const std::uint64_t g = global_.read();
      global_mirror_.store(g, std::memory_order_relaxed);
      procs_[p].limbo.push_back(Limbo{idx, g});
      procs_[p].in_retire = 0;
      if (++procs_[p].retires_since_advance >= kAdvanceEvery) {
        procs_[p].retires_since_advance = 0;
        flush(p, try_advance(p));
      }
    }
    procs_[p].phase = resume;
  }

  // Batch hand-off (the Reclaimer concept's batched verb): all n indices
  // stamped under ONE global read, then one amortized advance+flush. In
  // deferred mode the batch routes through the pending ring (flushing
  // whenever it fills), so crash accounting is identical to retire()'s.
  void retire_batch(int p, const std::uint64_t* idxs, std::size_t count) {
    death_self_check(procs_[p].death);
    if (count == 0) return;
    const ReclaimPhase resume = procs_[p].phase;
    procs_[p].phase = ReclaimPhase::kMidRetire;
    if constexpr (kDeferred) {
      for (std::size_t i = 0; i < count; ++i) {
        procs_[p].pending.enqueue(idxs[i]);
        if (procs_[p].pending.full()) flush_pending(p);
      }
    } else {
      const std::uint64_t g = global_.read();
      global_mirror_.store(g, std::memory_order_relaxed);
      for (std::size_t i = 0; i < count; ++i) {
        procs_[p].limbo.push_back(Limbo{idxs[i], g});
      }
      procs_[p].retires_since_advance += count;
      if (procs_[p].retires_since_advance >= kAdvanceEvery) {
        procs_[p].retires_since_advance = 0;
        flush(p, try_advance(p));
      }
    }
    procs_[p].phase = resume;
  }

  // Drains p's pending ring into limbo under one stamp read, then runs the
  // amortized advance+flush. The only shared step before the ring empties
  // is the stamp read itself, so a death at any shared step leaves the
  // batch either entirely in the ring (swept by expropriate()) or entirely
  // in limbo (spliced as usual) — no half-recorded gap.
  void flush_pending(int p) {
    auto& pending = procs_[p].pending;
    if (pending.empty()) return;
    const std::uint64_t g = global_.read();
    global_mirror_.store(g, std::memory_order_relaxed);
    while (!pending.empty()) {
      procs_[p].limbo.push_back(Limbo{pending.dequeue(), g});
    }
    flush(p, try_advance(p));
  }

  // Attempts one epoch advance; returns the freshest global epoch known.
  // Advance succeeds only when every announcement is quiescent or current —
  // a single stale reader (announcement < e) vetoes it... unless the oracle
  // says that reader is dead, in which case the two-phase handshake runs
  // and a confirmed death is expropriated (its announcement written
  // quiescent) instead of vetoing. p is the advancing process (the splice
  // destination); p < 0 — the engine-side/test overload — never
  // expropriates (and never self-refreshes).
  //
  // Deferred mode: opens with Fence::heavy() — the advance IS the scan-
  // shaped heavy side (membarrier on FastAsymmetric; free elsewhere) that
  // makes every pending light announce visible before the scan below.
  std::uint64_t try_advance(int p = -1) {
    if constexpr (kDeferred) PlatformFenceT<P>::heavy();
    const std::uint64_t e = global_.read();
    global_mirror_.store(e, std::memory_order_relaxed);
    if constexpr (kDeferred) {
      // Self-refresh: the deferred end_op leaves p's announcement
      // published, so p's own cache would veto p's own advance forever.
      // try_advance(p) only runs outside p's regions (allocate and retire
      // are post-end_op by the structure contract), so re-announcing the
      // current epoch is safe — p holds no snapshots the old value
      // protected.
      if (p >= 0 && procs_[p].announce_mirror != kQuiescent &&
          procs_[p].announce_mirror != e) {
        announce_[p]->write(e);
        PlatformFenceT<P>::light();
        procs_[p].announce_mirror = e;
      }
    }
    // Dead-lease sweep first — every dead-looking process, not just the
    // stale announcers: a process can die inside retire() *after* its
    // end_op (the structures retire post-region), with a quiescent
    // announcement but an orphaned in-retire node plus limbo and free
    // lists. Sweeping unconditionally drains those too; a confirmed death's
    // now-quiescent announcement then no longer vetoes the advance below.
    expropriate_dead(p, e);
    for (int q = 0; q < n_; ++q) {
      const std::uint64_t a = announce_[q]->read();
      if (a == kQuiescent || a == e) continue;
      // Stale announcement by a live (or merely suspected) holder: veto.
      return e;
    }
    // CAS, not write: concurrent advancers must bump at most once from e.
    if (global_.cas(e, e + 1)) {
      global_mirror_.store(e + 1, std::memory_order_relaxed);
      return e + 1;
    }
    return e;
  }

  // Moves p's matured limbo nodes (stamped ≤ epoch − 2) to the free list.
  void flush(int p, std::uint64_t epoch) {
    auto& limbo = procs_[p].limbo;
    while (!limbo.empty() && limbo.front().epoch + 2 <= epoch) {
      procs_[p].free.push_back(limbo.front().index);
      limbo.pop_front();
    }
  }

  // Two-phase dead-lease sweep (reclaim/death.h), run at every advance
  // attempt: suspect on one visit, confirm — re-consulting the oracle — on
  // a later one. With no oracle (or no deaths) this performs no shared
  // steps, keeping the committed schedule corpus bit-identical.
  void expropriate_dead(int p, std::uint64_t e) {
    if (death_oracle_ == nullptr || p < 0) return;
    for (int q = 0; q < n_; ++q) {
      if (q == p || !death_oracle_->is_dead(q)) continue;
      if (advance_death(procs_[q].death) == DeathStep::kConfirmed) {
        expropriate(p, q, e);
      }
    }
  }

  // p won the confirm CAS on q's death word during an advance that read
  // global epoch e: drain q. One shared write (the quiescent announcement);
  // the list splices are q's orphaned, now exclusively-owned bookkeeping.
  void expropriate(int p, int q, std::uint64_t e) {
    auto& victim = procs_[q];
    auto& mine = procs_[p];
    announce_[q]->write(kQuiescent);
    victim.announce_mirror = kQuiescent;
    if (victim.in_retire != 0) {
      // q died inside retire, after unlinking but possibly before the limbo
      // push. Re-record conservatively with the current epoch (a full fresh
      // grace period) unless the push did land.
      const std::uint64_t idx = victim.in_retire - 1;
      bool listed = false;
      for (const auto& l : victim.limbo) {
        if (l.index == idx) {
          listed = true;
          break;
        }
      }
      if (!listed) victim.limbo.push_back(Limbo{idx, e});
      victim.in_retire = 0;
    }
    // A batch parked in the dead process's pending ring: every entry is
    // unlinked but unstamped. Re-stamp with the current epoch (a full fresh
    // grace period, the in_retire rule applied batch-wide) — e is the
    // maximum stamp in flight, so appending keeps the limbo stamp-sorted.
    // Bounded garbage: at most kRetireBatch nodes per crash.
    while (!victim.pending.empty()) {
      victim.limbo.push_back(Limbo{victim.pending.dequeue(), e});
    }
    // Both limbo deques are stamp-sorted; merge keeps flush()'s
    // pop-matured-from-the-front invariant.
    std::deque<Limbo> merged;
    std::merge(mine.limbo.begin(), mine.limbo.end(), victim.limbo.begin(),
               victim.limbo.end(), std::back_inserter(merged),
               [](const Limbo& a, const Limbo& b) { return a.epoch < b.epoch; });
    mine.limbo = std::move(merged);
    victim.limbo.clear();
    while (!victim.free.empty()) {
      mine.free.push_back(victim.free.front());
      victim.free.pop_front();
    }
    if (victim.in_flight != 0) {
      // Possibly linked by a CAS whose bookkeeping store never ran —
      // quarantine, never free.
      mine.quarantine.push_back(victim.in_flight - 1);
      victim.in_flight = 0;
    }
    ++mine.expropriations;
  }

  std::uint64_t global_epoch() { return global_.read(); }
  std::size_t pool_size() const { return pool_size_; }
  std::size_t unreclaimed(int p) const {
    return procs_[p].limbo.size() + procs_[p].pending.size();
  }
  std::size_t free_count(int p) const { return procs_[p].free.size(); }
  std::size_t pending_count(int p) const { return procs_[p].pending.size(); }

  // Engine-side observability (reclaimer.h). The epoch lag — how far the
  // freshest-known global epoch has left the oldest *active* announcement
  // behind — is computed from relaxed mirror fields maintained at the write
  // sites, because reading the real platform registers would cost shared
  // steps (and, on the simulator, could only run on a simulated thread).
  // The deferred mode keeps the same discipline: the cache hit updates no
  // mirror (the announcement did not change), so stats stay mirror-only
  // with no new shared steps. A lag that stays pinned at 0 while retires
  // accumulate is the signature of a frozen epoch: the stalled announcer IS
  // the current epoch's hostage. Note that in deferred mode an IDLE
  // process's parked announcement counts toward the lag — honest, because
  // it pins the epoch exactly like an active region until detach.
  ReclaimStats stats() const {
    ReclaimStats s;
    s.pool_size = pool_size_;
    const std::uint64_t global = global_mirror_.load(std::memory_order_relaxed);
    for (const auto& proc : procs_) {
      s.retired_unreclaimed += proc.limbo.size() + proc.pending.size();
      s.free_nodes += proc.free.size();
      if (proc.announce_mirror != kQuiescent &&
          global > proc.announce_mirror) {
        const std::uint64_t lag = global - proc.announce_mirror;
        if (lag > s.epoch_lag) s.epoch_lag = lag;
      }
      // proc.in_retire is deliberately NOT folded into retired_unreclaimed:
      // the committed schedule corpus's golden peaks sample stats while a
      // process is parked inside retire, where the marker is transiently
      // set. Conservation tests account for it explicitly.
      s.quarantined += proc.quarantine.size();
      if (proc.in_flight != 0) ++s.in_flight;
      s.expropriations += proc.expropriations;
    }
    return s;
  }
  ReclaimPhase phase(int p) const { return procs_[p].phase; }

  // The thread-private state the signature key misses: limbo stamps,
  // free-list order and pending-batch contents decide what future flushes
  // release, the advance counter decides *when* the next amortized advance
  // fires, and the crash bookkeeping decides what an expropriator would
  // drain.
  std::uint64_t fingerprint() const {
    Fingerprint fp;
    for (const auto& proc : procs_) {
      fp.mix_range(proc.free);
      fp.mix(proc.limbo.size());
      for (const Limbo& l : proc.limbo) fp.mix(l.index).mix(l.epoch);
      fp.mix(proc.retires_since_advance);
      fp.mix(proc.pending.size());
      for (std::size_t i = 0; i < proc.pending.size(); ++i) {
        fp.mix(proc.pending.peek(i));
      }
      fp.mix(proc.announce_mirror);
      fp.mix(static_cast<std::uint64_t>(proc.phase));
      fp.mix(proc.in_flight);
      fp.mix(proc.in_retire);
      fp.mix_range(proc.quarantine);
      fp.mix(proc.expropriations);
      fp.mix(proc.death.load(std::memory_order_relaxed));
    }
    return fp.value();
  }

 private:
  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  struct Limbo {
    std::uint64_t index;
    std::uint64_t epoch;  // Global epoch at retire (or batch-flush) time.
  };

  // Thread-private bookkeeping, one cache line per process so the limbo/
  // free container headers touched on every retire/allocate never
  // false-share between processes.
  struct alignas(util::kCacheLineSize) PerProcess {
    std::deque<std::uint64_t> free;
    std::deque<Limbo> limbo;
    std::size_t retires_since_advance = 0;
    // Pressure-path throttle (heavy-advance platforms only): g+1 of the
    // epoch a starved advance round failed at (0 = not coasting), and the
    // starved allocates since. See allocate().
    std::uint64_t coast_epoch = 0;
    std::uint64_t coast_tries = 0;
    // The deferred retire batch: unlinked, unstamped indices awaiting the
    // one-shot flush. Always allocated (eager mode simply never fills it),
    // so both modes share every accounting path.
    structures::LocalRing<std::uint64_t> pending{kRetireBatch};
    // Observability mirrors (reclaimer.h): p's own view of its announcement
    // and protocol position. Written only by p, read by the engine while
    // the processes are parked — no shared steps, no races.
    std::uint64_t announce_mirror = kQuiescent;
    ReclaimPhase phase = ReclaimPhase::kIdle;
    // Crash-robustness bookkeeping (reclaim/death.h). in_flight is p's
    // allocated-but-unlinked node, in_retire its unlinked-but-unrecorded
    // retiree (both stored +1); quarantine holds nodes p quarantined from
    // victims it expropriated; death is p's own word in the suspect/confirm
    // handshake — the one field other processes write.
    std::uint64_t in_flight = 0;
    std::uint64_t in_retire = 0;
    std::vector<std::uint64_t> quarantine;
    std::size_t expropriations = 0;
    std::atomic<std::uint8_t> death{kDeathLive};
  };

  const DeathOracle* death_oracle_ = nullptr;
  int n_;
  typename P::WritableCas global_;
  // Freshest global epoch any process has observed; relaxed because it is
  // instrumentation (stats only), never part of the protocol.
  std::atomic<std::uint64_t> global_mirror_{0};
  // unique_ptr: platform objects are immovable; Fast pads each to a line.
  std::vector<std::unique_ptr<typename P::Register>> announce_;
  std::vector<PerProcess> procs_;
  std::size_t pool_size_ = 0;
};

// The deferred-announce instantiation under its own name (the reclaimer
// axis treats it as a sixth policy: same grace-period argument as epoch,
// different hot-path cost model — the guard-caching move applied to
// announcements).
template <Platform P>
using DeferredEpochReclaimer = EpochBasedReclaimer<P, DeferredAnnounce>;

}  // namespace aba::reclaim
