// EpochBasedReclaimer — epoch-based reclamation (Fraser-style EBR) over the
// index pool.
//
// One global epoch counter (a WritableCas) plus one announcement register
// per process. begin_op(p) reads the global epoch and announces it,
// validating that the epoch did not move past the announcement (see the
// method comment); end_op(p) announces quiescence. No per-dereference
// guards: an op pins *every* node reachable during its region at once,
// which is the whole appeal — dereference is free, and retire is one
// shared read plus thread-private work (the index appended to a limbo list
// stamped with the current global epoch). The epoch advances from e to e+1
// only when every non-quiescent announcement equals e, so once the global
// epoch reaches s+2 no active region can still hold a node stamped s —
// that is the classic two-epoch grace period under which limbo nodes flow
// back to the free list.
//
// Per-thread announcements are one shared register each; under the native
// Fast policy every platform word is cache-line padded, so announcements
// never false-share (the util/cacheline.h idiom — the thread-private
// bookkeeping below is padded the same way). Note the announce protocol is
// a StoreLoad pattern (write the announcement, then read the global
// epoch): on native platforms it needs seq_cst orderings, like the
// Figure 4 register — run it on Counted or Fast, not FastRelaxed (E9's
// matrix makes exactly that carve-out).
//
// The dual weakness, measured by the retire-bound stress test: one stalled
// reader freezes the epoch and makes *system-wide* unreclaimed garbage
// unbounded, where hazard pointers bound it by the slot count. The paper's
// lens: epochs answer ABA like tags with an unbounded tag you only advance
// when it is provably safe — immune like LL/SC, but at the cost of
// unbounded space under stalls (exactly the bounded-vs-unbounded tension
// Theorem 1 is about).
//
// Contract: allocate(p) must be called *outside* p's begin_op/end_op
// region — a process cannot advance the epoch past its own stale
// announcement.
//
// Crash robustness (reclaim/death.h): a dead process's stale announcement
// would otherwise freeze the epoch forever — the catastrophic version of
// the stalled-reader weakness. With a DeathOracle installed, every advance
// attempt sweeps all dead-looking processes — not just stale announcers: a
// victim that died inside a post-region retire() has a quiescent
// announcement but orphaned bookkeeping — through the two-phase
// suspect/confirm handshake; the confirm winner
// expropriates: writes the victim's announcement to quiescent (unfreezing
// the epoch), splices its limbo (re-stamping its half-recorded retiree
// conservatively) and free list into its own, and quarantines its in-flight
// allocation. Entry points self-check the caller's own death word and
// self-fence via LeaseRevoked once expropriated. With no oracle every path
// is inert and the step sequence is the classic protocol.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iterator>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/platform.h"
#include "reclaim/death.h"
#include "reclaim/reclaimer.h"
#include "util/assert.h"
#include "util/cacheline.h"

namespace aba::reclaim {

template <Platform P>
class EpochBasedReclaimer {
 public:
  static constexpr const char* kName = "epoch";
  static constexpr bool kNeedsGuard = false;
  // Retires between advance attempts: amortizes the O(n) announcement scan.
  static constexpr std::size_t kAdvanceEvery = 4;

  EpochBasedReclaimer(typename P::Env& env, int n, FreeLists initial_free)
      : n_(n),
        global_(env, "epoch.global", 0, sim::BoundSpec::unbounded()),
        procs_(static_cast<std::size_t>(n)) {
    ABA_CHECK(static_cast<int>(initial_free.size()) == n);
    for (int p = 0; p < n; ++p) {
      procs_[p].free = std::move(initial_free[p]);
      pool_size_ += procs_[p].free.size();
    }
    announce_.reserve(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      announce_.push_back(std::make_unique<typename P::Register>(
          env, "epoch.announce", kQuiescent, sim::BoundSpec::unbounded()));
    }
  }

  // Announce-then-validate: after writing the announcement we re-read the
  // global epoch and retry until it matches. Without the validation a
  // process that stalls between reading the epoch and publishing it could
  // announce an arbitrarily stale value — the epoch would meanwhile have
  // advanced past it, collapsing the grace period for nodes other readers
  // still hold. With it, once begin_op returns the global epoch can be at
  // most announce+1 for as long as this region is active (the advance rule
  // vetoes anything further), which is what the reuse bound relies on.
  // Installs the liveness oracle that arms the expropriation paths (see
  // the header comment). Not a transfer of ownership; call before any
  // process operates.
  void set_death_oracle(const DeathOracle* oracle) { death_oracle_ = oracle; }

  void begin_op(int p) {
    death_self_check(procs_[p].death);
    for (;;) {
      const std::uint64_t e = global_.read();
      announce_[p]->write(e);
      // The announcement is visible from here on: a process parked at the
      // validation read below already pins the epoch, which is exactly the
      // worst step the schedule-search engine aims for.
      procs_[p].announce_mirror = e;
      procs_[p].phase = ReclaimPhase::kEpochAnnounced;
      if (global_.read() == e) return;
    }
  }

  void guard(int /*p*/, int /*slot*/, std::uint64_t /*idx*/) {}

  void end_op(int p) {
    announce_[p]->write(kQuiescent);
    procs_[p].announce_mirror = kQuiescent;
    procs_[p].phase = ReclaimPhase::kIdle;
  }

  std::optional<std::uint64_t> allocate(int p) {
    death_self_check(procs_[p].death);
    auto& free = procs_[p].free;
    if (free.empty()) {
      // Pool pressure: a fresh retiree needs two advances to mature, so try
      // up to two advance+flush rounds before reporting exhaustion.
      for (int round = 0; round < 2 && free.empty(); ++round) {
        flush(p, try_advance(p));
      }
    }
    if (free.empty()) return std::nullopt;
    const std::uint64_t idx = free.front();
    free.pop_front();
    // In-flight marker: if p dies before its linking CAS commits, an
    // expropriator quarantines this node instead of freeing it.
    procs_[p].in_flight = idx + 1;
    return idx;
  }

  // The structure's linking CAS for p's in-flight node just succeeded.
  void commit(int p) { procs_[p].in_flight = 0; }

  // Stamps the node with the global epoch read *now* (one shared read per
  // retire), not with the retiring region's announced epoch: a concurrent
  // reader may have announced one epoch later than the retirer and still
  // hold a pre-unlink snapshot of this node, and the begin-time stamp
  // would let the node mature while that reader is active. With the
  // retire-time stamp g, every reader that can hold the node announced
  // a ≤ g, and the epoch cannot pass a+1 ≤ g+1 < g+2 while it is active.
  void retire(int p, std::uint64_t idx) {
    death_self_check(procs_[p].death);
    const ReclaimPhase resume = procs_[p].phase;
    procs_[p].phase = ReclaimPhase::kMidRetire;
    // In-retire marker: the global read below is a shared step p can die
    // at, with idx unlinked but not yet on any list. An expropriator that
    // finds the marker set re-records the node itself.
    procs_[p].in_retire = idx + 1;
    const std::uint64_t g = global_.read();
    global_mirror_.store(g, std::memory_order_relaxed);
    procs_[p].limbo.push_back(Limbo{idx, g});
    procs_[p].in_retire = 0;
    if (++procs_[p].retires_since_advance >= kAdvanceEvery) {
      procs_[p].retires_since_advance = 0;
      flush(p, try_advance(p));
    }
    procs_[p].phase = resume;
  }

  // Attempts one epoch advance; returns the freshest global epoch known.
  // Advance succeeds only when every announcement is quiescent or current —
  // a single stale reader (announcement < e) vetoes it... unless the oracle
  // says that reader is dead, in which case the two-phase handshake runs
  // and a confirmed death is expropriated (its announcement written
  // quiescent) instead of vetoing. p is the advancing process (the splice
  // destination); p < 0 — the engine-side/test overload — never
  // expropriates.
  std::uint64_t try_advance(int p = -1) {
    const std::uint64_t e = global_.read();
    global_mirror_.store(e, std::memory_order_relaxed);
    // Dead-lease sweep first — every dead-looking process, not just the
    // stale announcers: a process can die inside retire() *after* its
    // end_op (the structures retire post-region), with a quiescent
    // announcement but an orphaned in-retire node plus limbo and free
    // lists. Sweeping unconditionally drains those too; a confirmed death's
    // now-quiescent announcement then no longer vetoes the advance below.
    expropriate_dead(p, e);
    for (int q = 0; q < n_; ++q) {
      const std::uint64_t a = announce_[q]->read();
      if (a == kQuiescent || a == e) continue;
      // Stale announcement by a live (or merely suspected) holder: veto.
      return e;
    }
    // CAS, not write: concurrent advancers must bump at most once from e.
    if (global_.cas(e, e + 1)) {
      global_mirror_.store(e + 1, std::memory_order_relaxed);
      return e + 1;
    }
    return e;
  }

  // Moves p's matured limbo nodes (stamped ≤ epoch − 2) to the free list.
  void flush(int p, std::uint64_t epoch) {
    auto& limbo = procs_[p].limbo;
    while (!limbo.empty() && limbo.front().epoch + 2 <= epoch) {
      procs_[p].free.push_back(limbo.front().index);
      limbo.pop_front();
    }
  }

  // Two-phase dead-lease sweep (reclaim/death.h), run at every advance
  // attempt: suspect on one visit, confirm — re-consulting the oracle — on
  // a later one. With no oracle (or no deaths) this performs no shared
  // steps, keeping the committed schedule corpus bit-identical.
  void expropriate_dead(int p, std::uint64_t e) {
    if (death_oracle_ == nullptr || p < 0) return;
    for (int q = 0; q < n_; ++q) {
      if (q == p || !death_oracle_->is_dead(q)) continue;
      if (advance_death(procs_[q].death) == DeathStep::kConfirmed) {
        expropriate(p, q, e);
      }
    }
  }

  // p won the confirm CAS on q's death word during an advance that read
  // global epoch e: drain q. One shared write (the quiescent announcement);
  // the list splices are q's orphaned, now exclusively-owned bookkeeping.
  void expropriate(int p, int q, std::uint64_t e) {
    auto& victim = procs_[q];
    auto& mine = procs_[p];
    announce_[q]->write(kQuiescent);
    victim.announce_mirror = kQuiescent;
    if (victim.in_retire != 0) {
      // q died inside retire, after unlinking but possibly before the limbo
      // push. Re-record conservatively with the current epoch (a full fresh
      // grace period) unless the push did land.
      const std::uint64_t idx = victim.in_retire - 1;
      bool listed = false;
      for (const auto& l : victim.limbo) {
        if (l.index == idx) {
          listed = true;
          break;
        }
      }
      if (!listed) victim.limbo.push_back(Limbo{idx, e});
      victim.in_retire = 0;
    }
    // Both limbo deques are stamp-sorted; merge keeps flush()'s
    // pop-matured-from-the-front invariant.
    std::deque<Limbo> merged;
    std::merge(mine.limbo.begin(), mine.limbo.end(), victim.limbo.begin(),
               victim.limbo.end(), std::back_inserter(merged),
               [](const Limbo& a, const Limbo& b) { return a.epoch < b.epoch; });
    mine.limbo = std::move(merged);
    victim.limbo.clear();
    while (!victim.free.empty()) {
      mine.free.push_back(victim.free.front());
      victim.free.pop_front();
    }
    if (victim.in_flight != 0) {
      // Possibly linked by a CAS whose bookkeeping store never ran —
      // quarantine, never free.
      mine.quarantine.push_back(victim.in_flight - 1);
      victim.in_flight = 0;
    }
    ++mine.expropriations;
  }

  std::uint64_t global_epoch() { return global_.read(); }
  std::size_t pool_size() const { return pool_size_; }
  std::size_t unreclaimed(int p) const { return procs_[p].limbo.size(); }
  std::size_t free_count(int p) const { return procs_[p].free.size(); }

  // Engine-side observability (reclaimer.h). The epoch lag — how far the
  // freshest-known global epoch has left the oldest *active* announcement
  // behind — is computed from relaxed mirror fields maintained at the write
  // sites, because reading the real platform registers would cost shared
  // steps (and, on the simulator, could only run on a simulated thread).
  // A lag that stays pinned at 0 while retires accumulate is the signature
  // of a frozen epoch: the stalled announcer IS the current epoch's hostage.
  ReclaimStats stats() const {
    ReclaimStats s;
    s.pool_size = pool_size_;
    const std::uint64_t global = global_mirror_.load(std::memory_order_relaxed);
    for (const auto& proc : procs_) {
      s.retired_unreclaimed += proc.limbo.size();
      s.free_nodes += proc.free.size();
      if (proc.announce_mirror != kQuiescent &&
          global > proc.announce_mirror) {
        const std::uint64_t lag = global - proc.announce_mirror;
        if (lag > s.epoch_lag) s.epoch_lag = lag;
      }
      // proc.in_retire is deliberately NOT folded into retired_unreclaimed:
      // the committed schedule corpus's golden peaks sample stats while a
      // process is parked inside retire, where the marker is transiently
      // set. Conservation tests account for it explicitly.
      s.quarantined += proc.quarantine.size();
      if (proc.in_flight != 0) ++s.in_flight;
      s.expropriations += proc.expropriations;
    }
    return s;
  }
  ReclaimPhase phase(int p) const { return procs_[p].phase; }

  // The thread-private state the signature key misses: limbo stamps and
  // free-list order decide what future flushes release, the advance counter
  // decides *when* the next amortized advance fires, and the crash
  // bookkeeping decides what an expropriator would drain.
  std::uint64_t fingerprint() const {
    Fingerprint fp;
    for (const auto& proc : procs_) {
      fp.mix_range(proc.free);
      fp.mix(proc.limbo.size());
      for (const Limbo& l : proc.limbo) fp.mix(l.index).mix(l.epoch);
      fp.mix(proc.retires_since_advance);
      fp.mix(proc.announce_mirror);
      fp.mix(static_cast<std::uint64_t>(proc.phase));
      fp.mix(proc.in_flight);
      fp.mix(proc.in_retire);
      fp.mix_range(proc.quarantine);
      fp.mix(proc.expropriations);
      fp.mix(proc.death.load(std::memory_order_relaxed));
    }
    return fp.value();
  }

 private:
  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  struct Limbo {
    std::uint64_t index;
    std::uint64_t epoch;  // Global epoch at retire time.
  };

  // Thread-private bookkeeping, one cache line per process so the limbo/
  // free container headers touched on every retire/allocate never
  // false-share between processes.
  struct alignas(util::kCacheLineSize) PerProcess {
    std::deque<std::uint64_t> free;
    std::deque<Limbo> limbo;
    std::size_t retires_since_advance = 0;
    // Observability mirrors (reclaimer.h): p's own view of its announcement
    // and protocol position. Written only by p, read by the engine while
    // the processes are parked — no shared steps, no races.
    std::uint64_t announce_mirror = kQuiescent;
    ReclaimPhase phase = ReclaimPhase::kIdle;
    // Crash-robustness bookkeeping (reclaim/death.h). in_flight is p's
    // allocated-but-unlinked node, in_retire its unlinked-but-unrecorded
    // retiree (both stored +1); quarantine holds nodes p quarantined from
    // victims it expropriated; death is p's own word in the suspect/confirm
    // handshake — the one field other processes write.
    std::uint64_t in_flight = 0;
    std::uint64_t in_retire = 0;
    std::vector<std::uint64_t> quarantine;
    std::size_t expropriations = 0;
    std::atomic<std::uint8_t> death{kDeathLive};
  };

  const DeathOracle* death_oracle_ = nullptr;
  int n_;
  typename P::WritableCas global_;
  // Freshest global epoch any process has observed; relaxed because it is
  // instrumentation (stats only), never part of the protocol.
  std::atomic<std::uint64_t> global_mirror_{0};
  // unique_ptr: platform objects are immovable; Fast pads each to a line.
  std::vector<std::unique_ptr<typename P::Register>> announce_;
  std::vector<PerProcess> procs_;
  std::size_t pool_size_ = 0;
};

}  // namespace aba::reclaim
