// HazardDomain — pointer-based hazard pointers (Michael [20, 21]) for
// native heap-allocated structures.
//
// This is the application-specific memory-reclamation answer to the ABA
// problem that the paper contrasts with its methodological ABA-detecting-
// register approach. A fixed domain of per-thread hazard slots; readers
// publish the pointer they are about to dereference, then re-validate the
// source; retiring threads defer reclamation until no slot holds the
// pointer. This prevents both use-after-free and the pointer-recycling ABA:
// a node cannot be recycled (and hence cannot reappear under the same
// address) while a hazard pointer pins it.
//
// Native-only (std::atomic, seq_cst): this type serves the heap-allocating
// HpTreiberStack (structures/hp_stack.h) used by the application-level
// comparison benches and stress tests. The platform-generic, index-based
// variant that the simulator proofs and the reclaimer sweeps use is
// HazardPointerReclaimer (reclaim/hazard_pointer.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/assert.h"
#include "util/backoff.h"
#include "util/cacheline.h"

namespace aba::reclaim {

class HazardDomain {
 public:
  HazardDomain(int max_threads, int slots_per_thread)
      : max_threads_(max_threads),
        slots_per_thread_(slots_per_thread),
        slots_(static_cast<std::size_t>(max_threads) * slots_per_thread),
        retired_(max_threads) {
    ABA_CHECK(max_threads >= 1 && slots_per_thread >= 1);
  }

  ~HazardDomain() {
    // All threads are done: reclaim everything still retired.
    for (auto& list : retired_) {
      for (auto& node : list) node.deleter(node.ptr);
      list.clear();
    }
  }

  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  // Publishes src's current value in (tid, slot) and re-validates until
  // stable. Returns the protected pointer (possibly null).
  template <class T>
  T* protect(int tid, int slot, const std::atomic<T*>& src) {
    std::atomic<const void*>& hp = slot_ref(tid, slot).ptr;
    T* ptr = src.load();
    for (;;) {
      hp.store(ptr);
      T* again = src.load();
      if (again == ptr) return ptr;
      ptr = again;
    }
  }

  void clear(int tid, int slot) { slot_ref(tid, slot).ptr.store(nullptr); }

  // Defers reclamation of `ptr` until no hazard slot holds it.
  void retire(int tid, void* ptr, std::function<void(void*)> deleter) {
    auto& list = retired_[tid];
    list.push_back(Retired{ptr, std::move(deleter)});
    if (list.size() >= scan_threshold()) scan(tid);
  }

  // Reclaims every retired pointer not currently protected.
  void scan(int tid) {
    std::vector<const void*> protected_ptrs;
    protected_ptrs.reserve(slots_.size());
    for (const auto& slot : slots_) {
      const void* p = slot.ptr.load();
      if (p != nullptr) protected_ptrs.push_back(p);
    }
    auto& list = retired_[tid];
    std::vector<Retired> keep;
    keep.reserve(list.size());
    for (auto& node : list) {
      bool pinned = false;
      for (const void* p : protected_ptrs) {
        if (p == node.ptr) {
          pinned = true;
          break;
        }
      }
      if (pinned) {
        keep.push_back(std::move(node));
      } else {
        node.deleter(node.ptr);
      }
    }
    list = std::move(keep);
  }

  std::size_t retired_count(int tid) const { return retired_[tid].size(); }
  std::size_t scan_threshold() const {
    // Standard rule of thumb: 2 * H where H = total hazard slots.
    return 2 * slots_.size();
  }

 private:
  // Each hazard slot is written by exactly one thread (its owner) and read
  // by every scanning thread; one slot per cache line keeps a thread's
  // publish/clear traffic from invalidating its neighbours' slots.
  struct alignas(util::kCacheLineSize) HazardSlot {
    std::atomic<const void*> ptr{nullptr};
  };

  HazardSlot& slot_ref(int tid, int slot) {
    ABA_ASSERT(tid >= 0 && tid < max_threads_);
    ABA_ASSERT(slot >= 0 && slot < slots_per_thread_);
    return slots_[static_cast<std::size_t>(tid) * slots_per_thread_ + slot];
  }

  struct Retired {
    void* ptr;
    std::function<void(void*)> deleter;
  };

  int max_threads_;
  int slots_per_thread_;
  std::vector<HazardSlot> slots_;
  std::vector<std::vector<Retired>> retired_;  // Per-thread; thread-private.
};

}  // namespace aba::reclaim
