// Test/verification harness: drives implementations in a SimWorld through
// schedules while recording linearizability histories.
//
// The harness separates three roles:
//   - a FixtureFactory builds a fresh implementation inside a given SimWorld
//     and returns an Invoker that maps abstract WorkloadOps (pid, method,
//     arg) onto method invocations that record into a History;
//   - schedule drivers (random, round-robin, scripted) decide which process
//     moves at each point — invoke its next workload op if idle, otherwise
//     grant one step;
//   - the bounded exhaustive model checker enumerates *all* interleavings of
//     a small workload by depth-first search with deterministic replay
//     (SimWorld cannot fork, but executions are replayable from their choice
//     sequences).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "reclaim/reclaimer.h"
#include "sim/sim_world.h"
#include "spec/history.h"

namespace aba::harness {

struct WorkloadOp {
  int pid = 0;
  spec::Method method = spec::Method::kRead;
  std::uint64_t arg = 0;
};

// Maps WorkloadOps onto method invocations of a concrete implementation.
class Invoker {
 public:
  virtual ~Invoker() = default;
  // Starts the op on its process (which must be idle). The closure records
  // invocation and response into the harness history.
  virtual void invoke(const WorkloadOp& op) = 0;

  // Reclamation observability, forwarded from the implementation under
  // test (the structure adapters in adapters.h override these whenever the
  // impl exposes a reclaimer). The schedule-search engine samples stats to
  // score a configuration and reads phases to park a process at the worst
  // step; the defaults make every other invoker a benign no-op target.
  virtual reclaim::ReclaimStats reclaim_stats() const { return {}; }
  virtual reclaim::ReclaimPhase reclaim_phase(int /*pid*/) const {
    return reclaim::ReclaimPhase::kIdle;
  }
  // Hash of the reclaimer's thread-private bookkeeping (reclaim::Fingerprint)
  // — the state SimWorld::signature_key() omits. The model checker folds it
  // into its DPOR state key; 0 for implementations with nothing hidden.
  virtual std::uint64_t reclaim_fingerprint() const { return 0; }
};

// Builds the implementation under test in `world` and returns its invoker.
// Called once per execution (the model checker re-creates everything per
// replayed path).
using FixtureFactory = std::function<std::unique_ptr<Invoker>(
    sim::SimWorld& world, spec::History& history)>;

// Checks a complete history; returns true iff acceptable.
using HistoryCheck = std::function<bool(const std::vector<spec::Op>&)>;

// ---------------------------------------------------------------------------
// Random-schedule property runner. Per-process workload queues are consumed
// in order; at every juncture a uniformly random runnable process (seeded)
// either starts its next op or executes one step. Returns the history.
// ---------------------------------------------------------------------------

// The effective seed for a random schedule: `fallback` unless the
// ABA_SCHEDULE_SEED environment variable is set, which pins EVERY random
// schedule in the process to that seed — the repro knob for a failure
// report (run the one failing test under --gtest_filter with the seed the
// failure message printed).
std::uint64_t schedule_seed(std::uint64_t fallback);

// Replay record of one random-schedule run: the effective seed and the
// step-grant script (the pid moved at each juncture — invoke-if-idle, else
// one step, exactly the advance rule the drivers use). Failure messages
// embed to_string() so any reported failure is replayable verbatim.
struct ScheduleLog {
  std::uint64_t seed = 0;
  std::vector<int> grants;

  std::string to_string() const;
};

std::vector<spec::Op> run_random_schedule(int num_processes,
                                          const FixtureFactory& factory,
                                          const std::vector<WorkloadOp>& workload,
                                          std::uint64_t seed,
                                          ScheduleLog* log = nullptr);

// The factory-free variant: drives the same uniformly random schedule over a
// caller-owned world and invoker. Use this when the invoker accumulates
// state the test needs to read after the run — e.g. the per-op shard tags
// the sharded adapters record — which the FixtureFactory interface would
// discard with the invoker at return.
void drive_random_schedule(sim::SimWorld& world, Invoker& invoker,
                           int num_processes,
                           const std::vector<WorkloadOp>& workload,
                           std::uint64_t seed, ScheduleLog* log = nullptr);

// Round-robin over processes with a fixed quantum of steps (quantum = big
// number approximates running ops solo, quantum = 1 maximizes interleaving).
std::vector<spec::Op> run_round_robin(int num_processes,
                                      const FixtureFactory& factory,
                                      const std::vector<WorkloadOp>& workload,
                                      int quantum);

// ---------------------------------------------------------------------------
// Bounded exhaustive model checking.
// ---------------------------------------------------------------------------
struct ModelCheckResult {
  std::uint64_t executions = 0;       // Complete interleavings explored.
  std::uint64_t violations = 0;       // Histories failing the check.
  bool budget_exhausted = false;      // Stopped early at max_executions.
  std::vector<spec::Op> first_violation;  // History of the first failure.

  bool ok() const { return violations == 0; }
};

// Explores every interleaving of `workload` (each process's ops in program
// order, arbitrary interleaving of steps across processes), checking each
// complete history. Stops after max_executions interleavings.
ModelCheckResult model_check(int num_processes, const FixtureFactory& factory,
                             const std::vector<WorkloadOp>& workload,
                             const HistoryCheck& check,
                             std::uint64_t max_executions = 200000);

}  // namespace aba::harness
