#include "harness/harness.h"

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <sstream>

#include "util/assert.h"
#include "util/rng.h"

namespace aba::harness {

namespace {

// Shared driver state: per-process queues of not-yet-invoked ops.
struct Pending {
  std::vector<std::deque<WorkloadOp>> queues;

  explicit Pending(int n, const std::vector<WorkloadOp>& workload) : queues(n) {
    for (const auto& op : workload) {
      ABA_ASSERT(op.pid >= 0 && op.pid < n);
      queues[op.pid].push_back(op);
    }
  }

  bool runnable(const sim::SimWorld& world, int pid) const {
    if (world.poised(pid).has_value()) return true;
    return world.is_idle(pid) && !queues[pid].empty();
  }

  bool all_done(const sim::SimWorld& world) const {
    for (std::size_t pid = 0; pid < queues.size(); ++pid) {
      // A crashed process is done by definition: it never runs again and
      // its remaining queued ops are abandoned with it.
      if (world.is_crashed(static_cast<int>(pid))) continue;
      if (!queues[pid].empty()) return false;
      if (!world.is_idle(static_cast<int>(pid))) return false;
    }
    return true;
  }

  // Moves process pid: one step if poised, else invoke its next op. With
  // fuse_invoke, invoking immediately also executes the method's first step
  // (used by the exhaustive checker: invocation alone is not a shared-memory
  // step, so giving it its own scheduling slot would only multiply the
  // number of interleavings without adding distinguishable behaviours
  // beyond invocation-timestamp placement).
  void advance(sim::SimWorld& world, Invoker& invoker, int pid,
               bool fuse_invoke = false) {
    if (world.poised(pid).has_value()) {
      world.step(pid);
      return;
    }
    ABA_ASSERT(world.is_idle(pid) && !queues[pid].empty());
    const WorkloadOp op = queues[pid].front();
    queues[pid].pop_front();
    invoker.invoke(op);
    if (fuse_invoke && world.poised(pid).has_value()) world.step(pid);
  }
};

}  // namespace

std::uint64_t schedule_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("ABA_SCHEDULE_SEED")) {
    char* end = nullptr;
    const unsigned long long pinned = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') return pinned;
    // A malformed override must not silently unpin a replay: warn once (the
    // harness is called per test, and one line per run is plenty).
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "harness: ABA_SCHEDULE_SEED=\"%s\" is not a number; "
                   "ignoring it and using per-test fallback seeds\n",
                   env);
    }
  }
  return fallback;
}

std::string ScheduleLog::to_string() const {
  std::ostringstream out;
  out << "replay: ABA_SCHEDULE_SEED=" << seed << " grants=[";
  for (std::size_t i = 0; i < grants.size(); ++i) {
    if (i > 0) out << ' ';
    out << grants[i];
  }
  out << "]";
  return out.str();
}

void drive_random_schedule(sim::SimWorld& world, Invoker& invoker,
                           int num_processes,
                           const std::vector<WorkloadOp>& workload,
                           std::uint64_t seed, ScheduleLog* log) {
  Pending pending(num_processes, workload);
  ScheduleLog local;
  if (log == nullptr) log = &local;
  log->seed = schedule_seed(seed);
  log->grants.clear();
  util::Xoshiro256 rng(log->seed);

  while (!pending.all_done(world)) {
    std::vector<int> runnable;
    for (int pid = 0; pid < num_processes; ++pid) {
      if (pending.runnable(world, pid)) runnable.push_back(pid);
    }
    if (runnable.empty()) {
      // Replayable forever: the message carries the seed and the full
      // grant script that reached the stuck configuration.
      const std::string detail =
          "no runnable process but work remains — " + log->to_string();
      ABA_CHECK_MSG(false, detail.c_str());
    }
    const int pid = runnable[rng.below(runnable.size())];
    log->grants.push_back(pid);
    pending.advance(world, invoker, pid);
  }
}

std::vector<spec::Op> run_random_schedule(int num_processes,
                                          const FixtureFactory& factory,
                                          const std::vector<WorkloadOp>& workload,
                                          std::uint64_t seed, ScheduleLog* log) {
  sim::SimWorld world(num_processes);
  world.set_trace_enabled(false);
  spec::History history;
  auto invoker = factory(world, history);
  drive_random_schedule(world, *invoker, num_processes, workload, seed, log);
  return history.ops();
}

std::vector<spec::Op> run_round_robin(int num_processes,
                                      const FixtureFactory& factory,
                                      const std::vector<WorkloadOp>& workload,
                                      int quantum) {
  ABA_ASSERT(quantum >= 1);
  sim::SimWorld world(num_processes);
  world.set_trace_enabled(false);
  spec::History history;
  auto invoker = factory(world, history);
  Pending pending(num_processes, workload);

  int pid = 0;
  while (!pending.all_done(world)) {
    int moved = 0;
    while (moved < quantum && pending.runnable(world, pid)) {
      pending.advance(world, *invoker, pid);
      ++moved;
    }
    pid = (pid + 1) % num_processes;
  }
  return history.ops();
}

namespace {

// Depth-first enumeration of interleavings with replay. A path is the
// sequence of process ids chosen at each juncture; replaying a path on a
// fresh world deterministically reconstructs the configuration.
struct Explorer {
  int num_processes;
  const FixtureFactory& factory;
  const std::vector<WorkloadOp>& workload;
  const HistoryCheck& check;
  std::uint64_t max_executions;
  ModelCheckResult result;

  struct Run {
    std::unique_ptr<sim::SimWorld> world;
    spec::History history;
    std::unique_ptr<Invoker> invoker;
    std::unique_ptr<Pending> pending;
  };

  std::unique_ptr<Run> replay(const std::vector<int>& path) {
    auto run = std::make_unique<Run>();
    run->world = std::make_unique<sim::SimWorld>(num_processes);
    run->world->set_trace_enabled(false);
    run->invoker = factory(*run->world, run->history);
    run->pending = std::make_unique<Pending>(num_processes, workload);
    for (int pid : path) {
      run->pending->advance(*run->world, *run->invoker, pid, /*fuse_invoke=*/true);
    }
    return run;
  }

  // Explores all completions of `path`. `run` is positioned at the end of
  // `path`; the function may consume it (it rebuilds siblings by replay).
  void dfs(std::vector<int>& path, std::unique_ptr<Run> run) {
    if (result.budget_exhausted) return;

    std::vector<int> choices;
    for (int pid = 0; pid < num_processes; ++pid) {
      if (run->pending->runnable(*run->world, pid)) choices.push_back(pid);
    }

    if (choices.empty()) {
      ABA_ASSERT(run->pending->all_done(*run->world));
      ++result.executions;
      const auto ops = run->history.ops();
      if (!check(ops)) {
        ++result.violations;
        if (result.first_violation.empty()) result.first_violation = ops;
      }
      if (result.executions >= max_executions) result.budget_exhausted = true;
      return;
    }

    for (std::size_t i = 0; i < choices.size(); ++i) {
      if (result.budget_exhausted) return;
      // Reuse the incoming run for the first child; rebuild for the rest.
      std::unique_ptr<Run> child =
          (i == 0) ? std::move(run) : replay(path);
      path.push_back(choices[i]);
      child->pending->advance(*child->world, *child->invoker, choices[i],
                              /*fuse_invoke=*/true);
      dfs(path, std::move(child));
      path.pop_back();
    }
  }
};

}  // namespace

ModelCheckResult model_check(int num_processes, const FixtureFactory& factory,
                             const std::vector<WorkloadOp>& workload,
                             const HistoryCheck& check,
                             std::uint64_t max_executions) {
  Explorer explorer{num_processes, factory, workload, check, max_executions, {}};
  std::vector<int> path;
  explorer.dfs(path, explorer.replay(path));
  return explorer.result;
}

}  // namespace aba::harness
