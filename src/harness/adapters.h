// Invoker adapters: bind concrete implementations to the harness.
//
// Each adapter owns the implementation instance and translates WorkloadOps
// into method invocations on the owning SimWorld, recording invocation and
// response events (with SimWorld logical-clock timestamps) into the History.
//
// make_factory<InvokerT>(...) packages the adapter + implementation pair as
// a FixtureFactory, which is what lets the test suite sweep one workload
// across a whole axis of implementations — in particular every
// (head policy × reclamation policy) combination of the structures layer —
// without a bespoke factory lambda per combination.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "harness/harness.h"
#include "reclaim/reclaimer.h"
#include "sim/sim_world.h"
#include "spec/history.h"
#include "structures/concepts.h"
#include "util/assert.h"

namespace aba::harness {

namespace detail {

// Reclamation observability lookup, in order of preference: a composite
// impl's own aggregate (the sharded router), then a flat impl's reclaimer,
// then the no-op defaults. Lets the same invoker templates drive everything
// from a plain register to an 8-shard stack while still exposing the phase
// markers the schedule-search engine parks processes with.
template <class Impl>
reclaim::ReclaimStats impl_reclaim_stats(const Impl& impl) {
  if constexpr (requires { impl.reclaim_stats(); }) {
    return impl.reclaim_stats();
  } else if constexpr (requires { impl.reclaimer().stats(); }) {
    return impl.reclaimer().stats();
  } else {
    return {};
  }
}

template <class Impl>
reclaim::ReclaimPhase impl_reclaim_phase(const Impl& impl, int pid) {
  if constexpr (requires { impl.reclaim_phase(pid); }) {
    return impl.reclaim_phase(pid);
  } else if constexpr (requires { impl.reclaimer().phase(pid); }) {
    return impl.reclaimer().phase(pid);
  } else {
    return reclaim::ReclaimPhase::kIdle;
  }
}

template <class Impl>
std::uint64_t impl_reclaim_fingerprint(const Impl& impl) {
  if constexpr (requires { impl.reclaim_fingerprint(); }) {
    return impl.reclaim_fingerprint();
  } else if constexpr (requires { impl.reclaimer().fingerprint(); }) {
    return impl.reclaimer().fingerprint();
  } else {
    return 0;
  }
}

}  // namespace detail

// Impl must expose: std::pair<uint64_t,bool> dread(int q); void dwrite(int p, uint64_t x).
template <class Impl>
class AbaRegInvoker : public Invoker {
 public:
  AbaRegInvoker(sim::SimWorld& world, spec::History& history,
                std::unique_ptr<Impl> impl)
      : world_(world), history_(history), impl_(std::move(impl)) {}

  Impl& impl() { return *impl_; }

  void invoke(const WorkloadOp& op) override {
    const std::size_t idx =
        history_.begin_op(op.pid, op.method, op.arg, world_.next_event_time());
    switch (op.method) {
      case spec::Method::kDRead:
        world_.invoke(op.pid, [this, op, idx] {
          const auto [value, flag] = impl_->dread(op.pid);
          history_.complete(idx, spec::pack_dread_result(value, flag),
                            world_.next_event_time());
        });
        break;
      case spec::Method::kDWrite:
        world_.invoke(op.pid, [this, op, idx] {
          impl_->dwrite(op.pid, op.arg);
          history_.complete(idx, 0, world_.next_event_time());
        });
        break;
      default:
        ABA_CHECK_MSG(false, "AbaRegInvoker: unsupported method");
    }
  }

 private:
  sim::SimWorld& world_;
  spec::History& history_;
  std::unique_ptr<Impl> impl_;
};

// Impl must expose: uint64_t ll(int p); bool sc(int p, uint64_t x); bool vl(int p).
template <class Impl>
class LlscInvoker : public Invoker {
 public:
  LlscInvoker(sim::SimWorld& world, spec::History& history,
              std::unique_ptr<Impl> impl)
      : world_(world), history_(history), impl_(std::move(impl)) {}

  Impl& impl() { return *impl_; }

  void invoke(const WorkloadOp& op) override {
    const std::size_t idx =
        history_.begin_op(op.pid, op.method, op.arg, world_.next_event_time());
    switch (op.method) {
      case spec::Method::kLL:
        world_.invoke(op.pid, [this, op, idx] {
          const std::uint64_t value = impl_->ll(op.pid);
          history_.complete(idx, value, world_.next_event_time());
        });
        break;
      case spec::Method::kSC:
        world_.invoke(op.pid, [this, op, idx] {
          const bool ok = impl_->sc(op.pid, op.arg);
          history_.complete(idx, ok ? 1 : 0, world_.next_event_time());
        });
        break;
      case spec::Method::kVL:
        world_.invoke(op.pid, [this, op, idx] {
          const bool ok = impl_->vl(op.pid);
          history_.complete(idx, ok ? 1 : 0, world_.next_event_time());
        });
        break;
      default:
        ABA_CHECK_MSG(false, "LlscInvoker: unsupported method");
    }
  }

 private:
  sim::SimWorld& world_;
  spec::History& history_;
  std::unique_ptr<Impl> impl_;
};

// The one invoker for every application structure. Impl must satisfy
// structures::Container (concepts.h): bool try_push(int p, uint64_t v) and
// std::optional<uint64_t> try_pop(int p). The history keeps the caller's
// verb vocabulary (kPush/kPop for stacks, kEnq/kDeq for queues and rings) —
// the workload chooses the methods, the spec interprets them; the invoker
// only cares that both pairs funnel into the same two verbs. This is what
// replaced the per-structure StackInvoker/QueueInvoker copy-paste when the
// structures converged on the uniform API.
template <structures::Container Impl>
class ContainerInvoker : public Invoker {
 public:
  ContainerInvoker(sim::SimWorld& world, spec::History& history,
                   std::unique_ptr<Impl> impl)
      : world_(world), history_(history), impl_(std::move(impl)) {}

  Impl& impl() { return *impl_; }

  void invoke(const WorkloadOp& op) override {
    const std::size_t idx =
        history_.begin_op(op.pid, op.method, op.arg, world_.next_event_time());
    switch (op.method) {
      case spec::Method::kPush:
      case spec::Method::kEnq:
        world_.invoke(op.pid, [this, op, idx] {
          const bool ok = impl_->try_push(op.pid, op.arg);
          history_.complete(idx, ok ? 1 : 0, world_.next_event_time());
          on_complete(idx, op.pid);
        });
        break;
      case spec::Method::kPop:
      case spec::Method::kDeq:
        world_.invoke(op.pid, [this, op, idx] {
          const auto value = impl_->try_pop(op.pid);
          history_.complete(idx,
                            spec::pack_opt(value.has_value(),
                                           value.has_value() ? *value : 0),
                            world_.next_event_time());
          on_complete(idx, op.pid);
        });
        break;
      default:
        ABA_CHECK_MSG(false, "ContainerInvoker: unsupported method");
    }
  }

  reclaim::ReclaimStats reclaim_stats() const override {
    return detail::impl_reclaim_stats(*impl_);
  }
  reclaim::ReclaimPhase reclaim_phase(int pid) const override {
    return detail::impl_reclaim_phase(*impl_, pid);
  }
  std::uint64_t reclaim_fingerprint() const override {
    return detail::impl_reclaim_fingerprint(*impl_);
  }

 protected:
  // Called after each completion is recorded; the extension point the
  // shard-tagging adapter below hooks (default: nothing).
  virtual void on_complete(std::size_t /*idx*/, int /*pid*/) {}

 private:
  sim::SimWorld& world_;
  spec::History& history_;
  std::unique_ptr<Impl> impl_;
};

// Legacy names: call sites (and make_factory<...> instantiations) read as
// what they drive; the implementation is the single template above.
template <class Impl>
using StackInvoker = ContainerInvoker<Impl>;
template <class Impl>
using QueueInvoker = ContainerInvoker<Impl>;

// ----------------------------------------------------- sharded structures
//
// The sharded wrappers (structures/sharded.h) expose the same push/pop /
// enqueue/dequeue surface — the plain StackInvoker/QueueInvoker drive them
// unchanged when only the composite history matters. The tagging variants
// additionally record, per completed op, the shard the operation landed on
// (Impl::last_shard(p), thread-private so querying it costs no shared
// steps), which is what lets the test suite split one history into
// per-shard sub-histories and check each shard against the *exact*
// stack/queue spec — the "linearizable as a multiset per shard" contract.

// Hooks a Base invoker's on_complete to tag each history index with the
// shard its operation landed on. Base's Impl must expose last_shard(p).
template <class Base>
class ShardTagging : public Base {
 public:
  using Base::Base;

  // shard_of()[i] is the shard of the history op recorded at index i.
  const std::vector<int>& shard_of() const { return shard_of_; }

 protected:
  void on_complete(std::size_t idx, int pid) override {
    if (shard_of_.size() <= idx) shard_of_.resize(idx + 1, -1);
    shard_of_[idx] = this->impl().last_shard(pid);
  }

 private:
  std::vector<int> shard_of_;
};

template <class Impl>
using ShardedStackInvoker = ShardTagging<StackInvoker<Impl>>;
template <class Impl>
using ShardedQueueInvoker = ShardTagging<QueueInvoker<Impl>>;

// The adaptive facades (structures/adaptive_sharded.h) expose the same
// push/pop / enqueue/dequeue / last_shard(p) surface, so the tagging
// invokers drive them unchanged; the aliases exist so tests read as what
// they test. The tags are what splits an adaptive history into per-shard
// sub-histories even as the facade moves its active width mid-run — the
// landing shard, not the width at the time, is the linearizability unit.
template <class Impl>
using AdaptiveStackInvoker = ShardTagging<StackInvoker<Impl>>;
template <class Impl>
using AdaptiveQueueInvoker = ShardTagging<QueueInvoker<Impl>>;

// Builds a FixtureFactory for any Impl constructible from
// (SimWorld&, int n, Args...), wired through the given Invoker template
// (StackInvoker, QueueInvoker, ...). Args are captured by value and must be
// copyable; the factory can be invoked repeatedly (each model-checker
// replay constructs a fresh Impl).
template <template <class> class InvokerT, class Impl, class... Args>
FixtureFactory make_factory(int n, Args... args) {
  return [n, args...](sim::SimWorld& world,
                      spec::History& history) -> std::unique_ptr<Invoker> {
    return std::make_unique<InvokerT<Impl>>(
        world, history, std::make_unique<Impl>(world, n, args...));
  };
}

}  // namespace aba::harness
