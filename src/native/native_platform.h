// NativePlatform<Policy> — Platform implementation over std::atomic, with a
// compile-time instrumentation policy.
//
// The paper's constructions are expressed over the Platform concept; this
// file supplies the real-hardware backend. Instrumentation (step counting,
// declared-width checking) is what lets native tests validate the paper's
// step-complexity and space claims, but it is a per-operation tax with no
// algorithmic content, so it is a *policy*, resolved at compile time:
//
//   NativePlatform<Counted> — the paper-faithful instrumented mode (the
//       default). Every shared-memory operation bumps a thread-local step
//       counter and asserts the stored value fits the declared width; all
//       orderings are seq_cst (the C++ ordering that realizes the paper's
//       interleaving semantics, per C++ Core Guidelines CP.100/CP.101);
//       retry loops use NullBackoff so step counts stay deterministic.
//
//   NativePlatform<Fast> — the zero-overhead fast path for benchmarks and
//       release use. Step counting and bound checking compile to nothing
//       (if constexpr, not runtime flags); every atomic word is isolated on
//       its own cache line (alignas(hardware_destructive_interference_size))
//       so independent objects — announce-array entries, distinct heads —
//       never false-share; CAS retry loops in the algorithm layer pick up
//       truncated exponential backoff via PlatformBackoffT. Memory orderings
//       are seq_cst by default and relax to acquire/release only when the
//       ABA_RELAXED_ORDERINGS build option is set (see the Fast policy
//       below for the argument; tests always build without it).
//
// Both instantiations satisfy the Platform concept, so every algorithm in
// src/core and src/structures compiles unchanged against either.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "sim/types.h"
#include "util/assert.h"
#include "util/asymmetric_fence.h"
#include "util/backoff.h"
#include "util/cacheline.h"

namespace aba::native {

// Thread-local count of shared-memory operations executed through Counted
// native platform handles by this thread. (Fast handles never touch it.)
inline std::uint64_t& step_counter() {
  thread_local std::uint64_t counter = 0;
  return counter;
}

// Thread-local count of read-modify-write operations (CAS) specifically,
// a strict subset of step_counter(). Exists so tests can assert an
// algorithm's *shape*, not just its step total — RingStepCount proves
// SpscRing performs zero shared RMW per operation (reads and writes only)
// while MpmcRing necessarily pays CAS on its position words.
inline std::uint64_t& rmw_counter() {
  thread_local std::uint64_t counter = 0;
  return counter;
}

// Thread-local count of shared stores (Register/WritableCas write), the
// other interesting subset of step_counter(). With rmw_counter() it lets a
// ledger test pin a protocol's full shape — the deferred-epoch acceptance
// bound ("0 shared RMW, at most one shared store per op") is asserted
// against exactly this counter.
inline std::uint64_t& store_counter() {
  thread_local std::uint64_t counter = 0;
  return counter;
}

// ----------------------------------------------------------------- policies

// Paper-faithful instrumented mode: what the tests measure against.
struct Counted {
  static constexpr bool kCountSteps = true;
  static constexpr bool kCheckBounds = true;
  static constexpr bool kIsolateCacheLines = false;
  using Backoff = util::NullBackoff;
  static constexpr std::memory_order kLoadOrder = std::memory_order_seq_cst;
  static constexpr std::memory_order kStoreOrder = std::memory_order_seq_cst;
  static constexpr std::memory_order kCasSuccessOrder = std::memory_order_seq_cst;
  static constexpr std::memory_order kCasFailureOrder = std::memory_order_seq_cst;
};

// Zero-overhead fast path: no counting, no checking, padded words, backoff.
struct Fast {
  static constexpr bool kCountSteps = false;
  static constexpr bool kCheckBounds = false;
  static constexpr bool kIsolateCacheLines = true;
  using Backoff = util::ExpBackoff;
#ifdef ABA_RELAXED_ORDERINGS
  // Relaxed-orderings mode. Operations on a *single* atomic word are
  // linearizable under any ordering (C++ guarantees a per-object total
  // modification order plus coherence), which covers the single-CAS-word
  // constructions (Figure 3, Moir-style tags) on their own. What acquire/
  // release adds is the publication edge across *different* words: a store
  // or successful CAS releases everything the process wrote before it (node
  // payloads, announce entries), and a load acquires it. What it does NOT
  // give is seq_cst's single total order across different words (IRIW-style
  // agreements), which the paper's interleaving model assumes — so this
  // mode is an opt-in for benchmarks and applications whose cross-word
  // reasoning is publication-shaped (the structures layer), and the
  // paper-faithful seq_cst mode stays the default for all tests.
  static constexpr std::memory_order kLoadOrder = std::memory_order_acquire;
  static constexpr std::memory_order kStoreOrder = std::memory_order_release;
  static constexpr std::memory_order kCasSuccessOrder = std::memory_order_acq_rel;
  static constexpr std::memory_order kCasFailureOrder = std::memory_order_acquire;
#else
  static constexpr std::memory_order kLoadOrder = std::memory_order_seq_cst;
  static constexpr std::memory_order kStoreOrder = std::memory_order_seq_cst;
  static constexpr std::memory_order kCasSuccessOrder = std::memory_order_seq_cst;
  static constexpr std::memory_order kCasFailureOrder = std::memory_order_seq_cst;
#endif
};

// FastRelaxed — Fast with the acquire/release orderings applied
// unconditionally, no build option. Only for workloads whose soundness
// argument is single-word (Figure 3's LlscSingleCas: all shared state is
// one CAS word, and single-object linearizability holds under any
// ordering) or publication-shaped (the structures layer: release-publish a
// node, acquire-read it). The Figure 4 announce-array protocol must NOT
// run on it: its DRead writes A[q] and then re-reads X, a StoreLoad pair
// whose ordering only seq_cst provides.
struct FastRelaxed : Fast {
  static constexpr std::memory_order kLoadOrder = std::memory_order_acquire;
  static constexpr std::memory_order kStoreOrder = std::memory_order_release;
  static constexpr std::memory_order kCasSuccessOrder = std::memory_order_acq_rel;
  static constexpr std::memory_order kCasFailureOrder = std::memory_order_acquire;
};

// FastAsymmetric — FastRelaxed plus an asymmetric StoreLoad scheme for the
// hazard-pointer protocol (the one StoreLoad-shaped protocol that can carry
// it, because its heavy side has a natural amortized home: the scan).
//
// Orderings are acquire/release, so a guard publish is a plain release
// store; the StoreLoad edge the protocol needs (publish visible before the
// revalidation read) is restored pairwise by PlatformFenceT<P>: the
// reclaimer issues Fence::light() — a compiler barrier — after each
// publish, and Fence::heavy() — membarrier(2)/mprotect, see
// util/asymmetric_fence.h — before each scan. Soundness of everything
// *else* on this policy is the FastRelaxed publication argument.
//
// Do NOT run the Figure 4 announce-array register or the classic (eager)
// epoch reclaimer on this policy: their StoreLoad protocols have no
// scan-shaped heavy side to carry the fence, so they need seq_cst orderings
// (the Fast policy). The *deferred* epoch variant (DeferredEpochReclaimer)
// is the exception that makes epoch viable here: its advance path is
// scan-shaped and carries Fence::heavy() exactly like the hazard scan, so
// the per-op announce drops to a plain store + Fence::light().
struct FastAsymmetric : FastRelaxed {
  using Fence = util::AsymmetricFence;
};

namespace detail {

// The atomic word, optionally alone on its own cache line. The bound/name
// metadata of the owning handle lands before the aligned member, so the hot
// word shares its line with nothing that is ever written after construction.
template <bool Isolate>
struct WordStorage {
  std::atomic<std::uint64_t> value;
};

template <>
struct alignas(util::kCacheLineSize) WordStorage<true> {
  std::atomic<std::uint64_t> value;
};

// Bound metadata is stored only when the policy checks it: a Fast handle
// carries nothing but its (padded) word, so an isolated object occupies
// exactly one cache line instead of two.
struct NoBound {};

template <class Policy>
using BoundMember =
    std::conditional_t<Policy::kCheckBounds, sim::BoundSpec, NoBound>;

// Forwards the policy's fence scheme (if any) to the platform surface,
// where the PlatformFenceT trait (core/platform.h) picks it up. Policies
// without a Fence member get util::NoFence — their orderings carry the
// StoreLoad edges themselves.
template <class Policy, class = void>
struct PolicyFence {
  using type = util::NoFence;
};

template <class Policy>
struct PolicyFence<Policy, std::void_t<typename Policy::Fence>> {
  using type = typename Policy::Fence;
};

}  // namespace detail

template <class Policy = Counted>
struct NativePlatform {
  struct Env {};

  using Backoff = typename Policy::Backoff;
  using Fence = typename detail::PolicyFence<Policy>::type;

  class Register {
   public:
    Register(Env&, const char*, std::uint64_t initial, sim::BoundSpec bound) {
      if constexpr (Policy::kCheckBounds) {
        bound_ = bound;
        ABA_CHECK(bound_.fits(initial));  // One-time: never compiled out.
      }
      word_.value.store(initial, std::memory_order_relaxed);
    }

    std::uint64_t read() {
      if constexpr (Policy::kCountSteps) ++step_counter();
      return word_.value.load(Policy::kLoadOrder);
    }

    void write(std::uint64_t value) {
      if constexpr (Policy::kCheckBounds) ABA_ASSERT(bound_.fits(value));
      if constexpr (Policy::kCountSteps) {
        ++step_counter();
        ++store_counter();
      }
      word_.value.store(value, Policy::kStoreOrder);
    }

   private:
    [[no_unique_address]] detail::BoundMember<Policy> bound_;
    detail::WordStorage<Policy::kIsolateCacheLines> word_;
  };

  class Cas {
   public:
    Cas(Env&, const char*, std::uint64_t initial, sim::BoundSpec bound) {
      if constexpr (Policy::kCheckBounds) {
        bound_ = bound;
        ABA_CHECK(bound_.fits(initial));  // One-time: never compiled out.
      }
      word_.value.store(initial, std::memory_order_relaxed);
    }

    std::uint64_t read() {
      if constexpr (Policy::kCountSteps) ++step_counter();
      return word_.value.load(Policy::kLoadOrder);
    }

    bool cas(std::uint64_t expected, std::uint64_t desired) {
      if constexpr (Policy::kCheckBounds) ABA_ASSERT(bound_.fits(desired));
      if constexpr (Policy::kCountSteps) {
        ++step_counter();
        ++rmw_counter();
      }
      return word_.value.compare_exchange_strong(expected, desired,
                                                 Policy::kCasSuccessOrder,
                                                 Policy::kCasFailureOrder);
    }

   private:
    [[no_unique_address]] detail::BoundMember<Policy> bound_;
    detail::WordStorage<Policy::kIsolateCacheLines> word_;
  };

  class WritableCas {
   public:
    WritableCas(Env&, const char*, std::uint64_t initial, sim::BoundSpec bound) {
      if constexpr (Policy::kCheckBounds) {
        bound_ = bound;
        ABA_CHECK(bound_.fits(initial));  // One-time: never compiled out.
      }
      word_.value.store(initial, std::memory_order_relaxed);
    }

    std::uint64_t read() {
      if constexpr (Policy::kCountSteps) ++step_counter();
      return word_.value.load(Policy::kLoadOrder);
    }

    bool cas(std::uint64_t expected, std::uint64_t desired) {
      if constexpr (Policy::kCheckBounds) ABA_ASSERT(bound_.fits(desired));
      if constexpr (Policy::kCountSteps) {
        ++step_counter();
        ++rmw_counter();
      }
      return word_.value.compare_exchange_strong(expected, desired,
                                                 Policy::kCasSuccessOrder,
                                                 Policy::kCasFailureOrder);
    }

    void write(std::uint64_t value) {
      // Write() on a writable CAS word is a plain atomic store.
      if constexpr (Policy::kCheckBounds) ABA_ASSERT(bound_.fits(value));
      if constexpr (Policy::kCountSteps) {
        ++step_counter();
        ++store_counter();
      }
      word_.value.store(value, Policy::kStoreOrder);
    }

   private:
    [[no_unique_address]] detail::BoundMember<Policy> bound_;
    detail::WordStorage<Policy::kIsolateCacheLines> word_;
  };
};

}  // namespace aba::native
