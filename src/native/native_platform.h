// NativePlatform — Platform implementation over std::atomic.
//
// All operations use the default sequentially consistent memory order: the
// paper's model is atomic base objects over an interleaving semantics, and
// seq_cst is the C++ ordering that realizes it (per C++ Core Guidelines
// CP.100/CP.101 we do not hand-tune orderings in reproduction code).
//
// A thread-local step counter is bumped on every shared-memory operation so
// that native tests can also check step-complexity claims: the algorithms
// are deterministic in their own step counts (the counts depend only on
// observed contention, which tests control or bound).
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/types.h"
#include "util/assert.h"

namespace aba::native {

// Thread-local count of shared-memory operations executed through native
// platform handles by this thread.
inline std::uint64_t& step_counter() {
  thread_local std::uint64_t counter = 0;
  return counter;
}

struct NativePlatform {
  struct Env {};

  class Register {
   public:
    Register(Env&, const char*, std::uint64_t initial, sim::BoundSpec bound)
        : bound_(bound), value_(initial) {
      ABA_ASSERT(bound_.fits(initial));
    }

    std::uint64_t read() {
      ++step_counter();
      return value_.load();
    }

    void write(std::uint64_t value) {
      ABA_ASSERT(bound_.fits(value));
      ++step_counter();
      value_.store(value);
    }

   private:
    sim::BoundSpec bound_;
    std::atomic<std::uint64_t> value_;
  };

  class Cas {
   public:
    Cas(Env&, const char*, std::uint64_t initial, sim::BoundSpec bound)
        : bound_(bound), value_(initial) {
      ABA_ASSERT(bound_.fits(initial));
    }

    std::uint64_t read() {
      ++step_counter();
      return value_.load();
    }

    bool cas(std::uint64_t expected, std::uint64_t desired) {
      ABA_ASSERT(bound_.fits(desired));
      ++step_counter();
      return value_.compare_exchange_strong(expected, desired);
    }

   private:
    sim::BoundSpec bound_;
    std::atomic<std::uint64_t> value_;
  };

  class WritableCas {
   public:
    WritableCas(Env&, const char*, std::uint64_t initial, sim::BoundSpec bound)
        : bound_(bound), value_(initial) {
      ABA_ASSERT(bound_.fits(initial));
    }

    std::uint64_t read() {
      ++step_counter();
      return value_.load();
    }

    bool cas(std::uint64_t expected, std::uint64_t desired) {
      ABA_ASSERT(bound_.fits(desired));
      ++step_counter();
      return value_.compare_exchange_strong(expected, desired);
    }

    void write(std::uint64_t value) {
      // Write() on a writable CAS word is a plain atomic store.
      ABA_ASSERT(bound_.fits(value));
      ++step_counter();
      value_.store(value);
    }

   private:
    sim::BoundSpec bound_;
    std::atomic<std::uint64_t> value_;
  };
};

}  // namespace aba::native
