#include "util/table.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "util/assert.h"

namespace aba::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ABA_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ABA_ASSERT_MSG(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == 'x' || c == '%')) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      const std::size_t pad = widths[c] - row[c].size();
      if (looks_numeric(row[c])) {
        out << std::string(pad, ' ') << row[c];
      } else {
        out << row[c] << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::fmt(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
  return buf;
}

std::string Table::fmt(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  return buf;
}

}  // namespace aba::util
