// Console table printer used by the benchmark harness.
//
// Every experiment binary prints the rows the paper's corresponding
// table/figure would contain, in an aligned plain-text table that is easy to
// diff across runs and paste into EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace aba::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row; the row must have exactly as many cells as there are
  // headers.
  void add_row(std::vector<std::string> cells);

  // Renders with a header rule and right-aligned numeric-looking cells.
  std::string to_string() const;

  // Convenience: renders and writes to stdout.
  void print() const;

  static std::string fmt(double value, int precision = 2);
  static std::string fmt(std::uint64_t value);
  static std::string fmt(std::int64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aba::util
