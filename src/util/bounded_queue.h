// Fixed-capacity FIFO queue.
//
// Figure 4's GetSeq() keeps a process-local queue `usedQ` of the n+1 most
// recently used sequence numbers (line 35 enqueues, line 36 dequeues). The
// queue is process-local, so no synchronization is required; we only need a
// small, allocation-free ring buffer with exact capacity semantics.
#pragma once

#include <cstddef>
#include <vector>

#include "util/assert.h"

namespace aba::util {

template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : buffer_(capacity), capacity_(capacity) {
    ABA_CHECK(capacity > 0);
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  void enqueue(const T& value) {
    ABA_ASSERT_MSG(!full(), "BoundedQueue overflow");
    buffer_[(head_ + size_) % capacity_] = value;
    ++size_;
  }

  T dequeue() {
    ABA_ASSERT_MSG(!empty(), "BoundedQueue underflow");
    T value = buffer_[head_];
    head_ = (head_ + 1) % capacity_;
    --size_;
    return value;
  }

  const T& front() const {
    ABA_ASSERT(!empty());
    return buffer_[head_];
  }

  bool contains(const T& value) const {
    for (std::size_t i = 0; i < size_; ++i) {
      if (buffer_[(head_ + i) % capacity_] == value) return true;
    }
    return false;
  }

 private:
  std::vector<T> buffer_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace aba::util
