// Asymmetric fences — move the StoreLoad cost off the hot path.
//
// The hazard-pointer protocol needs a StoreLoad edge per guarded read:
// the guard publish (a store) must be globally visible before the source
// revalidation (a load of a different word). Realized with seq_cst
// orderings, every publish pays a full fence (MFENCE / XCHG on x86) on the
// hottest path in the repository — the per-op tax ISSUE-era BENCH_native
// numbers show as hazard ~1.5x slower than tagged on contended pops.
//
// The asymmetric construction makes the pair cheap on the side that runs
// per operation and expensive on the side that runs per *scan* (already
// amortized over a batch of retires):
//
//   light()  — reader side, after the guard publish: a compiler barrier
//              only. No hardware fence is emitted; the store may still sit
//              in the store buffer when the revalidation load executes.
//   heavy()  — scanner side, before reading the hazard slots: forces a
//              full memory barrier on every thread of the process via
//              membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED) (an IPI to
//              each running CPU), so for every reader either its guard
//              publish is visible to this scan, or the reader's
//              revalidation load is ordered after the retirer's unlink and
//              must observe the moved source word and retry.
//
// Fallback ladder, probed once per process at first use:
//   membarrier(PRIVATE_EXPEDITED)   — Linux >= 4.14, the intended scheme;
//   mprotect page-permission flip   — downgrading a mapped page forces a
//                                     TLB-shootdown IPI to every CPU
//                                     running this process (the classic
//                                     pre-membarrier trick);
//   seq_cst thread fences both sides — the portable fallback; light()
//                                     becomes a real fence and the scheme
//                                     degenerates to the symmetric one.
//
// Compile-time gating: the asymmetric fast side is only emitted when
// ABA_ASYMMETRIC_FENCE is defined (CMake option, default ON), on Linux,
// and NOT under ThreadSanitizer — TSan does not model membarrier's
// cross-thread ordering, so under TSan both sides are plain seq_cst
// fences and the protocol is exactly the symmetric one it can check.
#pragma once

#include <atomic>

#if defined(__SANITIZE_THREAD__)
#define ABA_DETAIL_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ABA_DETAIL_TSAN 1
#endif
#endif

#if defined(ABA_ASYMMETRIC_FENCE) && defined(__linux__) && \
    !defined(ABA_DETAIL_TSAN)
#define ABA_DETAIL_ASYM_FENCE_COMPILED 1
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace aba::util {

// Platforms without a Fence member typedef get this: both sides free. Used
// where the memory orderings themselves carry the StoreLoad edge (seq_cst
// policies) or where steps are simulated (SimPlatform).
struct NoFence {
  static void light() {}
  static void heavy() {}
  static constexpr const char* scheme_name() { return "none"; }
};

namespace detail {

// Process-wide count of heavy() executions. The heavy side is a syscall (or
// a TLB shootdown), so one relaxed increment is noise; what it buys is a
// ledger for the amortization claims — a test or bench can assert that N
// operations through a batched consumer (the hazard scan, the deferred-epoch
// advance) paid at most N / batch heavy fences.
inline std::atomic<std::uint64_t>& heavy_fence_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

}  // namespace detail

inline std::uint64_t heavy_fence_count() {
  return detail::heavy_fence_counter().load(std::memory_order_relaxed);
}

#ifdef ABA_DETAIL_ASYM_FENCE_COMPILED

namespace detail {

// Local copies of the membarrier ABI constants (stable kernel ABI; avoids
// requiring <linux/membarrier.h> at build time).
inline constexpr int kMembarrierCmdQuery = 0;
inline constexpr int kMembarrierCmdPrivateExpedited = 1 << 3;
inline constexpr int kMembarrierCmdRegisterPrivateExpedited = 1 << 4;

enum class FenceScheme { kMembarrier, kMprotect, kSeqCstFallback };

inline long membarrier(int cmd) {
#ifdef __NR_membarrier
  return ::syscall(__NR_membarrier, cmd, 0, 0);
#else
  return -1;
#endif
}

// The page whose permission flip carries the mprotect fallback. Kept
// resident and written after every flip so the next heavy() has a mapping
// to shoot down.
inline void* mprotect_page() {
  static void* page = [] {
    void* p = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return static_cast<void*>(nullptr);
    *static_cast<volatile char*>(p) = 1;  // Fault it in.
    return p;
  }();
  return page;
}

inline FenceScheme detect_scheme() {
  const long supported = membarrier(kMembarrierCmdQuery);
  if (supported > 0 && (supported & kMembarrierCmdPrivateExpedited) != 0 &&
      membarrier(kMembarrierCmdRegisterPrivateExpedited) == 0) {
    return FenceScheme::kMembarrier;
  }
  if (mprotect_page() != nullptr) return FenceScheme::kMprotect;
  return FenceScheme::kSeqCstFallback;
}

// Probed once; the guard-variable check this leaves on light() is a
// predictable load+branch, not a fence.
inline FenceScheme scheme() {
  static const FenceScheme s = detect_scheme();
  return s;
}

}  // namespace detail

struct AsymmetricFence {
  static void light() {
    if (detail::scheme() == detail::FenceScheme::kSeqCstFallback) {
      std::atomic_thread_fence(std::memory_order_seq_cst);
    } else {
      std::atomic_signal_fence(std::memory_order_seq_cst);
    }
  }

  static void heavy() {
    detail::heavy_fence_counter().fetch_add(1, std::memory_order_relaxed);
    switch (detail::scheme()) {
      case detail::FenceScheme::kMembarrier:
        detail::membarrier(detail::kMembarrierCmdPrivateExpedited);
        break;
      case detail::FenceScheme::kMprotect: {
        void* page = detail::mprotect_page();
        // Downgrade forces the cross-CPU TLB shootdown; restore + touch
        // re-arms the mapping for the next flip.
        ::mprotect(page, 4096, PROT_READ);
        ::mprotect(page, 4096, PROT_READ | PROT_WRITE);
        *static_cast<volatile char*>(page) = 1;
        break;
      }
      case detail::FenceScheme::kSeqCstFallback:
        break;  // The trailing local fence below is the whole scheme.
    }
    // Always also a full local fence: orders the scanner's own prior
    // accesses (the retire-list reads) against the slot reads, and is the
    // entire fallback when no cross-thread scheme is available.
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  static const char* scheme_name() {
    switch (detail::scheme()) {
      case detail::FenceScheme::kMembarrier:
        return "membarrier";
      case detail::FenceScheme::kMprotect:
        return "mprotect";
      default:
        return "seq_cst_fallback";
    }
  }

  static constexpr bool kCompiledAsymmetric = true;
};

#else  // !ABA_DETAIL_ASYM_FENCE_COMPILED

// Portable / TSan build: both sides are plain seq_cst fences, making the
// protocol the symmetric one (and giving TSan a model it understands).
struct AsymmetricFence {
  static void light() { std::atomic_thread_fence(std::memory_order_seq_cst); }
  static void heavy() {
    detail::heavy_fence_counter().fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
  static const char* scheme_name() { return "seq_cst_fallback"; }
  static constexpr bool kCompiledAsymmetric = false;
};

#endif  // ABA_DETAIL_ASYM_FENCE_COMPILED

}  // namespace aba::util
