// Cache-line geometry for false-sharing isolation.
//
// The paper's cost model counts shared-memory *steps*; real hardware
// additionally charges for cache-line ping-pong when logically independent
// words land on the same line. Everything that is written by exactly one
// process (per-process Local state, announce-array entries, hazard slots)
// or that is the single contended hot word (the CAS object X) is padded to
// kCacheLineSize so neighbours never invalidate each other.
//
// We use std::hardware_destructive_interference_size where the library
// provides it. GCC warns that the value can vary with -mtune (the constant
// is baked into our ABI only within this repository, which is fine — we
// ship no stable binary interface), so the warning is suppressed here.
#pragma once

#include <cstddef>
#include <new>

namespace aba::util {

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLineSize =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLineSize = 64;
#endif

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

// A value alone on its cache line. For per-process bookkeeping that is
// written on the hot path (CAS-failure counters, guard-cache state,
// last-shard tags): arrays of Padded<T> index by pid without neighbours
// invalidating each other.
template <class T>
struct alignas(kCacheLineSize) Padded {
  T value{};
};

}  // namespace aba::util
