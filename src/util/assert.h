// Assertion macros for the paper-invariant checks.
//
// Two tiers, CHECK/DCHECK style:
//
//   ABA_CHECK / ABA_CHECK_MSG — always on, in every build type. For
//     one-time configuration validation (constructor arguments, codec
//     widths): the cost is paid once per object, and proceeding past a
//     misconfiguration is undefined behavior (shifts >= 64, overlapping
//     bit-fields), so these must never compile out.
//
//   ABA_ASSERT / ABA_ASSERT_MSG — per-operation invariant checks. On in
//     debug builds; under NDEBUG they compile out entirely (the condition
//     is NOT evaluated — it stays inside an unevaluated sizeof so it cannot
//     bit-rot), because the native fast path must not pay a branch per
//     shared-memory operation for invariants the proofs already discharge.
//     Defining ABA_FORCE_ASSERTS keeps them on regardless of NDEBUG: the
//     test suite builds with it, and so do the checking-engine translation
//     units (simulator, linearizability checker, lower-bound engines),
//     whose assertions are semantics rather than instrumentation.
#pragma once

#include <cstdio>
#include <cstdlib>

#if defined(ABA_FORCE_ASSERTS) || !defined(NDEBUG)
#define ABA_ASSERTS_ENABLED 1
#else
#define ABA_ASSERTS_ENABLED 0
#endif

namespace aba::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "ABA_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace aba::util

#define ABA_CHECK(expr)                                                 \
  do {                                                                  \
    if (!(expr)) ::aba::util::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define ABA_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::aba::util::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#if ABA_ASSERTS_ENABLED

#define ABA_ASSERT(expr) ABA_CHECK(expr)
#define ABA_ASSERT_MSG(expr, msg) ABA_CHECK_MSG(expr, msg)

#else  // !ABA_ASSERTS_ENABLED

// Compiled out: not evaluated, still type-checked.
#define ABA_ASSERT(expr) ((void)sizeof((expr) ? 1 : 0))
#define ABA_ASSERT_MSG(expr, msg) \
  ((void)sizeof((expr) ? 1 : 0), (void)sizeof(msg))

#endif  // ABA_ASSERTS_ENABLED
