// Lightweight always-on assertion macros.
//
// The algorithms in this library are reproductions of published pseudo-code
// whose correctness proofs rely on non-obvious invariants; we keep invariant
// checks enabled in all build types (they are cheap relative to the shared
// memory operations they guard) and make failures loud and actionable.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace aba::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "ABA_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace aba::util

#define ABA_ASSERT(expr)                                                \
  do {                                                                  \
    if (!(expr)) ::aba::util::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define ABA_ASSERT_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) ::aba::util::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
