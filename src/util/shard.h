// Shard routing for the sharded structures (structures/sharded.h).
//
// The paper's time/space bounds for ABA prevention are *per word*: every
// protected CAS site pays its own tag/LLSC/guard cost, and on real hardware
// a single head word additionally serializes all processes through one
// cache line. Sharding splits one logical structure into kShards
// independent sub-structures, each with its own protected head word, and
// routes each process to a "home" shard so that, under even load, only
// n/kShards processes contend per word.
//
// Routing is deliberately trivial: harness and bench process ids are dense
// (0..n-1 by construction — SimWorld and the native workers both hand out
// consecutive pids), so the modulus is a perfect hash: home shards are
// balanced to within one process, deterministic, and cost one integer op
// on the operation fast path. A multiplicative mix would buy nothing for
// dense pids and would unbalance small configurations (the common test and
// CI shapes), so we keep the mod.
//
// The steal order is the cyclic probe home+1, home+2, ... — every process
// scans every shard exactly once before concluding "empty", which bounds
// the work of an unsuccessful pop/dequeue at kShards head reads, and
// scanning *away* from home first means a stealer drains its neighbour
// before colliding with processes homed two shards over.
#pragma once

#include "util/assert.h"

namespace aba::util {

// Home shard of a (dense) process id. Balanced: for any m consecutive pids
// the per-shard occupancy differs by at most one.
constexpr int home_shard(int pid, int shards) {
  ABA_CHECK(shards >= 1 && pid >= 0);
  return pid % shards;
}

// The attempt-th shard probed by a process homed at `home` (attempt 0 is
// home itself; attempts 1..shards-1 are the steal scan in cyclic order).
constexpr int probe_shard(int home, int attempt, int shards) {
  ABA_CHECK(shards >= 1 && home >= 0 && home < shards && attempt >= 0);
  const int s = home + attempt;
  return s < shards ? s : s % shards;
}

}  // namespace aba::util
