// Deterministic, seedable pseudo-random number generators.
//
// All randomized schedules, property tests and workload generators in this
// repository draw from these generators so that any failing run can be
// reproduced from its seed alone. SplitMix64 is used for seeding and cheap
// hashing; xoshiro256** is the workhorse generator (both are public-domain
// algorithms by Blackman & Vigna).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace aba::util {

// Mixes a 64-bit value; also usable as a standalone hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Hash combiner used for configuration signatures.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  std::uint64_t s = seed + 0x9e3779b97f4a7c15ULL + (value << 6) + (value >> 2);
  return splitmix64(s);
}

// xoshiro256** — fast, high-quality 64-bit generator.
// Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Multiply-shift bounded generation (Lemire); bias is negligible for the
    // small bounds used in schedules and is irrelevant for test adversaries.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Bernoulli trial with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace aba::util
