// Truncated exponential backoff for CAS retry loops.
//
// A failed CAS means another process won the word; immediately retrying
// turns the retry loop into a coherence-traffic generator that slows the
// winner down (and, on an oversubscribed machine, can burn the very
// timeslice the winner needs to make progress). The standard remedy —
// used by production hazard-pointer and concurrent-container libraries —
// is to pause for an exponentially growing, truncated number of cpu-relax
// cycles between attempts, and to yield the timeslice once saturated.
//
// Backoff is purely local work: it performs no shared-memory steps, so it
// never changes an algorithm's step complexity or its linearizability
// argument; it only reshapes the schedule that real hardware produces.
// Platforms select a backoff type via PlatformBackoff (core/platform.h):
// the simulator and the Counted native policy use NullBackoff (schedules
// there are adversary- or test-controlled and must not be perturbed); the
// Fast native policy uses ExpBackoff.
#pragma once

#include <cstdint>
#include <thread>

namespace aba::util {

// One spin-wait hint: cheaper than a yield, keeps the core's pipeline from
// speculating into the retry load.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

// Truncated exponential backoff. operator() is called after each failed
// attempt: it spins cpu_relax() `current_spins()` times, then doubles the
// budget, truncating at max_spins(). Once saturated it additionally yields
// the timeslice. reset() restores the initial budget (call after a
// successful attempt if the object is reused across operations).
class ExpBackoff {
 public:
  explicit ExpBackoff(std::uint32_t initial_spins = 4,
                      std::uint32_t max_spins = 1024)
      : initial_(initial_spins), max_(max_spins), current_(initial_spins) {}

  void operator()() {
    for (std::uint32_t i = 0; i < current_; ++i) cpu_relax();
    if (current_ >= max_) {
      // Saturated: heavy contention or the winner is descheduled — give the
      // scheduler a chance to run it.
      std::this_thread::yield();
    } else {
      current_ = current_ * 2 < max_ ? current_ * 2 : max_;
    }
  }

  void reset() { current_ = initial_; }

  std::uint32_t current_spins() const { return current_; }
  std::uint32_t initial_spins() const { return initial_; }
  std::uint32_t max_spins() const { return max_; }

 private:
  std::uint32_t initial_;
  std::uint32_t max_;
  std::uint32_t current_;
};

// No-op backoff: compiles to nothing, so instrumented/simulated retry loops
// are bit-identical to the paper's pseudo-code.
struct NullBackoff {
  void operator()() {}
  void reset() {}
};

}  // namespace aba::util
