// Small fixed-cost histogram / summary-statistics accumulator.
//
// The benchmark harness measures per-operation step counts (simulated model)
// and latencies (native model). We care about max (the theorems bound the
// worst case), mean, and a few tail quantiles; an exact sorted-sample
// implementation suffices at bench scale (Summary below). Per-operation
// latency recording at tens of millions of ops/sec cannot afford a sample
// vector, so LatencyHistogram is log-bucketed (HDR-style): constant memory,
// a few ALU ops per add(), ~3% relative resolution everywhere — exactly the
// tradeoff latency percentiles want (p99 at 420ns vs 430ns is noise; 420ns
// vs 4.2us is the story).
#pragma once

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <vector>

#include "util/assert.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace aba::util {

// ------------------------------------------------------------ timestamping

// Cheapest available monotonic-enough timestamp for per-op latency deltas.
// x86: rdtsc (constant_tsc on anything this century — invariant across
// cores and frequency scaling). aarch64: the generic counter-timer virtual
// count, same properties. Elsewhere: steady_clock, slower but correct.
// Ticks are converted to nanoseconds once at report time via tick_ns().
inline std::uint64_t rdtsc() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t virtual_timer;
  asm volatile("mrs %0, cntvct_el0" : "=r"(virtual_timer));
  return virtual_timer;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

// Nanoseconds per tick, measured once against steady_clock over a short
// spin window. Calibration error is well under the histogram's bucket
// resolution; cached after the first call.
inline double tick_ns() {
  static const double ns_per_tick = [] {
    using Clock = std::chrono::steady_clock;
    const std::uint64_t t0 = rdtsc();
    const auto c0 = Clock::now();
    // ~5ms busy window: long enough to swamp the clock-read cost, short
    // enough to be invisible at process startup.
    while (Clock::now() - c0 < std::chrono::milliseconds(5)) {
    }
    const std::uint64_t t1 = rdtsc();
    const auto c1 = Clock::now();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        c1 - c0)
                        .count();
    const std::uint64_t ticks = t1 - t0;
    return ticks > 0 ? static_cast<double>(ns) / static_cast<double>(ticks)
                     : 1.0;
  }();
  return ns_per_tick;
}

// ------------------------------------------------------ latency histogram

// Log-bucketed value histogram over uint64 (latency ticks, but any positive
// magnitude works). Layout: values below 2^kSubBits land in exact unit
// buckets; above that, each power-of-two range splits into 2^kSubBits
// sub-buckets, so relative resolution is bounded by 1/2^kSubBits (~3%).
// add() is branch-light and allocation-free; one histogram per recording
// thread, merge()d at report time — no shared state on the hot path.
class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 5;  // 32 sub-buckets per octave.
  static constexpr unsigned kSubCount = 1u << kSubBits;
  // 64-bit values span at most 64 - kSubBits octaves above the linear range.
  static constexpr std::size_t kBucketCount =
      kSubCount * (65 - kSubBits);

  void add(std::uint64_t value) {
    ++counts_[bucket_of(value)];
    ++total_;
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

  std::uint64_t total() const { return total_; }

  // Nearest-rank percentile (q in [0,1]), returned as a representative
  // value for the containing bucket (its lower bound — consistent bias,
  // bounded by bucket width). Returns 0 on an empty histogram.
  std::uint64_t percentile(double q) const {
    if (total_ == 0) return 0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total_ - 1) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      seen += counts_[i];
      if (seen > rank) return bucket_lower_bound(i);
    }
    return bucket_lower_bound(kBucketCount - 1);
  }

 private:
  static std::size_t bucket_of(std::uint64_t value) {
    if (value < kSubCount) return static_cast<std::size_t>(value);
    const unsigned octave =
        63u - static_cast<unsigned>(std::countl_zero(value));
    const unsigned sub = static_cast<unsigned>(
        (value >> (octave - kSubBits)) & (kSubCount - 1));
    return static_cast<std::size_t>(octave - kSubBits + 1) * kSubCount + sub;
  }

  static std::uint64_t bucket_lower_bound(std::size_t bucket) {
    if (bucket < kSubCount) return static_cast<std::uint64_t>(bucket);
    const std::size_t octave_index = bucket / kSubCount - 1;
    const std::size_t sub = bucket % kSubCount;
    const unsigned octave = static_cast<unsigned>(octave_index) + kSubBits;
    return (std::uint64_t{1} << octave) |
           (static_cast<std::uint64_t>(sub) << (octave - kSubBits));
  }

  std::vector<std::uint64_t> counts_ =
      std::vector<std::uint64_t>(kBucketCount, 0);
  std::uint64_t total_ = 0;
};

class Summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  double mean() const {
    ABA_ASSERT(!samples_.empty());
    double sum = 0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  // Nearest-rank quantile over the exact sample set, q in [0, 1].
  double quantile(double q) const {
    ABA_ASSERT(!samples_.empty());
    sort();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto idx = static_cast<std::size_t>(pos + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
  }

 private:
  void sort() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Exact integer counter histogram, for step-count distributions where the
// support is tiny (a handful of distinct step counts).
class StepHistogram {
 public:
  void add(std::uint64_t steps) {
    if (steps >= counts_.size()) counts_.resize(steps + 1, 0);
    ++counts_[steps];
    ++total_;
  }

  std::uint64_t total() const { return total_; }

  std::uint64_t max_steps() const {
    for (std::size_t i = counts_.size(); i-- > 0;) {
      if (counts_[i] != 0) return static_cast<std::uint64_t>(i);
    }
    return 0;
  }

  double mean_steps() const {
    ABA_ASSERT(total_ > 0);
    double weighted = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      weighted += static_cast<double>(i) * static_cast<double>(counts_[i]);
    }
    return weighted / static_cast<double>(total_);
  }

  std::uint64_t count_at(std::uint64_t steps) const {
    return steps < counts_.size() ? counts_[steps] : 0;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace aba::util
