// Small fixed-cost histogram / summary-statistics accumulator.
//
// The benchmark harness measures per-operation step counts (simulated model)
// and latencies (native model). We care about max (the theorems bound the
// worst case), mean, and a few tail quantiles; an exact sorted-sample
// implementation suffices at bench scale.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace aba::util {

class Summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  double mean() const {
    ABA_ASSERT(!samples_.empty());
    double sum = 0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  // Nearest-rank quantile over the exact sample set, q in [0, 1].
  double quantile(double q) const {
    ABA_ASSERT(!samples_.empty());
    sort();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto idx = static_cast<std::size_t>(pos + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
  }

 private:
  void sort() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Exact integer counter histogram, for step-count distributions where the
// support is tiny (a handful of distinct step counts).
class StepHistogram {
 public:
  void add(std::uint64_t steps) {
    if (steps >= counts_.size()) counts_.resize(steps + 1, 0);
    ++counts_[steps];
    ++total_;
  }

  std::uint64_t total() const { return total_; }

  std::uint64_t max_steps() const {
    for (std::size_t i = counts_.size(); i-- > 0;) {
      if (counts_[i] != 0) return static_cast<std::uint64_t>(i);
    }
    return 0;
  }

  double mean_steps() const {
    ABA_ASSERT(total_ > 0);
    double weighted = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      weighted += static_cast<double>(i) * static_cast<double>(counts_[i]);
    }
    return weighted / static_cast<double>(total_);
  }

  std::uint64_t count_at(std::uint64_t steps) const {
    return steps < counts_.size() ? counts_[steps] : 0;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace aba::util
