// Packing helpers for bounded base objects.
//
// The paper's algorithms store small tuples in single bounded base objects:
//   Figure 4's X register holds a triple (value, process id, sequence number),
//   Figure 4's announce entries hold a pair (process id, sequence number),
//   Figure 3's CAS object holds a pair (value, n-bit string).
// On the native platform these tuples must fit one lock-free std::atomic
// word, so we pack them into 64 bits with explicit field layouts. The packers
// are constexpr and fully checked: field widths are validated at compile time
// and stored values are range-checked at runtime.
#pragma once

#include <cstdint>

#include "util/assert.h"

namespace aba::util {

// A field layout: `width` bits starting at bit `shift`.
struct BitField {
  unsigned shift;
  unsigned width;

  constexpr std::uint64_t mask() const {
    return width >= 64 ? ~0ULL : ((1ULL << width) - 1ULL);
  }

  constexpr std::uint64_t get(std::uint64_t word) const {
    return (word >> shift) & mask();
  }

  constexpr std::uint64_t set(std::uint64_t word, std::uint64_t value) const {
    ABA_ASSERT_MSG((value & ~mask()) == 0, "value exceeds bit-field width");
    return (word & ~(mask() << shift)) | (value << shift);
  }
};

// Triple (value, pid, seq) packed as used by Figure 4's register X.
// Layout (from bit 0): seq | pid | valid | value.
// The `valid` bit distinguishes the initial (bottom, bottom, bottom) state
// from any written triple, mirroring the paper's use of a distinct initial
// symbol.
template <unsigned ValueBits, unsigned PidBits, unsigned SeqBits>
class PackedTriple {
  static_assert(ValueBits + PidBits + SeqBits + 1 <= 64,
                "triple must fit a 64-bit word");

 public:
  static constexpr BitField kSeq{0, SeqBits};
  static constexpr BitField kPid{SeqBits, PidBits};
  static constexpr BitField kValid{SeqBits + PidBits, 1};
  static constexpr BitField kValue{SeqBits + PidBits + 1, ValueBits};

  // The initial word: all-bottom, valid bit clear.
  static constexpr std::uint64_t initial() { return 0; }

  static constexpr std::uint64_t pack(std::uint64_t value, std::uint64_t pid,
                                      std::uint64_t seq) {
    std::uint64_t w = 0;
    w = kSeq.set(w, seq);
    w = kPid.set(w, pid);
    w = kValid.set(w, 1);
    w = kValue.set(w, value);
    return w;
  }

  static constexpr bool valid(std::uint64_t w) { return kValid.get(w) != 0; }
  static constexpr std::uint64_t value(std::uint64_t w) { return kValue.get(w); }
  static constexpr std::uint64_t pid(std::uint64_t w) { return kPid.get(w); }
  static constexpr std::uint64_t seq(std::uint64_t w) { return kSeq.get(w); }

  // The (pid, seq) announcement pair carried by the triple, with the valid
  // bit included so an announced pair never equals the initial bottom pair.
  static constexpr std::uint64_t announcement(std::uint64_t w) {
    return (kPid.get(w) << (SeqBits + 1)) | (kSeq.get(w) << 1) |
           (valid(w) ? 1u : 0u);
  }

  static constexpr std::uint64_t pack_announcement(std::uint64_t pid,
                                                   std::uint64_t seq) {
    return (pid << (SeqBits + 1)) | (seq << 1) | 1u;
  }
};

// Pair (value, bits) packed as used by Figure 3's CAS object X = (x, a),
// where `a` is an n-bit string (one bit per process).
template <unsigned ValueBits, unsigned NBits>
class PackedPair {
  static_assert(ValueBits + NBits <= 64, "pair must fit a 64-bit word");

 public:
  static constexpr BitField kBits{0, NBits};
  static constexpr BitField kValue{NBits, ValueBits};

  static constexpr std::uint64_t pack(std::uint64_t value, std::uint64_t bits) {
    std::uint64_t w = 0;
    w = kBits.set(w, bits);
    w = kValue.set(w, value);
    return w;
  }

  static constexpr std::uint64_t value(std::uint64_t w) { return kValue.get(w); }
  static constexpr std::uint64_t bits(std::uint64_t w) { return kBits.get(w); }

  static constexpr bool bit(std::uint64_t w, unsigned p) {
    return ((kBits.get(w) >> p) & 1u) != 0;
  }

  static constexpr std::uint64_t with_bit_cleared(std::uint64_t w, unsigned p) {
    return w & ~(1ULL << p);
  }

  static constexpr std::uint64_t all_bits(unsigned n) {
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1ULL);
  }
};

// Number of bits needed to represent values 0..n inclusive.
constexpr unsigned bits_for(std::uint64_t n) {
  unsigned b = 1;
  while ((n >> b) != 0) ++b;
  return b;
}

// Runtime-sized triple codec for Figure 4's register X = (value, pid, seq).
//
// Field widths are chosen from the actual process count n and payload width
// b, so the declared register width is exactly the paper's
// b + 2*ceil(log n) + O(1) bits (Theorem 3) and the simulator's boundedness
// assertion is tight. Layout from bit 0: seq | pid | valid | value.
class TripleCodec {
 public:
  TripleCodec(unsigned value_bits, unsigned pid_bits, unsigned seq_bits)
      : seq_{0, seq_bits},
        pid_{seq_bits, pid_bits},
        valid_{seq_bits + pid_bits, 1},
        value_{seq_bits + pid_bits + 1, value_bits} {
    ABA_CHECK(value_bits + pid_bits + seq_bits + 1 <= 64);
  }

  // Codec for an n-process system: pid in {0..n-1}, seq in {0..2n+1}.
  static TripleCodec for_processes(int n, unsigned value_bits) {
    ABA_CHECK(n >= 1);
    return TripleCodec(value_bits, bits_for(static_cast<std::uint64_t>(n) - 1),
                       bits_for(2 * static_cast<std::uint64_t>(n) + 1));
  }

  // The initial all-bottom word (valid bit clear).
  static constexpr std::uint64_t initial() { return 0; }

  std::uint64_t pack(std::uint64_t value, std::uint64_t pid, std::uint64_t seq) const {
    std::uint64_t w = 0;
    w = seq_.set(w, seq);
    w = pid_.set(w, pid);
    w = valid_.set(w, 1);
    w = value_.set(w, value);
    return w;
  }

  bool valid(std::uint64_t w) const { return valid_.get(w) != 0; }
  std::uint64_t value(std::uint64_t w) const { return value_.get(w); }
  std::uint64_t pid(std::uint64_t w) const { return pid_.get(w); }
  std::uint64_t seq(std::uint64_t w) const { return seq_.get(w); }

  // The (pid, seq) pair carried by the triple, as announced in A[q]. The
  // valid bit is included so an announcement never collides with the initial
  // bottom pair.
  std::uint64_t announcement(std::uint64_t w) const {
    return (pid_.get(w) << (seq_.width + 1)) | (seq_.get(w) << 1) |
           (valid(w) ? 1u : 0u);
  }

  std::uint64_t pack_announcement(std::uint64_t pid, std::uint64_t seq) const {
    return (pid << (seq_.width + 1)) | (seq << 1) | 1u;
  }

  bool announcement_valid(std::uint64_t a) const { return (a & 1u) != 0; }
  std::uint64_t announcement_pid(std::uint64_t a) const {
    return (a >> (seq_.width + 1)) & pid_.mask();
  }
  std::uint64_t announcement_seq(std::uint64_t a) const {
    return (a >> 1) & seq_.mask();
  }

  // Width of the X register in bits.
  unsigned total_bits() const { return value_.shift + value_.width; }
  // Width of an announce-array entry in bits.
  unsigned announcement_bits() const { return pid_.width + seq_.width + 1; }
  unsigned seq_bits() const { return seq_.width; }

 private:
  BitField seq_;
  BitField pid_;
  BitField valid_;
  BitField value_;
};

// Runtime-sized pair codec for Figure 3's CAS object X = (x, a) where a is an
// n-bit string with one bit per process. Layout from bit 0: a | x.
class PairCodec {
 public:
  PairCodec(unsigned n, unsigned value_bits)
      : n_(n), bits_{0, n}, value_{n, value_bits} {
    ABA_CHECK(n >= 1 && n + value_bits <= 64);
  }

  std::uint64_t pack(std::uint64_t value, std::uint64_t bits) const {
    std::uint64_t w = 0;
    w = bits_.set(w, bits);
    w = value_.set(w, value);
    return w;
  }

  std::uint64_t value(std::uint64_t w) const { return value_.get(w); }
  std::uint64_t bits(std::uint64_t w) const { return bits_.get(w); }

  bool bit(std::uint64_t w, unsigned p) const {
    ABA_ASSERT(p < n_);
    return ((w >> p) & 1u) != 0;
  }

  std::uint64_t with_bit_cleared(std::uint64_t w, unsigned p) const {
    ABA_ASSERT(p < n_);
    return w & ~(1ULL << p);
  }

  // The "2^n - 1" second component a successful SC installs (all bits set).
  std::uint64_t all_bits() const {
    return n_ >= 64 ? ~0ULL : ((1ULL << n_) - 1ULL);
  }

  unsigned total_bits() const { return value_.shift + value_.width; }

 private:
  unsigned n_;
  BitField bits_;
  BitField value_;
};

}  // namespace aba::util
