// Hazard pointers (Michael [20, 21]) — the application-specific memory-
// reclamation answer to the ABA problem that the paper contrasts with its
// methodological ABA-detecting-register approach.
//
// A fixed domain of per-thread hazard slots; readers publish the pointer
// they are about to dereference, then re-validate the source; retiring
// threads defer reclamation until no slot holds the pointer. This prevents
// both use-after-free and the pointer-recycling ABA: a node cannot be
// recycled (and hence cannot reappear under the same address) while a
// hazard pointer pins it.
//
// Native-only (std::atomic, seq_cst): this module exists for the
// application-level comparison benches and stress tests, not for the
// simulator-based proofs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/assert.h"
#include "util/backoff.h"
#include "util/cacheline.h"

namespace aba::structures {

class HazardDomain {
 public:
  HazardDomain(int max_threads, int slots_per_thread)
      : max_threads_(max_threads),
        slots_per_thread_(slots_per_thread),
        slots_(static_cast<std::size_t>(max_threads) * slots_per_thread),
        retired_(max_threads) {
    ABA_CHECK(max_threads >= 1 && slots_per_thread >= 1);
  }

  ~HazardDomain() {
    // All threads are done: reclaim everything still retired.
    for (auto& list : retired_) {
      for (auto& node : list) node.deleter(node.ptr);
      list.clear();
    }
  }

  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  // Publishes src's current value in (tid, slot) and re-validates until
  // stable. Returns the protected pointer (possibly null).
  template <class T>
  T* protect(int tid, int slot, const std::atomic<T*>& src) {
    std::atomic<const void*>& hp = slot_ref(tid, slot).ptr;
    T* ptr = src.load();
    for (;;) {
      hp.store(ptr);
      T* again = src.load();
      if (again == ptr) return ptr;
      ptr = again;
    }
  }

  void clear(int tid, int slot) { slot_ref(tid, slot).ptr.store(nullptr); }

  // Defers reclamation of `ptr` until no hazard slot holds it.
  void retire(int tid, void* ptr, std::function<void(void*)> deleter) {
    auto& list = retired_[tid];
    list.push_back(Retired{ptr, std::move(deleter)});
    if (list.size() >= scan_threshold()) scan(tid);
  }

  // Reclaims every retired pointer not currently protected.
  void scan(int tid) {
    std::vector<const void*> protected_ptrs;
    protected_ptrs.reserve(slots_.size());
    for (const auto& slot : slots_) {
      const void* p = slot.ptr.load();
      if (p != nullptr) protected_ptrs.push_back(p);
    }
    auto& list = retired_[tid];
    std::vector<Retired> keep;
    keep.reserve(list.size());
    for (auto& node : list) {
      bool pinned = false;
      for (const void* p : protected_ptrs) {
        if (p == node.ptr) {
          pinned = true;
          break;
        }
      }
      if (pinned) {
        keep.push_back(std::move(node));
      } else {
        node.deleter(node.ptr);
      }
    }
    list = std::move(keep);
  }

  std::size_t retired_count(int tid) const { return retired_[tid].size(); }
  std::size_t scan_threshold() const {
    // Standard rule of thumb: 2 * H where H = total hazard slots.
    return 2 * slots_.size();
  }

 private:
  // Each hazard slot is written by exactly one thread (its owner) and read
  // by every scanning thread; one slot per cache line keeps a thread's
  // publish/clear traffic from invalidating its neighbours' slots.
  struct alignas(util::kCacheLineSize) HazardSlot {
    std::atomic<const void*> ptr{nullptr};
  };

  HazardSlot& slot_ref(int tid, int slot) {
    ABA_ASSERT(tid >= 0 && tid < max_threads_);
    ABA_ASSERT(slot >= 0 && slot < slots_per_thread_);
    return slots_[static_cast<std::size_t>(tid) * slots_per_thread_ + slot];
  }

  struct Retired {
    void* ptr;
    std::function<void(void*)> deleter;
  };

  int max_threads_;
  int slots_per_thread_;
  std::vector<HazardSlot> slots_;
  std::vector<std::vector<Retired>> retired_;  // Per-thread; thread-private.
};

// A pointer-based Treiber stack protected by hazard pointers: pop pins the
// head node before reading head->next, so a concurrent pop/push cycle can
// neither free the node under us nor recycle it into an ABA.
template <class T>
class HpTreiberStack {
 public:
  explicit HpTreiberStack(int max_threads)
      : domain_(max_threads, /*slots_per_thread=*/1) {}

  ~HpTreiberStack() {
    Node* node = head_.load();
    while (node != nullptr) {
      Node* next = node->next;
      delete node;
      node = next;
    }
  }

  void push(int /*tid*/, T value) {
    Node* node = new Node{std::move(value), head_.load()};
    allocated_.fetch_add(1);
    util::ExpBackoff backoff;
    while (!head_.compare_exchange_weak(node->next, node)) {
      backoff();
    }
  }

  bool pop(int tid, T& out) {
    util::ExpBackoff backoff;
    for (;;) {
      Node* node = domain_.protect(tid, 0, head_);
      if (node == nullptr) {
        domain_.clear(tid, 0);
        return false;
      }
      Node* next = node->next;  // Safe: node is pinned.
      if (head_.compare_exchange_strong(node, next)) {
        out = std::move(node->value);
        domain_.clear(tid, 0);
        domain_.retire(tid, node, [this](void* p) {
          delete static_cast<Node*>(p);
          freed_.fetch_add(1);
        });
        return true;
      }
      domain_.clear(tid, 0);
      backoff();
    }
  }

  std::uint64_t allocated() const { return allocated_.load(); }
  std::uint64_t freed() const { return freed_.load(); }
  HazardDomain& domain() { return domain_; }

 private:
  struct Node {
    T value;
    Node* next;
  };

  std::atomic<Node*> head_{nullptr};
  std::atomic<std::uint64_t> allocated_{0};
  std::atomic<std::uint64_t> freed_{0};
  // Declared last: the domain's destructor runs retire-list deleters that
  // touch the counters above, so it must be destroyed first.
  HazardDomain domain_;
};

}  // namespace aba::structures
