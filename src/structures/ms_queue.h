// MsQueue — Michael & Scott's lock-free FIFO queue [24], the algorithm whose
// original presentation *introduced* per-word modification counters ("tags")
// precisely to dodge the ABA problem the paper studies.
//
// Index-based over a fixed node pool so it runs on the simulator and
// natively. Head, tail and every node's next pointer are (index, tag) words
// updated by CAS with the tag incremented on every change, wrapping at
// 2^tag_bits. With wide tags the queue is safe in any feasible run; with
// deliberately narrow tags the wraparound ABA becomes reachable, which is
// the paper's point that bounded tagging is only probabilistically correct.
//
// Node reuse is a Reclaimer policy (src/reclaim/): the default
// TaggedReclaimer recycles a dequeued dummy immediately — the original
// algorithm, whose safety rests entirely on the tags — while the hazard/
// epoch reclaimers defer reuse until no concurrent operation can still hold
// the node, making the queue safe independent of tag width (dequeue guards
// head and head->next, slots 0 and 1, in the hazard case). LeakyReclaimer
// never reuses — the ABA-free baseline.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/platform.h"
#include "reclaim/reclaimer.h"
#include "reclaim/tagged.h"
#include "structures/contention.h"
#include "util/assert.h"

namespace aba::structures {

template <Platform P, class R = reclaim::TaggedReclaimer<P>>
class MsQueue {
  static_assert(reclaim::ReclaimerFor<R, P>,
                "R must satisfy the Reclaimer concept for platform P");

 public:
  struct Options {
    unsigned index_bits = 16;
    unsigned tag_bits = 16;
  };

  // Pool: one dummy node (index 0) plus `nodes_per_process` per process,
  // handed to the reclaimer as the initial free lists. The dummy enters
  // circulation the first time it is dequeued past and retired.
  MsQueue(typename P::Env& env, int n, int nodes_per_process,
          Options options = {})
      : options_(options),
        head_(env, "queue.head", pack(0, 0), sim::BoundSpec::unbounded()),
        tail_(env, "queue.tail", pack(0, 0), sim::BoundSpec::unbounded()),
        reclaimer_(env, n, initial_free(n, nodes_per_process)) {
    ABA_CHECK(options.index_bits + options.tag_bits <= 64);
    ABA_CHECK(1 + static_cast<std::uint64_t>(n) * nodes_per_process <
               index_mask());
    const std::size_t pool = 1 + static_cast<std::size_t>(n) * nodes_per_process;
    nodes_.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) {
      nodes_.push_back(std::make_unique<Node>(env, pack(null_index(), 0)));
    }
  }

  static std::vector<std::deque<std::uint64_t>> initial_free(
      int n, int nodes_per_process) {
    std::vector<std::deque<std::uint64_t>> free(n);
    std::uint64_t next_node = 1;  // 0 is the dummy.
    for (int p = 0; p < n; ++p) {
      for (int i = 0; i < nodes_per_process; ++i) free[p].push_back(next_node++);
    }
    return free;
  }

  bool enqueue(int p, std::uint64_t value) {
    // Allocation precedes the protected region (the epoch contract).
    const std::optional<std::uint64_t> node_opt = reclaimer_.allocate(p);
    if (!node_opt) return false;
    const std::uint64_t node_index = *node_opt;
    Node& node = *nodes_[node_index];
    node.value.write(value);
    // Reset next to null, bumping its tag (local to this node's lifecycle).
    const std::uint64_t old_next = node.next.read();
    node.next.write(pack(null_index(), tag_of(old_next) + 1));

    reclaimer_.begin_op(p);
    PlatformBackoffT<P> backoff;
    for (;;) {
      const std::uint64_t tail = tail_.read();
      if constexpr (R::kNeedsGuard) reclaimer_.guard(p, 0, index_of(tail));
      const std::uint64_t tail_next = nodes_[index_of(tail)]->next.read();
      if (tail != tail_.read()) {  // Tail moved under us (validates the guard).
        backoff();
        continue;
      }
      if (index_of(tail_next) == null_index()) {
        // Tail is the last node: link the new node.
        if (nodes_[index_of(tail)]->next.cas(
                tail_next, pack(node_index, tag_of(tail_next) + 1))) {
          // The node is linked: tell crash-robust reclaimers its allocation
          // is no longer in flight (thread-private — schedules unchanged).
          if constexpr (requires { reclaimer_.commit(p); }) {
            reclaimer_.commit(p);
          }
          // Swing tail (may fail if someone helped; that's fine).
          tail_.cas(tail, pack(node_index, tag_of(tail) + 1));
          reclaimer_.end_op(p);
          return true;
        }
        if (probe_ != nullptr) probe_->record_failure();
      } else {
        // Tail lags: help swing it.
        tail_.cas(tail, pack(index_of(tail_next), tag_of(tail) + 1));
      }
      backoff();
    }
  }

  std::optional<std::uint64_t> dequeue(int p) {
    reclaimer_.begin_op(p);
    PlatformBackoffT<P> backoff;
    for (;;) {
      const std::uint64_t head = head_.read();
      if constexpr (R::kNeedsGuard) reclaimer_.guard(p, 0, index_of(head));
      const std::uint64_t tail = tail_.read();
      const std::uint64_t head_next = nodes_[index_of(head)]->next.read();
      if (head != head_.read()) {  // Also validates the slot-0 guard.
        backoff();
        continue;
      }
      if (index_of(head) == index_of(tail)) {
        if (index_of(head_next) == null_index()) {
          reclaimer_.end_op(p);
          return std::nullopt;  // Empty.
        }
        // Tail lags behind: help.
        tail_.cas(tail, pack(index_of(head_next), tag_of(tail) + 1));
        continue;
      }
      if constexpr (R::kNeedsGuard) {
        reclaimer_.guard(p, 1, index_of(head_next));
        // head unchanged ⇒ head_next is still linked, so the guard is valid.
        if (head != head_.read()) {
          backoff();
          continue;
        }
      }
      // Read the value before the CAS (the node may be reused right after).
      const std::uint64_t value = nodes_[index_of(head_next)]->value.read();
      if (head_.cas(head, pack(index_of(head_next), tag_of(head) + 1))) {
        reclaimer_.end_op(p);
        // The old dummy node is now free for reuse once the policy allows.
        reclaimer_.retire(p, index_of(head));
        return value;
      }
      if (probe_ != nullptr) probe_->record_failure();
      backoff();
    }
  }

  // Uniform structure verbs (structures/concepts.h): an UnboundedContainer
  // whose try_push refusal means pool pressure, never "full".
  bool try_push(int p, std::uint64_t value) { return enqueue(p, value); }
  std::optional<std::uint64_t> try_pop(int p) { return dequeue(p); }

  // See TreiberStack::detach / set_contention_probe — same contracts.
  void detach(int p) {
    if constexpr (requires { reclaimer_.detach(p); }) reclaimer_.detach(p);
  }
  void set_contention_probe(ContentionProbe* probe) { probe_ = probe; }

  std::size_t pool_size() const { return nodes_.size(); }
  R& reclaimer() { return reclaimer_; }
  const R& reclaimer() const { return reclaimer_; }

 private:
  // The all-ones index is the null marker (never a valid pool index).
  std::uint64_t null_index() const { return index_mask(); }

  std::uint64_t pack(std::uint64_t index, std::uint64_t tag) const {
    return ((tag & tag_mask()) << options_.index_bits) |
           (index & index_mask());
  }
  std::uint64_t index_of(std::uint64_t word) const { return word & index_mask(); }
  std::uint64_t tag_of(std::uint64_t word) const {
    return (word >> options_.index_bits) & tag_mask();
  }
  std::uint64_t index_mask() const { return (1ULL << options_.index_bits) - 1; }
  std::uint64_t tag_mask() const { return (1ULL << options_.tag_bits) - 1; }

  struct Node {
    Node(typename P::Env& env, std::uint64_t initial_next)
        : value(env, "qnode.value", 0, sim::BoundSpec::unbounded()),
          next(env, "qnode.next", initial_next, sim::BoundSpec::unbounded()) {}
    typename P::Register value;
    typename P::WritableCas next;
  };

  Options options_;
  typename P::WritableCas head_;
  typename P::WritableCas tail_;
  std::vector<std::unique_ptr<Node>> nodes_;
  R reclaimer_;
  ContentionProbe* probe_ = nullptr;
};

}  // namespace aba::structures
