// Contention-adaptive sharding facade — pick the shard count at runtime,
// from measured contention, instead of at compile time.
//
// structures/sharded.h fixes kShards when the binary is built; the right
// value depends on the deployment (thread count, core count, workload mix)
// and the ROADMAP's "adaptive shard count" item asks for the structure to
// find its own operating point. This facade does that without migrating a
// single element:
//
//   * The backing store is ONE wide instantiation —
//     ShardedTreiberStack/MsQueue<..., kMaxShards> (default 8, the widest
//     E9 sweeps) — so all per-shard machinery (independent heads,
//     per-shard reclaimers over disjoint index spaces) is exactly the
//     compile-time layer's.
//   * Routing happens here, against a runtime `active` shard count that
//     walks the power-of-two ladder 1..kMaxShards (the same points the
//     compile-time sweep instantiates). Puts route home = pid % active and
//     fall through the active set under pool pressure, then the parked
//     remainder (capacity stays elastic across the full width). Takes
//     probe the active set home-first, then steal across ALL kMaxShards —
//     so shrinking the active set strands nothing: elements left in
//     deactivated shards drain through the steal scan.
//
// The contention signal is the per-shard CAS-failure rate: each shard
// carries a ContentionProbe (padded relaxed counter, bumped only on failed
// CAS) and every routed operation bumps a padded per-process op counter.
// Every sample_interval ops a process tries (try-lock, never blocks the
// data path) an adaptation step: failures-per-op over the window above
// grow_threshold doubles the active count, below shrink_threshold halves
// it. Hysteresis comes from the threshold gap plus settle_checks windows
// of cooldown after every switch, so the facade settles instead of
// oscillating around a boundary.
//
// Semantics are the sharded layer's relaxed pool, unchanged: every shard
// is an ordinary linearizable TreiberStack/MsQueue (routing is arithmetic
// on thread-private values plus instrumentation counters that are not
// Platform objects — no shared steps, no schedule perturbation), the
// composite conserves the value multiset, and "empty" is a full-width
// per-scan observation. tests/test_adaptive.cpp checks the contract and
// drives deterministic grow/shrink schedules.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/platform.h"
#include "reclaim/reclaimer.h"
#include "reclaim/tagged.h"
#include "structures/contention.h"
#include "structures/sharded.h"
#include "util/assert.h"
#include "util/cacheline.h"
#include "util/shard.h"

namespace aba::structures {

// Tuning knobs, shared by both facades. Defaults suit the bench loops;
// tests shrink the windows to drive decisions deterministically.
struct AdaptiveOptions {
  int initial_shards = 1;      // Clamped down to a power of two <= kMaxShards.
  bool adaptive = true;        // false = pure runtime-dispatch (fixed width).
  std::uint32_t sample_interval = 128;  // Per-process ops between checks.
  double grow_threshold = 0.10;    // CAS failures per op that doubles width.
  double shrink_threshold = 0.01;  // ...and that halves it.
  int settle_checks = 2;  // Windows skipped after a switch (hysteresis).
};

namespace detail {

// The runtime router + adaptation engine over any wide sharded backing
// (the Wide type supplies shard(s) and kShardCount; the derived facade
// constructs it and names the verbs).
template <class Wide>
class AdaptiveRouter {
 public:
  static constexpr int kMaxShards = Wide::kShardCount;
  static_assert((kMaxShards & (kMaxShards - 1)) == 0,
                "the active-width ladder is powers of two");

  // Current operating point (a power of two in [1, kMaxShards]).
  int active_shards() const {
    return active_.value.load(std::memory_order_relaxed);
  }

  // Pins the operating point by hand (rounded down to a power of two in
  // [1, kMaxShards]) — the pure runtime-dispatch mode: deployments tune the
  // shard count without recompiling, typically with adaptive=false. Safe at
  // any time: takes always scan the full width, so narrowing strands no
  // parked elements.
  void set_active_shards(int width) {
    active_.value.store(clamp_width(width), std::memory_order_relaxed);
  }
  // Times the operating point moved (monotonic; introspection/tests).
  std::uint64_t switches() const {
    return switches_.load(std::memory_order_relaxed);
  }
  std::uint64_t cas_failures() const {
    std::uint64_t total = 0;
    for (const auto& probe : probes_) total += probe.failures();
    return total;
  }

  // Same thread-private contract as ShardRouter::last_shard — what the
  // sharded test adapters tag histories with.
  int last_shard(int p) const {
    return per_proc_[static_cast<std::size_t>(p)].last_shard;
  }

  void detach(int p) { wide_.detach(p); }
  std::size_t pool_size() const { return wide_.pool_size(); }
  std::size_t unreclaimed(int p) const { return wide_.unreclaimed(p); }

  // Reclamation observability (see ShardRouter): the facade is a pure
  // router over the wide backing, so its aggregate IS the backing's.
  reclaim::ReclaimStats reclaim_stats() const { return wide_.reclaim_stats(); }
  reclaim::ReclaimPhase reclaim_phase(int p) const {
    return wide_.reclaim_phase(p);
  }

  Wide& wide() { return wide_; }

 protected:
  template <class... Args>
  explicit AdaptiveRouter(const AdaptiveOptions& options, int n, Args&&... args)
      : options_(options),
        wide_(std::forward<Args>(args)...),
        per_proc_(static_cast<std::size_t>(n)) {
    ABA_CHECK(n >= 1);
    ABA_CHECK(options_.initial_shards >= 1);
    ABA_CHECK(options_.sample_interval >= 1);
    active_.value.store(clamp_width(options_.initial_shards),
                        std::memory_order_relaxed);
    for (int s = 0; s < kMaxShards; ++s) {
      wide_.shard(s).set_contention_probe(&probes_[static_cast<std::size_t>(s)]);
    }
  }

  // Active set home-first (pool-pressure fall-through), then the parked
  // remainder: attempts [0, active) probe cyclically within the active
  // prefix, attempts [active, kMaxShards) are the parked shards in index
  // order — every shard visited exactly once.
  static int probe(int home, int attempt, int active) {
    return attempt < active ? util::probe_shard(home, attempt, active)
                            : attempt;
  }

  template <class Put>  // Put: (Shard&, p) -> bool
  bool routed_put(int p, Put put) {
    const int active = active_shards();
    const int home = util::home_shard(p, active);
    for (int attempt = 0; attempt < kMaxShards; ++attempt) {
      const int s = probe(home, attempt, active);
      if (put(wide_.shard(s), p)) {
        finish_op(p, s);
        return true;
      }
    }
    finish_op(p, home);
    return false;
  }

  template <class Take>  // Take: (Shard&, p) -> std::optional<uint64_t>
  std::optional<std::uint64_t> routed_take(int p, Take take) {
    const int active = active_shards();
    const int home = util::home_shard(p, active);
    // Full-width scan: parked shards must stay drainable after a shrink.
    for (int attempt = 0; attempt < kMaxShards; ++attempt) {
      const int s = probe(home, attempt, active);
      const std::optional<std::uint64_t> value = take(wide_.shard(s), p);
      if (value.has_value()) {
        finish_op(p, s);
        return value;
      }
    }
    finish_op(p, home);
    return std::nullopt;
  }

 private:
  static int clamp_width(int width) {
    int clamped = 1;  // Non-positive inputs clamp up to the ladder's floor.
    while (clamped * 2 <= width && clamped * 2 <= kMaxShards) clamped *= 2;
    return clamped;
  }

  void finish_op(int p, int landed) {
    auto& mine = per_proc_[static_cast<std::size_t>(p)];
    mine.last_shard = landed;
    mine.ops.fetch_add(1, std::memory_order_relaxed);
    if (++mine.since_check >= options_.sample_interval) {
      mine.since_check = 0;
      if (options_.adaptive) maybe_adapt();
    }
  }

  // One process at a time recomputes the global failure rate; everyone
  // else skips (the data path never blocks on adaptation).
  void maybe_adapt() {
    if (adapt_lock_.value.exchange(true, std::memory_order_acquire)) return;
    std::uint64_t ops = 0;
    for (const auto& proc : per_proc_) {
      ops += proc.ops.load(std::memory_order_relaxed);
    }
    const std::uint64_t fails = cas_failures();
    const std::uint64_t delta_ops = ops - last_ops_;
    if (delta_ops >= options_.sample_interval) {
      const std::uint64_t delta_fails = fails - last_fails_;
      last_ops_ = ops;
      last_fails_ = fails;
      if (settle_ > 0) {
        --settle_;
      } else {
        const double rate = static_cast<double>(delta_fails) /
                            static_cast<double>(delta_ops);
        const int width = active_shards();
        if (rate > options_.grow_threshold && width < kMaxShards) {
          active_.value.store(width * 2, std::memory_order_relaxed);
          switches_.fetch_add(1, std::memory_order_relaxed);
          settle_ = options_.settle_checks;
        } else if (rate < options_.shrink_threshold && width > 1) {
          active_.value.store(width / 2, std::memory_order_relaxed);
          switches_.fetch_add(1, std::memory_order_relaxed);
          settle_ = options_.settle_checks;
        }
      }
    }
    adapt_lock_.value.store(false, std::memory_order_release);
  }

  // Hot per-process state, one cache line each: the op counter and the
  // last-shard tag are written on every routed operation.
  struct alignas(util::kCacheLineSize) PerProcess {
    std::atomic<std::uint64_t> ops{0};
    std::uint32_t since_check = 0;  // Owner-only.
    int last_shard = -1;
  };

  AdaptiveOptions options_;
  Wide wide_;
  std::array<ContentionProbe, kMaxShards> probes_;
  std::vector<PerProcess> per_proc_;
  util::Padded<std::atomic<int>> active_;
  util::Padded<std::atomic<bool>> adapt_lock_;
  std::atomic<std::uint64_t> switches_{0};
  // Adaptation-window baselines and cooldown; touched only under adapt_lock_.
  std::uint64_t last_ops_ = 0;
  std::uint64_t last_fails_ = 0;
  int settle_ = 0;
};

}  // namespace detail

// ------------------------------------------------------------------- stack

template <Platform P, class Head, class R = reclaim::TaggedReclaimer<P>,
          int kMaxShards = 8>
class AdaptiveShardedStack
    : public detail::AdaptiveRouter<
          ShardedTreiberStack<P, Head, R, kMaxShards>> {
  static_assert(reclaim::ReclaimerFor<R, P>,
                "R must satisfy the Reclaimer concept for platform P");
  using Wide = ShardedTreiberStack<P, Head, R, kMaxShards>;
  using Router = detail::AdaptiveRouter<Wide>;

 public:
  using Shard = typename Wide::Shard;

  AdaptiveShardedStack(typename P::Env& env, int n,
                       std::array<std::unique_ptr<Head>, kMaxShards> heads,
                       int per_process_per_shard, AdaptiveOptions options = {})
      : Router(options, n, env, n, std::move(heads), per_process_per_shard) {}

  static std::array<std::unique_ptr<Head>, kMaxShards> make_heads(
      typename P::Env& env, int n) {
    return Wide::make_heads(env, n);
  }

  bool push(int p, std::uint64_t value) {
    return this->routed_put(
        p, [value](Shard& shard, int pid) { return shard.push(pid, value); });
  }

  std::optional<std::uint64_t> pop(int p) {
    return this->routed_take(
        p, [](Shard& shard, int pid) { return shard.pop(pid); });
  }

  // Uniform structure verbs (structures/concepts.h).
  bool try_push(int p, std::uint64_t value) { return push(p, value); }
  std::optional<std::uint64_t> try_pop(int p) { return pop(p); }
};

// ------------------------------------------------------------------- queue

template <Platform P, class R = reclaim::TaggedReclaimer<P>,
          int kMaxShards = 8>
class AdaptiveShardedQueue
    : public detail::AdaptiveRouter<ShardedMsQueue<P, R, kMaxShards>> {
  static_assert(reclaim::ReclaimerFor<R, P>,
                "R must satisfy the Reclaimer concept for platform P");
  using Wide = ShardedMsQueue<P, R, kMaxShards>;
  using Router = detail::AdaptiveRouter<Wide>;

 public:
  using Shard = typename Wide::Shard;
  using QueueOptions = typename Wide::Options;

  AdaptiveShardedQueue(typename P::Env& env, int n,
                       int nodes_per_process_per_shard,
                       AdaptiveOptions options = {},
                       QueueOptions queue_options = {})
      : Router(options, n, env, n, nodes_per_process_per_shard,
               queue_options) {}

  bool enqueue(int p, std::uint64_t value) {
    return this->routed_put(p, [value](Shard& shard, int pid) {
      return shard.enqueue(pid, value);
    });
  }

  std::optional<std::uint64_t> dequeue(int p) {
    return this->routed_take(
        p, [](Shard& shard, int pid) { return shard.dequeue(pid); });
  }

  // Uniform structure verbs (structures/concepts.h).
  bool try_push(int p, std::uint64_t value) { return enqueue(p, value); }
  std::optional<std::uint64_t> try_pop(int p) { return dequeue(p); }
};

}  // namespace aba::structures
