// Bounded ring buffers — the workload family where the paper's ABA price is
// sharpest, because the price *varies by role structure*:
//
//   SpscRing — one producer, one consumer (Lamport). The positions are
//       single-writer registers (the producer alone advances tail, the
//       consumer alone advances head), so there is NOTHING to CAS: every
//       operation is reads and writes only — zero shared RMW per op
//       (machine-checked by RingStepCount.SpscZeroRmwPerOp against the
//       Counted native platform's rmw counter). ABA prevention costs
//       nothing here because no location is ever contended.
//
//   MpscRing — producers CAS the tail to reserve a position; the single
//       consumer still advances head with a plain write. One RMW per push,
//       zero per pop.
//
//   MpmcRing — Vyukov-style: head and tail are CAS words, and every slot
//       carries a SEQUENCE WORD. The slot sequence is exactly the paper's
//       unbounded-tag construction in miniature (PAPER.md, Theorem 1's
//       trivial direction): the position a slot was last filled/emptied
//       *for* is stored alongside it, drawn from an unbounded monotonic
//       domain, so a stale reservation can never be mistaken for a fresh
//       one — the per-slot tag answers the head/tail ABA the way a bounded
//       tag provably cannot (the tag-wrap escapes bench_aba_escape
//       quantifies). The SPSC↔MPMC latency gap in E9 is that answer's
//       price, measured.
//
// All three are first-class structures over the Platform axis: SimPlatform
// for scheduled/model-checked tests, NativePlatform<Counted|Fast|...> for
// perf, ShmPlatform for cross-process use (construction is a deterministic
// word-placement sequence, so the arena layout hash matches across
// attachers). Position and sequence words are declared unbounded
// (sim::BoundSpec::unbounded()): boundedness is the whole subject, and
// declaring it keeps the simulator's width checks honest.
//
// Refusal contract (spec::BoundedQueueSpec, SpecKind::kRing): capacity is
// abstract state, so try_push may report full ONLY when the ring truly held
// `capacity` elements at some instant inside the operation — which is why
// the refusal paths below re-read the opposite position word and *retry*
// on the transient case (a reserver that has not yet published, a freeing
// pop mid-flight) instead of refusing. A Vyukov ring that refuses straight
// off the slot sequence is NOT linearizable against the strict bounded
// spec; the model-checker sweep over the ring_mpmc fixture is what pins
// this distinction. The MPSC push has its own illegal-refusal shape: a
// stale tail read with head already past it makes the unsigned occupancy
// underflow to "full" on a possibly-empty ring, so the full check is gated
// on head <= tail (RingScripted.MpscStaleTailDoesNotFakeFull and the
// RingMpscSim sweep walk exactly that window).
//
// LocalRing<T> at the bottom is the degenerate single-process member of the
// family (plain sequential code, no platform words). It exists so Figure
// 4's process-local usedQ (core/sequence_reservation.h) shares the one ring
// implementation without acquiring shared-memory steps — its accesses MUST
// stay off the platform-step ledger or the Figure 4 step counts change.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/platform.h"
#include "util/assert.h"
#include "util/cacheline.h"

namespace aba::structures {

namespace detail {

// Values travel through 64-bit platform words; any trivially copyable T
// that fits one word rides along via memcpy (bit-exact, alias-safe).
template <class T>
concept RingValue = std::is_trivially_copyable_v<T> &&
                    sizeof(T) <= sizeof(std::uint64_t);

template <RingValue T>
std::uint64_t ring_encode(const T& value) {
  if constexpr (std::is_same_v<T, std::uint64_t>) {
    return value;
  } else {
    std::uint64_t word = 0;
    std::memcpy(&word, &value, sizeof(T));
    return word;
  }
}

template <RingValue T>
T ring_decode(std::uint64_t word) {
  if constexpr (std::is_same_v<T, std::uint64_t>) {
    return word;
  } else {
    T value;
    std::memcpy(&value, &word, sizeof(T));
    return value;
  }
}

// Slot count: the next power of two >= requested, floor 2. Power-of-two
// sizing turns position->slot mapping into a mask; the floor exists because
// a 1-slot Vyukov ring aliases the enqueue expectation (seq == t) with the
// dequeue expectation (seq == h+1) at t == h+1 — the one case where the
// per-slot tag cannot separate the two rounds.
inline std::size_t ring_slot_count(std::size_t requested) {
  ABA_CHECK(requested >= 1);
  return std::bit_ceil(requested < 2 ? std::size_t{2} : requested);
}

}  // namespace detail

// ---------------------------------------------------------------- SpscRing
//
// Lamport's classic: head and tail are monotonic positions, each written by
// exactly one role, so both are plain registers. The producer caches the
// consumer's head (and vice versa) and re-reads the shared word only when
// the cached value says full/empty — the common case costs one slot access
// plus one position write, and NO operation ever performs an RMW.
template <Platform P, detail::RingValue T = std::uint64_t>
class SpscRing {
 public:
  using value_type = T;

  // `n` is the process count (kept for the uniform structure constructor
  // shape; only two roles ever operate). Capacity rounds up to a power of
  // two, minimum 2; capacity() reports the usable (rounded) value.
  SpscRing(typename P::Env& env, int n, std::size_t capacity)
      : cap_(detail::ring_slot_count(capacity)),
        mask_(cap_ - 1),
        head_(env, "ring.head", 0, sim::BoundSpec::unbounded()),
        tail_(env, "ring.tail", 0, sim::BoundSpec::unbounded()) {
    ABA_CHECK(n >= 1);
    slots_.reserve(cap_);
    for (std::size_t i = 0; i < cap_; ++i) {
      slots_.push_back(std::make_unique<typename P::Register>(
          env, "ring.slot", 0, sim::BoundSpec::unbounded()));
    }
  }

  // Producer side. Refuses only on a FRESH head read showing
  // tail - head == capacity (a real full instant inside this op).
  bool try_push(int /*p*/, T value) {
    if (prod_.pos - prod_.cached_head == cap_) {
      prod_.cached_head = head_.read();
      if (prod_.pos - prod_.cached_head == cap_) return false;
    }
    slots_[prod_.pos & mask_]->write(detail::ring_encode(value));
    // The tail write publishes the slot (release under relaxed-orderings
    // native policies; a scheduled step in the simulator).
    tail_.write(prod_.pos + 1);
    ++prod_.pos;
    return true;
  }

  // Consumer side; same shape, symmetric.
  std::optional<T> try_pop(int /*p*/) {
    if (cons_.cached_tail == cons_.pos) {
      cons_.cached_tail = tail_.read();
      if (cons_.cached_tail == cons_.pos) return std::nullopt;
    }
    const T value = detail::ring_decode<T>(slots_[cons_.pos & mask_]->read());
    head_.write(cons_.pos + 1);
    ++cons_.pos;
    return value;
  }

  // Batched producer: pushes up to n values and returns how many landed.
  // ONE tail write publishes the whole batch (and at most one head re-read
  // refreshes the cache), so the position traffic per element approaches
  // zero as n grows — the per-op cost is the slot write alone.
  std::size_t push_n(int /*p*/, const T* values, std::size_t n) {
    std::uint64_t avail =
        static_cast<std::uint64_t>(cap_) - (prod_.pos - prod_.cached_head);
    if (avail < n) {
      prod_.cached_head = head_.read();
      avail = static_cast<std::uint64_t>(cap_) - (prod_.pos - prod_.cached_head);
    }
    const std::size_t k = n < avail ? n : static_cast<std::size_t>(avail);
    for (std::size_t i = 0; i < k; ++i) {
      slots_[(prod_.pos + i) & mask_]->write(detail::ring_encode(values[i]));
    }
    if (k > 0) {
      tail_.write(prod_.pos + k);  // Publish the batch atomically.
      prod_.pos += k;
    }
    return k;
  }

  // Batched consumer: pops up to n values into out, ONE head write frees
  // the whole batch of slots for the producer.
  std::size_t pop_n(int /*p*/, T* out, std::size_t n) {
    std::uint64_t avail = cons_.cached_tail - cons_.pos;
    if (avail < n) {
      cons_.cached_tail = tail_.read();
      avail = cons_.cached_tail - cons_.pos;
    }
    const std::size_t k = n < avail ? n : static_cast<std::size_t>(avail);
    for (std::size_t i = 0; i < k; ++i) {
      out[i] = detail::ring_decode<T>(slots_[(cons_.pos + i) & mask_]->read());
    }
    if (k > 0) {
      head_.write(cons_.pos + k);
      cons_.pos += k;
    }
    return k;
  }

  std::size_t capacity() const { return cap_; }

  // Racy occupancy estimate: two position reads, clamped (the reads are not
  // atomic together, so tail may be observed behind head).
  std::size_t approx_size() {
    const std::uint64_t t = tail_.read();
    const std::uint64_t h = head_.read();
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

 private:
  // Role-private mirrors, one cache line per role: the producer's fields
  // are never touched by the consumer and vice versa, so the only
  // cross-role traffic is through the platform words themselves.
  struct alignas(util::kCacheLineSize) ProducerLocal {
    std::uint64_t pos = 0;          // Next position to fill (== own tail).
    std::uint64_t cached_head = 0;  // Last observed consumer head.
  };
  struct alignas(util::kCacheLineSize) ConsumerLocal {
    std::uint64_t pos = 0;          // Next position to drain (== own head).
    std::uint64_t cached_tail = 0;  // Last observed producer tail.
  };

  std::size_t cap_;
  std::uint64_t mask_;
  typename P::Register head_;  // Consumer-advanced, producer-read.
  typename P::Register tail_;  // Producer-advanced, consumer-read.
  std::vector<std::unique_ptr<typename P::Register>> slots_;
  ProducerLocal prod_;
  ConsumerLocal cons_;
};

// ---------------------------------------------------------------- MpscRing
//
// Many producers, one consumer: producers serialize through a CAS on the
// tail (one RMW per push — the first place the prevention price appears);
// the consumer still owns head outright and pays zero RMW. Each slot
// carries a sequence word so the consumer can tell a *reserved* slot from a
// *published* one: seq == pos + 1 means position pos's value is readable.
template <Platform P, detail::RingValue T = std::uint64_t>
class MpscRing {
 public:
  using value_type = T;

  MpscRing(typename P::Env& env, int n, std::size_t capacity)
      : cap_(detail::ring_slot_count(capacity)),
        mask_(cap_ - 1),
        head_(env, "ring.head", 0, sim::BoundSpec::unbounded()),
        tail_(env, "ring.tail", 0, sim::BoundSpec::unbounded()) {
    ABA_CHECK(n >= 1);
    slots_.reserve(cap_);
    for (std::size_t i = 0; i < cap_; ++i) {
      slots_.push_back(std::make_unique<Slot>(env));
    }
  }

  bool try_push(int /*p*/, T value) {
    PlatformBackoffT<P> backoff;
    for (;;) {
      const std::uint64_t t = tail_.read();
      const std::uint64_t h = head_.read();
      if (h > t) {
        // The consumer advanced head past our tail read, so t is stale
        // (head never passes the real tail) and the unsigned occupancy
        // t - h would underflow to "full" on a ring that may be EMPTY.
        // Nothing certifies a full instant here — re-read, never refuse.
        backoff();
        continue;
      }
      // Full check BEFORE the reservation: head was read after tail, so at
      // the instant of the head read the real tail was >= t and the ring
      // truly held >= t - h elements — refusing is spec-legal.
      if (t - h >= cap_) return false;
      if (tail_.cas(t, t + 1)) {
        Slot& slot = *slots_[t & mask_];
        slot.value.write(detail::ring_encode(value));
        slot.seq.write(t + 1);  // Publish: position t is now readable.
        return true;
      }
      backoff();  // Another producer took position t.
    }
  }

  std::optional<T> try_pop(int /*p*/) {
    PlatformBackoffT<P> backoff;
    const std::uint64_t h = cons_.pos;
    for (;;) {
      Slot& slot = *slots_[h & mask_];
      if (slot.seq.read() == h + 1) {
        const T value = detail::ring_decode<T>(slot.value.read());
        head_.write(h + 1);
        ++cons_.pos;
        return value;
      }
      // Unpublished. Empty only if nothing is even reserved past h —
      // otherwise a producer holds the position and we must wait for its
      // publish (returning empty here would not linearize: the reserver's
      // push may already have responded... it cannot have, publication
      // precedes its response — but an *earlier* push it overtook can).
      if (tail_.read() == h) return std::nullopt;
      backoff();
    }
  }

  // Batched producer: ONE tail CAS reserves up to n consecutive positions
  // (vs. one RMW per element single-op), then each slot is written and
  // published individually. Returns how many landed; 0 only on a certified
  // full instant (head read after tail, same argument as try_push).
  std::size_t push_n(int /*p*/, const T* values, std::size_t n) {
    if (n == 0) return 0;
    PlatformBackoffT<P> backoff;
    for (;;) {
      const std::uint64_t t = tail_.read();
      const std::uint64_t h = head_.read();
      if (h > t) {  // Stale tail (see try_push): nothing certified, re-read.
        backoff();
        continue;
      }
      const std::uint64_t space = static_cast<std::uint64_t>(cap_) - (t - h);
      if (space == 0) return 0;
      const std::size_t k = n < space ? n : static_cast<std::size_t>(space);
      if (tail_.cas(t, t + k)) {
        for (std::size_t i = 0; i < k; ++i) {
          Slot& slot = *slots_[(t + i) & mask_];
          slot.value.write(detail::ring_encode(values[i]));
          slot.seq.write(t + i + 1);  // Publish position t+i.
        }
        return k;
      }
      backoff();  // Another producer moved the tail.
    }
  }

  // Batched consumer (single consumer, so no reservation needed): drains
  // the contiguous published prefix, up to n, under ONE head write.
  std::size_t pop_n(int /*p*/, T* out, std::size_t n) {
    const std::uint64_t h = cons_.pos;
    std::size_t k = 0;
    while (k < n) {
      Slot& slot = *slots_[(h + k) & mask_];
      if (slot.seq.read() != h + k + 1) break;  // Unpublished: prefix ends.
      out[k] = detail::ring_decode<T>(slot.value.read());
      ++k;
    }
    if (k > 0) {
      head_.write(h + k);
      cons_.pos += k;
    }
    return k;
  }

  std::size_t capacity() const { return cap_; }

  std::size_t approx_size() {
    const std::uint64_t t = tail_.read();
    const std::uint64_t h = head_.read();
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

 private:
  struct Slot {
    explicit Slot(typename P::Env& env)
        : seq(env, "ring.seq", 0, sim::BoundSpec::unbounded()),
          value(env, "ring.value", 0, sim::BoundSpec::unbounded()) {}
    typename P::Register seq;
    typename P::Register value;
  };
  struct alignas(util::kCacheLineSize) ConsumerLocal {
    std::uint64_t pos = 0;
  };

  std::size_t cap_;
  std::uint64_t mask_;
  typename P::Register head_;  // Consumer-advanced, producers read it.
  typename P::Cas tail_;       // Producers reserve positions here.
  std::vector<std::unique_ptr<Slot>> slots_;
  ConsumerLocal cons_;
};

// ---------------------------------------------------------------- MpmcRing
//
// Vyukov's bounded MPMC queue over the Platform concept. Both positions are
// CAS words; every slot's sequence word cycles
//
//     pos  --push-->  pos + 1  --pop-->  pos + capacity  (= next round's pos)
//
// so the sequence IS the slot's unbounded tag: a process acting on a stale
// position reads a sequence that can never again equal what it expects, and
// backs off to re-read — the recycled-slot ABA that corrupts a raw-CAS
// Treiber head (TreiberAba.RawCasHeadIsCorrupted) is structurally absent.
// The scripted SimWorld schedules in tests/test_ring.cpp walk exactly that
// shape against these words.
template <Platform P, detail::RingValue T = std::uint64_t>
class MpmcRing {
 public:
  using value_type = T;

  MpmcRing(typename P::Env& env, int n, std::size_t capacity)
      : cap_(detail::ring_slot_count(capacity)),
        mask_(cap_ - 1),
        head_(env, "ring.head", 0, sim::BoundSpec::unbounded()),
        tail_(env, "ring.tail", 0, sim::BoundSpec::unbounded()) {
    ABA_CHECK(n >= 1);
    slots_.reserve(cap_);
    for (std::size_t i = 0; i < cap_; ++i) {
      slots_.push_back(std::make_unique<Slot>(env, static_cast<std::uint64_t>(i)));
    }
  }

  bool try_push(int /*p*/, T value) {
    PlatformBackoffT<P> backoff;
    for (;;) {
      const std::uint64_t t = tail_.read();
      Slot& slot = *slots_[t & mask_];
      const std::uint64_t seq = slot.seq.read();
      if (seq == t) {  // Slot is free for exactly this position.
        if (tail_.cas(t, t + 1)) {
          slot.value.write(detail::ring_encode(value));
          slot.seq.write(t + 1);
          return true;
        }
      } else if (seq < t) {
        // Round-behind: position t's slot still holds the previous round's
        // element. Genuinely full only if the head agrees; a pop that has
        // claimed its position but not yet bumped the sequence is transient
        // and must be waited out (strict bounded-spec refusal contract).
        if (t - head_.read() >= cap_) return false;
      }
      // seq > t: another producer already advanced past t; re-read tail.
      backoff();
    }
  }

  std::optional<T> try_pop(int /*p*/) {
    PlatformBackoffT<P> backoff;
    for (;;) {
      const std::uint64_t h = head_.read();
      Slot& slot = *slots_[h & mask_];
      const std::uint64_t seq = slot.seq.read();
      if (seq == h + 1) {  // Published for exactly this position.
        if (head_.cas(h, h + 1)) {
          const T value = detail::ring_decode<T>(slot.value.read());
          slot.seq.write(h + static_cast<std::uint64_t>(cap_));
          return value;
        }
      } else if (seq < h + 1) {
        // Nothing published at h. Empty only if nothing is reserved either;
        // a reserved-but-unpublished push is transient — wait for it.
        if (tail_.read() == h) return std::nullopt;
      }
      // seq > h + 1: another consumer already advanced past h; re-read.
      backoff();
    }
  }

  // Batched producer: ONE tail CAS reserves up to n consecutive positions.
  // The bound k <= capacity - (tail - head) guarantees each reserved
  // position's slot was already claimed by a previous-round pop (head
  // passed it), so the per-slot sequence wait below is the same transient
  // peer-wait the single-op path documents — not a wait for new pops.
  std::size_t push_n(int /*p*/, const T* values, std::size_t n) {
    if (n == 0) return 0;
    PlatformBackoffT<P> backoff;
    for (;;) {
      const std::uint64_t t = tail_.read();
      const std::uint64_t h = head_.read();
      if (h > t) {  // Stale tail: occupancy would underflow; re-read.
        backoff();
        continue;
      }
      const std::uint64_t space = static_cast<std::uint64_t>(cap_) - (t - h);
      // Head was read after tail, so a zero space certifies a full instant
      // inside this op (the strict-refusal contract, as in try_push).
      if (space == 0) return 0;
      const std::size_t k = n < space ? n : static_cast<std::size_t>(space);
      if (tail_.cas(t, t + k)) {
        for (std::size_t i = 0; i < k; ++i) {
          Slot& slot = *slots_[(t + i) & mask_];
          while (slot.seq.read() != t + i) backoff();  // Prior pop's bump.
          slot.value.write(detail::ring_encode(values[i]));
          slot.seq.write(t + i + 1);
        }
        return k;
      }
      backoff();
    }
  }

  // Batched consumer: ONE head CAS claims up to tail - head positions, all
  // of them reserved by pushers (so each publish is a transient wait).
  std::size_t pop_n(int /*p*/, T* out, std::size_t n) {
    if (n == 0) return 0;
    PlatformBackoffT<P> backoff;
    for (;;) {
      const std::uint64_t h = head_.read();
      const std::uint64_t t = tail_.read();
      if (t <= h) {
        // t == h: tail read after head, and head never passes the real
        // tail — a certified empty instant. t < h: stale tail; re-read.
        if (t == h) return 0;
        backoff();
        continue;
      }
      const std::uint64_t avail = t - h;
      const std::size_t k = n < avail ? n : static_cast<std::size_t>(avail);
      if (head_.cas(h, h + k)) {
        for (std::size_t i = 0; i < k; ++i) {
          Slot& slot = *slots_[(h + i) & mask_];
          while (slot.seq.read() != h + i + 1) backoff();  // Pusher publish.
          out[i] = detail::ring_decode<T>(slot.value.read());
          slot.seq.write(h + i + static_cast<std::uint64_t>(cap_));
        }
        return k;
      }
      backoff();
    }
  }

  std::size_t capacity() const { return cap_; }

  std::size_t approx_size() {
    const std::uint64_t t = tail_.read();
    const std::uint64_t h = head_.read();
    const std::uint64_t d = t >= h ? t - h : 0;
    return d > cap_ ? cap_ : static_cast<std::size_t>(d);
  }

 private:
  struct Slot {
    Slot(typename P::Env& env, std::uint64_t initial_seq)
        : seq(env, "ring.seq", initial_seq, sim::BoundSpec::unbounded()),
          value(env, "ring.value", 0, sim::BoundSpec::unbounded()) {}
    typename P::Register seq;  // The slot's unbounded tag (see file comment).
    typename P::Register value;
  };

  std::size_t cap_;
  std::uint64_t mask_;
  typename P::Cas head_;
  typename P::Cas tail_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

// --------------------------------------------------------------- LocalRing
//
// The sequential member of the family: one process, plain memory, exact
// requested capacity (no power-of-two rounding — nothing to mask). Replaces
// the old util::BoundedQueue verbatim (enqueue/dequeue assert exact
// capacity semantics, front/contains serve Figure 4's usedQ window) and
// additionally speaks the family verbs (try_push/try_pop/capacity), minus
// the pid — there is no concurrency to attribute.
template <class T>
class LocalRing {
 public:
  using value_type = T;

  explicit LocalRing(std::size_t capacity)
      : buffer_(capacity), capacity_(capacity) {
    ABA_CHECK(capacity >= 1);
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  void enqueue(const T& value) {
    ABA_ASSERT_MSG(!full(), "LocalRing overflow");
    buffer_[(head_ + size_) % capacity_] = value;
    ++size_;
  }

  T dequeue() {
    ABA_ASSERT_MSG(!empty(), "LocalRing underflow");
    T value = buffer_[head_];
    head_ = (head_ + 1) % capacity_;
    --size_;
    return value;
  }

  bool try_push(const T& value) {
    if (full()) return false;
    enqueue(value);
    return true;
  }

  std::optional<T> try_pop() {
    if (empty()) return std::nullopt;
    return dequeue();
  }

  // Batch verbs, mirroring the concurrent family (no pid, no position
  // words to amortize — they exist so code written against the batched
  // vocabulary, like the retire pipeline's ring hand-off, runs unchanged).
  std::size_t push_n(const T* values, std::size_t n) {
    std::size_t k = 0;
    while (k < n && !full()) enqueue(values[k++]);
    return k;
  }

  std::size_t pop_n(T* out, std::size_t n) {
    std::size_t k = 0;
    while (k < n && !empty()) out[k++] = dequeue();
    return k;
  }

  const T& front() const {
    ABA_ASSERT(!empty());
    return buffer_[head_];
  }

  // The i-th element from the front (0 = front()), for observers that walk
  // the window without draining it (fingerprints, crash sweeps).
  const T& peek(std::size_t i) const {
    ABA_ASSERT(i < size_);
    return buffer_[(head_ + i) % capacity_];
  }

  bool contains(const T& value) const {
    for (std::size_t i = 0; i < size_; ++i) {
      if (buffer_[(head_ + i) % capacity_] == value) return true;
    }
    return false;
  }

 private:
  std::vector<T> buffer_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace aba::structures
