// ContentionProbe — sampled CAS-failure telemetry for a structure's
// protected CAS site(s).
//
// A failed CAS is the purest contention signal the structures emit: it
// happens exactly when another process moved the word between this
// process's read and its swing. The probe is a single padded relaxed
// counter bumped ONLY on the failure/retry path — the success path of an
// uncontended operation never touches it (a null-probe structure pays one
// predictable branch per failed attempt, nothing per success). The counter
// is ordinary process memory, not a Platform object: it takes no simulated
// steps, never perturbs deterministic schedules, and costs no shared steps
// in the paper's model — it is instrumentation for the adaptive sharding
// facade (structures/adaptive_sharded.h), which samples failure *rates*
// (failures per routed operation) to pick its operating point.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/cacheline.h"

namespace aba::structures {

class ContentionProbe {
 public:
  void record_failure() {
    failures_.value.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t failures() const {
    return failures_.value.load(std::memory_order_relaxed);
  }

 private:
  util::Padded<std::atomic<std::uint64_t>> failures_;
};

}  // namespace aba::structures
