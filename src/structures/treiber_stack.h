// TreiberStack — the application-level motivation for the paper: a lock-free
// stack whose head pointer is exactly the kind of location that suffers
// ABAs when nodes are reused.
//
// The stack is index-based over a fixed node pool (so it runs unchanged on
// the simulator and natively) and is parameterized on two orthogonal
// policies:
//
//   Head — how the CAS site detects interference:
//     RawCasHead        — plain CAS on the node index. ABA-vulnerable under
//                         immediate reuse: a pop that stalls between reading
//                         head->next and its CAS can swing the head to a
//                         freed node (demonstrated deterministically in
//                         tests/examples).
//     TaggedCasHead     — CAS on (index, tag) with a bounded tag; safe until
//                         the tag wraps (the paper's critique of bounded
//                         tagging), quantified in bench_aba_escape.
//     LlscHead          — LL/SC on the index using any of this repository's
//                         LL/SC implementations; immune to ABA, which is the
//                         paper's point about LL/SC being "an effective way
//                         of avoiding the ABA problem".
//
//   R — when a popped node may be reused (src/reclaim/): TaggedReclaimer
//       (immediate FIFO reuse — the default, pairing with a protected
//       head), LeakyReclaimer (never reuse), HazardPointerReclaimer or
//       EpochBasedReclaimer (deferred reuse, which makes even RawCasHead
//       safe — reclamation as the ABA answer). docs/RECLAMATION.md maps the
//       combinations.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/platform.h"
#include "reclaim/reclaimer.h"
#include "reclaim/tagged.h"
#include "structures/contention.h"
#include "util/assert.h"
#include "util/packed_word.h"

namespace aba::structures {

// Node indices are stored +1 so that 0 encodes "null".
constexpr std::uint64_t kNullIndex = 0;

// ------------------------------------------------------------- head policies

template <Platform P>
class RawCasHead {
 public:
  RawCasHead(typename P::Env& env, int /*n*/)
      : head_(env, "head", kNullIndex, sim::BoundSpec::unbounded()) {}

  // Returns the raw head word; `index_of` decodes it.
  std::uint64_t load(int /*pid*/) { return head_.read(); }
  static std::uint64_t index_of(std::uint64_t word) { return word; }

  bool try_swing(int /*pid*/, std::uint64_t observed, std::uint64_t new_index) {
    return head_.cas(observed, new_index);
  }

 private:
  typename P::WritableCas head_;
};

template <Platform P>
class TaggedCasHead {
 public:
  TaggedCasHead(typename P::Env& env, int /*n*/, unsigned index_bits = 16,
                unsigned tag_bits = 16)
      : index_bits_(index_bits),
        tag_bits_(tag_bits),
        head_(env, "head", kNullIndex, sim::BoundSpec::unbounded()) {
    ABA_CHECK(index_bits + tag_bits <= 64);
  }

  std::uint64_t load(int /*pid*/) { return head_.read(); }
  std::uint64_t index_of(std::uint64_t word) const {
    return word & ((1ULL << index_bits_) - 1);
  }

  bool try_swing(int /*pid*/, std::uint64_t observed, std::uint64_t new_index) {
    const std::uint64_t tag = (observed >> index_bits_) & tag_mask();
    const std::uint64_t next_tag = (tag + 1) & tag_mask();
    return head_.cas(observed, (next_tag << index_bits_) | new_index);
  }

 private:
  std::uint64_t tag_mask() const { return (1ULL << tag_bits_) - 1; }

  unsigned index_bits_;
  unsigned tag_bits_;
  typename P::WritableCas head_;
};

// L is any LL/SC implementation in this repository (ll/sc per pid).
template <class L>
class LlscHead {
 public:
  explicit LlscHead(L& llsc) : llsc_(&llsc) {}

  std::uint64_t load(int pid) { return llsc_->ll(pid); }
  static std::uint64_t index_of(std::uint64_t word) { return word; }

  bool try_swing(int pid, std::uint64_t /*observed*/, std::uint64_t new_index) {
    return llsc_->sc(pid, new_index);
  }

 private:
  L* llsc_;
};

// ------------------------------------------------------------------- stack

template <Platform P, class Head, class R = reclaim::TaggedReclaimer<P>>
class TreiberStack {
  static_assert(reclaim::ReclaimerFor<R, P>,
                "R must satisfy the Reclaimer concept for platform P");

 public:
  // `initial_free[p]` = node indices initially owned by process p's free
  // list (indices into the pool, 0-based). The pool size is their total;
  // the reclaimer takes ownership of the index lifecycle. The head policy
  // is heap-owned because native platform objects wrap std::atomic and are
  // not movable.
  TreiberStack(typename P::Env& env, int n, std::unique_ptr<Head> head,
               std::vector<std::deque<std::uint64_t>> initial_free)
      : head_(std::move(head)), reclaimer_(env, n, std::move(initial_free)) {
    nodes_.reserve(reclaimer_.pool_size());
    for (std::size_t i = 0; i < reclaimer_.pool_size(); ++i) {
      nodes_.push_back(std::make_unique<Node>(env, i));
    }
  }

  // Convenience: distribute `per_process` nodes to each process round-robin.
  static std::vector<std::deque<std::uint64_t>> partition(int n, int per_process) {
    std::vector<std::deque<std::uint64_t>> free(n);
    std::uint64_t next = 0;
    for (int p = 0; p < n; ++p) {
      for (int i = 0; i < per_process; ++i) free[p].push_back(next++);
    }
    return free;
  }

  // Pushes `value`; returns false if the reclaimer cannot produce a safe
  // node (pool pressure). Allocation happens outside the protected region
  // (the epoch reclaimer's contract).
  bool push(int p, std::uint64_t value) {
    const std::optional<std::uint64_t> index = reclaimer_.allocate(p);
    if (!index) return false;
    Node& node = *nodes_[*index];
    node.value.write(value);
    PlatformBackoffT<P> backoff;
    for (;;) {
      const std::uint64_t observed = head_->load(p);
      node.next.write(head_->index_of(observed));
      if (head_->try_swing(p, observed, *index + 1)) {
        // The node is reachable: tell crash-robust reclaimers its
        // allocation is no longer in flight (thread-private, no shared
        // step — schedules are unchanged).
        if constexpr (requires { reclaimer_.commit(p); }) reclaimer_.commit(p);
        return true;
      }
      if (probe_ != nullptr) probe_->record_failure();
      backoff();
    }
  }

  std::optional<std::uint64_t> pop(int p) {
    reclaimer_.begin_op(p);
    PlatformBackoffT<P> backoff;
    for (;;) {
      const std::uint64_t observed = head_->load(p);
      const std::uint64_t head_index = head_->index_of(observed);
      if (head_index == kNullIndex) {
        reclaimer_.end_op(p);
        return std::nullopt;
      }
      if constexpr (R::kNeedsGuard) {
        reclaimer_.guard(p, 0, head_index - 1);
        // Publish-then-revalidate: if the head moved before the guard was
        // visible, the node may already be retired (and the guard too late).
        if (head_->load(p) != observed) {
          backoff();
          continue;
        }
      }
      Node& node = *nodes_[head_index - 1];
      const std::uint64_t next = node.next.read();  // Guarded (or tag-checked).
      if (head_->try_swing(p, observed, next)) {
        const std::uint64_t value = node.value.read();
        reclaimer_.end_op(p);
        reclaimer_.retire(p, head_index - 1);
        return value;
      }
      if (probe_ != nullptr) probe_->record_failure();
      backoff();
    }
  }

  // Uniform structure verbs (structures/concepts.h): an UnboundedContainer
  // whose try_push refusal means pool pressure, never "full".
  bool try_push(int p, std::uint64_t value) { return push(p, value); }
  std::optional<std::uint64_t> try_pop(int p) { return pop(p); }

  // Releases any guards process p's reclaimer keeps published between
  // operations (the cached-guard hazard mode); no-op for the others. Call
  // when p stops operating on this structure.
  void detach(int p) {
    if constexpr (requires { reclaimer_.detach(p); }) reclaimer_.detach(p);
  }

  // Attaches the CAS-failure telemetry the adaptive sharding facade reads
  // (structures/contention.h). Set before concurrent use; null disables.
  void set_contention_probe(ContentionProbe* probe) { probe_ = probe; }

  std::size_t pool_size() const { return nodes_.size(); }
  R& reclaimer() { return reclaimer_; }
  const R& reclaimer() const { return reclaimer_; }

 private:
  struct Node {
    Node(typename P::Env& env, std::size_t /*i*/)
        : value(env, "node.value", 0, sim::BoundSpec::unbounded()),
          next(env, "node.next", kNullIndex, sim::BoundSpec::unbounded()) {}
    typename P::Register value;
    typename P::Register next;
  };

  std::unique_ptr<Head> head_;
  std::vector<std::unique_ptr<Node>> nodes_;
  R reclaimer_;
  ContentionProbe* probe_ = nullptr;
};

}  // namespace aba::structures
