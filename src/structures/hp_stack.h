// HpTreiberStack — a pointer-based Treiber stack protected by hazard
// pointers (reclaim/hazard_domain.h): pop pins the head node before reading
// head->next, so a concurrent pop/push cycle can neither free the node
// under us nor recycle it into an ABA.
//
// Native-only and heap-allocating — the realistic deployment shape the E8
// comparison benches measure. The simulator-checked, index-based stack with
// a pluggable reclamation policy is TreiberStack<P, Head, R>
// (treiber_stack.h), whose hazard flavor is TreiberStack with
// HazardPointerReclaimer.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "reclaim/hazard_domain.h"
#include "util/backoff.h"

namespace aba::structures {

template <class T>
class HpTreiberStack {
 public:
  explicit HpTreiberStack(int max_threads)
      : domain_(max_threads, /*slots_per_thread=*/1) {}

  ~HpTreiberStack() {
    Node* node = head_.load();
    while (node != nullptr) {
      Node* next = node->next;
      delete node;
      node = next;
    }
  }

  void push(int /*tid*/, T value) {
    Node* node = new Node{std::move(value), head_.load()};
    allocated_.fetch_add(1);
    util::ExpBackoff backoff;
    while (!head_.compare_exchange_weak(node->next, node)) {
      backoff();
    }
  }

  bool pop(int tid, T& out) {
    util::ExpBackoff backoff;
    for (;;) {
      Node* node = domain_.protect(tid, 0, head_);
      if (node == nullptr) {
        domain_.clear(tid, 0);
        return false;
      }
      Node* next = node->next;  // Safe: node is pinned.
      if (head_.compare_exchange_strong(node, next)) {
        out = std::move(node->value);
        domain_.clear(tid, 0);
        domain_.retire(tid, node, [this](void* p) {
          delete static_cast<Node*>(p);
          freed_.fetch_add(1);
        });
        return true;
      }
      domain_.clear(tid, 0);
      backoff();
    }
  }

  std::uint64_t allocated() const { return allocated_.load(); }
  std::uint64_t freed() const { return freed_.load(); }
  reclaim::HazardDomain& domain() { return domain_; }

 private:
  struct Node {
    T value;
    Node* next;
  };

  std::atomic<Node*> head_{nullptr};
  std::atomic<std::uint64_t> allocated_{0};
  std::atomic<std::uint64_t> freed_{0};
  // Declared last: the domain's destructor runs retire-list deleters that
  // touch the counters above, so it must be destroyed first.
  reclaim::HazardDomain domain_;
};

}  // namespace aba::structures
