// Sharded structures — scaling past single-word contention.
//
// Everything else in this repository funnels all n processes through one
// protected head word (tagged CAS, LL/SC, or a raw CAS under deferred
// reclamation); the paper's per-word time/space bounds are exactly the cost
// of protecting that word, and on hardware its cache line is a serialization
// point that flattens E9 throughput as soon as contention saturates it.
// These wrappers split one logical structure into kShards complete
// sub-structures — each shard a full TreiberStack / MsQueue with its own
// head word and its own Reclaimer instance — and route operations:
//
//   * push/enqueue go to the process's home shard (util/shard.h: dense-pid
//     mod, balanced and one integer op). Under pool pressure (the home
//     shard's reclaimer cannot produce a safe node) the operation falls
//     through the probe sequence and lands on the first shard that can —
//     capacity is elastic across shards even though index pools are not.
//   * pop/dequeue try the home shard first; on empty they steal: one
//     bounded cyclic scan of the other shards (util/shard.h probe order),
//     returning the first success. Only after every shard has reported
//     empty does the operation report empty.
//
// Semantics: each shard is linearizable as a stack/queue on its own (its
// operations are ordinary TreiberStack/MsQueue operations and sharding
// adds no shared state whatsoever — routing is arithmetic on thread-private
// values). The composite is a relaxed pool: a linearizable multiset whose
// pops return *some* pushed element (per-shard LIFO/FIFO order, no global
// order), and whose "empty" answer is a per-scan observation — each shard
// was individually observed empty at some instant inside the operation's
// window, but the composite may never have been empty at a single instant.
// tests/test_sharded.cpp checks exactly this contract: per-shard
// sub-histories linearize against the exact specs, the composite conserves
// the value multiset, and a deterministic schedule pins the steal race.
//
// The Reclaimer axis carries over unchanged and needs no cross-shard
// coordination: reclaimers manage *indices into their own shard's pool*,
// a popped node is retired to the reclaimer of the shard it was popped
// from, and no index ever crosses a shard boundary — so each shard's
// safety argument (tag width, hazard scan, epoch grace) is exactly the
// unsharded one with the same n processes.
//
// kShards is a compile-time parameter: the probe loops unroll, and under
// the native Fast policy each shard's head word is already alone on its
// cache line (native_platform.h WordStorage), so shards never false-share.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/platform.h"
#include "reclaim/reclaimer.h"
#include "reclaim/tagged.h"
#include "structures/ms_queue.h"
#include "structures/treiber_stack.h"
#include "util/assert.h"
#include "util/cacheline.h"
#include "util/shard.h"

namespace aba::structures {

namespace detail {

// The shard an operation last landed on, per process. Thread-private (one
// plain store per operation, no shared steps — the sim step counts and the
// Fast≡Counted traces are unaffected), padded (util::Padded) so neighbours
// never false-share. The sharded test adapters read this to attribute each
// history op to its shard.
using LastShard = util::Padded<int>;

// The routing core both sharded wrappers share: owns the shard array and
// the per-process last-shard tags, and implements the one probe/steal
// contract the tests pin — home shard first, then the cyclic scan, failed
// or empty operations charged to the home shard. The derived wrapper
// constructs the shards (heads vs queue options differ) and names the
// verbs (push/pop vs enqueue/dequeue).
template <class Shard, int kShards>
class ShardRouter {
 public:
  static constexpr int kShardCount = kShards;

  // The shard p's last completed operation landed on (its home shard for a
  // failed put or an empty take). Thread-private; meaningful only to the
  // calling process between its own operations.
  int last_shard(int p) const {
    return last_[static_cast<std::size_t>(p)].value;
  }

  static constexpr int home_shard_of(int p) {
    return util::home_shard(p, kShards);
  }

  Shard& shard(int s) { return *shards_[s]; }
  const Shard& shard(int s) const { return *shards_[s]; }

  std::size_t pool_size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->pool_size();
    return total;
  }

  // Aggregate deferred-garbage introspection (sum over shards).
  std::size_t unreclaimed(int p) const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->reclaimer().unreclaimed(p);
    return total;
  }

  // Composite observability for the schedule-search engine: stats sum over
  // shards, and a process's phase is the most vulnerable one any shard's
  // reclaimer reports for it (a parked guard pins its node no matter which
  // shard the rest of p's operation moved on to).
  reclaim::ReclaimStats reclaim_stats() const {
    reclaim::ReclaimStats total;
    for (const auto& s : shards_) total += s->reclaimer().stats();
    return total;
  }
  reclaim::ReclaimPhase reclaim_phase(int p) const {
    reclaim::ReclaimPhase worst = reclaim::ReclaimPhase::kIdle;
    for (const auto& s : shards_) {
      const reclaim::ReclaimPhase phase = s->reclaimer().phase(p);
      if (reclaim::is_vulnerable(phase)) return phase;
      if (phase != reclaim::ReclaimPhase::kIdle) worst = phase;
    }
    return worst;
  }
  // Per-shard fingerprints plus the routing tags: the last-shard values
  // steer the next operation's probe order, so two configurations that
  // differ only there have different futures.
  std::uint64_t reclaim_fingerprint() const {
    reclaim::Fingerprint fp;
    for (const auto& s : shards_) {
      if constexpr (requires { s->reclaimer().fingerprint(); }) {
        fp.mix(s->reclaimer().fingerprint());
      }
    }
    for (const auto& tag : last_) {
      fp.mix(static_cast<std::uint64_t>(tag.value));
    }
    return fp.value();
  }

  // Releases p's cached reclaimer guards on every shard (see
  // TreiberStack::detach); no-op for guard-free policies.
  void detach(int p) {
    for (auto& s : shards_) s->detach(p);
  }

 protected:
  explicit ShardRouter(int n) : last_(static_cast<std::size_t>(n)) {
    ABA_CHECK(n >= 1);
    for (auto& l : last_) l.value = -1;  // "No operation yet."
  }

  // Home shard first; under pool pressure, fall through the probe sequence
  // to the first shard whose reclaimer can produce a node.
  template <class Put>  // Put: (Shard&, p) -> bool
  bool routed_put(int p, Put put) {
    const int home = util::home_shard(p, kShards);
    for (int attempt = 0; attempt < kShards; ++attempt) {
      const int s = util::probe_shard(home, attempt, kShards);
      if (put(*shards_[s], p)) {
        last_[static_cast<std::size_t>(p)].value = s;
        return true;
      }
    }
    last_[static_cast<std::size_t>(p)].value = home;
    return false;
  }

  // Home shard first; on empty, one bounded steal scan over the others.
  // An empty result is charged to the home shard (the per-shard claim the
  // relaxed semantics make; see header comment).
  template <class Take>  // Take: (Shard&, p) -> std::optional<uint64_t>
  std::optional<std::uint64_t> routed_take(int p, Take take) {
    const int home = util::home_shard(p, kShards);
    for (int attempt = 0; attempt < kShards; ++attempt) {
      const int s = util::probe_shard(home, attempt, kShards);
      const std::optional<std::uint64_t> value = take(*shards_[s], p);
      if (value.has_value()) {
        last_[static_cast<std::size_t>(p)].value = s;
        return value;
      }
    }
    last_[static_cast<std::size_t>(p)].value = home;
    return std::nullopt;
  }

  std::array<std::unique_ptr<Shard>, kShards> shards_;

 private:
  std::vector<LastShard> last_;
};

}  // namespace detail

// ------------------------------------------------------------------- stack

template <Platform P, class Head, class R = reclaim::TaggedReclaimer<P>,
          int kShards = 4>
class ShardedTreiberStack
    : public detail::ShardRouter<TreiberStack<P, Head, R>, kShards> {
  static_assert(kShards >= 1, "need at least one shard");
  static_assert(reclaim::ReclaimerFor<R, P>,
                "R must satisfy the Reclaimer concept for platform P");
  using Router = detail::ShardRouter<TreiberStack<P, Head, R>, kShards>;

 public:
  using Shard = TreiberStack<P, Head, R>;

  // heads[s] becomes shard s's protected CAS site; every shard gets its own
  // pool of `per_process_per_shard` nodes per process (disjoint per-shard
  // index spaces — see the header comment on why reclaimers then compose
  // with no cross-shard coordination).
  ShardedTreiberStack(typename P::Env& env, int n,
                      std::array<std::unique_ptr<Head>, kShards> heads,
                      int per_process_per_shard)
      : Router(n) {
    ABA_CHECK(per_process_per_shard >= 1);
    for (int s = 0; s < kShards; ++s) {
      this->shards_[s] = std::make_unique<Shard>(
          env, n, std::move(heads[static_cast<std::size_t>(s)]),
          Shard::partition(n, per_process_per_shard));
    }
  }

  // Convenience for heads constructible from (Env&, n) — RawCasHead,
  // TaggedCasHead. LL/SC heads wrap an external object; build those arrays
  // by hand.
  static std::array<std::unique_ptr<Head>, kShards> make_heads(
      typename P::Env& env, int n) {
    std::array<std::unique_ptr<Head>, kShards> heads;
    for (auto& head : heads) head = std::make_unique<Head>(env, n);
    return heads;
  }

  bool push(int p, std::uint64_t value) {
    return this->routed_put(
        p, [value](Shard& shard, int pid) { return shard.push(pid, value); });
  }

  std::optional<std::uint64_t> pop(int p) {
    return this->routed_take(
        p, [](Shard& shard, int pid) { return shard.pop(pid); });
  }

  // Uniform structure verbs (structures/concepts.h).
  bool try_push(int p, std::uint64_t value) { return push(p, value); }
  std::optional<std::uint64_t> try_pop(int p) { return pop(p); }
};

// ------------------------------------------------------------------- queue

template <Platform P, class R = reclaim::TaggedReclaimer<P>, int kShards = 4>
class ShardedMsQueue : public detail::ShardRouter<MsQueue<P, R>, kShards> {
  static_assert(kShards >= 1, "need at least one shard");
  static_assert(reclaim::ReclaimerFor<R, P>,
                "R must satisfy the Reclaimer concept for platform P");
  using Router = detail::ShardRouter<MsQueue<P, R>, kShards>;

 public:
  using Shard = MsQueue<P, R>;
  using Options = typename Shard::Options;

  ShardedMsQueue(typename P::Env& env, int n, int nodes_per_process_per_shard,
                 Options options = {})
      : Router(n) {
    ABA_CHECK(nodes_per_process_per_shard >= 1);
    for (int s = 0; s < kShards; ++s) {
      this->shards_[s] =
          std::make_unique<Shard>(env, n, nodes_per_process_per_shard, options);
    }
  }

  bool enqueue(int p, std::uint64_t value) {
    return this->routed_put(p, [value](Shard& shard, int pid) {
      return shard.enqueue(pid, value);
    });
  }

  std::optional<std::uint64_t> dequeue(int p) {
    return this->routed_take(
        p, [](Shard& shard, int pid) { return shard.dequeue(pid); });
  }

  // Uniform structure verbs (structures/concepts.h).
  bool try_push(int p, std::uint64_t value) { return enqueue(p, value); }
  std::optional<std::uint64_t> try_pop(int p) { return dequeue(p); }
};

}  // namespace aba::structures
