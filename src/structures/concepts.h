// The uniform structure API: one concept pair, one verb vocabulary.
//
// Every application structure in this repository — stacks, queues, sharded
// and adaptive facades, and the ring-buffer family — speaks the same two
// verbs:
//
//   bool try_push(int p, std::uint64_t v)         — may refuse (full / pool
//                                                    pressure);
//   std::optional<std::uint64_t> try_pop(int p)   — nullopt when empty.
//
// Progress caveat: the `try_` prefix promises refusal SEMANTICS (the verb
// returns rather than waiting for capacity/elements), NOT wait-freedom. On
// the bounded rings an operation may spin waiting out an in-flight peer —
// a producer parked between reserving a position and publishing its slot
// sequence stalls consumers at that position (and symmetrically a claimed-
// but-unbumped pop stalls a wrapping producer) — so MpscRing/MpmcRing
// try_* are not lock-free. The simulator bounds these spins with
// max_grants_per_execution; on native platforms a descheduled peer can
// stall the operation for its whole quantum. Callers that need bounded
// completion must use SpscRing (wait-free: reads and writes only) or
// schedule around the stall.
//
// What distinguishes the families is *why* try_push may refuse:
//
//   UnboundedContainer — refusal is an implementation artifact (a reclaimer
//       that cannot produce a safe node under pool pressure). The abstract
//       object has no capacity; the specs treat a refused put as a legal
//       no-op at any state. TreiberStack, MsQueue and the sharded/adaptive
//       facades are these.
//
//   BoundedContainer — capacity is part of the abstract object: the
//       structure additionally exposes capacity() (the exact bound) and
//       approx_size() (a racy occupancy estimate), and a refused put is
//       legal ONLY when the structure is full (spec::BoundedQueueSpec pins
//       exactly that). The ring buffers are these.
//
// The harness adapters (harness/adapters.h) are written once against
// `Container` — a single invoker template drives every structure — and the
// bounded refinement is what routes ring histories to the capacity-aware
// spec.
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>

namespace aba::structures {

template <class C>
concept Container = requires(C c, int p, std::uint64_t v) {
  { c.try_push(p, v) } -> std::same_as<bool>;
  { c.try_pop(p) } -> std::same_as<std::optional<std::uint64_t>>;
};

// Bounded refinement: the capacity is abstract state, not an artifact.
// approx_size() is allowed to take shared-memory steps (it reads the
// position words), so it is non-const like the verbs themselves.
template <class C>
concept BoundedContainer = Container<C> && requires(const C& c, C& m) {
  { c.capacity() } -> std::convertible_to<std::size_t>;
  { m.approx_size() } -> std::convertible_to<std::size_t>;
};

template <class C>
concept UnboundedContainer = Container<C> && !BoundedContainer<C>;

// Batched refinement of the bounded family: push_n/pop_n move up to n
// elements under ONE position update (SPSC: one tail/head write publishes
// or frees the whole batch; MPSC/MPMC: one CAS reserves all n positions),
// amortizing the per-element position traffic — and, on the MPSC/MPMC
// rings, the per-element RMW — toward zero. Both return how many elements
// actually moved.
//
// Semantics are deliberately WEAKER than the single-op verbs' strict
// refusal contract: a batch may move fewer than n (partial capacity /
// partial occupancy is not a refusal, it is the answer), and pop_n on the
// MPSC ring drains only the contiguous *published* prefix — a reserved-
// but-unpublished slot ends the batch rather than being waited out. Code
// that needs the spec-pinned refusal semantics uses try_push/try_pop;
// batch callers (the deferred-epoch retire pipeline's ring hand-off, bulk
// producers) trade that strictness for the amortization.
template <class C>
concept BatchedBoundedContainer =
    BoundedContainer<C> &&
    requires(C m, int p, const typename C::value_type* in,
             typename C::value_type* out, std::size_t n) {
      { m.push_n(p, in, n) } -> std::convertible_to<std::size_t>;
      { m.pop_n(p, out, n) } -> std::convertible_to<std::size_t>;
    };

}  // namespace aba::structures
