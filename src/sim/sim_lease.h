// SimLeaseHost — the pid-lease death protocol hosted on SimWorld objects,
// so the DPOR model checker can search the crash-robust shm tier.
//
// Granularity: the packed state+generation word — the word every
// suspect/confirm/veto/acquire transition CASes — is a real simulated
// WritableCAS object, so each death-handshake transition is an announced,
// schedulable, reorderable step with full DPOR independence analysis. The
// evidence words (pid, heartbeat, suspect_hb) and all reclaimer book words
// stay plain process atomics: they execute inside grants (coarser than real
// hardware — the searched interleavings are a subset of native ones, which
// is sound for convicting mutants) and every one of them is folded into the
// reclaimer fingerprint the search engine mixes into its state key, so two
// configurations never merge unless their reclamation futures agree.
//
// Park points become one announced Write of the point id to a per-slot
// park register: the process is then *poised* at a step while holding
// whatever it just published (a guard, an announcement, an in-retire or
// in-flight marker), which is exactly where the engine's crash grants
// (`!p`) land. Liveness is the simulator's notion: a process is gone iff
// the engine crashed it — so suspicion is reached through the reclaimers'
// heartbeat-staleness edge, confirmed only once the victim is genuinely
// crashed (or immediately, under the kStaleConfirm lease mutant).
//
// Every slot is preseeded (kLive, generation 1, heartbeat 1) at
// construction time via object initial values: announced traffic from the
// engine thread would deadlock the announce-then-block protocol, so
// acquire() is never exercised here.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "reclaim/mutant.h"
#include "reclaim/reclaimer.h"
#include "shm/lease_hosts.h"
#include "shm/leased_reclaimer.h"
#include "shm/pid_lease.h"
#include "sim/sim_world.h"
#include "sim/types.h"

namespace aba::sim {

class SimLeaseHost {
 public:
  SimLeaseHost(SimWorld& world, int max_procs)
      : world_(&world),
        n_(max_procs),
        pid_(new std::atomic<std::int64_t>[static_cast<std::size_t>(
            max_procs)]()),
        hb_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(
            max_procs)]()),
        shb_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(
            max_procs)]()) {
    state_.reserve(static_cast<std::size_t>(max_procs));
    park_.reserve(static_cast<std::size_t>(max_procs));
    for (int s = 0; s < max_procs; ++s) {
      state_.push_back(world.create_object(
          ObjectKind::kWritableCas, "lease.state." + std::to_string(s),
          shm::LeaseRecord::pack(shm::kLeaseLive, 1), BoundSpec::unbounded()));
      park_.push_back(world.create_object(ObjectKind::kRegister,
                                          "lease.park." + std::to_string(s),
                                          shm::kParkNone,
                                          BoundSpec::unbounded()));
      pid_[s].store(s + 1, std::memory_order_relaxed);
      hb_[s].store(1, std::memory_order_relaxed);
    }
  }

  // Announced (process-thread only): the searched transitions.
  std::uint64_t state(int slot) const {
    return world_->access(PendingOp{state_[slot], OpKind::kRead, 0, 0}).value;
  }
  bool cas_state(int slot, std::uint64_t expected,
                 std::uint64_t desired) const {
    return world_
        ->access(PendingOp{state_[slot], OpKind::kCas, expected, desired})
        .cas_success;
  }
  void set_state(int slot, std::uint64_t v) const {
    world_->access(PendingOp{state_[slot], OpKind::kWrite, v, 0});
  }

  // Plain evidence words: grant-atomic, fingerprinted.
  std::int64_t pid(int slot) const {
    return pid_[slot].load(std::memory_order_seq_cst);
  }
  void set_pid(int slot, std::int64_t v) const {
    pid_[slot].store(v, std::memory_order_seq_cst);
  }
  std::uint64_t heartbeat(int slot) const {
    return hb_[slot].load(std::memory_order_seq_cst);
  }
  void set_heartbeat(int slot, std::uint64_t v) const {
    hb_[slot].store(v, std::memory_order_seq_cst);
  }
  std::uint64_t suspect_hb(int slot) const {
    return shb_[slot].load(std::memory_order_seq_cst);
  }
  void set_suspect_hb(int slot, std::uint64_t v) const {
    shb_[slot].store(v, std::memory_order_seq_cst);
  }

  // "Gone" is the simulator's crash notion: only a process the engine
  // killed (or that self-fenced) is definitively dead.
  bool alive(std::int64_t pid) const {
    if (pid <= 0) return false;
    const int p = static_cast<int>(pid) - 1;
    if (p >= n_) return true;  // Not a seeded slot owner: nothing to confirm.
    return !world_->is_crashed(p);
  }

  std::int64_t self_pid() const { return n_ + ++acquired_; }
  bool preseeded() const { return true; }

  // One announced Write of the park point: the poised-at-a-vulnerable-
  // instant juncture the crash grants target.
  void park(int slot, std::uint64_t point) const {
    world_->access(PendingOp{park_[slot], OpKind::kWrite, point, 0});
  }

  // Engine-side: object_value peeks only, never announces.
  void fingerprint_into(reclaim::Fingerprint& fp) const {
    for (int s = 0; s < n_; ++s) {
      fp.mix(world_->object_value(state_[s]));
      fp.mix(static_cast<std::uint64_t>(pid(s)));
      fp.mix(heartbeat(s));
      fp.mix(suspect_hb(s));
    }
  }

 private:
  SimWorld* world_;
  int n_;
  std::vector<ObjectId> state_;
  std::vector<ObjectId> park_;
  std::unique_ptr<std::atomic<std::int64_t>[]> pid_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> hb_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> shb_;
  mutable std::int64_t acquired_ = 0;
};

using SimLeaseTable = shm::PidLeaseTableT<SimLeaseHost>;
using SimLeasedEnv = shm::HostedEnv<SimLeaseTable>;

// The sim-hosted leased reclaimers the fixture factory plugs into
// TreiberStack/MsQueue: standard (SimWorld&, n, FreeLists) constructor
// shape, with the two mutation seams as template parameters — TableMut
// feeds the lease table (kStaleConfirm lives there), ReclMut feeds the
// book/reclaimer (kNoQuarantine, kNoRestamp). All-kNone instantiations are
// the shipped behavior; anything else exists to be convicted.
template <bool kCached,
          reclaim::LeaseMutation TableMut = reclaim::LeaseMutation::kNone,
          reclaim::LeaseMutation ReclMut = reclaim::LeaseMutation::kNone>
class SimLeasedHazardReclaimerT final
    : public shm::LeasedFacade<
          shm::LeasedHazardReclaimerT<kCached, SimLeasedEnv>> {
  using Facade =
      shm::LeasedFacade<shm::LeasedHazardReclaimerT<kCached, SimLeasedEnv>>;

 public:
  SimLeasedHazardReclaimerT(SimWorld& world, int n, reclaim::FreeLists initial)
      : Facade(n, std::move(initial), SimLeaseHost(world, n), TableMut,
               ReclMut) {}
};

template <reclaim::LeaseMutation TableMut = reclaim::LeaseMutation::kNone,
          reclaim::LeaseMutation ReclMut = reclaim::LeaseMutation::kNone>
class SimLeasedEpochReclaimerT final
    : public shm::LeasedFacade<shm::LeasedEpochReclaimerT<SimLeasedEnv>> {
  using Facade = shm::LeasedFacade<shm::LeasedEpochReclaimerT<SimLeasedEnv>>;

 public:
  SimLeasedEpochReclaimerT(SimWorld& world, int n, reclaim::FreeLists initial)
      : Facade(n, std::move(initial), SimLeaseHost(world, n), TableMut,
               ReclMut) {}
};

using SimLeasedHazardReclaimer = SimLeasedHazardReclaimerT<false>;
using SimLeasedCachedHazardReclaimer = SimLeasedHazardReclaimerT<true>;
using SimLeasedEpochReclaimer = SimLeasedEpochReclaimerT<>;

// Every retire goes through the staged pending-window hand-off of
// retire_batch (chunk of one): the fixture that puts the stage → park →
// stamp window of PR 9's batched retire under every searched pop, so a
// crash grant can land between staging and chunk stamping and the search
// can verify the pending-window re-home path with spec verdicts on.
class SimLeasedEpochBatchedReclaimer final
    : public shm::LeasedFacade<shm::LeasedEpochReclaimerT<SimLeasedEnv>> {
  using Facade = shm::LeasedFacade<shm::LeasedEpochReclaimerT<SimLeasedEnv>>;

 public:
  SimLeasedEpochBatchedReclaimer(SimWorld& world, int n,
                                 reclaim::FreeLists initial)
      : Facade(n, std::move(initial), SimLeaseHost(world, n),
               reclaim::LeaseMutation::kNone, reclaim::LeaseMutation::kNone) {}

  void retire(int p, std::uint64_t idx) {
    std::uint64_t one = idx;
    this->retire_batch(p, &one, 1);
  }
};

}  // namespace aba::sim
