#include "sim/schedule_search.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "harness/adapters.h"
#include "reclaim/epoch.h"
#include "reclaim/hazard_pointer.h"
#include "reclaim/leaky.h"
#include "reclaim/mutant.h"
#include "reclaim/tagged.h"
#include "sim/sim_lease.h"
#include "sim/sim_platform.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"
#include "structures/ms_queue.h"
#include "structures/ring_buffer.h"
#include "structures/sharded.h"
#include "structures/treiber_stack.h"
#include "util/assert.h"

namespace aba::search {

namespace {

const char* method_name(spec::Method m) {
  switch (m) {
    case spec::Method::kPush: return "push";
    case spec::Method::kPop: return "pop";
    case spec::Method::kEnq: return "enq";
    case spec::Method::kDeq: return "deq";
    default: break;
  }
  ABA_CHECK_MSG(false, "schedule scripts carry stack/queue methods only");
  return "?";
}

std::optional<spec::Method> method_from(const std::string& name) {
  if (name == "push") return spec::Method::kPush;
  if (name == "pop") return spec::Method::kPop;
  if (name == "enq") return spec::Method::kEnq;
  if (name == "deq") return spec::Method::kDeq;
  return std::nullopt;
}

}  // namespace

// ----------------------------------------------------------------- script

std::string ScheduleScript::serialize() const {
  std::ostringstream out;
  out << "schedule-script v1\n";
  out << "processes " << num_processes << "\n";
  for (const auto& [key, value] : meta) {
    out << "meta " << key << " " << value << "\n";
  }
  for (const auto& op : workload) {
    out << "op " << op.pid << " " << method_name(op.method) << " " << op.arg
        << "\n";
  }
  for (std::size_t i = 0; i < grants.size(); ++i) {
    if (i % 24 == 0) out << (i == 0 ? "grants" : "\ngrants");
    if (is_crash_grant(grants[i])) {
      out << " !" << crash_victim(grants[i]);
    } else {
      out << ' ' << grants[i];
    }
  }
  if (!grants.empty()) out << "\n";
  out << "end\n";
  return out.str();
}

std::optional<ScheduleScript> ScheduleScript::parse(const std::string& text) {
  ScheduleScript script;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    // Strip comments and blank lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string word;
    if (!(tokens >> word)) continue;

    if (!saw_header) {
      std::string version;
      if (word != "schedule-script" || !(tokens >> version) || version != "v1") {
        return std::nullopt;
      }
      saw_header = true;
      continue;
    }
    if (word == "processes") {
      if (!(tokens >> script.num_processes) || script.num_processes < 1) {
        return std::nullopt;
      }
    } else if (word == "meta") {
      std::string key, value;
      if (!(tokens >> key)) return std::nullopt;
      std::getline(tokens, value);
      const std::size_t start = value.find_first_not_of(" \t");
      script.meta[key] =
          start == std::string::npos ? std::string() : value.substr(start);
    } else if (word == "op") {
      harness::WorkloadOp op;
      std::string method;
      if (!(tokens >> op.pid >> method >> op.arg)) return std::nullopt;
      const auto parsed = method_from(method);
      if (!parsed || op.pid < 0 || op.pid >= script.num_processes) {
        return std::nullopt;
      }
      op.method = *parsed;
      script.workload.push_back(op);
    } else if (word == "grants") {
      std::string token;
      while (tokens >> token) {
        bool crash = false;
        if (!token.empty() && token[0] == '!') {
          crash = true;
          token.erase(0, 1);
        }
        int pid = -1;
        try {
          std::size_t used = 0;
          pid = std::stoi(token, &used);
          if (used != token.size()) return std::nullopt;
        } catch (...) {
          return std::nullopt;
        }
        if (pid < 0 || pid >= script.num_processes) return std::nullopt;
        script.grants.push_back(crash ? crash_grant(pid) : pid);
      }
    } else if (word == "end") {
      saw_end = true;
      break;
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header || !saw_end) return std::nullopt;
  return script;
}

// ------------------------------------------------------------------ costs

double retired_unreclaimed_cost(const reclaim::ReclaimStats& s) {
  return static_cast<double>(s.retired_unreclaimed);
}

double pool_pressure_cost(const reclaim::ReclaimStats& s) {
  return static_cast<double>(s.pool_size) - static_cast<double>(s.free_nodes);
}

double guard_occupancy_cost(const reclaim::ReclaimStats& s) {
  return static_cast<double>(s.guard_slots_occupied);
}

double epoch_lag_cost(const reclaim::ReclaimStats& s) {
  return static_cast<double>(s.epoch_lag);
}

double epoch_lag_backlog_cost(const reclaim::ReclaimStats& s) {
  return static_cast<double>(s.epoch_lag) *
         static_cast<double>(s.retired_unreclaimed);
}

CostFn cost_by_name(const std::string& name) {
  if (name == "retired_unreclaimed") return retired_unreclaimed_cost;
  if (name == "pool_pressure") return pool_pressure_cost;
  if (name == "guard_occupancy") return guard_occupancy_cost;
  if (name == "epoch_lag") return epoch_lag_cost;
  if (name == "epoch_lag_backlog") return epoch_lag_backlog_cost;
  ABA_CHECK_MSG(false, "unknown schedule-search cost function name");
  return retired_unreclaimed_cost;
}

// --------------------------------------------------------------- verdicts

namespace {

// Multiset conservation: every taken value was put successfully at least as
// many times as it was taken. The invariant that survives crashes — with
// one credit per crashed victim's pending put, whose effect may have landed
// without the op completing (a push killed after the linking CAS leaves its
// value reachable; the quarantine rule keeps the node out of circulation,
// but a survivor popping it is a legitimate take).
SpecVerdict check_conservation(const std::vector<spec::Op>& ops,
                               spec::Method take,
                               const std::vector<spec::Op>& pending) {
  SpecVerdict verdict;
  verdict.checked = true;
  std::map<std::uint64_t, long> balance;
  for (const auto& op : ops) {
    if (op.method != take && op.ret == 1) ++balance[op.arg];
  }
  for (const auto& op : pending) {
    if (op.method == spec::Method::kPush || op.method == spec::Method::kEnq) {
      ++balance[op.arg];
    }
  }
  for (const auto& op : ops) {
    if (op.method == take && op.ret != 0) {
      const std::uint64_t value = op.ret - 1;  // pack_opt inverse.
      auto it = balance.find(value);
      if (it == balance.end() || it->second <= 0) {
        verdict.ok = false;
        std::ostringstream out;
        out << "conservation violated: value " << value
            << " taken by p" << op.pid << " was never put (or taken twice)";
        verdict.detail = out.str();
        return verdict;
      }
      --it->second;
    }
  }
  return verdict;
}

template <class Spec>
SpecVerdict check_linearizable_history(const std::vector<spec::Op>& ops) {
  SpecVerdict verdict;
  verdict.checked = true;
  const auto result = spec::check_linearizable<Spec>(ops, Spec::initial());
  if (!result.linearizable) {
    verdict.ok = false;
    verdict.detail = spec::explain(ops, result);
  }
  return verdict;
}

}  // namespace

SpecVerdict check_history(SpecKind kind, const std::vector<spec::Op>& ops,
                          const std::vector<int>& shard_tags, int num_shards,
                          bool has_crash, std::uint64_t ring_capacity,
                          const std::vector<spec::Op>& pending) {
  if (kind == SpecKind::kNone) return {};
  const spec::Method take =
      (kind == SpecKind::kQueue || kind == SpecKind::kRing)
          ? spec::Method::kDeq
          : spec::Method::kPop;
  // A crash truncates the victim's history: its pending op may have taken
  // effect without completing, so only conservation is checkable.
  if (has_crash) return check_conservation(ops, take, pending);
  switch (kind) {
    case SpecKind::kStack:
      return check_linearizable_history<spec::StackSpec>(ops);
    case SpecKind::kQueue:
      return check_linearizable_history<spec::QueueSpec>(ops);
    case SpecKind::kRing: {
      ABA_CHECK_MSG(ring_capacity >= 1,
                    "kRing verdict needs the fixture's ring_capacity");
      SpecVerdict verdict;
      verdict.checked = true;
      const auto result = spec::check_linearizable<spec::BoundedQueueSpec>(
          ops, spec::BoundedQueueSpec::initial(ring_capacity));
      if (!result.linearizable) {
        verdict.ok = false;
        verdict.detail = spec::explain(ops, result);
      }
      return verdict;
    }
    case SpecKind::kShardedStack: {
      ABA_CHECK_MSG(shard_tags.size() == ops.size(),
                    "sharded verdict needs one landing shard per history op");
      std::vector<std::vector<spec::Op>> by_shard(
          static_cast<std::size_t>(num_shards));
      for (std::size_t i = 0; i < ops.size(); ++i) {
        ABA_CHECK(shard_tags[i] >= 0 && shard_tags[i] < num_shards);
        by_shard[static_cast<std::size_t>(shard_tags[i])].push_back(ops[i]);
      }
      for (int shard = 0; shard < num_shards; ++shard) {
        SpecVerdict verdict = check_linearizable_history<spec::StackSpec>(
            by_shard[static_cast<std::size_t>(shard)]);
        if (!verdict.ok) {
          verdict.detail =
              "shard " + std::to_string(shard) + ": " + verdict.detail;
          return verdict;
        }
      }
      SpecVerdict verdict;
      verdict.checked = true;
      return verdict;
    }
    case SpecKind::kNone:
      break;
  }
  return {};
}

// --------------------------------------------------------------- fixtures

namespace {

using SimP = sim::SimPlatform;

// Death oracle over the simulator: a process is dead exactly when the
// engine crashed it. Installed unconditionally in every flat fixture —
// trace-neutral while nobody dies (see SearchFixture::oracle).
struct SimDeathOracle final : reclaim::DeathOracle {
  const sim::SimWorld* world;
  explicit SimDeathOracle(const sim::SimWorld* w) : world(w) {}
  bool is_dead(int pid) const override { return world->is_crashed(pid); }
};

SearchFixture fixture_shell(int n) {
  SearchFixture fx;
  fx.world = std::make_unique<sim::SimWorld>(n);
  // The search replays thousands of executions; tracing is re-enabled by
  // ScheduleExplorer::replay, which is when the trace matters.
  fx.world->set_trace_enabled(false);
  fx.history = std::make_unique<spec::History>();
  fx.oracle = std::make_unique<SimDeathOracle>(fx.world.get());
  return fx;
}

// Not every reclaimer has crash machinery (the tag-family ones are
// oracle-free by design); wire the oracle only where it exists.
template <class R>
void maybe_set_death_oracle(R& reclaimer, const reclaim::DeathOracle* oracle) {
  if constexpr (requires { reclaimer.set_death_oracle(oracle); }) {
    reclaimer.set_death_oracle(oracle);
  }
}

template <class R, class Head = structures::RawCasHead<SimP>>
SearchFixture make_stack_fixture(int n, int pool) {
  using Stack = structures::TreiberStack<SimP, Head, R>;
  SearchFixture fx = fixture_shell(n);
  auto stack = std::make_unique<Stack>(
      *fx.world, n, std::make_unique<Head>(*fx.world, n),
      Stack::partition(n, pool));
  maybe_set_death_oracle(stack->reclaimer(), fx.oracle.get());
  fx.invoker = std::make_unique<harness::StackInvoker<Stack>>(
      *fx.world, *fx.history, std::move(stack));
  fx.spec = SpecKind::kStack;
  return fx;
}

template <class R>
SearchFixture make_queue_fixture(int n, int pool) {
  using Queue = structures::MsQueue<SimP, R>;
  SearchFixture fx = fixture_shell(n);
  auto queue = std::make_unique<Queue>(*fx.world, n, pool);
  maybe_set_death_oracle(queue->reclaimer(), fx.oracle.get());
  fx.invoker = std::make_unique<harness::QueueInvoker<Queue>>(
      *fx.world, *fx.history, std::move(queue));
  fx.spec = SpecKind::kQueue;
  return fx;
}

// The MPMC ring under the model checker: no reclaimer (the per-slot
// sequence words ARE the ABA answer — there are no nodes to reclaim, so
// every cost function reads zero and the fixture is driven purely for its
// spec verdict). Capacity 2 (the minimum): the full and empty boundaries —
// where the strict-refusal contract bites — are a single op away from any
// state, so even small search budgets cross them constantly.
SearchFixture make_ring_fixture(int n) {
  using Ring = structures::MpmcRing<SimP>;
  constexpr std::size_t kCapacity = 2;
  SearchFixture fx = fixture_shell(n);
  fx.invoker = std::make_unique<harness::ContainerInvoker<Ring>>(
      *fx.world, *fx.history,
      std::make_unique<Ring>(*fx.world, n, kCapacity));
  fx.spec = SpecKind::kRing;
  fx.ring_capacity = kCapacity;
  return fx;
}

SearchFixture make_sharded_stack_fixture(int n, int pool) {
  using Stack =
      structures::ShardedTreiberStack<SimP, structures::RawCasHead<SimP>,
                                      reclaim::CachedHazardPointerReclaimer<SimP>,
                                      2>;
  SearchFixture fx = fixture_shell(n);
  auto invoker = std::make_unique<harness::ShardedStackInvoker<Stack>>(
      *fx.world, *fx.history,
      std::make_unique<Stack>(*fx.world, n, Stack::make_heads(*fx.world, n),
                              pool / 2));
  auto* tagging = invoker.get();
  fx.shard_tags = [tagging]() -> const std::vector<int>& {
    return tagging->shard_of();
  };
  fx.num_shards = 2;
  fx.invoker = std::move(invoker);
  fx.spec = SpecKind::kShardedStack;
  return fx;
}

}  // namespace

SearchFixtureFactory reclaim_fixture(const std::string& name,
                                     int pool_per_process) {
  using Hazard = reclaim::HazardPointerReclaimer<SimP>;
  using Cached = reclaim::CachedHazardPointerReclaimer<SimP>;
  using Epoch = reclaim::EpochBasedReclaimer<SimP>;
  using Deferred = reclaim::DeferredEpochReclaimer<SimP>;
  using Tagged = reclaim::TaggedReclaimer<SimP>;
  using Leaky = reclaim::LeakyReclaimer<SimP>;
  using Mutant = reclaim::MutantTaggedReclaimer<SimP>;
  using TaggedHead = structures::TaggedCasHead<SimP>;
  const int pool = pool_per_process;
  ABA_CHECK(pool >= 1);
  if (name == "stack_hazard") {
    return [pool](int n) { return make_stack_fixture<Hazard>(n, pool); };
  }
  if (name == "stack_hazard_cached") {
    return [pool](int n) { return make_stack_fixture<Cached>(n, pool); };
  }
  if (name == "stack_epoch") {
    return [pool](int n) { return make_stack_fixture<Epoch>(n, pool); };
  }
  if (name == "stack_epoch_deferred") {
    // Deferred-announce variant: the announcement is cached across ops and
    // only refreshed on an epoch miss, so most begin_ops take one shared
    // read and zero stores. The searcher probes the announce-validate
    // window that the caching widens.
    return [pool](int n) { return make_stack_fixture<Deferred>(n, pool); };
  }
  if (name == "stack_tagged") {
    // The shipped immediate-reuse configuration: the TaggedCasHead's
    // per-swing version bump is what detects recycled indices.
    return [pool](int n) {
      return make_stack_fixture<Tagged, TaggedHead>(n, pool);
    };
  }
  if (name == "stack_leaky") {
    return [pool](int n) { return make_stack_fixture<Leaky>(n, pool); };
  }
  if (name == "stack_mutant_tagged") {
    // The seeded bug: immediate reuse on a raw head — no version bump
    // anywhere. The spec-driven search must convict this one.
    return [pool](int n) { return make_stack_fixture<Mutant>(n, pool); };
  }
  if (name == "queue_hazard") {
    return [pool](int n) { return make_queue_fixture<Hazard>(n, pool); };
  }
  if (name == "queue_hazard_cached") {
    return [pool](int n) { return make_queue_fixture<Cached>(n, pool); };
  }
  if (name == "queue_epoch") {
    return [pool](int n) { return make_queue_fixture<Epoch>(n, pool); };
  }
  if (name == "queue_epoch_deferred") {
    return [pool](int n) { return make_queue_fixture<Deferred>(n, pool); };
  }
  if (name == "sharded_stack_hazard_cached") {
    return [pool](int n) { return make_sharded_stack_fixture(n, pool); };
  }
  // ---- The crash-robust shm tier, sim-hosted (sim/sim_lease.h): real
  // PidLeaseTable protocol + LeasedHazard/LeasedEpoch reclaimers over a
  // simulated shared-segment arena. Crash grants (`!p`) drive the actual
  // suspect -> confirm -> seize/veto/quarantine machinery under the search.
  if (name == "stack_leased_hazard") {
    return [pool](int n) {
      return make_stack_fixture<sim::SimLeasedHazardReclaimer>(n, pool);
    };
  }
  if (name == "stack_leased_hazard_cached") {
    return [pool](int n) {
      return make_stack_fixture<sim::SimLeasedCachedHazardReclaimer>(n, pool);
    };
  }
  if (name == "stack_leased_epoch") {
    return [pool](int n) {
      return make_stack_fixture<sim::SimLeasedEpochReclaimer>(n, pool);
    };
  }
  if (name == "stack_leased_epoch_batched") {
    // Every retire routed through the retire_batch pending window (chunk of
    // one): the searched mid-batch crash juncture of PR 9's staged hand-off.
    return [pool](int n) {
      return make_stack_fixture<sim::SimLeasedEpochBatchedReclaimer>(n, pool);
    };
  }
  if (name == "queue_leased_hazard") {
    return [pool](int n) {
      return make_queue_fixture<sim::SimLeasedHazardReclaimer>(n, pool);
    };
  }
  if (name == "queue_leased_hazard_cached") {
    return [pool](int n) {
      return make_queue_fixture<sim::SimLeasedCachedHazardReclaimer>(n, pool);
    };
  }
  if (name == "queue_leased_epoch") {
    return [pool](int n) {
      return make_queue_fixture<sim::SimLeasedEpochReclaimer>(n, pool);
    };
  }
  // ---- The lease-mutant zoo (reclaim/mutant.h, LeaseMutation): each drops
  // exactly one safety decision of the death handshake. The bounded search
  // must convict all three; the all-kNone fixtures above must survive the
  // identical budget.
  if (name == "stack_leased_mutant_stale_confirm") {
    return [pool](int n) {
      return make_stack_fixture<sim::SimLeasedHazardReclaimerT<
          false, reclaim::LeaseMutation::kStaleConfirm>>(n, pool);
    };
  }
  if (name == "stack_leased_mutant_no_quarantine") {
    return [pool](int n) {
      return make_stack_fixture<sim::SimLeasedHazardReclaimerT<
          false, reclaim::LeaseMutation::kNone,
          reclaim::LeaseMutation::kNoQuarantine>>(n, pool);
    };
  }
  if (name == "stack_leased_mutant_no_restamp") {
    return [pool](int n) {
      return make_stack_fixture<sim::SimLeasedEpochReclaimerT<
          reclaim::LeaseMutation::kNone, reclaim::LeaseMutation::kNoRestamp>>(
          n, pool);
    };
  }
  if (name == "ring_mpmc") {
    // Reclaimer-free: pool_per_process does not apply.
    return [](int n) { return make_ring_fixture(n); };
  }
  ABA_CHECK_MSG(false, "unknown schedule-search fixture name");
  return nullptr;
}

std::vector<std::string> reclaim_fixture_names() {
  return {"stack_hazard",  "stack_hazard_cached",         "stack_epoch",
          "stack_epoch_deferred",                         "stack_tagged",
          "stack_leaky",   "stack_mutant_tagged",         "queue_hazard",
          "queue_hazard_cached",                          "queue_epoch",
          "queue_epoch_deferred",
          "sharded_stack_hazard_cached",                  "ring_mpmc",
          "stack_leased_hazard",                          "stack_leased_hazard_cached",
          "stack_leased_epoch",                           "stack_leased_epoch_batched",
          "queue_leased_hazard",                          "queue_leased_hazard_cached",
          "queue_leased_epoch",
          "stack_leased_mutant_stale_confirm",
          "stack_leased_mutant_no_quarantine",
          "stack_leased_mutant_no_restamp"};
}

std::vector<harness::WorkloadOp> storm_workload(const std::string& fixture,
                                                int num_processes, int cycles) {
  ABA_CHECK(num_processes >= 2 && cycles >= 1);
  const bool is_queue = fixture.rfind("queue", 0) == 0 ||
                        fixture.rfind("ring", 0) == 0;
  const spec::Method put = is_queue ? spec::Method::kEnq : spec::Method::kPush;
  const spec::Method take = is_queue ? spec::Method::kDeq : spec::Method::kPop;
  std::vector<harness::WorkloadOp> workload;
  // A priming put so a reader that runs first has a node to protect.
  workload.push_back({0, put, 1});
  for (int i = 0; i < cycles; ++i) {
    workload.push_back({0, put, static_cast<std::uint64_t>(100 + i)});
    workload.push_back({0, take, 0});
  }
  workload.push_back({0, take, 0});  // Drain the prime.
  for (int pid = 1; pid < num_processes; ++pid) {
    workload.push_back({pid, take, 0});  // The parkable readers.
  }
  return workload;
}

std::vector<WorkloadCandidate> workload_candidates(const std::string& fixture,
                                                   int num_processes,
                                                   int cycles) {
  ABA_CHECK(num_processes >= 2 && cycles >= 1);
  const bool is_queue = fixture.rfind("queue", 0) == 0 ||
                        fixture.rfind("ring", 0) == 0;
  const spec::Method put = is_queue ? spec::Method::kEnq : spec::Method::kPush;
  const spec::Method take = is_queue ? spec::Method::kDeq : spec::Method::kPop;
  std::vector<WorkloadCandidate> candidates;

  candidates.push_back(
      {"storm", storm_workload(fixture, num_processes, cycles)});

  {
    // Two stormers churning the pool; at n == 2 the second collapses onto
    // pid 0 (a double-length storm), which is still a legal shape.
    const int second = num_processes >= 3 ? 1 : 0;
    std::vector<harness::WorkloadOp> w;
    w.push_back({0, put, 1});
    for (int i = 0; i < cycles; ++i) {
      w.push_back({0, put, static_cast<std::uint64_t>(100 + i)});
      w.push_back({second, put, static_cast<std::uint64_t>(200 + i)});
      w.push_back({0, take, 0});
      w.push_back({second, take, 0});
    }
    w.push_back({0, take, 0});  // Drain the prime.
    for (int pid = second + 1; pid < num_processes; ++pid) {
      w.push_back({pid, take, 0});
    }
    candidates.push_back({"double_storm", std::move(w)});
  }

  {
    // All puts then all takes: the maximal-occupancy shape. Failed puts
    // under pool exhaustion are legal no-ops in the specs (ret == 0).
    std::vector<harness::WorkloadOp> w;
    for (int i = 0; i <= cycles; ++i) {
      w.push_back({0, put, static_cast<std::uint64_t>(300 + i)});
    }
    for (int i = 0; i <= cycles; ++i) w.push_back({0, take, 0});
    for (int pid = 1; pid < num_processes; ++pid) {
      w.push_back({pid, take, 0});
    }
    candidates.push_back({"put_surge", std::move(w)});
  }

  {
    // The storm against readers that each take twice: two parkable
    // vulnerable windows per reader instead of one.
    std::vector<harness::WorkloadOp> w;
    w.push_back({0, put, 1});
    for (int i = 0; i < cycles; ++i) {
      w.push_back({0, put, static_cast<std::uint64_t>(400 + i)});
      w.push_back({0, take, 0});
    }
    w.push_back({0, take, 0});  // Drain the prime.
    for (int pid = 1; pid < num_processes; ++pid) {
      w.push_back({pid, take, 0});
      w.push_back({pid, take, 0});
    }
    candidates.push_back({"reader_pairs", std::move(w)});
  }

  if (num_processes == 2) {
    // Two TRUE stormers — the n=2 shape double_storm cannot express (it
    // collapses its second stormer onto pid 0). This is the only two-process
    // workload where a crash can kill a PUSHER while the survivor still
    // allocates: only allocation scans drive the suspect/confirm death
    // handshake, so a reader-only peer could never expropriate the victim —
    // the shape the leased-reclaimer crash searches need. At n >= 3
    // double_storm already has a real second stormer.
    std::vector<harness::WorkloadOp> w;
    w.push_back({0, put, 1});
    for (int i = 0; i < cycles; ++i) {
      w.push_back({0, put, static_cast<std::uint64_t>(500 + i)});
      w.push_back({1, put, static_cast<std::uint64_t>(600 + i)});
      w.push_back({0, take, 0});
      w.push_back({1, take, 0});
    }
    // Two drain takes, not one: a victim crashed mid-push leaves its node
    // linked at the stack bottom, so observing a reclamation bug there (a
    // doubly-circulating node popping the same value twice) needs the
    // survivor to pop one past its own balanced cycles. In clean executions
    // the extra take legally observes empty.
    w.push_back({0, take, 0});
    w.push_back({0, take, 0});
    candidates.push_back({"crossed_storm", std::move(w)});
  }

  return candidates;
}

// ----------------------------------------------------------------- runner

ScheduleRunner::ScheduleRunner(SearchFixture fixture,
                               std::vector<harness::WorkloadOp> workload,
                               CostFn cost)
    : fixture_(std::move(fixture)),
      workload_(std::move(workload)),
      cost_(std::move(cost)) {
  const int n = fixture_.world->num_processes();
  queues_.resize(static_cast<std::size_t>(n));
  next_op_.assign(static_cast<std::size_t>(n), 0);
  for (const auto& op : workload_) {
    ABA_CHECK(op.pid >= 0 && op.pid < n);
    queues_[static_cast<std::size_t>(op.pid)].push_back(op);
  }
  sample();  // Baseline (grant 0).
}

bool ScheduleRunner::runnable(int pid) const {
  if (fixture_.world->poised(pid).has_value()) return true;
  return fixture_.world->is_idle(pid) &&
         next_op_[static_cast<std::size_t>(pid)] <
             queues_[static_cast<std::size_t>(pid)].size();
}

bool ScheduleRunner::all_done() const {
  for (int pid = 0; pid < num_processes(); ++pid) {
    // A crashed process is done by definition: it never runs again and its
    // remaining queued ops are abandoned with it.
    if (fixture_.world->is_crashed(pid)) continue;
    if (!fixture_.world->is_idle(pid)) return false;
    if (next_op_[static_cast<std::size_t>(pid)] <
        queues_[static_cast<std::size_t>(pid)].size()) {
      return false;
    }
  }
  return true;
}

std::vector<int> ScheduleRunner::runnable_pids() const {
  std::vector<int> pids;
  for (int pid = 0; pid < num_processes(); ++pid) {
    if (runnable(pid)) pids.push_back(pid);
  }
  return pids;
}

void ScheduleRunner::grant(int pid) {
  if (is_crash_grant(pid)) {
    const int victim = crash_victim(pid);
    ABA_CHECK_MSG(victim < num_processes() &&
                      !fixture_.world->is_crashed(victim),
                  "schedule crashes an unknown or already-dead process");
    fixture_.world->crash(victim);
    grants_.push_back(pid);
    sample();
    return;
  }
  ABA_CHECK_MSG(runnable(pid), "schedule grants a non-runnable process");
  if (fixture_.world->poised(pid).has_value()) {
    fixture_.world->step(pid);
  } else {
    const harness::WorkloadOp& op =
        queues_[static_cast<std::size_t>(pid)]
               [next_op_[static_cast<std::size_t>(pid)]++];
    fixture_.invoker->invoke(op);
  }
  grants_.push_back(pid);
  sample();
}

void ScheduleRunner::grant_while_runnable(int pid, std::uint64_t max_grants) {
  for (std::uint64_t i = 0; i < max_grants && runnable(pid); ++i) grant(pid);
}

int ScheduleRunner::ops_remaining(int pid) const {
  if (fixture_.world->is_crashed(pid)) return 0;  // Abandoned with the crash.
  const std::size_t queued =
      queues_[static_cast<std::size_t>(pid)].size() -
      next_op_[static_cast<std::size_t>(pid)];
  return static_cast<int>(queued) + (fixture_.world->is_idle(pid) ? 0 : 1);
}

bool ScheduleRunner::has_crash() const {
  // A crash grant is the usual source, but a process can also die with no
  // crash grant in the script: a self-fence (reclaim::LeaseRevoked escaping
  // a method once the lease tier expropriates a suspect). The history is
  // truncated either way, so verdicts must relax to conservation-only
  // whenever anyone is dead — ask the world, not the grant log.
  for (int pid = 0; pid < num_processes(); ++pid) {
    if (fixture_.world->is_crashed(pid)) return true;
  }
  return false;
}

ScheduleScript ScheduleRunner::script() const {
  ScheduleScript script;
  script.num_processes = num_processes();
  script.workload = workload_;
  script.grants = grants_;
  return script;
}

void ScheduleRunner::sample() {
  const reclaim::ReclaimStats stats = fixture_.invoker->reclaim_stats();
  const double c = cost_(stats);
  if (c > peak_) {
    peak_ = c;
    peak_grant_ = grants_.size();
    peak_stats_ = stats;
  }
}

// --------------------------------------------------------------- explorer

// Live search state: a runner positioned at the end of its grant sequence
// plus the preemption accounting the context bound prunes on.
struct ScheduleExplorer::Live {
  ScheduleRunner runner;
  int last_pid = -1;
  int switches = 0;
  int crashes = 0;

  Live(SearchFixture fixture, std::vector<harness::WorkloadOp> workload,
       CostFn cost)
      : runner(std::move(fixture), std::move(workload), std::move(cost)) {}

  // The one advance rule: granting a pid different from the last while the
  // last is still runnable is a preemption. Crash grants are not steps of
  // any process, so they consume no preemption budget; a crash of the
  // current process just clears the continuity anchor.
  void advance(int pid) {
    if (is_crash_grant(pid)) {
      runner.grant(pid);
      ++crashes;
      if (crash_victim(pid) == last_pid) last_pid = -1;
      return;
    }
    if (last_pid >= 0 && pid != last_pid && runner.runnable(last_pid)) {
      ++switches;
    }
    runner.grant(pid);
    last_pid = pid;
  }
};

ScheduleExplorer::ScheduleExplorer(SearchFixtureFactory factory,
                                   int num_processes,
                                   std::vector<harness::WorkloadOp> workload,
                                   CostFn cost, SearchOptions options)
    : factory_(std::move(factory)),
      num_processes_(num_processes),
      workload_(std::move(workload)),
      cost_(std::move(cost)),
      options_(options) {
  ABA_CHECK(num_processes_ >= 1);
}

std::unique_ptr<ScheduleExplorer::Live> ScheduleExplorer::make_live() const {
  return std::make_unique<Live>(factory_(num_processes_), workload_, cost_);
}

std::unique_ptr<ScheduleExplorer::Live> ScheduleExplorer::replay_prefix(
    const std::vector<int>& grants) const {
  auto live = make_live();
  for (const int pid : grants) live->advance(pid);
  return live;
}

// Runnable choices this juncture, context-bound-feasible only, ordered by
// the search heuristic: non-vulnerable before vulnerable (park the pinned
// reader), fewer remaining ops first (drive the designated victim into its
// protected region, then let the storm run), continuity before preemption,
// pid as the final tie-break.
std::vector<int> ScheduleExplorer::ordered_choices(Live& live) const {
  std::vector<int> choices;
  const bool last_runnable =
      live.last_pid >= 0 && live.runner.runnable(live.last_pid);
  for (const int pid : live.runner.runnable_pids()) {
    const bool preempts = last_runnable && pid != live.last_pid;
    if (preempts && live.switches >= options_.context_bound) continue;
    choices.push_back(pid);
  }
  harness::Invoker& invoker = live.runner.invoker();
  const auto rank = [&](int pid) {
    const bool vulnerable =
        options_.park_vulnerable &&
        reclaim::is_vulnerable(invoker.reclaim_phase(pid));
    return std::make_tuple(vulnerable ? 1 : 0, live.runner.ops_remaining(pid),
                           pid == live.last_pid ? 0 : 1, pid);
  };
  std::stable_sort(choices.begin(), choices.end(),
                   [&](int a, int b) { return rank(a) < rank(b); });
  // Crash choices, ranked ahead of every step grant so the preferred DFS
  // path explores the kill first: a process poised inside a vulnerable or
  // mid-retire phase may die right there, leaving its published guard or
  // frozen epoch announcement (or a half-finished retire) for the
  // survivors' expropriation path to clean up.
  if (live.crashes < options_.max_crashes) {
    std::vector<int> crash_choices;
    const sim::SimWorld& world = *live.runner.fixture().world;
    for (int pid = 0; pid < live.runner.num_processes(); ++pid) {
      if (!world.poised(pid).has_value()) continue;
      const reclaim::ReclaimPhase phase = invoker.reclaim_phase(pid);
      if (reclaim::is_vulnerable(phase) ||
          phase == reclaim::ReclaimPhase::kMidRetire ||
          phase == reclaim::ReclaimPhase::kMidAllocate) {
        crash_choices.push_back(crash_grant(pid));
      }
    }
    choices.insert(choices.begin(), crash_choices.begin(),
                   crash_choices.end());
  }
  return choices;
}

namespace {

// Violations beyond this many are still *detected* (the search stops on the
// first one by default) but not stored — each carries a full script.
constexpr std::size_t kMaxRecordedViolations = 8;

// What a grant does at the current configuration, for the independence
// relation. An invoke grant runs only process-local code up to the first
// announcement; a step grant executes the poised shared-memory op; a crash
// grant kills its victim (and death rewires reclaimer bookkeeping across
// processes via expropriation, so crashes conflict with everything).
struct GrantKind {
  bool crash = false;
  bool invoke = false;
  sim::PendingOp op;  // Valid iff step grant (!crash && !invoke).
};

GrantKind classify_grant(const sim::SimWorld& world, int grant) {
  GrantKind kind;
  if (is_crash_grant(grant)) {
    kind.crash = true;
    return kind;
  }
  const std::optional<sim::PendingOp> poised = world.poised(grant);
  if (!poised.has_value()) {
    kind.invoke = true;
    return kind;
  }
  kind.op = *poised;
  return kind;
}

// Two shared-memory steps commute iff they touch different objects or
// neither writes.
bool ops_independent(const sim::PendingOp& a, const sim::PendingOp& b) {
  if (a.obj != b.obj) return true;
  return a.kind == sim::OpKind::kRead && b.kind == sim::OpKind::kRead;
}

// The process a grant belongs to (its victim, for a crash grant). Two
// grants of the same process are always dependent: program order.
int grant_pid(int grant) {
  return is_crash_grant(grant) ? crash_victim(grant) : grant;
}

}  // namespace

// The DPOR configuration hash: everything that determines the future of the
// search from this juncture. SimWorld::signature_key() covers object values
// and poised ops; the rest is engine-side — remaining per-process programs,
// the spent preemption/crash budget (feasible continuations depend on it),
// the continuity anchor, and the reclaimer's thread-private bookkeeping
// (reclaim::Fingerprint) that the signature cannot see. With spec verdicts
// on, the completed-op history is folded in too: two configurations must
// agree on what they will be *judged* on, not just on what they will do.
std::uint64_t ScheduleExplorer::state_key(const Live& live) const {
  reclaim::Fingerprint fp;
  fp.mix_range(live.runner.fixture().world->signature_key());
  // The per-process observation hashes pin the *local* continuations, which
  // the signature deliberately omits — two program points can announce the
  // same PendingOp (a loop-top read vs its validation re-read) with very
  // different futures. Commuting independent steps leaves every process's
  // own observation sequence unchanged, so equivalent interleavings still
  // collide.
  fp.mix_range(live.runner.fixture().world->observation_hashes());
  fp.mix_range(live.runner.op_cursors());
  fp.mix(static_cast<std::uint64_t>(live.last_pid + 1));
  fp.mix(static_cast<std::uint64_t>(live.switches));
  fp.mix(static_cast<std::uint64_t>(live.crashes));
  fp.mix(live.runner.fixture().invoker->reclaim_fingerprint());
  if (options_.check_spec) {
    for (const auto& op : live.runner.fixture().history->completed_ops()) {
      fp.mix(static_cast<std::uint64_t>(op.pid));
      fp.mix(static_cast<std::uint64_t>(op.method));
      fp.mix(op.arg);
      fp.mix(op.ret);
    }
  }
  return fp.value();
}

bool ScheduleExplorer::stopped() const {
  return result_.budget_exhausted ||
         (options_.stop_on_violation && result_.violation_found());
}

void ScheduleExplorer::record(Live& live) {
  FoundSchedule found;
  found.script = live.runner.script();
  found.peak_cost = live.runner.peak();
  found.peak_grant = live.runner.peak_grant();
  if (options_.check_spec) {
    const SearchFixture& fx = live.runner.fixture();
    static const std::vector<int> kNoTags;
    const std::vector<int>& tags = fx.shard_tags ? fx.shard_tags() : kNoTags;
    const SpecVerdict verdict =
        check_history(fx.spec, fx.history->completed_ops(), tags,
                      fx.num_shards, live.runner.has_crash(),
                      fx.ring_capacity, fx.history->pending_ops());
    if (verdict.checked && !verdict.ok &&
        result_.violations.size() < kMaxRecordedViolations) {
      result_.violations.push_back({found.script, verdict.detail});
    }
  }
  auto& best = result_.best;
  const auto pos = std::find_if(
      best.begin(), best.end(),
      [&](const FoundSchedule& f) { return found.peak_cost > f.peak_cost; });
  best.insert(pos, std::move(found));
  if (best.size() > static_cast<std::size_t>(options_.top_k)) {
    best.resize(static_cast<std::size_t>(options_.top_k));
  }
}

void ScheduleExplorer::dfs(std::unique_ptr<Live> live, SleepSet sleep) {
  // Sleep sets are sound only when the context bound cannot exclude any
  // interleaving: a slept order's explored representative is a commutation
  // with a different preemption count, which a finite bound may have cut
  // (see the file comment in schedule_search.h).
  const bool sleep_active =
      options_.dpor && options_.context_bound >= kUnboundedContextBound;
  // Slept-choice matching. A slept entry names a *transition* (pid plus the
  // exact poised op, or the pid's next invoke), not a bare pid — the same
  // pid poised at a different op later is a different transition.
  const auto same_op = [](const sim::PendingOp& a, const sim::PendingOp& b) {
    return a.obj == b.obj && a.kind == b.kind && a.arg0 == b.arg0 &&
           a.arg1 == b.arg1;
  };
  const auto matches = [&](const SleptChoice& s, int grant,
                           const GrantKind& k) {
    return s.grant == grant && s.invoke == k.invoke &&
           (k.invoke || same_op(s.op, k.op));
  };
  // A slept entry survives past an executed grant iff the two commute:
  // different processes, no crash involved, no same-object write race.
  const auto still_asleep = [&](const SleptChoice& s, int grant,
                                const GrantKind& k) {
    if (k.crash) return false;
    if (grant_pid(s.grant) == grant_pid(grant)) return false;
    if (s.invoke || k.invoke) return true;
    return ops_independent(s.op, k.op);
  };

  for (;;) {
    if (stopped()) return;
    if (live->runner.all_done()) {
      record(*live);
      if (++result_.executions >= options_.max_executions) {
        result_.budget_exhausted = true;
      }
      return;
    }
    if (result_.grants >= options_.max_grants) {
      result_.budget_exhausted = true;
      return;
    }
    if (options_.max_grants_per_execution != 0 &&
        live->runner.grants().size() >= options_.max_grants_per_execution) {
      // Bounded-wait cut for non-solo-terminating fixtures: abandon this
      // path before its spin loop exhausts the stack (see SearchOptions).
      ++result_.truncated_paths;
      return;
    }
    ++result_.nodes;

    // Visited-state dominance: a revisit whose recorded running peak is at
    // least ours already scored every completion from here at least as high
    // (peak(completion) = max(peak_so_far, future(state)), and the future
    // is a function of the state alone).
    if (options_.dpor) {
      std::uint64_t key = state_key(*live);
      if (sleep_active && !sleep.empty()) {
        // A state first explored under one sleep set must not prune a
        // revisit under a different one — the revisit may explore choices
        // the first visit slept — so the sleep set is part of the cache
        // identity. XOR keeps the key independent of entry order.
        std::uint64_t sleep_fp = 0;
        for (const SleptChoice& s : sleep) {
          reclaim::Fingerprint f;
          f.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(s.grant)));
          f.mix(s.invoke ? 1 : 0);
          f.mix(static_cast<std::uint64_t>(s.op.obj));
          f.mix(static_cast<std::uint64_t>(s.op.kind));
          f.mix(s.op.arg0);
          f.mix(s.op.arg1);
          sleep_fp ^= f.value();
        }
        reclaim::Fingerprint f;
        f.mix(key);
        f.mix(sleep_fp);
        key = f.value();
      }
      const double peak = live->runner.peak();
      auto [it, inserted] = visited_.try_emplace(key, peak);
      if (!inserted) {
        if (it->second >= peak) {
          ++result_.pruned_states;
          return;
        }
        it->second = peak;
      }
    }

    std::vector<int> choices = ordered_choices(*live);
    ABA_CHECK_MSG(!choices.empty(),
                  "no feasible grant but work remains (context bound cannot "
                  "exclude the running process)");
    const sim::SimWorld& world = *live->runner.fixture().world;
    std::vector<GrantKind> kinds;
    kinds.reserve(choices.size());
    for (const int grant : choices) {
      kinds.push_back(classify_grant(world, grant));
    }

    // Sleep-set filter: a choice that commuted with every grant since an
    // explored sibling took it reaches a configuration in that sibling's
    // Mazurkiewicz trace — skip it here.
    if (sleep_active && !sleep.empty()) {
      std::vector<int> kept;
      std::vector<GrantKind> kept_kinds;
      for (std::size_t i = 0; i < choices.size(); ++i) {
        const bool slept = std::any_of(
            sleep.begin(), sleep.end(), [&](const SleptChoice& s) {
              return matches(s, choices[i], kinds[i]);
            });
        if (slept) {
          ++result_.pruned_sleep;
          continue;
        }
        kept.push_back(choices[i]);
        kept_kinds.push_back(kinds[i]);
      }
      choices = std::move(kept);
      kinds = std::move(kept_kinds);
      if (choices.empty()) return;  // Fully covered by explored siblings.
    }

    if (choices.size() == 1) {
      if (sleep_active && !sleep.empty()) {
        // Wake slept transitions the executed grant conflicts with.
        SleepSet kept;
        for (const SleptChoice& s : sleep) {
          if (still_asleep(s, choices[0], kinds[0])) kept.push_back(s);
        }
        sleep = std::move(kept);
      }
      live->advance(choices[0]);
      ++result_.grants;
      continue;
    }

    // Branch point: the heuristic-preferred child inherits the live run
    // (no replay for the leftmost path — the fix for re-running fixture
    // setup per node); only the remaining siblings are rebuilt by prefix
    // replay (Exec(C, sigma)), and each lands directly on the child's
    // visited-state check, so a revisited subtree costs one replay, never
    // a re-exploration.
    const std::vector<int> prefix = live->runner.grants();
    bool live_used = false;
    for (std::size_t i = 0; i < choices.size(); ++i) {
      if (stopped()) return;
      std::unique_ptr<Live> child;
      if (!live_used) {
        child = std::move(live);
        live_used = true;
      } else {
        child = replay_prefix(prefix);
        result_.grants += prefix.size();
        result_.replayed_grants += prefix.size();
      }
      SleepSet child_sleep;
      if (sleep_active) {
        for (const SleptChoice& s : sleep) {
          if (still_asleep(s, choices[i], kinds[i])) child_sleep.push_back(s);
        }
        for (std::size_t j = 0; j < i; ++j) {
          if (kinds[j].crash) continue;  // Dependent with everything.
          const SleptChoice s{choices[j], kinds[j].invoke, kinds[j].op};
          if (still_asleep(s, choices[i], kinds[i])) child_sleep.push_back(s);
        }
      }
      child->advance(choices[i]);
      ++result_.grants;
      dfs(std::move(child), std::move(child_sleep));
    }
    return;
  }
}

SearchResult ScheduleExplorer::run() {
  result_ = SearchResult{};
  visited_.clear();
  // The staged prefix, if any, is executed before the first juncture; its
  // grants count against the global budget and its switches/crashes charge
  // the same per-schedule budgets the DFS enforces (Live::advance keeps the
  // books either way), so a preluded conviction reports honest costs.
  auto live = make_live();
  for (const int grant : options_.prelude) {
    ABA_CHECK_MSG(is_crash_grant(grant) ? !live->runner.fixture()
                                               .world->is_crashed(
                                                   crash_victim(grant))
                                        : live->runner.runnable(grant),
                  "search prelude grants a process that cannot run");
    live->advance(grant);
    ++result_.grants;
  }
  dfs(std::move(live), SleepSet{});
  return std::move(result_);
}

WorkloadSearchResult search_workloads(
    const SearchFixtureFactory& factory, int num_processes,
    const std::vector<WorkloadCandidate>& candidates, const CostFn& cost,
    const SearchOptions& options) {
  ABA_CHECK_MSG(!candidates.empty(), "workload search needs candidates");
  WorkloadSearchResult result;
  bool first = true;
  for (const WorkloadCandidate& candidate : candidates) {
    ScheduleExplorer explorer(factory, num_processes, candidate.workload, cost,
                              options);
    SearchResult search = explorer.run();
    const double peak = search.top() ? search.top()->peak_cost : 0.0;
    result.peaks.emplace_back(candidate.name, peak);
    const double best_peak =
        result.best.top() ? result.best.top()->peak_cost : 0.0;
    if (first || peak > best_peak) {
      first = false;
      result.best_name = candidate.name;
      result.best = std::move(search);
    }
  }
  for (FoundSchedule& found : result.best.best) {
    found.script.meta["workload"] = result.best_name;
  }
  for (FoundViolation& violation : result.best.violations) {
    violation.script.meta["workload"] = result.best_name;
  }
  return result;
}

ReplayResult ScheduleExplorer::replay(const SearchFixtureFactory& factory,
                                      const ScheduleScript& script,
                                      const CostFn& cost) {
  SearchFixture fixture = factory(script.num_processes);
  fixture.world->set_trace_enabled(true);
  fixture.world->clear_trace();
  ScheduleRunner runner(std::move(fixture), script.workload, cost);
  for (const int pid : script.grants) runner.grant(pid);
  // Drain any remainder deterministically so the history is complete.
  while (!runner.all_done()) {
    bool moved = false;
    for (int pid = 0; pid < runner.num_processes(); ++pid) {
      if (runner.runnable(pid)) {
        runner.grant(pid);
        moved = true;
        break;
      }
    }
    ABA_CHECK_MSG(moved, "replay drain: no runnable process but work remains");
  }
  ReplayResult result;
  result.peak_cost = runner.peak();
  result.peak_grant = runner.peak_grant();
  result.peak_stats = runner.peak_stats();
  result.final_stats = runner.invoker().reclaim_stats();
  result.trace = runner.fixture().world->trace_copy();
  // completed_ops: identical to ops() for crash-free scripts; a crashed
  // process's final op never completes and is deliberately excluded.
  result.history = runner.fixture().history->completed_ops();
  if (runner.fixture().shard_tags) {
    result.shard_tags = runner.fixture().shard_tags();
  }
  result.num_shards = runner.fixture().num_shards;
  result.verdict =
      check_history(runner.fixture().spec, result.history, result.shard_tags,
                    result.num_shards, runner.has_crash(),
                    runner.fixture().ring_capacity,
                    runner.fixture().history->pending_ops());
  return result;
}

}  // namespace aba::search
