#include "sim/schedule_search.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>

#include "harness/adapters.h"
#include "reclaim/epoch.h"
#include "reclaim/hazard_pointer.h"
#include "sim/sim_platform.h"
#include "spec/specs.h"
#include "structures/ms_queue.h"
#include "structures/sharded.h"
#include "structures/treiber_stack.h"
#include "util/assert.h"

namespace aba::search {

namespace {

const char* method_name(spec::Method m) {
  switch (m) {
    case spec::Method::kPush: return "push";
    case spec::Method::kPop: return "pop";
    case spec::Method::kEnq: return "enq";
    case spec::Method::kDeq: return "deq";
    default: break;
  }
  ABA_CHECK_MSG(false, "schedule scripts carry stack/queue methods only");
  return "?";
}

std::optional<spec::Method> method_from(const std::string& name) {
  if (name == "push") return spec::Method::kPush;
  if (name == "pop") return spec::Method::kPop;
  if (name == "enq") return spec::Method::kEnq;
  if (name == "deq") return spec::Method::kDeq;
  return std::nullopt;
}

}  // namespace

// ----------------------------------------------------------------- script

std::string ScheduleScript::serialize() const {
  std::ostringstream out;
  out << "schedule-script v1\n";
  out << "processes " << num_processes << "\n";
  for (const auto& [key, value] : meta) {
    out << "meta " << key << " " << value << "\n";
  }
  for (const auto& op : workload) {
    out << "op " << op.pid << " " << method_name(op.method) << " " << op.arg
        << "\n";
  }
  for (std::size_t i = 0; i < grants.size(); ++i) {
    if (i % 24 == 0) out << (i == 0 ? "grants" : "\ngrants");
    if (is_crash_grant(grants[i])) {
      out << " !" << crash_victim(grants[i]);
    } else {
      out << ' ' << grants[i];
    }
  }
  if (!grants.empty()) out << "\n";
  out << "end\n";
  return out.str();
}

std::optional<ScheduleScript> ScheduleScript::parse(const std::string& text) {
  ScheduleScript script;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    // Strip comments and blank lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string word;
    if (!(tokens >> word)) continue;

    if (!saw_header) {
      std::string version;
      if (word != "schedule-script" || !(tokens >> version) || version != "v1") {
        return std::nullopt;
      }
      saw_header = true;
      continue;
    }
    if (word == "processes") {
      if (!(tokens >> script.num_processes) || script.num_processes < 1) {
        return std::nullopt;
      }
    } else if (word == "meta") {
      std::string key, value;
      if (!(tokens >> key)) return std::nullopt;
      std::getline(tokens, value);
      const std::size_t start = value.find_first_not_of(" \t");
      script.meta[key] =
          start == std::string::npos ? std::string() : value.substr(start);
    } else if (word == "op") {
      harness::WorkloadOp op;
      std::string method;
      if (!(tokens >> op.pid >> method >> op.arg)) return std::nullopt;
      const auto parsed = method_from(method);
      if (!parsed || op.pid < 0 || op.pid >= script.num_processes) {
        return std::nullopt;
      }
      op.method = *parsed;
      script.workload.push_back(op);
    } else if (word == "grants") {
      std::string token;
      while (tokens >> token) {
        bool crash = false;
        if (!token.empty() && token[0] == '!') {
          crash = true;
          token.erase(0, 1);
        }
        int pid = -1;
        try {
          std::size_t used = 0;
          pid = std::stoi(token, &used);
          if (used != token.size()) return std::nullopt;
        } catch (...) {
          return std::nullopt;
        }
        if (pid < 0 || pid >= script.num_processes) return std::nullopt;
        script.grants.push_back(crash ? crash_grant(pid) : pid);
      }
    } else if (word == "end") {
      saw_end = true;
      break;
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header || !saw_end) return std::nullopt;
  return script;
}

// ------------------------------------------------------------------ costs

double retired_unreclaimed_cost(const reclaim::ReclaimStats& s) {
  return static_cast<double>(s.retired_unreclaimed);
}

double pool_pressure_cost(const reclaim::ReclaimStats& s) {
  return static_cast<double>(s.pool_size) - static_cast<double>(s.free_nodes);
}

double guard_occupancy_cost(const reclaim::ReclaimStats& s) {
  return static_cast<double>(s.guard_slots_occupied);
}

double epoch_lag_cost(const reclaim::ReclaimStats& s) {
  return static_cast<double>(s.epoch_lag);
}

CostFn cost_by_name(const std::string& name) {
  if (name == "retired_unreclaimed") return retired_unreclaimed_cost;
  if (name == "pool_pressure") return pool_pressure_cost;
  if (name == "guard_occupancy") return guard_occupancy_cost;
  if (name == "epoch_lag") return epoch_lag_cost;
  ABA_CHECK_MSG(false, "unknown schedule-search cost function name");
  return retired_unreclaimed_cost;
}

// --------------------------------------------------------------- fixtures

namespace {

using SimP = sim::SimPlatform;

// Sized so the storm workloads (tens of cycles) never exhaust a process's
// free list even when a frozen epoch keeps every retiree in limbo.
constexpr int kPoolPerProcess = 48;

// Death oracle over the simulator: a process is dead exactly when the
// engine crashed it. Installed unconditionally in every flat fixture —
// trace-neutral while nobody dies (see SearchFixture::oracle).
struct SimDeathOracle final : reclaim::DeathOracle {
  const sim::SimWorld* world;
  explicit SimDeathOracle(const sim::SimWorld* w) : world(w) {}
  bool is_dead(int pid) const override { return world->is_crashed(pid); }
};

SearchFixture fixture_shell(int n) {
  SearchFixture fx;
  fx.world = std::make_unique<sim::SimWorld>(n);
  // The search replays thousands of executions; tracing is re-enabled by
  // ScheduleExplorer::replay, which is when the trace matters.
  fx.world->set_trace_enabled(false);
  fx.history = std::make_unique<spec::History>();
  fx.oracle = std::make_unique<SimDeathOracle>(fx.world.get());
  return fx;
}

template <class R>
SearchFixture make_stack_fixture(int n) {
  using Stack = structures::TreiberStack<SimP, structures::RawCasHead<SimP>, R>;
  SearchFixture fx = fixture_shell(n);
  auto stack = std::make_unique<Stack>(
      *fx.world, n,
      std::make_unique<structures::RawCasHead<SimP>>(*fx.world, n),
      Stack::partition(n, kPoolPerProcess));
  stack->reclaimer().set_death_oracle(fx.oracle.get());
  fx.invoker = std::make_unique<harness::StackInvoker<Stack>>(
      *fx.world, *fx.history, std::move(stack));
  return fx;
}

template <class R>
SearchFixture make_queue_fixture(int n) {
  using Queue = structures::MsQueue<SimP, R>;
  SearchFixture fx = fixture_shell(n);
  auto queue = std::make_unique<Queue>(*fx.world, n, kPoolPerProcess);
  queue->reclaimer().set_death_oracle(fx.oracle.get());
  fx.invoker = std::make_unique<harness::QueueInvoker<Queue>>(
      *fx.world, *fx.history, std::move(queue));
  return fx;
}

SearchFixture make_sharded_stack_fixture(int n) {
  using Stack =
      structures::ShardedTreiberStack<SimP, structures::RawCasHead<SimP>,
                                      reclaim::CachedHazardPointerReclaimer<SimP>,
                                      2>;
  SearchFixture fx = fixture_shell(n);
  auto invoker = std::make_unique<harness::ShardedStackInvoker<Stack>>(
      *fx.world, *fx.history,
      std::make_unique<Stack>(*fx.world, n, Stack::make_heads(*fx.world, n),
                              kPoolPerProcess / 2));
  auto* tagging = invoker.get();
  fx.shard_tags = [tagging]() -> const std::vector<int>& {
    return tagging->shard_of();
  };
  fx.num_shards = 2;
  fx.invoker = std::move(invoker);
  return fx;
}

}  // namespace

SearchFixtureFactory reclaim_fixture(const std::string& name) {
  using Hazard = reclaim::HazardPointerReclaimer<SimP>;
  using Cached = reclaim::CachedHazardPointerReclaimer<SimP>;
  using Epoch = reclaim::EpochBasedReclaimer<SimP>;
  if (name == "stack_hazard") return make_stack_fixture<Hazard>;
  if (name == "stack_hazard_cached") return make_stack_fixture<Cached>;
  if (name == "stack_epoch") return make_stack_fixture<Epoch>;
  if (name == "queue_hazard") return make_queue_fixture<Hazard>;
  if (name == "queue_hazard_cached") return make_queue_fixture<Cached>;
  if (name == "queue_epoch") return make_queue_fixture<Epoch>;
  if (name == "sharded_stack_hazard_cached") return make_sharded_stack_fixture;
  ABA_CHECK_MSG(false, "unknown schedule-search fixture name");
  return nullptr;
}

std::vector<std::string> reclaim_fixture_names() {
  return {"stack_hazard",  "stack_hazard_cached",         "stack_epoch",
          "queue_hazard",  "queue_hazard_cached",         "queue_epoch",
          "sharded_stack_hazard_cached"};
}

std::vector<harness::WorkloadOp> storm_workload(const std::string& fixture,
                                                int num_processes, int cycles) {
  ABA_CHECK(num_processes >= 2 && cycles >= 1);
  const bool is_queue = fixture.rfind("queue", 0) == 0;
  const spec::Method put = is_queue ? spec::Method::kEnq : spec::Method::kPush;
  const spec::Method take = is_queue ? spec::Method::kDeq : spec::Method::kPop;
  std::vector<harness::WorkloadOp> workload;
  // A priming put so a reader that runs first has a node to protect.
  workload.push_back({0, put, 1});
  for (int i = 0; i < cycles; ++i) {
    workload.push_back({0, put, static_cast<std::uint64_t>(100 + i)});
    workload.push_back({0, take, 0});
  }
  workload.push_back({0, take, 0});  // Drain the prime.
  for (int pid = 1; pid < num_processes; ++pid) {
    workload.push_back({pid, take, 0});  // The parkable readers.
  }
  return workload;
}

// ----------------------------------------------------------------- runner

ScheduleRunner::ScheduleRunner(SearchFixture fixture,
                               std::vector<harness::WorkloadOp> workload,
                               CostFn cost)
    : fixture_(std::move(fixture)),
      workload_(std::move(workload)),
      cost_(std::move(cost)) {
  const int n = fixture_.world->num_processes();
  queues_.resize(static_cast<std::size_t>(n));
  next_op_.assign(static_cast<std::size_t>(n), 0);
  for (const auto& op : workload_) {
    ABA_CHECK(op.pid >= 0 && op.pid < n);
    queues_[static_cast<std::size_t>(op.pid)].push_back(op);
  }
  sample();  // Baseline (grant 0).
}

bool ScheduleRunner::runnable(int pid) const {
  if (fixture_.world->poised(pid).has_value()) return true;
  return fixture_.world->is_idle(pid) &&
         next_op_[static_cast<std::size_t>(pid)] <
             queues_[static_cast<std::size_t>(pid)].size();
}

bool ScheduleRunner::all_done() const {
  for (int pid = 0; pid < num_processes(); ++pid) {
    // A crashed process is done by definition: it never runs again and its
    // remaining queued ops are abandoned with it.
    if (fixture_.world->is_crashed(pid)) continue;
    if (!fixture_.world->is_idle(pid)) return false;
    if (next_op_[static_cast<std::size_t>(pid)] <
        queues_[static_cast<std::size_t>(pid)].size()) {
      return false;
    }
  }
  return true;
}

std::vector<int> ScheduleRunner::runnable_pids() const {
  std::vector<int> pids;
  for (int pid = 0; pid < num_processes(); ++pid) {
    if (runnable(pid)) pids.push_back(pid);
  }
  return pids;
}

void ScheduleRunner::grant(int pid) {
  if (is_crash_grant(pid)) {
    const int victim = crash_victim(pid);
    ABA_CHECK_MSG(victim < num_processes() &&
                      !fixture_.world->is_crashed(victim),
                  "schedule crashes an unknown or already-dead process");
    fixture_.world->crash(victim);
    grants_.push_back(pid);
    sample();
    return;
  }
  ABA_CHECK_MSG(runnable(pid), "schedule grants a non-runnable process");
  if (fixture_.world->poised(pid).has_value()) {
    fixture_.world->step(pid);
  } else {
    const harness::WorkloadOp& op =
        queues_[static_cast<std::size_t>(pid)]
               [next_op_[static_cast<std::size_t>(pid)]++];
    fixture_.invoker->invoke(op);
  }
  grants_.push_back(pid);
  sample();
}

void ScheduleRunner::grant_while_runnable(int pid, std::uint64_t max_grants) {
  for (std::uint64_t i = 0; i < max_grants && runnable(pid); ++i) grant(pid);
}

int ScheduleRunner::ops_remaining(int pid) const {
  if (fixture_.world->is_crashed(pid)) return 0;  // Abandoned with the crash.
  const std::size_t queued =
      queues_[static_cast<std::size_t>(pid)].size() -
      next_op_[static_cast<std::size_t>(pid)];
  return static_cast<int>(queued) + (fixture_.world->is_idle(pid) ? 0 : 1);
}

ScheduleScript ScheduleRunner::script() const {
  ScheduleScript script;
  script.num_processes = num_processes();
  script.workload = workload_;
  script.grants = grants_;
  return script;
}

void ScheduleRunner::sample() {
  const reclaim::ReclaimStats stats = fixture_.invoker->reclaim_stats();
  const double c = cost_(stats);
  if (c > peak_) {
    peak_ = c;
    peak_grant_ = grants_.size();
    peak_stats_ = stats;
  }
}

// --------------------------------------------------------------- explorer

// Live search state: a runner positioned at the end of its grant sequence
// plus the preemption accounting the context bound prunes on.
struct ScheduleExplorer::Live {
  ScheduleRunner runner;
  int last_pid = -1;
  int switches = 0;
  int crashes = 0;

  Live(SearchFixture fixture, std::vector<harness::WorkloadOp> workload,
       CostFn cost)
      : runner(std::move(fixture), std::move(workload), std::move(cost)) {}

  // The one advance rule: granting a pid different from the last while the
  // last is still runnable is a preemption. Crash grants are not steps of
  // any process, so they consume no preemption budget; a crash of the
  // current process just clears the continuity anchor.
  void advance(int pid) {
    if (is_crash_grant(pid)) {
      runner.grant(pid);
      ++crashes;
      if (crash_victim(pid) == last_pid) last_pid = -1;
      return;
    }
    if (last_pid >= 0 && pid != last_pid && runner.runnable(last_pid)) {
      ++switches;
    }
    runner.grant(pid);
    last_pid = pid;
  }
};

ScheduleExplorer::ScheduleExplorer(SearchFixtureFactory factory,
                                   int num_processes,
                                   std::vector<harness::WorkloadOp> workload,
                                   CostFn cost, SearchOptions options)
    : factory_(std::move(factory)),
      num_processes_(num_processes),
      workload_(std::move(workload)),
      cost_(std::move(cost)),
      options_(options) {
  ABA_CHECK(num_processes_ >= 1);
}

std::unique_ptr<ScheduleExplorer::Live> ScheduleExplorer::make_live() const {
  return std::make_unique<Live>(factory_(num_processes_), workload_, cost_);
}

std::unique_ptr<ScheduleExplorer::Live> ScheduleExplorer::replay_prefix(
    const std::vector<int>& grants) const {
  auto live = make_live();
  for (const int pid : grants) live->advance(pid);
  return live;
}

// Runnable choices this juncture, context-bound-feasible only, ordered by
// the search heuristic: non-vulnerable before vulnerable (park the pinned
// reader), fewer remaining ops first (drive the designated victim into its
// protected region, then let the storm run), continuity before preemption,
// pid as the final tie-break.
std::vector<int> ScheduleExplorer::ordered_choices(Live& live) const {
  std::vector<int> choices;
  const bool last_runnable =
      live.last_pid >= 0 && live.runner.runnable(live.last_pid);
  for (const int pid : live.runner.runnable_pids()) {
    const bool preempts = last_runnable && pid != live.last_pid;
    if (preempts && live.switches >= options_.context_bound) continue;
    choices.push_back(pid);
  }
  harness::Invoker& invoker = live.runner.invoker();
  const auto rank = [&](int pid) {
    const bool vulnerable =
        options_.park_vulnerable &&
        reclaim::is_vulnerable(invoker.reclaim_phase(pid));
    return std::make_tuple(vulnerable ? 1 : 0, live.runner.ops_remaining(pid),
                           pid == live.last_pid ? 0 : 1, pid);
  };
  std::stable_sort(choices.begin(), choices.end(),
                   [&](int a, int b) { return rank(a) < rank(b); });
  // Crash choices, ranked ahead of every step grant so the preferred DFS
  // path explores the kill first: a process poised inside a vulnerable or
  // mid-retire phase may die right there, leaving its published guard or
  // frozen epoch announcement (or a half-finished retire) for the
  // survivors' expropriation path to clean up.
  if (live.crashes < options_.max_crashes) {
    std::vector<int> crash_choices;
    const sim::SimWorld& world = *live.runner.fixture().world;
    for (int pid = 0; pid < live.runner.num_processes(); ++pid) {
      if (!world.poised(pid).has_value()) continue;
      const reclaim::ReclaimPhase phase = invoker.reclaim_phase(pid);
      if (reclaim::is_vulnerable(phase) ||
          phase == reclaim::ReclaimPhase::kMidRetire) {
        crash_choices.push_back(crash_grant(pid));
      }
    }
    choices.insert(choices.begin(), crash_choices.begin(),
                   crash_choices.end());
  }
  return choices;
}

void ScheduleExplorer::record(const Live& live) {
  FoundSchedule found;
  found.script = live.runner.script();
  found.peak_cost = live.runner.peak();
  found.peak_grant = live.runner.peak_grant();
  auto& best = result_.best;
  const auto pos = std::find_if(
      best.begin(), best.end(),
      [&](const FoundSchedule& f) { return found.peak_cost > f.peak_cost; });
  best.insert(pos, std::move(found));
  if (best.size() > static_cast<std::size_t>(options_.top_k)) {
    best.resize(static_cast<std::size_t>(options_.top_k));
  }
}

void ScheduleExplorer::dfs(std::unique_ptr<Live> live) {
  for (;;) {
    if (result_.budget_exhausted) return;
    if (live->runner.all_done()) {
      record(*live);
      if (++result_.executions >= options_.max_executions) {
        result_.budget_exhausted = true;
      }
      return;
    }
    if (result_.grants >= options_.max_grants) {
      result_.budget_exhausted = true;
      return;
    }
    const std::vector<int> choices = ordered_choices(*live);
    ABA_CHECK_MSG(!choices.empty(),
                  "no feasible grant but work remains (context bound cannot "
                  "exclude the running process)");
    if (choices.size() == 1) {
      live->advance(choices[0]);
      ++result_.grants;
      continue;
    }
    // Branch point: the heuristic-preferred child inherits the live run;
    // siblings are rebuilt by prefix replay (Exec(C, sigma)).
    const std::vector<int> prefix = live->runner.grants();
    for (std::size_t i = 0; i < choices.size(); ++i) {
      if (result_.budget_exhausted) return;
      std::unique_ptr<Live> child =
          (i == 0) ? std::move(live) : replay_prefix(prefix);
      result_.grants += (i == 0) ? 0 : prefix.size();
      child->advance(choices[i]);
      ++result_.grants;
      dfs(std::move(child));
    }
    return;
  }
}

SearchResult ScheduleExplorer::run() {
  result_ = SearchResult{};
  dfs(make_live());
  return std::move(result_);
}

ReplayResult ScheduleExplorer::replay(const SearchFixtureFactory& factory,
                                      const ScheduleScript& script,
                                      const CostFn& cost) {
  SearchFixture fixture = factory(script.num_processes);
  fixture.world->set_trace_enabled(true);
  fixture.world->clear_trace();
  ScheduleRunner runner(std::move(fixture), script.workload, cost);
  for (const int pid : script.grants) runner.grant(pid);
  // Drain any remainder deterministically so the history is complete.
  while (!runner.all_done()) {
    bool moved = false;
    for (int pid = 0; pid < runner.num_processes(); ++pid) {
      if (runner.runnable(pid)) {
        runner.grant(pid);
        moved = true;
        break;
      }
    }
    ABA_CHECK_MSG(moved, "replay drain: no runnable process but work remains");
  }
  ReplayResult result;
  result.peak_cost = runner.peak();
  result.peak_grant = runner.peak_grant();
  result.peak_stats = runner.peak_stats();
  result.final_stats = runner.invoker().reclaim_stats();
  result.trace = runner.fixture().world->trace_copy();
  // completed_ops: identical to ops() for crash-free scripts; a crashed
  // process's final op never completes and is deliberately excluded.
  result.history = runner.fixture().history->completed_ops();
  if (runner.fixture().shard_tags) {
    result.shard_tags = runner.fixture().shard_tags();
  }
  result.num_shards = runner.fixture().num_shards;
  return result;
}

}  // namespace aba::search
