// The simulator is a checking engine: its object-kind and declared-width
// rejection is semantics the tests and lower-bound experiments rely on, not
// debug instrumentation. The aba library target therefore compiles with
// ABA_FORCE_ASSERTS in every build type (see the root CMakeLists.txt).
#include "sim/sim_world.h"

#include <sstream>

#include "util/assert.h"

namespace aba::sim {

namespace {
thread_local SimWorld* tls_world = nullptr;
thread_local ProcessId tls_pid = -1;
}  // namespace

std::string to_string(const StepRecord& step) {
  std::ostringstream out;
  out << "t=" << step.time << " p" << step.pid << " " << to_string(step.kind)
      << "(obj=" << step.obj;
  switch (step.kind) {
    case OpKind::kRead:
      out << ") -> " << step.result;
      break;
    case OpKind::kWrite:
      out << ", " << step.arg0 << ")";
      break;
    case OpKind::kCas:
      out << ", exp=" << step.arg0 << ", des=" << step.arg1 << ") -> "
          << (step.cas_success ? "ok" : "fail") << " (was " << step.result << ")";
      break;
  }
  return out.str();
}

SimWorld* SimWorld::current_world() { return tls_world; }
ProcessId SimWorld::current_pid() { return tls_pid; }

SimWorld::SimWorld(int num_processes) : procs_(num_processes) {
  ABA_ASSERT(num_processes > 0);
  for (int p = 0; p < num_processes; ++p) {
    procs_[p].thread = std::thread([this, p] { thread_main(p); });
  }
}

SimWorld::~SimWorld() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    for (auto& proc : procs_) proc.cv->notify_all();
  }
  for (auto& proc : procs_) proc.thread.join();
}

void SimWorld::thread_main(ProcessId pid) {
  tls_world = this;
  tls_pid = pid;
  std::unique_lock<std::mutex> lock(mu_);
  auto& proc = procs_[pid];
  for (;;) {
    proc.cv->wait(lock, [&] { return shutting_down_ || proc.phase == Phase::kHasMethod; });
    if (shutting_down_) return;
    proc.phase = Phase::kRunning;
    std::function<void()> method = std::move(proc.method);
    proc.method = nullptr;
    lock.unlock();
    try {
      method();
    } catch (const ExecutionAborted&) {
      // World shutting down, or this process was crashed at its
      // announcement; the flags below distinguish the two.
    } catch (...) {
      // Any other exception escaping a method (reclaim::LeaseRevoked from a
      // self-fencing process) kills this process, deterministically: mark
      // it crashed and exit the thread. The engine call that granted the
      // fatal step observes MethodStatus::kCrashed.
      lock.lock();
      if (shutting_down_) return;
      proc.crash_requested = true;
      proc.phase = Phase::kCrashed;
      engine_cv_.notify_all();
      return;
    }
    lock.lock();
    if (shutting_down_) return;
    if (proc.crash_requested) {
      // Crash acknowledged: the victim thread exits; crash() (or the
      // engine call blocked in wait_for_yield_locked) resumes only now,
      // so the unwind never overlaps engine execution.
      proc.phase = Phase::kCrashed;
      engine_cv_.notify_all();
      return;
    }
    proc.phase = Phase::kIdle;
    engine_cv_.notify_all();
  }
}

ObjectId SimWorld::create_object(ObjectKind kind, std::string name,
                                 std::uint64_t initial, BoundSpec bound) {
  std::lock_guard<std::mutex> lock(mu_);
  ABA_ASSERT_MSG(bound.fits(initial), "initial value exceeds declared object width");
  objects_.push_back(ObjectInfo{std::move(name), kind, bound, initial});
  return static_cast<ObjectId>(objects_.size() - 1);
}

std::size_t SimWorld::num_objects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

ObjectInfo SimWorld::object_info(ObjectId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  ABA_ASSERT(id >= 0 && static_cast<std::size_t>(id) < objects_.size());
  return objects_[id];
}

std::uint64_t SimWorld::object_value(ObjectId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  ABA_ASSERT(id >= 0 && static_cast<std::size_t>(id) < objects_.size());
  return objects_[id].value;
}

std::vector<std::uint64_t> SimWorld::memory_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> snapshot;
  snapshot.reserve(objects_.size());
  for (const auto& obj : objects_) snapshot.push_back(obj.value);
  return snapshot;
}

std::vector<std::uint64_t> SimWorld::signature_key() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> key;
  key.reserve(objects_.size() + procs_.size() * 4);
  for (const auto& obj : objects_) key.push_back(obj.value);
  for (const auto& proc : procs_) {
    if (proc.phase == Phase::kAnnounced) {
      key.push_back(1 + static_cast<std::uint64_t>(proc.pending.kind));
      key.push_back(static_cast<std::uint64_t>(proc.pending.obj));
      key.push_back(proc.pending.arg0);
      key.push_back(proc.pending.arg1);
    } else if (proc.phase == Phase::kCrashed) {
      // Crashed marker, distinct from idle: a crashed process never runs
      // again, so configurations differing only in dead-vs-idle are not
      // interchangeable for covering arguments.
      key.push_back(~std::uint64_t{0});
      key.push_back(0);
      key.push_back(0);
      key.push_back(0);
    } else {
      // Idle marker. (A process mid-method but not announced cannot occur
      // between engine calls.)
      key.push_back(0);
      key.push_back(0);
      key.push_back(0);
      key.push_back(0);
    }
  }
  return key;
}

MethodStatus SimWorld::wait_for_yield_locked(std::unique_lock<std::mutex>& lock,
                                             ProcessId pid) {
  auto& proc = procs_[pid];
  // kCrashed is accepted because a granted step can end in a self-fence
  // (LeaseRevoked): the victim's thread marks itself crashed and exits
  // while the engine is parked right here.
  engine_cv_.wait(lock, [&] {
    return proc.phase == Phase::kAnnounced || proc.phase == Phase::kIdle ||
           proc.phase == Phase::kCrashed;
  });
  if (proc.phase == Phase::kAnnounced) return MethodStatus::kPoised;
  return proc.phase == Phase::kCrashed ? MethodStatus::kCrashed
                                       : MethodStatus::kCompleted;
}

MethodStatus SimWorld::invoke(ProcessId pid, std::function<void()> method) {
  std::unique_lock<std::mutex> lock(mu_);
  ABA_ASSERT(pid >= 0 && static_cast<std::size_t>(pid) < procs_.size());
  auto& proc = procs_[pid];
  ABA_ASSERT_MSG(proc.phase == Phase::kIdle, "invoke on a non-idle process");
  proc.method = std::move(method);
  proc.phase = Phase::kHasMethod;
  proc.steps_in_method = 0;
  proc.cv->notify_all();
  return wait_for_yield_locked(lock, pid);
}

MethodStatus SimWorld::step(ProcessId pid) {
  std::unique_lock<std::mutex> lock(mu_);
  ABA_ASSERT(pid >= 0 && static_cast<std::size_t>(pid) < procs_.size());
  auto& proc = procs_[pid];
  ABA_ASSERT_MSG(proc.phase == Phase::kAnnounced,
                 "step on a process that is not poised");
  proc.phase = Phase::kGranted;
  proc.cv->notify_all();
  return wait_for_yield_locked(lock, pid);
}

std::uint64_t SimWorld::run_to_completion(ProcessId pid) {
  std::uint64_t steps = 0;
  while (!is_idle(pid)) {
    step(pid);
    ++steps;
  }
  return steps;
}

void SimWorld::crash(ProcessId pid) {
  std::unique_lock<std::mutex> lock(mu_);
  ABA_ASSERT(pid >= 0 && static_cast<std::size_t>(pid) < procs_.size());
  auto& proc = procs_[pid];
  ABA_ASSERT_MSG(proc.phase == Phase::kAnnounced || proc.phase == Phase::kIdle,
                 "crash on a process that is neither poised nor idle");
  proc.crash_requested = true;
  if (proc.phase == Phase::kIdle) {
    // The thread is parked waiting for a method; it stays parked (it can
    // never see kHasMethod again — invoke asserts idleness) and exits at
    // shutdown. Mark the death directly.
    proc.phase = Phase::kCrashed;
    return;
  }
  // Poised: wake the blocked access(); the thread unwinds via
  // ExecutionAborted — its announced step is never applied — and
  // acknowledges by setting kCrashed. Waiting for the ack keeps crashes
  // deterministic: the engine never runs concurrently with the unwind.
  proc.cv->notify_all();
  engine_cv_.wait(lock, [&] { return proc.phase == Phase::kCrashed; });
}

bool SimWorld::is_crashed(ProcessId pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  ABA_ASSERT(pid >= 0 && static_cast<std::size_t>(pid) < procs_.size());
  return procs_[pid].phase == Phase::kCrashed;
}

bool SimWorld::is_idle(ProcessId pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  ABA_ASSERT(pid >= 0 && static_cast<std::size_t>(pid) < procs_.size());
  return procs_[pid].phase == Phase::kIdle;
}

bool SimWorld::all_idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& proc : procs_) {
    if (proc.phase != Phase::kIdle) return false;
  }
  return true;
}

std::optional<PendingOp> SimWorld::poised(ProcessId pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  ABA_ASSERT(pid >= 0 && static_cast<std::size_t>(pid) < procs_.size());
  const auto& proc = procs_[pid];
  if (proc.phase != Phase::kAnnounced) return std::nullopt;
  return proc.pending;
}

std::uint64_t SimWorld::steps_in_method(ProcessId pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return procs_[pid].steps_in_method;
}

std::uint64_t SimWorld::now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_;
}

std::uint64_t SimWorld::next_event_time() {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_++;
}

void SimWorld::set_trace_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_enabled_ = enabled;
}

void SimWorld::clear_trace() {
  std::lock_guard<std::mutex> lock(mu_);
  trace_.clear();
}

std::vector<StepRecord> SimWorld::trace_copy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

std::uint64_t SimWorld::total_steps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_steps_;
}

std::vector<std::uint64_t> SimWorld::observation_hashes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> hashes;
  hashes.reserve(procs_.size());
  for (const auto& proc : procs_) hashes.push_back(proc.obs_hash);
  return hashes;
}

AccessResult SimWorld::apply_locked(const PendingOp& op, ProcessId pid) {
  ABA_ASSERT(op.obj >= 0 && static_cast<std::size_t>(op.obj) < objects_.size());
  auto& obj = objects_[op.obj];
  AccessResult result;
  switch (op.kind) {
    case OpKind::kRead:
      result.value = obj.value;
      break;
    case OpKind::kWrite:
      ABA_ASSERT_MSG(obj.kind == ObjectKind::kRegister ||
                         obj.kind == ObjectKind::kWritableCas,
                     "Write() on a non-writable CAS object");
      ABA_ASSERT_MSG(obj.bound.fits(op.arg0),
                     "written value exceeds declared object width");
      obj.value = op.arg0;
      result.value = op.arg0;
      break;
    case OpKind::kCas:
      ABA_ASSERT_MSG(obj.kind == ObjectKind::kCas ||
                         obj.kind == ObjectKind::kWritableCas,
                     "CAS() on a plain register");
      result.value = obj.value;
      if (obj.value == op.arg0) {
        ABA_ASSERT_MSG(obj.bound.fits(op.arg1),
                       "CAS-installed value exceeds declared object width");
        obj.value = op.arg1;
        result.cas_success = true;
      }
      break;
  }
  const std::uint64_t time = clock_++;
  ++total_steps_;
  ++procs_[pid].steps_in_method;
  {
    auto& proc = procs_[pid];
    const auto mix = [&proc](std::uint64_t word) {
      proc.obs_hash = (proc.obs_hash ^ word) * 0x100000001b3ull;
    };
    mix(static_cast<std::uint64_t>(op.obj));
    mix(static_cast<std::uint64_t>(op.kind));
    mix(op.arg0);
    mix(op.arg1);
    mix(result.value);
    mix(result.cas_success ? 1 : 0);
  }
  if (trace_enabled_) {
    trace_.push_back(StepRecord{time, pid, op.obj, op.kind, op.arg0, op.arg1,
                                result.value, result.cas_success});
  }
  return result;
}

AccessResult SimWorld::access(const PendingOp& op) {
  ABA_ASSERT_MSG(tls_world == this,
                 "shared-memory access from outside a simulated process");
  const ProcessId pid = tls_pid;
  std::unique_lock<std::mutex> lock(mu_);
  auto& proc = procs_[pid];
  ABA_ASSERT(proc.phase == Phase::kRunning);
  proc.pending = op;
  proc.phase = Phase::kAnnounced;
  engine_cv_.notify_all();
  proc.cv->wait(lock, [&] {
    return shutting_down_ || proc.crash_requested ||
           proc.phase == Phase::kGranted;
  });
  if (shutting_down_ || proc.crash_requested) throw ExecutionAborted{};
  AccessResult result = apply_locked(op, pid);
  proc.phase = Phase::kRunning;
  return result;
}

}  // namespace aba::sim
