// SimWorld — a deterministic shared-memory simulator.
//
// SimWorld realizes the paper's computation model: n processes that execute
// atomic steps on base objects, in an order chosen by a schedule. Each
// simulated process runs on its own OS thread, but a step-token handshake
// guarantees that at most one process ever runs at a time, so an execution
// is a sequence of atomic steps exactly as in the model.
//
// The central trick is the *announce-then-block* protocol: when algorithm
// code performs a shared-memory access through a sim platform handle, the
// access is first announced as a PendingOp and the process blocks until the
// driving code (the "engine": a test, a schedule runner, or a lower-bound
// adversary) grants the step. Between engine calls, every non-idle process
// sits blocked at an announcement, which gives the engine the paper's
// "poised to execute" notion: it can inspect exactly which operation (with
// parameters) each process will execute next — the raw material of covering
// arguments (WCov/CCov sets, block-writes, signatures).
//
// Configurations: the engine can snapshot all object values ("reg(C)" in
// Lemma 1) and the full signature (object values + every process's poised
// operation, "sig(C)" in Lemma 3). Process-internal state is deliberately
// not part of the signature, matching the paper's definition.
//
// Determinism and replay: SimWorld itself makes no scheduling decisions;
// given the same sequence of engine calls (invoke/step), executions are
// bit-identical. Engines identify configurations with the scripts that reach
// them from the initial configuration and re-execute prefixes — exactly the
// "Exec(C, sigma)" replay style the proofs use.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sim/types.h"

namespace aba::sim {

// Thrown through algorithm code when the world shuts down mid-method;
// algorithm code must be exception-safe with respect to simulator state
// (it holds no locks and the simulator owns all shared objects).
struct ExecutionAborted {};

enum class MethodStatus : std::uint8_t {
  kPoised,     // The method announced a shared-memory step and is blocked.
  kCompleted,  // The method ran to completion.
  kCrashed,    // The process died (crash event or self-fence) mid-method.
};

struct ObjectInfo {
  std::string name;
  ObjectKind kind = ObjectKind::kRegister;
  BoundSpec bound;
  std::uint64_t value = 0;
};

class SimWorld {
 public:
  explicit SimWorld(int num_processes);
  ~SimWorld();

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  int num_processes() const { return static_cast<int>(procs_.size()); }

  // ---- Memory management (engine thread, before or between steps) ----

  ObjectId create_object(ObjectKind kind, std::string name, std::uint64_t initial,
                         BoundSpec bound);

  std::size_t num_objects() const;
  ObjectInfo object_info(ObjectId id) const;
  std::uint64_t object_value(ObjectId id) const;

  // Values of all objects — the register configuration reg(C) of Lemma 1.
  std::vector<std::uint64_t> memory_snapshot() const;

  // Encodes object values plus each process's poised operation (or an idle
  // marker) — the signature sig(C) of Lemma 3. Two configurations with equal
  // signature_key have every object equal and every process poised to execute
  // the same operation with the same parameters.
  std::vector<std::uint64_t> signature_key() const;

  // Per-process rolling hash of the process's own executed steps (operation
  // plus observed result), since the world was created. This is the local
  // history that — together with the sequence of methods invoked on the
  // process — determines its internal continuation, which signature_key
  // deliberately omits (two distinct program points can announce the same
  // PendingOp: a loop-top read and its validation re-read). Reordering
  // *independent* steps of other processes leaves every process's own
  // observation sequence unchanged, so the model checker folds these into
  // its DPOR state key: equal hashes + equal signature means equal futures.
  std::vector<std::uint64_t> observation_hashes() const;

  // ---- Process control (engine thread only) ----

  // Starts `method` on process `pid` (which must be idle) and runs it until
  // it announces its first shared-memory step or completes. Invocation
  // itself consumes no shared-memory step, as in the model.
  MethodStatus invoke(ProcessId pid, std::function<void()> method);

  // Lets `pid` (which must be poised) execute exactly one shared-memory
  // step, then run local code until the next announcement or completion.
  MethodStatus step(ProcessId pid);

  // Steps `pid` until its current method completes (a pid-only execution,
  // as used for solo-termination arguments). Returns the number of steps.
  std::uint64_t run_to_completion(ProcessId pid);

  bool is_idle(ProcessId pid) const;
  bool all_idle() const;

  // ---- Crash events (engine thread only) ----
  //
  // Kills process `pid` at the current configuration — the simulator's model
  // of SIGKILL. The process must be poised (it dies *instead of* executing
  // its announced step, leaving every previously published shared word — a
  // hazard guard, an epoch announcement — permanently in place) or idle.
  // A crashed process never runs again: poised() is nullopt, is_idle() is
  // false, invoke()/step() on it are engine errors. Deterministic: the call
  // returns only after the victim's thread has fully unwound, so replaying
  // the same grant-plus-crash script reproduces the execution bit for bit.
  //
  // A method that lets any exception other than ExecutionAborted escape
  // (reclaim::LeaseRevoked from a self-fencing process) crashes its process
  // the same way: the engine call driving it returns MethodStatus::kCrashed.
  void crash(ProcessId pid);
  bool is_crashed(ProcessId pid) const;

  // The operation `pid` is poised to execute, if any.
  std::optional<PendingOp> poised(ProcessId pid) const;

  // Steps executed so far within pid's current (or most recent) method.
  std::uint64_t steps_in_method(ProcessId pid) const;

  // ---- Time and tracing ----

  // Monotonic logical clock: advanced by every step and by every history
  // event drawn via next_event_time(). Gives one total order over steps and
  // method invocation/response events.
  std::uint64_t now() const;
  std::uint64_t next_event_time();

  void set_trace_enabled(bool enabled);
  void clear_trace();
  std::vector<StepRecord> trace_copy() const;
  std::uint64_t total_steps() const;

  // ---- Called from simulated process threads (via platform handles) ----

  AccessResult access(const PendingOp& op);

  // The world and process id of the calling simulated process thread.
  static SimWorld* current_world();
  static ProcessId current_pid();

 private:
  enum class Phase : std::uint8_t {
    kIdle,       // No method assigned.
    kHasMethod,  // Method assigned, thread not yet running it.
    kRunning,    // Thread executing local code (transient; engine is blocked
                 // waiting for the next announcement or completion).
    kAnnounced,  // Blocked at an announced shared-memory operation.
    kGranted,    // Step granted; thread about to execute it (transient).
    kCrashed,    // Dead (crash event or self-fence); never runs again.
  };

  struct Proc {
    std::thread thread;
    Phase phase = Phase::kIdle;
    std::function<void()> method;
    PendingOp pending;
    // Set by crash(); the victim's blocked access() wakes on it, unwinds,
    // and acknowledges by setting phase = kCrashed.
    bool crash_requested = false;
    std::uint64_t steps_in_method = 0;
    std::uint64_t obs_hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis.
    std::unique_ptr<std::condition_variable> cv =
        std::make_unique<std::condition_variable>();
  };

  void thread_main(ProcessId pid);
  AccessResult apply_locked(const PendingOp& op, ProcessId pid);
  MethodStatus wait_for_yield_locked(std::unique_lock<std::mutex>& lock,
                                     ProcessId pid);

  mutable std::mutex mu_;
  std::condition_variable engine_cv_;
  bool shutting_down_ = false;

  std::vector<Proc> procs_;
  std::vector<ObjectInfo> objects_;

  std::uint64_t clock_ = 0;
  bool trace_enabled_ = true;
  std::vector<StepRecord> trace_;
  std::uint64_t total_steps_ = 0;
};

}  // namespace aba::sim
