// SimPlatform — Platform implementation backed by a SimWorld.
//
// Handles are created on the engine thread (algorithm construction happens
// before any process runs) and used from simulated process threads, where
// each access announces a PendingOp and blocks until the engine grants the
// step (see SimWorld::access).
#pragma once

#include <cstdint>

#include "sim/sim_world.h"
#include "sim/types.h"

namespace aba::sim {

struct SimPlatform {
  using Env = SimWorld;

  class Register {
   public:
    Register(Env& env, const char* name, std::uint64_t initial, BoundSpec bound)
        : world_(&env),
          id_(env.create_object(ObjectKind::kRegister, name, initial, bound)) {}

    std::uint64_t read() {
      return world_->access(PendingOp{id_, OpKind::kRead, 0, 0}).value;
    }

    void write(std::uint64_t value) {
      world_->access(PendingOp{id_, OpKind::kWrite, value, 0});
    }

    ObjectId id() const { return id_; }

   private:
    SimWorld* world_;
    ObjectId id_;
  };

  class Cas {
   public:
    Cas(Env& env, const char* name, std::uint64_t initial, BoundSpec bound)
        : world_(&env),
          id_(env.create_object(ObjectKind::kCas, name, initial, bound)) {}

    std::uint64_t read() {
      return world_->access(PendingOp{id_, OpKind::kRead, 0, 0}).value;
    }

    bool cas(std::uint64_t expected, std::uint64_t desired) {
      return world_->access(PendingOp{id_, OpKind::kCas, expected, desired})
          .cas_success;
    }

    ObjectId id() const { return id_; }

   private:
    SimWorld* world_;
    ObjectId id_;
  };

  class WritableCas {
   public:
    WritableCas(Env& env, const char* name, std::uint64_t initial, BoundSpec bound)
        : world_(&env),
          id_(env.create_object(ObjectKind::kWritableCas, name, initial, bound)) {}

    std::uint64_t read() {
      return world_->access(PendingOp{id_, OpKind::kRead, 0, 0}).value;
    }

    bool cas(std::uint64_t expected, std::uint64_t desired) {
      return world_->access(PendingOp{id_, OpKind::kCas, expected, desired})
          .cas_success;
    }

    void write(std::uint64_t value) {
      world_->access(PendingOp{id_, OpKind::kWrite, value, 0});
    }

    ObjectId id() const { return id_; }

   private:
    SimWorld* world_;
    ObjectId id_;
  };
};

}  // namespace aba::sim
