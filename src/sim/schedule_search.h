// ScheduleExplorer — a guided search engine over SimWorld executions that
// *finds* reclamation worst cases instead of scripting them.
//
// PR 4 shipped hand-written worst-step schedules for the cached-guard
// hazard mode (GuardCacheSchedule.*): park a reader right after its guard
// publish, then drive a retire storm against the pin. This subsystem turns
// that pattern into a search problem, in the spirit of the paper's
// covering-adversary constructions (src/lowerbound/covering_adversary.*)
// and of the CHESS/DPOR line of systematic concurrency testing:
//
//   * a SCHEDULE is a script of step grants — the pid moved at each
//     juncture, where "move" means invoke-the-next-workload-op if idle,
//     else execute exactly one announced shared-memory step. This is the
//     harness drivers' advance rule, and replaying the same grant sequence
//     on a fresh fixture reconstructs the execution bit-for-bit (the
//     `Exec(C, sigma)` replay style the lower-bound proofs use);
//   * the explorer runs a bounded DFS over grant sequences with CHESS-style
//     iterative context bounding (a branch that preempts a still-runnable
//     process consumes preemption budget; following the current process is
//     free) and a priority heuristic that drives the process with the least
//     remaining work first — the designated victim reaches its protected
//     region quickly — and then PARKS any process whose reclaimer reports a
//     vulnerable phase (guard just published, epoch just announced; see
//     ReclaimPhase in reclaim/reclaimer.h), so retire storms run against
//     the pin instead of past it;
//   * configurations are scored by pluggable cost functions over the
//     engine-side ReclaimStats snapshot (retired-but-unreclaimed count,
//     pool pressure, guard-slot occupancy, epoch lag), sampled after every
//     grant; a schedule's value is its peak cost;
//   * found worst cases serialize to a compact text format; the committed
//     corpus under tests/schedules/ is replayed as ordinary gtests with
//     golden bounds, so every future reclaimer change is re-checked against
//     the worst schedules ever found.
//
// PR 7 grows the explorer into a lincheck-style model checker:
//
//   * DPOR-STYLE PRUNING — configurations are keyed on a hash of
//     SimWorld::signature_key() (object values + poised ops) extended with
//     the per-process workload cursors, the preemption/crash budget spent,
//     and the reclaimer fingerprint (reclaim::Fingerprint — the
//     thread-private free/retired/limbo bookkeeping the signature omits).
//     A revisited configuration whose recorded running peak dominates the
//     current one is pruned: any completion from here was already scored at
//     least as high (peak(completion) = max(peak_so_far, future(state))).
//     The DFS hands its live runner to the heuristic-preferred child, so
//     only non-preferred siblings pay a prefix replay — the fix for the
//     explorer re-running fixture setup per DFS node; the
//     `replayed_grants` counter measures what remains. Sleep sets skip
//     grant orders that commute with already-explored siblings (two step
//     grants are independent iff they touch different objects or are both
//     reads; invocations are local; crash grants conservatively conflict
//     with everything). Sleep sets prune by Mazurkiewicz-trace equivalence
//     of *final* states; a peak attained only in the skipped intermediate
//     order can in principle be missed, which is why the corpus-hygiene
//     test re-asserts every committed golden peak against the pruned
//     search, and why `SearchOptions::dpor` can be switched off.
//     Sleep sets engage only when context_bound == kUnboundedContextBound:
//     under a finite preemption budget they are UNSOUND, because the
//     commuted representative of a slept order can need a different number
//     of preemptions than the order it prunes — the explored sibling
//     subtree may have had its representative cut by the bound, leaving the
//     whole trace class unexplored (this exact interaction hid the mutant
//     reclaimer's ABA conviction). Bounded searches therefore prune with
//     the visited-state map only, which is sound: the state key pins the
//     configuration's entire future, spent budget included.
//
//   * SPEC-DRIVEN VERDICTS — each completed schedule's recorded history is
//     replayed through the sequential StackSpec/QueueSpec linearizability
//     checkers (per-shard for tagging fixtures, conservation-only once a
//     crash grant truncates the victim's history), so the searcher hunts
//     correctness violations directly. The mutation test seeds a broken
//     reclaimer (reclaim/mutant.h) and asserts the search convicts it
//     while every shipped reclaimer survives the identical budget.
//
//   * WORKLOAD SEARCH — the op mix itself becomes a search dimension:
//     workload_candidates() enumerates adversarial shapes (storm, double
//     storm, put surge, symmetric pairs) and search_workloads() runs the
//     explorer over each, returning the argmax. Together with n>2 fixtures
//     (multiple parked readers vs a storm) and composite costs
//     (epoch lag × retire backlog) this is the outer loop every new
//     structure plugs into.
//
// Everything here is deterministic: the search uses no randomness, fixture
// construction is replayable, and two replays of the same script produce
// bit-identical step traces (the corpus test asserts exactly that).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "harness/harness.h"
#include "reclaim/death.h"
#include "reclaim/reclaimer.h"
#include "sim/sim_world.h"
#include "spec/history.h"

namespace aba::search {

// ------------------------------------------------------------- script

// Crash grants. A grant entry >= 0 moves that process one step; a negative
// entry kills a process at the current configuration (SimWorld::crash — it
// dies instead of executing its announced step, leaving its published
// guards/announcements in place). The encoding keeps grants a plain int
// vector: crash of pid p is stored as -(p + 1) and serialized as `!p`.
constexpr int crash_grant(int pid) { return -(pid + 1); }
constexpr bool is_crash_grant(int grant) { return grant < 0; }
constexpr int crash_victim(int grant) { return -grant - 1; }

// A replayable schedule: the workload (per-process program order) plus the
// grant sequence. `meta` carries free-form key/value annotations — the
// corpus uses `fixture`, `cost`, `expect_peak`, `expect_peak_grant` and
// `expect_grants` (golden bounds checked at replay time); crash schedules
// add `crashes` plus recovery bounds (`expect_expropriations`,
// `expect_final_retired`, `expect_final_free`, `expect_quarantined`).
struct ScheduleScript {
  int num_processes = 0;
  std::vector<harness::WorkloadOp> workload;
  std::vector<int> grants;
  std::map<std::string, std::string> meta;

  // Text form (tools/schedule_dump.py pretty-prints it):
  //   schedule-script v1
  //   processes <n>
  //   meta <key> <value...>
  //   op <pid> <push|pop|enq|deq> <arg>
  //   grants <pid> <pid> ...
  //   end
  std::string serialize() const;
  static std::optional<ScheduleScript> parse(const std::string& text);
};

// ------------------------------------------------------------ fixtures

// The sequential specification a fixture's histories are checked against
// when the search runs with spec-driven verdicts (SearchOptions::check_spec).
// kShardedStack splits the history by the tagging adapter's landing shards
// and checks each shard as an exact stack. kRing checks against the
// capacity-strict BoundedQueueSpec (the fixture's ring_capacity feeds the
// initial state).
enum class SpecKind : std::uint8_t { kNone, kStack, kQueue, kShardedStack,
                                     kRing };

// One fresh instrumented execution target: the world, the history the
// invoker records into, and the invoker driving the implementation (which
// owns it). `shard_tags`, when set, exposes the tagging adapter's per-op
// landing shards so replays of sharded fixtures can re-check the per-shard
// linearizability contract.
struct SearchFixture {
  std::unique_ptr<sim::SimWorld> world;
  std::unique_ptr<spec::History> history;
  std::unique_ptr<harness::Invoker> invoker;
  std::function<const std::vector<int>&()> shard_tags;  // Null if unsharded.
  int num_shards = 1;
  SpecKind spec = SpecKind::kNone;
  // Capacity for SpecKind::kRing fixtures (BoundedQueueSpec initial state);
  // ignored by the other kinds.
  std::uint64_t ring_capacity = 0;
  // Death oracle wired into the reclaimer (is_dead == world->is_crashed).
  // Owned here so it outlives the structure that holds a pointer to it.
  // Installing it is trace-neutral: with no crashes the reclaimers take no
  // extra shared steps, so the pre-crash corpus replays bit-identically.
  std::unique_ptr<reclaim::DeathOracle> oracle;
};

// Builds a fresh fixture for `n` processes. Must be pure: every call
// constructs an identical initial configuration (this is what makes
// replay-based backtracking and corpus replays deterministic).
using SearchFixtureFactory = std::function<SearchFixture(int n)>;

// Default per-process pool: sized so the storm workloads (tens of cycles)
// never exhaust a process's free list even when a frozen epoch keeps every
// retiree in limbo. The mutation tests shrink it so index recycling is
// reachable within a small search budget.
inline constexpr int kDefaultPoolPerProcess = 48;

// The standard reclaimer-targeting fixtures over the simulator, keyed by
// the corpus `fixture` meta value: {stack,queue}_{hazard,hazard_cached,
// epoch} (TreiberStack with a raw CAS head / MsQueue),
// sharded_stack_hazard_cached (2 shards, tagging invoker), plus the
// CAS-site-policy family the mutation tests contrast: stack_tagged
// (immediate reuse, version-bumping TaggedCasHead), stack_leaky (no reuse,
// raw head), and stack_mutant_tagged (reclaim/mutant.h: immediate reuse on
// a raw head — the seeded ABA bug the spec-driven search must convict).
// ABA_CHECK-fails on an unknown name.
SearchFixtureFactory reclaim_fixture(
    const std::string& name, int pool_per_process = kDefaultPoolPerProcess);
std::vector<std::string> reclaim_fixture_names();

// The canonical adversarial workload for those fixtures: process 0 drives
// `cycles` put/take pairs (the retire storm); every other process performs
// a single take (the parkable reader). Put/take verbs follow the fixture
// (push/pop vs enqueue/dequeue).
std::vector<harness::WorkloadOp> storm_workload(const std::string& fixture,
                                                int num_processes, int cycles);

// A named workload shape for the outer (workload-dimension) search.
struct WorkloadCandidate {
  std::string name;
  std::vector<harness::WorkloadOp> workload;
};

// The adversarial op-mix candidates for a fixture: "storm" (the canonical
// seed above), "double_storm" (two stormers), "put_surge" (all puts, then
// all takes), and "reader_pairs" (each reader takes twice — two parkable
// vulnerable windows per reader). All shapes are legal at any n >= 2 and
// under pool exhaustion (a failed put is a legal no-op in the specs).
std::vector<WorkloadCandidate> workload_candidates(const std::string& fixture,
                                                   int num_processes,
                                                   int cycles);

// --------------------------------------------------------------- costs

using CostFn = std::function<double(const reclaim::ReclaimStats&)>;

double retired_unreclaimed_cost(const reclaim::ReclaimStats& s);
double pool_pressure_cost(const reclaim::ReclaimStats& s);
double guard_occupancy_cost(const reclaim::ReclaimStats& s);
double epoch_lag_cost(const reclaim::ReclaimStats& s);
// Composite: epoch lag × retired backlog. High only when a pinned epoch AND
// an accumulating limbo coincide — the system-wide unbounded-garbage shape
// the epoch reclaimer's retire-bound weakness predicts.
double epoch_lag_backlog_cost(const reclaim::ReclaimStats& s);

// Lookup by corpus meta name ("retired_unreclaimed", "pool_pressure",
// "guard_occupancy", "epoch_lag", "epoch_lag_backlog"); ABA_CHECK-fails on
// an unknown name.
CostFn cost_by_name(const std::string& name);

// ------------------------------------------------------------- verdicts

// Outcome of checking one recorded history against a fixture's sequential
// spec. `checked` is false when the fixture declares no spec (kNone).
struct SpecVerdict {
  bool checked = false;
  bool ok = true;
  std::string detail;  // Human-readable failure evidence when !ok.
};

// Replays `ops` through the sequential spec for `kind`. Crash histories
// (has_crash) are checked for multiset conservation only — no value taken
// that was never put — because the victim's pending op may have taken
// effect without completing. `pending` carries the crashed processes'
// incomplete ops (History::pending_ops): each pending PUT credits its value
// once, since its effect may have landed (e.g. a push killed between the
// linking CAS and the bookkeeping clear left its node reachable), so a
// survivor taking that value once is legal — taking any value more often
// than put+credit still convicts. kShardedStack splits by `shard_tags`
// (which must be index-aligned with `ops`) and checks each shard as an
// exact stack; the others run the Wing&Gong linearizability checker whole.
// `ring_capacity` seeds BoundedQueueSpec for kRing (unused otherwise; the
// defaults keep pre-ring callers source-compatible).
SpecVerdict check_history(SpecKind kind, const std::vector<spec::Op>& ops,
                          const std::vector<int>& shard_tags, int num_shards,
                          bool has_crash, std::uint64_t ring_capacity = 0,
                          const std::vector<spec::Op>& pending = {});

// -------------------------------------------------------------- runner

// Engine-side grant-by-grant control over one fixture: the primitive the
// explorer, the replayer and the scripted-seed tests all share. Sampling
// happens after every grant; peak() is the running maximum of the cost.
class ScheduleRunner {
 public:
  ScheduleRunner(SearchFixture fixture,
                 std::vector<harness::WorkloadOp> workload, CostFn cost);

  bool runnable(int pid) const;
  bool all_done() const;
  std::vector<int> runnable_pids() const;

  // Moves `pid` (which must be runnable): invoke its next op if idle, else
  // grant one step. Records the grant and samples the cost. A negative
  // argument is a crash grant (see crash_grant above): the victim is killed
  // at the current configuration and its queued ops are abandoned.
  void grant(int pid);

  // Grants `pid` while it stays runnable, up to `max_grants` times.
  void grant_while_runnable(int pid, std::uint64_t max_grants);

  double peak() const { return peak_; }
  std::uint64_t peak_grant() const { return peak_grant_; }
  const reclaim::ReclaimStats& peak_stats() const { return peak_stats_; }
  const std::vector<int>& grants() const { return grants_; }
  int num_processes() const { return static_cast<int>(queues_.size()); }
  int ops_remaining(int pid) const;
  // Per-process workload cursors — folded into the DPOR state key (two
  // configurations with equal signatures but different remaining programs
  // have different futures).
  const std::vector<std::size_t>& op_cursors() const { return next_op_; }
  bool has_crash() const;

  const SearchFixture& fixture() const { return fixture_; }
  harness::Invoker& invoker() { return *fixture_.invoker; }

  ScheduleScript script() const;

 private:
  void sample();

  SearchFixture fixture_;
  std::vector<harness::WorkloadOp> workload_;
  std::vector<std::vector<harness::WorkloadOp>> queues_;  // Per-pid, FIFO.
  std::vector<std::size_t> next_op_;                      // Queue cursors.
  CostFn cost_;
  std::vector<int> grants_;
  double peak_ = 0;
  std::uint64_t peak_grant_ = 0;
  reclaim::ReclaimStats peak_stats_;
};

// ------------------------------------------------------------- explorer

// context_bound value meaning "no preemption budget": every interleaving is
// feasible. This is also the only setting at which sleep-set pruning
// engages — under a finite bound the commuted representative of a slept
// choice can need a different number of preemptions than the order it
// prunes, so sleep sets could cut schedules no explored sibling covers
// (see the file comment).
inline constexpr int kUnboundedContextBound = std::numeric_limits<int>::max();

struct SearchOptions {
  int top_k = 3;
  // CHESS-style preemption budget: grants that switch away from a
  // still-runnable process, beyond this many per schedule, are pruned.
  // Set to kUnboundedContextBound for exhaustive searches.
  int context_bound = 3;
  // Completed schedules to explore before stopping.
  std::uint64_t max_executions = 192;
  // Global step budget across the whole search, replays included.
  std::uint64_t max_grants = 1u << 20;
  // Deprioritize processes whose reclaimer reports a vulnerable phase
  // (ReclaimPhase guard-published / epoch-announced): they stay parked
  // while others storm. The heuristic that rediscovers the scripted
  // worst cases; disable to measure its value.
  bool park_vulnerable = true;
  // Crash events the search may inject per schedule. At every juncture, for
  // each process poised at a vulnerable or mid-retire ReclaimPhase, the
  // explorer also considers killing it there (ranked before step grants, so
  // the preferred DFS path explores the crash). 0 = crash-free search; the
  // default keeps all existing searches byte-identical.
  int max_crashes = 0;
  // DPOR-style pruning (see the header comment): visited-state dominance
  // and — only at context_bound == kUnboundedContextBound — sleep sets
  // over independent grants. Off = PR 5's plain bounded DFS; the
  // node-budget regression test measures the difference.
  bool dpor = true;
  // Run each completed schedule's history through the fixture's sequential
  // spec (check_history); failures are recorded in SearchResult::violations.
  bool check_spec = false;
  // Stop the search at the first spec violation (the conviction is the
  // result; the remaining budget would only find more of the same).
  bool stop_on_violation = true;
  // Forced grant prefix: the search executes exactly these grants first and
  // explores only the suffix. A staged search for crash channels that blind
  // DFS cannot reach: the heuristic path order (fewest-ops-first, crash
  // choices up front) explores a many-op stormer's early window last, so a
  // channel that needs "two pushes done and a reader parked mid-pop" before
  // anything interesting happens sits at the far end of the tree. The
  // prelude stages that state; the searcher still has to discover the kill
  // point and every suffix interleaving itself. Preemptions and crashes
  // inside the prelude are charged against the same budgets as searched
  // grants, so a conviction's recorded context bound stays honest.
  std::vector<int> prelude;
  // Per-schedule grant bound: a DFS path whose grant sequence reaches this
  // length is cut (counted in SearchResult::truncated_paths). 0 = unbounded,
  // which is correct for the lock-free fixtures — every op solo-terminates,
  // so paths end on their own. Fixtures with blocking wait loops (the
  // bounded rings: a producer parked between claiming a slot and publishing
  // its sequence word makes a consumer spin indefinitely) need this cut —
  // each futile spin iteration extends the process's observation history,
  // so the DPOR state key never recurs and the DFS would otherwise deepen
  // one frame per grant until the stack overflows.
  std::uint64_t max_grants_per_execution = 0;
};

struct FoundSchedule {
  ScheduleScript script;
  double peak_cost = 0;
  std::uint64_t peak_grant = 0;
};

// A schedule whose completed history failed the fixture's sequential spec —
// the model checker's conviction, replayable like any other script.
struct FoundViolation {
  ScheduleScript script;
  std::string detail;
};

struct SearchResult {
  std::vector<FoundSchedule> best;  // Sorted by peak_cost, descending.
  std::vector<FoundViolation> violations;  // check_spec failures (capped).
  std::uint64_t executions = 0;
  std::uint64_t grants = 0;
  // DPOR accounting. `nodes` counts DFS junctures entered; the pruned_*
  // counters are subtrees cut by the visited-state map and choices skipped
  // by sleep sets. replayed_grants is the share of `grants` spent
  // rebuilding sibling prefixes — the cost handing the live runner to the
  // preferred child avoids for the leftmost path, and state pruning
  // shrinks for the rest.
  std::uint64_t nodes = 0;
  std::uint64_t pruned_states = 0;
  std::uint64_t pruned_sleep = 0;
  std::uint64_t replayed_grants = 0;
  // Paths cut by SearchOptions::max_grants_per_execution before completing.
  std::uint64_t truncated_paths = 0;
  bool budget_exhausted = false;

  const FoundSchedule* top() const { return best.empty() ? nullptr : &best[0]; }
  bool violation_found() const { return !violations.empty(); }
};

// Outer search over the workload dimension: runs the explorer once per
// candidate and returns the argmax by top peak cost, with every
// candidate's peak for reporting. Each winning script is stamped with
// meta["workload"] = candidate name.
struct WorkloadSearchResult {
  std::string best_name;
  SearchResult best;
  std::vector<std::pair<std::string, double>> peaks;  // name -> top peak.
};

WorkloadSearchResult search_workloads(
    const SearchFixtureFactory& factory, int num_processes,
    const std::vector<WorkloadCandidate>& candidates, const CostFn& cost,
    const SearchOptions& options);

struct ReplayResult {
  double peak_cost = 0;
  std::uint64_t peak_grant = 0;
  reclaim::ReclaimStats peak_stats;
  // Stats after the full drain — what the crash corpus checks its recovery
  // bounds (expropriations, final retired/free, quarantined) against.
  reclaim::ReclaimStats final_stats;
  std::vector<spec::Op> history;  // Completed ops only (crashes leave one pending).
  std::vector<sim::StepRecord> trace;  // Bit-identical across replays.
  std::vector<int> shard_tags;         // Empty for unsharded fixtures.
  int num_shards = 1;
  // The history checked against the fixture's spec (check_history);
  // verdict.checked is false for fixtures that declare SpecKind::kNone.
  SpecVerdict verdict;
};

class ScheduleExplorer {
 public:
  ScheduleExplorer(SearchFixtureFactory factory, int num_processes,
                   std::vector<harness::WorkloadOp> workload, CostFn cost,
                   SearchOptions options = {});

  SearchResult run();

  // Deterministically replays `script` on a fresh fixture with tracing on.
  // Grants beyond the script (an incomplete schedule) are drained
  // lowest-runnable-pid-first so the history is always complete.
  static ReplayResult replay(const SearchFixtureFactory& factory,
                             const ScheduleScript& script, const CostFn& cost);

 private:
  struct Live;
  // A grant another branch already explored from an equivalent juncture,
  // carried down so commuting re-orderings of it are skipped. Step grants
  // remember the poised op they stood for (the pid alone is not a stable
  // transition identity — its poised op changes as it advances); invoke
  // grants are identified by the pid's cursor position via the state key.
  struct SleptChoice {
    int grant = -1;
    bool invoke = false;
    sim::PendingOp op;
  };
  using SleepSet = std::vector<SleptChoice>;

  std::unique_ptr<Live> make_live() const;
  std::unique_ptr<Live> replay_prefix(const std::vector<int>& grants) const;
  void dfs(std::unique_ptr<Live> live, SleepSet sleep);
  void record(Live& live);
  std::vector<int> ordered_choices(Live& live) const;
  std::uint64_t state_key(const Live& live) const;
  bool stopped() const;

  SearchFixtureFactory factory_;
  int num_processes_;
  std::vector<harness::WorkloadOp> workload_;
  CostFn cost_;
  SearchOptions options_;
  SearchResult result_;
  // DPOR map, per run(): best running peak recorded at each visited
  // configuration hash.
  std::unordered_map<std::uint64_t, double> visited_;
};

}  // namespace aba::search
