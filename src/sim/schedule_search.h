// ScheduleExplorer — a guided search engine over SimWorld executions that
// *finds* reclamation worst cases instead of scripting them.
//
// PR 4 shipped hand-written worst-step schedules for the cached-guard
// hazard mode (GuardCacheSchedule.*): park a reader right after its guard
// publish, then drive a retire storm against the pin. This subsystem turns
// that pattern into a search problem, in the spirit of the paper's
// covering-adversary constructions (src/lowerbound/covering_adversary.*)
// and of the CHESS/DPOR line of systematic concurrency testing:
//
//   * a SCHEDULE is a script of step grants — the pid moved at each
//     juncture, where "move" means invoke-the-next-workload-op if idle,
//     else execute exactly one announced shared-memory step. This is the
//     harness drivers' advance rule, and replaying the same grant sequence
//     on a fresh fixture reconstructs the execution bit-for-bit (the
//     `Exec(C, sigma)` replay style the lower-bound proofs use);
//   * the explorer runs a bounded DFS over grant sequences with CHESS-style
//     iterative context bounding (a branch that preempts a still-runnable
//     process consumes preemption budget; following the current process is
//     free) and a priority heuristic that drives the process with the least
//     remaining work first — the designated victim reaches its protected
//     region quickly — and then PARKS any process whose reclaimer reports a
//     vulnerable phase (guard just published, epoch just announced; see
//     ReclaimPhase in reclaim/reclaimer.h), so retire storms run against
//     the pin instead of past it;
//   * configurations are scored by pluggable cost functions over the
//     engine-side ReclaimStats snapshot (retired-but-unreclaimed count,
//     pool pressure, guard-slot occupancy, epoch lag), sampled after every
//     grant; a schedule's value is its peak cost;
//   * found worst cases serialize to a compact text format; the committed
//     corpus under tests/schedules/ is replayed as ordinary gtests with
//     golden bounds, so every future reclaimer change is re-checked against
//     the worst schedules ever found.
//
// Everything here is deterministic: the search uses no randomness, fixture
// construction is replayable, and two replays of the same script produce
// bit-identical step traces (the corpus test asserts exactly that).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/harness.h"
#include "reclaim/death.h"
#include "reclaim/reclaimer.h"
#include "sim/sim_world.h"
#include "spec/history.h"

namespace aba::search {

// ------------------------------------------------------------- script

// Crash grants. A grant entry >= 0 moves that process one step; a negative
// entry kills a process at the current configuration (SimWorld::crash — it
// dies instead of executing its announced step, leaving its published
// guards/announcements in place). The encoding keeps grants a plain int
// vector: crash of pid p is stored as -(p + 1) and serialized as `!p`.
constexpr int crash_grant(int pid) { return -(pid + 1); }
constexpr bool is_crash_grant(int grant) { return grant < 0; }
constexpr int crash_victim(int grant) { return -grant - 1; }

// A replayable schedule: the workload (per-process program order) plus the
// grant sequence. `meta` carries free-form key/value annotations — the
// corpus uses `fixture`, `cost`, `expect_peak`, `expect_peak_grant` and
// `expect_grants` (golden bounds checked at replay time); crash schedules
// add `crashes` plus recovery bounds (`expect_expropriations`,
// `expect_final_retired`, `expect_final_free`, `expect_quarantined`).
struct ScheduleScript {
  int num_processes = 0;
  std::vector<harness::WorkloadOp> workload;
  std::vector<int> grants;
  std::map<std::string, std::string> meta;

  // Text form (tools/schedule_dump.py pretty-prints it):
  //   schedule-script v1
  //   processes <n>
  //   meta <key> <value...>
  //   op <pid> <push|pop|enq|deq> <arg>
  //   grants <pid> <pid> ...
  //   end
  std::string serialize() const;
  static std::optional<ScheduleScript> parse(const std::string& text);
};

// ------------------------------------------------------------ fixtures

// One fresh instrumented execution target: the world, the history the
// invoker records into, and the invoker driving the implementation (which
// owns it). `shard_tags`, when set, exposes the tagging adapter's per-op
// landing shards so replays of sharded fixtures can re-check the per-shard
// linearizability contract.
struct SearchFixture {
  std::unique_ptr<sim::SimWorld> world;
  std::unique_ptr<spec::History> history;
  std::unique_ptr<harness::Invoker> invoker;
  std::function<const std::vector<int>&()> shard_tags;  // Null if unsharded.
  int num_shards = 1;
  // Death oracle wired into the reclaimer (is_dead == world->is_crashed).
  // Owned here so it outlives the structure that holds a pointer to it.
  // Installing it is trace-neutral: with no crashes the reclaimers take no
  // extra shared steps, so the pre-crash corpus replays bit-identically.
  std::unique_ptr<reclaim::DeathOracle> oracle;
};

// Builds a fresh fixture for `n` processes. Must be pure: every call
// constructs an identical initial configuration (this is what makes
// replay-based backtracking and corpus replays deterministic).
using SearchFixtureFactory = std::function<SearchFixture(int n)>;

// The standard reclaimer-targeting fixtures over the simulator, keyed by
// the corpus `fixture` meta value: {stack,queue}_{hazard,hazard_cached,
// epoch} (TreiberStack with a raw CAS head / MsQueue, pool sized for the
// storm workloads) and sharded_stack_hazard_cached (2 shards, tagging
// invoker). ABA_CHECK-fails on an unknown name.
SearchFixtureFactory reclaim_fixture(const std::string& name);
std::vector<std::string> reclaim_fixture_names();

// The canonical adversarial workload for those fixtures: process 0 drives
// `cycles` put/take pairs (the retire storm); every other process performs
// a single take (the parkable reader). Put/take verbs follow the fixture
// (push/pop vs enqueue/dequeue).
std::vector<harness::WorkloadOp> storm_workload(const std::string& fixture,
                                                int num_processes, int cycles);

// --------------------------------------------------------------- costs

using CostFn = std::function<double(const reclaim::ReclaimStats&)>;

double retired_unreclaimed_cost(const reclaim::ReclaimStats& s);
double pool_pressure_cost(const reclaim::ReclaimStats& s);
double guard_occupancy_cost(const reclaim::ReclaimStats& s);
double epoch_lag_cost(const reclaim::ReclaimStats& s);

// Lookup by corpus meta name ("retired_unreclaimed", "pool_pressure",
// "guard_occupancy", "epoch_lag"); ABA_CHECK-fails on an unknown name.
CostFn cost_by_name(const std::string& name);

// -------------------------------------------------------------- runner

// Engine-side grant-by-grant control over one fixture: the primitive the
// explorer, the replayer and the scripted-seed tests all share. Sampling
// happens after every grant; peak() is the running maximum of the cost.
class ScheduleRunner {
 public:
  ScheduleRunner(SearchFixture fixture,
                 std::vector<harness::WorkloadOp> workload, CostFn cost);

  bool runnable(int pid) const;
  bool all_done() const;
  std::vector<int> runnable_pids() const;

  // Moves `pid` (which must be runnable): invoke its next op if idle, else
  // grant one step. Records the grant and samples the cost. A negative
  // argument is a crash grant (see crash_grant above): the victim is killed
  // at the current configuration and its queued ops are abandoned.
  void grant(int pid);

  // Grants `pid` while it stays runnable, up to `max_grants` times.
  void grant_while_runnable(int pid, std::uint64_t max_grants);

  double peak() const { return peak_; }
  std::uint64_t peak_grant() const { return peak_grant_; }
  const reclaim::ReclaimStats& peak_stats() const { return peak_stats_; }
  const std::vector<int>& grants() const { return grants_; }
  int num_processes() const { return static_cast<int>(queues_.size()); }
  int ops_remaining(int pid) const;

  const SearchFixture& fixture() const { return fixture_; }
  harness::Invoker& invoker() { return *fixture_.invoker; }

  ScheduleScript script() const;

 private:
  void sample();

  SearchFixture fixture_;
  std::vector<harness::WorkloadOp> workload_;
  std::vector<std::vector<harness::WorkloadOp>> queues_;  // Per-pid, FIFO.
  std::vector<std::size_t> next_op_;                      // Queue cursors.
  CostFn cost_;
  std::vector<int> grants_;
  double peak_ = 0;
  std::uint64_t peak_grant_ = 0;
  reclaim::ReclaimStats peak_stats_;
};

// ------------------------------------------------------------- explorer

struct SearchOptions {
  int top_k = 3;
  // CHESS-style preemption budget: grants that switch away from a
  // still-runnable process, beyond this many per schedule, are pruned.
  int context_bound = 3;
  // Completed schedules to explore before stopping.
  std::uint64_t max_executions = 192;
  // Global step budget across the whole search, replays included.
  std::uint64_t max_grants = 1u << 20;
  // Deprioritize processes whose reclaimer reports a vulnerable phase
  // (ReclaimPhase guard-published / epoch-announced): they stay parked
  // while others storm. The heuristic that rediscovers the scripted
  // worst cases; disable to measure its value.
  bool park_vulnerable = true;
  // Crash events the search may inject per schedule. At every juncture, for
  // each process poised at a vulnerable or mid-retire ReclaimPhase, the
  // explorer also considers killing it there (ranked before step grants, so
  // the preferred DFS path explores the crash). 0 = crash-free search; the
  // default keeps all existing searches byte-identical.
  int max_crashes = 0;
};

struct FoundSchedule {
  ScheduleScript script;
  double peak_cost = 0;
  std::uint64_t peak_grant = 0;
};

struct SearchResult {
  std::vector<FoundSchedule> best;  // Sorted by peak_cost, descending.
  std::uint64_t executions = 0;
  std::uint64_t grants = 0;
  bool budget_exhausted = false;

  const FoundSchedule* top() const { return best.empty() ? nullptr : &best[0]; }
};

struct ReplayResult {
  double peak_cost = 0;
  std::uint64_t peak_grant = 0;
  reclaim::ReclaimStats peak_stats;
  // Stats after the full drain — what the crash corpus checks its recovery
  // bounds (expropriations, final retired/free, quarantined) against.
  reclaim::ReclaimStats final_stats;
  std::vector<spec::Op> history;  // Completed ops only (crashes leave one pending).
  std::vector<sim::StepRecord> trace;  // Bit-identical across replays.
  std::vector<int> shard_tags;         // Empty for unsharded fixtures.
  int num_shards = 1;
};

class ScheduleExplorer {
 public:
  ScheduleExplorer(SearchFixtureFactory factory, int num_processes,
                   std::vector<harness::WorkloadOp> workload, CostFn cost,
                   SearchOptions options = {});

  SearchResult run();

  // Deterministically replays `script` on a fresh fixture with tracing on.
  // Grants beyond the script (an incomplete schedule) are drained
  // lowest-runnable-pid-first so the history is always complete.
  static ReplayResult replay(const SearchFixtureFactory& factory,
                             const ScheduleScript& script, const CostFn& cost);

 private:
  struct Live;

  std::unique_ptr<Live> make_live() const;
  std::unique_ptr<Live> replay_prefix(const std::vector<int>& grants) const;
  void dfs(std::unique_ptr<Live> live);
  void record(const Live& live);
  std::vector<int> ordered_choices(Live& live) const;

  SearchFixtureFactory factory_;
  int num_processes_;
  std::vector<harness::WorkloadOp> workload_;
  CostFn cost_;
  SearchOptions options_;
  SearchResult result_;
};

}  // namespace aba::search
