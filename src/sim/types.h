// Basic vocabulary types for the shared-memory simulator.
//
// The simulator realizes the paper's execution model (Preliminaries, p.6):
// a system of n processes that communicate through atomic operations
// ("steps") on base objects; a schedule is a sequence of process ids
// determining the order of steps; an execution is the resulting sequence of
// shared-memory steps; a configuration is the state of all processes and
// base objects.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace aba::sim {

using ProcessId = int;
using ObjectId = int;

// What a base object supports. The paper distinguishes:
//   registers       — Read() / Write()            (Theorem 1(a))
//   CAS objects     — Read() / CAS()              (Theorem 1(b))
//   writable CAS    — Read() / CAS() / Write()    (Theorem 1(c))
enum class ObjectKind : std::uint8_t {
  kRegister,
  kCas,
  kWritableCas,
};

// A single shared-memory operation.
enum class OpKind : std::uint8_t {
  kRead,
  kWrite,
  kCas,
};

inline const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kRead: return "Read";
    case OpKind::kWrite: return "Write";
    case OpKind::kCas: return "CAS";
  }
  return "?";
}

inline const char* to_string(ObjectKind k) {
  switch (k) {
    case ObjectKind::kRegister: return "Register";
    case ObjectKind::kCas: return "CAS";
    case ObjectKind::kWritableCas: return "WritableCAS";
  }
  return "?";
}

// Boundedness metadata. The paper's lower bounds hold only for *bounded*
// base objects; the trivial tag-based constructions need unbounded ones.
// Objects declare their width so the simulator can (a) assert all stored
// values actually fit and (b) let the lower-bound engines distinguish
// bounded from unbounded implementations.
struct BoundSpec {
  // Number of bits; 0 means unbounded.
  unsigned bits = 0;

  static constexpr BoundSpec unbounded() { return BoundSpec{0}; }
  static constexpr BoundSpec bounded(unsigned bits) { return BoundSpec{bits}; }

  constexpr bool is_bounded() const { return bits != 0; }

  constexpr bool fits(std::uint64_t value) const {
    if (!is_bounded()) return true;
    if (bits >= 64) return true;
    return (value >> bits) == 0;
  }
};

// An announced-but-not-yet-executed shared-memory operation: the operation a
// process is "poised" to execute, in the paper's terminology. Covering
// arguments inspect these (e.g. WCov(C, R) is the set of processes poised to
// Write() to R in configuration C).
struct PendingOp {
  ObjectId obj = -1;
  OpKind kind = OpKind::kRead;
  std::uint64_t arg0 = 0;  // Write value, or CAS expected value.
  std::uint64_t arg1 = 0;  // CAS desired value.

  bool is_write_to(ObjectId id) const { return kind == OpKind::kWrite && obj == id; }
  bool is_cas_on(ObjectId id) const { return kind == OpKind::kCas && obj == id; }
};

// Result of executing a shared-memory operation.
struct AccessResult {
  std::uint64_t value = 0;  // Read: current value; CAS: value before the CAS.
  bool cas_success = false;
};

// One executed step, as recorded in the execution trace.
struct StepRecord {
  std::uint64_t time = 0;  // Global logical step index.
  ProcessId pid = -1;
  ObjectId obj = -1;
  OpKind kind = OpKind::kRead;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint64_t result = 0;
  bool cas_success = false;
};

std::string to_string(const StepRecord& step);

}  // namespace aba::sim
