#include "lowerbound/tradeoff_auditor.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace aba::lowerbound {

std::string TradeoffReport::summary() const {
  std::ostringstream out;
  out << "n=" << n << " m=" << num_objects << " (" << num_registers
      << " registers, " << num_cas_objects << " CAS"
      << (has_writable_cas ? ", writable" : "") << ", "
      << (all_bounded ? "bounded" : "UNBOUNDED") << ")"
      << " t=" << t << " (read " << worst_read_steps << ", write "
      << worst_write_steps << ")"
      << " product=" << time_space_product << " vs bound n-1=" << lower_bound
      << " -> "
      << (consistent_with_theorem1 ? "consistent" : "below the bound");
  return out.str();
}

TradeoffAuditor::TradeoffAuditor(int n, WeakAbaFactory factory, Options options)
    : n_(n), factory_(std::move(factory)), options_(options) {
  ABA_ASSERT(n >= 2);
}

TradeoffReport TradeoffAuditor::audit() {
  TradeoffReport report;
  report.n = n_;
  report.lower_bound = static_cast<std::uint64_t>(n_ - 1);

  // ---- Static census: objects, kinds, boundedness. ----
  {
    sim::SimWorld world(n_);
    world.set_trace_enabled(false);
    auto inst = factory_(world);
    report.num_objects = static_cast<int>(world.num_objects());
    for (std::size_t i = 0; i < world.num_objects(); ++i) {
      const auto info = world.object_info(static_cast<sim::ObjectId>(i));
      if (!info.bound.is_bounded()) report.all_bounded = false;
      switch (info.kind) {
        case sim::ObjectKind::kRegister:
          ++report.num_registers;
          break;
        case sim::ObjectKind::kCas:
          ++report.num_cas_objects;
          report.has_cas = true;
          break;
        case sim::ObjectKind::kWritableCas:
          ++report.num_cas_objects;
          report.has_cas = true;
          report.has_writable_cas = true;
          break;
      }
    }
  }

  util::Xoshiro256 rng(options_.seed);

  // Scans all processes' poised ops, folding the per-object census maxima
  // into the report (the WCov/CCov quantities of Lemma 3).
  auto census = [&](sim::SimWorld& world) {
    std::map<sim::ObjectId, std::uint64_t> writes, cases;
    for (int pid = 0; pid < n_; ++pid) {
      const auto op = world.poised(pid);
      if (!op.has_value()) continue;
      if (op->kind == sim::OpKind::kWrite) ++writes[op->obj];
      if (op->kind == sim::OpKind::kCas) ++cases[op->obj];
    }
    for (const auto& [obj, count] : writes) {
      report.max_write_poise = std::max(report.max_write_poise, count);
      const auto c = cases.count(obj) ? cases.at(obj) : 0;
      report.max_total_poise = std::max(report.max_total_poise, count + c);
    }
    for (const auto& [obj, count] : cases) {
      report.max_cas_poise = std::max(report.max_cas_poise, count);
      const auto w = writes.count(obj) ? writes.at(obj) : 0;
      report.max_total_poise = std::max(report.max_total_poise, count + w);
    }
  };

  // ---- Dynamic search: randomized adversarial schedules. ----
  // Process 0 loops WeakWrite, readers loop WeakRead (the proofs' program).
  for (int round = 0; round < options_.random_rounds; ++round) {
    sim::SimWorld world(n_);
    world.set_trace_enabled(false);
    auto inst = factory_(world);
    std::vector<int> remaining(n_, options_.ops_per_round);

    auto runnable = [&](int pid) {
      return world.poised(pid).has_value() ||
             (world.is_idle(pid) && remaining[pid] > 0);
    };

    for (;;) {
      std::vector<int> candidates;
      for (int pid = 0; pid < n_; ++pid) {
        if (runnable(pid)) candidates.push_back(pid);
      }
      if (candidates.empty()) break;
      const int pid = candidates[rng.below(candidates.size())];
      if (world.poised(pid).has_value()) {
        world.step(pid);
        if (world.is_idle(pid)) {
          const std::uint64_t steps = world.steps_in_method(pid);
          if (pid == 0) {
            report.worst_write_steps = std::max(report.worst_write_steps, steps);
          } else {
            report.worst_read_steps = std::max(report.worst_read_steps, steps);
          }
        }
      } else {
        --remaining[pid];
        if (pid == 0) {
          inst->invoke_weak_write();
        } else {
          inst->invoke_weak_read(pid);
        }
      }
      census(world);
    }
  }

  // ---- Targeted contention round: everyone in flight, lock-step. ----
  // This drives CAS-retry loops to their worst case: in each sweep every
  // in-flight process executes exactly one step, so reads and CASes of
  // different processes interleave maximally.
  {
    sim::SimWorld world(n_);
    world.set_trace_enabled(false);
    auto inst = factory_(world);
    std::vector<int> remaining(n_, options_.ops_per_round);
    bool work_left = true;
    while (work_left) {
      work_left = false;
      for (int pid = 0; pid < n_; ++pid) {
        if (world.is_idle(pid) && remaining[pid] > 0) {
          --remaining[pid];
          if (pid == 0) {
            inst->invoke_weak_write();
          } else {
            inst->invoke_weak_read(pid);
          }
        }
      }
      census(world);
      for (int pid = 0; pid < n_; ++pid) {
        if (world.poised(pid).has_value()) {
          world.step(pid);
          work_left = true;
          if (world.is_idle(pid)) {
            const std::uint64_t steps = world.steps_in_method(pid);
            if (pid == 0) {
              report.worst_write_steps =
                  std::max(report.worst_write_steps, steps);
            } else {
              report.worst_read_steps = std::max(report.worst_read_steps, steps);
            }
          }
        }
        if (remaining[pid] > 0) work_left = true;
      }
      census(world);
    }
  }

  report.t = std::max(report.worst_read_steps, report.worst_write_steps);
  const std::uint64_t factor = report.has_writable_cas ? 2 : 1;
  report.time_space_product =
      factor * static_cast<std::uint64_t>(report.num_objects) * report.t;
  report.consistent_with_theorem1 =
      report.time_space_product >= report.lower_bound;
  return report;
}

}  // namespace aba::lowerbound
