// The WeakRead/WeakWrite interface of the lower-bound section.
//
// The paper's lower bounds (Section 2) do not need full linearizability;
// they only need the weak correctness property of the methods WeakRead()
// and WeakWrite(): a WeakRead r by process p returns True iff there exists a
// WeakWrite w such that w happens before r and every other WeakRead by p
// happens before w. Any linearizable ABA-detecting register yields these
// methods (DRead's flag / DWrite), which is how the engines below apply to
// every implementation in src/core.
//
// The engines drive instances step-by-step, so an instance exposes method
// *invocations* on its SimWorld rather than blocking calls. Process 0 is the
// writer; processes 1..n-1 are readers (the roles the proofs fix).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/sim_world.h"
#include "util/assert.h"

namespace aba::lowerbound {

class WeakAbaInstance {
 public:
  virtual ~WeakAbaInstance() = default;

  // Invokes one WeakWrite on process 0 (which must be idle). The method runs
  // until its first shared step is announced (or completes).
  virtual void invoke_weak_write() = 0;

  // Invokes one WeakRead on reader `pid` (1 <= pid < n).
  virtual void invoke_weak_read(int pid) = 0;

  // The flag returned by `pid`'s most recently *completed* WeakRead.
  virtual bool last_read_flag(int pid) const = 0;
};

// Builds a fresh instance whose shared objects live in `world`. Called once
// per (re-)execution; the engines replay schedules on fresh worlds.
using WeakAbaFactory =
    std::function<std::unique_ptr<WeakAbaInstance>(sim::SimWorld& world)>;

// Adapter: any ABA-detecting register implementation with
//   void dwrite(int p, uint64_t x);
//   std::pair<uint64_t,bool> dread(int q);
// becomes a WeakAba instance. WeakWrite writes a constant — the lower bound
// is already about a *single-writer 1-bit* register, so constant values are
// the hardest case: the implementation can't lean on value changes.
template <class Impl>
class WeakAbaAdapter : public WeakAbaInstance {
 public:
  WeakAbaAdapter(sim::SimWorld& world, std::unique_ptr<Impl> impl, int n)
      : world_(world), impl_(std::move(impl)), flags_(n, false) {}

  void invoke_weak_write() override {
    world_.invoke(0, [this] { impl_->dwrite(0, 0); });
  }

  void invoke_weak_read(int pid) override {
    ABA_CHECK(pid >= 1);
    world_.invoke(pid, [this, pid] { flags_[pid] = impl_->dread(pid).second; });
  }

  bool last_read_flag(int pid) const override { return flags_[pid]; }

  Impl& impl() { return *impl_; }

 private:
  sim::SimWorld& world_;
  std::unique_ptr<Impl> impl_;
  std::vector<bool> flags_;
};

template <class Impl>
WeakAbaFactory make_weak_aba_factory(int n, typename Impl::Options options = {}) {
  return [n, options](sim::SimWorld& world) -> std::unique_ptr<WeakAbaInstance> {
    return std::make_unique<WeakAbaAdapter<Impl>>(
        world, std::make_unique<Impl>(world, n, options), n);
  };
}

}  // namespace aba::lowerbound
