// CoveringAdversary — Lemma 1's covering construction (Figure 1), executable.
//
// Theorem 1(a): any solo-terminating single-writer 1-bit ABA-detecting
// register from m bounded *registers* needs m >= n-1. The proof is an
// inductive adversary: given k-1 covered registers it either extends the
// cover with reader p_k, or — if p_k can complete a WeakRead writing only
// inside the covered set R — it uses the pigeonhole principle on register
// configurations reg(D_i) to build two configurations that p_k cannot
// distinguish, one p_k-clean and one p_k-dirty, contradicting correctness.
//
// This class runs that construction against ANY implementation plugged in as
// a WeakAbaFactory:
//   * against a correct implementation (e.g. Figure 4), every probe escapes
//     the covered set and the adversary reports the full cover of n-1
//     distinct registers — the space lower bound "witnessed";
//   * against an under-provisioned implementation (e.g. the naive
//     bounded-tag register with m = 1), probes never escape, a register-
//     configuration repeat appears, and the adversary emits a concrete
//     witness execution in which a WeakRead returns the wrong flag — the
//     proof's contradiction materialized as a failing run;
//   * against an implementation using *unbounded* registers, configurations
//     never repeat and the adversary reports that boundedness failed — the
//     separation between bounded and unbounded base objects, observed.
//
// Configurations are identified with the scripts (action sequences) that
// reach them from the initial configuration; probes run on throwaway replays
// so the main chain is never perturbed — exactly the proof's use of
// Exec(C, sigma) on chosen schedules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lowerbound/weak_aba.h"
#include "sim/sim_world.h"

namespace aba::lowerbound {

// One driver action; a script is a replayable sequence of these.
struct Act {
  enum class Kind : std::uint8_t { kInvokeWrite, kInvokeRead, kStep };
  Kind kind;
  int pid = 0;
};

struct CoveringReport {
  // Outcome.
  bool violation_found = false;
  bool cover_reached = false;
  bool budget_exhausted = false;   // Iteration/replay budget hit (suggests
                                   // unbounded registers or too-small budget).
  int max_cover = 0;               // Largest set of distinct covered registers.
  int target_cover = 0;

  // Violation witness, when found.
  std::string violation_detail;
  bool clean_flag = false;  // Flag returned from the p-clean configuration.
  bool dirty_flag = false;  // Flag returned from the p-dirty configuration.

  // Statistics.
  std::uint64_t replays = 0;
  std::uint64_t chain_iterations = 0;
  std::uint64_t probes = 0;

  // Human-readable construction trace (Figure 1 narrated).
  std::vector<std::string> log;
};

class CoveringAdversary {
 public:
  struct Options {
    int max_iterations_per_level = 128;  // Chain length before giving up.
    std::uint64_t max_replays = 50000;
    bool verbose_log = true;
  };

  CoveringAdversary(int n, WeakAbaFactory factory, Options options);
  CoveringAdversary(int n, WeakAbaFactory factory)
      : CoveringAdversary(n, std::move(factory), Options()) {}

  // Runs the construction aiming for a cover of `target_k` distinct
  // registers (Theorem 1(a) uses target_k = n-1).
  CoveringReport run(int target_k);

 private:
  struct Runner {
    std::unique_ptr<sim::SimWorld> world;
    std::unique_ptr<WeakAbaInstance> inst;
  };

  Runner make_runner() const;
  void apply(Runner& runner, const Act& act) const;
  Runner replay(const std::vector<Act>& script) const;

  // Recursive inductive step; extends `script` in place on `live`.
  // Returns true iff k registers are covered by readers 1..k at the end of
  // `script` (with process 0 idle); false means a violation or budget stop
  // was recorded in report_.
  bool extend_cover(Runner& live, std::vector<Act>& script, int k);

  struct ProbeResult {
    bool escaped = false;           // Poised to write outside the cover.
    std::vector<Act> path;          // Actions taken by the probe.
  };
  // Runs reader `probe_pid` solo from the configuration reached by `script`,
  // stopping when it is poised to write outside `covered` or completes.
  ProbeResult probe(const std::vector<Act>& script, int probe_pid,
                    const std::vector<sim::ObjectId>& covered);

  void log(std::string line);

  int n_;
  WeakAbaFactory factory_;
  Options options_;
  CoveringReport report_;
};

}  // namespace aba::lowerbound
