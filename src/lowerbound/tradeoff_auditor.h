// TradeoffAuditor — the measurable core of the time-space tradeoff
// (Lemmas 2-3, Theorem 1(b)/(c), Corollary 1, Appendix B.2).
//
// Theorem 1(b)/(c): a deterministic wait-free single-writer 1-bit
// ABA-detecting register from m bounded CAS objects and registers with
// worst-case step complexity t satisfies m*t >= n-1 (and 2mt >= n-1 when the
// objects are writable CAS). The proof constructs a reachable configuration
// with a P-successful schedule in which every reader is poised somewhere,
// while Lemma 2 caps how many processes can be poised on any single object
// at t (per operation class); counting then yields the bound.
//
// The auditor measures, for any implementation plugged in as a
// WeakAbaFactory:
//   m                — number of base objects and their kinds/boundedness,
//   t                — worst-case observed step complexity of WeakRead and
//                      WeakWrite over adversarial and randomized schedules,
//   poise census     — the largest number of processes simultaneously poised
//                      to access one object (split into Write/CAS classes),
//                      over all configurations visited — the quantity
//                      WCov/CCov that Lemma 3(iii) bounds by t,
// and evaluates the paper's inequality. Bounded implementations must come
// out consistent (product >= n-1); unbounded ones (Moir-style tags) violate
// the numeric inequality, which is precisely the paper's separation between
// bounded and unbounded base objects.
#pragma once

#include <cstdint>
#include <string>

#include "lowerbound/weak_aba.h"

namespace aba::lowerbound {

struct TradeoffReport {
  int n = 0;
  int num_objects = 0;  // m
  bool all_bounded = true;
  bool has_writable_cas = false;
  bool has_cas = false;
  int num_registers = 0;
  int num_cas_objects = 0;

  std::uint64_t worst_read_steps = 0;
  std::uint64_t worst_write_steps = 0;
  std::uint64_t t = 0;  // max(worst_read_steps, worst_write_steps)

  // Maximum simultaneous poise observed on a single object.
  std::uint64_t max_write_poise = 0;  // max |WCov(C, R)| over C, R.
  std::uint64_t max_cas_poise = 0;    // max |CCov(C, R)| over C, R.
  std::uint64_t max_total_poise = 0;

  // m * t, doubled when writable CAS objects are in play (Theorem 1(c)).
  std::uint64_t time_space_product = 0;
  std::uint64_t lower_bound = 0;  // n - 1.
  // For bounded implementations the product must dominate the bound.
  bool consistent_with_theorem1 = false;

  std::string summary() const;
};

class TradeoffAuditor {
 public:
  struct Options {
    int random_rounds = 32;        // Randomized schedules for worst-t search.
    int ops_per_round = 24;        // Method calls per process per round.
    std::uint64_t seed = 12345;
  };

  TradeoffAuditor(int n, WeakAbaFactory factory, Options options);
  TradeoffAuditor(int n, WeakAbaFactory factory)
      : TradeoffAuditor(n, std::move(factory), Options()) {}

  TradeoffReport audit();

 private:
  int n_;
  WeakAbaFactory factory_;
  Options options_;
};

}  // namespace aba::lowerbound
