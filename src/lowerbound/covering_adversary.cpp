#include "lowerbound/covering_adversary.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/assert.h"

namespace aba::lowerbound {

namespace {

std::string describe_objects(const sim::SimWorld& world,
                             const std::vector<sim::ObjectId>& ids) {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out << ", ";
    out << world.object_info(ids[i]).name << "#" << ids[i];
  }
  out << "}";
  return out.str();
}

}  // namespace

CoveringAdversary::CoveringAdversary(int n, WeakAbaFactory factory,
                                     Options options)
    : n_(n), factory_(std::move(factory)), options_(options) {
  ABA_ASSERT(n >= 2);
}

void CoveringAdversary::log(std::string line) {
  if (options_.verbose_log) report_.log.push_back(std::move(line));
}

CoveringAdversary::Runner CoveringAdversary::make_runner() const {
  Runner runner;
  runner.world = std::make_unique<sim::SimWorld>(n_);
  runner.world->set_trace_enabled(false);
  runner.inst = factory_(*runner.world);
  return runner;
}

void CoveringAdversary::apply(Runner& runner, const Act& act) const {
  switch (act.kind) {
    case Act::Kind::kInvokeWrite:
      runner.inst->invoke_weak_write();
      break;
    case Act::Kind::kInvokeRead:
      runner.inst->invoke_weak_read(act.pid);
      break;
    case Act::Kind::kStep:
      runner.world->step(act.pid);
      break;
  }
}

CoveringAdversary::Runner CoveringAdversary::replay(
    const std::vector<Act>& script) const {
  Runner runner = make_runner();
  for (const Act& act : script) apply(runner, act);
  return runner;
}

CoveringAdversary::ProbeResult CoveringAdversary::probe(
    const std::vector<Act>& script, int probe_pid,
    const std::vector<sim::ObjectId>& covered) {
  ++report_.probes;
  ++report_.replays;
  Runner runner = replay(script);
  ProbeResult result;
  result.path.push_back({Act::Kind::kInvokeRead, probe_pid});
  runner.inst->invoke_weak_read(probe_pid);
  while (!runner.world->is_idle(probe_pid)) {
    const auto op = runner.world->poised(probe_pid);
    ABA_ASSERT(op.has_value());
    if (op->kind == sim::OpKind::kWrite &&
        std::find(covered.begin(), covered.end(), op->obj) == covered.end()) {
      result.escaped = true;  // Poised to write outside the covered set.
      return result;
    }
    result.path.push_back({Act::Kind::kStep, probe_pid});
    runner.world->step(probe_pid);
  }
  // lambda = lambda': the WeakRead completed writing only inside the cover.
  result.escaped = false;
  return result;
}

bool CoveringAdversary::extend_cover(Runner& live, std::vector<Act>& script,
                                     int k) {
  if (k == 0) return true;

  struct FailedIteration {
    std::size_t ci_prefix = 0;   // Script length at C_i.
    std::size_t beta_end = 0;    // Script length just after the block-write.
    std::vector<Act> probe_path; // lambda: the probe's solo WeakRead.
    std::vector<std::uint64_t> d_snapshot;  // reg(D_i).
  };
  std::vector<FailedIteration> failures;

  auto record_steps_to_completion = [&](int pid) {
    while (!live.world->is_idle(pid)) {
      live.world->step(pid);
      script.push_back({Act::Kind::kStep, pid});
    }
  };

  for (int iteration = 1; iteration <= options_.max_iterations_per_level;
       ++iteration) {
    ++report_.chain_iterations;
    if (report_.replays > options_.max_replays) {
      report_.budget_exhausted = true;
      log("replay budget exhausted");
      return false;
    }

    // Inductive hypothesis: cover k-1 registers with readers 1..k-1.
    if (!extend_cover(live, script, k - 1)) return false;

    // C_i: readers 1..k-1 are poised to write k-1 distinct registers.
    std::vector<sim::ObjectId> covered;
    for (int pid = 1; pid < k; ++pid) {
      const auto op = live.world->poised(pid);
      ABA_ASSERT_MSG(op.has_value() && op->kind == sim::OpKind::kWrite,
                     "cover invariant: reader must be poised to write");
      covered.push_back(op->obj);
    }
    ABA_ASSERT_MSG(
        std::set<sim::ObjectId>(covered.begin(), covered.end()).size() ==
            covered.size(),
        "cover invariant: covered registers must be distinct");

    // Probe reader k solo from C_i on a throwaway replay.
    const std::size_t ci_prefix = script.size();
    ProbeResult probe_result = probe(script, k, covered);

    if (probe_result.escaped) {
      // Extend the live cover with reader k's poised write.
      for (const Act& act : probe_result.path) {
        apply(live, act);
        script.push_back(act);
      }
      const auto op = live.world->poised(k);
      ABA_ASSERT(op.has_value() && op->kind == sim::OpKind::kWrite);
      covered.push_back(op->obj);
      report_.max_cover = std::max(report_.max_cover, k);
      log("level k=" + std::to_string(k) + " iteration " +
          std::to_string(iteration) + ": probe by p" + std::to_string(k) +
          " escapes; cover now " + describe_objects(*live.world, covered));
      return true;
    }

    log("level k=" + std::to_string(k) + " iteration " +
        std::to_string(iteration) + ": probe by p" + std::to_string(k) +
        " completed inside cover " + describe_objects(*live.world, covered));

    // Block-write beta: each covering reader takes its one (write) step.
    for (int pid = 1; pid < k; ++pid) {
      live.world->step(pid);
      script.push_back({Act::Kind::kStep, pid});
    }
    const std::size_t beta_end = script.size();
    FailedIteration failure;
    failure.ci_prefix = ci_prefix;
    failure.beta_end = beta_end;
    failure.probe_path = std::move(probe_result.path);
    failure.d_snapshot = live.world->memory_snapshot();  // reg(D_i).

    // Pigeonhole: look for an earlier failed iteration with equal reg(D).
    for (const FailedIteration& earlier : failures) {
      if (earlier.d_snapshot != failure.d_snapshot) continue;

      log("register configurations repeat: reg(D_i) = reg(D_j); building "
          "clean/dirty witnesses for p" + std::to_string(k));

      // Witness scripts. sigma is the recorded chain from just after the
      // earlier block-write up to (and including) the current block-write —
      // the proof's gamma_i alpha_{i+1} beta ... alpha_j beta. It involves
      // only processes 0..k-1, so it replays verbatim after the probe.
      std::vector<Act> w1(script.begin(),
                          script.begin() + static_cast<std::ptrdiff_t>(
                                               earlier.ci_prefix));
      w1.insert(w1.end(), earlier.probe_path.begin(), earlier.probe_path.end());
      w1.insert(w1.end(),
                script.begin() + static_cast<std::ptrdiff_t>(earlier.ci_prefix),
                script.begin() + static_cast<std::ptrdiff_t>(earlier.beta_end));
      std::vector<Act> w2 = w1;
      w2.insert(w2.end(),
                script.begin() + static_cast<std::ptrdiff_t>(earlier.beta_end),
                script.begin() + static_cast<std::ptrdiff_t>(beta_end));

      // D'_i: must be indistinguishable from D_i on the registers.
      ++report_.replays;
      Runner clean_runner = replay(w1);
      ABA_ASSERT_MSG(clean_runner.world->memory_snapshot() == earlier.d_snapshot,
                     "reg(D'_i) must equal reg(D_i): probe writes were "
                     "obliterated by the block-write");
      clean_runner.inst->invoke_weak_read(k);
      clean_runner.world->run_to_completion(k);
      const bool clean_flag = clean_runner.inst->last_read_flag(k);

      // D'_j: same registers, same probe state, but a WeakWrite completed
      // in sigma with no intervening WeakRead by the probe.
      ++report_.replays;
      Runner dirty_runner = replay(w2);
      ABA_ASSERT_MSG(dirty_runner.world->memory_snapshot() == failure.d_snapshot,
                     "reg(D'_j) must equal reg(D_j)");
      dirty_runner.inst->invoke_weak_read(k);
      dirty_runner.world->run_to_completion(k);
      const bool dirty_flag = dirty_runner.inst->last_read_flag(k);

      report_.clean_flag = clean_flag;
      report_.dirty_flag = dirty_flag;
      if (clean_flag || !dirty_flag) {
        report_.violation_found = true;
        std::ostringstream detail;
        detail << "WeakRead by p" << k << " returned "
               << (clean_flag ? "True" : "False")
               << " from the p-clean configuration and "
               << (dirty_flag ? "True" : "False")
               << " from the p-dirty configuration; correctness requires "
                  "False/True. The two configurations have identical register "
                  "contents and identical probe-local state, so a bounded-"
                  "register implementation with this cover structure cannot "
                  "be correct (Lemma 1).";
        report_.violation_detail = detail.str();
        log("VIOLATION: " + report_.violation_detail);
        return false;
      }
      // Deterministic implementations cannot reach this point: the two
      // configurations agree on every register and on the probe's local
      // state, so the flags must be equal — and then one of them is wrong.
      ABA_ASSERT_MSG(false,
                     "clean/dirty witnesses both returned correct flags from "
                     "indistinguishable configurations");
    }
    failures.push_back(std::move(failure));

    // gamma_i: covering readers finish their WeakReads, then process 0
    // completes exactly one WeakWrite. Restores quiescence (Q_i).
    for (int pid = 1; pid < k; ++pid) record_steps_to_completion(pid);
    live.inst->invoke_weak_write();
    script.push_back({Act::Kind::kInvokeWrite, 0});
    record_steps_to_completion(0);
  }

  report_.budget_exhausted = true;
  log("level k=" + std::to_string(k) +
      ": no probe escape and no register-configuration repeat within the "
      "iteration budget — base objects appear unbounded (or budget too small)");
  return false;
}

CoveringReport CoveringAdversary::run(int target_k) {
  ABA_ASSERT(target_k >= 1 && target_k <= n_ - 1);
  report_ = CoveringReport{};
  report_.target_cover = target_k;

  Runner live = make_runner();
  ++report_.replays;

  // Lemma 1 is about implementations from registers.
  for (std::size_t i = 0; i < live.world->num_objects(); ++i) {
    const auto info = live.world->object_info(static_cast<sim::ObjectId>(i));
    ABA_ASSERT_MSG(info.kind == sim::ObjectKind::kRegister,
                   "covering adversary applies to register-only "
                   "implementations (Theorem 1(a))");
  }

  std::vector<Act> script;
  if (extend_cover(live, script, target_k)) {
    report_.cover_reached = true;
    log("cover of " + std::to_string(target_k) +
        " distinct registers reached; Theorem 1(a)'s bound witnessed");
  }
  return report_;
}

}  // namespace aba::lowerbound
