// Leased reclaimers — crash-robust hazard-pointer and epoch reclamation
// whose bookkeeping lives in the shared arena, covered by pid leases.
//
// The in-process reclaimers (reclaim/hazard_pointer.h, reclaim/epoch.h)
// keep retired/free lists in thread-private heap memory: correct across
// threads, but a SIGKILLed *process* takes its lists to the grave — every
// node it owned leaks forever and its published guards/announcements pin
// (hazard) or freeze (epoch) the survivors' reclamation permanently. The
// leased variants move all of that state into the segment:
//
//   links[pool]          — intrusive next-words; a node is on exactly one
//                          list (free, retired/limbo, or quarantine), so
//                          one word per node carries every list.
//   per-lease heads      — free_head[p], retired_head[p] (+ counters):
//                          single-owner lists. Only lease-holder p touches
//                          them while p is alive; after the pid-lease
//                          confirm CAS (pid_lease.h) exactly one survivor
//                          owns them instead and splices them into its own.
//   in_flight[p]         — allocate() records the node it is *about to*
//                          unlink from the free list before unlinking it,
//                          and the structure's commit(p) hook clears it
//                          after the linking CAS. An expropriator that finds
//                          the marker set checks membership: still on the
//                          free list means the crash hit between intent and
//                          unlink (node is safe in the splice); otherwise
//                          the node may or may not be reachable from the
//                          structure — it is QUARANTINED, never freed, so a
//                          kill landing between the linking CAS and the
//                          bookkeeping store can never cause a double-free.
//                          Cost: at most one pool slot per crash. The window
//                          is first-class for the crash harnesses: allocate
//                          moves the process to ReclaimPhase::kMidAllocate
//                          and commit() parks at kParkInFlight before
//                          clearing the marker, so both the fork/SIGKILL
//                          driver and the model checker's crash grants can
//                          land a kill exactly between the linking CAS and
//                          the in_flight clear — the one window where the
//                          quarantine rule is load-bearing.
//   in_retire[p]         — the mirror marker around retire(): set before
//                          the node joins the retired list, cleared after.
//                          The expropriator re-homes a marked node that
//                          never made it onto the list.
//
// Recovery bound: a death is suspected at the first survivor scan that
// probes it and confirmed (then fully drained — guards cleared, lists
// spliced, markers resolved, lease reaped) at the second, so every node a
// dead process owned is back in circulation within TWO survivor scans —
// except the at-most-one quarantined in-flight node, which is the price of
// never double-freeing. The epoch variant additionally clears the dead
// process's frozen announcement, so the global epoch advances again and the
// spliced limbo drains by the normal two-advance rule.
//
// Suspicion is driven by BOTH liveness probes and heartbeat staleness: a
// scan suspects a peer whose pid looks gone OR whose heartbeat has not
// moved across this scanner's whole previous-to-current scan interval (each
// scanner remembers the last heartbeat it saw per peer). Staleness can only
// ever *suspect* — confirmation still requires the pid definitively gone
// AND the heartbeat unchanged since suspicion — so a live-but-slow process
// is vetoed back to kLive at its next entry point instead of being seized
// (the two-phase handshake in pid_lease.h). The staleness edge is what
// makes suspicion reachable on hosts where "gone" is rare or meaningless
// (the simulator, where a crashed process simply never runs again), and it
// is the decision the kStaleConfirm lease mutant removes.
//
// Host/Env templating: both reclaimers are templated over the platform Env
// (default ShmPlatform::Env) and derive the lease-table type from
// Env::leases, so the same protocol code runs over the production shm
// arena, a plain heap arena (shm/lease_hosts.h, for single-process
// determinism tests), or the simulator's arena + SimPlatform-hosted lease
// table (sim/sim_lease.h, where the model checker searches the
// suspect/confirm/veto CASes as first-class steps). An Env may carry a
// `mutation` field (reclaim::LeaseMutation) — the test-only seam the
// lease-mutant zoo uses; envs without the field get shipped behavior.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "reclaim/death.h"
#include "reclaim/mutant.h"
#include "reclaim/reclaimer.h"
#include "shm/pid_lease.h"
#include "shm/shm_platform.h"
#include "util/assert.h"

namespace aba::shm {

namespace detail {

// The test-only mutation seam: an Env that carries a LeaseMutation opts in;
// every production Env (ShmPlatform::Env) has no such field and compiles
// straight to kNone.
template <class Env>
constexpr reclaim::LeaseMutation mutation_of(const Env& env) {
  if constexpr (requires { env.mutation; }) {
    return env.mutation;
  } else {
    return reclaim::LeaseMutation::kNone;
  }
}

// Arena-resident intrusive lists over one links[] array. Heads and links
// store index+1; 0 is the empty list / null. All operations are issued by
// the list's single owner (the lease holder, or the confirmed expropriator).
//
// Every traversal here is bounded by the pool size. A well-formed list can
// never hold more than `pool` nodes, so the caps cost nothing in the good
// case — but the link words live in the shared segment, and a peer that
// crashed mid-update (or a buggy peer) can leave a cycle behind. A survivor
// draining that peer's lists must terminate regardless; an unbounded walk
// over corrupt links would hang it inside crash recovery.
class NodeLists {
 public:
  template <class Arena>
  NodeLists(Arena& arena, const char* tag, std::size_t pool)
      : links_(arena.template place_array<std::atomic<std::uint64_t>>(tag,
                                                                      pool)),
        pool_(static_cast<std::uint64_t>(pool)) {}

  void push(std::atomic<std::uint64_t>& head, std::uint64_t idx) {
    links_[idx].store(head.load(std::memory_order_seq_cst),
                      std::memory_order_seq_cst);
    head.store(idx + 1, std::memory_order_seq_cst);
  }

  // Push for heads with MULTIPLE writers (the global quarantine: two
  // survivors confirming different victims push concurrently). The list is
  // push-only, so a CAS on the head is all the coordination needed.
  void push_shared(std::atomic<std::uint64_t>& head, std::uint64_t idx) {
    std::uint64_t h = head.load(std::memory_order_seq_cst);
    do {
      links_[idx].store(h, std::memory_order_seq_cst);
    } while (!head.compare_exchange_weak(h, idx + 1, std::memory_order_seq_cst,
                                         std::memory_order_seq_cst));
  }

  std::optional<std::uint64_t> pop(std::atomic<std::uint64_t>& head) {
    const std::uint64_t h = head.load(std::memory_order_seq_cst);
    if (h == 0) return std::nullopt;
    head.store(links_[h - 1].load(std::memory_order_seq_cst),
               std::memory_order_seq_cst);
    return h - 1;
  }

  bool contains(const std::atomic<std::uint64_t>& head,
                std::uint64_t idx) const {
    std::uint64_t steps = 0;
    for (std::uint64_t w = head.load(std::memory_order_seq_cst);
         w != 0 && steps <= pool_;
         w = links_[w - 1].load(std::memory_order_seq_cst), ++steps) {
      if (w - 1 == idx) return true;
    }
    return false;
  }

  // Moves every node of `from` onto `to`; returns how many moved. Bounded:
  // a corrupt `from` (cyclic links from a crashed peer) yields at most
  // `pool` moves instead of looping forever.
  std::uint64_t splice(std::atomic<std::uint64_t>& from,
                       std::atomic<std::uint64_t>& to) {
    std::uint64_t moved = 0;
    while (moved < pool_) {
      auto idx = pop(from);
      if (!idx) break;
      push(to, *idx);
      ++moved;
    }
    return moved;
  }

  void fingerprint_into(std::size_t pool, reclaim::Fingerprint& fp) const {
    fp.mix(static_cast<std::uint64_t>(pool));
    for (std::size_t i = 0; i < pool; ++i) {
      fp.mix(links_[i].load(std::memory_order_seq_cst));
    }
  }

 private:
  std::atomic<std::uint64_t>* links_;
  std::uint64_t pool_;
};

// The bookkeeping shared by both leased reclaimers: per-lease free and
// retired lists (with counters), the two crash markers, and the global
// quarantine. Placed in one deterministic burst so creator and attachers
// agree on offsets.
struct SharedBook {
  // The batched retire hand-off's staging window, per lease. A retire_batch
  // chunk is recorded here — in the segment — BEFORE any of it moves onto
  // the retired list, so a kill mid-drain leaves every node either staged
  // (swept by drain_dead, the suspect/confirm path) or already retired,
  // never unlisted. Bounded like the quarantine: at most kPendingCap nodes
  // can be parked in a dead process's window.
  static constexpr std::size_t kPendingCap = 16;

  NodeLists lists;
  std::atomic<std::uint64_t>* free_head;      // [n]
  std::atomic<std::uint64_t>* free_count;     // [n]
  std::atomic<std::uint64_t>* retired_head;   // [n]
  std::atomic<std::uint64_t>* retired_count;  // [n]
  std::atomic<std::uint64_t>* in_flight;      // [n], idx+1 or 0.
  std::atomic<std::uint64_t>* in_retire;      // [n], idx+1 or 0.
  std::atomic<std::uint64_t>* pending;        // [n * kPendingCap], idx+1 or 0.
  std::atomic<std::uint64_t>* pending_count;  // [n], staged chunk size.
  std::atomic<std::uint64_t>* quarantine_head;
  std::atomic<std::uint64_t>* quarantine_count;
  std::atomic<std::uint64_t>* expropriations;
  std::size_t pool = 0;
  reclaim::LeaseMutation mutation = reclaim::LeaseMutation::kNone;

  template <class Env>
  SharedBook(Env& env, int n, const reclaim::FreeLists& initial)
      : lists(*env.arena, "book.links", pool_of(initial)),
        pool(pool_of(initial)),
        mutation(mutation_of(env)) {
    auto& a = *env.arena;
    const auto count = static_cast<std::size_t>(n);
    free_head = a.template place_array<std::atomic<std::uint64_t>>(
        "book.free_head", count);
    free_count = a.template place_array<std::atomic<std::uint64_t>>(
        "book.free_count", count);
    retired_head = a.template place_array<std::atomic<std::uint64_t>>(
        "book.retired_head", count);
    retired_count = a.template place_array<std::atomic<std::uint64_t>>(
        "book.retired_count", count);
    in_flight = a.template place_array<std::atomic<std::uint64_t>>(
        "book.in_flight", count);
    in_retire = a.template place_array<std::atomic<std::uint64_t>>(
        "book.in_retire", count);
    pending = a.template place_array<std::atomic<std::uint64_t>>(
        "book.pending", count * kPendingCap);
    pending_count = a.template place_array<std::atomic<std::uint64_t>>(
        "book.pending_count", count);
    quarantine_head =
        a.template place<std::atomic<std::uint64_t>>("book.quarantine_head");
    quarantine_count =
        a.template place<std::atomic<std::uint64_t>>("book.quarantine_count");
    expropriations =
        a.template place<std::atomic<std::uint64_t>>("book.expropriations");
    if (env.owner) {
      for (int p = 0; p < n; ++p) {
        for (const std::uint64_t idx : initial[static_cast<std::size_t>(p)]) {
          lists.push(free_head[p], idx);
          free_count[p].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  // The pool spans every index the structure may hand to retire(), not just
  // the initially-free ones — MsQueue's dummy node starts on no free list
  // but is retired (and must have a links_/stamps_ entry) once dequeued
  // past. Size by the highest index, so links_[idx] can never alias the
  // next arena placement.
  static std::size_t pool_of(const reclaim::FreeLists& initial) {
    std::size_t pool = 0;
    for (const auto& list : initial) {
      for (const std::uint64_t idx : list) {
        pool = std::max(pool, static_cast<std::size_t>(idx) + 1);
      }
    }
    return pool;
  }

  // allocate()'s crash-safe pop: intent marker BEFORE the unlink.
  std::optional<std::uint64_t> allocate_from(int p) {
    const std::uint64_t h = free_head[p].load(std::memory_order_seq_cst);
    if (h == 0) return std::nullopt;
    in_flight[p].store(h, std::memory_order_seq_cst);
    auto popped = lists.pop(free_head[p]);
    free_count[p].fetch_sub(1, std::memory_order_relaxed);
    return popped;
  }

  void retire_onto(int p, std::uint64_t idx) {
    lists.push(retired_head[p], idx);
    retired_count[p].fetch_add(1, std::memory_order_relaxed);
  }

  void free_node(int p, std::uint64_t idx) {
    lists.push(free_head[p], idx);
    free_count[p].fetch_add(1, std::memory_order_relaxed);
  }

  // Stages a retire_batch chunk (count <= kPendingCap) in p's pending
  // window: the crash-safe point of record before the drain moves nodes
  // onto the retired list one by one.
  void stage_pending(int p, const std::uint64_t* idxs, std::size_t count) {
    ABA_ASSERT(count <= kPendingCap);
    for (std::size_t i = 0; i < count; ++i) {
      pending[static_cast<std::size_t>(p) * kPendingCap + i].store(
          idxs[i] + 1, std::memory_order_seq_cst);
    }
    pending_count[p].store(count, std::memory_order_seq_cst);
  }

  // Slot i of p's staged chunk reached the retired list; clear it so a
  // later sweep cannot double-record it.
  void clear_pending_slot(int p, std::size_t i) {
    pending[static_cast<std::size_t>(p) * kPendingCap + i].store(
        0, std::memory_order_seq_cst);
  }

  void finish_pending(int p) {
    pending_count[p].store(0, std::memory_order_seq_cst);
  }

  // Resolves a dead q's crash markers and splices its lists into p's.
  // Caller (the confirm winner) must have exclusive ownership of q.
  void drain_dead(int p, int q) {
    // Half-finished retire: the marked node may never have reached q's
    // retired list — re-home it there before the splice if so.
    const std::uint64_t mr = in_retire[q].load(std::memory_order_seq_cst);
    if (mr != 0) {
      if (!lists.contains(retired_head[q], mr - 1)) {
        lists.push(retired_head[q], mr - 1);
        retired_count[q].fetch_add(1, std::memory_order_relaxed);
      }
      in_retire[q].store(0, std::memory_order_seq_cst);
    }
    // Half-finished retire_batch: every still-set pending slot names a node
    // that was unlinked by q but may never have reached its retired list —
    // the contains() probe filters the one the crash caught between the
    // list push and the slot clear. Bounded work: at most kPendingCap
    // probes per crash.
    const std::uint64_t pc = pending_count[q].load(std::memory_order_seq_cst);
    if (pc != 0) {
      const std::size_t staged =
          pc < kPendingCap ? static_cast<std::size_t>(pc) : kPendingCap;
      for (std::size_t i = 0; i < staged; ++i) {
        auto& slot = pending[static_cast<std::size_t>(q) * kPendingCap + i];
        const std::uint64_t w = slot.load(std::memory_order_seq_cst);
        if (w != 0) {
          if (!lists.contains(retired_head[q], w - 1)) {
            lists.push(retired_head[q], w - 1);
            retired_count[q].fetch_add(1, std::memory_order_relaxed);
          }
          slot.store(0, std::memory_order_seq_cst);
        }
      }
      pending_count[q].store(0, std::memory_order_seq_cst);
    }
    // Half-finished allocate: still on the free list means the crash hit
    // between intent and unlink (the splice below recovers it); otherwise
    // the node may be linked into the structure — quarantine, never free.
    const std::uint64_t mf = in_flight[q].load(std::memory_order_seq_cst);
    if (mf != 0) {
      if (!lists.contains(free_head[q], mf - 1)) {
        if (mutation == reclaim::LeaseMutation::kNoQuarantine) {
          // The mutant: put the ambiguous node straight back into
          // circulation. If the kill landed after the linking CAS the node
          // is still reachable from the structure — reallocating it is the
          // double-free the quarantine exists to prevent.
          lists.push(free_head[q], mf - 1);
          free_count[q].fetch_add(1, std::memory_order_relaxed);
        } else {
          // The quarantine head is the one list with concurrent pushers
          // (confirm winners of *different* victims), so it takes the CAS
          // push, not the single-owner one.
          lists.push_shared(*quarantine_head, mf - 1);
          quarantine_count->fetch_add(1, std::memory_order_relaxed);
        }
      }
      in_flight[q].store(0, std::memory_order_seq_cst);
    }
    const std::uint64_t moved_retired =
        lists.splice(retired_head[q], retired_head[p]);
    retired_count[q].store(0, std::memory_order_relaxed);
    retired_count[p].fetch_add(moved_retired, std::memory_order_relaxed);
    const std::uint64_t moved_free = lists.splice(free_head[q], free_head[p]);
    free_count[q].store(0, std::memory_order_relaxed);
    free_count[p].fetch_add(moved_free, std::memory_order_relaxed);
    expropriations->fetch_add(1, std::memory_order_relaxed);
  }

  reclaim::ReclaimStats stats_base(int n) const {
    reclaim::ReclaimStats s;
    s.pool_size = pool;
    for (int p = 0; p < n; ++p) {
      s.retired_unreclaimed += static_cast<std::size_t>(
          retired_count[p].load(std::memory_order_relaxed));
      s.free_nodes += static_cast<std::size_t>(
          free_count[p].load(std::memory_order_relaxed));
      if (in_flight[p].load(std::memory_order_relaxed) != 0) ++s.in_flight;
    }
    s.quarantined = static_cast<std::size_t>(
        quarantine_count->load(std::memory_order_relaxed));
    s.expropriations = static_cast<std::size_t>(
        expropriations->load(std::memory_order_relaxed));
    return s;
  }

  // Every book word that decides future allocations, scans and drains —
  // folded into the reclaimer fingerprint so the model checker's DPOR state
  // key can never merge two configurations whose reclamation futures
  // differ. All plain-atomic reads: safe from the engine thread.
  void fingerprint_into(int n, reclaim::Fingerprint& fp) const {
    lists.fingerprint_into(pool, fp);
    const auto count = static_cast<std::size_t>(n);
    for (std::size_t p = 0; p < count; ++p) {
      fp.mix(free_head[p].load(std::memory_order_seq_cst));
      fp.mix(free_count[p].load(std::memory_order_seq_cst));
      fp.mix(retired_head[p].load(std::memory_order_seq_cst));
      fp.mix(retired_count[p].load(std::memory_order_seq_cst));
      fp.mix(in_flight[p].load(std::memory_order_seq_cst));
      fp.mix(in_retire[p].load(std::memory_order_seq_cst));
      fp.mix(pending_count[p].load(std::memory_order_seq_cst));
      for (std::size_t i = 0; i < kPendingCap; ++i) {
        fp.mix(pending[p * kPendingCap + i].load(std::memory_order_seq_cst));
      }
    }
    fp.mix(quarantine_head->load(std::memory_order_seq_cst));
    fp.mix(quarantine_count->load(std::memory_order_seq_cst));
    fp.mix(expropriations->load(std::memory_order_seq_cst));
  }
};

}  // namespace detail

// ------------------------------------------------------- hazard (leased)

// Michael-style hazard pointers over the shared arena. kCached keeps slots
// published across operations (the guard-caching mode of PR 4); the leased
// variant's cache is process-local, so after a crash the expropriator reads
// the authoritative shared slots, not the cache.
template <bool kCached, class Env = ShmPlatform::Env>
class LeasedHazardReclaimerT {
 public:
  using EnvT = Env;
  using Leases = std::remove_pointer_t<decltype(Env::leases)>;

  static constexpr const char* kName =
      kCached ? "leased_hazard_cached" : "leased_hazard";
  static constexpr bool kNeedsGuard = true;
  static constexpr int kSlotsPerProcess = 2;

  LeasedHazardReclaimerT(Env& env, int n, reclaim::FreeLists initial_free)
      : leases_(env.leases), n_(n), book_(env, n, initial_free) {
    ABA_CHECK_MSG(leases_ != nullptr,
                  "leased reclaimers need Env::leases (a pid-lease table)");
    ABA_CHECK(leases_->max_procs() >= n);
    slots_ = env.arena->template place_array<std::atomic<std::uint64_t>>(
        "hp.slots", static_cast<std::size_t>(n) * kSlotsPerProcess);
    published_.assign(static_cast<std::size_t>(n) * kSlotsPerProcess, 0);
    phases_.assign(static_cast<std::size_t>(n), reclaim::ReclaimPhase::kIdle);
    alloc_resume_.assign(static_cast<std::size_t>(n),
                         reclaim::ReclaimPhase::kIdle);
    hb_seen_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                    0);
  }

  void begin_op(int p) {
    leases_->self_check(p);
    leases_->beat(p);
    phases_[p] = reclaim::ReclaimPhase::kInRegion;
  }

  void guard(int p, int slot, std::uint64_t idx) {
    ABA_ASSERT(slot >= 0 && slot < kSlotsPerProcess);
    const std::uint64_t word = idx + 1;
    std::uint64_t& cached = published_[cache_index(p, slot)];
    phases_[p] = reclaim::ReclaimPhase::kGuardPublished;
    if constexpr (kCached) {
      if (cached == word) {
        leases_->maybe_park(p, kParkGuardPublished);
        return;
      }
    }
    slot_ref(p, slot).store(word, std::memory_order_seq_cst);
    cached = word;
    leases_->maybe_park(p, kParkGuardPublished);
  }

  void end_op(int p) {
    if constexpr (!kCached) clear_published(p);
    phases_[p] = reclaim::ReclaimPhase::kIdle;
  }

  void detach(int p) { clear_published(p); }

  std::optional<std::uint64_t> allocate(int p) {
    leases_->self_check(p);
    leases_->beat(p);
    if (book_.free_head[p].load(std::memory_order_seq_cst) == 0) {
      scan(p);
      if constexpr (kCached) {
        if (book_.free_head[p].load(std::memory_order_seq_cst) == 0 &&
            has_published(p)) {
          detach(p);
          scan(p);
        }
      }
    }
    auto idx = book_.allocate_from(p);
    if (idx) {
      // The crash-marked window opens: in_flight[p] is set and stays set
      // through the structure's linking CAS until commit(p).
      alloc_resume_[p] = phases_[p];
      phases_[p] = reclaim::ReclaimPhase::kMidAllocate;
    }
    return idx;
  }

  void commit(int p) {
    // Park BEFORE the marker clear: the node is (possibly) linked and still
    // marked — the exact instant the quarantine rule exists for, and the
    // instant the crash harnesses want to land a kill on.
    leases_->maybe_park(p, kParkInFlight);
    book_.in_flight[p].store(0, std::memory_order_seq_cst);
    phases_[p] = alloc_resume_[p];
  }

  void retire(int p, std::uint64_t idx) {
    leases_->self_check(p);
    leases_->beat(p);
    const reclaim::ReclaimPhase resume = phases_[p];
    phases_[p] = reclaim::ReclaimPhase::kMidRetire;
    book_.in_retire[p].store(idx + 1, std::memory_order_seq_cst);
    leases_->maybe_park(p, kParkMidRetire);
    // Re-validate after the park: a worker that was expropriated while
    // parked (the simulated-kill rendezvous) must self-fence here instead
    // of pushing onto lists that now belong to the expropriator.
    leases_->self_check(p);
    book_.retire_onto(p, idx);
    book_.in_retire[p].store(0, std::memory_order_seq_cst);
    if (book_.retired_count[p].load(std::memory_order_relaxed) >=
        scan_threshold()) {
      scan(p);
    }
    phases_[p] = resume;
  }

  // Batch hand-off: each chunk is staged in the shm pending window before
  // any node moves to the retired list (crash-safe — a batch parked in a
  // dead process's window is swept by the suspect/confirm expropriation),
  // and the whole batch pays ONE threshold check / scan.
  void retire_batch(int p, const std::uint64_t* idxs, std::size_t count) {
    leases_->self_check(p);
    leases_->beat(p);
    const reclaim::ReclaimPhase resume = phases_[p];
    phases_[p] = reclaim::ReclaimPhase::kMidRetire;
    std::size_t done = 0;
    while (done < count) {
      const std::size_t chunk =
          std::min(count - done, detail::SharedBook::kPendingCap);
      book_.stage_pending(p, idxs + done, chunk);
      leases_->maybe_park(p, kParkMidRetire);
      leases_->self_check(p);
      for (std::size_t i = 0; i < chunk; ++i) {
        book_.retire_onto(p, idxs[done + i]);
        book_.clear_pending_slot(p, i);
      }
      book_.finish_pending(p);
      done += chunk;
    }
    if (count != 0 &&
        book_.retired_count[p].load(std::memory_order_relaxed) >=
            scan_threshold()) {
      scan(p);
    }
    phases_[p] = resume;
  }

  // One pass: sweep dead leases (two-phase; a confirmed death is fully
  // drained here), then free every retiree no live slot guards.
  void scan(int p) {
    expropriate_dead(p);
    std::vector<std::uint64_t> guarded;
    guarded.reserve(static_cast<std::size_t>(n_) * kSlotsPerProcess);
    for (int i = 0; i < n_ * kSlotsPerProcess; ++i) {
      const std::uint64_t w = slots_[i].load(std::memory_order_seq_cst);
      if (w != 0) guarded.push_back(w - 1);
    }
    std::vector<std::uint64_t> keep;
    // Bounded by the pool: after an expropriation this may be walking a
    // list the victim was mutating when it died — it must terminate even
    // if the links are cyclic.
    for (std::size_t seen = 0; seen < book_.pool; ++seen) {
      auto idx = book_.lists.pop(book_.retired_head[p]);
      if (!idx) break;
      bool pinned = false;
      for (const std::uint64_t g : guarded) {
        if (g == *idx) {
          pinned = true;
          break;
        }
      }
      if (pinned) {
        keep.push_back(*idx);
      } else {
        book_.lists.push(book_.free_head[p], *idx);
        book_.free_count[p].fetch_add(1, std::memory_order_relaxed);
        book_.retired_count[p].fetch_sub(1, std::memory_order_relaxed);
      }
    }
    for (const std::uint64_t idx : keep) {
      book_.lists.push(book_.retired_head[p], idx);
    }
  }

  std::size_t scan_threshold() const {
    return 2 * static_cast<std::size_t>(n_) * kSlotsPerProcess;
  }

  std::size_t pool_size() const { return book_.pool; }
  std::size_t unreclaimed(int p) const {
    return static_cast<std::size_t>(
        book_.retired_count[p].load(std::memory_order_relaxed));
  }

  reclaim::ReclaimStats stats() const {
    reclaim::ReclaimStats s = book_.stats_base(n_);
    for (int i = 0; i < n_ * kSlotsPerProcess; ++i) {
      if (slots_[i].load(std::memory_order_seq_cst) != 0) {
        ++s.guard_slots_occupied;
      }
    }
    return s;
  }

  reclaim::ReclaimPhase phase(int p) const { return phases_[p]; }

  // Everything outside the simulator's announced-word signature that
  // decides this reclaimer's future: the book, the authoritative guard
  // slots, the process-local caches and phases, the per-peer heartbeat
  // history, and the lease table's own host words.
  std::uint64_t fingerprint() const {
    reclaim::Fingerprint fp;
    book_.fingerprint_into(n_, fp);
    for (int i = 0; i < n_ * kSlotsPerProcess; ++i) {
      fp.mix(slots_[i].load(std::memory_order_seq_cst));
    }
    fp.mix_range(published_);
    for (const auto ph : phases_) fp.mix(static_cast<std::uint64_t>(ph));
    for (const auto ph : alloc_resume_) fp.mix(static_cast<std::uint64_t>(ph));
    fp.mix_range(hb_seen_);
    fp.mix(leases_->fingerprint());
    return fp.value();
  }

 private:
  std::size_t cache_index(int p, int slot) const {
    return static_cast<std::size_t>(p) * kSlotsPerProcess +
           static_cast<std::size_t>(slot);
  }
  std::atomic<std::uint64_t>& slot_ref(int p, int slot) {
    return slots_[cache_index(p, slot)];
  }

  bool has_published(int p) const {
    for (int slot = 0; slot < kSlotsPerProcess; ++slot) {
      if (published_[cache_index(p, slot)] != 0) return true;
    }
    return false;
  }

  void clear_published(int p) {
    for (int slot = 0; slot < kSlotsPerProcess; ++slot) {
      if (published_[cache_index(p, slot)] != 0) {
        slot_ref(p, slot).store(0, std::memory_order_seq_cst);
        published_[cache_index(p, slot)] = 0;
      }
    }
  }

  // Heartbeat staleness: p remembers the last heartbeat it saw per peer; a
  // peer whose heartbeat has not moved since p's previous scan is suspected
  // (never confirmed) on staleness alone. See the file comment.
  bool stale_for(int p, int q) {
    const std::size_t at =
        static_cast<std::size_t>(p) * static_cast<std::size_t>(n_) +
        static_cast<std::size_t>(q);
    const std::uint64_t hb = leases_->heartbeat(q);
    const bool stale = hb_seen_[at] != 0 && hb_seen_[at] == hb;
    hb_seen_[at] = hb;
    return stale;
  }

  void expropriate_dead(int p) {
    for (int q = 0; q < n_; ++q) {
      if (q == p || !leases_->is_held(q)) continue;
      if (leases_->advance_death(q, stale_for(p, q)) ==
          reclaim::DeathStep::kConfirmed) {
        // Clear the victim's published guards so this very scan's slot
        // reads no longer see them.
        for (int slot = 0; slot < kSlotsPerProcess; ++slot) {
          slot_ref(q, slot).store(0, std::memory_order_seq_cst);
        }
        book_.drain_dead(p, q);
        leases_->reap(q);
      }
    }
  }

  Leases* leases_;
  int n_;
  detail::SharedBook book_;
  std::atomic<std::uint64_t>* slots_;  // [n * kSlotsPerProcess], idx+1 or 0.
  // Process-local guard cache / dirty tracking; authoritative state is in
  // slots_ (which is what expropriation reads).
  std::vector<std::uint64_t> published_;
  std::vector<reclaim::ReclaimPhase> phases_;
  std::vector<reclaim::ReclaimPhase> alloc_resume_;
  std::vector<std::uint64_t> hb_seen_;  // [n*n]: last heartbeat p saw of q.
};

using LeasedHazardReclaimer = LeasedHazardReclaimerT<false>;
using LeasedCachedHazardReclaimer = LeasedHazardReclaimerT<true>;

// -------------------------------------------------------- epoch (leased)

// Epoch-based reclamation over the shared arena: per-lease announcements
// against a global epoch; a retired node frees two advances after its
// stamp. A dead process's frozen announcement would block the advance
// forever — the sweep inside try_advance expropriates it instead (clears
// the announcement, splices the limbo; stamps live in a per-node array, so
// they travel with the nodes).
template <class Env = ShmPlatform::Env>
class LeasedEpochReclaimerT {
 public:
  using EnvT = Env;
  using Leases = std::remove_pointer_t<decltype(Env::leases)>;

  static constexpr const char* kName = "leased_epoch";
  static constexpr bool kNeedsGuard = false;
  static constexpr std::uint64_t kQuiescent = 0;
  static constexpr std::size_t kAdvanceEvery = 4;

  LeasedEpochReclaimerT(Env& env, int n, reclaim::FreeLists initial_free)
      : leases_(env.leases),
        n_(n),
        book_(env, n, initial_free),
        mutation_(detail::mutation_of(env)) {
    ABA_CHECK_MSG(leases_ != nullptr,
                  "leased reclaimers need Env::leases (a pid-lease table)");
    ABA_CHECK(leases_->max_procs() >= n);
    global_ = env.arena->template place<std::atomic<std::uint64_t>>("ep.global");
    announce_ = env.arena->template place_array<std::atomic<std::uint64_t>>(
        "ep.announce", static_cast<std::size_t>(n));
    stamps_ = env.arena->template place_array<std::atomic<std::uint64_t>>(
        "ep.stamps", book_.pool);
    if (env.owner) global_->store(1, std::memory_order_seq_cst);
    phases_.assign(static_cast<std::size_t>(n), reclaim::ReclaimPhase::kIdle);
    alloc_resume_.assign(static_cast<std::size_t>(n),
                         reclaim::ReclaimPhase::kIdle);
    hb_seen_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                    0);
  }

  void begin_op(int p) {
    leases_->self_check(p);
    leases_->beat(p);
    announce_[p].store(global_->load(std::memory_order_seq_cst),
                       std::memory_order_seq_cst);
    phases_[p] = reclaim::ReclaimPhase::kEpochAnnounced;
    leases_->maybe_park(p, kParkEpochAnnounced);
  }

  void guard(int /*p*/, int /*slot*/, std::uint64_t /*idx*/) {}

  void end_op(int p) {
    announce_[p].store(kQuiescent, std::memory_order_seq_cst);
    phases_[p] = reclaim::ReclaimPhase::kIdle;
  }

  std::optional<std::uint64_t> allocate(int p) {
    leases_->self_check(p);
    leases_->beat(p);
    if (book_.free_head[p].load(std::memory_order_seq_cst) == 0) {
      try_advance(p);
      collect(p);
    }
    auto idx = book_.allocate_from(p);
    if (idx) {
      // The crash-marked window opens (see the hazard variant).
      alloc_resume_[p] = phases_[p];
      phases_[p] = reclaim::ReclaimPhase::kMidAllocate;
    }
    return idx;
  }

  void commit(int p) {
    leases_->maybe_park(p, kParkInFlight);
    book_.in_flight[p].store(0, std::memory_order_seq_cst);
    phases_[p] = alloc_resume_[p];
  }

  void retire(int p, std::uint64_t idx) {
    leases_->self_check(p);
    leases_->beat(p);
    const reclaim::ReclaimPhase resume = phases_[p];
    phases_[p] = reclaim::ReclaimPhase::kMidRetire;
    book_.in_retire[p].store(idx + 1, std::memory_order_seq_cst);
    leases_->maybe_park(p, kParkMidRetire);
    // Re-validate after the park: a worker that was expropriated while
    // parked (the simulated-kill rendezvous) must self-fence here instead
    // of stamping and pushing onto lists that now belong to the
    // expropriator.
    leases_->self_check(p);
    stamps_[idx].store(global_->load(std::memory_order_seq_cst),
                       std::memory_order_seq_cst);
    book_.retire_onto(p, idx);
    book_.in_retire[p].store(0, std::memory_order_seq_cst);
    if (book_.retired_count[p].load(std::memory_order_relaxed) %
            kAdvanceEvery ==
        0) {
      try_advance(p);
      collect(p);
    }
    phases_[p] = resume;
  }

  // Batch hand-off: each chunk is staged in the shm pending window before
  // any node is stamped or listed (crash-safe — drain_dead sweeps a dead
  // process's window), the whole chunk is stamped under ONE global-epoch
  // read, and the whole batch pays one advance+collect at the end.
  void retire_batch(int p, const std::uint64_t* idxs, std::size_t count) {
    leases_->self_check(p);
    leases_->beat(p);
    const reclaim::ReclaimPhase resume = phases_[p];
    phases_[p] = reclaim::ReclaimPhase::kMidRetire;
    std::size_t done = 0;
    while (done < count) {
      const std::size_t chunk =
          std::min(count - done, detail::SharedBook::kPendingCap);
      book_.stage_pending(p, idxs + done, chunk);
      leases_->maybe_park(p, kParkMidRetire);
      leases_->self_check(p);
      const std::uint64_t g = global_->load(std::memory_order_seq_cst);
      for (std::size_t i = 0; i < chunk; ++i) {
        const std::uint64_t idx = idxs[done + i];
        stamps_[idx].store(g, std::memory_order_seq_cst);
        book_.retire_onto(p, idx);
        book_.clear_pending_slot(p, i);
      }
      book_.finish_pending(p);
      done += chunk;
    }
    if (count != 0) {
      try_advance(p);
      collect(p);
    }
    phases_[p] = resume;
  }

  // Advances the global epoch if every live announcement is current; every
  // advance attempt first sweeps all dead-looking leases (two-phase), so a
  // crash can stall the epoch for at most two survivor attempts. The sweep
  // covers every held lease, not just stale announcers: the structures
  // retire *after* end_op, so a process killed mid-retire has a quiescent
  // announcement but an orphaned in-retire node plus limbo and free lists.
  std::uint64_t try_advance(int p) {
    expropriate_dead(p);
    const std::uint64_t e = global_->load(std::memory_order_seq_cst);
    for (int q = 0; q < n_; ++q) {
      const std::uint64_t a = announce_[q].load(std::memory_order_seq_cst);
      if (a == kQuiescent || a >= e) continue;
      return e;  // A live (or not-yet-confirmed) holdout pins the epoch.
    }
    std::uint64_t expected = e;
    global_->compare_exchange_strong(expected, e + 1, std::memory_order_seq_cst,
                                     std::memory_order_seq_cst);
    return global_->load(std::memory_order_seq_cst);
  }

  // Frees p's limbo nodes whose stamp is two epochs behind.
  void collect(int p) {
    const std::uint64_t g = global_->load(std::memory_order_seq_cst);
    std::vector<std::uint64_t> keep;
    // Bounded by the pool: the limbo list may have been inherited from a
    // crashed peer mid-update, so the sweep must terminate even over
    // cyclic links.
    for (std::size_t seen = 0; seen < book_.pool; ++seen) {
      auto idx = book_.lists.pop(book_.retired_head[p]);
      if (!idx) break;
      if (stamps_[*idx].load(std::memory_order_seq_cst) + 2 <= g) {
        book_.lists.push(book_.free_head[p], *idx);
        book_.free_count[p].fetch_add(1, std::memory_order_relaxed);
        book_.retired_count[p].fetch_sub(1, std::memory_order_relaxed);
      } else {
        keep.push_back(*idx);
      }
    }
    for (const std::uint64_t idx : keep) {
      book_.lists.push(book_.retired_head[p], idx);
    }
  }

  // The survivor side of the handshake over the pid-lease table: suspect a
  // dead-looking lease on one visit, confirm — re-probing liveness — on a
  // later one; the confirm winner clears the victim's announcement and
  // drains its bookkeeping.
  void expropriate_dead(int p) {
    for (int q = 0; q < n_; ++q) {
      if (q == p || !leases_->is_held(q)) continue;
      if (leases_->advance_death(q, stale_for(p, q)) ==
          reclaim::DeathStep::kConfirmed) {
        announce_[q].store(kQuiescent, std::memory_order_seq_cst);
        // A victim killed inside retire() can leave in_retire set with the
        // node's stamp never written (retire stamps AFTER the mid-retire
        // park point), so the stale/zero stamp would pass collect()'s
        // two-epoch grace test immediately — freeing a node that readers
        // announced in earlier epochs may still hold. Re-stamp with the
        // current global epoch before drain_dead re-homes it, so the
        // orphan waits a full grace period like any other retiree (the
        // in-process EpochBasedReclaimer::expropriate re-records the limbo
        // entry with the current epoch for the same reason). The kNoRestamp
        // lease mutant removes exactly this decision — the bug the PR 6
        // review caught.
        if (mutation_ != reclaim::LeaseMutation::kNoRestamp) {
          const std::uint64_t mr =
              book_.in_retire[q].load(std::memory_order_seq_cst);
          if (mr != 0) {
            stamps_[mr - 1].store(global_->load(std::memory_order_seq_cst),
                                  std::memory_order_seq_cst);
          }
          // Same hazard for a victim killed mid-retire_batch: every node
          // still staged in its pending window may carry a stale/zero stamp
          // (retire_batch stamps after the mid-retire park), so re-stamp
          // the whole window before the sweep re-homes it.
          const std::uint64_t pc =
              book_.pending_count[q].load(std::memory_order_seq_cst);
          if (pc != 0) {
            const std::size_t staged =
                pc < detail::SharedBook::kPendingCap
                    ? static_cast<std::size_t>(pc)
                    : detail::SharedBook::kPendingCap;
            const std::uint64_t g = global_->load(std::memory_order_seq_cst);
            for (std::size_t i = 0; i < staged; ++i) {
              const std::uint64_t w =
                  book_.pending[static_cast<std::size_t>(q) *
                                    detail::SharedBook::kPendingCap +
                                i]
                      .load(std::memory_order_seq_cst);
              if (w != 0) stamps_[w - 1].store(g, std::memory_order_seq_cst);
            }
          }
        }
        book_.drain_dead(p, q);
        leases_->reap(q);
      }
    }
  }

  std::size_t pool_size() const { return book_.pool; }
  std::size_t unreclaimed(int p) const {
    return static_cast<std::size_t>(
        book_.retired_count[p].load(std::memory_order_relaxed));
  }

  reclaim::ReclaimStats stats() const {
    reclaim::ReclaimStats s = book_.stats_base(n_);
    const std::uint64_t g = global_->load(std::memory_order_seq_cst);
    for (int q = 0; q < n_; ++q) {
      const std::uint64_t a = announce_[q].load(std::memory_order_seq_cst);
      if (a != kQuiescent && g > a && g - a > s.epoch_lag) s.epoch_lag = g - a;
    }
    return s;
  }

  reclaim::ReclaimPhase phase(int p) const { return phases_[p]; }

  std::uint64_t fingerprint() const {
    reclaim::Fingerprint fp;
    book_.fingerprint_into(n_, fp);
    fp.mix(global_->load(std::memory_order_seq_cst));
    for (int q = 0; q < n_; ++q) {
      fp.mix(announce_[q].load(std::memory_order_seq_cst));
    }
    for (std::size_t i = 0; i < book_.pool; ++i) {
      fp.mix(stamps_[i].load(std::memory_order_seq_cst));
    }
    for (const auto ph : phases_) fp.mix(static_cast<std::uint64_t>(ph));
    for (const auto ph : alloc_resume_) fp.mix(static_cast<std::uint64_t>(ph));
    fp.mix_range(hb_seen_);
    fp.mix(leases_->fingerprint());
    return fp.value();
  }

 private:
  // Same per-peer heartbeat history as the hazard variant (see its
  // stale_for).
  bool stale_for(int p, int q) {
    const std::size_t at =
        static_cast<std::size_t>(p) * static_cast<std::size_t>(n_) +
        static_cast<std::size_t>(q);
    const std::uint64_t hb = leases_->heartbeat(q);
    const bool stale = hb_seen_[at] != 0 && hb_seen_[at] == hb;
    hb_seen_[at] = hb;
    return stale;
  }

  Leases* leases_;
  int n_;
  detail::SharedBook book_;
  reclaim::LeaseMutation mutation_;
  std::atomic<std::uint64_t>* global_;
  std::atomic<std::uint64_t>* announce_;  // [n], kQuiescent or the epoch.
  std::atomic<std::uint64_t>* stamps_;    // [pool], retire-time epoch.
  std::vector<reclaim::ReclaimPhase> phases_;
  std::vector<reclaim::ReclaimPhase> alloc_resume_;
  std::vector<std::uint64_t> hb_seen_;  // [n*n]: last heartbeat p saw of q.
};

using LeasedEpochReclaimer = LeasedEpochReclaimerT<>;

static_assert(reclaim::ReclaimerFor<LeasedHazardReclaimer, ShmPlatform>);
static_assert(reclaim::ReclaimerFor<LeasedCachedHazardReclaimer, ShmPlatform>);
static_assert(reclaim::ReclaimerFor<LeasedEpochReclaimer, ShmPlatform>);

}  // namespace aba::shm
