// Lease hosts off the shared segment — the pieces that let the leased
// reclaimers (shm/leased_reclaimer.h) and the pid-lease death protocol
// (shm/pid_lease.h) run outside a real shm segment:
//
//   HeapArena       — the ShmArena placement API over plain heap memory.
//                     The book/guard/epoch words become ordinary process
//                     atomics; placement tags are accepted and ignored.
//   ThreadLeaseHost — a PidLeaseTableT host where the "processes" are
//                     threads of one process: every slot is preseeded
//                     kLive (generation 1, heartbeat 1), liveness is
//                     unconditional (threads of a live process are alive),
//                     and park points are no-ops. This is what the native
//                     determinism suites run the leased reclaimers on —
//                     same protocol code, zero fork/shm machinery.
//   LeasedFacade    — owns arena + lease table + an Env-templated base
//                     reclaimer and presents the standard Reclaimer
//                     concept surface, so a leased reclaimer can be
//                     plugged into TreiberStack/MsQueue on ANY platform
//                     (native or sim) via the usual (Env&, n, FreeLists)
//                     constructor. sim/sim_lease.h derives the simulated
//                     fixtures from the same facade with a SimLeaseHost.
//
// The ThreadLeased* aliases at the bottom are the native-platform leased
// reclaimers used by the tokenized Counted≡Fast determinism tests: they
// exercise the exact begin_op/self_check/beat/scan/expropriate code paths
// the model checker searches, pinned against native drift.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "reclaim/mutant.h"
#include "reclaim/reclaimer.h"
#include "shm/leased_reclaimer.h"
#include "shm/pid_lease.h"

namespace aba::shm {

// The ShmArena placement API (place / place_array, tag + count) over heap
// memory. Tags are ignored — there is no cross-process layout to agree on —
// but keeping the signature identical means SharedBook and the reclaimers
// place their words through the exact same calls on every host.
class HeapArena {
 public:
  template <class T>
  T* place(const char* tag) {
    return place_array<T>(tag, 1);
  }

  template <class T>
  T* place_array(const char* /*tag*/, std::size_t count) {
    auto holder = std::make_unique<Holder<T>>(count);
    T* data = holder->data.get();
    blocks_.push_back(std::move(holder));
    return data;
  }

 private:
  struct HolderBase {
    virtual ~HolderBase() = default;
  };
  template <class T>
  struct Holder final : HolderBase {
    explicit Holder(std::size_t count) : data(new T[count]()) {}
    std::unique_ptr<T[]> data;
  };

  std::vector<std::unique_ptr<HolderBase>> blocks_;
};

// PidLeaseTableT host for threads of a single live process. Preseeded: slot
// p belongs to thread p from construction (state kLive, generation 1,
// heartbeat 1, pid p+1), acquire() is never exercised. Liveness is
// unconditional — a thread of a running process cannot be SIGKILLed away
// from under its lease — so the death handshake can suspect on heartbeat
// staleness but never confirm: exactly the veto-side behavior the
// determinism suites should pin.
class ThreadLeaseHost {
 public:
  explicit ThreadLeaseHost(int max_procs)
      : records_(new LeaseRecord[static_cast<std::size_t>(max_procs)]()),
        n_(max_procs) {
    for (int s = 0; s < max_procs; ++s) {
      records_[s].state_gen.store(LeaseRecord::pack(kLeaseLive, 1),
                                  std::memory_order_relaxed);
      records_[s].pid.store(s + 1, std::memory_order_relaxed);
      records_[s].heartbeat.store(1, std::memory_order_relaxed);
    }
  }

  std::uint64_t state(int slot) const {
    return records_[slot].state_gen.load(std::memory_order_acquire);
  }
  bool cas_state(int slot, std::uint64_t expected,
                 std::uint64_t desired) const {
    return records_[slot].state_gen.compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel);
  }
  void set_state(int slot, std::uint64_t v) const {
    records_[slot].state_gen.store(v, std::memory_order_release);
  }
  std::int64_t pid(int slot) const {
    return records_[slot].pid.load(std::memory_order_acquire);
  }
  void set_pid(int slot, std::int64_t v) const {
    records_[slot].pid.store(v, std::memory_order_release);
  }
  std::uint64_t heartbeat(int slot) const {
    return records_[slot].heartbeat.load(std::memory_order_acquire);
  }
  void set_heartbeat(int slot, std::uint64_t v) const {
    records_[slot].heartbeat.store(v, std::memory_order_release);
  }
  std::uint64_t suspect_hb(int slot) const {
    return records_[slot].suspect_hb.load(std::memory_order_acquire);
  }
  void set_suspect_hb(int slot, std::uint64_t v) const {
    records_[slot].suspect_hb.store(v, std::memory_order_release);
  }

  bool alive(std::int64_t pid) const { return pid > 0; }
  std::int64_t self_pid() const { return n_ + ++acquired_; }
  bool preseeded() const { return true; }
  void park(int /*slot*/, std::uint64_t /*point*/) const {}

  void fingerprint_into(reclaim::Fingerprint& fp) const {
    for (int s = 0; s < n_; ++s) {
      fp.mix(state(s));
      fp.mix(static_cast<std::uint64_t>(pid(s)));
      fp.mix(heartbeat(s));
      fp.mix(suspect_hb(s));
    }
  }

 private:
  std::unique_ptr<LeaseRecord[]> records_;
  int n_;
  mutable std::int64_t acquired_ = 0;
};

// The Env the hosted leased reclaimers are instantiated with: same member
// shape as ShmPlatform::Env (arena / leases / owner) plus the test-only
// mutation seam detail::mutation_of() picks up.
template <class Table>
struct HostedEnv {
  HeapArena* arena = nullptr;
  Table* leases = nullptr;
  bool owner = true;
  reclaim::LeaseMutation mutation = reclaim::LeaseMutation::kNone;
};

// Owns the arena, the lease table, and the base leased reclaimer; forwards
// the Reclaimer concept surface. Derived classes supply the host and the
// mutations through the protected constructor and keep the standard
// (PlatformEnv&, n, FreeLists) shape themselves.
template <class Base>
class LeasedFacade {
 public:
  using Table = typename Base::Leases;
  using Env = typename Base::EnvT;

  static constexpr const char* kName = Base::kName;
  static constexpr bool kNeedsGuard = Base::kNeedsGuard;

  void begin_op(int p) { base_->begin_op(p); }
  void guard(int p, int slot, std::uint64_t idx) { base_->guard(p, slot, idx); }
  void end_op(int p) { base_->end_op(p); }
  std::optional<std::uint64_t> allocate(int p) { return base_->allocate(p); }
  void commit(int p) { base_->commit(p); }
  void retire(int p, std::uint64_t idx) { base_->retire(p, idx); }
  void retire_batch(int p, const std::uint64_t* idxs, std::size_t count) {
    base_->retire_batch(p, idxs, count);
  }
  void detach(int p)
    requires requires(Base& b) { b.detach(p); }
  {
    base_->detach(p);
  }

  std::size_t pool_size() const { return base_->pool_size(); }
  std::size_t unreclaimed(int p) const { return base_->unreclaimed(p); }
  reclaim::ReclaimStats stats() const { return base_->stats(); }
  reclaim::ReclaimPhase phase(int p) const { return base_->phase(p); }
  std::uint64_t fingerprint() const { return base_->fingerprint(); }

  Table& table() { return *table_; }
  Base& base() { return *base_; }

 protected:
  template <class Host>
  LeasedFacade(int n, reclaim::FreeLists initial, Host host,
               reclaim::LeaseMutation table_mutation,
               reclaim::LeaseMutation reclaimer_mutation)
      : arena_(std::make_unique<HeapArena>()),
        table_(std::make_unique<Table>(std::move(host), n, table_mutation)),
        env_{arena_.get(), table_.get(), /*owner=*/true, reclaimer_mutation},
        base_(std::in_place, env_, n, std::move(initial)) {}

 private:
  std::unique_ptr<HeapArena> arena_;
  std::unique_ptr<Table> table_;
  Env env_;
  std::optional<Base> base_;
};

namespace detail {
using ThreadLeaseTable = PidLeaseTableT<ThreadLeaseHost>;
using ThreadEnv = HostedEnv<ThreadLeaseTable>;
}  // namespace detail

// Native-platform leased reclaimers: threads play the processes, the lease
// protocol runs for real (self_check/beat/staleness suspicion — vetoes
// only, never confirms). Constructible from any platform Env; the platform
// env is unused because all leased state is hosted here.
template <bool kCached>
class ThreadLeasedHazardReclaimerT final
    : public LeasedFacade<LeasedHazardReclaimerT<kCached, detail::ThreadEnv>> {
  using Facade = LeasedFacade<LeasedHazardReclaimerT<kCached, detail::ThreadEnv>>;

 public:
  template <class PlatformEnv>
  ThreadLeasedHazardReclaimerT(PlatformEnv& /*env*/, int n,
                               reclaim::FreeLists initial)
      : Facade(n, std::move(initial), ThreadLeaseHost(n),
               reclaim::LeaseMutation::kNone, reclaim::LeaseMutation::kNone) {}
};

class ThreadLeasedEpochReclaimer final
    : public LeasedFacade<LeasedEpochReclaimerT<detail::ThreadEnv>> {
  using Facade = LeasedFacade<LeasedEpochReclaimerT<detail::ThreadEnv>>;

 public:
  template <class PlatformEnv>
  ThreadLeasedEpochReclaimer(PlatformEnv& /*env*/, int n,
                             reclaim::FreeLists initial)
      : Facade(n, std::move(initial), ThreadLeaseHost(n),
               reclaim::LeaseMutation::kNone, reclaim::LeaseMutation::kNone) {}
};

using ThreadLeasedHazardReclaimer = ThreadLeasedHazardReclaimerT<false>;
using ThreadLeasedCachedHazardReclaimer = ThreadLeasedHazardReclaimerT<true>;

}  // namespace aba::shm
