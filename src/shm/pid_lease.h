// PidLeaseTable — heartbeat-stamped pid leases over shared memory, with the
// two-phase suspect/confirm death handshake.
//
// Every process that operates on a cross-process structure first acquires a
// lease slot; the slot index IS the process id `p` it passes to the
// structure, so everything a process publishes — hazard guards, epoch
// announcements, its free/retired list heads, its in-flight allocation
// marker — is covered by exactly one lease. The lease record carries:
//
//   state+generation — one packed atomic word driving the death protocol:
//       kFree -> kLive (acquire), kLive -> kSuspect (a survivor that
//       observed the pid dead or the heartbeat stale), kSuspect -> kLive
//       (the VETO: a falsely-suspected live process clears itself at its
//       next reclaimer entry point), kSuspect -> kDead (confirm; CAS-
//       serialized so exactly one survivor wins the right to expropriate),
//       kDead -> kFree (the winner, after draining — generation bumps so a
//       recycled slot is distinguishable from its previous life).
//   pid + heartbeat — liveness evidence. kill(pid, 0) failing with ESRCH is
//       definitive death; a *stale heartbeat alone only suspects* — it can
//       never confirm, because a slow or stopped process is not a dead one.
//       This split plus the veto is the false-suspicion safety story: the
//       worst a wrong suspicion does is one extra CAS by the suspect.
//   suspect_hb — the heartbeat value observed at suspicion time; confirm
//       additionally requires the heartbeat unchanged since, which closes
//       the pid-recycling hole (a new process wearing the dead pid cannot
//       resurrect the lease, and a revived heartbeat cancels the suspicion).
//       The *slot*-recycling hole is closed by the generation: acquire()
//       records the generation it installed (process-locally) and every
//       self_check/beat verifies the word still wears it — a slot that was
//       confirmed, reaped, and reacquired by someone else reads kLive but a
//       generation the original owner never installed, so the original
//       owner self-fences with LeaseRevoked instead of operating on the
//       new owner's lease.
//   park point — a test-only rendezvous: the crash harness asks a worker to
//       spin at a named vulnerable instant (guard just published, epoch just
//       announced, mid-retire, in-flight commit pending) so the driver can
//       SIGKILL it exactly there.
//
// Why two phases at all, when kill(pid, 0) looks definitive? Because the
// suspect edge is also driven by heartbeat staleness (a wedged NFS mount, a
// SIGSTOP), and because between a survivor's liveness probe and its
// expropriating CAS the world can change. Confirming only from kSuspect —
// re-probing liveness and re-reading the heartbeat — means a live process
// always gets a full scan interval to veto before anyone touches its state.
//
// Host policy. The protocol itself (PidLeaseTableT) is templated over a
// Host that supplies the lease words, the liveness probe, the identity the
// acquire path stamps, and the park seam:
//
//   std::uint64_t state(int slot) const;            // packed state+gen
//   bool cas_state(int slot, std::uint64_t expected,
//                  std::uint64_t desired) const;
//   void set_state(int slot, std::uint64_t v) const;
//   std::int64_t pid(int slot) const;  void set_pid(int, std::int64_t) const;
//   std::uint64_t heartbeat(int) const; void set_heartbeat(int, v) const;
//   std::uint64_t suspect_hb(int) const; void set_suspect_hb(int, v) const;
//   bool alive(std::int64_t pid) const;             // definitive probe
//   std::int64_t self_pid() const;                  // stamped by acquire()
//   void park(int slot, std::uint64_t point) const; // instrumented instant
//   bool preseeded() const;      // all slots pre-acquired (gen 1) at build
//   void fingerprint_into(reclaim::Fingerprint&) const;  // engine-side peek
//
// ShmLeaseHost (below) is the production host: LeaseRecord array in the
// shared arena (the placement sequence is part of the segment layout hash
// and must stay byte-identical), kill(pid, 0) liveness, ::getpid identity,
// and the park_request/park_ack spin rendezvous. sim/sim_lease.h hosts the
// same protocol on SimPlatform words so the model checker can search the
// suspect/confirm/veto CASes as first-class schedulable steps, and
// shm/lease_hosts.h hosts it on plain heap words for single-process
// (thread-per-lease) determinism tests.
#pragma once

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <utility>
#include <vector>

#include "reclaim/death.h"
#include "reclaim/mutant.h"
#include "reclaim/reclaimer.h"
#include "shm/shm_platform.h"
#include "util/assert.h"
#include "util/cacheline.h"

namespace aba::shm {

// Lease states (low 8 bits of the packed state word).
inline constexpr std::uint64_t kLeaseFree = 0;
inline constexpr std::uint64_t kLeaseLive = 1;
inline constexpr std::uint64_t kLeaseSuspect = 2;
inline constexpr std::uint64_t kLeaseDead = 3;

// Park points for the crash harness (tests/shm_crash_child.cpp): a worker
// that finds its lease's park_request naming one of these spins there —
// still holding whatever it just published — until killed or released. The
// sim host renders each park point as one announced (schedulable) step
// instead, which is where the model checker's crash grants land.
inline constexpr std::uint64_t kParkNone = 0;
inline constexpr std::uint64_t kParkGuardPublished = 1;
inline constexpr std::uint64_t kParkEpochAnnounced = 2;
inline constexpr std::uint64_t kParkMidRetire = 3;
// Between the structure's linking CAS and commit(p)'s in_flight clear: the
// node is (possibly) reachable AND still marked — the window the quarantine
// rule exists for.
inline constexpr std::uint64_t kParkInFlight = 4;

struct alignas(util::kCacheLineSize) LeaseRecord {
  // state in bits [0,8), generation above. One word so every transition is
  // one CAS and a generation check rides along for free.
  std::atomic<std::uint64_t> state_gen{kLeaseFree};
  std::atomic<std::int64_t> pid{0};
  std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<std::uint64_t> suspect_hb{0};
  std::atomic<std::uint64_t> park_request{kParkNone};
  std::atomic<std::uint64_t> park_ack{kParkNone};

  static constexpr std::uint64_t state_of(std::uint64_t word) {
    return word & 0xff;
  }
  static constexpr std::uint64_t gen_of(std::uint64_t word) { return word >> 8; }
  static constexpr std::uint64_t pack(std::uint64_t state, std::uint64_t gen) {
    return (gen << 8) | state;
  }
};

inline bool pid_alive(std::int64_t pid) {
  if (pid <= 0) return false;
  // EPERM means "exists but not ours" — alive for our purposes.
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

// The production host: records in the shared arena, real pids, real kill(2)
// probes, and the spin-park rendezvous the fork/SIGKILL harness drives.
class ShmLeaseHost {
 public:
  ShmLeaseHost(ShmArena& arena, int max_procs)
      : records_(arena.place_array<LeaseRecord>(
            "lease.records", static_cast<std::size_t>(max_procs))),
        max_procs_(max_procs) {}

  std::uint64_t state(int slot) const {
    return records_[slot].state_gen.load(std::memory_order_acquire);
  }
  bool cas_state(int slot, std::uint64_t expected,
                 std::uint64_t desired) const {
    return records_[slot].state_gen.compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel);
  }
  void set_state(int slot, std::uint64_t v) const {
    records_[slot].state_gen.store(v, std::memory_order_release);
  }
  std::int64_t pid(int slot) const {
    return records_[slot].pid.load(std::memory_order_acquire);
  }
  void set_pid(int slot, std::int64_t v) const {
    records_[slot].pid.store(v, std::memory_order_release);
  }
  std::uint64_t heartbeat(int slot) const {
    return records_[slot].heartbeat.load(std::memory_order_acquire);
  }
  void set_heartbeat(int slot, std::uint64_t v) const {
    records_[slot].heartbeat.store(v, std::memory_order_release);
  }
  std::uint64_t suspect_hb(int slot) const {
    return records_[slot].suspect_hb.load(std::memory_order_acquire);
  }
  void set_suspect_hb(int slot, std::uint64_t v) const {
    records_[slot].suspect_hb.store(v, std::memory_order_release);
  }

  bool alive(std::int64_t pid) const { return pid_alive(pid); }
  std::int64_t self_pid() const { return ::getpid(); }
  bool preseeded() const { return false; }

  // Test-only rendezvous (see the park-point constants): a worker whose
  // lease requests exactly `point` spins there — with its guard /
  // announcement / in-retire marker still published — until the driver
  // SIGKILLs it or clears the request.
  void park(int slot, std::uint64_t point) const {
    LeaseRecord& rec = records_[slot];
    if (rec.park_request.load(std::memory_order_acquire) != point) return;
    rec.park_ack.store(point, std::memory_order_release);
    while (rec.park_request.load(std::memory_order_acquire) == point) {
      ::usleep(100);  // Parked: the driver kills or releases us.
    }
    rec.park_ack.store(kParkNone, std::memory_order_release);
  }

  void fingerprint_into(reclaim::Fingerprint& fp) const {
    for (int slot = 0; slot < max_procs_; ++slot) {
      fp.mix(state(slot));
      fp.mix(static_cast<std::uint64_t>(pid(slot)));
      fp.mix(heartbeat(slot));
      fp.mix(suspect_hb(slot));
    }
  }

  LeaseRecord& record(int slot) const { return records_[slot]; }

 private:
  LeaseRecord* records_;
  int max_procs_;
};

// The death protocol over any Host (see the file comment for the Host
// requirements). All transition logic — acquire/release, beat, the
// self-fence, the two-phase suspect/confirm advance, reap — lives here
// exactly once; the hosts only differ in where the words live, what
// "alive" means, and what a park point does.
template <class Host>
class PidLeaseTableT {
 public:
  PidLeaseTableT(Host host, int max_procs,
                 reclaim::LeaseMutation mutation = reclaim::LeaseMutation::kNone)
      : host_(std::move(host)),
        my_gen_(static_cast<std::size_t>(max_procs), 0),
        max_procs_(max_procs),
        mutation_(mutation) {
    if (host_.preseeded()) {
      // Every slot was built already-acquired (state kLive, generation 1) —
      // the sim host's construction-time seeding, since announced word
      // traffic from the engine thread would deadlock the step protocol.
      for (auto& g : my_gen_) g = 1;
    }
  }

  // Claims a free slot for this process. The slot index doubles as the
  // structure pid. ABA_CHECK-fails when the table is full.
  int acquire() {
    for (int slot = 0; slot < max_procs_; ++slot) {
      const std::uint64_t word = host_.state(slot);
      if (LeaseRecord::state_of(word) != kLeaseFree) continue;
      const std::uint64_t next =
          LeaseRecord::pack(kLeaseLive, LeaseRecord::gen_of(word) + 1);
      if (host_.cas_state(slot, word, next)) {
        my_gen_[static_cast<std::size_t>(slot)] = LeaseRecord::gen_of(next);
        host_.set_pid(slot, host_.self_pid());
        host_.set_heartbeat(slot, 1);
        return slot;
      }
    }
    ABA_CHECK_MSG(false, "pid-lease table full");
    return -1;
  }

  // Clean exit: the slot becomes acquirable again (generation bumps). A
  // no-op when the lease is no longer this owner's to free — already
  // expropriated and reaped (possibly reacquired: generation mismatch), or
  // confirmed kDead with the winner mid-drain.
  void release(int slot) {
    const std::uint64_t word = host_.state(slot);
    if (!gen_current(slot, word)) return;
    const std::uint64_t state = LeaseRecord::state_of(word);
    if (state != kLeaseLive && state != kLeaseSuspect) return;
    my_gen_[static_cast<std::size_t>(slot)] = 0;
    free_slot(slot, word);
  }

  // Liveness proof, called from every reclaimer entry point. Cheap: one
  // load plus one store on my own cache line (single-writer). Throws
  // LeaseRevoked if the slot has been recycled under us (generation
  // mismatch) so a fenced owner can't pollute the new owner's heartbeat.
  void beat(int slot) {
    if (!gen_current(slot, host_.state(slot))) throw reclaim::LeaseRevoked{};
    host_.set_heartbeat(slot, host_.heartbeat(slot) + 1);
  }

  // The self-fence side of the handshake, called from every reclaimer entry
  // point before touching shared bookkeeping. Vetoes a false suspicion
  // (kSuspect -> kLive); throws reclaim::LeaseRevoked once expropriation is
  // confirmed — the process must stop using the structure (its lists now
  // belong to the expropriator).
  void self_check(int slot) {
    std::uint64_t word = host_.state(slot);
    // Generation first: a kLive word wearing a generation we never
    // installed is someone else's lease on a recycled slot, not ours.
    if (!gen_current(slot, word)) throw reclaim::LeaseRevoked{};
    const std::uint64_t state = LeaseRecord::state_of(word);
    if (state == kLeaseLive) return;
    if (state == kLeaseSuspect) {
      const std::uint64_t veto =
          LeaseRecord::pack(kLeaseLive, LeaseRecord::gen_of(word));
      if (host_.cas_state(slot, word, veto)) {
        return;  // Vetoed; the suspicion evaporates.
      }
      word = host_.state(slot);
      if (gen_current(slot, word) &&
          LeaseRecord::state_of(word) == kLeaseLive) {
        return;
      }
    }
    throw reclaim::LeaseRevoked{};
  }

  // Survivor-side death advance for slot q (reclaim/death.h semantics over
  // the packed lease word):
  //   kSuspected          — q looked dead; suspicion recorded. Come back.
  //   kConfirmed          — this caller won the confirm CAS: it now owns
  //                         q's bookkeeping and MUST drain it, then reap(q).
  //   kVetoed / kAlreadyExpropriated — nothing to do here.
  // Staleness: `stale` is the caller's judgement that q's heartbeat has not
  // moved across its own scan interval; it can only *suspect*. Confirmation
  // requires the pid actually gone AND the heartbeat unchanged since
  // suspicion (pid-recycling guard) — unless this table was built with the
  // kStaleConfirm mutation, which skips that second pass (the lease-mutant
  // zoo; never shipped).
  reclaim::DeathStep advance_death(int q, bool stale = false) {
    const std::uint64_t word = host_.state(q);
    const std::uint64_t state = LeaseRecord::state_of(word);
    if (state != kLeaseLive && state != kLeaseSuspect) {
      return reclaim::DeathStep::kAlreadyExpropriated;
    }
    const std::int64_t pid = host_.pid(q);
    // pid == 0 is the acquire window (kLive published, pid store still in
    // flight) or a racing release — indeterminate, never "definitively
    // gone": suspecting here could confirm a freshly-acquired live lease.
    if (pid <= 0) return reclaim::DeathStep::kVetoed;
    const bool gone = !host_.alive(pid);
    if (state == kLeaseLive) {
      if (!gone && !stale) return reclaim::DeathStep::kVetoed;
      const std::uint64_t hb = host_.heartbeat(q);
      const std::uint64_t next =
          LeaseRecord::pack(kLeaseSuspect, LeaseRecord::gen_of(word));
      if (host_.cas_state(q, word, next)) {
        host_.set_suspect_hb(q, hb);
        return reclaim::DeathStep::kSuspected;
      }
      return reclaim::DeathStep::kVetoed;
    }
    // kSuspect: confirm only on definitive evidence — except under the
    // kStaleConfirm mutation, which treats the recorded suspicion as
    // sufficient and confirms without re-probing liveness or the heartbeat.
    if (mutation_ != reclaim::LeaseMutation::kStaleConfirm) {
      if (!gone) return reclaim::DeathStep::kVetoed;
      if (host_.heartbeat(q) != host_.suspect_hb(q)) {
        return reclaim::DeathStep::kVetoed;
      }
    }
    const std::uint64_t next =
        LeaseRecord::pack(kLeaseDead, LeaseRecord::gen_of(word));
    if (host_.cas_state(q, word, next)) {
      return reclaim::DeathStep::kConfirmed;
    }
    return reclaim::DeathStep::kAlreadyExpropriated;
  }

  // Called by the confirm winner after it has drained q's bookkeeping: the
  // slot re-enters circulation. Unconditional — the winner's kDead CAS gave
  // it exclusive ownership of the slot (unlike release, which must prove
  // the lease is still the caller's).
  void reap(int q) { free_slot(q, host_.state(q)); }

  bool is_live(int slot) const {
    return LeaseRecord::state_of(host_.state(slot)) == kLeaseLive;
  }
  bool is_held(int slot) const {
    const std::uint64_t s = LeaseRecord::state_of(host_.state(slot));
    return s == kLeaseLive || s == kLeaseSuspect;
  }

  // The staleness-suspicion evidence reader (leased_reclaimer.h tracks the
  // last value it saw per peer and passes `stale` to advance_death when a
  // scan interval leaves it unmoved).
  std::uint64_t heartbeat(int slot) const { return host_.heartbeat(slot); }

  int max_procs() const { return max_procs_; }

  // The instrumented-park seam (see the park-point constants). What it does
  // is the host's business: spin-rendezvous on shm, one announced
  // (schedulable, crashable) step in the simulator, nothing on the plain
  // thread host.
  void maybe_park(int slot, std::uint64_t point) { host_.park(slot, point); }

  // Engine-side peek over every lease word the host holds outside the
  // simulator's signature, for the DPOR state key. Never announces.
  std::uint64_t fingerprint() const {
    reclaim::Fingerprint fp;
    host_.fingerprint_into(fp);
    fp.mix_range(my_gen_);
    return fp.value();
  }

  Host& host() { return host_; }
  const Host& host() const { return host_; }

 private:
  // True when the caller either holds no local claim on `slot` (never
  // acquired through this table instance) or the word still wears the
  // generation it installed.
  bool gen_current(int slot, std::uint64_t word) const {
    const std::uint64_t mine = my_gen_[static_cast<std::size_t>(slot)];
    return mine == 0 || LeaseRecord::gen_of(word) == mine;
  }

  void free_slot(int slot, std::uint64_t word) {
    host_.set_pid(slot, 0);
    host_.set_state(slot,
                    LeaseRecord::pack(kLeaseFree, LeaseRecord::gen_of(word) + 1));
  }

  Host host_;
  // Process-local: the generation this process installed per slot it
  // acquired (0 = no claim). The fence against slot recycling. On a
  // preseeded host every slot reads generation 1 — the sim "processes" are
  // threads sharing this one instance, each the installed owner of its own
  // slot.
  std::vector<std::uint64_t> my_gen_;
  int max_procs_;
  reclaim::LeaseMutation mutation_;
};

// The production table: the shm host over the segment arena, with the
// record() accessor the crash harness drives the park protocol through.
class PidLeaseTable : public PidLeaseTableT<ShmLeaseHost> {
 public:
  // Places (creator) or binds (attacher) the record array in the arena.
  PidLeaseTable(ShmArena& arena, int max_procs)
      : PidLeaseTableT<ShmLeaseHost>(ShmLeaseHost(arena, max_procs),
                                     max_procs) {}

  LeaseRecord& record(int slot) { return host().record(slot); }
};

}  // namespace aba::shm
