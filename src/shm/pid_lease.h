// PidLeaseTable — heartbeat-stamped pid leases over shared memory, with the
// two-phase suspect/confirm death handshake.
//
// Every process that operates on a cross-process structure first acquires a
// lease slot; the slot index IS the process id `p` it passes to the
// structure, so everything a process publishes — hazard guards, epoch
// announcements, its free/retired list heads, its in-flight allocation
// marker — is covered by exactly one lease. The lease record carries:
//
//   state+generation — one packed atomic word driving the death protocol:
//       kFree -> kLive (acquire), kLive -> kSuspect (a survivor that
//       observed the pid dead or the heartbeat stale), kSuspect -> kLive
//       (the VETO: a falsely-suspected live process clears itself at its
//       next reclaimer entry point), kSuspect -> kDead (confirm; CAS-
//       serialized so exactly one survivor wins the right to expropriate),
//       kDead -> kFree (the winner, after draining — generation bumps so a
//       recycled slot is distinguishable from its previous life).
//   pid + heartbeat — liveness evidence. kill(pid, 0) failing with ESRCH is
//       definitive death; a *stale heartbeat alone only suspects* — it can
//       never confirm, because a slow or stopped process is not a dead one.
//       This split plus the veto is the false-suspicion safety story: the
//       worst a wrong suspicion does is one extra CAS by the suspect.
//   suspect_hb — the heartbeat value observed at suspicion time; confirm
//       additionally requires the heartbeat unchanged since, which closes
//       the pid-recycling hole (a new process wearing the dead pid cannot
//       resurrect the lease, and a revived heartbeat cancels the suspicion).
//       The *slot*-recycling hole is closed by the generation: acquire()
//       records the generation it installed (process-locally) and every
//       self_check/beat verifies the word still wears it — a slot that was
//       confirmed, reaped, and reacquired by someone else reads kLive but a
//       generation the original owner never installed, so the original
//       owner self-fences with LeaseRevoked instead of operating on the
//       new owner's lease.
//   park point — a test-only rendezvous: the crash harness asks a worker to
//       spin at a named vulnerable instant (guard just published, epoch just
//       announced, mid-retire) so the driver can SIGKILL it exactly there.
//
// Why two phases at all, when kill(pid, 0) looks definitive? Because the
// suspect edge is also driven by heartbeat staleness (a wedged NFS mount, a
// SIGSTOP), and because between a survivor's liveness probe and its
// expropriating CAS the world can change. Confirming only from kSuspect —
// re-probing liveness and re-reading the heartbeat — means a live process
// always gets a full scan interval to veto before anyone touches its state.
#pragma once

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <vector>

#include "reclaim/death.h"
#include "shm/shm_platform.h"
#include "util/assert.h"
#include "util/cacheline.h"

namespace aba::shm {

// Lease states (low 8 bits of the packed state word).
inline constexpr std::uint64_t kLeaseFree = 0;
inline constexpr std::uint64_t kLeaseLive = 1;
inline constexpr std::uint64_t kLeaseSuspect = 2;
inline constexpr std::uint64_t kLeaseDead = 3;

// Park points for the crash harness (tests/shm_crash_child.cpp): a worker
// that finds its lease's park_request naming one of these spins there —
// still holding whatever it just published — until killed or released.
inline constexpr std::uint64_t kParkNone = 0;
inline constexpr std::uint64_t kParkGuardPublished = 1;
inline constexpr std::uint64_t kParkEpochAnnounced = 2;
inline constexpr std::uint64_t kParkMidRetire = 3;

struct alignas(util::kCacheLineSize) LeaseRecord {
  // state in bits [0,8), generation above. One word so every transition is
  // one CAS and a generation check rides along for free.
  std::atomic<std::uint64_t> state_gen{kLeaseFree};
  std::atomic<std::int64_t> pid{0};
  std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<std::uint64_t> suspect_hb{0};
  std::atomic<std::uint64_t> park_request{kParkNone};
  std::atomic<std::uint64_t> park_ack{kParkNone};

  static constexpr std::uint64_t state_of(std::uint64_t word) {
    return word & 0xff;
  }
  static constexpr std::uint64_t gen_of(std::uint64_t word) { return word >> 8; }
  static constexpr std::uint64_t pack(std::uint64_t state, std::uint64_t gen) {
    return (gen << 8) | state;
  }
};

inline bool pid_alive(std::int64_t pid) {
  if (pid <= 0) return false;
  // EPERM means "exists but not ours" — alive for our purposes.
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

class PidLeaseTable {
 public:
  // Places (creator) or binds (attacher) the record array in the arena.
  PidLeaseTable(ShmArena& arena, int max_procs)
      : records_(arena.place_array<LeaseRecord>("lease.records",
                                                static_cast<std::size_t>(max_procs))),
        my_gen_(static_cast<std::size_t>(max_procs), 0),
        max_procs_(max_procs) {}

  // Claims a free slot for this process. The slot index doubles as the
  // structure pid. ABA_CHECK-fails when the table is full.
  int acquire() {
    for (int slot = 0; slot < max_procs_; ++slot) {
      LeaseRecord& rec = records_[slot];
      std::uint64_t word = rec.state_gen.load(std::memory_order_acquire);
      if (LeaseRecord::state_of(word) != kLeaseFree) continue;
      const std::uint64_t next =
          LeaseRecord::pack(kLeaseLive, LeaseRecord::gen_of(word) + 1);
      if (rec.state_gen.compare_exchange_strong(word, next,
                                                std::memory_order_acq_rel)) {
        my_gen_[static_cast<std::size_t>(slot)] = LeaseRecord::gen_of(next);
        rec.pid.store(::getpid(), std::memory_order_release);
        rec.heartbeat.store(1, std::memory_order_release);
        rec.park_request.store(kParkNone, std::memory_order_relaxed);
        rec.park_ack.store(kParkNone, std::memory_order_relaxed);
        return slot;
      }
    }
    ABA_CHECK_MSG(false, "pid-lease table full");
    return -1;
  }

  // Clean exit: the slot becomes acquirable again (generation bumps). A
  // no-op when the lease is no longer this owner's to free — already
  // expropriated and reaped (possibly reacquired: generation mismatch), or
  // confirmed kDead with the winner mid-drain.
  void release(int slot) {
    LeaseRecord& rec = records_[slot];
    const std::uint64_t word = rec.state_gen.load(std::memory_order_acquire);
    if (!gen_current(slot, word)) return;
    const std::uint64_t state = LeaseRecord::state_of(word);
    if (state != kLeaseLive && state != kLeaseSuspect) return;
    my_gen_[static_cast<std::size_t>(slot)] = 0;
    free_slot(rec, word);
  }

  // Liveness proof, called from every reclaimer entry point. Cheap: one
  // load plus one relaxed RMW on my own cache line. Throws LeaseRevoked if
  // the slot has been recycled under us (generation mismatch) so a fenced
  // owner can't pollute the new owner's heartbeat.
  void beat(int slot) {
    LeaseRecord& rec = records_[slot];
    if (!gen_current(slot, rec.state_gen.load(std::memory_order_acquire))) {
      throw reclaim::LeaseRevoked{};
    }
    rec.heartbeat.fetch_add(1, std::memory_order_relaxed);
  }

  // The self-fence side of the handshake, called from every reclaimer entry
  // point before touching shared bookkeeping. Vetoes a false suspicion
  // (kSuspect -> kLive); throws reclaim::LeaseRevoked once expropriation is
  // confirmed — the process must stop using the structure (its lists now
  // belong to the expropriator).
  void self_check(int slot) {
    LeaseRecord& rec = records_[slot];
    std::uint64_t word = rec.state_gen.load(std::memory_order_acquire);
    // Generation first: a kLive word wearing a generation we never
    // installed is someone else's lease on a recycled slot, not ours.
    if (!gen_current(slot, word)) throw reclaim::LeaseRevoked{};
    const std::uint64_t state = LeaseRecord::state_of(word);
    if (state == kLeaseLive) return;
    if (state == kLeaseSuspect) {
      const std::uint64_t veto =
          LeaseRecord::pack(kLeaseLive, LeaseRecord::gen_of(word));
      if (rec.state_gen.compare_exchange_strong(word, veto,
                                                std::memory_order_acq_rel)) {
        return;  // Vetoed; the suspicion evaporates.
      }
      word = rec.state_gen.load(std::memory_order_acquire);
      if (gen_current(slot, word) &&
          LeaseRecord::state_of(word) == kLeaseLive) {
        return;
      }
    }
    throw reclaim::LeaseRevoked{};
  }

  // Survivor-side death advance for slot q (reclaim/death.h semantics over
  // the packed lease word):
  //   kSuspected          — q looked dead; suspicion recorded. Come back.
  //   kConfirmed          — this caller won the confirm CAS: it now owns
  //                         q's bookkeeping and MUST drain it, then reap(q).
  //   kVetoed / kAlreadyExpropriated — nothing to do here.
  // Staleness: `stale` is the caller's judgement that q's heartbeat has not
  // moved across its own scan interval; it can only *suspect*. Confirmation
  // requires the pid actually gone AND the heartbeat unchanged since
  // suspicion (pid-recycling guard).
  reclaim::DeathStep advance_death(int q, bool stale = false) {
    LeaseRecord& rec = records_[q];
    std::uint64_t word = rec.state_gen.load(std::memory_order_acquire);
    const std::uint64_t state = LeaseRecord::state_of(word);
    if (state != kLeaseLive && state != kLeaseSuspect) {
      return reclaim::DeathStep::kAlreadyExpropriated;
    }
    const std::int64_t pid = rec.pid.load(std::memory_order_acquire);
    // pid == 0 is the acquire window (kLive published, pid store still in
    // flight) or a racing release — indeterminate, never "definitively
    // gone": suspecting here could confirm a freshly-acquired live lease.
    if (pid <= 0) return reclaim::DeathStep::kVetoed;
    const bool gone = !pid_alive(pid);
    if (state == kLeaseLive) {
      if (!gone && !stale) return reclaim::DeathStep::kVetoed;
      const std::uint64_t hb = rec.heartbeat.load(std::memory_order_acquire);
      const std::uint64_t next =
          LeaseRecord::pack(kLeaseSuspect, LeaseRecord::gen_of(word));
      if (rec.state_gen.compare_exchange_strong(word, next,
                                                std::memory_order_acq_rel)) {
        rec.suspect_hb.store(hb, std::memory_order_release);
        return reclaim::DeathStep::kSuspected;
      }
      return reclaim::DeathStep::kVetoed;
    }
    // kSuspect: confirm only on definitive evidence.
    if (!gone) return reclaim::DeathStep::kVetoed;
    if (rec.heartbeat.load(std::memory_order_acquire) !=
        rec.suspect_hb.load(std::memory_order_acquire)) {
      return reclaim::DeathStep::kVetoed;
    }
    const std::uint64_t next =
        LeaseRecord::pack(kLeaseDead, LeaseRecord::gen_of(word));
    if (rec.state_gen.compare_exchange_strong(word, next,
                                              std::memory_order_acq_rel)) {
      return reclaim::DeathStep::kConfirmed;
    }
    return reclaim::DeathStep::kAlreadyExpropriated;
  }

  // Called by the confirm winner after it has drained q's bookkeeping: the
  // slot re-enters circulation. Unconditional — the winner's kDead CAS gave
  // it exclusive ownership of the slot (unlike release, which must prove
  // the lease is still the caller's).
  void reap(int q) {
    LeaseRecord& rec = records_[q];
    free_slot(rec, rec.state_gen.load(std::memory_order_acquire));
  }

  bool is_live(int slot) const {
    return LeaseRecord::state_of(
               records_[slot].state_gen.load(std::memory_order_acquire)) ==
           kLeaseLive;
  }
  bool is_held(int slot) const {
    const std::uint64_t s = LeaseRecord::state_of(
        records_[slot].state_gen.load(std::memory_order_acquire));
    return s == kLeaseLive || s == kLeaseSuspect;
  }

  LeaseRecord& record(int slot) { return records_[slot]; }
  int max_procs() const { return max_procs_; }

  // Test-only rendezvous (see the park-point constants). The leased
  // reclaimers call maybe_park(slot, point) at each instrumented instant; a
  // worker whose lease requests exactly that point spins there — with its
  // guard/announcement/in-retire marker still published — until the driver
  // SIGKILLs it or clears the request.
  void maybe_park(int slot, std::uint64_t point) {
    LeaseRecord& rec = records_[slot];
    if (rec.park_request.load(std::memory_order_acquire) != point) return;
    rec.park_ack.store(point, std::memory_order_release);
    while (rec.park_request.load(std::memory_order_acquire) == point) {
      ::usleep(100);  // Parked: the driver kills or releases us.
    }
    rec.park_ack.store(kParkNone, std::memory_order_release);
  }

 private:
  // True when the caller either holds no local claim on `slot` (never
  // acquired through this table instance) or the word still wears the
  // generation it installed.
  bool gen_current(int slot, std::uint64_t word) const {
    const std::uint64_t mine = my_gen_[static_cast<std::size_t>(slot)];
    return mine == 0 || LeaseRecord::gen_of(word) == mine;
  }

  void free_slot(LeaseRecord& rec, std::uint64_t word) {
    rec.pid.store(0, std::memory_order_relaxed);
    rec.state_gen.store(
        LeaseRecord::pack(kLeaseFree, LeaseRecord::gen_of(word) + 1),
        std::memory_order_release);
  }

  LeaseRecord* records_;
  // Process-local: the generation this process installed per slot it
  // acquired (0 = no claim). The fence against slot recycling.
  std::vector<std::uint64_t> my_gen_;
  int max_procs_;
};

}  // namespace aba::shm
