// ShmArena + ShmPlatform — the Platform implementation over shared memory.
//
// ShmArena is a deterministic bump allocator over a segment's arena region.
// Creator and attachers run the *same construction sequence* (build the
// same structure with the same parameters), so each placement lands at the
// same offset in every process; the creator placement-initializes, the
// attachers just bind. A running FNV-1a hash over (name, size, alignment,
// offset) of every placement fingerprints the sequence — the creator
// publishes it in the segment header and attachers verify theirs matches
// (shm_segment.h), so a layout drift is a checked error instead of silent
// reinterpretation.
//
// ShmPlatform satisfies the Platform concept (core/platform.h), so
// TreiberStack, MsQueue and the sharded wrappers run unchanged across
// processes: every Register/Cas/WritableCas places one cache-line-isolated
// std::atomic<uint64_t> in the arena. All orderings are seq_cst — the
// cross-process tier keeps the paper-faithful interleaving semantics (the
// publish-then-revalidate and announce-then-reread protocols in the
// reclaimers are StoreLoad-shaped; see native_platform.h for the taxonomy).
// Retry loops pick up truncated exponential backoff via PlatformBackoffT.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>

#include "shm/shm_segment.h"
#include "sim/types.h"
#include "util/assert.h"
#include "util/backoff.h"
#include "util/cacheline.h"

namespace aba::shm {

class ShmArena {
 public:
  ShmArena(ShmSegment& segment, bool owner)
      : base_(static_cast<char*>(segment.arena_base())),
        capacity_(segment.arena_bytes()),
        owner_(owner) {}

  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  // Reserves space for one T. The creator constructs it in place; an
  // attacher binds to the already-constructed object. T must be shareable
  // across processes (no internal pointers to process-local memory) and is
  // never destroyed — the segment's lifetime is the object's lifetime.
  template <class T, class... Args>
  T* place(const char* name, Args&&... args) {
    void* ptr = reserve(name, sizeof(T), alignof(T));
    if (owner_) return new (ptr) T(std::forward<Args>(args)...);
    return std::launder(reinterpret_cast<T*>(ptr));
  }

  // Reserves a contiguous array of `count` Ts (value-initialized by the
  // creator).
  template <class T>
  T* place_array(const char* name, std::size_t count) {
    void* ptr = reserve(name, sizeof(T) * count, alignof(T));
    if (owner_) return new (ptr) T[count]();
    return std::launder(reinterpret_cast<T*>(ptr));
  }

  // The layout fingerprint of every placement so far.
  std::uint64_t layout_hash() const { return hash_; }
  std::size_t bytes_used() const { return offset_; }
  bool owner() const { return owner_; }

 private:
  void* reserve(const char* name, std::size_t size, std::size_t align) {
    // Cache-line granularity: adjacent placements never false-share, and
    // every alignof we will meet divides 64.
    const std::size_t a = align < util::kCacheLineSize ? util::kCacheLineSize
                                                       : align;
    offset_ = (offset_ + a - 1) / a * a;
    ABA_CHECK_MSG(offset_ + size <= capacity_,
                  "shm arena exhausted — size the segment larger");
    void* ptr = base_ + offset_;
    mix(name);
    mix(size);
    mix(align);
    mix(offset_);
    offset_ += size;
    return ptr;
  }

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ull;  // FNV-1a.
    }
  }
  void mix(const char* s) {
    for (; *s != '\0'; ++s) {
      hash_ ^= static_cast<unsigned char>(*s);
      hash_ *= 0x100000001b3ull;
    }
  }

  char* base_;
  std::size_t capacity_;
  std::size_t offset_ = 0;
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
  bool owner_;
};

class PidLeaseTable;  // pid_lease.h

struct ShmPlatform {
  // The environment every platform object and reclaimer constructor
  // receives. `leases` is consumed by the leased reclaimers
  // (leased_reclaimer.h); plain platform words only need the arena.
  struct Env {
    ShmArena* arena = nullptr;
    PidLeaseTable* leases = nullptr;
    bool owner = false;
  };

  using Backoff = util::ExpBackoff;

  class Register {
   public:
    Register(Env& env, const char* name, std::uint64_t initial,
             sim::BoundSpec /*bound*/)
        : word_(env.arena->place<std::atomic<std::uint64_t>>(name)) {
      if (env.owner) word_->store(initial, std::memory_order_relaxed);
    }

    std::uint64_t read() { return word_->load(std::memory_order_seq_cst); }
    void write(std::uint64_t value) {
      word_->store(value, std::memory_order_seq_cst);
    }

   private:
    std::atomic<std::uint64_t>* word_;
  };

  class Cas {
   public:
    Cas(Env& env, const char* name, std::uint64_t initial,
        sim::BoundSpec /*bound*/)
        : word_(env.arena->place<std::atomic<std::uint64_t>>(name)) {
      if (env.owner) word_->store(initial, std::memory_order_relaxed);
    }

    std::uint64_t read() { return word_->load(std::memory_order_seq_cst); }
    bool cas(std::uint64_t expected, std::uint64_t desired) {
      return word_->compare_exchange_strong(expected, desired,
                                            std::memory_order_seq_cst,
                                            std::memory_order_seq_cst);
    }

   private:
    std::atomic<std::uint64_t>* word_;
  };

  class WritableCas {
   public:
    WritableCas(Env& env, const char* name, std::uint64_t initial,
                sim::BoundSpec /*bound*/)
        : word_(env.arena->place<std::atomic<std::uint64_t>>(name)) {
      if (env.owner) word_->store(initial, std::memory_order_relaxed);
    }

    std::uint64_t read() { return word_->load(std::memory_order_seq_cst); }
    bool cas(std::uint64_t expected, std::uint64_t desired) {
      return word_->compare_exchange_strong(expected, desired,
                                            std::memory_order_seq_cst,
                                            std::memory_order_seq_cst);
    }
    void write(std::uint64_t value) {
      word_->store(value, std::memory_order_seq_cst);
    }

   private:
    std::atomic<std::uint64_t>* word_;
  };
};

}  // namespace aba::shm
