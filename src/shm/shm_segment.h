// ShmSegment — a POSIX shared-memory segment with a versioned layout header.
//
// The crash-robust cross-process tier (src/shm/) hosts the index-based node
// pool, the platform's atomic words and the pid-lease table inside one
// shm_open(3) segment, so independent *processes* — not threads — can run
// the structures layer concurrently and any of them can be SIGKILLed at an
// arbitrary instruction without corrupting the others (see pid_lease.h and
// leased_reclaimer.h for the recovery story).
//
// Discovery and handshake: the creator maps the segment, placement-
// initializes every shared object (through ShmArena, shm_platform.h), then
// calls publish(layout_hash), which stamps the arena's layout fingerprint
// into the header and flips the `ready` flag with release ordering.
// Attachers open by name, validate magic and ABI version, wait for `ready`
// (acquire), and then verify that the layout hash *they* computed while
// walking the same construction sequence matches the creator's — a mismatch
// means the two processes compiled different layouts (different code
// version, different pool size) and binding would reinterpret garbage, so
// it is a hard error, not UB.
//
// Cleanup: destruction unmaps always and shm_unlinks when this process
// created the segment. Because a SIGKILLed creator runs no destructors,
// creators also register their segment names in a process-wide atexit
// registry (best effort), and tools/shm_gc.py sweeps /dev/shm for segments
// whose creator pid is gone — the two-layer answer to stale segments.
#pragma once

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "util/assert.h"

namespace aba::shm {

// First bytes of every segment. Bump kAbiVersion on any layout-affecting
// change to this header or to the arena placement rules.
struct SegmentHeader {
  static constexpr std::uint64_t kMagic = 0x314d485341424121ull;  // "!ABASHM1"
  static constexpr std::uint32_t kAbiVersion = 1;

  std::uint64_t magic = 0;
  std::uint32_t abi_version = 0;
  std::uint32_t max_procs = 0;
  std::uint64_t segment_bytes = 0;
  std::int64_t creator_pid = 0;
  std::uint64_t layout_hash = 0;   // Stamped by publish().
  std::atomic<std::uint32_t> ready{0};
};

// Names of segments this process created and has not yet unlinked; a
// best-effort atexit sweep for clean exits (SIGKILL is tools/shm_gc.py's
// job). Registered lazily so programs that never touch shm pay nothing.
class UnlinkRegistry {
 public:
  static UnlinkRegistry& instance() {
    static UnlinkRegistry* r = [] {
      auto* reg = new UnlinkRegistry();
      std::atexit([] { UnlinkRegistry::instance().unlink_all(); });
      return reg;
    }();
    return *r;
  }

  void add(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    names_.push_back(name);
  }

  void remove(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = names_.begin(); it != names_.end(); ++it) {
      if (*it == name) {
        names_.erase(it);
        return;
      }
    }
  }

  void unlink_all() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& name : names_) ::shm_unlink(name.c_str());
    names_.clear();
  }

 private:
  std::mutex mu_;
  std::vector<std::string> names_;
};

class ShmSegment {
 public:
  // Creates a fresh segment (fails if the name exists — stale segments are
  // surfaced, not silently recycled; run tools/shm_gc.py to sweep).
  static ShmSegment create(const std::string& name, std::size_t bytes,
                           int max_procs) {
    const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    ABA_CHECK_MSG(fd >= 0, "shm_open(O_CREAT|O_EXCL) failed — stale segment? "
                           "(tools/shm_gc.py sweeps dead creators)");
    ABA_CHECK(::ftruncate(fd, static_cast<off_t>(bytes)) == 0);
    void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    ABA_CHECK(base != MAP_FAILED);

    ShmSegment seg;
    seg.name_ = name;
    seg.base_ = base;
    seg.bytes_ = bytes;
    seg.owner_ = true;
    UnlinkRegistry::instance().add(name);

    auto* header = new (base) SegmentHeader();
    header->magic = SegmentHeader::kMagic;
    header->abi_version = SegmentHeader::kAbiVersion;
    header->max_procs = static_cast<std::uint32_t>(max_procs);
    header->segment_bytes = bytes;
    header->creator_pid = ::getpid();
    return seg;
  }

  // Opens an existing segment and blocks until the creator publishes.
  static ShmSegment attach(const std::string& name) {
    int fd = -1;
    for (int attempt = 0; attempt < 10000; ++attempt) {
      fd = ::shm_open(name.c_str(), O_RDWR, 0600);
      if (fd >= 0) break;
      ABA_CHECK_MSG(errno == ENOENT, "shm_open(attach) failed");
      ::usleep(1000);  // The creator may not have created it yet.
    }
    ABA_CHECK_MSG(fd >= 0, "shm segment never appeared");

    // The creator sizes the file before publishing; wait out a zero-length
    // race window rather than mapping an empty file.
    struct stat st{};
    for (int attempt = 0; attempt < 10000; ++attempt) {
      ABA_CHECK(::fstat(fd, &st) == 0);
      if (st.st_size > 0) break;
      ::usleep(1000);
    }
    ABA_CHECK_MSG(st.st_size > 0, "shm segment never sized");

    const std::size_t bytes = static_cast<std::size_t>(st.st_size);
    void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    ABA_CHECK(base != MAP_FAILED);

    ShmSegment seg;
    seg.name_ = name;
    seg.base_ = base;
    seg.bytes_ = bytes;
    seg.owner_ = false;

    auto* header = static_cast<SegmentHeader*>(base);
    for (int attempt = 0; attempt < 100000; ++attempt) {
      if (header->ready.load(std::memory_order_acquire) != 0) break;
      ::usleep(100);
    }
    ABA_CHECK_MSG(header->ready.load(std::memory_order_acquire) != 0,
                  "shm creator never published the segment");
    ABA_CHECK_MSG(header->magic == SegmentHeader::kMagic,
                  "shm segment magic mismatch (not ours, or corrupt)");
    ABA_CHECK_MSG(header->abi_version == SegmentHeader::kAbiVersion,
                  "shm segment ABI version mismatch");
    ABA_CHECK(header->segment_bytes == bytes);
    return seg;
  }

  ShmSegment(ShmSegment&& o) noexcept { *this = std::move(o); }
  ShmSegment& operator=(ShmSegment&& o) noexcept {
    destroy();
    name_ = std::move(o.name_);
    base_ = o.base_;
    bytes_ = o.bytes_;
    owner_ = o.owner_;
    o.base_ = nullptr;
    o.owner_ = false;
    return *this;
  }
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;
  ~ShmSegment() { destroy(); }

  // Creator only: stamp the arena layout fingerprint and open the gate.
  void publish(std::uint64_t layout_hash) {
    ABA_CHECK(owner_);
    header().layout_hash = layout_hash;
    header().ready.store(1, std::memory_order_release);
  }

  // Attacher only: my independently-computed layout must equal the creator's.
  void verify_layout(std::uint64_t layout_hash) const {
    ABA_CHECK_MSG(header().layout_hash == layout_hash,
                  "shm layout hash mismatch: attacher constructed a "
                  "different object sequence than the creator");
  }

  SegmentHeader& header() const { return *static_cast<SegmentHeader*>(base_); }

  // The arena region: everything after the (aligned) header.
  void* arena_base() const {
    return static_cast<char*>(base_) + arena_offset();
  }
  std::size_t arena_bytes() const { return bytes_ - arena_offset(); }

  const std::string& name() const { return name_; }
  bool owner() const { return owner_; }
  int max_procs() const { return static_cast<int>(header().max_procs); }

 private:
  static constexpr std::size_t arena_offset() {
    return (sizeof(SegmentHeader) + 63) / 64 * 64;
  }

  ShmSegment() = default;

  void destroy() {
    if (base_ != nullptr) {
      ::munmap(base_, bytes_);
      base_ = nullptr;
    }
    if (owner_ && !name_.empty()) {
      ::shm_unlink(name_.c_str());
      UnlinkRegistry::instance().remove(name_);
      owner_ = false;
    }
  }

  std::string name_;
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  bool owner_ = false;
};

// A collision-free per-test segment name: "/aba.<pid>.<counter>".
inline std::string unique_segment_name() {
  static std::atomic<std::uint64_t> counter{0};
  char buf[64];
  std::snprintf(buf, sizeof buf, "/aba.%ld.%llu", static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    counter.fetch_add(1, std::memory_order_relaxed)));
  return buf;
}

}  // namespace aba::shm
