// LlscRegisterArray — a wait-free, constant-time LL/SC/VL object from ONE
// bounded CAS object plus n bounded registers, in the style of Anderson and
// Moir [2] and Jayanti and Petrovic [15].
//
// This is the (t = O(1), m = Theta(n)) point on the paper's time-space
// tradeoff curve — the point Theorem 1(b) / Corollary 1 proves optimal:
// m*t >= n-1, and here m*t ~ 3(n+1). (Our Figure 3 implementation is the
// opposite corner: m = 1, t = O(n).)
//
// Construction. The CAS object X holds a triple (value, pid, seq) with seq
// drawn from {0..2n+1}; the announce array plus GetSeq() machinery of
// Figure 4 (see sequence_reservation.h) guarantees a (pid, seq) pair is
// never re-installed in X while some announce entry still pins it. The paper
// itself notes Figure 4's "main idea is similar to one used in the
// multi-layered construction of LL/SC/VL from CAS by Jayanti and Petrovic,
// which itself is a modified version of the implementation by Anderson and
// Moir" — this class is that idea run in the LL/SC direction.
//
//   LL_p:    w1 := X.Read(); A[p].Write(announcement of w1); w2 := X.Read().
//            If w1 = w2 the link (p's pinned word) is protected: at the
//            moment of the second read, X held w1 while A[p] pinned it, so
//            GetSeq will not let that (pid, seq) be reused until p
//            re-announces. If w1 != w2, a successful SC linearized between
//            the two reads, so p's link is already broken (local flag b);
//            the LL linearizes at the first read. 3 steps.
//   SC_p(y): if b, fail (0 steps). Otherwise s := GetSeq_p() (1 step) and
//            CAS(X, linked word, (y, p, s)) (1 step). The CAS succeeds iff X
//            is bit-identical to the linked word, and pinning makes
//            recurrence impossible, so bit-equality <=> no successful SC
//            since the LL. 2 steps.
//   VL_p:    if b, false; else one read of X compared to the linked word.
//
// Space: 1 CAS + n registers = n+1 bounded objects; every operation is O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "core/platform.h"
#include "core/sequence_reservation.h"
#include "util/cacheline.h"
#include "util/packed_word.h"

namespace aba::core {

template <Platform P>
class LlscRegisterArray {
 public:
  struct Options {
    unsigned value_bits = 16;
    std::uint64_t initial_value = 0;
    bool initially_linked = true;
    // See AbaRegisterBounded::Options — 0 means the correct 2n+2 domain.
    std::uint64_t seq_domain = 0;
  };

  LlscRegisterArray(typename P::Env& env, int n, Options options = {})
      : n_(n),
        options_(options),
        codec_(util::TripleCodec::for_processes(n, options.value_bits)),
        board_(env, n, codec_,
               options.seq_domain == 0
                   ? SequenceReservation<P>::correct_seq_domain(n)
                   : options.seq_domain),
        x_(env, "X", util::TripleCodec::initial(),
           sim::BoundSpec::bounded(codec_.total_bits())),
        locals_(n) {
    ABA_CHECK(n >= 1);
    for (auto& local : locals_) {
      local.link_word = util::TripleCodec::initial();
      local.b = !options.initially_linked;
    }
  }

  // LL_p() — 3 shared steps.
  std::uint64_t ll(int p) {
    Local& local = locals_[p];
    const std::uint64_t w1 = x_.read();
    board_.announce(p, codec_.announcement(w1));
    const std::uint64_t w2 = x_.read();
    if (w1 == w2) {
      local.link_word = w1;
      local.b = false;
    } else {
      // A successful SC changed X between the two reads; the link obtained
      // at the linearization point (the first read) is already broken.
      local.b = true;
    }
    return value_of(w1);
  }

  // SC_p(y) — at most 2 shared steps.
  bool sc(int p, std::uint64_t y) {
    Local& local = locals_[p];
    if (local.b) return false;
    local.b = true;  // The SC consumes the link either way.
    const std::uint64_t s = board_.get_seq(p);
    return x_.cas(local.link_word,
                  codec_.pack(y, static_cast<std::uint64_t>(p), s));
  }

  // VL_p() — at most 1 shared step.
  bool vl(int p) {
    Local& local = locals_[p];
    if (local.b) return false;
    return x_.read() == local.link_word;
  }

  int num_processes() const { return n_; }
  // Space: 1 CAS object + n announce registers.
  int num_shared_objects() const { return n_ + 1; }
  int worst_case_ll_steps() const { return 3; }
  int worst_case_sc_steps() const { return 2; }
  int worst_case_vl_steps() const { return 1; }
  bool is_under_provisioned() const { return board_.is_under_provisioned(); }

 private:
  std::uint64_t value_of(std::uint64_t w) const {
    return codec_.valid(w) ? codec_.value(w) : options_.initial_value;
  }

  // Owner-written only; padded against false sharing between neighbours.
  struct alignas(util::kCacheLineSize) Local {
    std::uint64_t link_word = 0;
    bool b = false;
  };

  int n_;
  Options options_;
  util::TripleCodec codec_;
  SequenceReservation<P> board_;
  typename P::Cas x_;
  std::vector<Local> locals_;
};

}  // namespace aba::core
