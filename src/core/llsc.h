// The LL/SC/VL interface (paper, Section 1).
//
//   LL_p()   — load-linked: returns the current value and links p to it.
//   SC_p(x)  — store-conditional: succeeds (writes x, returns true) iff no
//              other successful SC linearized since p's last LL; otherwise
//              fails (returns false, writes nothing). Success or failure,
//              an SC consumes p's link.
//   VL_p()   — verify-link: true iff no successful SC linearized since p's
//              last LL; does not change anything.
//
// The `initially_linked` option of every implementation selects the paper's
// Figure 5 w.l.o.g. convention (each process starts linked to the initial
// value, so a VL before any LL succeeds while no SC has executed) or the
// strict convention (SC/VL fail until the process performs an LL).
//
// Implementations (all satisfy LlScVl<Impl>):
//   LlscSingleCas     — one bounded CAS object, O(n) steps (Fig. 3, Thm 2).
//   LlscRegisterArray — one bounded CAS + n bounded registers, O(1) steps
//                       (the Anderson–Moir / Jayanti–Petrovic point that
//                       Corollary 1 proves optimal).
//   LlscUnboundedTag  — one unbounded CAS, O(1) steps (Moir [26]; the
//                       construction the lower bound separates from).
//
// The sequential specification is spec::LlscSpec.
#pragma once

#include <concepts>
#include <cstdint>

namespace aba::core {

template <class L>
concept LlScVl = requires(L l, int pid, std::uint64_t value) {
  { l.ll(pid) } -> std::same_as<std::uint64_t>;
  { l.sc(pid, value) } -> std::same_as<bool>;
  { l.vl(pid) } -> std::same_as<bool>;
};

}  // namespace aba::core
