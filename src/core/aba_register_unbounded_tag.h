// AbaRegisterUnboundedTag — the "trivial" baseline the paper contrasts its
// bounded results against (Section 1): augment a single register with an
// unbounded tag that changes on every write, and ABA detection costs one
// step per operation.
//
// The tag is (writer pid, per-writer counter), so concurrent writers never
// produce colliding tags. The counter grows without bound, which is exactly
// why this construction does not contradict Theorem 1: the lower bounds
// require *bounded* base objects. The backing register is declared unbounded
// (BoundSpec::unbounded()), and the lower-bound engines classify the
// implementation accordingly.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/platform.h"
#include "util/packed_word.h"

namespace aba::core {

template <Platform P>
class AbaRegisterUnboundedTag {
 public:
  struct Options {
    unsigned value_bits = 8;
    std::uint64_t initial_value = 0;
  };

  AbaRegisterUnboundedTag(typename P::Env& env, int n, Options options = {})
      : n_(n),
        options_(options),
        pid_bits_(util::bits_for(static_cast<std::uint64_t>(n) - 1)),
        x_(env, "X", pack(options.initial_value, 0),
           sim::BoundSpec::unbounded()),
        locals_(n) {
    ABA_CHECK(n >= 1);
    for (auto& local : locals_) local.last_word = pack(options.initial_value, 0);
  }

  // One shared step.
  void dwrite(int p, std::uint64_t x) {
    Local& local = locals_[p];
    // Tag = (counter, pid): unique across all writers, never reused.
    const std::uint64_t tag =
        (++local.write_counter << pid_bits_) | static_cast<std::uint64_t>(p);
    x_.write(pack(x, tag));
  }

  // One shared step.
  std::pair<std::uint64_t, bool> dread(int q) {
    Local& local = locals_[q];
    const std::uint64_t w = x_.read();
    const bool flag = (w != local.last_word);
    local.last_word = w;
    return {w >> kTagBits, flag};
  }

  int num_shared_registers() const { return 1; }

 private:
  static constexpr unsigned kTagBits = 48;

  std::uint64_t pack(std::uint64_t value, std::uint64_t tag) const {
    ABA_ASSERT((value >> (64 - kTagBits)) == 0);
    return (value << kTagBits) | (tag & ((1ULL << kTagBits) - 1));
  }

  struct Local {
    std::uint64_t write_counter = 0;
    std::uint64_t last_word = 0;
  };

  int n_;
  Options options_;
  unsigned pid_bits_;
  typename P::Register x_;
  std::vector<Local> locals_;
};

}  // namespace aba::core
