// The Platform concept.
//
// Every algorithm in src/core is written once, templated over a Platform
// that supplies the paper's three kinds of base objects over 64-bit words:
//
//   Register    — atomic Read() / Write()
//   Cas         — atomic Read() / CAS()            (not writable)
//   WritableCas — atomic Read() / CAS() / Write()
//
// Two platforms implement the concept:
//   aba::sim::SimPlatform      — objects live in a SimWorld; every access is
//                                a scheduled, traceable step (see sim_world.h)
//   aba::native::NativePlatform — objects are std::atomic<uint64_t> with
//                                sequentially consistent ordering
//
// Object constructors take (Env&, name, initial, BoundSpec): the environment
// (a SimWorld for the simulator, an empty token natively), a debug name, the
// initial word, and the declared width. Widths matter: the paper's lower
// bounds apply to *bounded* base objects, and the simulator asserts every
// stored value fits the declared width, so an implementation claiming to use
// bounded objects provably never exceeds them.
#pragma once

#include <concepts>
#include <cstdint>

#include "sim/types.h"

namespace aba {

template <class P>
concept Platform = requires(typename P::Env& env, typename P::Register& r,
                            typename P::Cas& c, typename P::WritableCas& w,
                            std::uint64_t v) {
  typename P::Env;
  requires std::constructible_from<typename P::Register, typename P::Env&,
                                   const char*, std::uint64_t, sim::BoundSpec>;
  requires std::constructible_from<typename P::Cas, typename P::Env&,
                                   const char*, std::uint64_t, sim::BoundSpec>;
  requires std::constructible_from<typename P::WritableCas, typename P::Env&,
                                   const char*, std::uint64_t, sim::BoundSpec>;
  { r.read() } -> std::same_as<std::uint64_t>;
  { r.write(v) } -> std::same_as<void>;
  { c.read() } -> std::same_as<std::uint64_t>;
  { c.cas(v, v) } -> std::same_as<bool>;
  { w.read() } -> std::same_as<std::uint64_t>;
  { w.cas(v, v) } -> std::same_as<bool>;
  { w.write(v) } -> std::same_as<void>;
};

}  // namespace aba
