// The Platform concept.
//
// Every algorithm in src/core is written once, templated over a Platform
// that supplies the paper's three kinds of base objects over 64-bit words:
//
//   Register    — atomic Read() / Write()
//   Cas         — atomic Read() / CAS()            (not writable)
//   WritableCas — atomic Read() / CAS() / Write()
//
// Two platforms implement the concept:
//   aba::sim::SimPlatform      — objects live in a SimWorld; every access is
//                                a scheduled, traceable step (see sim_world.h)
//   aba::native::NativePlatform<Policy> — objects are std::atomic<uint64_t>;
//                                the policy (Counted or Fast) selects step
//                                counting, bound checking, memory orderings,
//                                cache-line isolation and contention backoff
//                                (see native/native_platform.h)
//
// Object constructors take (Env&, name, initial, BoundSpec): the environment
// (a SimWorld for the simulator, an empty token natively), a debug name, the
// initial word, and the declared width. Widths matter: the paper's lower
// bounds apply to *bounded* base objects, and the simulator asserts every
// stored value fits the declared width, so an implementation claiming to use
// bounded objects provably never exceeds them.
#pragma once

#include <concepts>
#include <cstdint>
#include <type_traits>

#include "sim/types.h"
#include "util/asymmetric_fence.h"
#include "util/backoff.h"

namespace aba {

template <class P>
concept Platform = requires(typename P::Env& env, typename P::Register& r,
                            typename P::Cas& c, typename P::WritableCas& w,
                            std::uint64_t v) {
  typename P::Env;
  requires std::constructible_from<typename P::Register, typename P::Env&,
                                   const char*, std::uint64_t, sim::BoundSpec>;
  requires std::constructible_from<typename P::Cas, typename P::Env&,
                                   const char*, std::uint64_t, sim::BoundSpec>;
  requires std::constructible_from<typename P::WritableCas, typename P::Env&,
                                   const char*, std::uint64_t, sim::BoundSpec>;
  { r.read() } -> std::same_as<std::uint64_t>;
  { r.write(v) } -> std::same_as<void>;
  { c.read() } -> std::same_as<std::uint64_t>;
  { c.cas(v, v) } -> std::same_as<bool>;
  { w.read() } -> std::same_as<std::uint64_t>;
  { w.cas(v, v) } -> std::same_as<bool>;
  { w.write(v) } -> std::same_as<void>;
};

// Contention-backoff selection. Algorithms with CAS retry loops instantiate
// a PlatformBackoffT<P> per operation and invoke it after each failed
// attempt. A platform opts in by exposing a member typedef `Backoff`; the
// default is util::NullBackoff, which compiles to nothing — the simulator
// must not have its adversary-controlled schedules perturbed, and the
// Counted native policy keeps the retry loops bit-identical to the paper's
// pseudo-code. Backoff performs no shared-memory steps, so it never changes
// step complexity or linearizability; it only reduces coherence traffic on
// real hardware.
template <class P, class = void>
struct PlatformBackoff {
  using type = util::NullBackoff;
};

template <class P>
struct PlatformBackoff<P, std::void_t<typename P::Backoff>> {
  using type = typename P::Backoff;
};

template <class P>
using PlatformBackoffT = typename PlatformBackoff<P>::type;

// Fence-scheme selection, same shape as PlatformBackoff. A platform opts
// into an asymmetric StoreLoad scheme by exposing a member typedef `Fence`
// (see util/asymmetric_fence.h and the FastAsymmetric native policy); the
// default is util::NoFence — platforms whose memory orderings are seq_cst
// already carry the StoreLoad edge in the accesses themselves, and the
// simulator's interleaving semantics need no fences at all. Consumers
// (the hazard reclaimer) call PlatformFenceT<P>::light() after a guard
// publish and PlatformFenceT<P>::heavy() before a scan.
template <class P, class = void>
struct PlatformFence {
  using type = util::NoFence;
};

template <class P>
struct PlatformFence<P, std::void_t<typename P::Fence>> {
  using type = typename P::Fence;
};

template <class P>
using PlatformFenceT = typename PlatformFence<P>::type;

}  // namespace aba
