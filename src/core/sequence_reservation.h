// SequenceReservation — Figure 4's announce array plus GetSeq() machinery.
//
// This is the bounded-tag reuse-protection core shared by two constructions:
//   - the ABA-detecting register from n+1 bounded registers (Figure 4), and
//   - the constant-time LL/SC from one CAS plus n registers
//     (llsc_register_array.h, in the style of Anderson–Moir [2] and
//     Jayanti–Petrovic [15], whose "multi-layered" idea the paper notes
//     Figure 4 borrows from).
//
// Shared state: an announce array A[0..n-1]; only process q writes A[q].
// Each entry stores an announcement pair (pid, seq) — "process q currently
// depends on writer pid's sequence number seq".
//
// Guarantee provided by GetSeq() (paper, Section 3.1, proved as Claims 2-3):
// if at some point the "current" pair is (p, s) and A[q] = (p, s), then p
// will not return s from GetSeq() again until A[q] no longer holds (p, s).
// Mechanism: across any n consecutive GetSeq() calls, p scans the entire
// announce array (one entry per call, lines 28-33) and excludes every
// sequence number it saw announced against itself; the usedQ ring of length
// n+1 (lines 35-36) additionally excludes everything p returned in its last
// n calls, covering announcements p has not re-scanned yet. The sequence
// domain {0, ..., 2n+1} always leaves at least one admissible value
// (|na| <= n and |usedQ| = n+1 exclude at most 2n+1 of the 2n+2 values).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/platform.h"
// Layering note: usedQ is the sequential LocalRing from the ring-buffer
// family — structures/ring_buffer.h's plain-memory member, not a platform
// structure. Its accesses are process-local and MUST stay off the shared-
// step ledger, or Figure 4's per-op step counts change.
#include "structures/ring_buffer.h"
#include "util/cacheline.h"
#include "util/packed_word.h"

namespace aba::core {

template <Platform P>
class SequenceReservation {
 public:
  // `codec` defines announcement packing; `seq_domain` is the number of
  // distinct sequence numbers. The correct domain is 2n+2; smaller domains
  // are accepted (and flagged via is_under_provisioned) so the lower-bound
  // experiments can construct deliberately broken instances.
  SequenceReservation(typename P::Env& env, int n, const util::TripleCodec& codec,
                      std::uint64_t seq_domain)
      : n_(n), codec_(codec), seq_domain_(seq_domain) {
    ABA_CHECK(n >= 1);
    ABA_CHECK(seq_domain_ >= 2);
    // Each announce entry is its own heap allocation: with a cache-line-
    // isolating platform (NativePlatform<Fast>) the registers are over-
    // aligned, so A[q] and A[q'] — written by different processes on every
    // DRead — can never false-share a line.
    announce_.reserve(n_);
    for (int q = 0; q < n_; ++q) {
      announce_.push_back(std::make_unique<typename P::Register>(
          env, "A", 0, sim::BoundSpec::bounded(codec_.announcement_bits())));
    }
    locals_.reserve(n_);
    for (int q = 0; q < n_; ++q) locals_.push_back(Local(n_, seq_domain_));
  }

  static std::uint64_t correct_seq_domain(int n) {
    return 2 * static_cast<std::uint64_t>(n) + 2;
  }

  bool is_under_provisioned() const {
    return seq_domain_ < correct_seq_domain(n_);
  }

  // Figure 4, lines 28-37. One shared-memory step (the A[c] read); the
  // local bookkeeping is O(domain) = O(n) per call via the exclusion-count
  // table (the paper's model only counts shared steps, but we keep the
  // local work linear too).
  std::uint64_t get_seq(int p) {
    Local& local = locals_[p];
    const std::uint64_t announced = announce_[local.c]->read();  // line 28
    std::optional<std::uint64_t> seen;
    if (codec_.announcement_valid(announced) &&
        codec_.announcement_pid(announced) == static_cast<std::uint64_t>(p)) {
      seen = codec_.announcement_seq(announced);  // lines 29-30
    }
    set_na(local, local.c, seen);  // lines 29-32
    local.c = (local.c + 1) % n_;  // line 33

    // Line 34: choose s not excluded by na or usedQ. We take the smallest
    // admissible value ("choose arbitrary" in the paper) for determinism.
    std::uint64_t seq = seq_domain_;  // sentinel: none found
    for (std::uint64_t s = 0; s < seq_domain_; ++s) {
      if (local.exclusion_count[s] == 0) {
        seq = s;
        break;
      }
    }
    // With the correct domain a value always exists; with a deliberately
    // shrunk domain we fall back to the oldest used value — this is exactly
    // the unsound reuse the lower bound exploits.
    if (seq == seq_domain_) {
      const auto oldest = local.used_q.front();
      seq = oldest.has_value() ? *oldest : 0;
    }
    // Lines 35-36: slide the length-(n+1) window of recently used values.
    // (The paper enqueues then dequeues on a queue with n+1 slots; with an
    // exactly-sized ring the equivalent order is dequeue then enqueue.)
    const auto dropped = local.used_q.dequeue();
    if (dropped.has_value()) count_remove(local, *dropped);
    local.used_q.enqueue(seq);
    count_add(local, seq);
    return seq;  // line 37
  }

  // Write A[q] (one shared step). `pair` is a packed announcement.
  void announce(int q, std::uint64_t pair) { announce_[q]->write(pair); }

  // Read A[q] (one shared step).
  std::uint64_t read_own(int q) { return announce_[q]->read(); }

  int num_registers() const { return n_; }
  std::uint64_t seq_domain() const { return seq_domain_; }

 private:
  // Per-process bookkeeping; owner-written only, padded against false
  // sharing between neighbouring entries of locals_.
  struct alignas(util::kCacheLineSize) Local {
    Local(int n, std::uint64_t seq_domain)
        : na(n),
          used_q(static_cast<std::size_t>(n) + 1),
          exclusion_count(seq_domain, 0) {
      // Queue usedQ[n+1] = (bottom, ..., bottom).
      for (int i = 0; i < n + 1; ++i) used_q.enqueue(std::nullopt);
    }

    int c = 0;  // Announce-array scan cursor.
    // na as a partial map: announce slot -> sequence number seen there.
    std::vector<std::optional<std::uint64_t>> na;
    structures::LocalRing<std::optional<std::uint64_t>> used_q;
    // exclusion_count[s] = how many na entries / usedQ slots hold s; a value
    // is admissible iff its count is zero.
    std::vector<std::uint16_t> exclusion_count;
  };

  void count_add(Local& local, std::uint64_t s) const {
    if (s < seq_domain_) ++local.exclusion_count[s];
  }
  void count_remove(Local& local, std::uint64_t s) const {
    if (s < seq_domain_) {
      ABA_ASSERT(local.exclusion_count[s] > 0);
      --local.exclusion_count[s];
    }
  }
  void set_na(Local& local, int slot, std::optional<std::uint64_t> value) const {
    if (local.na[slot].has_value()) count_remove(local, *local.na[slot]);
    local.na[slot] = value;
    if (value.has_value()) count_add(local, *value);
  }

  int n_;
  util::TripleCodec codec_;
  std::uint64_t seq_domain_;
  std::vector<std::unique_ptr<typename P::Register>> announce_;
  std::vector<Local> locals_;
};

}  // namespace aba::core
