// The ABA-detecting register interface (paper, Section 1, "Results").
//
// An ABA-detecting register stores a value and supports:
//   DWrite_p(x)  — writes x; returns nothing.
//   DRead_q()    — returns (value, flag); flag is true iff some process
//                  executed a DWrite since q's previous DRead. The first
//                  DRead by q reports a flag iff any DWrite has linearized
//                  at all.
//
// Unlike a plain register, a DRead detects writes that restored the old
// value — the ABA. Single-writer variants restrict DWrite to one dedicated
// process; everything in this repository implements the stronger
// multi-writer form (the lower bounds hold even for single-writer 1-bit
// registers, which makes them stronger, and the upper bounds are
// multi-writer, which makes them stronger too).
//
// Implementations (all satisfy AbaDetectingRegister<Impl>):
//   AbaRegisterBounded        — n+1 bounded registers, O(1) steps (Fig. 4).
//   AbaRegisterFromLlsc       — 1 LL/SC/VL object, 2 steps (Fig. 5).
//   AbaRegisterUnboundedTag   — 1 unbounded register, O(1) steps (trivial).
//   AbaRegisterBoundedTagNaive— 1 bounded register; deliberately UNSOUND
//                               (tag wraparound), kept for the lower-bound
//                               and escape-rate experiments.
//
// The sequential specification used for verification is
// spec::AbaRegisterSpec; linearizability is checked against it by the test
// suites over random, round-robin and exhaustive schedules.
#pragma once

#include <concepts>
#include <cstdint>
#include <utility>

namespace aba::core {

template <class R>
concept AbaDetectingRegister = requires(R r, int pid, std::uint64_t value) {
  { r.dwrite(pid, value) } -> std::same_as<void>;
  { r.dread(pid) } -> std::same_as<std::pair<std::uint64_t, bool>>;
};

}  // namespace aba::core
