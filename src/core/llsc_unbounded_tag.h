// LlscUnboundedTag — Moir-style LL/SC/VL from a single *unbounded* CAS
// object with O(1) step complexity [26].
//
// The CAS word is (value, tag); every successful SC installs a fresh tag, so
// a CAS on the full word can never suffer an ABA. This is the construction
// the paper cites to show its lower bounds genuinely separate bounded from
// unbounded base objects: with an unbounded tag, one object and constant
// time suffice, while Theorem 1(b)/(c) forbids that for bounded objects.
//
// The tag is a global monotone counter carried inside the word. As with the
// unbounded-tag register, the word is declared BoundSpec::unbounded().
#pragma once

#include <cstdint>
#include <vector>

#include "core/platform.h"
#include "util/assert.h"

namespace aba::core {

template <Platform P>
class LlscUnboundedTag {
 public:
  struct Options {
    unsigned value_bits = 16;
    std::uint64_t initial_value = 0;
    bool initially_linked = true;
  };

  LlscUnboundedTag(typename P::Env& env, int n, Options options = {})
      : n_(n),
        options_(options),
        x_(env, "X", pack(options.initial_value, 0), sim::BoundSpec::unbounded()),
        locals_(n) {
    ABA_CHECK(options.value_bits <= 16);
    for (auto& local : locals_) {
      local.link_word = pack(options.initial_value, 0);
      local.linked = options.initially_linked;
    }
  }

  // One shared step.
  std::uint64_t ll(int p) {
    Local& local = locals_[p];
    local.link_word = x_.read();
    local.linked = true;
    return value_of(local.link_word);
  }

  // At most one shared step.
  bool sc(int p, std::uint64_t x) {
    Local& local = locals_[p];
    if (!local.linked) return false;
    local.linked = false;  // An SC consumes the link either way.
    return x_.cas(local.link_word, pack(x, tag_of(local.link_word) + 1));
  }

  // At most one shared step.
  bool vl(int p) {
    Local& local = locals_[p];
    if (!local.linked) return false;
    return x_.read() == local.link_word;
  }

  int num_shared_objects() const { return 1; }

 private:
  static constexpr unsigned kTagBits = 48;

  std::uint64_t pack(std::uint64_t value, std::uint64_t tag) const {
    ABA_ASSERT((value >> (64 - kTagBits)) == 0);
    return (value << kTagBits) | (tag & ((1ULL << kTagBits) - 1));
  }
  std::uint64_t value_of(std::uint64_t w) const { return w >> kTagBits; }
  std::uint64_t tag_of(std::uint64_t w) const {
    return w & ((1ULL << kTagBits) - 1);
  }

  struct Local {
    std::uint64_t link_word = 0;
    bool linked = false;
  };

  int n_;
  Options options_;
  typename P::Cas x_;
  std::vector<Local> locals_;
};

}  // namespace aba::core
