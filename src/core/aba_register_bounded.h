// AbaRegisterBounded — Figure 4: a linearizable wait-free multi-writer
// b-bit ABA-detecting register from n+1 bounded registers with constant
// step complexity (Theorem 3).
//
// Shared objects:
//   X        — one register holding a triple (x, p, s): the stored value x,
//              the pid p of the writer, and a sequence number s in
//              {0, ..., 2n+1}. Width: b + ceil(log n) + ceil(log(2n+2)) + 1
//              bits = b + 2 log n + O(1), as claimed by Theorem 3.
//   A[0..n-1] — announce array; only process q writes A[q]; each entry holds
//              a pair (p, s).
//
// Operations (line numbers refer to Figure 4):
//   DWrite_p(x): s <- GetSeq(); X.Write(x, p, s)            [lines 26-27]
//                2 shared steps (GetSeq reads one announce entry).
//   DRead_q():   read X -> (x,p,s); read A[q] -> (r,sr); write A[q] <- (p,s);
//                read X -> (x',p',s'); decide flag and update local b
//                [lines 38-50]. 4 shared steps.
//
// Why it works (paper Section 3.1 / Appendix C): if the two X-reads of a
// DRead return the same triple, then at the moment of the second read both
// X = (x,p,s) and A[q] = (p,s) held, so GetSeq's guarantee means (p,s) will
// not be written to X again until q replaces its announcement — the next
// DRead can therefore detect intervening DWrites by comparing A[q] with the
// pair in X. If the two reads differ, a write certainly happened after the
// linearization point (the first read), which the local flag b carries into
// the next DRead.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/platform.h"
#include "core/sequence_reservation.h"
#include "util/cacheline.h"
#include "util/packed_word.h"

namespace aba::core {

template <Platform P>
class AbaRegisterBounded {
 public:
  struct Options {
    unsigned value_bits = 8;  // b: payload width in bits.
    // Sequence-number domain; 0 means the correct 2n+2. Smaller domains are
    // deliberately unsound (used by the lower-bound experiments to construct
    // a "bounded tags without reuse protection" victim).
    std::uint64_t seq_domain = 0;
    std::uint64_t initial_value = 0;
  };

  AbaRegisterBounded(typename P::Env& env, int n, Options options = {})
      : n_(n),
        options_(options),
        codec_(util::TripleCodec::for_processes(n, options.value_bits)),
        board_(env, n, codec_,
               options.seq_domain == 0
                   ? SequenceReservation<P>::correct_seq_domain(n)
                   : options.seq_domain),
        x_(env, "X", util::TripleCodec::initial(),
           sim::BoundSpec::bounded(codec_.total_bits())),
        locals_(n) {
    ABA_CHECK(n >= 1);
    ABA_CHECK(options.value_bits >= 1 && options.value_bits <= 40);
    ABA_CHECK(codec_.value(codec_.pack(options.initial_value, 0, 0)) ==
               options.initial_value);
  }

  // DWrite_p(x) — Figure 4 lines 26-27. Two shared-memory steps.
  void dwrite(int p, std::uint64_t x) {
    const std::uint64_t s = board_.get_seq(p);  // line 26
    x_.write(codec_.pack(x, static_cast<std::uint64_t>(p), s));  // line 27
  }

  // DRead_q() — Figure 4 lines 38-50. Four shared-memory steps.
  // Returns (value, flag): flag is true iff some DWrite linearized since
  // q's previous DRead.
  std::pair<std::uint64_t, bool> dread(int q) {
    Local& local = locals_[q];
    const std::uint64_t w1 = x_.read();                       // line 38
    const std::uint64_t old_announce = board_.read_own(q);    // line 39
    board_.announce(q, codec_.announcement(w1));              // line 40
    const std::uint64_t w2 = x_.read();                       // line 41

    bool flag;
    if (codec_.announcement(w1) == old_announce) {  // line 42
      flag = local.b;                               // line 43
    } else {
      flag = true;  // line 45
    }
    local.b = (w1 != w2);  // lines 46-49

    const std::uint64_t value =
        codec_.valid(w1) ? codec_.value(w1) : options_.initial_value;
    return {value, flag};  // line 50
  }

  int num_processes() const { return n_; }
  // Space: the X register plus the n announce entries.
  int num_shared_registers() const { return n_ + 1; }
  unsigned x_register_bits() const { return codec_.total_bits(); }
  unsigned announce_register_bits() const { return codec_.announcement_bits(); }
  bool is_under_provisioned() const { return board_.is_under_provisioned(); }

 private:
  // Owner-written only; padded against false sharing between neighbours.
  struct alignas(util::kCacheLineSize) Local {
    bool b = false;  // "a DWrite linearized during my previous DRead".
  };

  int n_;
  Options options_;
  util::TripleCodec codec_;
  SequenceReservation<P> board_;
  typename P::Register x_;
  std::vector<Local> locals_;
};

}  // namespace aba::core
