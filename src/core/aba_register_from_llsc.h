// AbaRegisterFromLlsc — Figure 5 (Appendix A, Theorem 4): an ABA-detecting
// register from a single LL/SC/VL object, two shared steps per operation.
//
//   DWrite_p(x): X.LL(); X.SC(x)                       [lines 51-52]
//   DRead_q():   if X.VL() return (old, false);
//                old := X.LL(); return (old, true)     [lines 53-54]
//
// This is the reduction behind Corollary 1: any LL/SC/VL implementation
// from m bounded base objects yields an ABA-detecting register from the same
// m objects with only constant step overhead, so the ABA-detection lower
// bounds transfer to LL/SC/VL.
//
// The underlying LL/SC/VL object must use the paper's w.l.o.g. convention
// that a VL before any LL succeeds as long as no successful SC has executed
// (initially_linked = true in our implementations).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace aba::core {

// L must expose: uint64_t ll(int p); bool sc(int p, uint64_t x); bool vl(int p).
template <class L>
class AbaRegisterFromLlsc {
 public:
  // Does not take ownership of `llsc`; the object must outlive this adapter.
  AbaRegisterFromLlsc(L& llsc, int n, std::uint64_t initial_value)
      : llsc_(&llsc), old_(n, initial_value) {}

  // DWrite_p(x) — lines 51-52.
  void dwrite(int p, std::uint64_t x) {
    llsc_->ll(p);    // line 51
    llsc_->sc(p, x); // line 52
  }

  // DRead_q() — lines 53-54.
  std::pair<std::uint64_t, bool> dread(int q) {
    if (llsc_->vl(q)) {          // line 53
      return {old_[q], false};
    }
    old_[q] = llsc_->ll(q);      // line 54
    return {old_[q], true};
  }

 private:
  L* llsc_;
  std::vector<std::uint64_t> old_;
};

}  // namespace aba::core
