// LlscSingleCas — Figure 3: a linearizable wait-free LL/SC/VL object from a
// single bounded CAS object, with O(n) step complexity (Theorem 2).
//
// The CAS object X holds a pair (x, a): the object's value x and an n-bit
// string a with one bit per process. Process p's bit indicates whether a
// successful SC linearized since p's last LL (set = link broken).
//
//   LL_p   — read X; if p's bit is clear, the LL linearizes at that read.
//            Otherwise p tries up to n times to clear its bit with a CAS
//            (lines 19-23); if a CAS succeeds the LL linearizes there. If
//            all n CASes fail, Claim 6 shows some other process's SC
//            must have linearized meanwhile, so p sets its local flag b
//            ("my link is already broken") and the LL linearizes at its
//            very first read. Up to 1 + 2n steps.
//   SC_p(y) — if b is set, fail immediately (0 steps). Otherwise up to n
//            rounds of read-then-CAS((y_i, a), (y, 2^n - 1)): a successful
//            CAS sets every process's bit and linearizes the SC. Seeing its
//            own bit set, or failing n times, lets p conclude another SC
//            linearized, and fail. Up to 2n steps.
//   VL_p   — one read; true iff p's bit is clear and b is false.
//
// The counting argument behind the n-iteration bound (Claim 6): every
// successful CAS issued by an LL clears one bit of a from 1 to 0 and no LL
// sets bits, so between two successful SCs at most n - 1 LL-CASes can
// succeed; n CAS failures therefore certify an intervening successful SC.
#pragma once

#include <cstdint>
#include <vector>

#include "core/platform.h"
#include "util/cacheline.h"
#include "util/packed_word.h"

namespace aba::core {

template <Platform P>
class LlscSingleCas {
 public:
  struct Options {
    unsigned value_bits = 32;
    std::uint64_t initial_value = 0;
    // If true, every process initially holds a valid link to the initial
    // value (all bits of a start clear) — the w.l.o.g. convention of the
    // paper's Figure 5 reduction. If false, all bits start set, so SC/VL
    // fail until the process performs its first LL.
    bool initially_linked = true;
  };

  LlscSingleCas(typename P::Env& env, int n, Options options = {})
      : n_(n),
        options_(options),
        codec_(static_cast<unsigned>(n), options.value_bits),
        x_(env, "X",
           codec_.pack(options.initial_value,
                       options.initially_linked ? 0 : codec_.all_bits()),
           sim::BoundSpec::bounded(codec_.total_bits())),
        locals_(n) {
    ABA_CHECK(n >= 1 && n + options.value_bits <= 64);
  }

  // LL_p() — Figure 3 lines 14-25.
  std::uint64_t ll(int p) {
    Local& local = locals_[p];
    const std::uint64_t w = x_.read();  // line 14
    if (!codec_.bit(w, static_cast<unsigned>(p))) {  // line 15
      local.b = false;        // line 16
      return codec_.value(w);  // line 17
    }
    PlatformBackoffT<P> backoff;
    for (int i = 0; i < n_; ++i) {  // line 19
      const std::uint64_t w2 = x_.read();  // line 20
      ABA_ASSERT_MSG(codec_.bit(w2, static_cast<unsigned>(p)),
                     "only p clears p's bit; it must still be set here");
      if (x_.cas(w2, codec_.with_bit_cleared(w2, static_cast<unsigned>(p)))) {
        local.b = false;         // line 22
        return codec_.value(w2);  // line 23
      }
      // Local-only; the loop stays bounded by n (Claim 6). Skipped on the
      // last iteration — there is no further attempt to pace.
      if (i + 1 < n_) backoff();
    }
    local.b = true;          // line 24
    return codec_.value(w);  // line 25
  }

  // SC_p(x) — Figure 3 lines 1-8. Returns true iff the SC succeeded.
  bool sc(int p, std::uint64_t x) {
    Local& local = locals_[p];
    if (local.b) return false;  // line 1
    PlatformBackoffT<P> backoff;
    for (int i = 0; i < n_; ++i) {  // line 2
      const std::uint64_t w = x_.read();  // line 3
      if (codec_.bit(w, static_cast<unsigned>(p))) {  // line 4
        return false;  // line 5
      }
      if (x_.cas(w, codec_.pack(x, codec_.all_bits()))) {  // line 6
        return true;  // line 7
      }
      if (i + 1 < n_) backoff();
    }
    return false;  // line 8
  }

  // VL_p() — Figure 3 lines 9-13.
  bool vl(int p) {
    const std::uint64_t w = x_.read();  // line 9
    return !codec_.bit(w, static_cast<unsigned>(p)) && !locals_[p].b;  // 10-13
  }

  int num_processes() const { return n_; }
  // Space: the single CAS object.
  int num_shared_objects() const { return 1; }
  unsigned x_object_bits() const { return codec_.total_bits(); }
  // Worst-case step complexities from the structure above.
  int worst_case_ll_steps() const { return 1 + 2 * n_; }
  int worst_case_sc_steps() const { return 2 * n_; }
  int worst_case_vl_steps() const { return 1; }

 private:
  // Only process p touches locals_[p]; padded so adjacent entries in the
  // vector never share (and hence never ping-pong) a cache line.
  struct alignas(util::kCacheLineSize) Local {
    bool b = false;
  };

  int n_;
  Options options_;
  util::PairCodec codec_;
  typename P::Cas x_;
  std::vector<Local> locals_;
};

}  // namespace aba::core
