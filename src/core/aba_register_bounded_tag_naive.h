// AbaRegisterBoundedTagNaive — the classic *unsound* approach the paper's
// introduction critiques: a single bounded register with a tag that wraps
// around (IBM-style tagging with finitely many tags, [14, 24, 25, 28, 29]).
//
//   DWrite: bump the tag modulo 2^tag_bits, write (value, tag).  1 step.
//   DRead:  read the word; flag = (word != last word I saw).     1 step.
//
// With one bounded register this sits far below Theorem 1(a)'s m >= n-1
// space bound, so it MUST be incorrect — and indeed after 2^tag_bits
// same-value writes the word recurs and a reader misses the ABA. The
// covering adversary (Lemma 1's construction, src/lowerbound) finds this
// violation mechanically, and bench_aba_escape quantifies the escape rate
// as a function of tag width.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/platform.h"
#include "util/packed_word.h"

namespace aba::core {

template <Platform P>
class AbaRegisterBoundedTagNaive {
 public:
  struct Options {
    unsigned value_bits = 8;
    unsigned tag_bits = 2;  // 2^tag_bits distinct tags before wraparound.
    std::uint64_t initial_value = 0;
  };

  AbaRegisterBoundedTagNaive(typename P::Env& env, int n, Options options = {})
      : n_(n),
        options_(options),
        x_(env, "X", pack(options.initial_value, 0),
           sim::BoundSpec::bounded(options.value_bits + options.tag_bits)),
        locals_(n) {
    ABA_CHECK(options.value_bits + options.tag_bits <= 64);
    for (auto& local : locals_) local.last_word = pack(options.initial_value, 0);
  }

  // One shared step. (Writers keep a local tag counter; tags wrap.)
  void dwrite(int p, std::uint64_t x) {
    Local& local = locals_[p];
    local.tag = (local.tag + 1) & tag_mask();
    x_.write(pack(x, local.tag));
  }

  // One shared step.
  std::pair<std::uint64_t, bool> dread(int q) {
    Local& local = locals_[q];
    const std::uint64_t w = x_.read();
    const bool flag = (w != local.last_word);
    local.last_word = w;
    return {w >> options_.tag_bits, flag};
  }

  int num_shared_registers() const { return 1; }
  std::uint64_t tag_period() const { return tag_mask() + 1; }

 private:
  std::uint64_t tag_mask() const { return (1ULL << options_.tag_bits) - 1; }

  std::uint64_t pack(std::uint64_t value, std::uint64_t tag) const {
    return (value << options_.tag_bits) | tag;
  }

  struct Local {
    std::uint64_t tag = 0;
    std::uint64_t last_word = 0;
  };

  int n_;
  Options options_;
  typename P::Register x_;
  std::vector<Local> locals_;
};

}  // namespace aba::core
