#!/usr/bin/env python3
"""Sweep stale shared-memory segments left by SIGKILLed creators.

Segments of the cross-process tier (src/shm/shm_segment.h) are named
/aba.<pid>.<counter> and carry a versioned header whose creator_pid field
identifies the process that created them. A cleanly-exiting creator
unlinks its segments via the atexit registry; a SIGKILLed one cannot, so
its segments linger in /dev/shm until someone sweeps them. This tool is
that someone: it walks /dev/shm, validates each candidate's magic, and
unlinks every segment whose creator pid no longer exists.

The death test mirrors the lease protocol's: a pid that still answers
kill(pid, 0) — including EPERM, "exists but not ours" — keeps its
segments; only a definitively-gone creator is swept. Attached survivors
of a dead creator keep their mappings (POSIX keeps unlinked segments
alive until the last munmap), so sweeping is always safe.

Usage:
    tools/shm_gc.py [--dry-run] [--shm-dir /dev/shm] [--prefix aba.]

Exit codes: 0 swept (or nothing to do), 1 some unlink failed.
"""

import argparse
import errno
import os
import struct
import sys

# Must mirror SegmentHeader in src/shm/shm_segment.h.
MAGIC = 0x314D485341424121  # "!ABASHM1"
HEADER_FMT = "<QIIQqQ"      # magic, abi, max_procs, bytes, creator_pid, hash
HEADER_LEN = struct.calcsize(HEADER_FMT)


def pid_alive(pid):
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # Exists, not ours.


def read_creator(path):
    """Returns (creator_pid, reason-if-skipped)."""
    try:
        with open(path, "rb") as f:
            header = f.read(HEADER_LEN)
    except OSError as e:
        return None, f"unreadable ({e.strerror})"
    if len(header) < HEADER_LEN:
        return None, "too short for a segment header"
    magic, _abi, _procs, _bytes, creator_pid, _hash = struct.unpack(
        HEADER_FMT, header)
    if magic != MAGIC:
        return None, "magic mismatch (not one of ours)"
    return creator_pid, None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shm-dir", default="/dev/shm",
                    help="where POSIX shm segments appear as files")
    ap.add_argument("--prefix", default="aba.",
                    help="segment filename prefix to consider")
    ap.add_argument("--dry-run", action="store_true",
                    help="report what would be swept, unlink nothing")
    args = ap.parse_args()

    try:
        names = sorted(os.listdir(args.shm_dir))
    except OSError as e:
        print(f"shm_gc: cannot list {args.shm_dir}: {e}", file=sys.stderr)
        return 1

    failed = 0
    swept = 0
    for name in names:
        if not name.startswith(args.prefix):
            continue
        path = os.path.join(args.shm_dir, name)
        creator_pid, skip = read_creator(path)
        if skip is not None:
            print(f"shm_gc: skip {name}: {skip}")
            continue
        if pid_alive(creator_pid):
            print(f"shm_gc: keep {name}: creator pid {creator_pid} alive")
            continue
        if args.dry_run:
            print(f"shm_gc: would sweep {name} (creator pid {creator_pid} "
                  f"gone)")
            swept += 1
            continue
        try:
            os.unlink(path)
            print(f"shm_gc: swept {name} (creator pid {creator_pid} gone)")
            swept += 1
        except OSError as e:
            if e.errno != errno.ENOENT:  # Lost a race to another sweeper: fine.
                print(f"shm_gc: cannot unlink {name}: {e.strerror}",
                      file=sys.stderr)
                failed += 1
    if swept == 0 and failed == 0:
        print("shm_gc: nothing to sweep")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
