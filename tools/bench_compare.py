#!/usr/bin/env python3
"""Compare two BENCH_native.json files cell by cell.

--baseline and --fresh are two arbitrary E9 JSON files: the committed
baseline vs a fresh build in CI, but equally two trajectory snapshots from
different machines or commits when diffing by hand.

Each record is keyed by (scenario, platform, orderings, reclaimer, fence,
shards, threads) — the cell identity E9 sweeps (orderings and fence
included so a build with different memory-ordering or fence-scheme options
shows up as added/removed cells rather than as spurious per-cell
regressions) — and the fresh ops_per_sec is compared to the baseline's. A
cell that lost more than --threshold (default 30%) of its throughput is a
regression; the run fails (exit 1) if any regression is found, unless
--warn-only is set (shared CI runners are noisy and their smoke cells are
measured for milliseconds — there the comparison is a trajectory signal,
not a gate; the nightly workflow runs the same comparison in failing mode
over longer measurements).

Cells are judged only when both sides measured long enough to mean
anything (--min-seconds, default 0.05): drain-limited leaky cells and
sub-hundredth smoke cells are reported informationally but never fail the
run. Added/removed cells (a new scenario, a retired dimension) are listed,
never failed on. The markdown report also carries a geomean-of-ratios
summary per (scenario, reclaimer), the per-group trajectory line that
single-cell noise cannot fake.

Latency cells (schema 2): a record whose p99_ns is nonzero carries per-op
latency percentiles (E9's ring scenarios always do; legacy headline cells
do under --latency). When BOTH sides of a cell carry a nonzero p99_ns, a
fresh p99 that grew by more than --latency-threshold (default 50% — tail
latency on shared runners is substantially noisier than mean throughput,
so the latency gate defaults looser than --threshold and is tuned
independently) is a latency regression and gates exactly like a
throughput loss. Schema-1 baselines (no percentile fields) are accepted
read-only: their cells simply never enter the p99 gate, so the trajectory
can roll forward without rewriting history.

Usage:
  tools/bench_compare.py --baseline BENCH_native.json \
      --fresh build/BENCH_native.json [--threshold 0.30] [--warn-only] \
      [--report build/bench_compare.md]

Exit codes: 0 ok (or --warn-only), 1 regression found, 2 usage/input error.
"""

import argparse
import contextlib
import json
import math
import signal
import sys

# Behave like a normal CLI filter when piped into head & co.
with contextlib.suppress(AttributeError, ValueError):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load_records(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    records = doc.get("results", [])
    if not records:
        print(f"bench_compare: {path} has no results", file=sys.stderr)
        sys.exit(2)
    out = {}
    for r in records:
        key = (
            r["scenario"],
            r["platform"],
            r.get("orderings", ""),
            r.get("reclaimer", "none"),
            r.get("fence", "seq_cst"),
            int(r.get("shards", 1)),
            int(r["threads"]),
        )
        if key in out:
            print(f"bench_compare: duplicate cell {key} in {path}",
                  file=sys.stderr)
            sys.exit(2)
        out[key] = r
    return out, doc.get("context", {}), int(doc.get("schema", 1))


def fmt_key(key):
    scenario, platform, orderings, reclaimer, fence, shards, threads = key
    return (f"{scenario}/{platform}/{orderings}/{reclaimer}/{fence}"
            f"/shards={shards}/threads={threads}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, help="committed BENCH_native.json")
    ap.add_argument("--fresh", required=True, help="freshly measured BENCH_native.json")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="fractional throughput loss that counts as a regression")
    ap.add_argument("--latency-threshold", type=float, default=0.50,
                    help="fractional p99 growth that counts as a latency "
                         "regression (looser than --threshold by default: "
                         "tail latency is noisier than mean throughput)")
    ap.add_argument("--min-seconds", type=float, default=0.05,
                    help="ignore cells measured for less than this on either side")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but always exit 0")
    ap.add_argument("--report", default=None,
                    help="write a markdown report to this path")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="write the comparison as machine-readable JSON "
                         "(dashboards, trend jobs); '-' for stdout")
    args = ap.parse_args()

    base, base_ctx, base_schema = load_records(args.baseline)
    fresh, fresh_ctx, fresh_schema = load_records(args.fresh)

    regressions = []  # (key, base_rate, fresh_rate, delta)
    improvements = []
    informational = []  # too short to judge
    latency_regressions = []  # (key, base_p99_ns, fresh_p99_ns, delta)
    latency_compared = 0
    ratios_by_group = {}  # (scenario, reclaimer) -> [fresh/base, ...]
    compared = 0
    for key in sorted(base.keys() & fresh.keys()):
        b, f = base[key], fresh[key]
        if b["ops_per_sec"] <= 0:
            continue
        compared += 1
        ratio = f["ops_per_sec"] / b["ops_per_sec"]
        delta = ratio - 1.0
        row = (key, b["ops_per_sec"], f["ops_per_sec"], delta)
        if ratio > 0:
            ratios_by_group.setdefault((key[0], key[3]), []).append(ratio)
        too_short = (
            min(b.get("seconds", 0), f.get("seconds", 0)) < args.min_seconds)
        if too_short:
            informational.append(row)
        elif delta < -args.threshold:
            regressions.append(row)
        elif delta > args.threshold:
            improvements.append(row)
        # The p99 gate: only when both sides actually recorded latency
        # (schema-1 baselines never did — their cells stay throughput-only).
        b_p99, f_p99 = b.get("p99_ns", 0), f.get("p99_ns", 0)
        if b_p99 > 0 and f_p99 > 0 and not too_short:
            latency_compared += 1
            lat_delta = f_p99 / b_p99 - 1.0
            if lat_delta > args.latency_threshold:
                latency_regressions.append((key, b_p99, f_p99, lat_delta))
    added = sorted(fresh.keys() - base.keys())
    removed = sorted(base.keys() - fresh.keys())

    lines = []
    lines.append(f"# Bench comparison: {args.fresh} vs baseline {args.baseline}")
    lines.append("")
    lines.append(f"- cells compared: {compared} "
                 f"(threshold {args.threshold:.0%}, min seconds {args.min_seconds})")
    lines.append(f"- schema: baseline {base_schema}, fresh {fresh_schema}; "
                 f"latency (p99) cells gated: {latency_compared} "
                 f"(latency threshold {args.latency_threshold:.0%})")
    lines.append(f"- baseline host concurrency: "
                 f"{base_ctx.get('hardware_concurrency', '?')}, "
                 f"fresh: {fresh_ctx.get('hardware_concurrency', '?')}")
    lines.append(f"- regressions: {len(regressions)} throughput + "
                 f"{len(latency_regressions)} latency, "
                 f"improvements: {len(improvements)}, "
                 f"too-short-to-judge: {len(informational)}, "
                 f"added: {len(added)}, removed: {len(removed)}")
    lines.append("")

    def table(title, rows):
        if not rows:
            return
        lines.append(f"## {title}")
        lines.append("")
        lines.append("| cell | baseline ops/s | fresh ops/s | delta |")
        lines.append("|---|---:|---:|---:|")
        for key, b, f, d in rows:
            lines.append(f"| {fmt_key(key)} | {b:,.0f} | {f:,.0f} | {d:+.1%} |")
        lines.append("")

    # Geomean of fresh/baseline ratios per (scenario, reclaimer): the
    # per-group trajectory summary. A geomean treats a 2x gain and a 0.5x
    # loss as cancelling, so it is the honest "did this family move"
    # number, robust to the single-cell noise the per-cell gate ignores.
    if ratios_by_group:
        lines.append("## Geomean fresh/baseline by (scenario, reclaimer)")
        lines.append("")
        lines.append("| scenario | reclaimer | cells | geomean |")
        lines.append("|---|---|---:|---:|")
        for (scenario, reclaimer), ratios in sorted(ratios_by_group.items()):
            geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
            lines.append(f"| {scenario} | {reclaimer} | {len(ratios)} "
                         f"| {geomean:.3f}x |")
        lines.append("")

    table("Regressions", regressions)
    if latency_regressions:
        lines.append("## Latency regressions (p99)")
        lines.append("")
        lines.append("| cell | baseline p99 ns | fresh p99 ns | delta |")
        lines.append("|---|---:|---:|---:|")
        for key, b, f, d in latency_regressions:
            lines.append(f"| {fmt_key(key)} | {b:,.0f} | {f:,.0f} | {d:+.1%} |")
        lines.append("")
    table("Improvements (>threshold)", improvements)
    # Cells too short to gate on still carry the trajectory signal — render
    # the ones whose delta crossed the threshold so a smoke-mode report
    # (milliseconds per cell) is never empty of per-cell data.
    table("Beyond threshold but too short to judge (informational)",
          [r for r in informational if abs(r[3]) > args.threshold])
    if added:
        lines.append("## Added cells")
        lines.append("")
        lines.extend(f"- {fmt_key(k)}" for k in added)
        lines.append("")
    if removed:
        lines.append("## Removed cells")
        lines.append("")
        lines.extend(f"- {fmt_key(k)}" for k in removed)
        lines.append("")

    if args.json:
        def row_obj(row):
            key, b, f, d = row
            return {"cell": fmt_key(key), "baseline_ops_per_sec": b,
                    "fresh_ops_per_sec": f, "delta": d}
        doc = {
            "baseline": args.baseline,
            "fresh": args.fresh,
            "threshold": args.threshold,
            "latency_threshold": args.latency_threshold,
            "min_seconds": args.min_seconds,
            "cells_compared": compared,
            "latency_cells_compared": latency_compared,
            "latency_regressions": [
                {"cell": fmt_key(key), "baseline_p99_ns": b,
                 "fresh_p99_ns": f, "delta": d}
                for key, b, f, d in latency_regressions],
            "regressions": [row_obj(r) for r in regressions],
            "improvements": [row_obj(r) for r in improvements],
            "informational": [row_obj(r) for r in informational],
            "added": [fmt_key(k) for k in added],
            "removed": [fmt_key(k) for k in removed],
            "geomean_by_group": [
                {"scenario": scenario, "reclaimer": reclaimer,
                 "cells": len(ratios),
                 "geomean": math.exp(
                     sum(math.log(r) for r in ratios) / len(ratios))}
                for (scenario, reclaimer), ratios
                in sorted(ratios_by_group.items())],
        }
        payload = json.dumps(doc, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            try:
                with open(args.json, "w") as f:
                    f.write(payload + "\n")
            except OSError as e:
                print(f"bench_compare: cannot write {args.json}: {e}",
                      file=sys.stderr)
                sys.exit(2)

    report = "\n".join(lines)
    print(report)
    if args.report:
        try:
            with open(args.report, "w") as f:
                f.write(report + "\n")
        except OSError as e:
            print(f"bench_compare: cannot write {args.report}: {e}", file=sys.stderr)
            sys.exit(2)

    if regressions or latency_regressions:
        verdict = (f"bench_compare: {len(regressions)} throughput cell(s) "
                   f"regressed more than {args.threshold:.0%} and "
                   f"{len(latency_regressions)} latency (p99) cell(s) "
                   f"more than {args.latency_threshold:.0%}")
        if args.warn_only:
            print(f"{verdict} (warn-only mode, not failing)")
            return 0
        print(verdict, file=sys.stderr)
        return 1
    print("bench_compare: no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
