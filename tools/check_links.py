#!/usr/bin/env python3
"""Markdown link checker for the repo docs (offline, CI docs job).

Verifies that every relative link target in the checked markdown files
exists on disk (external http(s)/mailto links are skipped — the docs job
must not depend on the network). Exit code 0 iff all links resolve.

Usage: python3 tools/check_links.py [file.md ...]
With no arguments, checks the repo's standard doc set.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DEFAULT_DOCS = [
    "README.md",
    "PAPER.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/DESIGN.md",
    "docs/RECLAMATION.md",
]

# [text](target) — excluding images is unnecessary; their targets must
# exist too. Inline code spans are stripped first so `foo(bar)` examples
# never parse as links.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def iter_links(path):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(CODE_SPAN_RE.sub("", line)):
                yield lineno, match.group(1)


def check_file(path):
    errors = []
    base = os.path.dirname(path)
    for lineno, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = target.split("#", 1)[0]
        if not resolved:  # Pure in-page anchor.
            continue
        full = os.path.normpath(os.path.join(base, resolved))
        if not os.path.exists(full):
            errors.append(f"{path}:{lineno}: broken link -> {target}")
    return errors


def main(argv):
    docs = argv[1:] or [
        os.path.join(REPO_ROOT, doc)
        for doc in DEFAULT_DOCS
        if os.path.exists(os.path.join(REPO_ROOT, doc))
    ]
    all_errors = []
    checked = 0
    for doc in docs:
        if not os.path.exists(doc):
            all_errors.append(f"{doc}: file not found")
            continue
        all_errors.extend(check_file(doc))
        checked += 1
    for error in all_errors:
        print(error, file=sys.stderr)
    print(f"check_links: {checked} files checked, {len(all_errors)} broken links")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
