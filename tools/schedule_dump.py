#!/usr/bin/env python3
"""Pretty-print serialized schedule scripts (tests/schedules/*.sched).

A schedule script is the replayable worst case the ScheduleExplorer
(src/sim/schedule_search.h) serializes: the per-process workload plus the
grant sequence (the pid moved at each juncture — invoke-if-idle, else one
shared-memory step). This tool renders the raw token soup as something a
human can debug against: the meta table, the per-process program, and the
grant sequence run-length encoded so the park-and-storm shape is visible
at a glance (a long single-pid run IS the storm; the short prefix granted
to another pid IS the reader being driven to its worst step and parked).

Usage:
    tools/schedule_dump.py tests/schedules/*.sched
"""

import sys
from collections import Counter

# Fixture names the engine registers (src/sim/schedule_search.cpp,
# reclaim_fixture_names()). Kept in sync by hand; an unknown name is a
# warning rather than an error so the dump stays usable on scripts from a
# newer engine, but a typo in a hand-edited script still surfaces.
KNOWN_FIXTURES = frozenset([
    "stack_hazard", "stack_hazard_cached", "stack_epoch",
    "stack_epoch_deferred", "stack_tagged", "stack_leaky",
    "stack_mutant_tagged", "queue_hazard", "queue_hazard_cached",
    "queue_epoch", "queue_epoch_deferred", "sharded_stack_hazard_cached",
    "ring_mpmc", "stack_leased_hazard", "stack_leased_hazard_cached",
    "stack_leased_epoch", "stack_leased_epoch_batched",
    "queue_leased_hazard", "queue_leased_hazard_cached",
    "queue_leased_epoch", "stack_leased_mutant_stale_confirm",
    "stack_leased_mutant_no_quarantine", "stack_leased_mutant_no_restamp",
])


def parse(path):
    script = {"processes": 0, "meta": {}, "ops": [], "grants": []}
    with open(path, encoding="utf-8") as f:
        lines = [ln.split("#", 1)[0].strip() for ln in f]
    lines = [ln for ln in lines if ln]
    if not lines or lines[0].split() != ["schedule-script", "v1"]:
        raise ValueError(f"{path}: not a schedule-script v1 file")
    for line in lines[1:]:
        tokens = line.split()
        kind, rest = tokens[0], tokens[1:]
        if kind == "processes":
            script["processes"] = int(rest[0])
        elif kind == "meta":
            script["meta"][rest[0]] = " ".join(rest[1:])
        elif kind == "op":
            script["ops"].append((int(rest[0]), rest[1], int(rest[2])))
        elif kind == "grants":
            # "!<pid>" is a crash grant (kill pid at this juncture); encoded
            # internally the way the engine does: -(pid + 1).
            script["grants"].extend(
                -(int(t[1:]) + 1) if t.startswith("!") else int(t)
                for t in rest)
        elif kind == "end":
            break
        else:
            raise ValueError(f"{path}: unknown line kind {kind!r}")
    n = script["processes"]
    for pid, _method, _arg in script["ops"]:
        if not 0 <= pid < n:
            raise ValueError(f"{path}: op pid {pid} out of range for "
                             f"{n} processes")
    for grant in script["grants"]:
        pid = -grant - 1 if grant < 0 else grant
        if not 0 <= pid < n:
            raise ValueError(f"{path}: grant pid {pid} out of range for "
                             f"{n} processes")
    if "search_prelude" in script["meta"]:
        staged = int(script["meta"]["search_prelude"])
        if not 0 <= staged <= len(script["grants"]):
            raise ValueError(
                f"{path}: search_prelude {staged} exceeds the "
                f"{len(script['grants'])}-grant script")
    return script


def run_length(grants):
    runs = []
    for pid in grants:
        if runs and runs[-1][0] == pid:
            runs[-1][1] += 1
        else:
            runs.append([pid, 1])
    return runs


def dump(path):
    script = parse(path)
    print(f"== {path}")
    print(f"   processes: {script['processes']}")
    for key in sorted(script["meta"]):
        print(f"   meta {key}: {script['meta'][key]}")

    fixture = script["meta"].get("fixture")
    if fixture is not None and fixture not in KNOWN_FIXTURES:
        print(f"schedule_dump: warning: {path}: unknown fixture "
              f"{fixture!r} (not in the registered fixture list — "
              f"typo, or a newer engine?)", file=sys.stderr)
    if script["meta"].get("expect_verdict") == "violation":
        # A lease-mutant conviction: this schedule is committed BECAUSE it
        # breaks the spec on its (deliberately mutated) fixture.
        print("   conviction: replay must FAIL the spec check "
              "(expect_verdict=violation)")

    by_pid = {}
    for pid, method, arg in script["ops"]:
        by_pid.setdefault(pid, []).append(
            f"{method}({arg})" if method in ("push", "enq") else f"{method}()")
    for pid in sorted(by_pid):
        ops = by_pid[pid]
        line = " ".join(ops[:12]) + (f" ... [{len(ops)} ops]" if len(ops) > 12 else "")
        print(f"   p{pid} program: {line}")

    grants = script["grants"]
    steps = [g for g in grants if g >= 0]
    crashes = [-g - 1 for g in grants if g < 0]
    counts = Counter(steps)
    totals = " ".join(f"p{pid}:{n}" for pid, n in sorted(counts.items()))
    crash_note = (
        " crashes: " + " ".join(f"!p{pid}" for pid in crashes) if crashes
        else "")
    print(f"   grants: {len(grants)} total ({totals}){crash_note}")
    def rle(seq):
        return " ".join(
            f"!p{-pid - 1}" if pid < 0 else f"p{pid}x{n}"
            for pid, n in run_length(seq))

    staged = int(script["meta"].get("search_prelude", 0))
    if staged:
        # A staged conviction search: the leading grants were forced (the
        # search prelude), only the suffix was discovered by the explorer.
        print(f"   staged prelude: {rle(grants[:staged])}")
        print(f"   searched suffix: {rle(grants[staged:])}")
    print(f"   grant runs: {rle(grants)}")
    print()


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            dump(path)
        except (OSError, ValueError, IndexError) as e:
            print(f"schedule_dump: {e}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
