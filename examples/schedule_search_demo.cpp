// schedule_search_demo — runs the ScheduleExplorer against the standard
// reclaimer fixtures and (optionally) regenerates the committed worst-case
// corpus under tests/schedules/.
//
//   ./schedule_search_demo                 # search, print the summary table
//   ./schedule_search_demo --out=DIR       # also write DIR/<fixture>.sched
//   ./schedule_search_demo stack_epoch ... # restrict to named fixtures
//   ./schedule_search_demo --crashes ...   # search WITH crash grants; emits
//                                          # DIR/<fixture>.crash.sched whose
//                                          # golden bounds cover recovery
//                                          # (expropriations, final counts)
//   ./schedule_search_demo --procs=3 ...   # n>2 fixtures (extra parked
//                                          # readers); emits
//                                          # DIR/<fixture>.n3.sched
//   ./schedule_search_demo --workload-search
//                                          # outer search over the workload
//                                          # candidates (storm, double storm,
//                                          # put surge, reader pairs); emits
//                                          # DIR/<fixture>.wl.sched stamped
//                                          # with the winning shape
//   ./schedule_search_demo --convict       # spec-driven conviction search
//                                          # over the lease-mutant fixtures
//                                          # (small pool, crash grants, every
//                                          # workload candidate); emits
//                                          # DIR/<fixture>.crash.sched whose
//                                          # replay re-produces the failing
//                                          # verdict
//
// Each emitted script carries its golden bounds (expect_peak,
// expect_peak_grant, expect_grants — plus, for crash schedules, crashes,
// expect_expropriations and the drained final counts) in meta; the corpus
// gtest (ScheduleCorpus.*) replays the file twice and checks the bounds and
// bit-identical traces. Regenerate only when the searcher or the fixtures
// change, and re-run the tests afterwards.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/schedule_search.h"

namespace {

using namespace aba;

constexpr int kProcs = 2;
constexpr int kCycles = 12;
constexpr int kCrashCycles = 24;

// Symmetric put/take storm: both pids carry enough retires that whichever
// one the searcher kills, the survivor still drives the suspect/confirm
// handshake to a confirmed expropriation.
std::vector<harness::WorkloadOp> crash_workload(const std::string& fixture) {
  const bool is_queue = fixture.find("queue") != std::string::npos;
  const spec::Method put = is_queue ? spec::Method::kEnq : spec::Method::kPush;
  const spec::Method take = is_queue ? spec::Method::kDeq : spec::Method::kPop;
  std::vector<harness::WorkloadOp> workload;
  for (int pid = 0; pid < kProcs; ++pid) {
    for (int c = 0; c < kCrashCycles; ++c) {
      workload.push_back(
          {pid, put, static_cast<std::uint64_t>(pid * 1000 + c)});
      workload.push_back({pid, take, 0});
    }
  }
  return workload;
}

// Searches with one crash grant allowed and emits the first candidate whose
// replay actually recovers (a confirmed expropriation in the drained final
// stats). Returns false if no such schedule surfaced within budget.
bool emit_crash_schedule(const std::string& name, const std::string& out_dir) {
  const auto factory = search::reclaim_fixture(name);
  search::SearchOptions options;
  options.top_k = 8;
  options.context_bound = 3;
  options.max_executions = 48;
  options.max_crashes = 1;
  search::ScheduleExplorer explorer(factory, kProcs, crash_workload(name),
                                    search::retired_unreclaimed_cost, options);
  const search::SearchResult result = explorer.run();

  for (const auto& entry : result.best) {
    const bool has_crash =
        std::any_of(entry.script.grants.begin(), entry.script.grants.end(),
                    search::is_crash_grant);
    if (!has_crash) continue;
    search::ScheduleScript script = entry.script;
    const search::ReplayResult first = search::ScheduleExplorer::replay(
        factory, script, search::retired_unreclaimed_cost);
    if (first.final_stats.expropriations == 0) continue;
    const search::ReplayResult second = search::ScheduleExplorer::replay(
        factory, script, search::retired_unreclaimed_cost);
    if (first.peak_cost != second.peak_cost ||
        first.trace.size() != second.trace.size() ||
        first.final_stats.expropriations !=
            second.final_stats.expropriations) {
      std::fprintf(stderr, "%s: crash replay not deterministic — skipping\n",
                   name.c_str());
      continue;
    }

    const auto crashes = std::count_if(script.grants.begin(),
                                       script.grants.end(),
                                       search::is_crash_grant);
    script.meta["fixture"] = name;
    script.meta["cost"] = "retired_unreclaimed";
    script.meta["expect_peak"] =
        std::to_string(static_cast<long long>(first.peak_cost));
    script.meta["expect_peak_grant"] = std::to_string(first.peak_grant);
    script.meta["expect_grants"] = std::to_string(script.grants.size());
    script.meta["crashes"] = std::to_string(crashes);
    script.meta["expect_expropriations"] =
        std::to_string(first.final_stats.expropriations);
    script.meta["expect_final_retired"] =
        std::to_string(first.final_stats.retired_unreclaimed);
    script.meta["expect_final_free"] =
        std::to_string(first.final_stats.free_nodes);
    script.meta["expect_quarantined"] =
        std::to_string(first.final_stats.quarantined);

    std::printf("%-30s %10.0f %12llu %10llu  expropriations=%zu\n",
                name.c_str(), first.peak_cost,
                static_cast<unsigned long long>(first.peak_grant),
                static_cast<unsigned long long>(result.executions),
                first.final_stats.expropriations);

    if (!out_dir.empty()) {
      const std::string path = out_dir + "/" + name + ".crash.sched";
      std::ofstream out(path);
      if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
      }
      out << "# Searched crash schedule — a kill at a vulnerable reclamation "
             "phase plus the\n"
             "# survivor's recovery; golden bounds include the drained final "
             "stats. Found by\n"
             "# schedule_search_demo --crashes; replayed by ScheduleCorpus.* "
             "(tests/test_schedule_search.cpp).\n"
          << script.serialize();
      std::printf("  wrote %s\n", path.c_str());
    }
    return true;
  }
  std::printf("%-30s %10s\n", name.c_str(), "(no recovering crash schedule)");
  return false;
}

// --convict: the lease-mutant conviction searches. Small pool so index
// recycling is reachable, spec verdicts on, one crash grant allowed, every
// workload candidate swept; the emitted script is the conviction itself —
// its replay must re-produce the failing verdict bit-identically. The
// budget is stamped into meta so the corpus hygiene test can re-run the
// exact search that found it.
struct ConvictBudget {
  int procs = 2;
  int pool = 2;
  int cycles = 4;
  int context_bound = 3;
  std::uint64_t max_executions = 20000;
  int max_crashes = 1;
  // When non-empty, only candidates with this name are searched — each
  // mutant's conviction channel needs one specific workload shape, and
  // sweeping the others first burns minutes of budget on shapes that
  // cannot convict (e.g. reader-only peers never scan, so they can never
  // expropriate).
  std::string workload;
  // Forced grant prefix (SearchOptions::prelude) staging a state the
  // heuristic DFS order cannot reach in budget — e.g. the no_restamp
  // channel needs the stormer's first two pushes and a reader parked
  // mid-pop before anything convicting can happen, and fewest-ops-first
  // ordering explores that start last. The searcher still discovers the
  // kill point and the whole suffix interleaving itself.
  std::vector<int> prelude;
};

bool emit_conviction(const std::string& name, const std::string& out_dir,
                     const ConvictBudget& budget) {
  const auto factory = search::reclaim_fixture(name, budget.pool);
  search::SearchOptions options;
  options.top_k = 1;
  options.context_bound = budget.context_bound;
  options.max_executions = budget.max_executions;
  options.max_grants = 1ull << 30;  // Let max_executions be the real budget.
  options.max_crashes = budget.max_crashes;
  options.check_spec = true;
  options.stop_on_violation = true;
  options.prelude = budget.prelude;
  for (const auto& candidate :
       search::workload_candidates(name, budget.procs, budget.cycles)) {
    if (!budget.workload.empty() && candidate.name != budget.workload) continue;
    search::ScheduleExplorer explorer(factory, budget.procs, candidate.workload,
                                      search::pool_pressure_cost, options);
    const search::SearchResult result = explorer.run();
    std::printf("%-38s %-13s %8llu schedules%s%s\n", name.c_str(),
                candidate.name.c_str(),
                static_cast<unsigned long long>(result.executions),
                result.budget_exhausted ? " (budget exhausted)" : "",
                result.violations.empty() ? "" : "  CONVICTED");
    if (result.violations.empty()) continue;

    search::ScheduleScript script = result.violations[0].script;
    const search::ReplayResult first = search::ScheduleExplorer::replay(
        factory, script, search::pool_pressure_cost);
    const search::ReplayResult second = search::ScheduleExplorer::replay(
        factory, script, search::pool_pressure_cost);
    if (!first.verdict.checked || first.verdict.ok) {
      std::fprintf(stderr, "%s: conviction did not replay — skipping\n",
                   name.c_str());
      continue;
    }
    if (first.trace.size() != second.trace.size() ||
        first.verdict.detail != second.verdict.detail) {
      std::fprintf(stderr, "%s: conviction replay not deterministic\n",
                   name.c_str());
      continue;
    }
    std::printf("  %s\n", result.violations[0].detail.c_str());

    const auto crashes = std::count_if(script.grants.begin(),
                                       script.grants.end(),
                                       search::is_crash_grant);
    script.meta["fixture"] = name;
    script.meta["cost"] = "pool_pressure";
    script.meta["workload"] = candidate.name;
    script.meta["pool"] = std::to_string(budget.pool);
    script.meta["crashes"] = std::to_string(crashes);
    script.meta["expect_verdict"] = "violation";
    script.meta["search_context_bound"] =
        std::to_string(budget.context_bound);
    script.meta["search_executions"] =
        std::to_string(budget.max_executions);
    script.meta["search_crashes"] = std::to_string(budget.max_crashes);
    script.meta["search_cycles"] = std::to_string(budget.cycles);
    if (!budget.prelude.empty()) {
      // The staged prefix is the script's own leading grants; the length is
      // all a re-run needs to reconstruct the exact search.
      script.meta["search_prelude"] = std::to_string(budget.prelude.size());
    }

    if (!out_dir.empty()) {
      const std::string path = out_dir + "/" + name + ".crash.sched";
      std::ofstream out(path);
      if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
      }
      out << "# Lease-mutant conviction — a spec violation the bounded "
             "crash-enabled search\n"
             "# found against this deliberately broken reclaimer; replaying "
             "it re-produces\n"
             "# the failing verdict. Found by schedule_search_demo "
             "--convict; replayed by\n"
             "# LeaseMutantCatch.*, CorpusHygiene.* and ScheduleCorpus.* "
             "(tests/test_model_check.cpp,\n"
             "# tests/test_schedule_search.cpp).\n"
          << script.serialize();
      std::printf("  wrote %s\n", path.c_str());
    }
    return true;
  }
  std::printf("%-38s (no conviction within budget)\n", name.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  bool crashes = false;
  bool workload_search = false;
  bool convict = false;
  ConvictBudget budget;
  int procs = kProcs;
  std::vector<std::string> wanted;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_dir = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--crashes") == 0) {
      crashes = true;
    } else if (std::strncmp(argv[i], "--procs=", 8) == 0) {
      procs = std::atoi(argv[i] + 8);
      if (procs < 2) {
        std::fprintf(stderr, "--procs must be >= 2\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--workload-search") == 0) {
      workload_search = true;
    } else if (std::strcmp(argv[i], "--convict") == 0) {
      convict = true;
    } else if (std::strncmp(argv[i], "--pool=", 7) == 0) {
      budget.pool = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--cycles=", 9) == 0) {
      budget.cycles = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--cb=", 5) == 0) {
      budget.context_bound = std::atoi(argv[i] + 5);
    } else if (std::strncmp(argv[i], "--execs=", 8) == 0) {
      budget.max_executions =
          static_cast<std::uint64_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--max-crashes=", 14) == 0) {
      budget.max_crashes = std::atoi(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--workload=", 11) == 0) {
      budget.workload = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--prelude=", 10) == 0) {
      // Comma-separated PIDxCOUNT runs, e.g. --prelude=0x16,2x6 = sixteen
      // grants to p0 then six to p2 before the search takes over.
      const char* s = argv[i] + 10;
      budget.prelude.clear();
      while (*s != '\0') {
        char* end = nullptr;
        const long pid = std::strtol(s, &end, 10);
        if (end == s || *end != 'x') {
          std::fprintf(stderr, "--prelude wants PIDxCOUNT[,...]\n");
          return 1;
        }
        s = end + 1;
        const long count = std::strtol(s, &end, 10);
        if (end == s || count <= 0) {
          std::fprintf(stderr, "--prelude wants PIDxCOUNT[,...]\n");
          return 1;
        }
        for (long r = 0; r < count; ++r) {
          budget.prelude.push_back(static_cast<int>(pid));
        }
        s = (*end == ',') ? end + 1 : end;
      }
    } else {
      wanted.emplace_back(argv[i]);
    }
  }
  if (convict) {
    if (wanted.empty()) {
      wanted = {"stack_leased_mutant_stale_confirm",
                "stack_leased_mutant_no_quarantine",
                "stack_leased_mutant_no_restamp"};
    }
    budget.procs = procs;
    int convicted = 0;
    for (const std::string& name : wanted) {
      if (emit_conviction(name, out_dir, budget)) ++convicted;
    }
    return convicted == static_cast<int>(wanted.size()) ? 0 : 1;
  }
  if (wanted.empty()) wanted = search::reclaim_fixture_names();
  // More processes multiply the branching factor; trim the storm length so
  // the n=3 corpus searches stay in the same time budget as n=2.
  const int cycles = procs > 2 ? 8 : kCycles;
  // DIR/<fixture>[.nN][.wl].sched — n=2 plain storms keep the bare name the
  // committed corpus already uses.
  const std::string suffix =
      (procs != kProcs ? ".n" + std::to_string(procs) : std::string()) +
      (workload_search ? ".wl" : "") + ".sched";

  std::printf("%-30s %10s %12s %10s\n", "fixture", "peak", "peak@grant",
              "schedules");
  if (crashes) {
    int emitted = 0;
    for (const std::string& name : wanted) {
      if (emit_crash_schedule(name, out_dir)) ++emitted;
    }
    return emitted > 0 ? 0 : 1;
  }
  for (const std::string& name : wanted) {
    const auto factory = search::reclaim_fixture(name);

    search::SearchOptions options;
    options.top_k = 3;
    options.context_bound = 3;
    options.max_executions = 128;
    search::SearchResult result;
    std::string winning_workload;
    if (workload_search) {
      const auto ws = search::search_workloads(
          factory, procs, search::workload_candidates(name, procs, cycles),
          search::retired_unreclaimed_cost, options);
      result = ws.best;
      winning_workload = ws.best_name;
    } else {
      search::ScheduleExplorer explorer(
          factory, procs, search::storm_workload(name, procs, cycles),
          search::retired_unreclaimed_cost, options);
      result = explorer.run();
    }
    if (result.best.empty()) {
      std::printf("%-30s %10s\n", name.c_str(), "(none)");
      continue;
    }

    search::ScheduleScript script = result.best[0].script;
    // Stamp the golden bounds the corpus test replays against, verified
    // here by two fresh replays (determinism is the whole point).
    const search::ReplayResult first = search::ScheduleExplorer::replay(
        factory, script, search::retired_unreclaimed_cost);
    const search::ReplayResult second = search::ScheduleExplorer::replay(
        factory, script, search::retired_unreclaimed_cost);
    if (first.peak_cost != result.best[0].peak_cost ||
        first.peak_cost != second.peak_cost ||
        first.peak_grant != second.peak_grant ||
        first.trace.size() != second.trace.size()) {
      std::fprintf(stderr, "%s: replay is not deterministic — not emitting\n",
                   name.c_str());
      return 1;
    }
    script.meta["fixture"] = name;
    script.meta["cost"] = "retired_unreclaimed";
    script.meta["expect_peak"] = std::to_string(
        static_cast<long long>(first.peak_cost));
    script.meta["expect_peak_grant"] = std::to_string(first.peak_grant);
    script.meta["expect_grants"] = std::to_string(script.grants.size());

    std::printf("%-30s %10.0f %12llu %10llu%s%s\n", name.c_str(),
                first.peak_cost,
                static_cast<unsigned long long>(first.peak_grant),
                static_cast<unsigned long long>(result.executions),
                winning_workload.empty() ? "" : "  workload=",
                winning_workload.c_str());

    if (!out_dir.empty()) {
      const std::string path = out_dir + "/" + name + suffix;
      std::ofstream out(path);
      if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      out << "# Searched reclamation worst case — found by "
             "schedule_search_demo,\n"
             "# replayed with golden bounds by ScheduleCorpus.* "
             "(tests/test_schedule_search.cpp).\n"
          << script.serialize();
      std::printf("  wrote %s\n", path.c_str());
    }
  }
  return 0;
}
