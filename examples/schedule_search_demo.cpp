// schedule_search_demo — runs the ScheduleExplorer against the standard
// reclaimer fixtures and (optionally) regenerates the committed worst-case
// corpus under tests/schedules/.
//
//   ./schedule_search_demo                 # search, print the summary table
//   ./schedule_search_demo --out=DIR       # also write DIR/<fixture>.sched
//   ./schedule_search_demo stack_epoch ... # restrict to named fixtures
//
// Each emitted script carries its golden bounds (expect_peak,
// expect_peak_grant, expect_grants) in meta; the corpus gtest
// (ScheduleCorpus.*) replays the file twice and checks the bounds and
// bit-identical traces. Regenerate only when the searcher or the fixtures
// change, and re-run the tests afterwards.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/schedule_search.h"

namespace {

using namespace aba;

constexpr int kProcs = 2;
constexpr int kCycles = 12;

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  std::vector<std::string> wanted;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_dir = argv[i] + 6;
    } else {
      wanted.emplace_back(argv[i]);
    }
  }
  if (wanted.empty()) wanted = search::reclaim_fixture_names();

  std::printf("%-30s %10s %12s %10s\n", "fixture", "peak", "peak@grant",
              "schedules");
  for (const std::string& name : wanted) {
    const auto factory = search::reclaim_fixture(name);
    const auto workload = search::storm_workload(name, kProcs, kCycles);

    search::SearchOptions options;
    options.top_k = 3;
    options.context_bound = 3;
    options.max_executions = 128;
    search::ScheduleExplorer explorer(factory, kProcs, workload,
                                      search::retired_unreclaimed_cost,
                                      options);
    const search::SearchResult result = explorer.run();
    if (result.best.empty()) {
      std::printf("%-30s %10s\n", name.c_str(), "(none)");
      continue;
    }

    search::ScheduleScript script = result.best[0].script;
    // Stamp the golden bounds the corpus test replays against, verified
    // here by two fresh replays (determinism is the whole point).
    const search::ReplayResult first = search::ScheduleExplorer::replay(
        factory, script, search::retired_unreclaimed_cost);
    const search::ReplayResult second = search::ScheduleExplorer::replay(
        factory, script, search::retired_unreclaimed_cost);
    if (first.peak_cost != result.best[0].peak_cost ||
        first.peak_cost != second.peak_cost ||
        first.peak_grant != second.peak_grant ||
        first.trace.size() != second.trace.size()) {
      std::fprintf(stderr, "%s: replay is not deterministic — not emitting\n",
                   name.c_str());
      return 1;
    }
    script.meta["fixture"] = name;
    script.meta["cost"] = "retired_unreclaimed";
    script.meta["expect_peak"] = std::to_string(
        static_cast<long long>(first.peak_cost));
    script.meta["expect_peak_grant"] = std::to_string(first.peak_grant);
    script.meta["expect_grants"] = std::to_string(script.grants.size());

    std::printf("%-30s %10.0f %12llu %10llu\n", name.c_str(), first.peak_cost,
                static_cast<unsigned long long>(first.peak_grant),
                static_cast<unsigned long long>(result.executions));

    if (!out_dir.empty()) {
      const std::string path = out_dir + "/" + name + ".sched";
      std::ofstream out(path);
      if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      out << "# Searched reclamation worst case — found by "
             "schedule_search_demo,\n"
             "# replayed with golden bounds by ScheduleCorpus.* "
             "(tests/test_schedule_search.cpp).\n"
          << script.serialize();
      std::printf("  wrote %s\n", path.c_str());
    }
  }
  return 0;
}
