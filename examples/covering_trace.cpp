// covering_trace — Lemma 1's adversary, narrated (the paper's Figure 1).
//
// Runs the covering construction against three implementations and prints
// the adversary's log:
//   1. Figure 4 (correct, n+1 registers): every probe escapes the covered
//      set and the full cover of n-1 distinct registers is reached.
//   2. A naive bounded-tag register (1 register, 4 tags): probes never
//      escape, register configurations repeat, and the adversary exhibits
//      the clean/dirty contradiction as a concrete execution.
//   3. The unbounded-tag register: configurations never repeat; the
//      adversary reports that the boundedness hypothesis fails.
//
// Build & run:  cmake --build build && ./build/examples/covering_trace
#include <cstdio>

#include "core/aba_register_bounded.h"
#include "core/aba_register_bounded_tag_naive.h"
#include "core/aba_register_unbounded_tag.h"
#include "lowerbound/covering_adversary.h"
#include "sim/sim_platform.h"

using aba::lowerbound::CoveringAdversary;
using aba::lowerbound::make_weak_aba_factory;
using SimP = aba::sim::SimPlatform;

namespace {

void print_report(const char* title, const aba::lowerbound::CoveringReport& r) {
  std::printf("=== %s ===\n", title);
  for (const auto& line : r.log) std::printf("  %s\n", line.c_str());
  std::printf("  ---\n");
  std::printf("  probes=%llu chain-iterations=%llu replays=%llu\n",
              static_cast<unsigned long long>(r.probes),
              static_cast<unsigned long long>(r.chain_iterations),
              static_cast<unsigned long long>(r.replays));
  if (r.cover_reached) {
    std::printf("  RESULT: cover of %d distinct registers reached (target %d)\n",
                r.max_cover, r.target_cover);
  } else if (r.violation_found) {
    std::printf("  RESULT: correctness violation!\n    %s\n",
                r.violation_detail.c_str());
  } else if (r.budget_exhausted) {
    std::printf("  RESULT: budget exhausted without repeat or escape\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const int n = 4;
  std::printf("Covering adversary (Lemma 1 / Theorem 1(a)), n = %d processes\n",
              n);
  std::printf("Process 0 loops WeakWrite; processes 1..%d loop WeakRead.\n\n",
              n - 1);

  {
    using Fig4 = aba::core::AbaRegisterBounded<SimP>;
    CoveringAdversary adversary(
        n, make_weak_aba_factory<Fig4>(n, {.value_bits = 1}));
    print_report("Figure 4: n+1 bounded registers (correct)",
                 adversary.run(n - 1));
  }
  {
    using Naive = aba::core::AbaRegisterBoundedTagNaive<SimP>;
    CoveringAdversary adversary(
        n, make_weak_aba_factory<Naive>(
               n, {.value_bits = 1, .tag_bits = 2, .initial_value = 0}));
    print_report("naive bounded tag: 1 register, 4 tags (m far below n-1)",
                 adversary.run(n - 1));
  }
  {
    using Unbounded = aba::core::AbaRegisterUnboundedTag<SimP>;
    CoveringAdversary adversary(
        n, make_weak_aba_factory<Unbounded>(n, {.value_bits = 1}),
        CoveringAdversary::Options{.max_iterations_per_level = 48,
                                   .max_replays = 20000,
                                   .verbose_log = false});
    print_report("unbounded tag: 1 unbounded register (lower bound's escape hatch)",
                 adversary.run(n - 1));
  }

  std::printf(
      "Summary: the bound m >= n-1 (Theorem 1(a)) is witnessed on the correct\n"
      "implementation, enforced against the under-provisioned one, and shown\n"
      "to require the boundedness hypothesis on the unbounded one.\n");
  return 0;
}
