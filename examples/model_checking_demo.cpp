// model_checking_demo — exhaustive verification of the paper's algorithms
// over ALL interleavings of small scenarios.
//
// The simulator enumerates every schedule of a fixed workload, records each
// execution's history, and checks it against the sequential specification
// with a Wing-Gong linearizability checker. This is the strongest form of
// evidence the repository produces for the upper bounds (Theorems 2-4) short
// of the paper's pencil-and-paper proofs.
//
// Build & run:  cmake --build build && ./build/examples/model_checking_demo
#include <cstdio>

#include "core/aba_register_bounded.h"
#include "core/llsc_single_cas.h"
#include "harness/adapters.h"
#include "harness/harness.h"
#include "sim/sim_platform.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"

using aba::harness::WorkloadOp;
using aba::sim::SimPlatform;
using aba::spec::Method;

namespace {

void report(const char* name, const aba::harness::ModelCheckResult& result) {
  std::printf("%-52s %8llu interleavings, %llu violations%s\n", name,
              static_cast<unsigned long long>(result.executions),
              static_cast<unsigned long long>(result.violations),
              result.budget_exhausted ? " (budget hit)" : "");
  if (result.violations > 0) {
    std::printf("  first violating history:\n");
    for (const auto& op : result.first_violation) {
      std::printf("    %s\n", op.to_string().c_str());
    }
  }
}

}  // namespace

int main() {
  std::printf("Exhaustive model checking (all interleavings, fused invoke)\n");
  std::printf("===========================================================\n\n");

  using Fig4 = aba::core::AbaRegisterBounded<SimPlatform>;
  using Fig3 = aba::core::LlscSingleCas<SimPlatform>;

  auto fig4_factory = [](aba::sim::SimWorld& world, aba::spec::History& history)
      -> std::unique_ptr<aba::harness::Invoker> {
    return std::make_unique<aba::harness::AbaRegInvoker<Fig4>>(
        world, history,
        std::make_unique<Fig4>(world, 3, Fig4::Options{.value_bits = 4}));
  };
  auto fig4_check = [](const std::vector<aba::spec::Op>& ops) {
    return static_cast<bool>(
        aba::spec::check_linearizable<aba::spec::AbaRegisterSpec>(
            ops, aba::spec::AbaRegisterSpec::initial(3, 0)));
  };

  // Scenario 1: the ABA shape — two same-value writes racing two reads.
  report("Fig4: w(1) w(1) || r || r  (ABA rewrite shape)",
         aba::harness::model_check(
             3, fig4_factory,
             {{0, Method::kDWrite, 1},
              {0, Method::kDWrite, 1},
              {1, Method::kDRead, 0},
              {2, Method::kDRead, 0}},
             fig4_check));

  // Scenario 2: reader pair racing one write.
  report("Fig4: w(2) || r r || r",
         aba::harness::model_check(3, fig4_factory,
                                   {{0, Method::kDWrite, 2},
                                    {1, Method::kDRead, 0},
                                    {1, Method::kDRead, 0},
                                    {2, Method::kDRead, 0}},
                                   fig4_check));

  auto fig3_factory = [](aba::sim::SimWorld& world, aba::spec::History& history)
      -> std::unique_ptr<aba::harness::Invoker> {
    return std::make_unique<aba::harness::LlscInvoker<Fig3>>(
        world, history,
        std::make_unique<Fig3>(world, 2,
                               Fig3::Options{.value_bits = 4,
                                             .initial_value = 0,
                                             .initially_linked = true}));
  };
  auto fig3_check = [](const std::vector<aba::spec::Op>& ops) {
    return static_cast<bool>(aba::spec::check_linearizable<aba::spec::LlscSpec>(
        ops, aba::spec::LlscSpec::initial(2, 0, true)));
  };

  // Scenario 3: dueling LL/SC pairs — at most one SC may win per epoch.
  report("Fig3: ll sc(1) || ll sc(2)",
         aba::harness::model_check(2, fig3_factory,
                                   {{0, Method::kLL, 0},
                                    {0, Method::kSC, 1},
                                    {1, Method::kLL, 0},
                                    {1, Method::kSC, 2}},
                                   fig3_check));

  // Scenario 4: VL observing an SC race.
  report("Fig3: ll vl sc(1) || ll sc(2)",
         aba::harness::model_check(2, fig3_factory,
                                   {{0, Method::kLL, 0},
                                    {0, Method::kVL, 0},
                                    {0, Method::kSC, 1},
                                    {1, Method::kLL, 0},
                                    {1, Method::kSC, 2}},
                                   fig3_check));

  std::printf(
      "\nEvery interleaving of every scenario produced a linearizable\n"
      "history: the Figure 3 and Figure 4 algorithms meet their\n"
      "specifications on these workloads under ALL schedules.\n");
  return 0;
}
