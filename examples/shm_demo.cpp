// shm_demo — the cross-process tier in ~100 lines.
//
// A parent process creates a shared-memory segment hosting a Treiber stack
// with the leased (crash-robust) hazard-pointer reclaimer, then:
//
//   1. forks a worker that *attaches* to the segment by name, acquires its
//      own pid lease, pushes a batch of values and exits cleanly;
//   2. forks a second worker that pushes and then dies WITHOUT releasing
//      anything (a stand-in for SIGKILL) — and shows the survivor
//      expropriating the dead worker's lease in two reclamation passes,
//      with every node accounted for.
//
// Build: cmake --build build --target shm_demo && ./build/examples/shm_demo
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "shm/leased_reclaimer.h"
#include "shm/pid_lease.h"
#include "shm/shm_platform.h"
#include "shm/shm_segment.h"
#include "structures/treiber_stack.h"

using namespace aba;
using namespace aba::shm;

using Stack = structures::TreiberStack<ShmPlatform,
                                       structures::RawCasHead<ShmPlatform>,
                                       LeasedCachedHazardReclaimer>;

namespace {

constexpr int kProcs = 2;
constexpr int kNodesPerProc = 16;

// Creator and attacher build the very same object sequence; the layout
// hash published in the segment header certifies they agree.
struct World {
  ShmSegment seg;
  ShmArena arena;
  PidLeaseTable leases;
  ShmPlatform::Env env;
  Stack stack;

  World(ShmSegment&& s, bool owner)
      : seg(std::move(s)),
        arena(seg, owner),
        leases(arena, kProcs),
        env{&arena, &leases, owner},
        stack(env, kProcs,
              std::make_unique<structures::RawCasHead<ShmPlatform>>(env,
                                                                    kProcs),
              Stack::partition(kProcs, kNodesPerProc)) {
    if (owner) {
      seg.publish(arena.layout_hash());
    } else {
      seg.verify_layout(arena.layout_hash());
    }
  }
};

// `dirty` exits without releasing the lease — the crash stand-in. _exit
// also skips the atexit unlink registry, exactly like a real SIGKILL.
void worker(const std::string& name, int pushes, bool dirty) {
  World w(ShmSegment::attach(name), /*owner=*/false);
  const int p = w.leases.acquire();
  for (int i = 0; i < pushes; ++i) {
    w.stack.push(p, static_cast<std::uint64_t>(100 * (p + 1) + i));
  }
  if (!dirty) w.leases.release(p);
  ::_exit(0);
}

}  // namespace

int main() {
  const std::string name = unique_segment_name();
  World w(ShmSegment::create(name, 1 << 21, kProcs), /*owner=*/true);
  const int me = w.leases.acquire();

  // --- act 1: a well-behaved second process ----------------------------
  pid_t pid = ::fork();
  if (pid == 0) worker(name, 4, /*dirty=*/false);
  ::waitpid(pid, nullptr, 0);
  int popped = 0;
  while (w.stack.pop(me).has_value()) ++popped;
  std::printf("clean worker: popped %d values pushed by the other process\n",
              popped);

  // --- act 2: a process that dies with its lease held ------------------
  pid = ::fork();
  if (pid == 0) worker(name, 4, /*dirty=*/true);
  ::waitpid(pid, nullptr, 0);
  std::printf("dead worker: lease held=%d, expropriations=%zu\n",
              w.leases.is_held(1), w.stack.reclaimer().stats().expropriations);

  // Two survivor passes: suspect, then confirm + drain (the documented
  // recovery bound of src/shm/leased_reclaimer.h).
  w.stack.reclaimer().scan(me);
  w.stack.reclaimer().scan(me);
  const auto s = w.stack.reclaimer().stats();
  std::printf("after 2 scans: expropriations=%zu, lease held=%d\n",
              s.expropriations, w.leases.is_held(1));

  popped = 0;
  while (w.stack.pop(me).has_value()) ++popped;
  const auto end = w.stack.reclaimer().stats();
  std::printf("drained %d orphaned values; %zu free + %zu retired + %zu "
              "quarantined of %zu-node pool\n",
              popped, end.free_nodes, end.retired_unreclaimed, end.quarantined,
              end.pool_size);
  return end.free_nodes + end.retired_unreclaimed + end.quarantined ==
                 end.pool_size
             ? 0
             : 1;
}
