// event_signaling — the paper's introductory motivation, executed.
//
// "In mutual exclusion algorithms often processes busy-wait for certain
//  events [...] it may also be desirable to eventually reset the register to
//  its state before the event was signaled, in order to be able to reuse it.
//  But this may result in the ABA problem, and as a consequence waiting
//  processes may miss events."  (Section 1)
//
// We stage exactly that on the deterministic simulator: a signaller raises a
// flag register and later resets it for reuse; a waiter polls. With a plain
// register the waiter provably misses the pulse under an adversarial
// schedule. With the ABA-detecting register of Figure 4 the same schedule
// cannot hide the pulse.
//
// Build & run:  cmake --build build && ./build/examples/event_signaling
#include <cstdio>

#include "core/aba_register_bounded.h"
#include "sim/sim_platform.h"
#include "sim/sim_world.h"

using aba::sim::SimPlatform;
using aba::sim::SimWorld;

namespace {

// Scenario A: plain register. The waiter samples, the signaller pulses
// (set + reset) entirely between two samples, and the waiter sees nothing.
void plain_register_scenario() {
  std::printf("--- plain register: signal pulse hidden by reset ---\n");
  SimWorld world(2);
  SimPlatform::Register flag(world, "flag", 0, aba::sim::BoundSpec::bounded(1));

  std::uint64_t sample1 = 99, sample2 = 99;
  world.invoke(1, [&] { sample1 = flag.read(); });
  world.run_to_completion(1);

  // The full pulse: signal the event, then reset the register for reuse.
  world.invoke(0, [&] {
    flag.write(1);
    flag.write(0);
  });
  world.run_to_completion(0);

  world.invoke(1, [&] { sample2 = flag.read(); });
  world.run_to_completion(1);

  std::printf("waiter samples: before=%llu after=%llu -> event %s\n\n",
              static_cast<unsigned long long>(sample1),
              static_cast<unsigned long long>(sample2),
              sample2 != sample1 ? "SEEN" : "MISSED (the ABA problem)");
}

// Scenario B: Figure 4's ABA-detecting register under the same schedule.
void aba_detecting_scenario() {
  std::printf("--- ABA-detecting register: the same pulse, detected ---\n");
  SimWorld world(2);
  aba::core::AbaRegisterBounded<SimPlatform> flag(
      world, 2, {.value_bits = 1, .seq_domain = 0, .initial_value = 0});

  std::pair<std::uint64_t, bool> s1, s2;
  world.invoke(1, [&] { s1 = flag.dread(1); });
  world.run_to_completion(1);

  world.invoke(0, [&] {
    flag.dwrite(0, 1);  // Signal.
    flag.dwrite(0, 0);  // Reset for reuse.
  });
  world.run_to_completion(0);

  world.invoke(1, [&] { s2 = flag.dread(1); });
  world.run_to_completion(1);

  std::printf("waiter samples: before=(%llu,%s) after=(%llu,%s) -> event %s\n",
              static_cast<unsigned long long>(s1.first),
              s1.second ? "T" : "F",
              static_cast<unsigned long long>(s2.first),
              s2.second ? "T" : "F",
              s2.second ? "SEEN via the detection flag" : "missed");
  std::printf(
      "\nThe value came back to 0 both times; only the DRead flag reveals\n"
      "that writes happened in between. That detection is what Theorem 3\n"
      "buys with n+1 bounded registers and O(1) steps -- and what Theorem 1\n"
      "proves cannot be had for fewer than n-1 bounded registers.\n");
}

}  // namespace

int main() {
  plain_register_scenario();
  aba_detecting_scenario();
  return 0;
}
