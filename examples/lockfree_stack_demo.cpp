// lockfree_stack_demo — the classic Treiber-stack ABA, reproduced
// deterministically, then repaired two ways.
//
// One fixed schedule is driven against three stacks that differ only in how
// the head pointer is protected:
//   1. raw CAS          -> corrupted (pops a freed node; duplicates values),
//   2. bounded tag      -> survives this schedule (but see bench_aba_escape
//                          for how narrow tags eventually wrap),
//   3. LL/SC (Figure 3) -> immune: the SC fails because an SC intervened,
//                          which is the whole point of LL/SC semantics.
//
// Build & run:  cmake --build build && ./build/examples/lockfree_stack_demo
#include <cstdio>
#include <optional>
#include <vector>

#include "core/llsc_single_cas.h"
#include "sim/sim_platform.h"
#include "sim/sim_world.h"
#include "structures/treiber_stack.h"

using aba::sim::SimPlatform;
using aba::sim::SimWorld;
namespace structures = aba::structures;

namespace {

void print_pops(const char* label, const std::vector<std::optional<std::uint64_t>>& pops) {
  std::printf("%s pops:", label);
  for (const auto& p : pops) {
    if (p.has_value()) {
      std::printf(" %llu", static_cast<unsigned long long>(*p));
    } else {
      std::printf(" empty");
    }
  }
  std::printf("\n");
}

// Runs the ABA schedule against a stack; returns every pop result in order.
//   setup: push 10, 20 (nodes A, B; head = B).
//   p1 begins pop: reads head=B and B.next=A, then stalls.
//   p0: pop (20), pop (10), push(30) -- the free list hands node B back, so
//       the head is B again, but the stack below it changed.
//   p1 resumes its CAS.
template <class Stack>
std::vector<std::optional<std::uint64_t>> run_schedule(SimWorld& world,
                                                       Stack& stack) {
  std::vector<std::optional<std::uint64_t>> pops;
  auto solo_push = [&](std::uint64_t v) {
    world.invoke(0, [&stack, v] { stack.push(0, v); });
    world.run_to_completion(0);
  };
  auto solo_pop = [&] {
    std::optional<std::uint64_t> out;
    world.invoke(0, [&stack, &out] { out = stack.pop(0); });
    world.run_to_completion(0);
    pops.push_back(out);
  };

  solo_push(10);
  solo_push(20);

  std::optional<std::uint64_t> p1_out;
  world.invoke(1, [&stack, &p1_out] { p1_out = stack.pop(1); });
  world.step(1);  // p1 loads head = B.
  world.step(1);  // p1 reads B.next = A.

  solo_pop();      // 20
  solo_pop();      // 10
  solo_push(30);   // Reuses node B: head is B again.

  world.run_to_completion(1);  // p1's CAS/SC decides the outcome.
  pops.push_back(p1_out);

  solo_pop();  // Aftermath.
  solo_pop();
  return pops;
}

}  // namespace

int main() {
  std::printf("Stack contents before the race: [20, 10]; then p0 pops both\n");
  std::printf("and pushes 30 while p1 is stalled mid-pop holding stale head/next.\n");
  std::printf("Correct outcome: pops are 20, 10, 30, empty, empty.\n\n");

  {
    SimWorld world(2);
    structures::TreiberStack<SimPlatform, structures::RawCasHead<SimPlatform>>
        stack(world, 2, std::make_unique<structures::RawCasHead<SimPlatform>>(world, 2),
              structures::TreiberStack<
                  SimPlatform, structures::RawCasHead<SimPlatform>>::partition(2, 2));
    const auto pops = run_schedule(world, stack);
    print_pops("raw CAS   ", pops);
    std::printf("            ^ corrupted: p1's CAS succeeded on the recycled "
                "node (ABA) and\n              resurrected freed cells.\n\n");
  }
  {
    SimWorld world(2);
    structures::TreiberStack<SimPlatform, structures::TaggedCasHead<SimPlatform>>
        stack(world, 2,
              std::make_unique<structures::TaggedCasHead<SimPlatform>>(world, 2, 16, 16),
              structures::TreiberStack<
                  SimPlatform,
                  structures::TaggedCasHead<SimPlatform>>::partition(2, 2));
    const auto pops = run_schedule(world, stack);
    print_pops("16-bit tag", pops);
    std::printf("            ^ the tag changed, p1's CAS failed and retried "
                "correctly.\n\n");
  }
  {
    SimWorld world(2);
    using Llsc = aba::core::LlscSingleCas<SimPlatform>;
    Llsc llsc(world, 2,
              {.value_bits = 32,
               .initial_value = structures::kNullIndex,
               .initially_linked = false});
    structures::TreiberStack<SimPlatform, structures::LlscHead<Llsc>> stack(
        world, 2, std::make_unique<structures::LlscHead<Llsc>>(llsc),
        structures::TreiberStack<SimPlatform,
                                 structures::LlscHead<Llsc>>::partition(2, 2));
    const auto pops = run_schedule(world, stack);
    print_pops("LL/SC     ", pops);
    std::printf("            ^ p1's SC failed because successful SCs "
                "intervened -- no tags,\n              no reclamation "
                "protocol, just the Figure 3 object as the head.\n");
  }
  return 0;
}
