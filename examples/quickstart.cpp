// quickstart — the 60-second tour of the library's public API.
//
// Builds the paper's two headline objects on the native (std::atomic)
// platform and exercises them from a single thread:
//   * an ABA-detecting register from n+1 bounded registers (Figure 4),
//   * an LL/SC/VL object from a single bounded CAS (Figure 3).
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/aba_register_bounded.h"
#include "core/llsc_single_cas.h"
#include "native/native_platform.h"

int main() {
  using Platform = aba::native::NativePlatform<>;
  Platform::Env env;
  constexpr int kProcesses = 4;

  // ---- ABA-detecting register (Figure 4, Theorem 3) ----
  // DRead returns (value, flag); the flag is true iff ANY DWrite happened
  // since this process's previous DRead — even one that rewrote the same
  // value, which a plain register can never reveal.
  aba::core::AbaRegisterBounded<Platform> reg(env, kProcesses,
                                              {.value_bits = 8,
                                               .seq_domain = 0,
                                               .initial_value = 0});

  auto [v0, f0] = reg.dread(1);
  std::printf("initial dread     -> value=%llu flag=%s\n",
              static_cast<unsigned long long>(v0), f0 ? "true" : "false");

  reg.dwrite(0, 7);
  auto [v1, f1] = reg.dread(1);
  std::printf("after dwrite(7)   -> value=%llu flag=%s\n",
              static_cast<unsigned long long>(v1), f1 ? "true" : "false");

  reg.dwrite(0, 7);  // The ABA: same value written again.
  auto [v2, f2] = reg.dread(1);
  std::printf("after ABA rewrite -> value=%llu flag=%s   (the ABA, detected)\n",
              static_cast<unsigned long long>(v2), f2 ? "true" : "false");

  auto [v3, f3] = reg.dread(1);
  std::printf("quiet re-read     -> value=%llu flag=%s\n\n",
              static_cast<unsigned long long>(v3), f3 ? "true" : "false");

  // ---- LL/SC/VL from one bounded CAS (Figure 3, Theorem 2) ----
  aba::core::LlscSingleCas<Platform> llsc(env, kProcesses,
                                          {.value_bits = 32,
                                           .initial_value = 100,
                                           .initially_linked = false});

  const auto linked = llsc.ll(/*p=*/2);
  std::printf("ll()              -> %llu\n",
              static_cast<unsigned long long>(linked));
  std::printf("vl()              -> %s\n", llsc.vl(2) ? "true" : "false");
  std::printf("sc(linked + 1)    -> %s\n",
              llsc.sc(2, linked + 1) ? "succeeded" : "failed");

  // Another process's successful SC breaks our link.
  llsc.ll(3);
  llsc.sc(3, 500);
  std::printf("after p3's SC, p2.vl() -> %s (link broken, as specified)\n",
              llsc.vl(2) ? "true" : "false");
  llsc.ll(2);
  std::printf("p2 re-links; ll() -> %llu\n",
              static_cast<unsigned long long>(llsc.ll(2)));
  return 0;
}
