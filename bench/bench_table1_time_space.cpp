// E4 — "Table 1": the time-space landscape of Theorem 1 / Corollary 1.
//
// For every implementation in the repository, the tradeoff auditor measures
// m (objects), t (worst-case steps over adversarial schedules) and evaluates
// the paper's inequality:
//     bounded registers+CAS:   m * t  >= n-1      (Theorem 1(b))
//     bounded writable CAS:   2m * t  >= n-1      (Theorem 1(c))
//
// The reproduction target is the paper's qualitative landscape:
//   * Figure 4            — m = n+1, t = O(1): product ~ 4(n+1), consistent;
//   * Fig 5 over Fig 3    — m = 1, t = O(n): product ~ 4n, consistent;
//   * Fig 5 over RegArray — m = n+1, t = O(1): consistent (the AM/JP point);
//   * Moir (unbounded)    — m = 1, t = O(1): product BELOW n-1, which only
//     unbounded base objects may do;
//   * the naive bounded tag — also below the bound, and therefore INCORRECT
//     (its violation is exhibited by E5).
#include "bench_common.h"
#include "core/aba_register_bounded.h"
#include "core/aba_register_bounded_tag_naive.h"
#include "core/aba_register_from_llsc.h"
#include "core/aba_register_unbounded_tag.h"
#include "core/llsc_register_array.h"
#include "core/llsc_single_cas.h"
#include "core/llsc_unbounded_tag.h"
#include "lowerbound/tradeoff_auditor.h"
#include "sim/sim_platform.h"

namespace {

using namespace aba;
using SimP = sim::SimPlatform;

template <class Llsc>
lowerbound::WeakAbaFactory fig5_factory(int n) {
  return [n](sim::SimWorld& world)
             -> std::unique_ptr<lowerbound::WeakAbaInstance> {
    struct Composed {
      Composed(sim::SimWorld& world, int n)
          : llsc(world, n,
                 typename Llsc::Options{.value_bits = 4,
                                        .initial_value = 0,
                                        .initially_linked = true}),
            reg(llsc, n, 0) {}
      std::pair<std::uint64_t, bool> dread(int q) { return reg.dread(q); }
      void dwrite(int p, std::uint64_t x) { reg.dwrite(p, x); }
      Llsc llsc;
      core::AbaRegisterFromLlsc<Llsc> reg;
    };
    return std::make_unique<lowerbound::WeakAbaAdapter<Composed>>(
        world, std::make_unique<Composed>(world, n), n);
  };
}

void add_row(util::Table& table, const char* name, const char* correctness,
             int n, const lowerbound::WeakAbaFactory& factory) {
  lowerbound::TradeoffAuditor auditor(n, factory);
  const auto r = auditor.audit();
  table.add_row(
      {name, util::Table::fmt(static_cast<std::uint64_t>(n)),
       util::Table::fmt(static_cast<std::uint64_t>(r.num_objects)),
       r.all_bounded ? "yes" : "no", util::Table::fmt(r.t),
       util::Table::fmt(r.time_space_product), util::Table::fmt(r.lower_bound),
       r.consistent_with_theorem1 ? "yes" : "NO", correctness});
}

void BM_TradeoffAudit_Fig4(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    lowerbound::TradeoffAuditor auditor(
        n, lowerbound::make_weak_aba_factory<core::AbaRegisterBounded<SimP>>(
               n, {.value_bits = 1}));
    benchmark::DoNotOptimize(auditor.audit());
  }
}
BENCHMARK(BM_TradeoffAudit_Fig4)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("E4",
                "Theorem 1 / Corollary 1: the time-space product landscape");
  util::Table table({"implementation", "n", "m", "bounded", "t",
                     "(2)m*t", "n-1", "product>=n-1", "correct?"});
  for (int n : {4, 8, 16}) {
    add_row(table, "Fig4: n+1 registers, O(1)", "yes (E2, tests)", n,
            lowerbound::make_weak_aba_factory<core::AbaRegisterBounded<SimP>>(
                n, {.value_bits = 1}));
    add_row(table, "Fig5 o Fig3: 1 CAS, O(n)", "yes (E1, E3, tests)", n,
            fig5_factory<core::LlscSingleCas<SimP>>(n));
    add_row(table, "Fig5 o RegArray: 1 CAS + n regs, O(1)", "yes (tests)", n,
            fig5_factory<core::LlscRegisterArray<SimP>>(n));
    add_row(table, "Fig5 o Moir: 1 UNBOUNDED CAS, O(1)", "yes (tests)", n,
            fig5_factory<core::LlscUnboundedTag<SimP>>(n));
    add_row(table, "unbounded-tag register", "yes (tests)", n,
            lowerbound::make_weak_aba_factory<
                core::AbaRegisterUnboundedTag<SimP>>(n, {.value_bits = 1}));
    add_row(table, "naive bounded tag (1 reg)", "NO (broken, see E5)", n,
            lowerbound::make_weak_aba_factory<
                core::AbaRegisterBoundedTagNaive<SimP>>(
                n, {.value_bits = 1, .tag_bits = 4, .initial_value = 0}));
  }
  table.print();
  bench::note(
      "\nReading the table (paper's claims):\n"
      "  * Every CORRECT implementation from BOUNDED objects sits above the\n"
      "    n-1 line - the two optimal corners are Fig4 (m=n+1, t=O(1)) and\n"
      "    Fig5 o Fig3 (m=1, t=O(n)); Fig5 o RegArray matches Anderson-Moir/\n"
      "    Jayanti-Petrovic. Their products are within a constant factor of\n"
      "    n-1, so the lower bound is asymptotically tight (Theorems 2, 3).\n"
      "  * Implementations below the line are either unbounded (allowed: the\n"
      "    bound's boundedness hypothesis fails) or incorrect (the naive tag,\n"
      "    broken by the covering adversary in E5).\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
