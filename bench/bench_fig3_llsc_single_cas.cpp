// E1 — Figure 3 / Theorem 2: LL/SC/VL from a single bounded CAS object with
// O(n) step complexity.
//
// Reproduces:
//   * space: exactly one bounded CAS object for every n;
//   * worst-case steps: LL <= 2n+1, SC <= 2n, VL = 1 — the measured maxima
//     under a lock-step contention adversary grow linearly in n and never
//     exceed the bounds (the paper's O(n), tight up to constants);
//   * native throughput of the same code on std::atomic.
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/llsc_single_cas.h"
#include "native/native_platform.h"
#include "sim/sim_platform.h"
#include "sim/sim_world.h"
#include "util/rng.h"

namespace {

using SimFig3 = aba::core::LlscSingleCas<aba::sim::SimPlatform>;
using NativeFig3 = aba::core::LlscSingleCas<aba::native::NativePlatform<>>;

struct ContentionStats {
  std::uint64_t worst_ll = 0;
  std::uint64_t worst_sc = 0;
  std::uint64_t worst_vl = 0;
};

// Lock-step adversary: all n processes run LL;SC;VL loops, each sweep gives
// every in-flight process exactly one step — maximizing CAS interference.
ContentionStats measure_contended(int n, int rounds) {
  aba::sim::SimWorld world(n);
  world.set_trace_enabled(false);
  SimFig3 obj(world, n,
              {.value_bits = 16, .initial_value = 0, .initially_linked = false});
  ContentionStats stats;
  std::vector<int> phase(n, 0);       // 0 = LL next, 1 = SC next, 2 = VL next.
  std::vector<int> remaining(n, rounds * 3);
  std::vector<int> current_kind(n, -1);

  bool work = true;
  while (work) {
    work = false;
    for (int p = 0; p < n; ++p) {
      if (world.is_idle(p) && remaining[p] > 0) {
        --remaining[p];
        current_kind[p] = phase[p];
        if (phase[p] == 0) {
          world.invoke(p, [&obj, p] { obj.ll(p); });
        } else if (phase[p] == 1) {
          world.invoke(p, [&obj, p] { obj.sc(p, static_cast<std::uint64_t>(p)); });
        } else {
          world.invoke(p, [&obj, p] { obj.vl(p); });
        }
        phase[p] = (phase[p] + 1) % 3;
      }
    }
    for (int p = 0; p < n; ++p) {
      if (world.poised(p).has_value()) {
        world.step(p);
        work = true;
        if (world.is_idle(p)) {
          const std::uint64_t steps = world.steps_in_method(p);
          if (current_kind[p] == 0) stats.worst_ll = std::max(stats.worst_ll, steps);
          if (current_kind[p] == 1) stats.worst_sc = std::max(stats.worst_sc, steps);
          if (current_kind[p] == 2) stats.worst_vl = std::max(stats.worst_vl, steps);
        }
      }
      if (remaining[p] > 0) work = true;
    }
  }
  return stats;
}

void print_table() {
  aba::bench::banner("E1", "Figure 3 / Theorem 2: LL/SC/VL from one bounded CAS");
  aba::util::Table table({"n", "objects (m)", "LL worst (measured)",
                          "LL bound (2n+1)", "SC worst (measured)",
                          "SC bound (2n)", "VL worst", "word bits"});
  for (int n : {2, 4, 8, 16, 32}) {
    aba::sim::SimWorld world(n);
    SimFig3 obj(world, n, {.value_bits = 16});
    const auto stats = measure_contended(n, 24);
    table.add_row({aba::util::Table::fmt(static_cast<std::uint64_t>(n)),
                   aba::util::Table::fmt(static_cast<std::uint64_t>(
                       obj.num_shared_objects())),
                   aba::util::Table::fmt(stats.worst_ll),
                   aba::util::Table::fmt(static_cast<std::uint64_t>(2 * n + 1)),
                   aba::util::Table::fmt(stats.worst_sc),
                   aba::util::Table::fmt(static_cast<std::uint64_t>(2 * n)),
                   aba::util::Table::fmt(stats.worst_vl),
                   aba::util::Table::fmt(static_cast<std::uint64_t>(
                       obj.x_object_bits()))});
  }
  table.print();
  aba::bench::note(
      "Claim shape: one bounded object suffices (m = 1) and worst-case steps\n"
      "grow linearly in n, within the 2n+1 / 2n bounds. The contended maxima\n"
      "climbing with n shows the O(n) cost is real, not just an upper bound.");
}

// ---- native timing ----

aba::native::NativePlatform<>::Env g_env;

void BM_Fig3_SoloLlScVl(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  NativeFig3 obj(g_env, n, {.value_bits = 16, .initially_linked = true});
  std::uint64_t v = 0;
  for (auto _ : state) {
    v = obj.ll(0);
    benchmark::DoNotOptimize(obj.sc(0, (v + 1) & 0xFFFF));
    benchmark::DoNotOptimize(obj.vl(0));
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_Fig3_SoloLlScVl)->Arg(2)->Arg(8)->Arg(32);

// One long-lived contended object shared by all thread counts (n = 8 covers
// the largest Threads() configuration).
NativeFig3& contended_obj() {
  static NativeFig3 obj(g_env, 8, {.value_bits = 16, .initially_linked = true});
  return obj;
}

void BM_Fig3_ContendedThreads(benchmark::State& state) {
  NativeFig3& obj = contended_obj();
  const int pid = state.thread_index();
  for (auto _ : state) {
    const std::uint64_t v = obj.ll(pid);
    benchmark::DoNotOptimize(obj.sc(pid, (v + 1) & 0xFFFF));
  }
  if (state.thread_index() == 0) {
    state.SetItemsProcessed(state.iterations() * state.threads() * 2);
  }
}
BENCHMARK(BM_Fig3_ContendedThreads)->Threads(1)->Threads(2)->Threads(4);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
