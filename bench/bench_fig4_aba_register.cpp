// E2 — Figure 4 / Theorem 3: multi-writer b-bit ABA-detecting register from
// n+1 bounded registers with constant step complexity.
//
// Reproduces:
//   * space: exactly n+1 registers, each (b + 2 log n + O(1)) bits wide;
//   * time: DWrite = 2 steps and DRead = 4 steps, INDEPENDENT of n and of
//     contention (the algorithm has no retry loops at all);
//   * native throughput of reads and writes under thread contention.
#include "bench_common.h"
#include "core/aba_register_bounded.h"
#include "native/native_platform.h"
#include "sim/sim_platform.h"
#include "sim/sim_world.h"
#include "util/packed_word.h"

namespace {

using SimFig4 = aba::core::AbaRegisterBounded<aba::sim::SimPlatform>;
using NativeFig4 = aba::core::AbaRegisterBounded<aba::native::NativePlatform<>>;

struct Worst {
  std::uint64_t dwrite = 0;
  std::uint64_t dread = 0;
};

// Lock-step contention: every process in flight, one step per sweep.
Worst measure_contended(int n, int rounds) {
  aba::sim::SimWorld world(n);
  world.set_trace_enabled(false);
  SimFig4 reg(world, n, {.value_bits = 8});
  Worst worst;
  std::vector<int> remaining(n, rounds);
  std::vector<bool> is_write(n, false);

  bool work = true;
  while (work) {
    work = false;
    for (int p = 0; p < n; ++p) {
      if (world.is_idle(p) && remaining[p] > 0) {
        --remaining[p];
        is_write[p] = (p % 2 == 0);
        if (is_write[p]) {
          world.invoke(p, [&reg, p] { reg.dwrite(p, static_cast<std::uint64_t>(p)); });
        } else {
          world.invoke(p, [&reg, p] { reg.dread(p); });
        }
      }
    }
    for (int p = 0; p < n; ++p) {
      if (world.poised(p).has_value()) {
        world.step(p);
        work = true;
        if (world.is_idle(p)) {
          const std::uint64_t steps = world.steps_in_method(p);
          if (is_write[p]) {
            worst.dwrite = std::max(worst.dwrite, steps);
          } else {
            worst.dread = std::max(worst.dread, steps);
          }
        }
      }
      if (remaining[p] > 0) work = true;
    }
  }
  return worst;
}

void print_table() {
  aba::bench::banner("E2",
                     "Figure 4 / Theorem 3: ABA-detecting register from n+1 "
                     "bounded registers");
  aba::util::Table table({"n", "registers (m)", "DWrite worst", "DRead worst",
                          "X bits", "A[] bits", "b + 2 log n + 3"});
  const unsigned b = 8;
  for (int n : {2, 4, 8, 16, 32, 64}) {
    aba::sim::SimWorld world(n);
    SimFig4 reg(world, n, {.value_bits = b});
    const auto worst = measure_contended(n, 24);
    const unsigned log_n = aba::util::bits_for(static_cast<std::uint64_t>(n) - 1);
    table.add_row(
        {aba::util::Table::fmt(static_cast<std::uint64_t>(n)),
         aba::util::Table::fmt(static_cast<std::uint64_t>(reg.num_shared_registers())),
         aba::util::Table::fmt(worst.dwrite),
         aba::util::Table::fmt(worst.dread),
         aba::util::Table::fmt(static_cast<std::uint64_t>(reg.x_register_bits())),
         aba::util::Table::fmt(
             static_cast<std::uint64_t>(reg.announce_register_bits())),
         aba::util::Table::fmt(static_cast<std::uint64_t>(b + 2 * log_n + 3))});
  }
  table.print();
  aba::bench::note(
      "Claim shape: m = n+1 registers; DWrite/DRead worst-case steps are the\n"
      "constants 2 and 4 at every n and under full contention; register\n"
      "widths stay within b + 2 log n + O(1) bits (Theorem 3).");
}

// ---- native timing ----

aba::native::NativePlatform<>::Env g_env;

void BM_Fig4_SoloDWriteDRead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  NativeFig4 reg(g_env, n, {.value_bits = 8});
  std::uint64_t i = 0;
  for (auto _ : state) {
    reg.dwrite(0, i++ & 255);
    benchmark::DoNotOptimize(reg.dread(std::max(1, n - 1)));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Fig4_SoloDWriteDRead)->Arg(2)->Arg(8)->Arg(64);

NativeFig4& contended_reg() {
  static NativeFig4 reg(g_env, 8, {.value_bits = 8});
  return reg;
}

void BM_Fig4_ContendedThreads(benchmark::State& state) {
  NativeFig4& reg = contended_reg();
  const int pid = state.thread_index();
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (pid == 0) {
      reg.dwrite(0, i++ & 255);
    } else {
      benchmark::DoNotOptimize(reg.dread(pid));
    }
  }
  if (state.thread_index() == 0) {
    state.SetItemsProcessed(state.iterations() * state.threads());
  }
}
BENCHMARK(BM_Fig4_ContendedThreads)->Threads(1)->Threads(2)->Threads(4);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
