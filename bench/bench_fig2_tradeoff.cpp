// E6 — Figure 2 / Lemmas 2-3: the hiding construction's measurable core.
//
// Lemma 3(iii) caps the number of processes simultaneously poised to
// Write() (respectively CAS()) any single object by the step complexity t;
// combined with the all-readers-poised configurations of the construction
// this yields the counting bound of Appendix B.2. The auditor drives
// adversarial schedules and reports the observed census maxima next to the
// measured t for the CAS-based implementations.
#include "bench_common.h"
#include "core/aba_register_bounded.h"
#include "core/aba_register_from_llsc.h"
#include "core/llsc_register_array.h"
#include "core/llsc_single_cas.h"
#include "lowerbound/tradeoff_auditor.h"
#include "sim/sim_platform.h"

namespace {

using namespace aba;
using SimP = sim::SimPlatform;

template <class Llsc>
lowerbound::WeakAbaFactory fig5_factory(int n) {
  return [n](sim::SimWorld& world)
             -> std::unique_ptr<lowerbound::WeakAbaInstance> {
    struct Composed {
      Composed(sim::SimWorld& world, int n)
          : llsc(world, n,
                 typename Llsc::Options{.value_bits = 4,
                                        .initial_value = 0,
                                        .initially_linked = true}),
            reg(llsc, n, 0) {}
      std::pair<std::uint64_t, bool> dread(int q) { return reg.dread(q); }
      void dwrite(int p, std::uint64_t x) { reg.dwrite(p, x); }
      Llsc llsc;
      core::AbaRegisterFromLlsc<Llsc> reg;
    };
    return std::make_unique<lowerbound::WeakAbaAdapter<Composed>>(
        world, std::make_unique<Composed>(world, n), n);
  };
}

void add_row(util::Table& table, const char* name, int n,
             const lowerbound::WeakAbaFactory& factory) {
  lowerbound::TradeoffAuditor auditor(
      n, factory,
      lowerbound::TradeoffAuditor::Options{.random_rounds = 48,
                                           .ops_per_round = 24,
                                           .seed = 4242});
  const auto r = auditor.audit();
  table.add_row({name, util::Table::fmt(static_cast<std::uint64_t>(n)),
                 util::Table::fmt(r.t), util::Table::fmt(r.max_cas_poise),
                 util::Table::fmt(r.max_write_poise),
                 util::Table::fmt(r.max_total_poise),
                 r.max_cas_poise <= r.t && r.max_write_poise <= r.t ? "yes"
                                                                    : "NO"});
}

void BM_CensusAudit_Fig5OverFig3(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    lowerbound::TradeoffAuditor auditor(
        n, fig5_factory<core::LlscSingleCas<SimP>>(n),
        lowerbound::TradeoffAuditor::Options{.random_rounds = 8,
                                             .ops_per_round = 12,
                                             .seed = 7});
    benchmark::DoNotOptimize(auditor.audit());
  }
}
BENCHMARK(BM_CensusAudit_Fig5OverFig3)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("E6",
                "Lemmas 2-3: poise census (WCov/CCov) vs step complexity t");
  util::Table table({"implementation", "n", "t (measured)", "max |CCov|",
                     "max |WCov|", "max combined", "census <= t"});
  for (int n : {3, 6, 10, 14}) {
    add_row(table, "Fig5 o Fig3 (1 CAS)", n,
            fig5_factory<core::LlscSingleCas<SimP>>(n));
    add_row(table, "Fig5 o RegArray (1 CAS + n regs)", n,
            fig5_factory<core::LlscRegisterArray<SimP>>(n));
    add_row(table, "Fig4 (registers only)", n,
            lowerbound::make_weak_aba_factory<core::AbaRegisterBounded<SimP>>(
                n, {.value_bits = 1}));
  }
  table.print();
  bench::note(
      "Claim shape: for every implementation the adversarially-maximized\n"
      "per-object poise counts stay within the measured worst-case step\n"
      "complexity t, exactly as Lemma 3(iii) dictates. For Fig5 o Fig3 the\n"
      "census grows with n (all readers pile onto the single CAS object),\n"
      "which is only possible because t = O(n) there; for the O(1)-step\n"
      "implementations the census stays constant.");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
