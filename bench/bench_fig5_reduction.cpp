// E3 — Figure 5 / Theorem 4: an ABA-detecting register from a single
// LL/SC/VL object, two LL/SC-level operations per DRead/DWrite.
//
// Reproduces the reduction behind Corollary 1 in both directions:
//   * composed over the O(1)-step unbounded-tag LL/SC, the reduction yields
//     a constant-step ABA-detecting register from one (unbounded) object —
//     matching the trivial upper bound;
//   * composed over Figure 3 (one bounded CAS, O(n) steps), it yields an
//     ABA-detecting register from one bounded CAS with O(n) steps — exactly
//     the (m = 1, t = O(n)) corner of the tradeoff that Theorem 1(b) proves
//     unavoidable for bounded objects.
#include "bench_common.h"
#include "core/aba_register_bounded.h"
#include "core/aba_register_from_llsc.h"
#include "core/llsc_single_cas.h"
#include "core/llsc_unbounded_tag.h"
#include "native/native_platform.h"
#include "sim/sim_platform.h"
#include "sim/sim_world.h"

namespace {

using SimP = aba::sim::SimPlatform;

// Measures worst-case DRead/DWrite shared steps under lock-step contention
// for an ABA-detecting register built by `make(world, n)`.
template <class Make>
std::pair<std::uint64_t, std::uint64_t> measure(Make make, int n, int rounds) {
  aba::sim::SimWorld world(n);
  world.set_trace_enabled(false);
  auto impl = make(world, n);
  std::uint64_t worst_write = 0, worst_read = 0;
  std::vector<int> remaining(n, rounds);
  std::vector<bool> is_write(n, false);
  bool work = true;
  while (work) {
    work = false;
    for (int p = 0; p < n; ++p) {
      if (world.is_idle(p) && remaining[p] > 0) {
        --remaining[p];
        is_write[p] = (p % 2 == 0);
        if (is_write[p]) {
          world.invoke(p, [&impl, p] { impl->dwrite(p, static_cast<std::uint64_t>(p & 7)); });
        } else {
          world.invoke(p, [&impl, p] { impl->dread(p); });
        }
      }
    }
    for (int p = 0; p < n; ++p) {
      if (world.poised(p).has_value()) {
        world.step(p);
        work = true;
        if (world.is_idle(p)) {
          const std::uint64_t steps = world.steps_in_method(p);
          if (is_write[p]) {
            worst_write = std::max(worst_write, steps);
          } else {
            worst_read = std::max(worst_read, steps);
          }
        }
      }
      if (remaining[p] > 0) work = true;
    }
  }
  return {worst_write, worst_read};
}

struct Fig5OverFig3 {
  Fig5OverFig3(aba::sim::SimWorld& world, int n)
      : llsc(world, n,
             {.value_bits = 8, .initial_value = 0, .initially_linked = true}),
        reg(llsc, n, 0) {}
  void dwrite(int p, std::uint64_t x) { reg.dwrite(p, x); }
  std::pair<std::uint64_t, bool> dread(int q) { return reg.dread(q); }
  aba::core::LlscSingleCas<SimP> llsc;
  aba::core::AbaRegisterFromLlsc<aba::core::LlscSingleCas<SimP>> reg;
};

struct Fig5OverMoir {
  Fig5OverMoir(aba::sim::SimWorld& world, int n)
      : llsc(world, n,
             {.value_bits = 8, .initial_value = 0, .initially_linked = true}),
        reg(llsc, n, 0) {}
  void dwrite(int p, std::uint64_t x) { reg.dwrite(p, x); }
  std::pair<std::uint64_t, bool> dread(int q) { return reg.dread(q); }
  aba::core::LlscUnboundedTag<SimP> llsc;
  aba::core::AbaRegisterFromLlsc<aba::core::LlscUnboundedTag<SimP>> reg;
};

void print_table() {
  aba::bench::banner("E3",
                     "Figure 5 / Theorem 4: ABA-detecting register from one "
                     "LL/SC/VL object");
  aba::util::Table table({"substrate", "n", "objects", "bounded",
                          "DWrite worst", "DRead worst", "bound"});
  for (int n : {2, 4, 8, 16}) {
    {
      auto [w, r] = measure(
          [](aba::sim::SimWorld& world, int n) {
            return std::make_unique<Fig5OverMoir>(world, n);
          },
          n, 24);
      table.add_row({"Moir LL/SC (unbounded tag)",
                     aba::util::Table::fmt(static_cast<std::uint64_t>(n)), "1",
                     "no", aba::util::Table::fmt(w), aba::util::Table::fmt(r),
                     "O(1)"});
    }
    {
      auto [w, r] = measure(
          [](aba::sim::SimWorld& world, int n) {
            return std::make_unique<Fig5OverFig3>(world, n);
          },
          n, 24);
      table.add_row({"Figure 3 LL/SC (1 bounded CAS)",
                     aba::util::Table::fmt(static_cast<std::uint64_t>(n)), "1",
                     "yes", aba::util::Table::fmt(w), aba::util::Table::fmt(r),
                     "O(n)"});
    }
  }
  table.print();
  aba::bench::note(
      "Claim shape: the reduction costs two LL/SC-level operations per\n"
      "DRead/DWrite (Theorem 4). Over an unbounded substrate the result is\n"
      "O(1)-step from one object; over the bounded Figure 3 substrate the\n"
      "steps grow with n — as Theorem 1(b) says they must when m = 1.\n"
      "Compare with E2: Figure 4 gets O(1) steps from bounded objects by\n"
      "paying m = n+1 instead.");
}

// ---- native timing: composed vs direct ----

aba::native::NativePlatform<>::Env g_env;

void BM_Fig5_OverMoir_Native(benchmark::State& state) {
  using Llsc = aba::core::LlscUnboundedTag<aba::native::NativePlatform<>>;
  static Llsc llsc(g_env, 4,
                   {.value_bits = 8, .initial_value = 0, .initially_linked = true});
  static aba::core::AbaRegisterFromLlsc<Llsc> reg(llsc, 4, 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    reg.dwrite(0, i++ & 255);
    benchmark::DoNotOptimize(reg.dread(1));
  }
}
BENCHMARK(BM_Fig5_OverMoir_Native);

void BM_Fig4_Direct_Native(benchmark::State& state) {
  using Fig4 = aba::core::AbaRegisterBounded<aba::native::NativePlatform<>>;
  static Fig4 reg(g_env, 4, {.value_bits = 8});
  std::uint64_t i = 0;
  for (auto _ : state) {
    reg.dwrite(0, i++ & 255);
    benchmark::DoNotOptimize(reg.dread(1));
  }
}
BENCHMARK(BM_Fig4_Direct_Native);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
