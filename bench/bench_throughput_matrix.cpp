// E9 — the native fast-path matrix: NativePlatform<Counted> vs
// NativePlatform<Fast> throughput across the repository's contended objects,
// swept over thread counts, written to BENCH_native.json.
//
// Four scenarios, each exercised by real threads hammering one shared
// object (the object an algorithm's proofs are about):
//   llsc_single_cas — Figure 3 LL;SC pairs on the single CAS word;
//   aba_register    — Figure 4 DWrite/DRead mix on X plus the announce array;
//   treiber_stack   — push;pop pairs through a bounded-tag CAS head;
//   ms_queue        — enqueue;dequeue pairs on Michael-Scott head/tail.
//
// Both sides run the *identical* algorithm templates; the fast side drops
// instrumentation (step counting + bound checks), isolates cache lines and
// backs off on contended CAS. Memory orderings are chosen per scenario by
// its documented soundness argument (see native_platform.h): the
// single-word LL/SC and the publication-shaped structures run on
// FastRelaxed (acquire/release, always sound for them); the Figure 4
// announce-array register needs seq_cst's cross-word total order, so its
// fast cells use the Fast policy, whose orderings follow the
// ABA_RELAXED_ORDERINGS build option (seq_cst by default). Every JSON
// record carries the orderings that produced it. The counted-vs-fast delta
// is what subsequent PRs regress against.
//
// Flags (google-benchmark-compatible where it matters for CI):
//   --benchmark_min_time=SECONDS  per-cell measurement time (default 0.2)
//   --out=PATH                    output JSON path (default BENCH_native.json)
//   --threads=1,2,4               thread counts to sweep
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/aba_register_bounded.h"
#include "core/llsc_single_cas.h"
#include "native/native_platform.h"
#include "structures/ms_queue.h"
#include "structures/treiber_stack.h"

namespace {

using namespace aba;

template <class Policy>
constexpr const char* orderings_label() {
  return Policy::kStoreOrder == std::memory_order_seq_cst ? "seq_cst"
                                                          : "acquire_release";
}

struct Cell {
  std::uint64_t ops = 0;
  double seconds = 0.0;
};

// Runs n threads for ~min_seconds. make_worker(pid) returns a callable that
// performs one small batch of operations and returns the batch's op count;
// workers loop batches until the stop flag flips. Duration-based (rather
// than fixed-count) measurement keeps every cell comparable even when the
// two policies differ several-fold in speed.
template <class MakeWorker>
Cell measure(int n, double min_seconds, MakeWorker make_worker) {
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ops(static_cast<std::size_t>(n), 0);
  std::barrier sync(n + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      auto work = make_worker(pid);
      sync.arrive_and_wait();
      std::uint64_t count = 0;
      while (!stop.load(std::memory_order_relaxed)) count += work();
      ops[static_cast<std::size_t>(pid)] = count;
    });
  }
  sync.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(min_seconds));
  stop.store(true);
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  Cell cell;
  for (const auto c : ops) cell.ops += c;
  cell.seconds = std::chrono::duration<double>(t1 - t0).count();
  return cell;
}

constexpr int kBatch = 64;

template <class P>
Cell run_llsc(int n, double secs) {
  typename P::Env env;
  core::LlscSingleCas<P> obj(
      env, n,
      typename core::LlscSingleCas<P>::Options{
          .value_bits = 16, .initial_value = 0, .initially_linked = true});
  return measure(n, secs, [&](int pid) {
    return [&obj, pid] {
      for (int i = 0; i < kBatch; ++i) {
        const std::uint64_t v = obj.ll(pid);
        obj.sc(pid, (v + 1) & 0xFFFF);
      }
      return std::uint64_t{2 * kBatch};
    };
  });
}

template <class P>
Cell run_aba_register(int n, double secs) {
  typename P::Env env;
  core::AbaRegisterBounded<P> reg(
      env, n, typename core::AbaRegisterBounded<P>::Options{.value_bits = 8});
  return measure(n, secs, [&](int pid) {
    return [&reg, pid, x = std::uint64_t{0}]() mutable {
      for (int i = 0; i < kBatch; ++i) {
        reg.dwrite(pid, x++ & 255);
        reg.dread(pid);
      }
      return std::uint64_t{2 * kBatch};
    };
  });
}

template <class P>
Cell run_treiber_stack(int n, double secs) {
  using Head = structures::TaggedCasHead<P>;
  using Stack = structures::TreiberStack<P, Head>;
  typename P::Env env;
  Stack stack(env, n, std::make_unique<Head>(env, n),
              Stack::partition(n, /*per_process=*/64));
  return measure(n, secs, [&](int pid) {
    return [&stack, pid, v = std::uint64_t{0}]() mutable {
      for (int i = 0; i < kBatch; ++i) {
        // push;pop pairs keep the pool balanced; if this process's free
        // list drained (its nodes were popped by others), pop to refill.
        if (!stack.push(pid, v++)) stack.pop(pid);
        stack.pop(pid);
      }
      return std::uint64_t{2 * kBatch};
    };
  });
}

template <class P>
Cell run_ms_queue(int n, double secs) {
  typename P::Env env;
  structures::MsQueue<P> queue(env, n, /*nodes_per_process=*/64);
  return measure(n, secs, [&](int pid) {
    return [&queue, pid, v = std::uint64_t{0}]() mutable {
      for (int i = 0; i < kBatch; ++i) {
        if (!queue.enqueue(pid, v++)) queue.dequeue(pid);
        queue.dequeue(pid);
      }
      return std::uint64_t{2 * kBatch};
    };
  });
}

// One side of the matrix. Policies are per scenario: LlscPolicy for the
// single-word LL/SC, AbaPolicy for the Figure 4 register, StructPolicy for
// the stack/queue (see the orderings note in the header comment).
template <class LlscPolicy, class AbaPolicy, class StructPolicy>
void run_side(const char* label, const std::vector<int>& thread_counts,
              double secs, bench::JsonReport& report) {
  struct Scenario {
    const char* name;
    Cell (*run)(int, double);
    const char* orderings;
  };
  const Scenario scenarios[] = {
      {"llsc_single_cas", &run_llsc<native::NativePlatform<LlscPolicy>>,
       orderings_label<LlscPolicy>()},
      {"aba_register", &run_aba_register<native::NativePlatform<AbaPolicy>>,
       orderings_label<AbaPolicy>()},
      {"treiber_stack", &run_treiber_stack<native::NativePlatform<StructPolicy>>,
       orderings_label<StructPolicy>()},
      {"ms_queue", &run_ms_queue<native::NativePlatform<StructPolicy>>,
       orderings_label<StructPolicy>()},
  };
  for (const auto& scenario : scenarios) {
    for (const int n : thread_counts) {
      const Cell cell = scenario.run(n, secs);
      const double rate =
          cell.seconds > 0 ? static_cast<double>(cell.ops) / cell.seconds : 0;
      report.add(bench::JsonRecord{scenario.name, label, scenario.orderings, n,
                                   cell.ops, cell.seconds, rate});
      std::printf("  %-16s %-8s threads=%d  %-15s %12.0f ops/s\n",
                  scenario.name, label, n, scenario.orderings, rate);
      std::fflush(stdout);
    }
  }
}

double find_rate(const bench::JsonReport& report, const std::string& scenario,
                 const std::string& platform, int threads) {
  for (const auto& r : report.records()) {
    if (r.scenario == scenario && r.platform == platform && r.threads == threads) {
      return r.ops_per_sec;
    }
  }
  return 0;
}

std::vector<int> parse_threads(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(pos, comma == std::string::npos
                                                ? std::string::npos
                                                : comma - pos);
    const int n = std::atoi(tok.c_str());
    if (n >= 1) out.push_back(n);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double min_seconds = 0.2;
  std::string out_path = "BENCH_native.json";
  std::vector<int> thread_counts = {1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--benchmark_min_time=", 0) == 0) {
      // Accepts google-benchmark spellings "0.01" and "0.01s".
      min_seconds = std::atof(arg.c_str() + std::strlen("--benchmark_min_time="));
      if (min_seconds <= 0) min_seconds = 0.01;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_counts = parse_threads(arg.substr(std::strlen("--threads=")));
      if (thread_counts.empty()) thread_counts = {1, 2, 4};
    } else {
      std::fprintf(stderr,
                   "usage: %s [--benchmark_min_time=SECS] [--out=PATH] "
                   "[--threads=1,2,4]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::JsonReport report("native_throughput_matrix");
  report.add_context("hardware_concurrency",
                     std::to_string(std::thread::hardware_concurrency()));
  report.add_context("min_seconds_per_cell", std::to_string(min_seconds));
#ifdef ABA_RELAXED_ORDERINGS
  report.add_context("relaxed_orderings_option", "on");
#else
  report.add_context("relaxed_orderings_option", "off");
#endif
#ifdef NDEBUG
  report.add_context("build", "NDEBUG");
#else
  report.add_context("build", "debug");
#endif

  std::printf("E9  native throughput matrix (counted vs fast)\n");
  run_side<native::Counted, native::Counted, native::Counted>(
      "counted", thread_counts, min_seconds, report);
  run_side<native::FastRelaxed, native::Fast, native::FastRelaxed>(
      "fast", thread_counts, min_seconds, report);

  std::printf("\n  fast/counted speedup:\n");
  for (const char* scenario :
       {"llsc_single_cas", "aba_register", "treiber_stack", "ms_queue"}) {
    for (const int n : thread_counts) {
      const double counted = find_rate(report, scenario, "counted", n);
      const double fast = find_rate(report, scenario, "fast", n);
      if (counted > 0) {
        std::printf("  %-16s threads=%d  %.2fx\n", scenario, n, fast / counted);
      }
    }
  }

  if (!report.write_file(out_path)) return 1;
  std::printf("\n  wrote %s (%zu records)\n", out_path.c_str(),
              report.records().size());
  return 0;
}
