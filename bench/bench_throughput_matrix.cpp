// E9 — the native fast-path matrix: NativePlatform<Counted> vs
// NativePlatform<Fast> throughput across the repository's contended objects,
// swept over thread counts, written to BENCH_native.json.
//
// Two scenario families, each exercised by real threads hammering one
// shared object (the object an algorithm's proofs are about):
//
//   core objects (reclaimer = "none"):
//     llsc_single_cas — Figure 3 LL;SC pairs on the single CAS word;
//     aba_register    — Figure 4 DWrite/DRead mix on X plus the announce
//                       array;
//
//   structures × reclamation policy (reclaimer = tagged|leaky|hazard|
//   hazard_cached|epoch|epoch_deferred, the src/reclaim/ axis — relative
//   cost of each ABA answer; epoch_deferred_b<K> cells sweep the deferred
//   pipeline's retire-batch override):
//     treiber_stack         — push;pop pairs through a bounded-tag CAS head;
//     treiber_stack_llsc    — the same pairs through a per-shard-free
//                             Figure 3 LL/SC head, so the (head × reclaimer)
//                             grid the tests check is also the grid the
//                             benches measure;
//     ms_queue              — enqueue;dequeue pairs on Michael-Scott
//                             head/tail;
//     treiber_stack_90_10   — read-heavy mix: 90% pops / 10% pushes, so the
//                             stack is empty most of the time and the
//                             common case is the head-read fast path (what
//                             a guard-per-dereference policy taxes most);
//     treiber_stack_oversub — push;pop pairs with 4× hardware_concurrency
//                             threads: preemption mid-operation, the regime
//                             where backoff yields and stalled readers
//                             (epoch's weakness) actually happen;
//     sharded_treiber_stack, sharded_ms_queue
//                           — the structures/sharded.h wrappers: the same
//                             pairs spread over --shards per-shard heads
//                             with home-shard routing and bounded stealing;
//     adaptive_sharded_stack, adaptive_sharded_queue
//                           — the structures/adaptive_sharded.h facades
//                             picking their active width at runtime from
//                             measured CAS-failure rates; the record's
//                             "shards" field is the width the facade had
//                             settled on when the cell ended.
//
//   ring family (structures/ring_buffer.h; reclaimer = "none" — the
//   per-slot sequence words are the ABA answer, there is nothing to
//   reclaim). These cells ALWAYS record per-op latency (p50/p99/p99.9 ns in
//   the schema-2 record): the ring workloads are latency-bound, and the
//   SPSC↔MPMC percentile gap is the paper's prevention price measured on a
//   second axis. Scenarios:
//     ring_spsc     — 1 producer, 1 consumer, zero shared RMW per op;
//     ring_mpsc     — n-1 producers CASing tail into 1 consumer;
//     ring_mpmc     — the Vyukov ring, threads split producer/consumer;
//     ring_fanout   — 1 producer feeding n-1 consumers (feed fan-out);
//     ring_burst    — the producer alternates dense bursts with quiet
//                     gaps (load spikes: tail percentiles diverge from
//                     p50 as bursts queue up);
//     ring_pipeline — feed → handler → gateway over two chained SPSC
//                     rings (3 threads; per-hop op latency).
//
// Latency recording for the legacy (throughput-trajectory) cells is opt-in
// via --latency, and only for the headline treiber_stack / ms_queue cells:
// the recorder is a template parameter, so the committed BENCH_native.json
// throughput cells run the exact code they always ran when the flag is off.
//
// The fence dimension: every record carries a "fence" field. "seq_cst"
// cells realize the hazard/epoch StoreLoad protocols with seq_cst
// orderings (the Fast policy); "asymmetric" cells run the hazard-family
// reclaimers on NativePlatform<FastAsymmetric> — guard publish is a plain
// release store + compiler barrier, and the scan carries the heavy
// membarrier side (util/asymmetric_fence.h). The hazard-vs-tagged gap
// under each fence scheme is printed at the end: that gap narrowing is
// the guard-cache + asymmetric-fence story this matrix exists to measure.
//
// Leaky cells are drain-limited: the pool is finite and never refills, so a
// worker that can no longer make useful progress exits and the cell records
// the ops and seconds actually measured (the no-reclamation throughput
// floor, while it lasts).
//
// Thread pinning (--pin): round-robin pthread_setaffinity_np over the
// online cores, recorded in the JSON context; auto-off per cell whenever
// the cell wants more threads than there are cores (the 1-core CI box and
// every oversubscribed cell), so the flag is always safe to pass.
//
// Flags (google-benchmark-compatible where it matters for CI):
//   --benchmark_min_time=SECONDS  per-cell measurement time (default 0.2)
//   --out=PATH                    output JSON path (default BENCH_native.json)
//   --threads=1,2,4               thread counts to sweep
//   --reclaimers=tagged,epoch     reclamation policies to sweep (default all
//                                 of tagged,leaky,hazard,hazard_cached,
//                                 epoch,epoch_deferred)
//   --shards=1,2,4,8,adaptive     shard counts for the sharded scenarios
//                                 (compiled instantiations: 1, 2, 4, 8) and
//                                 the adaptive-facade cells; a list without
//                                 "adaptive" disables those cells
//   --pin                         pin threads round-robin over online cores
//   --latency                     also record per-op latency percentiles for
//                                 the headline legacy cells (treiber_stack,
//                                 ms_queue); ring cells always record
//   --scenarios=burst,fanout      run only the named scenarios ("burst"
//                                 matches "ring_burst"); default all
#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "bench_json.h"
#include "core/aba_register_bounded.h"
#include "core/llsc_single_cas.h"
#include "native/native_platform.h"
#include "reclaim/epoch.h"
#include "reclaim/hazard_pointer.h"
#include "reclaim/leaky.h"
#include "reclaim/tagged.h"
#include "structures/adaptive_sharded.h"
#include "structures/ms_queue.h"
#include "structures/ring_buffer.h"
#include "structures/sharded.h"
#include "structures/treiber_stack.h"
#include "util/asymmetric_fence.h"
#include "util/histogram.h"

namespace {

using namespace aba;

template <class Policy>
constexpr const char* orderings_label() {
  return Policy::kStoreOrder == std::memory_order_seq_cst ? "seq_cst"
                                                          : "acquire_release";
}

// The fence scheme a platform's hazard-family cells run under (what the
// JSON "fence" field records).
template <class P>
constexpr const char* fence_label() {
  return std::is_same_v<PlatformFenceT<P>, util::AsymmetricFence>
             ? "asymmetric"
             : "seq_cst";
}

struct Cell {
  std::uint64_t ops = 0;
  double seconds = 0.0;
  // Per-op latency percentiles (ns); 0 = this cell did not record latency.
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
};

// --pin state: the online-core list, round-robined over per cell. A cell
// that wants more threads than cores runs unpinned (auto-off).
struct PinConfig {
  bool requested = false;
  std::vector<int> cpus;
};
PinConfig g_pin;

std::vector<int> online_cpus() {
  std::vector<int> cpus;
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &set)) cpus.push_back(cpu);
    }
  }
#endif
  return cpus;
}

void maybe_pin(std::thread& t, int pid, int n) {
#ifdef __linux__
  if (!g_pin.requested) return;
  if (static_cast<int>(g_pin.cpus.size()) < n) return;  // Auto-off.
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(g_pin.cpus[static_cast<std::size_t>(pid) % g_pin.cpus.size()], &set);
  pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
  (void)t;
  (void)pid;
  (void)n;
#endif
}

// Runs n threads for ~min_seconds. make_worker(pid) returns a callable that
// performs one small batch of operations and returns the batch's completed
// op count; workers loop batches until the stop flag flips, or exit early
// when a batch reports no useful work (a drained leaky pool). Duration-based
// (rather than fixed-count) measurement keeps every cell comparable even
// when the two policies differ several-fold in speed.
//
// Latency-recording cells pass a make_worker(pid, util::LatencyHistogram&)
// instead: each thread owns a private histogram of raw tick deltas, the
// histograms are merged after join, and the cell's percentiles are
// converted to nanoseconds once (util::tick_ns()). Throughput-only workers
// take the one-argument form and compile exactly as before.
template <class MakeWorker>
Cell measure(int n, double min_seconds, MakeWorker make_worker) {
  constexpr bool kRecordsLatency =
      std::is_invocable_v<MakeWorker&, int, util::LatencyHistogram&>;
  std::atomic<bool> stop{false};
  std::atomic<int> done{0};
  std::vector<util::LatencyHistogram> hists(
      kRecordsLatency ? static_cast<std::size_t>(n) : 0);
  std::vector<std::uint64_t> ops(static_cast<std::size_t>(n), 0);
  // Each worker times itself and the cell reports the makespan (longest
  // worker duration): on an oversubscribed or 1-core host a fast-draining
  // worker can finish before the coordinating thread is even scheduled
  // again, so coordinator-side timestamps would wildly inflate the rate of
  // drain-limited (leaky) cells.
  std::vector<double> seconds(static_cast<std::size_t>(n), 0.0);
  std::barrier sync(n + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      auto work = [&] {
        if constexpr (kRecordsLatency) {
          return make_worker(pid, hists[static_cast<std::size_t>(pid)]);
        } else {
          return make_worker(pid);
        }
      }();
      sync.arrive_and_wait();
      const auto start = std::chrono::steady_clock::now();
      std::uint64_t count = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t did = work();
        if (did == 0) break;  // No useful work left (drained pool).
        count += did;
      }
      const auto end = std::chrono::steady_clock::now();
      ops[static_cast<std::size_t>(pid)] = count;
      seconds[static_cast<std::size_t>(pid)] =
          std::chrono::duration<double>(end - start).count();
      done.fetch_add(1);
    });
    maybe_pin(threads.back(), pid, n);
  }
  sync.arrive_and_wait();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(min_seconds);
  while (done.load() < n && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  Cell cell;
  for (const auto c : ops) cell.ops += c;
  for (const auto s : seconds) cell.seconds = cell.seconds > s ? cell.seconds : s;
  if constexpr (kRecordsLatency) {
    util::LatencyHistogram merged;
    for (const auto& h : hists) merged.merge(h);
    if (merged.total() > 0) {
      const double ns = util::tick_ns();
      cell.p50_ns = static_cast<double>(merged.percentile(0.50)) * ns;
      cell.p99_ns = static_cast<double>(merged.percentile(0.99)) * ns;
      cell.p999_ns = static_cast<double>(merged.percentile(0.999)) * ns;
    }
  }
  return cell;
}

constexpr int kBatch = 64;

// --------------------------------------------- core objects (no reclaimer)

template <class P>
Cell run_llsc(int n, double secs) {
  typename P::Env env;
  core::LlscSingleCas<P> obj(
      env, n,
      typename core::LlscSingleCas<P>::Options{
          .value_bits = 16, .initial_value = 0, .initially_linked = true});
  return measure(n, secs, [&](int pid) {
    return [&obj, pid] {
      for (int i = 0; i < kBatch; ++i) {
        const std::uint64_t v = obj.ll(pid);
        obj.sc(pid, (v + 1) & 0xFFFF);
      }
      return std::uint64_t{2 * kBatch};
    };
  });
}

template <class P>
Cell run_aba_register(int n, double secs) {
  typename P::Env env;
  core::AbaRegisterBounded<P> reg(
      env, n, typename core::AbaRegisterBounded<P>::Options{.value_bits = 8});
  return measure(n, secs, [&](int pid) {
    return [&reg, pid, x = std::uint64_t{0}]() mutable {
      for (int i = 0; i < kBatch; ++i) {
        reg.dwrite(pid, x++ & 255);
        reg.dread(pid);
      }
      return std::uint64_t{2 * kBatch};
    };
  });
}

// ------------------------------------- structures × reclamation policies

// Pool sizing: deferred-reuse policies keep a bounded backlog, so a modest
// pool suffices; the leaky policy consumes one node per push forever, so it
// gets a large (but bounded) budget and its cells end at drain. Either way
// the total pool must fit the structures' 16-bit index fields, even at the
// oversubscribed thread counts. The hazard-family floor covers the raised
// asymmetric-platform scan batch (kHeavyScanFloor retires in flight) plus
// the guard-pinned headroom.
template <class R>
int pool_per_thread(int n) {
  const bool leaky = std::strcmp(R::kName, "leaky") == 0;
  const int budget = leaky ? (1 << 13) : 512;
  const int index_space_cap = 60000 / n;
  return budget < index_space_cap ? budget : index_space_cap;
}

// Per-primitive latency recorders for the recorder-templated pair workers.
// NullRecorder is the default and compiles to nothing, so the
// throughput-trajectory cells run byte-identical op loops whether or not
// the binary was built with --latency support in mind.
struct NullRecorder {
  void begin() {}
  void end() {}
};

struct TscRecorder {
  util::LatencyHistogram* hist;
  std::uint64_t t0 = 0;
  void begin() { t0 = util::rdtsc(); }
  void end() { hist->add(util::rdtsc() - t0); }
};

// The push;pop-pair worker every contended stack cell runs (the sharded
// and adaptive wrappers expose the same surface, so one worker serves all).
template <class Stack, class Rec = NullRecorder>
auto stack_pair_worker(Stack& stack, int pid, Rec rec = {}) {
  return [&stack, pid, rec, v = std::uint64_t{0}]() mutable {
    std::uint64_t completed = 0;
    bool useful = false;
    for (int i = 0; i < kBatch; ++i) {
      // push;pop pairs keep the pool balanced; if this thread's free
      // list drained (its nodes were popped by others, or leaked), pop
      // to keep making progress.
      rec.begin();
      const bool pushed = stack.push(pid, v++);
      rec.end();
      if (pushed) {
        ++completed;
        useful = true;
      } else {
        rec.begin();
        const bool popped = stack.pop(pid).has_value();
        rec.end();
        if (popped) {
          ++completed;
          useful = true;
        }
      }
      ++completed;  // The paired pop below always completes as an op.
      rec.begin();
      if (stack.pop(pid).has_value()) useful = true;
      rec.end();
    }
    return useful ? completed : 0;
  };
}

template <class Queue, class Rec = NullRecorder>
auto queue_pair_worker(Queue& queue, int pid, Rec rec = {}) {
  return [&queue, pid, rec, v = std::uint64_t{0}]() mutable {
    std::uint64_t completed = 0;
    bool useful = false;
    for (int i = 0; i < kBatch; ++i) {
      rec.begin();
      const bool enqueued = queue.enqueue(pid, v++);
      rec.end();
      if (enqueued) {
        ++completed;
        useful = true;
      } else {
        rec.begin();
        const bool dequeued = queue.dequeue(pid).has_value();
        rec.end();
        if (dequeued) {
          ++completed;
          useful = true;
        }
      }
      ++completed;
      rec.begin();
      if (queue.dequeue(pid).has_value()) useful = true;
      rec.end();
    }
    return useful ? completed : 0;
  };
}

template <class P, class R>
Cell run_treiber_stack(int n, double secs, bool latency = false) {
  using Head = structures::TaggedCasHead<P>;
  using Stack = structures::TreiberStack<P, Head, R>;
  typename P::Env env;
  Stack stack(env, n, std::make_unique<Head>(env, n),
              Stack::partition(n, pool_per_thread<R>(n)));
  if (latency) {
    return measure(n, secs, [&](int pid, util::LatencyHistogram& h) {
      return stack_pair_worker(stack, pid, TscRecorder{&h});
    });
  }
  return measure(n, secs,
                 [&](int pid) { return stack_pair_worker(stack, pid); });
}

// The LlscHead column: the same contended pairs, head-protected by the
// Figure 3 single-CAS LL/SC object (ABA-immune at the word; LL costs up to
// 1+2n steps under contention — that price is what this column measures).
template <class P, class R>
Cell run_treiber_stack_llsc(int n, double secs) {
  using Llsc = core::LlscSingleCas<P>;
  using Head = structures::LlscHead<Llsc>;
  using Stack = structures::TreiberStack<P, Head, R>;
  typename P::Env env;
  // 16 value bits hold every head word (pool_per_thread caps the total pool
  // at 60000 < 2^16) and keep the n + value_bits <= 64 capacity check at
  // n <= 48 — the same thread ceiling run_llsc's Figure 3 object already has.
  Llsc llsc(env, n,
            typename Llsc::Options{.value_bits = 16,
                                   .initial_value = structures::kNullIndex,
                                   .initially_linked = false});
  Stack stack(env, n, std::make_unique<Head>(llsc),
              Stack::partition(n, pool_per_thread<R>(n)));
  return measure(n, secs,
                 [&](int pid) { return stack_pair_worker(stack, pid); });
}

template <class P, class R>
Cell run_treiber_stack_90_10(int n, double secs) {
  using Head = structures::TaggedCasHead<P>;
  using Stack = structures::TreiberStack<P, Head, R>;
  typename P::Env env;
  Stack stack(env, n, std::make_unique<Head>(env, n),
              Stack::partition(n, pool_per_thread<R>(n)));
  return measure(n, secs, [&](int pid) {
    return [&stack, pid, v = std::uint64_t{0}]() mutable {
      std::uint64_t completed = 0;
      bool useful = false;
      for (int i = 0; i < kBatch; ++i) {
        if (i % 10 == 0) {
          if (stack.push(pid, v++)) useful = true;
          ++completed;
        } else {
          // Mostly pops against a mostly-empty stack: the read-dominated
          // common case (head load, no CAS).
          if (stack.pop(pid).has_value()) useful = true;
          ++completed;
        }
      }
      return useful ? completed : 0;
    };
  });
}

template <class P, class R>
Cell run_ms_queue(int n, double secs, bool latency = false) {
  using Queue = structures::MsQueue<P, R>;
  typename P::Env env;
  Queue queue(env, n, pool_per_thread<R>(n));
  if (latency) {
    return measure(n, secs, [&](int pid, util::LatencyHistogram& h) {
      return queue_pair_worker(queue, pid, TscRecorder{&h});
    });
  }
  return measure(n, secs,
                 [&](int pid) { return queue_pair_worker(queue, pid); });
}

// ------------------------------------------------- the sharded dimension

// Per-shard pool slice: the same total node budget as the unsharded cell,
// split across shards (each shard's reclaimer owns a disjoint index space).
template <class R>
int pool_per_thread_per_shard(int n, int shards) {
  const int per_shard = pool_per_thread<R>(n) / shards;
  return per_shard >= 1 ? per_shard : 1;
}

template <class P, class R, int kShards>
Cell run_sharded_stack(int n, double secs) {
  using Head = structures::TaggedCasHead<P>;
  using Stack = structures::ShardedTreiberStack<P, Head, R, kShards>;
  typename P::Env env;
  Stack stack(env, n, Stack::make_heads(env, n),
              pool_per_thread_per_shard<R>(n, kShards));
  return measure(n, secs,
                 [&](int pid) { return stack_pair_worker(stack, pid); });
}

template <class P, class R, int kShards>
Cell run_sharded_queue(int n, double secs) {
  using Queue = structures::ShardedMsQueue<P, R, kShards>;
  typename P::Env env;
  Queue queue(env, n, pool_per_thread_per_shard<R>(n, kShards));
  return measure(n, secs,
                 [&](int pid) { return queue_pair_worker(queue, pid); });
}

// ------------------------------------------------ the adaptive dimension

constexpr int kAdaptiveMaxShards = 8;

template <class P, class R>
Cell run_adaptive_stack(int n, double secs, int* settled) {
  using Head = structures::TaggedCasHead<P>;
  using Stack =
      structures::AdaptiveShardedStack<P, Head, R, kAdaptiveMaxShards>;
  typename P::Env env;
  Stack stack(env, n, Stack::make_heads(env, n),
              pool_per_thread_per_shard<R>(n, kAdaptiveMaxShards),
              structures::AdaptiveOptions{});
  const Cell cell = measure(
      n, secs, [&](int pid) { return stack_pair_worker(stack, pid); });
  *settled = stack.active_shards();
  return cell;
}

template <class P, class R>
Cell run_adaptive_queue(int n, double secs, int* settled) {
  using Queue = structures::AdaptiveShardedQueue<P, R, kAdaptiveMaxShards>;
  typename P::Env env;
  Queue queue(env, n, pool_per_thread_per_shard<R>(n, kAdaptiveMaxShards),
              structures::AdaptiveOptions{});
  const Cell cell = measure(
      n, secs, [&](int pid) { return queue_pair_worker(queue, pid); });
  *settled = queue.active_shards();
  return cell;
}

// ------------------------------------------------------- the ring family

// Ring cells always record per-op latency. An op is one successful
// transfer: a refused push/pop is retried a bounded number of times
// (yielding periodically — the natural backpressure response), and the
// recorded latency spans first attempt → success, so ring-full stalls land
// in the tail percentiles instead of inflating the op count. A worker
// whose retries all fail returns 0 from the batch and exits — at steady
// state that only happens once its peers have stopped, i.e. at cell end.
constexpr std::size_t kRingCapacity = 1024;
constexpr int kRingRetries = 4096;

template <class TryOp>
bool ring_retry(TryOp&& op) {
  for (int r = 0; r < kRingRetries; ++r) {
    if (op()) return true;
    if ((r & 63) == 63) std::this_thread::yield();
  }
  return false;
}

template <class Ring>
std::function<std::uint64_t()> ring_producer(Ring& ring, int pid,
                                             util::LatencyHistogram& hist) {
  return [&ring, &hist, pid, v = std::uint64_t{0}]() mutable {
    std::uint64_t completed = 0;
    for (int i = 0; i < kBatch; ++i) {
      const std::uint64_t t0 = util::rdtsc();
      if (!ring_retry([&] { return ring.try_push(pid, v); })) break;
      hist.add(util::rdtsc() - t0);
      ++v;
      ++completed;
    }
    return completed;
  };
}

template <class Ring>
std::function<std::uint64_t()> ring_consumer(Ring& ring, int pid,
                                             util::LatencyHistogram& hist) {
  return [&ring, &hist, pid] {
    std::uint64_t completed = 0;
    for (int i = 0; i < kBatch; ++i) {
      const std::uint64_t t0 = util::rdtsc();
      if (!ring_retry([&] { return ring.try_pop(pid).has_value(); })) break;
      hist.add(util::rdtsc() - t0);
      ++completed;
    }
    return completed;
  };
}

// The load-spike producer: a dense kBatch burst, then a quiet gap. The gap
// busy-waits (sleep granularity is far too coarse at this scale), so the
// consumers' percentile spread shows the queueing the bursts cause.
template <class Ring>
std::function<std::uint64_t()> ring_burst_producer(
    Ring& ring, int pid, util::LatencyHistogram& hist) {
  return [&ring, &hist, pid, v = std::uint64_t{0}]() mutable {
    std::uint64_t completed = 0;
    for (int i = 0; i < kBatch; ++i) {
      const std::uint64_t t0 = util::rdtsc();
      if (!ring_retry([&] { return ring.try_push(pid, v); })) break;
      hist.add(util::rdtsc() - t0);
      ++v;
      ++completed;
    }
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(50);
    while (std::chrono::steady_clock::now() < until) {
    }
    return completed;
  };
}

// 1 producer, 1 consumer on the SPSC ring — zero shared RMW per op (the
// machine-checked claim of tests/test_ring.cpp, priced here).
template <class P>
Cell run_ring_spsc(double secs) {
  typename P::Env env;
  structures::SpscRing<P> ring(env, 2, kRingCapacity);
  return measure(2, secs,
                 [&](int pid, util::LatencyHistogram& h)
                     -> std::function<std::uint64_t()> {
                   if (pid == 0) return ring_producer(ring, pid, h);
                   return ring_consumer(ring, pid, h);
                 });
}

// n-1 producers CASing tail, 1 consumer (pid n-1) owning head.
template <class P>
Cell run_ring_mpsc(int n, double secs) {
  typename P::Env env;
  structures::MpscRing<P> ring(env, n, kRingCapacity);
  return measure(n, secs,
                 [&, n](int pid, util::LatencyHistogram& h)
                     -> std::function<std::uint64_t()> {
                   if (pid == n - 1) return ring_consumer(ring, pid, h);
                   return ring_producer(ring, pid, h);
                 });
}

// The Vyukov ring with the thread set split producer/consumer.
template <class P>
Cell run_ring_mpmc(int n, double secs) {
  typename P::Env env;
  structures::MpmcRing<P> ring(env, n, kRingCapacity);
  const int consumers = n / 2;  // >= 1 for every n >= 2.
  return measure(n, secs,
                 [&, n, consumers](int pid, util::LatencyHistogram& h)
                     -> std::function<std::uint64_t()> {
                   if (pid >= n - consumers) return ring_consumer(ring, pid, h);
                   return ring_producer(ring, pid, h);
                 });
}

// 1 producer feeding n-1 consumers (feed fan-out; MPMC ring because the
// consumer side is multi).
template <class P>
Cell run_ring_fanout(int n, double secs) {
  typename P::Env env;
  structures::MpmcRing<P> ring(env, n, kRingCapacity);
  return measure(n, secs,
                 [&](int pid, util::LatencyHistogram& h)
                     -> std::function<std::uint64_t()> {
                   if (pid == 0) return ring_producer(ring, pid, h);
                   return ring_consumer(ring, pid, h);
                 });
}

// The bursty variant of fanout: load spikes, quiet gaps, tail percentiles.
template <class P>
Cell run_ring_burst(int n, double secs) {
  typename P::Env env;
  structures::MpmcRing<P> ring(env, n, kRingCapacity);
  return measure(n, secs,
                 [&](int pid, util::LatencyHistogram& h)
                     -> std::function<std::uint64_t()> {
                   if (pid == 0) return ring_burst_producer(ring, pid, h);
                   return ring_consumer(ring, pid, h);
                 });
}

// feed → handler → gateway over two chained SPSC rings; the middle stage's
// recorded latency is the whole pop-transform-push hop.
template <class P>
Cell run_ring_pipeline(double secs) {
  typename P::Env env;
  structures::SpscRing<P> feed(env, 3, kRingCapacity);
  structures::SpscRing<P> out(env, 3, kRingCapacity);
  return measure(
      3, secs,
      [&](int pid,
          util::LatencyHistogram& h) -> std::function<std::uint64_t()> {
        if (pid == 0) return ring_producer(feed, pid, h);
        if (pid == 2) return ring_consumer(out, pid, h);
        return [&feed, &out, &h, pid] {
          std::uint64_t completed = 0;
          for (int i = 0; i < kBatch; ++i) {
            const std::uint64_t t0 = util::rdtsc();
            std::optional<std::uint64_t> v;
            if (!ring_retry([&] {
                  v = feed.try_pop(pid);
                  return v.has_value();
                })) {
              break;
            }
            if (!ring_retry([&] { return out.try_push(pid, *v + 1); })) break;
            h.add(util::rdtsc() - t0);
            ++completed;
          }
          return completed;
        };
      });
}

// ------------------------------------------------------------ the matrix

int oversub_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(hw == 0 ? 8 : 4 * hw);
}

struct MatrixConfig {
  std::vector<int> thread_counts;
  std::vector<std::string> reclaimers;
  std::vector<int> shard_counts;
  std::vector<std::string> scenarios;  // --scenarios filter; empty = all.
  bool adaptive = true;
  bool pin = false;
  bool latency = false;  // --latency: percentiles for treiber_stack/ms_queue.
  double secs = 0.2;
};

bool wants(const MatrixConfig& config, const char* reclaimer) {
  for (const auto& r : config.reclaimers) {
    if (r == reclaimer) return true;
  }
  return false;
}

// --scenarios filter: empty selects everything; a token matches a scenario
// by exact name or by ring shorthand ("burst" matches "ring_burst").
bool scenario_wanted(const MatrixConfig& config, const char* scenario) {
  if (config.scenarios.empty()) return true;
  const std::string name = scenario;
  for (const auto& tok : config.scenarios) {
    if (tok == name || "ring_" + tok == name) return true;
  }
  return false;
}

void emit(bench::JsonReport& report, const char* scenario, const char* label,
          const char* orderings, const char* reclaimer, const char* fence,
          int n, int shards, const Cell& cell) {
  const double rate =
      cell.seconds > 0 ? static_cast<double>(cell.ops) / cell.seconds : 0;
  report.add(bench::JsonRecord{scenario, label, orderings, reclaimer, fence, n,
                               shards, cell.ops, cell.seconds, rate,
                               cell.p50_ns, cell.p99_ns, cell.p999_ns});
  std::printf(
      "  %-22s %-8s %-13s %-10s threads=%-3d shards=%-2d %-15s %12.0f ops/s",
      scenario, label, reclaimer, fence, n, shards, orderings, rate);
  if (cell.p99_ns > 0) {
    std::printf("  p50=%.0f p99=%.0f p99.9=%.0f ns", cell.p50_ns, cell.p99_ns,
                cell.p999_ns);
  }
  std::printf("\n");
  std::fflush(stdout);
}

// The sharded cells of one (platform, reclaimer) column: the shard count is
// a compile-time parameter (the probe loops unroll), so the runtime sweep
// dispatches over the instantiated counts.
template <class P, class R>
void run_sharded_cells(const char* label, const char* orderings,
                       const MatrixConfig& config, bench::JsonReport& report) {
  const char* fence = fence_label<P>();
  const bool want_stack = scenario_wanted(config, "sharded_treiber_stack");
  const bool want_queue = scenario_wanted(config, "sharded_ms_queue");
  if (want_stack || want_queue) {
    for (const int shards : config.shard_counts) {
      for (const int n : config.thread_counts) {
        Cell stack_cell, queue_cell;
        switch (shards) {
          case 1:
            stack_cell = run_sharded_stack<P, R, 1>(n, config.secs);
            queue_cell = run_sharded_queue<P, R, 1>(n, config.secs);
            break;
          case 2:
            stack_cell = run_sharded_stack<P, R, 2>(n, config.secs);
            queue_cell = run_sharded_queue<P, R, 2>(n, config.secs);
            break;
          case 4:
            stack_cell = run_sharded_stack<P, R, 4>(n, config.secs);
            queue_cell = run_sharded_queue<P, R, 4>(n, config.secs);
            break;
          case 8:
            stack_cell = run_sharded_stack<P, R, 8>(n, config.secs);
            queue_cell = run_sharded_queue<P, R, 8>(n, config.secs);
            break;
          default:
            std::fprintf(stderr,
                         "shard count %d not instantiated (want 1|2|4|8)\n",
                         shards);
            continue;
        }
        if (want_stack) {
          emit(report, "sharded_treiber_stack", label, orderings, R::kName,
               fence, n, shards, stack_cell);
        }
        if (want_queue) {
          emit(report, "sharded_ms_queue", label, orderings, R::kName, fence, n,
               shards, queue_cell);
        }
      }
    }
  }
  if (config.adaptive) {
    for (const int n : config.thread_counts) {
      int settled = 1;
      if (scenario_wanted(config, "adaptive_sharded_stack")) {
        const Cell stack_cell =
            run_adaptive_stack<P, R>(n, config.secs, &settled);
        emit(report, "adaptive_sharded_stack", label, orderings, R::kName,
             fence, n, settled, stack_cell);
      }
      if (scenario_wanted(config, "adaptive_sharded_queue")) {
        const Cell queue_cell =
            run_adaptive_queue<P, R>(n, config.secs, &settled);
        emit(report, "adaptive_sharded_queue", label, orderings, R::kName,
             fence, n, settled, queue_cell);
      }
    }
  }
}

// One reclaimer column of one platform side.
template <class P, class R>
void run_reclaim_column(const char* label, const char* orderings,
                        const MatrixConfig& config, bench::JsonReport& report) {
  if (!wants(config, R::kName)) return;
  const char* fence = fence_label<P>();
  for (const int n : config.thread_counts) {
    if (scenario_wanted(config, "treiber_stack")) {
      emit(report, "treiber_stack", label, orderings, R::kName, fence, n, 1,
           run_treiber_stack<P, R>(n, config.secs, config.latency));
    }
    if (scenario_wanted(config, "treiber_stack_llsc")) {
      emit(report, "treiber_stack_llsc", label, orderings, R::kName, fence, n,
           1, run_treiber_stack_llsc<P, R>(n, config.secs));
    }
    if (scenario_wanted(config, "ms_queue")) {
      emit(report, "ms_queue", label, orderings, R::kName, fence, n, 1,
           run_ms_queue<P, R>(n, config.secs, config.latency));
    }
    if (scenario_wanted(config, "treiber_stack_90_10")) {
      emit(report, "treiber_stack_90_10", label, orderings, R::kName, fence, n,
           1, run_treiber_stack_90_10<P, R>(n, config.secs));
    }
  }
  if (scenario_wanted(config, "treiber_stack_oversub")) {
    const int oversub = oversub_threads();
    emit(report, "treiber_stack_oversub", label, orderings, R::kName, fence,
         oversub, 1, run_treiber_stack<P, R>(oversub, config.secs));
  }
  run_sharded_cells<P, R>(label, orderings, config, report);
}

// One side of the matrix. Policies are per scenario: LlscPolicy for the
// single-word LL/SC, SeqCstPolicy for every construction whose protocol
// contains a StoreLoad pattern — the Figure 4 announce-array register AND
// the hazard/epoch reclaimers (guard publish → source revalidation, epoch
// announce → global re-read), which acquire/release cannot order —
// StructPolicy for the structures under the guard-free tagged/leaky
// reclaimers (see the orderings note in the header comment and in the
// reclaimer headers).
template <class LlscPolicy, class SeqCstPolicy, class StructPolicy>
void run_side(const char* label, const MatrixConfig& config,
              bench::JsonReport& report) {
  using LlscP = native::NativePlatform<LlscPolicy>;
  using SeqCstP = native::NativePlatform<SeqCstPolicy>;
  using StructP = native::NativePlatform<StructPolicy>;
  for (const int n : config.thread_counts) {
    if (scenario_wanted(config, "llsc_single_cas")) {
      emit(report, "llsc_single_cas", label, orderings_label<LlscPolicy>(),
           "none", "seq_cst", n, 1, run_llsc<LlscP>(n, config.secs));
    }
    if (scenario_wanted(config, "aba_register")) {
      emit(report, "aba_register", label, orderings_label<SeqCstPolicy>(),
           "none", "seq_cst", n, 1, run_aba_register<SeqCstP>(n, config.secs));
    }
  }
  run_reclaim_column<StructP, reclaim::TaggedReclaimer<StructP>>(
      label, orderings_label<StructPolicy>(), config, report);
  run_reclaim_column<StructP, reclaim::LeakyReclaimer<StructP>>(
      label, orderings_label<StructPolicy>(), config, report);
  run_reclaim_column<SeqCstP, reclaim::HazardPointerReclaimer<SeqCstP>>(
      label, orderings_label<SeqCstPolicy>(), config, report);
  run_reclaim_column<SeqCstP, reclaim::CachedHazardPointerReclaimer<SeqCstP>>(
      label, orderings_label<SeqCstPolicy>(), config, report);
  run_reclaim_column<SeqCstP, reclaim::EpochBasedReclaimer<SeqCstP>>(
      label, orderings_label<SeqCstPolicy>(), config, report);
  run_reclaim_column<SeqCstP, reclaim::DeferredEpochReclaimer<SeqCstP>>(
      label, orderings_label<SeqCstPolicy>(), config, report);
}

// The retire-batch-size axis of the deferred-epoch pipeline: the contended
// stack cell re-run with the batch override swept across the LocalRing
// sizes, so the amortization curve (one flush — one shared stamp read plus
// one advance — per K retires) is measurable instead of asserted. Cells are
// keyed by reclaimer name "epoch_deferred_b<K>"; only the most contended
// thread count runs, where the flush cadence actually shows.
template <class P, std::size_t K>
void run_deferred_batch_cell(const char* label, const char* orderings,
                             const MatrixConfig& config,
                             bench::JsonReport& report) {
  if (!wants(config, "epoch_deferred")) return;
  if (!scenario_wanted(config, "treiber_stack")) return;
  using R = reclaim::EpochBasedReclaimer<P, reclaim::DeferredAnnounce, K>;
  char name[32];
  std::snprintf(name, sizeof(name), "epoch_deferred_b%zu", K);
  const int n = *std::max_element(config.thread_counts.begin(),
                                  config.thread_counts.end());
  emit(report, "treiber_stack", label, orderings, name, fence_label<P>(), n, 1,
       run_treiber_stack<P, R>(n, config.secs));
}

template <class P>
void run_deferred_batch_axis(const char* label, const char* orderings,
                             const MatrixConfig& config,
                             bench::JsonReport& report) {
  run_deferred_batch_cell<P, 1>(label, orderings, config, report);
  run_deferred_batch_cell<P, 4>(label, orderings, config, report);
  run_deferred_batch_cell<P, 16>(label, orderings, config, report);
  run_deferred_batch_cell<P, 64>(label, orderings, config, report);
  run_deferred_batch_cell<P, 256>(label, orderings, config, report);
}

// The ring cells of one platform side. Fixed-role scenarios (spsc: 2
// threads, pipeline: 3) run once; the role-asymmetric sweeps need at least
// one thread per side, so n=1 entries are skipped.
template <class P>
void run_ring_cells(const char* label, const char* orderings,
                    const MatrixConfig& config, bench::JsonReport& report) {
  if (scenario_wanted(config, "ring_spsc")) {
    emit(report, "ring_spsc", label, orderings, "none", "seq_cst", 2, 1,
         run_ring_spsc<P>(config.secs));
  }
  for (const int n : config.thread_counts) {
    if (n < 2) continue;
    if (scenario_wanted(config, "ring_mpsc")) {
      emit(report, "ring_mpsc", label, orderings, "none", "seq_cst", n, 1,
           run_ring_mpsc<P>(n, config.secs));
    }
    if (scenario_wanted(config, "ring_mpmc")) {
      emit(report, "ring_mpmc", label, orderings, "none", "seq_cst", n, 1,
           run_ring_mpmc<P>(n, config.secs));
    }
    if (scenario_wanted(config, "ring_fanout")) {
      emit(report, "ring_fanout", label, orderings, "none", "seq_cst", n, 1,
           run_ring_fanout<P>(n, config.secs));
    }
    if (scenario_wanted(config, "ring_burst")) {
      emit(report, "ring_burst", label, orderings, "none", "seq_cst", n, 1,
           run_ring_burst<P>(n, config.secs));
    }
  }
  if (scenario_wanted(config, "ring_pipeline")) {
    emit(report, "ring_pipeline", label, orderings, "none", "seq_cst", 3, 1,
         run_ring_pipeline<P>(config.secs));
  }
}

double find_rate(const bench::JsonReport& report, const std::string& scenario,
                 const std::string& platform, const std::string& reclaimer,
                 const std::string& fence, int threads, int shards) {
  for (const auto& r : report.records()) {
    if (r.scenario == scenario && r.platform == platform &&
        r.reclaimer == reclaimer && r.fence == fence && r.threads == threads &&
        r.shards == shards) {
      return r.ops_per_sec;
    }
  }
  return 0;
}

std::vector<std::string> parse_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(pos, comma == std::string::npos
                                                ? std::string::npos
                                                : comma - pos);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<int> parse_ints(const std::string& csv) {
  std::vector<int> out;
  for (const auto& tok : parse_csv(csv)) {
    const int n = std::atoi(tok.c_str());
    if (n >= 1) out.push_back(n);
  }
  return out;
}

std::vector<std::string> parse_reclaimers(const std::string& csv) {
  std::vector<std::string> out;
  for (const auto& tok : parse_csv(csv)) {
    if (tok == "tagged" || tok == "leaky" || tok == "hazard" ||
        tok == "hazard_cached" || tok == "epoch" || tok == "epoch_deferred") {
      out.push_back(tok);
    } else {
      std::fprintf(stderr,
                   "unknown reclaimer '%s' "
                   "(want tagged|leaky|hazard|hazard_cached|epoch|"
                   "epoch_deferred)\n",
                   tok.c_str());
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  MatrixConfig config;
  config.thread_counts = {1, 2, 4};
  config.reclaimers = {"tagged",       "leaky", "hazard",
                       "hazard_cached", "epoch", "epoch_deferred"};
  config.shard_counts = {1, 4};
  std::string out_path = "BENCH_native.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--benchmark_min_time=", 0) == 0) {
      // Accepts google-benchmark spellings "0.01" and "0.01s".
      config.secs = std::atof(arg.c_str() + std::strlen("--benchmark_min_time="));
      if (config.secs <= 0) config.secs = 0.01;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.thread_counts = parse_ints(arg.substr(std::strlen("--threads=")));
      if (config.thread_counts.empty()) config.thread_counts = {1, 2, 4};
    } else if (arg.rfind("--reclaimers=", 0) == 0) {
      config.reclaimers = parse_reclaimers(arg.substr(std::strlen("--reclaimers=")));
      if (config.reclaimers.empty()) {
        std::fprintf(stderr, "no valid reclaimers selected\n");
        return 2;
      }
    } else if (arg.rfind("--shards=", 0) == 0) {
      // An explicit list opts in (or out) of each shard dimension: numeric
      // tokens select compile-time counts, "adaptive" selects the facade.
      const std::string list = arg.substr(std::strlen("--shards="));
      config.shard_counts = parse_ints(list);
      config.adaptive = false;
      for (const auto& tok : parse_csv(list)) {
        if (tok == "adaptive") config.adaptive = true;
      }
      if (config.shard_counts.empty() && !config.adaptive) {
        std::fprintf(stderr, "no valid shard counts selected\n");
        return 2;
      }
    } else if (arg == "--pin") {
      config.pin = true;
    } else if (arg == "--latency") {
      config.latency = true;
    } else if (arg.rfind("--scenarios=", 0) == 0) {
      config.scenarios = parse_csv(arg.substr(std::strlen("--scenarios=")));
      if (config.scenarios.empty()) {
        std::fprintf(stderr, "no scenarios selected\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--benchmark_min_time=SECS] [--out=PATH] "
                   "[--threads=1,2,4] "
                   "[--reclaimers=tagged,leaky,hazard,hazard_cached,epoch,"
                   "epoch_deferred] "
                   "[--shards=1,2,4,8,adaptive] [--pin] [--latency] "
                   "[--scenarios=name,name]\n",
                   argv[0]);
      return 2;
    }
  }

  g_pin.requested = config.pin;
  g_pin.cpus = online_cpus();

  bench::JsonReport report("native_throughput_matrix");
  report.add_context("hardware_concurrency",
                     std::to_string(std::thread::hardware_concurrency()));
  report.add_context("min_seconds_per_cell", std::to_string(config.secs));
  report.add_context("oversub_threads", std::to_string(oversub_threads()));
  report.add_context("online_cores", std::to_string(g_pin.cpus.size()));
  report.add_context("pin", config.pin
                                ? "round_robin"  // Auto-off per cell when
                                                 // threads > online cores.
                                : "off");
  report.add_context("asymmetric_fence_scheme",
                     util::AsymmetricFence::scheme_name());
  report.add_context("latency_legacy_cells", config.latency ? "on" : "off");
#ifdef ABA_RELAXED_ORDERINGS
  report.add_context("relaxed_orderings_option", "on");
#else
  report.add_context("relaxed_orderings_option", "off");
#endif
#ifdef NDEBUG
  report.add_context("build", "NDEBUG");
#else
  report.add_context("build", "debug");
#endif

  std::printf(
      "E9  native throughput matrix "
      "(counted vs fast × reclaimers × shards × fences)\n");
  run_side<native::Counted, native::Counted, native::Counted>("counted", config,
                                                              report);
  run_side<native::FastRelaxed, native::Fast, native::FastRelaxed>(
      "fast", config, report);

  // The fence dimension: the hazard-family columns again on the asymmetric
  // platform (plain release publish + compiler barrier; the scan carries
  // the membarrier heavy side). Same "fast" platform label — the fence
  // field is what distinguishes the cells. Skipped entirely when the
  // asymmetric fast side is compiled out (TSan, non-Linux,
  // -DABA_ASYMMETRIC_FENCE=OFF): there the fallback runs seq_cst fences
  // on both sides, so the cells would mislabel a symmetric scheme as
  // "asymmetric" — and labelling them "seq_cst" instead would collide
  // with the real seq_cst cells in bench_compare's key space.
  if constexpr (util::AsymmetricFence::kCompiledAsymmetric) {
    using AsymP = native::NativePlatform<native::FastAsymmetric>;
    const char* ord = orderings_label<native::FastAsymmetric>();
    run_reclaim_column<AsymP, reclaim::HazardPointerReclaimer<AsymP>>(
        "fast", ord, config, report);
    run_reclaim_column<AsymP, reclaim::CachedHazardPointerReclaimer<AsymP>>(
        "fast", ord, config, report);
    // Deferred-announce epoch is the ONLY epoch variant admitted on the
    // asymmetric platform (epoch.h static-rejects the eager protocol
    // there): a relaxed announce + compiler barrier on the op side, the
    // membarrier heavy side confined to try_advance.
    run_reclaim_column<AsymP, reclaim::DeferredEpochReclaimer<AsymP>>(
        "fast", ord, config, report);
    run_deferred_batch_axis<AsymP>("fast", ord, config, report);
  }

  // The retire-batch-size axis on the symmetric fast side as well, so the
  // curve exists even where the asymmetric scheme is compiled out.
  run_deferred_batch_axis<native::NativePlatform<native::Fast>>(
      "fast", orderings_label<native::Fast>(), config, report);

  // The ring family on both platform sides: SPSC's zero-RMW fast path vs
  // the MPSC/MPMC per-op CAS price, in throughput AND latency percentiles.
  run_ring_cells<native::NativePlatform<native::Counted>>(
      "counted", orderings_label<native::Counted>(), config, report);
  run_ring_cells<native::NativePlatform<native::FastRelaxed>>(
      "fast", orderings_label<native::FastRelaxed>(), config, report);

  std::printf("\n  fast/counted speedup:\n");
  for (const char* scenario : {"llsc_single_cas", "aba_register"}) {
    for (const int n : config.thread_counts) {
      const double counted =
          find_rate(report, scenario, "counted", "none", "seq_cst", n, 1);
      const double fast =
          find_rate(report, scenario, "fast", "none", "seq_cst", n, 1);
      if (counted > 0) {
        std::printf("  %-22s %-7s threads=%d  %.2fx\n", scenario, "none", n,
                    fast / counted);
      }
    }
  }
  for (const char* scenario :
       {"treiber_stack", "treiber_stack_llsc", "ms_queue",
        "treiber_stack_90_10"}) {
    for (const auto& reclaimer : config.reclaimers) {
      for (const int n : config.thread_counts) {
        const double counted = find_rate(report, scenario, "counted",
                                         reclaimer, "seq_cst", n, 1);
        const double fast =
            find_rate(report, scenario, "fast", reclaimer, "seq_cst", n, 1);
        if (counted > 0) {
          std::printf("  %-22s %-7s threads=%d  %.2fx\n", scenario,
                      reclaimer.c_str(), n, fast / counted);
        }
      }
    }
  }

  // The headline of this matrix: the hazard-family tax relative to tagged
  // on the fast side, per fence scheme. Guard caching + asymmetric fences
  // exist to drive these ratios toward 1.0.
  if (wants(config, "tagged")) {
    std::printf("\n  hazard-family cost vs tagged (fast side, contended):\n");
    for (const char* scenario : {"treiber_stack", "treiber_stack_90_10"}) {
      for (const int n : config.thread_counts) {
        const double tagged =
            find_rate(report, scenario, "fast", "tagged", "seq_cst", n, 1);
        if (tagged <= 0) continue;
        for (const char* reclaimer : {"hazard", "hazard_cached"}) {
          if (!wants(config, reclaimer)) continue;
          for (const char* fence : {"seq_cst", "asymmetric"}) {
            const double rate =
                find_rate(report, scenario, "fast", reclaimer, fence, n, 1);
            if (rate > 0) {
              std::printf("  %-22s %-14s %-11s threads=%d  %.2fx of tagged\n",
                          scenario, reclaimer, fence, n, rate / tagged);
            }
          }
        }
      }
    }
  }

  // The sharding win itself: each swept shard count vs the 1-shard cell of
  // the same (structure, reclaimer, threads) on the fast side.
  if (config.shard_counts.size() > 1) {
    std::printf("\n  sharding speedup (fast side, vs shards=1):\n");
    for (const char* scenario : {"sharded_treiber_stack", "sharded_ms_queue"}) {
      for (const auto& reclaimer : config.reclaimers) {
        for (const int n : config.thread_counts) {
          const double base = find_rate(report, scenario, "fast", reclaimer,
                                        "seq_cst", n, 1);
          if (base <= 0) continue;
          for (const int shards : config.shard_counts) {
            if (shards == 1) continue;
            const double sharded = find_rate(report, scenario, "fast",
                                             reclaimer, "seq_cst", n, shards);
            if (sharded > 0) {
              std::printf("  %-22s %-7s threads=%d shards=%d  %.2fx\n",
                          scenario, reclaimer.c_str(), n, shards,
                          sharded / base);
            }
          }
        }
      }
    }
  }

  // The ring latency headline: the SPSC↔MPMC percentile gap on the fast
  // side is the prevention price measured on the latency axis.
  std::printf("\n  ring latency (fast side):\n");
  for (const auto& r : report.records()) {
    if (r.platform == "fast" && r.scenario.rfind("ring_", 0) == 0 &&
        r.p99_ns > 0) {
      std::printf("  %-22s threads=%-3d p50=%.0fns p99=%.0fns p99.9=%.0fns\n",
                  r.scenario.c_str(), r.threads, r.p50_ns, r.p99_ns,
                  r.p999_ns);
    }
  }

  if (!report.write_file(out_path)) return 1;
  std::printf("\n  wrote %s (%zu records)\n", out_path.c_str(),
              report.records().size());
  return 0;
}
