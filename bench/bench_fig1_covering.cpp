// E5 — Figure 1 / Lemma 1: the covering adversary, quantified.
//
// Two reproductions:
//   1. Against Figure 4 for growing n: the adversary reaches the full cover
//      of n-1 distinct registers (Theorem 1(a)'s bound, witnessed), with
//      the probe/replay counts showing the construction's cost.
//   2. Against the naive bounded-tag register for growing tag width: the
//      chain length until the register-configuration repeat (and with it
//      the correctness violation) grows as Theta(2^tag_bits) — bounded tags
//      only delay the pigeonhole, never escape it.
#include "bench_common.h"
#include "core/aba_register_bounded.h"
#include "core/aba_register_bounded_tag_naive.h"
#include "lowerbound/covering_adversary.h"
#include "sim/sim_platform.h"

namespace {

using namespace aba;
using SimP = sim::SimPlatform;

void fig4_table() {
  bench::banner("E5a", "Lemma 1 vs Figure 4: the cover is reached");
  util::Table table({"n", "target cover (n-1)", "cover reached", "probes",
                     "chain iterations", "replays", "violation"});
  for (int n : {2, 3, 4, 6, 8, 12}) {
    lowerbound::CoveringAdversary adversary(
        n, lowerbound::make_weak_aba_factory<core::AbaRegisterBounded<SimP>>(
               n, {.value_bits = 1}),
        lowerbound::CoveringAdversary::Options{.max_iterations_per_level = 128,
                                               .max_replays = 100000,
                                               .verbose_log = false});
    const auto r = adversary.run(n - 1);
    table.add_row({util::Table::fmt(static_cast<std::uint64_t>(n)),
                   util::Table::fmt(static_cast<std::uint64_t>(n - 1)),
                   r.cover_reached ? "yes" : "no", util::Table::fmt(r.probes),
                   util::Table::fmt(r.chain_iterations),
                   util::Table::fmt(r.replays),
                   r.violation_found ? "YES" : "none"});
  }
  table.print();
  bench::note(
      "Claim shape: the adversary covers n-1 distinct registers of Figure 4\n"
      "(its announce array) at every n — the m >= n-1 space bound is live.");
}

void naive_tag_table() {
  bench::banner("E5b", "Lemma 1 vs naive bounded tags: pigeonhole delay");
  util::Table table({"tag bits", "tag period (2^k)", "chain iterations",
                     "replays", "violation found", "clean flag", "dirty flag"});
  for (unsigned k : {1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
    const int n = 2;
    lowerbound::CoveringAdversary adversary(
        n,
        lowerbound::make_weak_aba_factory<
            core::AbaRegisterBoundedTagNaive<SimP>>(
            n, {.value_bits = 1, .tag_bits = k, .initial_value = 0}),
        lowerbound::CoveringAdversary::Options{.max_iterations_per_level = 600,
                                               .max_replays = 2000000,
                                               .verbose_log = false});
    const auto r = adversary.run(1);
    table.add_row({util::Table::fmt(static_cast<std::uint64_t>(k)),
                   util::Table::fmt(std::uint64_t{1} << k),
                   util::Table::fmt(r.chain_iterations),
                   util::Table::fmt(r.replays),
                   r.violation_found ? "yes" : "no",
                   r.clean_flag ? "T" : "F", r.dirty_flag ? "T" : "F"});
  }
  table.print();
  bench::note(
      "Claim shape: the construction needs ~2^k writer iterations before the\n"
      "register configuration repeats, then the clean/dirty witnesses split\n"
      "(dirty read returns False = a missed write). Wider tags delay the\n"
      "failure exponentially but cannot prevent it — the paper's point that\n"
      "bounded tagging is 'unsatisfactory from a theoretical perspective'.");
}

void BM_CoveringAdversary_Fig4(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    lowerbound::CoveringAdversary adversary(
        n, lowerbound::make_weak_aba_factory<core::AbaRegisterBounded<SimP>>(
               n, {.value_bits = 1}),
        lowerbound::CoveringAdversary::Options{.max_iterations_per_level = 128,
                                               .max_replays = 100000,
                                               .verbose_log = false});
    benchmark::DoNotOptimize(adversary.run(n - 1));
  }
}
BENCHMARK(BM_CoveringAdversary_Fig4)->Arg(3)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fig4_table();
  naive_tag_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
