#include "bench_json.h"

#include <cinttypes>
#include <cstdio>

namespace aba::bench {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string number(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

}  // namespace

JsonReport::JsonReport(std::string bench_name) : name_(std::move(bench_name)) {}

void JsonReport::add_context(const std::string& key, const std::string& value) {
  context_.emplace_back(key, value);
}

void JsonReport::add(JsonRecord record) { records_.push_back(std::move(record)); }

std::string JsonReport::to_json() const {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"" + escape_json(name_) + "\",\n";
  out += "  \"schema\": " +
         number(static_cast<std::uint64_t>(kBenchSchemaVersion)) + ",\n";
  out += "  \"context\": {";
  for (std::size_t i = 0; i < context_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n    \"" + escape_json(context_[i].first) + "\": \"" +
           escape_json(context_[i].second) + "\"";
  }
  out += context_.empty() ? "},\n" : "\n  },\n";
  out += "  \"results\": [";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const JsonRecord& r = records_[i];
    if (i > 0) out += ",";
    out += "\n    {\"scenario\": \"" + escape_json(r.scenario) +
           "\", \"platform\": \"" + escape_json(r.platform) +
           "\", \"orderings\": \"" + escape_json(r.orderings) +
           "\", \"reclaimer\": \"" + escape_json(r.reclaimer) +
           "\", \"fence\": \"" + escape_json(r.fence) +
           "\", \"threads\": " + number(static_cast<std::uint64_t>(r.threads)) +
           ", \"shards\": " + number(static_cast<std::uint64_t>(r.shards)) +
           ", \"ops\": " + number(r.ops) +
           ", \"seconds\": " + number(r.seconds) +
           ", \"ops_per_sec\": " + number(r.ops_per_sec) +
           ", \"p50_ns\": " + number(r.p50_ns) +
           ", \"p99_ns\": " + number(r.p99_ns) +
           ", \"p999_ns\": " + number(r.p999_ns) + "}";
  }
  out += records_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool JsonReport::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string doc = to_json();
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  const bool ok = written == doc.size() && close_ok;
  if (!ok) std::fprintf(stderr, "bench_json: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace aba::bench
