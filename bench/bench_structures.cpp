// E8 — Section 1 (applications): lock-free structures under the different
// ABA regimes, compared natively.
//
// Throughput of four stacks under thread contention:
//   * Treiber + bounded tag (the practice the paper critiques),
//   * Treiber + LL/SC head (Moir-style unbounded-tag LL/SC — the object the
//     paper's constructions provide from bounded primitives),
//   * Treiber + hazard pointers (Michael's application-specific answer),
//   * a mutex-guarded stack (the non-lock-free control),
// plus the Michael-Scott queue. Correctness of each lock-free flavor under
// interleaving is established separately by the simulator tests (E8 is
// about relative cost, not correctness).
#include <mutex>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "core/llsc_unbounded_tag.h"
#include "native/native_platform.h"
#include "structures/hazard_pointers.h"
#include "structures/ms_queue.h"
#include "structures/treiber_stack.h"

namespace {

using namespace aba;
using NativeP = native::NativePlatform<>;

native::NativePlatform<>::Env g_env;

constexpr int kMaxThreads = 4;
constexpr int kNodesPerThread = 64;

// ---- candidates ----

using TaggedStack =
    structures::TreiberStack<NativeP, structures::TaggedCasHead<NativeP>>;

TaggedStack& tagged_stack() {
  static TaggedStack stack(
      g_env, kMaxThreads,
      std::make_unique<structures::TaggedCasHead<NativeP>>(g_env, kMaxThreads),
      TaggedStack::partition(kMaxThreads, kNodesPerThread));
  return stack;
}

struct LlscStackBundle {
  using Llsc = core::LlscUnboundedTag<NativeP>;
  LlscStackBundle()
      : llsc(g_env, kMaxThreads,
             {.value_bits = 16,
              .initial_value = structures::kNullIndex,
              .initially_linked = false}),
        stack(g_env, kMaxThreads, std::make_unique<structures::LlscHead<Llsc>>(llsc),
              structures::TreiberStack<NativeP, structures::LlscHead<Llsc>>::
                  partition(kMaxThreads, kNodesPerThread)) {}
  Llsc llsc;
  structures::TreiberStack<NativeP, structures::LlscHead<Llsc>> stack;
};

LlscStackBundle& llsc_stack() {
  static LlscStackBundle bundle;
  return bundle;
}

structures::HpTreiberStack<std::uint64_t>& hp_stack() {
  static structures::HpTreiberStack<std::uint64_t> stack(kMaxThreads);
  return stack;
}

class MutexStack {
 public:
  void push(int, std::uint64_t v) {
    std::lock_guard<std::mutex> lock(mu_);
    values_.push_back(v);
  }
  std::optional<std::uint64_t> pop(int) {
    std::lock_guard<std::mutex> lock(mu_);
    if (values_.empty()) return std::nullopt;
    const std::uint64_t v = values_.back();
    values_.pop_back();
    return v;
  }

 private:
  std::mutex mu_;
  std::vector<std::uint64_t> values_;
};

MutexStack& mutex_stack() {
  static MutexStack stack;
  return stack;
}

structures::MsQueue<NativeP>& ms_queue() {
  static structures::MsQueue<NativeP> queue(g_env, kMaxThreads, kNodesPerThread);
  return queue;
}

// ---- benchmarks: one push+pop pair per iteration ----

void BM_Stack_TaggedCas(benchmark::State& state) {
  auto& stack = tagged_stack();
  const int pid = state.thread_index();
  for (auto _ : state) {
    stack.push(pid, 42);
    benchmark::DoNotOptimize(stack.pop(pid));
  }
}
BENCHMARK(BM_Stack_TaggedCas)->Threads(1)->Threads(2)->Threads(4);

void BM_Stack_LlscHead(benchmark::State& state) {
  auto& stack = llsc_stack().stack;
  const int pid = state.thread_index();
  for (auto _ : state) {
    stack.push(pid, 42);
    benchmark::DoNotOptimize(stack.pop(pid));
  }
}
BENCHMARK(BM_Stack_LlscHead)->Threads(1)->Threads(2)->Threads(4);

void BM_Stack_HazardPointers(benchmark::State& state) {
  auto& stack = hp_stack();
  const int pid = state.thread_index();
  std::uint64_t out = 0;
  for (auto _ : state) {
    stack.push(pid, 42);
    benchmark::DoNotOptimize(stack.pop(pid, out));
  }
}
BENCHMARK(BM_Stack_HazardPointers)->Threads(1)->Threads(2)->Threads(4);

void BM_Stack_Mutex(benchmark::State& state) {
  auto& stack = mutex_stack();
  const int pid = state.thread_index();
  for (auto _ : state) {
    stack.push(pid, 42);
    benchmark::DoNotOptimize(stack.pop(pid));
  }
}
BENCHMARK(BM_Stack_Mutex)->Threads(1)->Threads(2)->Threads(4);

void BM_Queue_MichaelScott(benchmark::State& state) {
  auto& queue = ms_queue();
  const int pid = state.thread_index();
  for (auto _ : state) {
    queue.enqueue(pid, 42);
    benchmark::DoNotOptimize(queue.dequeue(pid));
  }
}
BENCHMARK(BM_Queue_MichaelScott)->Threads(1)->Threads(2)->Threads(4);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("E8",
                "Lock-free structures under the ABA-protection regimes "
                "(native throughput)");
  bench::note(
      "Stacks: bounded-tag CAS head vs LL/SC head vs hazard pointers vs\n"
      "mutex; plus the Michael-Scott queue. Expected shape: all lock-free\n"
      "flavors are within a small factor of each other; the LL/SC head pays\n"
      "its extra link/validate steps; hazard pointers pay publish+fence; the\n"
      "mutex collapses under contention on multicore machines (on a 1-core\n"
      "host the gap narrows since there is no true parallelism).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
