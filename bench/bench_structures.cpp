// E8 — Section 1 (applications): lock-free structures under the different
// ABA regimes, compared natively.
//
// Since the reclamation rework the regimes are one orthogonal axis
// (src/reclaim/) instead of bespoke implementations. Stack rows:
//   * Treiber + bounded tag + immediate reuse (TaggedReclaimer — the
//     practice the paper critiques),
//   * the same stack under HazardPointerReclaimer and EpochBasedReclaimer
//     (deferred reuse: Michael's application-specific answer, and its
//     cheaper-dereference/weaker-space-bound epoch sibling),
//   * Treiber + LL/SC head (Moir-style unbounded-tag LL/SC — the object the
//     paper's constructions provide from bounded primitives),
//   * the pointer-based, heap-allocating hazard stack (HpTreiberStack),
//   * a mutex-guarded stack (the non-lock-free control),
// plus the Michael-Scott queue under the tagged and hazard reclaimers.
// The LeakyReclaimer floor is measured in E9 (bench_throughput_matrix),
// whose duration-based harness handles its drain-limited cells; a
// google-benchmark loop would just spin on an exhausted pool.
//
// Ring rows (structures/ring_buffer.h): the bounded rings whose per-slot
// sequence words are the ABA answer — SPSC (zero shared RMW per op,
// spin-to-transfer pairs), the Vyukov MPMC ring as push;pop pairs directly
// comparable to the stack/queue rows, and try-semantics role-asymmetric
// shapes (MPSC, 1-producer fan-out, bursty producer, two-ring feed-handler
// pipeline) where an iteration is one attempt.
//
// Correctness of each flavor under interleaving is established separately
// by the simulator tests (E8 is about relative cost, not correctness).
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/llsc_unbounded_tag.h"
#include "native/native_platform.h"
#include "reclaim/epoch.h"
#include "reclaim/hazard_pointer.h"
#include "reclaim/tagged.h"
#include "structures/hp_stack.h"
#include "structures/ms_queue.h"
#include "structures/ring_buffer.h"
#include "structures/treiber_stack.h"

namespace {

using namespace aba;
using NativeP = native::NativePlatform<>;

native::NativePlatform<>::Env g_env;

constexpr int kMaxThreads = 4;
constexpr int kNodesPerThread = 64;

// ---- candidates ----

template <class R>
using ReclaimedStack =
    structures::TreiberStack<NativeP, structures::TaggedCasHead<NativeP>, R>;

template <class R>
ReclaimedStack<R>& reclaimed_stack() {
  static ReclaimedStack<R> stack(
      g_env, kMaxThreads,
      std::make_unique<structures::TaggedCasHead<NativeP>>(g_env, kMaxThreads),
      ReclaimedStack<R>::partition(kMaxThreads, kNodesPerThread));
  return stack;
}

struct LlscStackBundle {
  using Llsc = core::LlscUnboundedTag<NativeP>;
  LlscStackBundle()
      : llsc(g_env, kMaxThreads,
             {.value_bits = 16,
              .initial_value = structures::kNullIndex,
              .initially_linked = false}),
        stack(g_env, kMaxThreads, std::make_unique<structures::LlscHead<Llsc>>(llsc),
              structures::TreiberStack<NativeP, structures::LlscHead<Llsc>>::
                  partition(kMaxThreads, kNodesPerThread)) {}
  Llsc llsc;
  structures::TreiberStack<NativeP, structures::LlscHead<Llsc>> stack;
};

LlscStackBundle& llsc_stack() {
  static LlscStackBundle bundle;
  return bundle;
}

structures::HpTreiberStack<std::uint64_t>& hp_stack() {
  static structures::HpTreiberStack<std::uint64_t> stack(kMaxThreads);
  return stack;
}

class MutexStack {
 public:
  void push(int, std::uint64_t v) {
    std::lock_guard<std::mutex> lock(mu_);
    values_.push_back(v);
  }
  std::optional<std::uint64_t> pop(int) {
    std::lock_guard<std::mutex> lock(mu_);
    if (values_.empty()) return std::nullopt;
    const std::uint64_t v = values_.back();
    values_.pop_back();
    return v;
  }

 private:
  std::mutex mu_;
  std::vector<std::uint64_t> values_;
};

MutexStack& mutex_stack() {
  static MutexStack stack;
  return stack;
}

template <class R>
structures::MsQueue<NativeP, R>& ms_queue() {
  static structures::MsQueue<NativeP, R> queue(g_env, kMaxThreads,
                                               kNodesPerThread);
  return queue;
}

// ---- benchmarks: one push+pop pair per iteration ----

template <class R>
void BM_Stack_Reclaimed(benchmark::State& state) {
  auto& stack = reclaimed_stack<R>();
  const int pid = state.thread_index();
  for (auto _ : state) {
    stack.push(pid, 42);
    benchmark::DoNotOptimize(stack.pop(pid));
  }
}
BENCHMARK_TEMPLATE(BM_Stack_Reclaimed, reclaim::TaggedReclaimer<NativeP>)
    ->Name("BM_Stack_TaggedCas")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4);
BENCHMARK_TEMPLATE(BM_Stack_Reclaimed, reclaim::HazardPointerReclaimer<NativeP>)
    ->Name("BM_Stack_HazardReclaimer")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4);
BENCHMARK_TEMPLATE(BM_Stack_Reclaimed, reclaim::EpochBasedReclaimer<NativeP>)
    ->Name("BM_Stack_EpochReclaimer")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4);

void BM_Stack_LlscHead(benchmark::State& state) {
  auto& stack = llsc_stack().stack;
  const int pid = state.thread_index();
  for (auto _ : state) {
    stack.push(pid, 42);
    benchmark::DoNotOptimize(stack.pop(pid));
  }
}
BENCHMARK(BM_Stack_LlscHead)->Threads(1)->Threads(2)->Threads(4);

void BM_Stack_HazardPointers(benchmark::State& state) {
  auto& stack = hp_stack();
  const int pid = state.thread_index();
  std::uint64_t out = 0;
  for (auto _ : state) {
    stack.push(pid, 42);
    benchmark::DoNotOptimize(stack.pop(pid, out));
  }
}
BENCHMARK(BM_Stack_HazardPointers)->Threads(1)->Threads(2)->Threads(4);

void BM_Stack_Mutex(benchmark::State& state) {
  auto& stack = mutex_stack();
  const int pid = state.thread_index();
  for (auto _ : state) {
    stack.push(pid, 42);
    benchmark::DoNotOptimize(stack.pop(pid));
  }
}
BENCHMARK(BM_Stack_Mutex)->Threads(1)->Threads(2)->Threads(4);

template <class R>
void BM_Queue_MichaelScott(benchmark::State& state) {
  auto& queue = ms_queue<R>();
  const int pid = state.thread_index();
  for (auto _ : state) {
    queue.enqueue(pid, 42);
    benchmark::DoNotOptimize(queue.dequeue(pid));
  }
}
BENCHMARK_TEMPLATE(BM_Queue_MichaelScott, reclaim::TaggedReclaimer<NativeP>)
    ->Name("BM_Queue_MichaelScott")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4);
BENCHMARK_TEMPLATE(BM_Queue_MichaelScott, reclaim::HazardPointerReclaimer<NativeP>)
    ->Name("BM_Queue_MichaelScott_Hazard")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4);

// ---- benchmarks: the ring family ----

constexpr std::size_t kRingCapacity = 1024;

structures::SpscRing<NativeP>& spsc_ring() {
  static structures::SpscRing<NativeP> ring(g_env, kMaxThreads, kRingCapacity);
  return ring;
}

structures::MpscRing<NativeP>& mpsc_ring() {
  static structures::MpscRing<NativeP> ring(g_env, kMaxThreads, kRingCapacity);
  return ring;
}

structures::MpmcRing<NativeP>& mpmc_ring() {
  static structures::MpmcRing<NativeP> ring(g_env, kMaxThreads, kRingCapacity);
  return ring;
}

structures::MpmcRing<NativeP>& fanout_ring() {
  static structures::MpmcRing<NativeP> ring(g_env, kMaxThreads, kRingCapacity);
  return ring;
}

structures::MpmcRing<NativeP>& burst_ring() {
  static structures::MpmcRing<NativeP> ring(g_env, kMaxThreads, kRingCapacity);
  return ring;
}

// Spin helper for the transfer-semantics rows: every counted iteration is
// one successful op, so the row prices a real hand-off (the yield keeps a
// 1-core host from spinning a whole quantum against an unscheduled peer).
template <class Op>
void spin_until(Op&& op) {
  for (int spins = 0; !op(); ++spins) {
    if ((spins & 63) == 63) std::this_thread::yield();
  }
}

// 1 producer (thread 0), 1 consumer: the zero-shared-RMW fast path. Both
// threads run the same iteration count, so pushes and pops stay balanced
// and the spin loops always make progress.
void BM_Ring_Spsc(benchmark::State& state) {
  auto& ring = spsc_ring();
  const int pid = state.thread_index();
  if (pid == 0) {
    std::uint64_t v = 0;
    for (auto _ : state) {
      spin_until([&] { return ring.try_push(pid, ++v); });
    }
  } else {
    for (auto _ : state) {
      std::optional<std::uint64_t> out;
      spin_until([&] {
        out = ring.try_pop(pid);
        return out.has_value();
      });
      benchmark::DoNotOptimize(out);
    }
  }
}
BENCHMARK(BM_Ring_Spsc)->Threads(2);

// The Vyukov ring as push;pop pairs per thread — the row directly
// comparable to the stack/queue pair rows above (what one op costs when
// every thread plays both roles).
void BM_Ring_MpmcPair(benchmark::State& state) {
  auto& ring = mpmc_ring();
  const int pid = state.thread_index();
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(pid, ++v));
    benchmark::DoNotOptimize(ring.try_pop(pid));
  }
}
BENCHMARK(BM_Ring_MpmcPair)->Threads(1)->Threads(2)->Threads(4);

// Role-asymmetric rows: an iteration is one try-attempt (refusals count),
// so unbalanced role populations cannot deadlock the fixed per-thread
// iteration counts.

// Thread 0 is the single consumer (zero RMW per pop); the rest CAS tail.
void BM_Ring_MpscTry(benchmark::State& state) {
  auto& ring = mpsc_ring();
  const int pid = state.thread_index();
  if (pid == 0) {
    for (auto _ : state) benchmark::DoNotOptimize(ring.try_pop(pid));
  } else {
    std::uint64_t v = 0;
    for (auto _ : state) benchmark::DoNotOptimize(ring.try_push(pid, ++v));
  }
}
BENCHMARK(BM_Ring_MpscTry)->Threads(2)->Threads(4);

// 1 producer feeding n-1 consumers (feed fan-out).
void BM_Ring_Fanout(benchmark::State& state) {
  auto& ring = fanout_ring();
  const int pid = state.thread_index();
  if (pid == 0) {
    std::uint64_t v = 0;
    for (auto _ : state) benchmark::DoNotOptimize(ring.try_push(pid, ++v));
  } else {
    for (auto _ : state) benchmark::DoNotOptimize(ring.try_pop(pid));
  }
}
BENCHMARK(BM_Ring_Fanout)->Threads(2)->Threads(4);

// Load spikes: the producer emits 64-op bursts separated by busy-wait
// quiet gaps; consumers see the queueing the bursts cause.
void BM_Ring_Burst(benchmark::State& state) {
  auto& ring = burst_ring();
  const int pid = state.thread_index();
  if (pid == 0) {
    std::uint64_t v = 0;
    std::uint64_t i = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(ring.try_push(pid, ++v));
      if ((++i & 63) == 0) {
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::microseconds(20);
        while (std::chrono::steady_clock::now() < until) {
        }
      }
    }
  } else {
    for (auto _ : state) benchmark::DoNotOptimize(ring.try_pop(pid));
  }
}
BENCHMARK(BM_Ring_Burst)->Threads(2)->Threads(4);

// feed → handler → gateway over two chained SPSC rings (each ring keeps
// single-writer roles: thread 0 feeds, thread 1 transforms, thread 2
// drains).
struct PipelineRings {
  PipelineRings()
      : feed(g_env, kMaxThreads, kRingCapacity),
        out(g_env, kMaxThreads, kRingCapacity) {}
  structures::SpscRing<NativeP> feed;
  structures::SpscRing<NativeP> out;
};

PipelineRings& pipeline_rings() {
  static PipelineRings rings;
  return rings;
}

void BM_Ring_Pipeline(benchmark::State& state) {
  auto& rings = pipeline_rings();
  const int pid = state.thread_index();
  if (pid == 0) {
    std::uint64_t v = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(rings.feed.try_push(pid, ++v));
    }
  } else if (pid == 1) {
    for (auto _ : state) {
      const std::optional<std::uint64_t> v = rings.feed.try_pop(pid);
      if (v.has_value()) {
        benchmark::DoNotOptimize(rings.out.try_push(pid, *v + 1));
      }
    }
  } else {
    for (auto _ : state) benchmark::DoNotOptimize(rings.out.try_pop(pid));
  }
}
BENCHMARK(BM_Ring_Pipeline)->Threads(3);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("E8",
                "Lock-free structures under the ABA-protection regimes "
                "(native throughput)");
  bench::note(
      "Stacks: bounded-tag CAS head under the tagged/hazard/epoch reclaimers\n"
      "(one orthogonal axis, src/reclaim/), vs LL/SC head, pointer-based\n"
      "hazard pointers, and a mutex; plus the Michael-Scott queue under the\n"
      "tagged and hazard reclaimers. Expected shape: all lock-free flavors\n"
      "are within a small factor of each other; the LL/SC head pays its\n"
      "extra link/validate steps; hazard pays publish+revalidate per\n"
      "dereference; epoch pays one announce per op and amortized advance\n"
      "scans; the mutex collapses under contention on multicore machines\n"
      "(on a 1-core host the gap narrows since there is no true\n"
      "parallelism). The leaky floor lives in E9, whose duration-based\n"
      "harness handles drain-limited cells.\n"
      "Ring rows: SPSC hand-offs cost no shared RMW at all; the MPMC pair\n"
      "row prices the per-slot-sequence CAS discipline against the tagged\n"
      "stack/queue rows; the try-semantics rows (mpsc/fanout/burst/\n"
      "pipeline) shape role-asymmetric and bursty traffic. Percentile\n"
      "latency for the same shapes lives in E9 (--latency, ring cells).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
