// E8 — Section 1 (applications): lock-free structures under the different
// ABA regimes, compared natively.
//
// Since the reclamation rework the regimes are one orthogonal axis
// (src/reclaim/) instead of bespoke implementations. Stack rows:
//   * Treiber + bounded tag + immediate reuse (TaggedReclaimer — the
//     practice the paper critiques),
//   * the same stack under HazardPointerReclaimer and EpochBasedReclaimer
//     (deferred reuse: Michael's application-specific answer, and its
//     cheaper-dereference/weaker-space-bound epoch sibling),
//   * Treiber + LL/SC head (Moir-style unbounded-tag LL/SC — the object the
//     paper's constructions provide from bounded primitives),
//   * the pointer-based, heap-allocating hazard stack (HpTreiberStack),
//   * a mutex-guarded stack (the non-lock-free control),
// plus the Michael-Scott queue under the tagged and hazard reclaimers.
// The LeakyReclaimer floor is measured in E9 (bench_throughput_matrix),
// whose duration-based harness handles its drain-limited cells; a
// google-benchmark loop would just spin on an exhausted pool.
//
// Correctness of each flavor under interleaving is established separately
// by the simulator tests (E8 is about relative cost, not correctness).
#include <mutex>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "core/llsc_unbounded_tag.h"
#include "native/native_platform.h"
#include "reclaim/epoch.h"
#include "reclaim/hazard_pointer.h"
#include "reclaim/tagged.h"
#include "structures/hp_stack.h"
#include "structures/ms_queue.h"
#include "structures/treiber_stack.h"

namespace {

using namespace aba;
using NativeP = native::NativePlatform<>;

native::NativePlatform<>::Env g_env;

constexpr int kMaxThreads = 4;
constexpr int kNodesPerThread = 64;

// ---- candidates ----

template <class R>
using ReclaimedStack =
    structures::TreiberStack<NativeP, structures::TaggedCasHead<NativeP>, R>;

template <class R>
ReclaimedStack<R>& reclaimed_stack() {
  static ReclaimedStack<R> stack(
      g_env, kMaxThreads,
      std::make_unique<structures::TaggedCasHead<NativeP>>(g_env, kMaxThreads),
      ReclaimedStack<R>::partition(kMaxThreads, kNodesPerThread));
  return stack;
}

struct LlscStackBundle {
  using Llsc = core::LlscUnboundedTag<NativeP>;
  LlscStackBundle()
      : llsc(g_env, kMaxThreads,
             {.value_bits = 16,
              .initial_value = structures::kNullIndex,
              .initially_linked = false}),
        stack(g_env, kMaxThreads, std::make_unique<structures::LlscHead<Llsc>>(llsc),
              structures::TreiberStack<NativeP, structures::LlscHead<Llsc>>::
                  partition(kMaxThreads, kNodesPerThread)) {}
  Llsc llsc;
  structures::TreiberStack<NativeP, structures::LlscHead<Llsc>> stack;
};

LlscStackBundle& llsc_stack() {
  static LlscStackBundle bundle;
  return bundle;
}

structures::HpTreiberStack<std::uint64_t>& hp_stack() {
  static structures::HpTreiberStack<std::uint64_t> stack(kMaxThreads);
  return stack;
}

class MutexStack {
 public:
  void push(int, std::uint64_t v) {
    std::lock_guard<std::mutex> lock(mu_);
    values_.push_back(v);
  }
  std::optional<std::uint64_t> pop(int) {
    std::lock_guard<std::mutex> lock(mu_);
    if (values_.empty()) return std::nullopt;
    const std::uint64_t v = values_.back();
    values_.pop_back();
    return v;
  }

 private:
  std::mutex mu_;
  std::vector<std::uint64_t> values_;
};

MutexStack& mutex_stack() {
  static MutexStack stack;
  return stack;
}

template <class R>
structures::MsQueue<NativeP, R>& ms_queue() {
  static structures::MsQueue<NativeP, R> queue(g_env, kMaxThreads,
                                               kNodesPerThread);
  return queue;
}

// ---- benchmarks: one push+pop pair per iteration ----

template <class R>
void BM_Stack_Reclaimed(benchmark::State& state) {
  auto& stack = reclaimed_stack<R>();
  const int pid = state.thread_index();
  for (auto _ : state) {
    stack.push(pid, 42);
    benchmark::DoNotOptimize(stack.pop(pid));
  }
}
BENCHMARK_TEMPLATE(BM_Stack_Reclaimed, reclaim::TaggedReclaimer<NativeP>)
    ->Name("BM_Stack_TaggedCas")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4);
BENCHMARK_TEMPLATE(BM_Stack_Reclaimed, reclaim::HazardPointerReclaimer<NativeP>)
    ->Name("BM_Stack_HazardReclaimer")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4);
BENCHMARK_TEMPLATE(BM_Stack_Reclaimed, reclaim::EpochBasedReclaimer<NativeP>)
    ->Name("BM_Stack_EpochReclaimer")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4);

void BM_Stack_LlscHead(benchmark::State& state) {
  auto& stack = llsc_stack().stack;
  const int pid = state.thread_index();
  for (auto _ : state) {
    stack.push(pid, 42);
    benchmark::DoNotOptimize(stack.pop(pid));
  }
}
BENCHMARK(BM_Stack_LlscHead)->Threads(1)->Threads(2)->Threads(4);

void BM_Stack_HazardPointers(benchmark::State& state) {
  auto& stack = hp_stack();
  const int pid = state.thread_index();
  std::uint64_t out = 0;
  for (auto _ : state) {
    stack.push(pid, 42);
    benchmark::DoNotOptimize(stack.pop(pid, out));
  }
}
BENCHMARK(BM_Stack_HazardPointers)->Threads(1)->Threads(2)->Threads(4);

void BM_Stack_Mutex(benchmark::State& state) {
  auto& stack = mutex_stack();
  const int pid = state.thread_index();
  for (auto _ : state) {
    stack.push(pid, 42);
    benchmark::DoNotOptimize(stack.pop(pid));
  }
}
BENCHMARK(BM_Stack_Mutex)->Threads(1)->Threads(2)->Threads(4);

template <class R>
void BM_Queue_MichaelScott(benchmark::State& state) {
  auto& queue = ms_queue<R>();
  const int pid = state.thread_index();
  for (auto _ : state) {
    queue.enqueue(pid, 42);
    benchmark::DoNotOptimize(queue.dequeue(pid));
  }
}
BENCHMARK_TEMPLATE(BM_Queue_MichaelScott, reclaim::TaggedReclaimer<NativeP>)
    ->Name("BM_Queue_MichaelScott")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4);
BENCHMARK_TEMPLATE(BM_Queue_MichaelScott, reclaim::HazardPointerReclaimer<NativeP>)
    ->Name("BM_Queue_MichaelScott_Hazard")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("E8",
                "Lock-free structures under the ABA-protection regimes "
                "(native throughput)");
  bench::note(
      "Stacks: bounded-tag CAS head under the tagged/hazard/epoch reclaimers\n"
      "(one orthogonal axis, src/reclaim/), vs LL/SC head, pointer-based\n"
      "hazard pointers, and a mutex; plus the Michael-Scott queue under the\n"
      "tagged and hazard reclaimers. Expected shape: all lock-free flavors\n"
      "are within a small factor of each other; the LL/SC head pays its\n"
      "extra link/validate steps; hazard pays publish+revalidate per\n"
      "dereference; epoch pays one announce per op and amortized advance\n"
      "scans; the mutex collapses under contention on multicore machines\n"
      "(on a 1-core host the gap narrows since there is no true\n"
      "parallelism). The leaky floor lives in E9, whose duration-based\n"
      "harness handles drain-limited cells.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
