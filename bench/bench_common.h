// Shared helpers for the benchmark/experiment binaries.
//
// Each binary reproduces one experiment row from docs/DESIGN.md (E1..E9):
// it prints the table/figure-equivalent the paper's claim corresponds to,
// and registers google-benchmark timings for the native-platform parts.
// E9 (bench_throughput_matrix) does not use google-benchmark; it emits the
// BENCH_native.json perf-trajectory file via bench_json.h instead.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "util/table.h"

namespace aba::bench {

inline void banner(const char* experiment_id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", experiment_id, title);
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

}  // namespace aba::bench
