// Shared helpers for the benchmark/experiment binaries.
//
// Each binary reproduces one experiment row from DESIGN.md (E1..E8): it
// prints the table/figure-equivalent the paper's claim corresponds to, and
// registers google-benchmark timings for the native-platform parts.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "util/table.h"

namespace aba::bench {

inline void banner(const char* experiment_id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", experiment_id, title);
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

}  // namespace aba::bench
