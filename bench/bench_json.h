// Minimal JSON reporter for the perf-trajectory files (BENCH_*.json).
//
// Successive PRs regress against these files: each bench binary that feeds
// the trajectory appends structured records (scenario, platform policy,
// thread count, measured throughput) and writes one self-contained JSON
// document. Deliberately dependency-free — a hand-rolled emitter is ~100
// lines and keeps the bench pipeline buildable even where google-benchmark
// is absent.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace aba::bench {

// One measured cell of a scenario sweep.
struct JsonRecord {
  std::string scenario;   // e.g. "treiber_stack"
  std::string platform;   // "counted" | "fast"
  std::string orderings;  // "seq_cst" | "acquire_release"
  std::string reclaimer;  // "tagged" | "leaky" | "hazard" | "hazard_cached"
                          //   | "epoch" | "none"
  std::string fence = "seq_cst";  // StoreLoad scheme: "seq_cst" (orderings
                                  // carry the edge) | "asymmetric"
                                  // (FastAsymmetric + util/asymmetric_fence.h)
  int threads = 0;
  int shards = 1;         // shard count (1 for the unsharded scenarios; the
                          // settled operating point for adaptive_* cells)
  std::uint64_t ops = 0;      // completed operations across all threads
  double seconds = 0.0;       // measured wall time
  double ops_per_sec = 0.0;   // ops / seconds
  // Per-op latency percentiles in nanoseconds (schema 2). Zero means the
  // cell did not record latency (throughput-only cells stay comparable
  // against schema-1 baselines); tools/bench_compare.py gates on p99 only
  // when BOTH sides carry a nonzero value.
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
};

// Version of the document layout this emitter writes. Schema 2 added the
// per-cell latency percentile fields; readers accept schema-1 documents
// (no percentile fields) read-only.
inline constexpr int kBenchSchemaVersion = 2;

// Escapes a string for embedding in a JSON string literal.
std::string escape_json(const std::string& s);

// Accumulates records plus free-form context (host facts, build flags) and
// serializes them as one JSON document:
//   { "bench": ..., "context": {...}, "results": [ {...}, ... ] }
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);

  void add_context(const std::string& key, const std::string& value);
  void add(JsonRecord record);

  const std::vector<JsonRecord>& records() const { return records_; }

  std::string to_json() const;
  // Returns false (and prints to stderr) if the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> context_;
  std::vector<JsonRecord> records_;
};

}  // namespace aba::bench
