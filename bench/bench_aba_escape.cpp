// E7 — Section 1 (tagging): ABA escapes under bounded tags, quantified.
//
// "While using bounded tags does not completely avoid the ABA problem
//  (because tag values may wrap around), it has been argued that an
//  erroneous algorithm execution due to an unexpected ABA becomes very
//  unlikely. From a theoretical perspective this is unsatisfactory."
//
// Reproductions:
//   a) exact escape threshold: with a k-bit tag, a reader that stalls
//      across exactly 2^k same-value writes observes an identical word and
//      misses every one of them; the measured minimal write count matches
//      2^k for every k;
//   b) random-interference escape probability: a reader samples, a writer
//      performs a random number of writes, the reader re-samples; the
//      measured miss rate tracks the analytic 1/2^k.
//   c) the unbounded-tag register never escapes (the paper's trivial
//      construction as the control).
#include "bench_common.h"
#include "core/aba_register_bounded_tag_naive.h"
#include "core/aba_register_unbounded_tag.h"
#include "sim/sim_world.h"
#include "sim/sim_platform.h"
#include "util/rng.h"

namespace {

using namespace aba;
using SimP = sim::SimPlatform;

// Minimal number of same-value writes between two DReads after which the
// second DRead reports flag = false (an escape). Returns 0 if no escape
// occurs up to `limit`.
std::uint64_t minimal_escape_writes(unsigned tag_bits, std::uint64_t limit) {
  for (std::uint64_t writes = 1; writes <= limit; ++writes) {
    sim::SimWorld world(2);
    world.set_trace_enabled(false);
    core::AbaRegisterBoundedTagNaive<SimP> reg(
        world, 2, {.value_bits = 1, .tag_bits = tag_bits, .initial_value = 0});
    world.invoke(1, [&] { reg.dread(1); });
    world.run_to_completion(1);
    for (std::uint64_t i = 0; i < writes; ++i) {
      world.invoke(0, [&] { reg.dwrite(0, 0); });
      world.run_to_completion(0);
    }
    bool flag = true;
    world.invoke(1, [&] { flag = reg.dread(1).second; });
    world.run_to_completion(1);
    if (!flag) return writes;  // Escape: the writes went unnoticed.
  }
  return 0;
}

// Empirical escape probability with a uniformly random number of writes in
// [1, 4 * 2^k] between the two reads.
double escape_rate(unsigned tag_bits, int trials, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  int escapes = 0;
  for (int trial = 0; trial < trials; ++trial) {
    sim::SimWorld world(2);
    world.set_trace_enabled(false);
    core::AbaRegisterBoundedTagNaive<SimP> reg(
        world, 2, {.value_bits = 1, .tag_bits = tag_bits, .initial_value = 0});
    world.invoke(1, [&] { reg.dread(1); });
    world.run_to_completion(1);
    const std::uint64_t writes = 1 + rng.below(4ULL << tag_bits);
    for (std::uint64_t i = 0; i < writes; ++i) {
      world.invoke(0, [&] { reg.dwrite(0, 0); });
      world.run_to_completion(0);
    }
    bool flag = true;
    world.invoke(1, [&] { flag = reg.dread(1).second; });
    world.run_to_completion(1);
    if (!flag) ++escapes;
  }
  return static_cast<double>(escapes) / trials;
}

void print_tables() {
  bench::banner("E7", "Bounded-tag ABA escapes (Section 1, tagging critique)");

  util::Table threshold({"tag bits", "2^k (analytic)", "minimal escape writes",
                         "match"});
  for (unsigned k : {1u, 2u, 3u, 4u, 5u, 6u, 8u}) {
    const std::uint64_t measured = minimal_escape_writes(k, 1ULL << (k + 1));
    threshold.add_row({util::Table::fmt(static_cast<std::uint64_t>(k)),
                       util::Table::fmt(std::uint64_t{1} << k),
                       util::Table::fmt(measured),
                       measured == (std::uint64_t{1} << k) ? "yes" : "NO"});
  }
  threshold.print();

  bench::note("");
  util::Table rates({"tag bits", "analytic escape rate (1/2^k)",
                     "measured escape rate", "trials"});
  const int trials = 400;
  for (unsigned k : {1u, 2u, 3u, 4u, 5u}) {
    const double measured = escape_rate(k, trials, 99 + k);
    char analytic[32];
    std::snprintf(analytic, sizeof analytic, "%.4f", 1.0 / (1ULL << k));
    rates.add_row({util::Table::fmt(static_cast<std::uint64_t>(k)), analytic,
                   util::Table::fmt(measured, 4),
                   util::Table::fmt(static_cast<std::uint64_t>(trials))});
  }
  rates.print();

  // Control: the unbounded-tag register across the worst threshold above.
  {
    sim::SimWorld world(2);
    world.set_trace_enabled(false);
    core::AbaRegisterUnboundedTag<SimP> reg(world, 2, {.value_bits = 1});
    world.invoke(1, [&] { reg.dread(1); });
    world.run_to_completion(1);
    for (int i = 0; i < 1024; ++i) {
      world.invoke(0, [&] { reg.dwrite(0, 0); });
      world.run_to_completion(0);
    }
    bool flag = false;
    world.invoke(1, [&] { flag = reg.dread(1).second; });
    world.run_to_completion(1);
    bench::note(std::string("\ncontrol: unbounded-tag register after 1024 "
                            "same-value writes -> flag = ") +
                (flag ? "true (never escapes)" : "FALSE (escape?!)"));
  }
  bench::note(
      "Claim shape: escapes happen at exactly 2^k interposed writes and at\n"
      "rate ~1/2^k under random interference — likely-correct is not\n"
      "correct, which is why the paper asks for worst-case guarantees.");
}

void BM_EscapeSearch(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimal_escape_writes(k, 1ULL << (k + 1)));
  }
}
BENCHMARK(BM_EscapeSearch)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
