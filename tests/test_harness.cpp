// Tests for the verification harness itself: schedule drivers, the
// exhaustive model checker, and the invoker adapters. The harness judges
// the paper's algorithms, so its own behaviour is pinned here — including
// its ability to DETECT planted bugs (a checker that can't fail is not
// evidence).
#include <gtest/gtest.h>

#include "core/aba_register_bounded.h"
#include "core/aba_register_bounded_tag_naive.h"
#include "harness/adapters.h"
#include "harness/harness.h"
#include "sim/sim_platform.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"

namespace aba::harness {
namespace {

using SimP = sim::SimPlatform;
using spec::Method;

// A deliberately broken ABA-detecting register: never sets the flag.
struct NeverFlags {
  struct Options {};
  NeverFlags(sim::SimWorld& world, int, Options = {})
      : x(world, "x", 0, sim::BoundSpec::unbounded()) {}
  void dwrite(int, std::uint64_t v) { x.write(v); }
  std::pair<std::uint64_t, bool> dread(int) { return {x.read(), false}; }
  SimP::Register x;
};

// A correct single register wrapped as read/write (sanity fixture).
struct PlainRegister {
  struct Options {};
  PlainRegister(sim::SimWorld& world, int, Options = {})
      : x(world, "x", 0, sim::BoundSpec::unbounded()) {}
  void write(int, std::uint64_t v) { x.write(v); }
  std::uint64_t read(int) { return x.read(); }
  SimP::Register x;
};

class PlainRegisterInvoker : public Invoker {
 public:
  PlainRegisterInvoker(sim::SimWorld& world, spec::History& history,
                       std::unique_ptr<PlainRegister> impl)
      : world_(world), history_(history), impl_(std::move(impl)) {}

  void invoke(const WorkloadOp& op) override {
    const auto idx =
        history_.begin_op(op.pid, op.method, op.arg, world_.next_event_time());
    if (op.method == Method::kWrite) {
      world_.invoke(op.pid, [this, op, idx] {
        impl_->write(op.pid, op.arg);
        history_.complete(idx, 0, world_.next_event_time());
      });
    } else {
      world_.invoke(op.pid, [this, op, idx] {
        history_.complete(idx, impl_->read(op.pid), world_.next_event_time());
      });
    }
  }

 private:
  sim::SimWorld& world_;
  spec::History& history_;
  std::unique_ptr<PlainRegister> impl_;
};

FixtureFactory plain_register_factory(int n) {
  return [n](sim::SimWorld& world,
             spec::History& history) -> std::unique_ptr<Invoker> {
    return std::make_unique<PlainRegisterInvoker>(
        world, history, std::make_unique<PlainRegister>(world, n));
  };
}

HistoryCheck register_check() {
  return [](const std::vector<spec::Op>& ops) {
    return static_cast<bool>(spec::check_linearizable<spec::RegisterSpec>(
        ops, spec::RegisterSpec::initial(0)));
  };
}

FixtureFactory never_flags_factory(int n) {
  return [n](sim::SimWorld& world,
             spec::History& history) -> std::unique_ptr<Invoker> {
    return std::make_unique<AbaRegInvoker<NeverFlags>>(
        world, history, std::make_unique<NeverFlags>(world, n));
  };
}

HistoryCheck aba_check(int n) {
  return [n](const std::vector<spec::Op>& ops) {
    return static_cast<bool>(spec::check_linearizable<spec::AbaRegisterSpec>(
        ops, spec::AbaRegisterSpec::initial(n, 0)));
  };
}

// ---------------------------------------------------------------- drivers

TEST(RandomSchedule, IsDeterministicPerSeed) {
  const std::vector<WorkloadOp> workload = {
      {0, Method::kWrite, 1}, {0, Method::kWrite, 2},
      {1, Method::kRead, 0},  {1, Method::kRead, 0},
  };
  const auto a = run_random_schedule(2, plain_register_factory(2), workload, 7);
  const auto b = run_random_schedule(2, plain_register_factory(2), workload, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ret, b[i].ret);
    EXPECT_EQ(a[i].invoke_ts, b[i].invoke_ts);
    EXPECT_EQ(a[i].response_ts, b[i].response_ts);
  }
}

TEST(RandomSchedule, DifferentSeedsProduceDifferentInterleavings) {
  const std::vector<WorkloadOp> workload = {
      {0, Method::kWrite, 1}, {0, Method::kWrite, 2}, {0, Method::kWrite, 3},
      {1, Method::kRead, 0},  {1, Method::kRead, 0},  {1, Method::kRead, 0},
  };
  bool any_difference = false;
  const auto base = run_random_schedule(2, plain_register_factory(2), workload, 0);
  for (std::uint64_t seed = 1; seed < 20 && !any_difference; ++seed) {
    const auto other =
        run_random_schedule(2, plain_register_factory(2), workload, seed);
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (base[i].ret != other[i].ret ||
          base[i].invoke_ts != other[i].invoke_ts) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomSchedule, HistoriesAreComplete) {
  const auto ops = run_random_schedule(
      2, plain_register_factory(2),
      {{0, Method::kWrite, 5}, {1, Method::kRead, 0}}, 3);
  ASSERT_EQ(ops.size(), 2u);
  for (const auto& op : ops) EXPECT_LT(op.invoke_ts, op.response_ts);
}

TEST(RoundRobin, QuantumOneInterleavesFinely) {
  const std::vector<WorkloadOp> workload = {
      {0, Method::kWrite, 1},
      {1, Method::kRead, 0},
  };
  const auto ops = run_round_robin(2, plain_register_factory(2), workload, 1);
  EXPECT_TRUE(register_check()(ops));
}

TEST(RoundRobin, LargeQuantumRunsOpsSolo) {
  const std::vector<WorkloadOp> workload = {
      {0, Method::kWrite, 9},
      {1, Method::kRead, 0},
  };
  const auto ops = run_round_robin(2, plain_register_factory(2), workload, 100);
  ASSERT_EQ(ops.size(), 2u);
  // Solo execution: the read (runs after the write completes) must see 9.
  EXPECT_EQ(ops[1].ret, 9u);
}

// ------------------------------------------------------------ model check

TEST(ModelCheck, CountsInterleavingsOfIndependentSteps) {
  // Two processes, one single-step op each (fused invoke+step): exactly 2
  // interleavings.
  const std::vector<WorkloadOp> workload = {
      {0, Method::kWrite, 1},
      {1, Method::kWrite, 2},
  };
  const auto result = model_check(2, plain_register_factory(2), workload,
                                  register_check());
  EXPECT_EQ(result.executions, 2u);
  EXPECT_EQ(result.violations, 0u);
}

TEST(ModelCheck, FindsPlantedViolation) {
  // NeverFlags misses any write completing between two reads; the checker
  // must find interleavings where that is illegal.
  const std::vector<WorkloadOp> workload = {
      {0, Method::kDWrite, 1},
      {1, Method::kDRead, 0},
      {1, Method::kDRead, 0},
  };
  const auto result =
      model_check(2, never_flags_factory(2), workload, aba_check(2));
  EXPECT_GT(result.violations, 0u);
  EXPECT_FALSE(result.first_violation.empty());
}

TEST(ModelCheck, BudgetStopsEarly) {
  const std::vector<WorkloadOp> workload = {
      {0, Method::kDWrite, 1}, {0, Method::kDWrite, 2},
      {1, Method::kDRead, 0},  {1, Method::kDRead, 0},
      {2, Method::kDRead, 0},
  };
  using Fig4 = core::AbaRegisterBounded<SimP>;
  auto factory = [](sim::SimWorld& world,
                    spec::History& history) -> std::unique_ptr<Invoker> {
    return std::make_unique<AbaRegInvoker<Fig4>>(
        world, history, std::make_unique<Fig4>(world, 3));
  };
  const auto result =
      model_check(3, factory, workload, aba_check(3), /*max_executions=*/50);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.executions, 50u);
}

TEST(ModelCheck, NaiveTagBreaksUnderExhaustiveSearchWithTinyTags) {
  // With a 1-bit tag and two same-value writes, some interleaving wraps the
  // tag between a reader's two reads — exhaustive search must find it.
  using Naive = core::AbaRegisterBoundedTagNaive<SimP>;
  auto factory = [](sim::SimWorld& world,
                    spec::History& history) -> std::unique_ptr<Invoker> {
    return std::make_unique<AbaRegInvoker<Naive>>(
        world, history,
        std::make_unique<Naive>(
            world, 2,
            Naive::Options{.value_bits = 1, .tag_bits = 1, .initial_value = 0}));
  };
  const std::vector<WorkloadOp> workload = {
      {0, Method::kDWrite, 0}, {0, Method::kDWrite, 0},
      {1, Method::kDRead, 0},  {1, Method::kDRead, 0},
  };
  const auto result = model_check(2, factory, workload, aba_check(2));
  EXPECT_GT(result.violations, 0u)
      << "exhaustive search must expose the 1-bit tag wraparound";
}

TEST(ModelCheck, ExhaustiveMatchesRandomOnCorrectImpl) {
  using Fig4 = core::AbaRegisterBounded<SimP>;
  auto factory = [](sim::SimWorld& world,
                    spec::History& history) -> std::unique_ptr<Invoker> {
    return std::make_unique<AbaRegInvoker<Fig4>>(
        world, history, std::make_unique<Fig4>(world, 2));
  };
  const std::vector<WorkloadOp> workload = {
      {0, Method::kDWrite, 1},
      {1, Method::kDRead, 0},
      {1, Method::kDRead, 0},
  };
  const auto result = model_check(2, factory, workload, aba_check(2));
  EXPECT_EQ(result.violations, 0u);
  EXPECT_GT(result.executions, 10u);
}

}  // namespace
}  // namespace aba::harness
