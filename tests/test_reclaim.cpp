// Tests for the memory-reclamation subsystem (src/reclaim/):
//
//   * unit semantics of each Reclaimer policy (tagged / leaky / hazard /
//     epoch) over the native platform;
//   * the reclaimer-equivalence suite — a scripted stack/queue workload on
//     the simulator must produce *identical* result sequences under all
//     four reclaimers (reclamation changes when nodes recycle, never what
//     the abstract object returns);
//   * random-schedule linearizability sweeps across (head policy ×
//     reclaimer) on the simulator — the ABA answers as one orthogonal axis;
//   * the deterministic Treiber ABA schedule that corrupts a raw-CAS head
//     under immediate reuse (test_structures.cpp) is re-run against the
//     deferred-reuse reclaimers, which survive it: reclamation as the
//     paper's third ABA answer, made into a regression test;
//   * the hazard-vs-epoch retire-bound stress: with one reader stalled,
//     hazard pointers keep unreclaimed garbage bounded by the scan
//     threshold while the epoch scheme's limbo grows without bound;
//   * the epoch worst-step schedules (EpochSchedule.*): a parked announcer
//     freezes reclamation exactly until two advances past its resume, and
//     allocate refuses to recycle inside the 2-epoch grace period — the
//     scripted seed bounds the schedule-search engine must beat
//     (tests/test_schedule_search.cpp);
//   * native (std::atomic) stress for every reclaimer;
//   * the cached-guard hazard mode (hazard_cached): step-counted unit
//     contracts (hit = zero shared steps, end_op keeps the publish, detach
//     releases), deterministic worst-step schedules (parked reader across a
//     retire storm and across a structure switch), Fast ≡ Counted ≡
//     FastAsymmetric trace equivalence, and FastAsymmetric fence stress;
//   * the deferred-announce epoch mode (epoch_deferred): the step/store/RMW
//     ledger (hit = one shared read, retire = zero shared steps, advance
//     CAS and heavy fence amortized behind the batch), the scripted
//     announce-validate race (an advancer may pass a freshly-written
//     announcement at most once), batch-buffer unit semantics, detach as
//     the release point, and the same trace-equivalence + fence stress the
//     cached-guard mode gets;
//   * retire_batch on the whole roster: observationally equivalent to the
//     retire loop, amortized to one threshold check / stamp read / batch
//     flush per call;
//   * the migrated pointer-based HazardDomain / HpTreiberStack.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "harness/adapters.h"
#include "harness/harness.h"
#include "native/native_platform.h"
#include "reclaim/epoch.h"
#include "reclaim/hazard_domain.h"
#include "reclaim/hazard_pointer.h"
#include "reclaim/leaky.h"
#include "reclaim/reclaimer.h"
#include "reclaim/tagged.h"
#include "shm/lease_hosts.h"
#include "sim/sim_platform.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"
#include "structures/hp_stack.h"
#include "structures/ms_queue.h"
#include "structures/treiber_stack.h"
#include "util/asymmetric_fence.h"
#include "util/rng.h"

namespace aba::reclaim {
namespace {

using SimP = sim::SimPlatform;
using NativeP = native::NativePlatform<native::Counted>;
using harness::WorkloadOp;
using spec::Method;

// The concept is the contract every policy (and both platforms) satisfies.
static_assert(ReclaimerFor<TaggedReclaimer<SimP>, SimP>);
static_assert(ReclaimerFor<LeakyReclaimer<SimP>, SimP>);
static_assert(ReclaimerFor<HazardPointerReclaimer<SimP>, SimP>);
static_assert(ReclaimerFor<CachedHazardPointerReclaimer<SimP>, SimP>);
static_assert(ReclaimerFor<EpochBasedReclaimer<SimP>, SimP>);
static_assert(ReclaimerFor<TaggedReclaimer<NativeP>, NativeP>);
static_assert(ReclaimerFor<LeakyReclaimer<NativeP>, NativeP>);
static_assert(ReclaimerFor<HazardPointerReclaimer<NativeP>, NativeP>);
static_assert(ReclaimerFor<CachedHazardPointerReclaimer<NativeP>, NativeP>);
static_assert(ReclaimerFor<EpochBasedReclaimer<NativeP>, NativeP>);
static_assert(ReclaimerFor<DeferredEpochReclaimer<SimP>, SimP>);
static_assert(ReclaimerFor<DeferredEpochReclaimer<NativeP>, NativeP>);
// The deferred variant is the one epoch reclaimer the asymmetric-fence
// policy admits (the eager instantiation's static_assert rejects it).
using AsymP = native::NativePlatform<native::FastAsymmetric>;
static_assert(ReclaimerFor<DeferredEpochReclaimer<AsymP>, AsymP>);

FreeLists one_process_pool(int nodes) {
  FreeLists free(1);
  for (int i = 0; i < nodes; ++i) free[0].push_back(i);
  return free;
}

// --------------------------------------------------- unit: tagged / leaky

TEST(TaggedReclaimer, ImmediateFifoReuse) {
  typename NativeP::Env env;
  TaggedReclaimer<NativeP> r(env, 1, one_process_pool(2));
  EXPECT_EQ(r.pool_size(), 2u);
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(0));
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(1));
  EXPECT_EQ(r.allocate(0), std::nullopt);
  r.retire(0, 1);
  r.retire(0, 0);
  // FIFO: the first retiree is the next allocation.
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(1));
  EXPECT_EQ(r.unreclaimed(0), 0u);
}

TEST(LeakyReclaimer, RetiredNodesNeverReturn) {
  typename NativeP::Env env;
  LeakyReclaimer<NativeP> r(env, 1, one_process_pool(2));
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(0));
  r.retire(0, 0);
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(1));
  r.retire(0, 1);
  EXPECT_EQ(r.allocate(0), std::nullopt) << "a leaky pool must drain";
  EXPECT_EQ(r.unreclaimed(0), 2u);
}

// --------------------------------------------------------- unit: hazard

TEST(HazardPointerReclaimer, GuardPinsAcrossScan) {
  typename NativeP::Env env;
  FreeLists free(2);
  free[0] = {0, 1};
  HazardPointerReclaimer<NativeP> r(env, 2, free);
  // Process 1 guards node 0; process 0 retires it.
  r.guard(1, 0, 0);
  r.retire(0, 0);
  r.scan(0);
  EXPECT_EQ(r.unreclaimed(0), 1u) << "guarded node must survive a scan";
  r.end_op(1);
  r.scan(0);
  EXPECT_EQ(r.unreclaimed(0), 0u) << "unguarded node must be reclaimed";
}

TEST(HazardPointerReclaimer, AllocateScansUnderPoolPressure) {
  typename NativeP::Env env;
  HazardPointerReclaimer<NativeP> r(env, 1, one_process_pool(1));
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(0));
  r.retire(0, 0);
  // Free list is empty but node 0 is unguarded: allocate must reclaim it.
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(0));
}

TEST(HazardPointerReclaimer, ThresholdTriggersScan) {
  typename NativeP::Env env;
  HazardPointerReclaimer<NativeP> r(env, 1, one_process_pool(64));
  const std::size_t threshold = r.scan_threshold();
  for (std::size_t i = 0; i < threshold; ++i) {
    auto idx = r.allocate(0);
    ASSERT_TRUE(idx.has_value());
    r.retire(0, *idx);
  }
  EXPECT_LT(r.unreclaimed(0), threshold)
      << "hitting the threshold must trigger a reclaiming scan";
}

// -------------------------------------------------- unit: cached guards
//
// The CachedGuards mode's whole point is which shared steps do NOT happen:
// a cache hit must skip the publish, end_op must clear nothing. The Counted
// native platform's step counter observes exactly the shared writes, so
// these assertions pin the step contract the bench win rests on.

TEST(CachedHazardReclaimer, GuardCacheHitSkipsThePublish) {
  typename NativeP::Env env;
  CachedHazardPointerReclaimer<NativeP> r(env, 1, one_process_pool(2));
  const std::uint64_t before = native::step_counter();
  r.guard(0, 0, 0);
  EXPECT_EQ(native::step_counter() - before, 1u) << "cold publish is a write";
  const std::uint64_t mid = native::step_counter();
  r.guard(0, 0, 0);  // Same index, same slot: the cache hit.
  r.end_op(0);       // Cached mode: guards stay published.
  EXPECT_EQ(native::step_counter() - mid, 0u)
      << "a cached hit and a cached end_op must cost zero shared steps";
  r.guard(0, 0, 1);  // Protected index changed: republish.
  EXPECT_EQ(native::step_counter() - mid, 1u);
  const std::uint64_t before_detach = native::step_counter();
  r.detach(0);  // One clear for the one published slot.
  EXPECT_EQ(native::step_counter() - before_detach, 1u);
}

TEST(CachedHazardReclaimer, EndOpKeepsTheGuardPinnedUntilDetach) {
  typename NativeP::Env env;
  FreeLists free(2);
  free[0] = {0, 1};
  CachedHazardPointerReclaimer<NativeP> r(env, 2, free);
  r.guard(1, 0, 0);
  r.end_op(1);  // Eager mode would clear here; cached keeps publishing.
  r.retire(0, 0);
  r.scan(0);
  EXPECT_EQ(r.unreclaimed(0), 1u)
      << "a guard cached across end_op must still pin";
  r.detach(1);
  r.scan(0);
  EXPECT_EQ(r.unreclaimed(0), 0u) << "detach is the release point";
}

TEST(CachedHazardReclaimer, AllocateDropsOwnCacheUnderPoolPressure) {
  typename NativeP::Env env;
  CachedHazardPointerReclaimer<NativeP> r(env, 1, one_process_pool(1));
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(0));
  r.guard(0, 0, 0);
  r.end_op(0);
  r.retire(0, 0);
  // The process's own cached guard pins the pool's only node; allocate runs
  // outside any protected region, so it must self-heal: detach, rescan.
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(0));
}

// ---------------------------------------------------------- unit: epoch

TEST(EpochBasedReclaimer, TwoAdvancesMatureALimboNode) {
  typename NativeP::Env env;
  EpochBasedReclaimer<NativeP> r(env, 1, one_process_pool(1));
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(0));
  r.begin_op(0);
  r.end_op(0);
  r.retire(0, 0);
  EXPECT_EQ(r.unreclaimed(0), 1u);
  // Everyone quiescent: allocate's two advance+flush rounds mature it.
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(0));
  EXPECT_EQ(r.unreclaimed(0), 0u);
}

TEST(EpochBasedReclaimer, ActiveReaderBlocksReclamation) {
  typename NativeP::Env env;
  FreeLists free(2);
  free[0] = {0, 1};
  EpochBasedReclaimer<NativeP> r(env, 2, free);
  r.begin_op(1);  // Reader active: epoch advance is vetoed past +1.
  ASSERT_EQ(r.allocate(0), std::optional<std::uint64_t>(0));
  r.begin_op(0);
  r.end_op(0);
  r.retire(0, 0);
  ASSERT_EQ(r.allocate(0), std::optional<std::uint64_t>(1));
  r.retire(0, 1);
  EXPECT_EQ(r.allocate(0), std::nullopt)
      << "a stalled reader must block epoch reclamation";
  r.end_op(1);  // Reader leaves: the backlog matures.
  EXPECT_TRUE(r.allocate(0).has_value());
}

// -------------------------------------------------- unit: deferred epoch
//
// The announcement-caching mode's contract, mirroring the cached-guard
// hazard unit tests: what does NOT happen (end_op writes nothing, a retire
// takes no shared step), where the cost moved (the batch flush, the
// advance), and where the release point is (detach).

TEST(DeferredEpochReclaimerUnit, RetireParksInTheBatchBufferUntilFull) {
  using R = DeferredEpochReclaimer<NativeP>;
  typename NativeP::Env env;
  R r(env, 1, one_process_pool(static_cast<int>(R::kRetireBatch) + 2));
  std::vector<std::uint64_t> nodes;
  for (std::size_t i = 0; i < R::kRetireBatch; ++i) {
    const auto idx = r.allocate(0);
    ASSERT_TRUE(idx.has_value());
    r.commit(0);
    nodes.push_back(*idx);
  }
  for (std::size_t i = 0; i + 1 < R::kRetireBatch; ++i) r.retire(0, nodes[i]);
  EXPECT_EQ(r.pending_count(0), R::kRetireBatch - 1)
      << "a deferred retire must land in the batch buffer, not limbo";
  EXPECT_EQ(r.unreclaimed(0), R::kRetireBatch - 1)
      << "buffered retirees still count as unreclaimed";
  r.retire(0, nodes.back());  // The ring fills: one-shot flush.
  EXPECT_EQ(r.pending_count(0), 0u)
      << "a full batch must flush to limbo in one shot";
  EXPECT_EQ(r.unreclaimed(0), R::kRetireBatch);
}

TEST(DeferredEpochReclaimerUnit, ParkedAnnouncementPinsEpochUntilDetach) {
  using R = DeferredEpochReclaimer<NativeP>;
  typename NativeP::Env env;
  FreeLists free(2);
  free[0] = {0, 1};
  R r(env, 2, free);
  r.begin_op(1);
  r.end_op(1);  // Deferred: p1's announcement stays published.
  ASSERT_EQ(r.allocate(0), std::optional<std::uint64_t>(0));
  r.commit(0);
  ASSERT_EQ(r.allocate(0), std::optional<std::uint64_t>(1));
  r.commit(0);
  r.retire(0, 0);
  r.retire(0, 1);
  EXPECT_EQ(r.allocate(0), std::nullopt)
      << "an IDLE process's parked announcement must pin the epoch";
  r.detach(1);
  EXPECT_TRUE(r.allocate(0).has_value()) << "detach is the release point";
}

TEST(DeferredEpochReclaimerUnit, AllocatePressureFlushesOwnPendingBatch) {
  using R = DeferredEpochReclaimer<NativeP>;
  typename NativeP::Env env;
  R r(env, 1, one_process_pool(2));
  ASSERT_EQ(r.allocate(0), std::optional<std::uint64_t>(0));
  r.commit(0);
  ASSERT_EQ(r.allocate(0), std::optional<std::uint64_t>(1));
  r.commit(0);
  r.retire(0, 0);
  r.retire(0, 1);
  ASSERT_EQ(r.pending_count(0), 2u);
  // The pool is dry and both nodes sit unstamped in the pending ring;
  // allocate must flush the batch, self-refresh its own announcement, and
  // run the two advance rounds that mature a fresh stamp.
  EXPECT_TRUE(r.allocate(0).has_value())
      << "allocate under pressure must flush the pending batch first";
  EXPECT_EQ(r.pending_count(0), 0u);
}

// ------------------------- deferred epoch: the step/store/RMW ledger
//
// The Counted native platform's three thread-local counters (steps, stores,
// RMWs) observe the exact shared-memory shape. The protocol is identical on
// every policy — only orderings and fences change — so the shape measured
// here is the shape FastAsymmetric runs with relaxed stores.

TEST(DeferredEpochLedger, SteadyStateOpIsOneReadNoStoreNoRmw) {
  using R = DeferredEpochReclaimer<NativeP>;
  typename NativeP::Env env;
  R r(env, 1, one_process_pool(16));
  // Cold region: the announce miss pays read + announce store + validate.
  const std::uint64_t s0 = native::step_counter();
  const std::uint64_t w0 = native::store_counter();
  r.begin_op(0);
  EXPECT_EQ(native::step_counter() - s0, 3u) << "miss: read, announce, validate";
  EXPECT_EQ(native::store_counter() - w0, 1u) << "miss: exactly one store";
  r.end_op(0);
  EXPECT_EQ(native::step_counter() - s0, 3u) << "deferred end_op writes nothing";
  // Steady state: the cache hit is ONE shared read — no store, no RMW.
  const std::uint64_t s1 = native::step_counter();
  const std::uint64_t w1 = native::store_counter();
  const std::uint64_t m1 = native::rmw_counter();
  r.begin_op(0);
  r.end_op(0);
  EXPECT_EQ(native::step_counter() - s1, 1u) << "hit: one epoch read";
  EXPECT_EQ(native::store_counter() - w1, 0u) << "hit: zero shared stores";
  EXPECT_EQ(native::rmw_counter() - m1, 0u) << "op path: zero shared RMW";
  // A non-boundary retire is pure thread-private work.
  const auto idx = r.allocate(0);
  ASSERT_TRUE(idx.has_value());
  r.commit(0);
  const std::uint64_t s2 = native::step_counter();
  r.retire(0, *idx);
  EXPECT_EQ(native::step_counter() - s2, 0u)
      << "a buffered retire must take zero shared steps";
}

TEST(DeferredEpochLedger, AdvanceRmwAndStoresAmortizedAcrossTheBatch) {
  using R = DeferredEpochReclaimer<NativeP>;
  typename NativeP::Env env;
  constexpr std::uint64_t kOps = 16 * R::kRetireBatch;
  R r(env, 1, one_process_pool(static_cast<int>(kOps) + 2));
  r.begin_op(0);
  r.end_op(0);
  const std::uint64_t s = native::step_counter();
  const std::uint64_t w = native::store_counter();
  const std::uint64_t m = native::rmw_counter();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const auto idx = r.allocate(0);
    ASSERT_TRUE(idx.has_value());
    r.commit(0);
    r.begin_op(0);
    r.end_op(0);
    r.retire(0, *idx);
  }
  const std::uint64_t batches = kOps / R::kRetireBatch;
  EXPECT_LE(native::rmw_counter() - m, batches + 1)
      << "at most one advance CAS per full batch — 0 RMW per op, amortized";
  // Stores: one re-announce per advance that actually moved the epoch (the
  // next begin_op misses once). Everything else is the hit path.
  EXPECT_LE(native::store_counter() - w, batches + 1)
      << "at most one announce store per batch — well under 1 per op";
  EXPECT_LE(native::step_counter() - s, 3 * kOps)
      << "the whole pipeline stays within the eager protocol's step budget";
}

TEST(DeferredEpochLedger, HeavyFencesOnlyOnTheAdvanceSide) {
  using R = DeferredEpochReclaimer<AsymP>;
  typename AsymP::Env env;
  constexpr std::uint64_t kOps = 2 * R::kRetireBatch;
  R r(env, 1, one_process_pool(static_cast<int>(kOps) + 2));
  const std::uint64_t before = util::heavy_fence_count();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const auto idx = r.allocate(0);
    ASSERT_TRUE(idx.has_value());
    r.commit(0);
    r.begin_op(0);
    r.end_op(0);
    r.retire(0, *idx);
  }
  const std::uint64_t heavies = util::heavy_fence_count() - before;
  EXPECT_GE(heavies, 1u) << "the batch flush must run the heavy advance";
  EXPECT_LE(heavies, kOps / R::kRetireBatch + 1)
      << "one heavy fence per batch: the light announce never pays it";
  r.detach(0);
}

// ----------------------------------------- equivalence across reclaimers
//
// Reclamation decides when a node index recycles — it must never change
// the abstract object's behaviour. One scripted workload, each op run to
// completion on the simulator, must yield identical (method, arg, ret)
// sequences under all four reclaimers.

using Triple = std::tuple<Method, std::uint64_t, std::uint64_t>;

std::vector<Triple> triples(const std::vector<spec::Op>& ops) {
  std::vector<Triple> out;
  out.reserve(ops.size());
  for (const auto& op : ops) out.emplace_back(op.method, op.arg, op.ret);
  return out;
}

const std::vector<WorkloadOp>& stack_script() {
  static const std::vector<WorkloadOp> script = {
      {0, Method::kPush, 10}, {1, Method::kPush, 20}, {0, Method::kPush, 30},
      {1, Method::kPop, 0},   {0, Method::kPop, 0},   {1, Method::kPush, 40},
      {0, Method::kPush, 50}, {1, Method::kPop, 0},   {0, Method::kPop, 0},
      {1, Method::kPop, 0},   {0, Method::kPop, 0},   {1, Method::kPop, 0},
      {0, Method::kPush, 60}, {1, Method::kPush, 70}, {0, Method::kPop, 0},
      {1, Method::kPop, 0},
  };
  return script;
}

template <class R>
std::vector<Triple> run_stack_script() {
  using Stack = structures::TreiberStack<SimP, structures::TaggedCasHead<SimP>, R>;
  sim::SimWorld world(2);
  spec::History history;
  // Pool ≥ pushes per process so even the leaky reclaimer never drains.
  auto invoker = std::make_unique<harness::StackInvoker<Stack>>(
      world, history,
      std::make_unique<Stack>(
          world, 2, std::make_unique<structures::TaggedCasHead<SimP>>(world, 2),
          Stack::partition(2, 8)));
  for (const auto& op : stack_script()) {
    invoker->invoke(op);
    world.run_to_completion(op.pid);
  }
  return triples(history.ops());
}

TEST(ReclaimerEquivalence, StackHistoriesIdenticalAcrossReclaimers) {
  const auto reference = run_stack_script<TaggedReclaimer<SimP>>();
  EXPECT_EQ(run_stack_script<LeakyReclaimer<SimP>>(), reference);
  EXPECT_EQ(run_stack_script<HazardPointerReclaimer<SimP>>(), reference);
  EXPECT_EQ(run_stack_script<CachedHazardPointerReclaimer<SimP>>(), reference);
  EXPECT_EQ(run_stack_script<EpochBasedReclaimer<SimP>>(), reference);
  EXPECT_EQ(run_stack_script<DeferredEpochReclaimer<SimP>>(), reference);
}

template <class R>
std::vector<Triple> run_queue_script() {
  using Queue = structures::MsQueue<SimP, R>;
  sim::SimWorld world(2);
  spec::History history;
  auto invoker = std::make_unique<harness::QueueInvoker<Queue>>(
      world, history, std::make_unique<Queue>(world, 2, 8));
  static const std::vector<WorkloadOp> script = {
      {0, Method::kEnq, 10}, {1, Method::kEnq, 20}, {0, Method::kDeq, 0},
      {1, Method::kEnq, 30}, {0, Method::kEnq, 40}, {1, Method::kDeq, 0},
      {0, Method::kDeq, 0},  {1, Method::kDeq, 0},  {0, Method::kDeq, 0},
      {1, Method::kEnq, 50}, {0, Method::kEnq, 60}, {1, Method::kDeq, 0},
      {0, Method::kDeq, 0},
  };
  for (const auto& op : script) {
    invoker->invoke(op);
    world.run_to_completion(op.pid);
  }
  return triples(history.ops());
}

TEST(ReclaimerEquivalence, QueueHistoriesIdenticalAcrossReclaimers) {
  const auto reference = run_queue_script<TaggedReclaimer<SimP>>();
  EXPECT_EQ(run_queue_script<LeakyReclaimer<SimP>>(), reference);
  EXPECT_EQ(run_queue_script<HazardPointerReclaimer<SimP>>(), reference);
  EXPECT_EQ(run_queue_script<CachedHazardPointerReclaimer<SimP>>(), reference);
  EXPECT_EQ(run_queue_script<EpochBasedReclaimer<SimP>>(), reference);
  EXPECT_EQ(run_queue_script<DeferredEpochReclaimer<SimP>>(), reference);
}

// ------------------------------- linearizability: (head × reclaimer) sweep

std::vector<WorkloadOp> random_stack_workload(int n, int ops, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<WorkloadOp> workload;
  for (int pid = 0; pid < n; ++pid) {
    for (int i = 0; i < ops; ++i) {
      if (rng.chance(1, 2)) {
        workload.push_back({pid, Method::kPush, rng.below(100)});
      } else {
        workload.push_back({pid, Method::kPop, 0});
      }
    }
  }
  return workload;
}

template <class Stack>
void expect_stack_linearizable_sweep() {
  for (int n : {2, 3}) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      harness::ScheduleLog log;
      const auto ops = harness::run_random_schedule(
          n,
          [n](sim::SimWorld& world,
              spec::History& history) -> std::unique_ptr<harness::Invoker> {
            return std::make_unique<harness::StackInvoker<Stack>>(
                world, history,
                std::make_unique<Stack>(
                    world, n,
                    std::make_unique<typename Stack::HeadPolicy>(world, n),
                    Stack::partition(n, 6)));
          },
          random_stack_workload(n, 6, seed), seed * 733 + 11, &log);
      const auto result = spec::check_linearizable<spec::StackSpec>(
          ops, spec::StackSpec::initial());
      EXPECT_TRUE(result.linearizable)
          << "n=" << n << " seed=" << seed << "\n"
          << log.to_string() << "\n"
          << spec::explain(ops, result);
    }
  }
}

// A head-policy-aware wrapper so the sweep helper can construct the head.
template <class Head, class R>
struct SweepStack : structures::TreiberStack<SimP, Head, R> {
  using HeadPolicy = Head;
  using structures::TreiberStack<SimP, Head, R>::TreiberStack;
};

using TaggedHead = structures::TaggedCasHead<SimP>;
using RawHead = structures::RawCasHead<SimP>;

TEST(ReclaimerSweep, TaggedHeadTaggedReclaimer) {
  expect_stack_linearizable_sweep<SweepStack<TaggedHead, TaggedReclaimer<SimP>>>();
}
TEST(ReclaimerSweep, TaggedHeadLeakyReclaimer) {
  expect_stack_linearizable_sweep<SweepStack<TaggedHead, LeakyReclaimer<SimP>>>();
}
TEST(ReclaimerSweep, TaggedHeadHazardReclaimer) {
  expect_stack_linearizable_sweep<
      SweepStack<TaggedHead, HazardPointerReclaimer<SimP>>>();
}
TEST(ReclaimerSweep, TaggedHeadEpochReclaimer) {
  expect_stack_linearizable_sweep<
      SweepStack<TaggedHead, EpochBasedReclaimer<SimP>>>();
}

TEST(ReclaimerSweep, TaggedHeadCachedHazardReclaimer) {
  expect_stack_linearizable_sweep<
      SweepStack<TaggedHead, CachedHazardPointerReclaimer<SimP>>>();
}
TEST(ReclaimerSweep, TaggedHeadDeferredEpochReclaimer) {
  expect_stack_linearizable_sweep<
      SweepStack<TaggedHead, DeferredEpochReclaimer<SimP>>>();
}

// With deferred reuse (or no reuse), even the raw CAS head is safe: the
// reclamation policy *is* the ABA answer.
TEST(ReclaimerSweep, RawHeadLeakyReclaimer) {
  expect_stack_linearizable_sweep<SweepStack<RawHead, LeakyReclaimer<SimP>>>();
}
TEST(ReclaimerSweep, RawHeadHazardReclaimer) {
  expect_stack_linearizable_sweep<
      SweepStack<RawHead, HazardPointerReclaimer<SimP>>>();
}
TEST(ReclaimerSweep, RawHeadEpochReclaimer) {
  expect_stack_linearizable_sweep<
      SweepStack<RawHead, EpochBasedReclaimer<SimP>>>();
}
TEST(ReclaimerSweep, RawHeadCachedHazardReclaimer) {
  expect_stack_linearizable_sweep<
      SweepStack<RawHead, CachedHazardPointerReclaimer<SimP>>>();
}
TEST(ReclaimerSweep, RawHeadDeferredEpochReclaimer) {
  expect_stack_linearizable_sweep<
      SweepStack<RawHead, DeferredEpochReclaimer<SimP>>>();
}

template <class R>
void expect_queue_linearizable_sweep() {
  using Queue = structures::MsQueue<SimP, R>;
  for (int n : {2, 3}) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      util::Xoshiro256 rng(seed);
      std::vector<WorkloadOp> workload;
      for (int pid = 0; pid < n; ++pid) {
        for (int i = 0; i < 6; ++i) {
          if (rng.chance(1, 2)) {
            workload.push_back({pid, Method::kEnq, rng.below(100)});
          } else {
            workload.push_back({pid, Method::kDeq, 0});
          }
        }
      }
      harness::ScheduleLog log;
      const auto ops = harness::run_random_schedule(
          n, harness::make_factory<harness::QueueInvoker, Queue>(n, 6),
          workload, seed * 739 + 13, &log);
      const auto result = spec::check_linearizable<spec::QueueSpec>(
          ops, spec::QueueSpec::initial());
      EXPECT_TRUE(result.linearizable)
          << "n=" << n << " seed=" << seed << "\n"
          << log.to_string() << "\n"
          << spec::explain(ops, result);
    }
  }
}

TEST(ReclaimerSweep, QueueTaggedReclaimer) {
  expect_queue_linearizable_sweep<TaggedReclaimer<SimP>>();
}
TEST(ReclaimerSweep, QueueLeakyReclaimer) {
  expect_queue_linearizable_sweep<LeakyReclaimer<SimP>>();
}
TEST(ReclaimerSweep, QueueHazardReclaimer) {
  expect_queue_linearizable_sweep<HazardPointerReclaimer<SimP>>();
}
TEST(ReclaimerSweep, QueueCachedHazardReclaimer) {
  expect_queue_linearizable_sweep<CachedHazardPointerReclaimer<SimP>>();
}
TEST(ReclaimerSweep, QueueEpochReclaimer) {
  expect_queue_linearizable_sweep<EpochBasedReclaimer<SimP>>();
}
TEST(ReclaimerSweep, QueueDeferredEpochReclaimer) {
  expect_queue_linearizable_sweep<DeferredEpochReclaimer<SimP>>();
}

// ------------------------------ deterministic ABA schedule, deferred reuse
//
// The schedule that corrupts RawCasHead + TaggedReclaimer (immediate reuse;
// see test_structures.cpp TreiberAba.RawCasHeadIsCorrupted): p1 pauses
// mid-pop holding its protection, p0 pops both nodes and pushes a value
// that under immediate reuse recycles the very node p1 observed. The
// deferred-reuse reclaimers survive: hazard keeps the guarded node out of
// circulation (p1's CAS fails benignly), epoch refuses the allocation
// while p1's region pins the epoch, leaky never recycles at all.
//
// `pause_steps` = shared steps of a pop up to and including the read of
// head->next: 2 for an unguarded pop (head load, next read), 4 for hazard
// (+ guard publish, revalidation load) and 5 for epoch (+ global-epoch
// read, announce write, announce-validation re-read).
template <class Stack>
std::vector<spec::Op> run_deferred_aba_schedule(int pause_steps) {
  sim::SimWorld world(2);
  spec::History history;
  auto invoker = std::make_unique<harness::StackInvoker<Stack>>(
      world, history,
      std::make_unique<Stack>(
          world, 2, std::make_unique<typename Stack::HeadPolicy>(world, 2),
          Stack::partition(2, 2)));

  auto solo = [&](const WorkloadOp& op) {
    invoker->invoke(op);
    world.run_to_completion(op.pid);
  };

  solo({0, Method::kPush, 10});  // node0
  solo({0, Method::kPush, 20});  // node1; stack: 20 -> 10.

  // p1 starts pop and pauses once it has protected-and-read node1.
  invoker->invoke({1, Method::kPop, 0});
  for (int i = 0; i < pause_steps; ++i) world.step(1);

  solo({0, Method::kPop, 0});    // 20.
  solo({0, Method::kPop, 0});    // 10.
  solo({0, Method::kPush, 30});  // The ABA bait: may it reuse node1?

  world.run_to_completion(1);
  solo({0, Method::kPop, 0});
  solo({0, Method::kPop, 0});

  return history.ops();
}

TEST(DeferredReuseAba, HazardReclaimerSurvivesRawCasSchedule) {
  using Stack = SweepStack<RawHead, HazardPointerReclaimer<SimP>>;
  const auto ops = run_deferred_aba_schedule<Stack>(/*pause_steps=*/4);
  const auto result =
      spec::check_linearizable<spec::StackSpec>(ops, spec::StackSpec::initial());
  EXPECT_TRUE(result.linearizable)
      << "hazard pointers must defuse the raw-CAS ABA\n"
      << spec::explain(ops, result);
}

TEST(DeferredReuseAba, CachedHazardReclaimerSurvivesRawCasSchedule) {
  // A cold cache publishes exactly like the eager mode, so the pause lands
  // on the same step (4: head load, guard publish, revalidation load, next
  // read); what differs is everything after — and the history must not.
  using Stack = SweepStack<RawHead, CachedHazardPointerReclaimer<SimP>>;
  const auto ops = run_deferred_aba_schedule<Stack>(/*pause_steps=*/4);
  const auto result =
      spec::check_linearizable<spec::StackSpec>(ops, spec::StackSpec::initial());
  EXPECT_TRUE(result.linearizable)
      << "cached hazard guards must defuse the raw-CAS ABA\n"
      << spec::explain(ops, result);
}

TEST(DeferredReuseAba, EpochReclaimerSurvivesRawCasSchedule) {
  using Stack = SweepStack<RawHead, EpochBasedReclaimer<SimP>>;
  const auto ops = run_deferred_aba_schedule<Stack>(/*pause_steps=*/5);
  const auto result =
      spec::check_linearizable<spec::StackSpec>(ops, spec::StackSpec::initial());
  EXPECT_TRUE(result.linearizable)
      << "an active epoch region must block the recycling\n"
      << spec::explain(ops, result);
}

TEST(DeferredReuseAba, LeakyReclaimerSurvivesRawCasSchedule) {
  using Stack = SweepStack<RawHead, LeakyReclaimer<SimP>>;
  const auto ops = run_deferred_aba_schedule<Stack>(/*pause_steps=*/2);
  const auto result =
      spec::check_linearizable<spec::StackSpec>(ops, spec::StackSpec::initial());
  EXPECT_TRUE(result.linearizable)
      << "a never-reused index cannot ABA\n"
      << spec::explain(ops, result);
}

// --------------------------------------- retire bound: hazard vs epoch
//
// One reader (p1) stalls mid-pop holding its protection while p0 cycles
// push/pop. Hazard pointers bound p0's unreclaimed garbage by the scan
// threshold — a stalled reader pins only what its slots name. The epoch
// scheme's limbo grows linearly: p1's stale announcement freezes the
// global epoch, so nothing p0 retires ever matures. This is the space
// trade-off docs/RECLAMATION.md tabulates.

constexpr int kRetireCycles = 50;

TEST(RetireBound, HazardStalledReaderKeepsGarbageBounded) {
  using Stack = SweepStack<RawHead, HazardPointerReclaimer<SimP>>;
  sim::SimWorld world(2);
  Stack stack(world, 2, std::make_unique<structures::RawCasHead<SimP>>(world, 2),
              Stack::partition(2, kRetireCycles + 2));
  world.invoke(0, [&] { stack.push(0, 1); });
  world.run_to_completion(0);

  // p1 pauses mid-pop with its guard published and validated.
  std::optional<std::uint64_t> stalled;
  world.invoke(1, [&] { stalled = stack.pop(1); });
  for (int i = 0; i < 3; ++i) world.step(1);

  world.invoke(0, [&] {
    for (int i = 0; i < kRetireCycles; ++i) {
      ABA_CHECK(stack.push(0, static_cast<std::uint64_t>(i)));
      ABA_CHECK(stack.pop(0).has_value());
    }
  });
  world.run_to_completion(0);

  EXPECT_LE(stack.reclaimer().unreclaimed(0), stack.reclaimer().scan_threshold())
      << "hazard unreclaimed garbage must stay bounded under a stalled reader";

  world.run_to_completion(1);  // Unstall so the world can shut down cleanly.
  EXPECT_TRUE(stalled.has_value());
}

TEST(RetireBound, EpochStalledReaderGrowsLimboUnbounded) {
  using Stack = SweepStack<RawHead, EpochBasedReclaimer<SimP>>;
  sim::SimWorld world(2);
  Stack stack(world, 2, std::make_unique<structures::RawCasHead<SimP>>(world, 2),
              Stack::partition(2, kRetireCycles + 2));
  world.invoke(0, [&] { stack.push(0, 1); });
  world.run_to_completion(0);

  // p1 pauses mid-pop inside its epoch region: announce published and
  // validated (begin_op's read + write + validation re-read = 3 steps).
  std::optional<std::uint64_t> stalled;
  world.invoke(1, [&] { stalled = stack.pop(1); });
  for (int i = 0; i < 3; ++i) world.step(1);

  world.invoke(0, [&] {
    for (int i = 0; i < kRetireCycles; ++i) {
      ABA_CHECK(stack.push(0, static_cast<std::uint64_t>(i)));
      ABA_CHECK(stack.pop(0).has_value());
    }
  });
  world.run_to_completion(0);

  EXPECT_EQ(stack.reclaimer().unreclaimed(0),
            static_cast<std::size_t>(kRetireCycles))
      << "a stalled epoch reader must block all reclamation";

  world.run_to_completion(1);
  EXPECT_TRUE(stalled.has_value());
}

// ------------------------------ guard-cache worst-step schedules
//
// The cached mode's new failure surface is a guard that OUTLIVES its
// operation: end_op clears nothing, so a parked (or merely idle) reader's
// slot keeps pinning whatever it last protected. These schedules park a
// reader at exactly that step and drive the two attacks the design must
// survive — a retire storm against the pin, and a structure switch that
// leaves the pin behind.

TEST(GuardCacheSchedule, ParkedReaderPlusRetireStormStaysBounded) {
  // p1 parks mid-pop with its (cold-published) guard validated — the same
  // worst step as the eager RetireBound test — then additionally FINISHES
  // its op afterwards, which in the cached mode still releases nothing.
  using Stack = SweepStack<RawHead, CachedHazardPointerReclaimer<SimP>>;
  sim::SimWorld world(2);
  Stack stack(world, 2, std::make_unique<structures::RawCasHead<SimP>>(world, 2),
              Stack::partition(2, kRetireCycles + 2));
  world.invoke(0, [&] { stack.push(0, 1); });
  world.run_to_completion(0);

  std::optional<std::uint64_t> stalled;
  world.invoke(1, [&] { stalled = stack.pop(1); });
  for (int i = 0; i < 3; ++i) world.step(1);  // head, publish, revalidate.

  world.invoke(0, [&] {
    for (int i = 0; i < kRetireCycles; ++i) {
      ABA_CHECK(stack.push(0, static_cast<std::uint64_t>(i)));
      ABA_CHECK(stack.pop(0).has_value());
    }
  });
  world.run_to_completion(0);

  EXPECT_LE(stack.reclaimer().unreclaimed(0), stack.reclaimer().scan_threshold())
      << "a parked cached guard must pin only what its slots name";

  world.run_to_completion(1);
  EXPECT_TRUE(stalled.has_value());

  // p1's completed pop retired the node its own slot still caches: a scan
  // must keep it pinned (the +H headroom the mode buys its hit rate with)…
  world.invoke(1, [&] { stack.reclaimer().scan(1); });
  world.run_to_completion(1);
  EXPECT_EQ(stack.reclaimer().unreclaimed(1), 1u)
      << "the cached guard pins p1's own retiree across end_op";

  // …until the explicit epoch-style clear.
  world.invoke(1, [&] {
    stack.detach(1);
    stack.reclaimer().scan(1);
  });
  world.run_to_completion(1);
  EXPECT_EQ(stack.reclaimer().unreclaimed(1), 0u);
}

TEST(GuardCacheSchedule, StructureSwitchKeepsPinUntilDetach) {
  // p1 loses a pop race on stack A (so its cached guard names a node that
  // p0 retired), moves on to stack B, and works there indefinitely. A's
  // node stays pinned — reclaimers are per structure, so no amount of
  // activity on B releases it — until p1 detaches from A.
  using Stack = SweepStack<RawHead, CachedHazardPointerReclaimer<SimP>>;
  sim::SimWorld world(2);
  Stack a(world, 2, std::make_unique<structures::RawCasHead<SimP>>(world, 2),
          Stack::partition(2, 4));
  Stack b(world, 2, std::make_unique<structures::RawCasHead<SimP>>(world, 2),
          Stack::partition(2, 4));

  auto solo = [&](int pid, auto&& body) {
    world.invoke(pid, std::forward<decltype(body)>(body));
    world.run_to_completion(pid);
  };

  solo(0, [&] { a.push(0, 11); });

  // p1 parks mid-pop on A with its guard on the head node validated.
  std::optional<std::uint64_t> lost;
  world.invoke(1, [&] { lost = a.pop(1); });
  for (int i = 0; i < 3; ++i) world.step(1);

  // p0 wins the node and retires it — and then detaches (p0 is the
  // hygienic process here), so from now on the ONLY thing pinning the node
  // is p1's parked cached guard.
  std::optional<std::uint64_t> won;
  solo(0, [&] { won = a.pop(0); });
  EXPECT_EQ(won, std::optional<std::uint64_t>(11));
  solo(0, [&] { a.detach(0); });
  solo(0, [&] { a.reclaimer().scan(0); });
  EXPECT_EQ(a.reclaimer().unreclaimed(0), 1u);

  // p1 resumes: its CAS fails, the retry sees A empty — and the cached
  // guard still names the node it validated, completed op or not.
  world.run_to_completion(1);
  EXPECT_EQ(lost, std::nullopt);

  // p1 switches structures and works on B; A's pin is untouched.
  solo(1, [&] {
    ABA_CHECK(b.push(1, 22));
    ABA_CHECK(b.pop(1) == std::optional<std::uint64_t>(22));
  });
  solo(0, [&] { a.reclaimer().scan(0); });
  EXPECT_EQ(a.reclaimer().unreclaimed(0), 1u)
      << "switching structures without detach must keep the pin";

  // The explicit clear on structure switch releases A's node.
  solo(1, [&] { a.detach(1); });
  solo(0, [&] { a.reclaimer().scan(0); });
  EXPECT_EQ(a.reclaimer().unreclaimed(0), 0u);
}

// ------------------------------ epoch worst-step schedules (seed corpus)
//
// The epoch analogue of the GuardCacheSchedule pattern: park the reader at
// the worst step — right after its announcement became visible (begin_op's
// read + write + validation re-read = 3 steps) — and drive a retire storm.
// These scripted schedules are the seed bounds the searched adversary
// (tests/test_schedule_search.cpp) must meet or beat, and they pin the two
// claims the epoch design makes: the backlog is exactly the storm while
// the announcer is parked (nothing leaks, nothing matures early), and the
// 2-epoch grace bound releases everything once the announcer resumes.

TEST(EpochSchedule, ParkedAnnouncerFreezesUntilTwoAdvances) {
  using Stack = SweepStack<RawHead, EpochBasedReclaimer<SimP>>;
  using R = EpochBasedReclaimer<SimP>;
  sim::SimWorld world(2);
  Stack stack(world, 2, std::make_unique<structures::RawCasHead<SimP>>(world, 2),
              Stack::partition(2, kRetireCycles + 2));
  world.invoke(0, [&] { stack.push(0, 1); });
  world.run_to_completion(0);

  // p1 parks with its announcement published and validated.
  std::optional<std::uint64_t> stalled;
  world.invoke(1, [&] { stalled = stack.pop(1); });
  for (int i = 0; i < 3; ++i) world.step(1);

  world.invoke(0, [&] {
    for (int i = 0; i < kRetireCycles; ++i) {
      ABA_CHECK(stack.push(0, static_cast<std::uint64_t>(i)));
      ABA_CHECK(stack.pop(0).has_value());
    }
  });
  world.run_to_completion(0);

  // The parked announcement freezes the epoch after at most one advance
  // (p1 announced the then-current epoch, so one bump may slip through),
  // and from then on the whole storm sits in limbo: backlog == storm.
  EXPECT_EQ(stack.reclaimer().unreclaimed(0),
            static_cast<std::size_t>(kRetireCycles))
      << "a parked announcer must freeze all reclamation";

  world.run_to_completion(1);  // The announcer resumes and completes.
  EXPECT_TRUE(stalled.has_value());

  // First advance+flush round: only the retires stamped before the single
  // slipped-through advance (kAdvanceEvery of them) are 2 epochs old.
  world.invoke(0, [&] {
    stack.reclaimer().flush(0, stack.reclaimer().try_advance());
  });
  world.run_to_completion(0);
  EXPECT_EQ(stack.reclaimer().unreclaimed(0),
            static_cast<std::size_t>(kRetireCycles) - R::kAdvanceEvery)
      << "the grace period must release exactly the 2-epoch-old stamps";

  // Second round: everything matures. The bound is tight, not approximate.
  world.invoke(0, [&] {
    stack.reclaimer().flush(0, stack.reclaimer().try_advance());
  });
  world.run_to_completion(0);
  EXPECT_EQ(stack.reclaimer().unreclaimed(0), 0u)
      << "two advances past the resume must drain the whole backlog";
}

TEST(EpochSchedule, RetireStormCannotRecycleInsideGrace) {
  // The allocation-side view of the same schedule: with the announcer
  // parked, a storm that drains its free list must hit pool pressure —
  // allocate refusing to recycle limbo nodes IS the grace bound. Pool: 4
  // nodes for p0, so the 5th push must fail while p1 is parked.
  using Stack = SweepStack<RawHead, EpochBasedReclaimer<SimP>>;
  sim::SimWorld world(2);
  Stack stack(world, 2, std::make_unique<structures::RawCasHead<SimP>>(world, 2),
              Stack::partition(2, 4));

  // p1 parks mid-pop on the empty stack: its announcement alone pins the
  // epoch (no guard, no node — the epoch scheme's whole weakness).
  std::optional<std::uint64_t> stalled;
  world.invoke(1, [&] { stalled = stack.pop(1); });
  for (int i = 0; i < 3; ++i) world.step(1);

  bool fifth_push_ok = true;
  world.invoke(0, [&] {
    for (int i = 0; i < 4; ++i) {
      ABA_CHECK(stack.push(0, static_cast<std::uint64_t>(i)));
      ABA_CHECK(stack.pop(0).has_value());
    }
    fifth_push_ok = stack.push(0, 99);
  });
  world.run_to_completion(0);
  EXPECT_FALSE(fifth_push_ok)
      << "allocate must refuse to recycle a node inside the grace period";
  EXPECT_EQ(stack.reclaimer().unreclaimed(0), 4u);

  world.run_to_completion(1);
  EXPECT_EQ(stalled, std::nullopt);  // The stack was empty throughout.

  // Announcer quiescent: two advance+flush rounds mature the limbo and the
  // same push succeeds.
  bool push_after_grace = false;
  world.invoke(0, [&] {
    stack.reclaimer().flush(0, stack.reclaimer().try_advance());
    stack.reclaimer().flush(0, stack.reclaimer().try_advance());
    push_after_grace = stack.push(0, 99);
  });
  world.run_to_completion(0);
  EXPECT_TRUE(push_after_grace)
      << "once the grace period passes, the pool must recover";
  EXPECT_EQ(stack.reclaimer().unreclaimed(0), 0u);
}

// ------------------ deferred epoch: the announce-validate race, scripted
//
// The one new window deferred mode opens: an announcer that has WRITTEN its
// announcement but not yet run its validation read, with an advancer racing
// into the gap. The invariant the design claims — and this schedule pins —
// is that the epoch can pass such an announcement at most once (the
// advance's scan sees the store: current on the first attempt, a veto from
// then on), and the resumed announcer's validation loop re-announces the
// moved epoch rather than keeping the stale one.
TEST(DeferredEpochSchedule, AdvancerRacesTheAnnounceValidateWindow) {
  using R = DeferredEpochReclaimer<SimP>;
  sim::SimWorld world(2);
  FreeLists free(2);
  free[0] = {0, 1};
  R r(world, 2, free);

  // p1 parks between its announce store and its validation read (the miss
  // path's shared steps: global read, announce write, validation read).
  world.invoke(1, [&] { r.begin_op(1); });
  world.step(1);  // global read (epoch 0)
  world.step(1);  // announce write — visible from here

  // p0 races an advance into the window. The fresh announcement equals the
  // epoch it names, so the first advance passes…
  std::uint64_t advanced = 0;
  world.invoke(0, [&] { advanced = r.try_advance(0); });
  world.run_to_completion(0);
  EXPECT_EQ(advanced, 1u) << "a current announcement does not veto";

  // …and the second is vetoed: global is now announce+1, the reuse bound.
  world.invoke(0, [&] { advanced = r.try_advance(0); });
  world.run_to_completion(0);
  EXPECT_EQ(advanced, 1u)
      << "the epoch can never be more than one past an active announcement";

  // p1 resumes: its validation read observes the moved epoch and the loop
  // re-announces it, so the region ends announced at the current epoch.
  world.run_to_completion(1);
  world.invoke(1, [&] { r.end_op(1); });
  world.run_to_completion(1);

  // The re-announcement is current — the next advance passes — and then
  // the parked (deferred) cache pins the epoch again, completed op or not.
  world.invoke(0, [&] { advanced = r.try_advance(0); });
  world.run_to_completion(0);
  EXPECT_EQ(advanced, 2u) << "the re-announced epoch is current";
  world.invoke(0, [&] { advanced = r.try_advance(0); });
  world.run_to_completion(0);
  EXPECT_EQ(advanced, 2u) << "the parked cache pins the epoch after end_op";

  // detach is the release point, exactly as in the unit contract.
  world.invoke(1, [&] { r.detach(1); });
  world.run_to_completion(1);
  world.invoke(0, [&] { advanced = r.try_advance(0); });
  world.run_to_completion(0);
  EXPECT_EQ(advanced, 3u) << "a detached process stops pinning";
}

// --------------------------------------- retire_batch, the whole roster
//
// The batched verb must be observationally equivalent to the retire loop on
// every policy; what it buys is the amortization — one FIFO append run, one
// threshold check, one stamp read, one ring hand-off — which the ledger
// assertions below pin where the platform can observe it.

TEST(RetireBatch, TaggedBatchReusesInBatchOrder) {
  typename NativeP::Env env;
  TaggedReclaimer<NativeP> r(env, 1, one_process_pool(3));
  ASSERT_TRUE(r.allocate(0).has_value());
  ASSERT_TRUE(r.allocate(0).has_value());
  ASSERT_TRUE(r.allocate(0).has_value());
  const std::uint64_t batch[] = {2, 0, 1};
  r.retire_batch(0, batch, 3);
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(2));
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(0));
  EXPECT_EQ(r.allocate(0), std::optional<std::uint64_t>(1));
}

TEST(RetireBatch, LeakyBatchNeverReturns) {
  typename NativeP::Env env;
  LeakyReclaimer<NativeP> r(env, 1, one_process_pool(2));
  ASSERT_TRUE(r.allocate(0).has_value());
  ASSERT_TRUE(r.allocate(0).has_value());
  const std::uint64_t batch[] = {0, 1};
  r.retire_batch(0, batch, 2);
  EXPECT_EQ(r.allocate(0), std::nullopt);
  EXPECT_EQ(r.unreclaimed(0), 2u);
}

TEST(RetireBatch, HazardBatchPaysOneScanAndRespectsGuards) {
  typename NativeP::Env env;
  // The Counted threshold is the 2·H rule: 2 · (n · slots-per-process).
  const std::size_t threshold =
      2 * 2 * HazardPointerReclaimer<NativeP>::kSlotsPerProcess;
  FreeLists free(2);
  free[0].resize(threshold);
  for (std::size_t i = 0; i < threshold; ++i) free[0][i] = i;
  HazardPointerReclaimer<NativeP> r(env, 2, free);
  ASSERT_EQ(r.scan_threshold(), threshold);
  r.guard(1, 0, 0);  // p1 pins node 0 across the whole batch.
  std::vector<std::uint64_t> batch(threshold);
  for (std::size_t i = 0; i < threshold; ++i) batch[i] = i;
  r.retire_batch(0, batch.data(), threshold);
  EXPECT_EQ(r.unreclaimed(0), 1u)
      << "one threshold scan at the end must reclaim all but the pinned node";
}

TEST(RetireBatch, EagerEpochStampsTheWholeBatchUnderOneRead) {
  using R = EpochBasedReclaimer<NativeP>;
  typename NativeP::Env env;
  R r(env, 1, one_process_pool(8));
  const std::uint64_t batch[] = {5, 6, 7};
  const std::uint64_t s = native::step_counter();
  r.retire_batch(0, batch, 3);  // 3 < kAdvanceEvery: no advance fires.
  EXPECT_EQ(native::step_counter() - s, 1u)
      << "the whole batch must be stamped under one global-epoch read";
  EXPECT_EQ(r.unreclaimed(0), 3u);
}

TEST(RetireBatch, DeferredEpochRoutesThroughThePendingRing) {
  using R = DeferredEpochReclaimer<NativeP>;
  typename NativeP::Env env;
  const auto n = static_cast<int>(R::kRetireBatch) + 1;
  R r(env, 1, one_process_pool(n + 1));
  std::vector<std::uint64_t> batch;
  for (int i = 0; i < n; ++i) {
    const auto idx = r.allocate(0);
    ASSERT_TRUE(idx.has_value());
    r.commit(0);
    batch.push_back(*idx);
  }
  r.retire_batch(0, batch.data(), batch.size());
  EXPECT_EQ(r.pending_count(0), 1u)
      << "the overflow past one full ring stays buffered";
  EXPECT_EQ(r.unreclaimed(0), R::kRetireBatch + 1);
}

// ----------------------------------------------- native stress, all four

template <class R>
struct NativeStackCase {
  using Reclaimer = R;
};

template <class Case>
class NativeReclaimStress : public ::testing::Test {};

using NativeCases = ::testing::Types<
    NativeStackCase<TaggedReclaimer<NativeP>>,
    NativeStackCase<LeakyReclaimer<NativeP>>,
    NativeStackCase<HazardPointerReclaimer<NativeP>>,
    NativeStackCase<CachedHazardPointerReclaimer<NativeP>>,
    NativeStackCase<EpochBasedReclaimer<NativeP>>,
    NativeStackCase<DeferredEpochReclaimer<NativeP>>>;
TYPED_TEST_SUITE(NativeReclaimStress, NativeCases);

TYPED_TEST(NativeReclaimStress, StackBalancedAccounting) {
  using R = typename TypeParam::Reclaimer;
  using Stack =
      structures::TreiberStack<NativeP, structures::TaggedCasHead<NativeP>, R>;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1500;
  typename NativeP::Env env;
  // Pool sized so even the leaky reclaimer survives every push.
  Stack stack(env, kThreads,
              std::make_unique<structures::TaggedCasHead<NativeP>>(env, kThreads),
              Stack::partition(kThreads, kOpsPerThread + 1));

  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<std::uint64_t> pushed_count{0}, popped_count{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.chance(1, 2)) {
          const std::uint64_t v = rng.below(1000) + 1;
          if (stack.push(tid, v)) {
            pushed_sum.fetch_add(v);
            pushed_count.fetch_add(1);
          }
        } else {
          const auto v = stack.pop(tid);
          if (v.has_value()) {
            popped_sum.fetch_add(*v);
            popped_count.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Drain and account: every pushed value must be popped exactly once.
  for (;;) {
    const auto v = stack.pop(0);
    if (!v.has_value()) break;
    popped_sum.fetch_add(*v);
    popped_count.fetch_add(1);
  }
  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
  EXPECT_EQ(pushed_count.load(), popped_count.load());
}

TYPED_TEST(NativeReclaimStress, QueueBalancedAccounting) {
  using R = typename TypeParam::Reclaimer;
  using Queue = structures::MsQueue<NativeP, R>;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1000;
  typename NativeP::Env env;
  Queue queue(env, kThreads, /*nodes_per_process=*/kOpsPerThread + 1);

  std::atomic<std::uint64_t> enq_sum{0}, deq_sum{0};
  std::atomic<std::uint64_t> enq_count{0}, deq_count{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 11);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.chance(1, 2)) {
          const std::uint64_t v = rng.below(1000) + 1;
          if (queue.enqueue(tid, v)) {
            enq_sum.fetch_add(v);
            enq_count.fetch_add(1);
          }
        } else {
          const auto v = queue.dequeue(tid);
          if (v.has_value()) {
            deq_sum.fetch_add(*v);
            deq_count.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  for (;;) {
    const auto v = queue.dequeue(0);
    if (!v.has_value()) break;
    deq_sum.fetch_add(*v);
    deq_count.fetch_add(1);
  }
  EXPECT_EQ(enq_sum.load(), deq_sum.load());
  EXPECT_EQ(enq_count.load(), deq_count.load());
}

// ----------------------- Fast ≡ Counted ≡ FastAsymmetric determinism
//
// Token-serialized native workload (one thread moves at a time, so the
// schedule is a pure function of (n, rounds)) over the cached-guard hazard
// stack: the platform policy changes layout, instrumentation, orderings
// and fences — never results. FastAsymmetric joins the comparison because
// the fence pair must be behaviour-invisible too.
template <class P>
std::vector<std::uint64_t> tokenized_cached_hazard_trace(int n, int rounds) {
  using Stack = structures::TreiberStack<P, structures::TaggedCasHead<P>,
                                         CachedHazardPointerReclaimer<P>>;
  typename P::Env env;
  Stack stack(env, n,
              std::make_unique<structures::TaggedCasHead<P>>(env, n),
              Stack::partition(n, rounds + 2));
  std::vector<std::uint64_t> trace(static_cast<std::size_t>(n) * rounds, 0);
  std::atomic<int> turn{0};
  std::vector<std::thread> threads;
  for (int pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      for (int r = 0; r < rounds; ++r) {
        const int my_step = r * n + pid;
        while (turn.load() != my_step) std::this_thread::yield();
        std::uint64_t result = 0;
        if ((pid + r) % 2 == 0) {
          result = stack.push(pid, static_cast<std::uint64_t>(my_step)) ? 1 : 0;
        } else {
          const auto v = stack.pop(pid);
          result = spec::pack_opt(v.has_value(), v.has_value() ? *v : 0);
        }
        trace[static_cast<std::size_t>(my_step)] = result;
        turn.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  return trace;
}

TEST(CachedHazardNativePolicy, FastAndAsymmetricMatchCounted) {
  using CountedP = native::NativePlatform<native::Counted>;
  using FastP = native::NativePlatform<native::Fast>;
  const auto counted = tokenized_cached_hazard_trace<CountedP>(3, 48);
  const auto fast = tokenized_cached_hazard_trace<FastP>(3, 48);
  const auto asym = tokenized_cached_hazard_trace<AsymP>(3, 48);
  EXPECT_EQ(counted, fast);
  EXPECT_EQ(counted, asym);
}

// The same token-serialized determinism for the deferred epoch policy. The
// batch size differs across platforms (4 on Counted/Fast, 64 on
// FastAsymmetric — kRetireBatch is platform-derived like the hazard scan
// floor), so the pool is sized so flush cadence can never surface as a
// refused allocation: the abstract results must be flush-cadence-blind.
template <class P>
std::vector<std::uint64_t> tokenized_deferred_epoch_trace(int n, int rounds) {
  using Stack = structures::TreiberStack<P, structures::TaggedCasHead<P>,
                                         DeferredEpochReclaimer<P>>;
  typename P::Env env;
  Stack stack(env, n,
              std::make_unique<structures::TaggedCasHead<P>>(env, n),
              Stack::partition(n, rounds + 2));
  std::vector<std::uint64_t> trace(static_cast<std::size_t>(n) * rounds, 0);
  std::atomic<int> turn{0};
  std::vector<std::thread> threads;
  for (int pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      for (int r = 0; r < rounds; ++r) {
        const int my_step = r * n + pid;
        while (turn.load() != my_step) std::this_thread::yield();
        std::uint64_t result = 0;
        if ((pid + r) % 2 == 0) {
          result = stack.push(pid, static_cast<std::uint64_t>(my_step)) ? 1 : 0;
        } else {
          const auto v = stack.pop(pid);
          result = spec::pack_opt(v.has_value(), v.has_value() ? *v : 0);
        }
        trace[static_cast<std::size_t>(my_step)] = result;
        turn.fetch_add(1);
      }
      stack.detach(pid);  // The deferred-announce structure-exit contract.
    });
  }
  for (auto& t : threads) t.join();
  return trace;
}

TEST(DeferredEpochNativePolicy, FastAndAsymmetricMatchCounted) {
  using CountedP = native::NativePlatform<native::Counted>;
  using FastP = native::NativePlatform<native::Fast>;
  const auto counted = tokenized_deferred_epoch_trace<CountedP>(3, 48);
  const auto fast = tokenized_deferred_epoch_trace<FastP>(3, 48);
  const auto asym = tokenized_deferred_epoch_trace<AsymP>(3, 48);
  EXPECT_EQ(counted, fast);
  EXPECT_EQ(counted, asym);
}

// The same token-serialized determinism for the thread-hosted leased
// reclaimers (shm/lease_hosts.h): the pid-lease death protocol runs for
// real — begin_op self-checks the lease, retires beat the heartbeat,
// staleness gets suspected and vetoed (threads of a live process are
// unconditionally alive, so the handshake can never confirm). All leased
// state lives on the heap host regardless of platform, so the platform
// policy can only touch the structure side: Counted, Fast and
// FastAsymmetric must agree result-for-result.
template <class P, class Reclaimer>
std::vector<std::uint64_t> tokenized_leased_trace(int n, int rounds) {
  using Stack =
      structures::TreiberStack<P, structures::TaggedCasHead<P>, Reclaimer>;
  typename P::Env env;
  Stack stack(env, n,
              std::make_unique<structures::TaggedCasHead<P>>(env, n),
              Stack::partition(n, rounds + 2));
  std::vector<std::uint64_t> trace(static_cast<std::size_t>(n) * rounds, 0);
  std::atomic<int> turn{0};
  std::vector<std::thread> threads;
  for (int pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      for (int r = 0; r < rounds; ++r) {
        const int my_step = r * n + pid;
        while (turn.load() != my_step) std::this_thread::yield();
        std::uint64_t result = 0;
        if ((pid + r) % 2 == 0) {
          result = stack.push(pid, static_cast<std::uint64_t>(my_step)) ? 1 : 0;
        } else {
          const auto v = stack.pop(pid);
          result = spec::pack_opt(v.has_value(), v.has_value() ? *v : 0);
        }
        trace[static_cast<std::size_t>(my_step)] = result;
        turn.fetch_add(1);
      }
      stack.detach(pid);  // Hazard modes release their published guards.
    });
  }
  for (auto& t : threads) t.join();
  return trace;
}

template <class Reclaimer>
void expect_leased_platform_agreement() {
  using CountedP = native::NativePlatform<native::Counted>;
  using FastP = native::NativePlatform<native::Fast>;
  const auto counted = tokenized_leased_trace<CountedP, Reclaimer>(3, 48);
  const auto fast = tokenized_leased_trace<FastP, Reclaimer>(3, 48);
  const auto asym = tokenized_leased_trace<AsymP, Reclaimer>(3, 48);
  EXPECT_EQ(counted, fast);
  EXPECT_EQ(counted, asym);
}

TEST(LeasedNativePolicy, HazardFastAndAsymmetricMatchCounted) {
  expect_leased_platform_agreement<shm::ThreadLeasedHazardReclaimer>();
}

TEST(LeasedNativePolicy, CachedHazardFastAndAsymmetricMatchCounted) {
  expect_leased_platform_agreement<shm::ThreadLeasedCachedHazardReclaimer>();
}

TEST(LeasedNativePolicy, EpochFastAndAsymmetricMatchCounted) {
  expect_leased_platform_agreement<shm::ThreadLeasedEpochReclaimer>();
}

// ------------------------------- asymmetric-fence native stress
//
// The real-concurrency workout of the FastAsymmetric platform: raw CAS
// head (reclamation IS the ABA answer) + cached guards + the
// membarrier-or-fallback fence pair, checked by value conservation. Under
// TSan the fence header degrades both sides to seq_cst thread fences, so
// the sanitizer checks the protocol it can model.
TEST(NativeAsymmetricFenceStress, CachedHazardStackBalancedAccounting) {
  using Stack = structures::TreiberStack<AsymP, structures::RawCasHead<AsymP>,
                                         CachedHazardPointerReclaimer<AsymP>>;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1500;
  typename AsymP::Env env;
  // Headroom past the asymmetric scan batch (kHeavyScanFloor retires can be
  // in flight per process) plus the cached-guard pins.
  Stack stack(env, kThreads,
              std::make_unique<structures::RawCasHead<AsymP>>(env, kThreads),
              Stack::partition(kThreads, kOpsPerThread + 1));

  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 31);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.chance(1, 2)) {
          const std::uint64_t v = rng.below(1000) + 1;
          if (stack.push(tid, v)) pushed_sum.fetch_add(v);
        } else {
          const auto v = stack.pop(tid);
          if (v.has_value()) popped_sum.fetch_add(*v);
        }
      }
      stack.detach(tid);  // The structure-exit contract of cached guards.
    });
  }
  for (auto& t : threads) t.join();
  for (;;) {
    const auto v = stack.pop(0);
    if (!v.has_value()) break;
    popped_sum.fetch_add(*v);
  }
  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
}

// The deferred epoch variant under the same real-concurrency fence workout:
// raw CAS head (the epoch grace period IS the ABA answer), light announces,
// heavy batched advances. The per-thread detach matters doubly here — a
// thread that exits without it would pin the epoch for every survivor.
TEST(NativeAsymmetricFenceStress, DeferredEpochStackBalancedAccounting) {
  using Stack = structures::TreiberStack<AsymP, structures::RawCasHead<AsymP>,
                                         DeferredEpochReclaimer<AsymP>>;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1500;
  typename AsymP::Env env;
  // Pool headroom past the batch: kRetireBatch retires can sit unstamped in
  // each process's pending ring on top of the frozen-epoch worst case.
  Stack stack(env, kThreads,
              std::make_unique<structures::RawCasHead<AsymP>>(env, kThreads),
              Stack::partition(kThreads, kOpsPerThread + 1));

  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 47);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.chance(1, 2)) {
          const std::uint64_t v = rng.below(1000) + 1;
          if (stack.push(tid, v)) pushed_sum.fetch_add(v);
        } else {
          const auto v = stack.pop(tid);
          if (v.has_value()) popped_sum.fetch_add(*v);
        }
      }
      stack.detach(tid);  // Release the parked announcement.
    });
  }
  for (auto& t : threads) t.join();
  for (;;) {
    const auto v = stack.pop(0);
    if (!v.has_value()) break;
    popped_sum.fetch_add(*v);
  }
  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
}

// ------------------------------- migrated pointer-based hazard pointers

TEST(HazardDomain, ProtectPinsAndScanDefers) {
  HazardDomain domain(2, 1);
  std::atomic<int*> src{new int(42)};
  int* pinned = domain.protect(0, 0, src);
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(*pinned, 42);

  // Thread 1 retires the node while thread 0 still pins it.
  bool deleted = false;
  int* raw = src.exchange(nullptr);
  domain.retire(1, raw, [&deleted](void* p) {
    deleted = true;
    delete static_cast<int*>(p);
  });
  domain.scan(1);
  EXPECT_FALSE(deleted) << "pinned node must survive a scan";

  domain.clear(0, 0);
  domain.scan(1);
  EXPECT_TRUE(deleted) << "unpinned node must be reclaimed";
}

TEST(HazardDomain, ProtectRevalidatesOnRace) {
  HazardDomain domain(1, 1);
  std::atomic<int*> src{new int(1)};
  int* p = domain.protect(0, 0, src);
  EXPECT_EQ(p, src.load());
  delete src.load();
}

TEST(HazardDomain, ScanThresholdTriggersAutomatically) {
  HazardDomain domain(1, 1);
  int reclaimed = 0;
  const std::size_t threshold = domain.scan_threshold();
  for (std::size_t i = 0; i < threshold; ++i) {
    domain.retire(0, new int(static_cast<int>(i)), [&reclaimed](void* p) {
      ++reclaimed;
      delete static_cast<int*>(p);
    });
  }
  EXPECT_GT(reclaimed, 0) << "hitting the threshold must trigger a scan";
}

TEST(HpStack, SequentialLifo) {
  structures::HpTreiberStack<int> stack(1);
  stack.push(0, 1);
  stack.push(0, 2);
  int out = 0;
  EXPECT_TRUE(stack.pop(0, out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(stack.pop(0, out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(stack.pop(0, out));
}

TEST(HpStack, ConcurrentStressBalancedAndLeakFree) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  auto stack = std::make_unique<structures::HpTreiberStack<std::uint64_t>>(kThreads);
  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<std::uint64_t> pushed_count{0}, popped_count{0};

  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.chance(1, 2)) {
          const std::uint64_t v = rng.below(1000) + 1;
          stack->push(tid, v);
          pushed_sum.fetch_add(v);
          pushed_count.fetch_add(1);
        } else {
          std::uint64_t v = 0;
          if (stack->pop(tid, v)) {
            popped_sum.fetch_add(v);
            popped_count.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Drain and account: every pushed value must be popped exactly once.
  std::uint64_t v = 0;
  while (stack->pop(0, v)) {
    popped_sum.fetch_add(v);
    popped_count.fetch_add(1);
  }
  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
  EXPECT_EQ(pushed_count.load(), popped_count.load());

  const std::uint64_t allocated = stack->allocated();
  stack.reset();  // Destructor reclaims any still-retired nodes.
  EXPECT_GT(allocated, 0u);
}

}  // namespace
}  // namespace aba::reclaim
