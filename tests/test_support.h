// Shared helpers for the test suites: fixture factories binding each
// implementation to the harness, linearizability-check closures, and
// workload generators.
#pragma once

#include <memory>
#include <vector>

#include "core/aba_register_bounded.h"
#include "core/aba_register_from_llsc.h"
#include "core/aba_register_unbounded_tag.h"
#include "core/llsc_register_array.h"
#include "core/llsc_single_cas.h"
#include "core/llsc_unbounded_tag.h"
#include "harness/adapters.h"
#include "harness/harness.h"
#include "sim/sim_platform.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"
#include "util/rng.h"

namespace aba::testing {

using SimP = sim::SimPlatform;

// ------------------------------------------------------------- factories

template <class Impl>
harness::FixtureFactory aba_reg_factory(int n, typename Impl::Options options = {}) {
  return [n, options](sim::SimWorld& world,
                      spec::History& history) -> std::unique_ptr<harness::Invoker> {
    auto impl = std::make_unique<Impl>(world, n, options);
    return std::make_unique<harness::AbaRegInvoker<Impl>>(world, history,
                                                          std::move(impl));
  };
}

template <class Impl>
harness::FixtureFactory llsc_factory(int n, typename Impl::Options options = {}) {
  return [n, options](sim::SimWorld& world,
                      spec::History& history) -> std::unique_ptr<harness::Invoker> {
    auto impl = std::make_unique<Impl>(world, n, options);
    return std::make_unique<harness::LlscInvoker<Impl>>(world, history,
                                                        std::move(impl));
  };
}

// Figure 5 composed over a given LL/SC/VL implementation (always built with
// initially_linked = true, the convention the reduction requires).
template <class Llsc>
harness::FixtureFactory fig5_factory(int n, std::uint64_t initial_value,
                                     typename Llsc::Options llsc_options = {}) {
  llsc_options.initially_linked = true;
  llsc_options.initial_value = initial_value;
  return [n, initial_value, llsc_options](
             sim::SimWorld& world,
             spec::History& history) -> std::unique_ptr<harness::Invoker> {
    struct Composed {
      Composed(sim::SimWorld& world, int n, std::uint64_t init,
               const typename Llsc::Options& opt)
          : llsc(world, n, opt), reg(llsc, n, init) {}
      std::pair<std::uint64_t, bool> dread(int q) { return reg.dread(q); }
      void dwrite(int p, std::uint64_t x) { reg.dwrite(p, x); }
      Llsc llsc;
      core::AbaRegisterFromLlsc<Llsc> reg;
    };
    auto impl = std::make_unique<Composed>(world, n, initial_value, llsc_options);
    return std::make_unique<harness::AbaRegInvoker<Composed>>(world, history,
                                                              std::move(impl));
  };
}

// ------------------------------------------------------- history checks

inline harness::HistoryCheck aba_reg_check(int n, std::uint64_t initial_value) {
  return [n, initial_value](const std::vector<spec::Op>& ops) {
    return static_cast<bool>(spec::check_linearizable<spec::AbaRegisterSpec>(
        ops, spec::AbaRegisterSpec::initial(n, initial_value)));
  };
}

inline harness::HistoryCheck llsc_check(int n, std::uint64_t initial_value,
                                        bool initially_linked) {
  return [n, initial_value, initially_linked](const std::vector<spec::Op>& ops) {
    return static_cast<bool>(spec::check_linearizable<spec::LlscSpec>(
        ops, spec::LlscSpec::initial(n, initial_value, initially_linked)));
  };
}

// --------------------------------------------------------- workloads

// Random mixed DRead/DWrite workload: `ops_per_process` ops per process;
// write probability ~40%; values in [0, 2^value_bits).
inline std::vector<harness::WorkloadOp> random_aba_workload(int n,
                                                            int ops_per_process,
                                                            unsigned value_bits,
                                                            std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<harness::WorkloadOp> workload;
  for (int pid = 0; pid < n; ++pid) {
    for (int i = 0; i < ops_per_process; ++i) {
      if (rng.chance(2, 5)) {
        workload.push_back({pid, spec::Method::kDWrite,
                            rng.below(1ULL << value_bits)});
      } else {
        workload.push_back({pid, spec::Method::kDRead, 0});
      }
    }
  }
  return workload;
}

// Random mixed LL/SC/VL workload.
inline std::vector<harness::WorkloadOp> random_llsc_workload(int n,
                                                             int ops_per_process,
                                                             unsigned value_bits,
                                                             std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<harness::WorkloadOp> workload;
  for (int pid = 0; pid < n; ++pid) {
    for (int i = 0; i < ops_per_process; ++i) {
      const auto dice = rng.below(10);
      if (dice < 4) {
        workload.push_back({pid, spec::Method::kLL, 0});
      } else if (dice < 8) {
        workload.push_back({pid, spec::Method::kSC,
                            rng.below(1ULL << value_bits)});
      } else {
        workload.push_back({pid, spec::Method::kVL, 0});
      }
    }
  }
  return workload;
}

}  // namespace aba::testing
