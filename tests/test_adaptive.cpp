// Tests for the contention-adaptive sharding facade
// (structures/adaptive_sharded.h).
//
// Coverage:
//   * width ladder: initial_shards clamping, the runtime set_active_shards
//     dispatch, and the probe order (active prefix first, parked remainder
//     exactly once);
//   * sequential semantics at width 1 (plain LIFO/FIFO) and the
//     shrink-strands-nothing contract: elements parked in deactivated
//     shards drain through the full-width steal scan;
//   * deterministic adaptation: a step-controlled sim schedule forces CAS
//     failures and watches the facade grow its width, then contention-free
//     traffic shrinks it back — both decisions exact, not statistical;
//   * relaxed-pool linearizability sweeps (random sim schedules, histories
//     split by landing shard, every sub-history against the exact spec,
//     multiset conservation) across reclaimers including hazard_cached;
//   * Fast ≡ Counted determinism on a token-serialized native workload
//     with adaptation live;
//   * native balanced-accounting stress with adaptation live (the suite
//     CI's TSan job runs).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "harness/adapters.h"
#include "harness/harness.h"
#include "native/native_platform.h"
#include "reclaim/hazard_pointer.h"
#include "reclaim/tagged.h"
#include "sim/sim_platform.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"
#include "structures/adaptive_sharded.h"
#include "util/rng.h"

namespace aba::structures {
namespace {

using SimP = sim::SimPlatform;
using NativeP = native::NativePlatform<native::Counted>;
using harness::WorkloadOp;
using spec::Method;

// Facade over the sim platform with (Env&, n, per_shard_pool, options)
// construction, so the tagging invokers can build it.
template <class R, int kMax = 8>
struct SweepAdaptiveStack : AdaptiveShardedStack<SimP, TaggedCasHead<SimP>, R, kMax> {
  using Base = AdaptiveShardedStack<SimP, TaggedCasHead<SimP>, R, kMax>;
  SweepAdaptiveStack(sim::SimWorld& world, int n, int per_process_per_shard,
                     AdaptiveOptions options = {})
      : Base(world, n, Base::make_heads(world, n), per_process_per_shard,
             options) {}
};

// --------------------------------------------------------- width ladder

TEST(AdaptiveWidth, InitialShardsClampToThePowerOfTwoLadder) {
  sim::SimWorld world(1);
  for (const auto [requested, expected] :
       {std::pair{1, 1}, {2, 2}, {3, 2}, {4, 4}, {7, 4}, {8, 8}, {100, 8}}) {
    SweepAdaptiveStack<reclaim::TaggedReclaimer<SimP>> s(
        world, 1, 2, AdaptiveOptions{.initial_shards = requested});
    EXPECT_EQ(s.active_shards(), expected) << "requested " << requested;
  }
}

TEST(AdaptiveWidth, SetActiveShardsIsTheRuntimeDispatch) {
  sim::SimWorld world(1);
  SweepAdaptiveStack<reclaim::TaggedReclaimer<SimP>> s(
      world, 1, 2, AdaptiveOptions{.adaptive = false});
  EXPECT_EQ(s.active_shards(), 1);
  s.set_active_shards(4);
  EXPECT_EQ(s.active_shards(), 4);
  s.set_active_shards(5);  // Rounded down the ladder.
  EXPECT_EQ(s.active_shards(), 4);
  s.set_active_shards(1);
  EXPECT_EQ(s.active_shards(), 1);
}

// ----------------------------------------------------------- sequential

TEST(AdaptiveSequential, WidthOneIsPlainLifo) {
  sim::SimWorld world(1);
  SweepAdaptiveStack<reclaim::TaggedReclaimer<SimP>> s(world, 1, 4, {});
  std::optional<std::uint64_t> r1, r2;
  world.invoke(0, [&] {
    s.push(0, 10);
    s.push(0, 20);
    r1 = s.pop(0);
    r2 = s.pop(0);
  });
  world.run_to_completion(0);
  EXPECT_EQ(s.last_shard(0), 0);
  EXPECT_EQ(r1, std::optional<std::uint64_t>(20));
  EXPECT_EQ(r2, std::optional<std::uint64_t>(10));
}

TEST(AdaptiveSequential, ShrinkStrandsNothing) {
  // Push at width 4 from a pid homed on shard 3, shrink to width 1, and pop
  // from a pid homed on shard 0: the full-width steal scan must find the
  // parked element.
  sim::SimWorld world(4);
  SweepAdaptiveStack<reclaim::TaggedReclaimer<SimP>> s(
      world, 4, 2, AdaptiveOptions{.initial_shards = 4, .adaptive = false});
  world.invoke(3, [&] { s.push(3, 77); });
  world.run_to_completion(3);
  EXPECT_EQ(s.last_shard(3), 3);

  s.set_active_shards(1);
  std::optional<std::uint64_t> got;
  world.invoke(0, [&] { got = s.pop(0); });
  world.run_to_completion(0);
  EXPECT_EQ(got, std::optional<std::uint64_t>(77));
  EXPECT_EQ(s.last_shard(0), 3) << "the take must land on the parked shard";
}

TEST(AdaptiveSequential, PoolPressureFallsThroughToParkedShards) {
  // Width 1 with a one-node shard-0 pool: the second push must overflow
  // into the parked remainder rather than fail (elastic capacity spans the
  // full width, not just the active prefix).
  sim::SimWorld world(1);
  SweepAdaptiveStack<reclaim::TaggedReclaimer<SimP>> s(
      world, 1, 1, AdaptiveOptions{.adaptive = false});
  bool ok1 = false, ok2 = false;
  std::optional<std::uint64_t> r1, r2;
  world.invoke(0, [&] {
    ok1 = s.push(0, 10);
    const int first = s.last_shard(0);
    ABA_CHECK(first == 0);
    ok2 = s.push(0, 20);
    const int second = s.last_shard(0);
    ABA_CHECK(second == 1);
    r1 = s.pop(0);
    r2 = s.pop(0);
  });
  world.run_to_completion(0);
  EXPECT_TRUE(ok1);
  EXPECT_TRUE(ok2);
  EXPECT_EQ(r1, std::optional<std::uint64_t>(10));
  EXPECT_EQ(r2, std::optional<std::uint64_t>(20));
}

// ------------------------------------------------ deterministic adaptation

// Forces one CAS failure on p1: p1 parks poised on its push CAS (3 steps:
// value write, head load, next write), p0 completes a push moving the
// head, then p1 resumes — fail, retry, succeed.
template <class Stack>
void forced_cas_failure_round(sim::SimWorld& world, Stack& s,
                              std::uint64_t& v) {
  bool ok1 = false;
  world.invoke(1, [&s, &ok1, value = v] { ok1 = s.push(1, value); });
  for (int i = 0; i < 3; ++i) world.step(1);
  bool ok0 = false;
  world.invoke(0, [&s, &ok0, value = v + 1] { ok0 = s.push(0, value); });
  world.run_to_completion(0);
  world.run_to_completion(1);
  ABA_CHECK(ok0 && ok1);
  v += 2;
}

TEST(AdaptiveAdaptation, GrowsUnderForcedCasFailuresThenShrinksWhenCalm) {
  sim::SimWorld world(2);
  // Every op is its own adaptation window, no cooldown: each decision is
  // visible immediately, and the schedule below controls the failure rate
  // exactly.
  const AdaptiveOptions options{.initial_shards = 1,
                                .adaptive = true,
                                .sample_interval = 1,
                                .grow_threshold = 0.40,
                                .shrink_threshold = 0.05,
                                .settle_checks = 0};
  SweepAdaptiveStack<reclaim::TaggedReclaimer<SimP>> s(world, 2, 64, options);
  ASSERT_EQ(s.active_shards(), 1);

  // p0's solo push closes a zero-failure window first (no width to shed at
  // 1), then p1's completion closes a window with 1 failure in 1 op.
  std::uint64_t v = 100;
  forced_cas_failure_round(world, s, v);
  EXPECT_EQ(s.cas_failures(), 1u);
  EXPECT_EQ(s.active_shards(), 2) << "a hot failure window must double width";
  const auto switches_after_grow = s.switches();
  EXPECT_EQ(switches_after_grow, 1u);

  // At width 2 the processes are homed apart (0 -> shard 0, 1 -> shard 1):
  // calm, failure-free windows must walk the width back down.
  world.invoke(0, [&] { ABA_CHECK(s.push(0, 1)); });
  world.run_to_completion(0);
  EXPECT_EQ(s.active_shards(), 1) << "a zero-failure window must halve width";
  EXPECT_EQ(s.switches(), switches_after_grow + 1);
}

TEST(AdaptiveAdaptation, SettleChecksDampOscillation) {
  sim::SimWorld world(2);
  const AdaptiveOptions options{.initial_shards = 1,
                                .adaptive = true,
                                .sample_interval = 1,
                                .grow_threshold = 0.40,
                                .shrink_threshold = 0.05,
                                .settle_checks = 2};
  SweepAdaptiveStack<reclaim::TaggedReclaimer<SimP>> s(world, 2, 64, options);

  std::uint64_t v = 100;
  forced_cas_failure_round(world, s, v);
  ASSERT_EQ(s.active_shards(), 2);

  // The two windows after a switch are cooldown: calm traffic must NOT
  // shrink yet…
  for (int i = 0; i < 2; ++i) {
    world.invoke(0, [&] { ABA_CHECK(s.push(0, 1)); });
    world.run_to_completion(0);
    EXPECT_EQ(s.active_shards(), 2) << "cooldown window " << i;
  }
  // …and the third may.
  world.invoke(0, [&] { ABA_CHECK(s.push(0, 1)); });
  world.run_to_completion(0);
  EXPECT_EQ(s.active_shards(), 1);
}

// --------------------------------------------- relaxed-pool sweeps

// Splits a history by the invoker's shard tags and checks each sub-history
// against Spec; also checks multiset conservation. (Same contract as the
// compile-time sharded sweep — the facade adds width movement, never new
// shared state.)
template <class Spec>
void expect_sharded_contract(const std::vector<spec::Op>& ops,
                             const std::vector<int>& shard_of, int num_shards,
                             Method take_method) {
  ASSERT_EQ(ops.size(), shard_of.size());
  std::vector<std::vector<spec::Op>> by_shard(
      static_cast<std::size_t>(num_shards));
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ASSERT_GE(shard_of[i], 0) << "op " << i << " missing its shard tag";
    ASSERT_LT(shard_of[i], num_shards);
    by_shard[static_cast<std::size_t>(shard_of[i])].push_back(ops[i]);
  }
  for (int s = 0; s < num_shards; ++s) {
    const auto& sub = by_shard[static_cast<std::size_t>(s)];
    const auto result = spec::check_linearizable<Spec>(sub, Spec::initial());
    EXPECT_TRUE(result.linearizable)
        << "shard " << s << " sub-history not linearizable\n"
        << spec::explain(sub, result);
  }
  std::map<std::uint64_t, long> balance;  // pushes minus pops, per value
  for (const auto& op : ops) {
    if (op.method != take_method && op.ret == 1) ++balance[op.arg];
  }
  for (const auto& op : ops) {
    if (op.method == take_method && op.ret != 0) {
      const std::uint64_t value = op.ret - 1;  // pack_opt inverse
      auto it = balance.find(value);
      ASSERT_TRUE(it != balance.end() && it->second > 0)
          << "popped value " << value << " never pushed (or popped twice)";
      --it->second;
    }
  }
}

std::vector<WorkloadOp> random_workload(int n, int ops, std::uint64_t seed,
                                        Method put, Method take) {
  util::Xoshiro256 rng(seed);
  std::vector<WorkloadOp> workload;
  for (int pid = 0; pid < n; ++pid) {
    for (int i = 0; i < ops; ++i) {
      if (rng.chance(1, 2)) {
        workload.push_back({pid, put, rng.below(100)});
      } else {
        workload.push_back({pid, take, 0});
      }
    }
  }
  return workload;
}

// Aggressive adaptation during the sweep (tiny windows, no cooldown) so
// width movement happens inside the measured histories.
constexpr AdaptiveOptions kSweepOptions{.initial_shards = 2,
                                        .adaptive = true,
                                        .sample_interval = 2,
                                        .grow_threshold = 0.20,
                                        .shrink_threshold = 0.05,
                                        .settle_checks = 0};

template <class R>
void adaptive_stack_sweep() {
  using Stack = SweepAdaptiveStack<R>;
  for (int n : {2, 3}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      sim::SimWorld world(n);
      world.set_trace_enabled(false);
      spec::History history;
      harness::AdaptiveStackInvoker<Stack> invoker(
          world, history, std::make_unique<Stack>(world, n, 4, kSweepOptions));
      harness::ScheduleLog log;
      harness::drive_random_schedule(
          world, invoker, n,
          random_workload(n, 6, seed, Method::kPush, Method::kPop),
          seed * 857 + 23, &log);
      SCOPED_TRACE(::testing::Message() << "n=" << n << " seed=" << seed
                                        << "\n" << log.to_string());
      expect_sharded_contract<spec::StackSpec>(history.ops(),
                                               invoker.shard_of(),
                                               Stack::kMaxShards, Method::kPop);
    }
  }
}

TEST(AdaptiveSweep, StackTaggedReclaimer) {
  adaptive_stack_sweep<reclaim::TaggedReclaimer<SimP>>();
}
TEST(AdaptiveSweep, StackCachedHazardReclaimer) {
  adaptive_stack_sweep<reclaim::CachedHazardPointerReclaimer<SimP>>();
}
TEST(AdaptiveSweep, StackHazardReclaimer) {
  adaptive_stack_sweep<reclaim::HazardPointerReclaimer<SimP>>();
}

template <class R>
void adaptive_queue_sweep() {
  using Queue = AdaptiveShardedQueue<SimP, R>;
  for (int n : {2, 3}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      sim::SimWorld world(n);
      world.set_trace_enabled(false);
      spec::History history;
      harness::AdaptiveQueueInvoker<Queue> invoker(
          world, history,
          std::make_unique<Queue>(world, n, 4, kSweepOptions));
      harness::ScheduleLog log;
      harness::drive_random_schedule(
          world, invoker, n,
          random_workload(n, 6, seed, Method::kEnq, Method::kDeq),
          seed * 863 + 29, &log);
      SCOPED_TRACE(::testing::Message() << "n=" << n << " seed=" << seed
                                        << "\n" << log.to_string());
      expect_sharded_contract<spec::QueueSpec>(history.ops(),
                                               invoker.shard_of(),
                                               Queue::kMaxShards, Method::kDeq);
    }
  }
}

TEST(AdaptiveSweep, QueueTaggedReclaimer) {
  adaptive_queue_sweep<reclaim::TaggedReclaimer<SimP>>();
}
TEST(AdaptiveSweep, QueueCachedHazardReclaimer) {
  adaptive_queue_sweep<reclaim::CachedHazardPointerReclaimer<SimP>>();
}

// ------------------------------------------- Fast ≡ Counted determinism

// Token-serialized native workload with adaptation live: width decisions
// are a pure function of the serialized op/failure sequence, so the
// platform policy must not change them — or any result.
template <class P>
std::vector<std::uint64_t> tokenized_adaptive_trace(int n, int rounds) {
  using Stack = AdaptiveShardedStack<P, TaggedCasHead<P>,
                                     reclaim::TaggedReclaimer<P>, 4>;
  using Queue = AdaptiveShardedQueue<P, reclaim::TaggedReclaimer<P>, 4>;
  const AdaptiveOptions options{.initial_shards = 1,
                                .adaptive = true,
                                .sample_interval = 4,
                                .grow_threshold = 0.10,
                                .shrink_threshold = 0.01,
                                .settle_checks = 1};
  typename P::Env env;
  Stack stack(env, n, Stack::make_heads(env, n), 8, options);
  Queue queue(env, n, 8, options);
  std::vector<std::uint64_t> trace(static_cast<std::size_t>(n) * rounds, 0);
  std::atomic<int> turn{0};
  std::vector<std::thread> threads;
  for (int pid = 0; pid < n; ++pid) {
    threads.emplace_back([&, pid] {
      for (int r = 0; r < rounds; ++r) {
        const int my_step = r * n + pid;
        while (turn.load() != my_step) std::this_thread::yield();
        std::uint64_t result = 0;
        switch ((pid + r) % 4) {
          case 0:
            result = stack.push(pid, static_cast<std::uint64_t>(my_step)) ? 1 : 0;
            break;
          case 1: {
            const auto v = stack.pop(pid);
            result = spec::pack_opt(v.has_value(), v.has_value() ? *v : 0);
            break;
          }
          case 2:
            result = queue.enqueue(pid, static_cast<std::uint64_t>(my_step)) ? 1 : 0;
            break;
          default: {
            const auto v = queue.dequeue(pid);
            result = spec::pack_opt(v.has_value(), v.has_value() ? *v : 0);
            break;
          }
        }
        // Fold the live width into the trace so a policy-dependent
        // adaptation divergence fails the comparison even if every op
        // result happens to match.
        trace[static_cast<std::size_t>(my_step)] =
            (result << 8) | static_cast<std::uint64_t>(stack.active_shards());
        turn.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  return trace;
}

TEST(AdaptiveNativePolicy, FastMatchesCountedWithAdaptationLive) {
  using CountedP = native::NativePlatform<native::Counted>;
  using FastP = native::NativePlatform<native::Fast>;
  const auto counted = tokenized_adaptive_trace<CountedP>(3, 48);
  const auto fast = tokenized_adaptive_trace<FastP>(3, 48);
  EXPECT_EQ(counted, fast);
}

// ----------------------------------------------------- native stress

TEST(AdaptiveNativeStress, StackBalancedAccounting) {
  using Stack = AdaptiveShardedStack<NativeP, TaggedCasHead<NativeP>,
                                     reclaim::TaggedReclaimer<NativeP>, 8>;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1500;
  typename NativeP::Env env;
  const AdaptiveOptions options{.initial_shards = 1,
                                .adaptive = true,
                                .sample_interval = 64,
                                .grow_threshold = 0.05,
                                .shrink_threshold = 0.005,
                                .settle_checks = 1};
  Stack stack(env, kThreads, Stack::make_heads(env, kThreads), 256, options);

  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<std::uint64_t> pushed_count{0}, popped_count{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.chance(1, 2)) {
          const std::uint64_t v = rng.below(1000) + 1;
          if (stack.push(tid, v)) {
            pushed_sum.fetch_add(v);
            pushed_count.fetch_add(1);
          }
        } else {
          const auto v = stack.pop(tid);
          if (v.has_value()) {
            popped_sum.fetch_add(*v);
            popped_count.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Quiescent full-width drain: whatever width the facade settled on, and
  // wherever shrink parked elements, every pushed value must surface once.
  for (;;) {
    const auto v = stack.pop(0);
    if (!v.has_value()) break;
    popped_sum.fetch_add(*v);
    popped_count.fetch_add(1);
  }
  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
  EXPECT_EQ(pushed_count.load(), popped_count.load());
  const int width = stack.active_shards();
  EXPECT_GE(width, 1);
  EXPECT_LE(width, 8);
}

TEST(AdaptiveNativeStress, QueueCachedHazardBalancedAccounting) {
  using Queue = AdaptiveShardedQueue<
      NativeP, reclaim::CachedHazardPointerReclaimer<NativeP>, 4>;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1000;
  typename NativeP::Env env;
  const AdaptiveOptions options{.initial_shards = 2,
                                .adaptive = true,
                                .sample_interval = 64,
                                .grow_threshold = 0.05,
                                .shrink_threshold = 0.005,
                                .settle_checks = 1};
  Queue queue(env, kThreads, 256, options);

  std::atomic<std::uint64_t> enq_sum{0}, deq_sum{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(tid) + 17);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.chance(1, 2)) {
          const std::uint64_t v = rng.below(1000) + 1;
          if (queue.enqueue(tid, v)) enq_sum.fetch_add(v);
        } else {
          const auto v = queue.dequeue(tid);
          if (v.has_value()) deq_sum.fetch_add(*v);
        }
      }
      queue.detach(tid);  // Cached guards release on structure exit.
    });
  }
  for (auto& t : threads) t.join();
  for (;;) {
    const auto v = queue.dequeue(0);
    if (!v.has_value()) break;
    deq_sum.fetch_add(*v);
  }
  EXPECT_EQ(enq_sum.load(), deq_sum.load());
}

}  // namespace
}  // namespace aba::structures
