// Crash-robustness tests over the simulator (reclaim/death.h + the crash
// support in SimWorld and the schedule-search engine):
//
//   * SimWorld crash semantics: a crashed process stops being runnable, its
//     queued workload is abandoned, its pending op stays incomplete
//     (History::completed_ops skips it), and the rest of the execution
//     drains normally;
//   * the two-phase suspect/confirm death handshake in isolation: a
//     suspicion must be confirmed on a *later* visit, a live process vetoes
//     it in between, and an expropriated process self-fences with
//     LeaseRevoked instead of touching shared state;
//   * the death-at-every-phase sweep — the ISSUE's sim-side robustness
//     gate: for every reclaimer family and every reachable ReclaimPhase,
//     kill the victim poised exactly there and assert the survivor
//     expropriates (>= 1 confirmed drain) and that the pool conserves:
//
//       free + retired + quarantined == pool − in_structure + adjust
//
//     where in_structure is computed from the *completed* history
//     (successful puts minus non-empty takes) and adjust is +1 exactly when
//     the victim died mid-retire — its take took effect (the node left the
//     structure) but the op never completed, so the history over-counts the
//     structure by one node, which the expropriator re-homed onto a
//     retired/limbo list;
//   * the searcher with max_crashes > 0 finds schedules containing crash
//     grants that replay deterministically and recover (expropriations in
//     the drained final stats).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "reclaim/death.h"
#include "reclaim/reclaimer.h"
#include "sim/schedule_search.h"
#include "spec/history.h"
#include "util/assert.h"

namespace aba::search {
namespace {

using harness::WorkloadOp;
using reclaim::ReclaimPhase;
using spec::Method;

constexpr int kProcs = 2;

// A symmetric storm: BOTH processes run `cycles` put/take pairs, so either
// one can serve as the crash victim while the other still has enough
// retires left to drive the two-phase handshake to confirmation.
std::vector<WorkloadOp> both_storm(bool is_queue, int cycles) {
  std::vector<WorkloadOp> workload;
  const Method put = is_queue ? Method::kEnq : Method::kPush;
  const Method take = is_queue ? Method::kDeq : Method::kPop;
  for (int pid = 0; pid < kProcs; ++pid) {
    for (int c = 0; c < cycles; ++c) {
      workload.push_back(
          {pid, put, static_cast<std::uint64_t>(pid * 1000 + c)});
      workload.push_back({pid, take, 0});
    }
  }
  return workload;
}

// Net nodes the *completed* history left inside the structure.
long in_structure(const std::vector<spec::Op>& ops, Method take) {
  long net = 0;
  for (const auto& op : ops) {
    if (op.method != take && op.ret == 1) ++net;
    if (op.method == take && op.ret != 0) --net;
  }
  return net;
}

// Multiset conservation on the completed history: no value taken that was
// never successfully put.
void expect_conserved(const std::vector<spec::Op>& ops, Method take) {
  std::map<std::uint64_t, long> balance;
  for (const auto& op : ops) {
    if (op.method != take && op.ret == 1) ++balance[op.arg];
  }
  for (const auto& op : ops) {
    if (op.method == take && op.ret != 0) {
      auto it = balance.find(op.ret - 1);  // pack_opt inverse
      ASSERT_TRUE(it != balance.end() && it->second > 0)
          << "taken value " << (op.ret - 1) << " never put (or taken twice)";
      --it->second;
    }
  }
}

// ---------------------------------------------------- SimWorld crash units

TEST(CrashSim, CrashedProcessStopsAndRestDrains) {
  const std::string name = "stack_hazard";
  ScheduleRunner runner(reclaim_fixture(name)(kProcs),
                        both_storm(/*is_queue=*/false, 4),
                        retired_unreclaimed_cost);
  EXPECT_FALSE(runner.fixture().world->is_crashed(1));

  // Put the victim mid-op (a few granted steps into its first push), then
  // kill it there.
  runner.grant(1);
  runner.grant(1);
  runner.grant(crash_grant(1));
  EXPECT_TRUE(runner.fixture().world->is_crashed(1));
  EXPECT_FALSE(runner.runnable(1));
  EXPECT_EQ(runner.ops_remaining(1), 0) << "queued ops must be abandoned";

  // The survivor drains to completion; the whole execution counts as done
  // even though the victim never ran its remaining ops.
  while (runner.runnable(0)) runner.grant(0);
  EXPECT_TRUE(runner.all_done());

  // The victim's pending op is incomplete forever; completed_ops() skips
  // exactly that one.
  const auto ops = runner.fixture().history->completed_ops();
  for (const auto& op : ops) EXPECT_NE(op.pid, 1);
  EXPECT_LT(ops.size(), runner.fixture().history->size());
  expect_conserved(ops, Method::kPop);
}

TEST(CrashSim, CrashGrantIsRecordedInScript) {
  const std::string name = "stack_epoch";
  ScheduleRunner runner(reclaim_fixture(name)(kProcs),
                        both_storm(false, 2), retired_unreclaimed_cost);
  runner.grant(1);
  runner.grant(crash_grant(1));
  while (runner.runnable(0)) runner.grant(0);

  const ScheduleScript script = runner.script();
  const auto n_crash =
      std::count_if(script.grants.begin(), script.grants.end(),
                    [](int g) { return is_crash_grant(g); });
  EXPECT_EQ(n_crash, 1);
  // And it round-trips through the text form.
  const auto parsed = ScheduleScript::parse(script.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->grants, script.grants);
}

// ------------------------------------------- two-phase handshake in vitro

TEST(DeathHandshake, SuspectThenConfirmAcrossVisits) {
  std::atomic<std::uint8_t> death{reclaim::kDeathLive};
  EXPECT_EQ(reclaim::advance_death(death), reclaim::DeathStep::kSuspected);
  EXPECT_EQ(reclaim::advance_death(death), reclaim::DeathStep::kConfirmed);
  EXPECT_EQ(reclaim::advance_death(death),
            reclaim::DeathStep::kAlreadyExpropriated);
}

TEST(DeathHandshake, FalseSuspicionIsVetoedByTheLiveProcess) {
  std::atomic<std::uint8_t> death{reclaim::kDeathLive};
  // A lying oracle suspects a perfectly live process...
  EXPECT_EQ(reclaim::advance_death(death), reclaim::DeathStep::kSuspected);
  // ...which vetoes at its next reclaimer entry point (no throw)...
  EXPECT_NO_THROW(reclaim::death_self_check(death));
  EXPECT_EQ(death.load(), reclaim::kDeathLive);
  // ...so the next survivor visit starts over at suspicion, never confirm.
  EXPECT_EQ(reclaim::advance_death(death), reclaim::DeathStep::kSuspected);
}

TEST(DeathHandshake, ExpropriatedProcessSelfFences) {
  std::atomic<std::uint8_t> death{reclaim::kDeathLive};
  reclaim::advance_death(death);  // Suspect.
  reclaim::advance_death(death);  // Confirm: a survivor owns the lists now.
  EXPECT_THROW(reclaim::death_self_check(death), reclaim::LeaseRevoked);
  // Self-fencing must not have altered the word (the survivor's ownership
  // is permanent).
  EXPECT_EQ(death.load(), reclaim::kDeathExpropriated);
}

// ----------------------------------------- death at every reachable phase

// Drives victim pid 1 solo until its reclaimer reports `target`, kills it
// poised exactly there, lets the survivor storm run to completion, and
// checks expropriation + pool conservation.
void crash_sweep_case(const std::string& fixture_name, ReclaimPhase target) {
  SCOPED_TRACE(fixture_name + " @ " + std::string(reclaim::to_string(target)));
  const bool is_queue = fixture_name.rfind("queue", 0) == 0;
  ScheduleRunner runner(reclaim_fixture(fixture_name)(kProcs),
                        both_storm(is_queue, 32), retired_unreclaimed_cost);

  bool reached = false;
  while (runner.runnable(1)) {
    if (runner.invoker().reclaim_phase(1) == target) {
      reached = true;
      break;
    }
    runner.grant(1);
  }
  ASSERT_TRUE(reached) << "victim never reached the target phase";
  runner.grant(crash_grant(1));

  while (runner.runnable(0)) runner.grant(0);
  EXPECT_TRUE(runner.all_done());

  const reclaim::ReclaimStats s = runner.invoker().reclaim_stats();
  EXPECT_GE(s.expropriations, 1u)
      << "the survivor never expropriated the dead lease";
  EXPECT_LE(s.quarantined, 1u) << "quarantine must cost at most one node";

  const Method take = is_queue ? Method::kDeq : Method::kPop;
  const auto ops = runner.fixture().history->completed_ops();
  expect_conserved(ops, take);
  // Conservation: mid-retire deaths removed one node from the structure
  // without completing the op that did it (see the file comment).
  const long adjust = target == ReclaimPhase::kMidRetire ? 1 : 0;
  EXPECT_EQ(static_cast<long>(s.free_nodes + s.retired_unreclaimed +
                              s.quarantined),
            static_cast<long>(s.pool_size) - in_structure(ops, take) + adjust);
}

TEST(CrashSweep, StackHazardAllPhases) {
  for (const ReclaimPhase phase :
       {ReclaimPhase::kInRegion, ReclaimPhase::kGuardPublished,
        ReclaimPhase::kMidRetire}) {
    crash_sweep_case("stack_hazard", phase);
  }
}

TEST(CrashSweep, StackHazardCachedAllPhases) {
  for (const ReclaimPhase phase :
       {ReclaimPhase::kInRegion, ReclaimPhase::kGuardPublished,
        ReclaimPhase::kMidRetire}) {
    crash_sweep_case("stack_hazard_cached", phase);
  }
}

TEST(CrashSweep, StackEpochAllPhases) {
  // Epoch regions never report kInRegion (begin_op goes straight to the
  // announcement) and publish no guards; the reachable vulnerable phases
  // are the frozen announcement and mid-retire.
  for (const ReclaimPhase phase :
       {ReclaimPhase::kEpochAnnounced, ReclaimPhase::kMidRetire}) {
    crash_sweep_case("stack_epoch", phase);
  }
}

TEST(CrashSweep, QueueHazardAllPhases) {
  for (const ReclaimPhase phase :
       {ReclaimPhase::kInRegion, ReclaimPhase::kGuardPublished,
        ReclaimPhase::kMidRetire}) {
    crash_sweep_case("queue_hazard", phase);
  }
}

TEST(CrashSweep, QueueHazardCachedAllPhases) {
  for (const ReclaimPhase phase :
       {ReclaimPhase::kInRegion, ReclaimPhase::kGuardPublished,
        ReclaimPhase::kMidRetire}) {
    crash_sweep_case("queue_hazard_cached", phase);
  }
}

TEST(CrashSweep, QueueEpochAllPhases) {
  for (const ReclaimPhase phase :
       {ReclaimPhase::kEpochAnnounced, ReclaimPhase::kMidRetire}) {
    crash_sweep_case("queue_epoch", phase);
  }
}

// -------------------------------------------------- searched crash events

// With a crash budget the explorer must find schedules that kill a process
// at a vulnerable phase — and those schedules must replay deterministically
// and *recover* (the drained execution shows a confirmed expropriation).
void expect_searched_crash_recovers(const std::string& fixture_name) {
  SCOPED_TRACE(fixture_name);
  const auto factory = reclaim_fixture(fixture_name);
  // A symmetric 24-cycle storm: whichever process the searcher kills, the
  // survivor still retires enough to drive the two-phase handshake to
  // confirmation during the replay's drain.
  const bool is_queue = fixture_name.rfind("queue", 0) == 0;
  const auto workload = both_storm(is_queue, 24);

  SearchOptions options;
  options.top_k = 8;
  options.context_bound = 3;
  options.max_executions = 48;
  options.max_crashes = 1;
  ScheduleExplorer explorer(factory, kProcs, workload,
                            retired_unreclaimed_cost, options);
  const SearchResult result = explorer.run();
  ASSERT_FALSE(result.best.empty());

  const FoundSchedule* crashed = nullptr;
  for (const FoundSchedule& found : result.best) {
    if (std::any_of(found.script.grants.begin(), found.script.grants.end(),
                    [](int g) { return is_crash_grant(g); })) {
      crashed = &found;
      break;
    }
  }
  ASSERT_NE(crashed, nullptr)
      << "search with a crash budget found no crash schedule";

  const ReplayResult first =
      ScheduleExplorer::replay(factory, crashed->script,
                               retired_unreclaimed_cost);
  const ReplayResult second =
      ScheduleExplorer::replay(factory, crashed->script,
                               retired_unreclaimed_cost);
  EXPECT_EQ(first.peak_cost, crashed->peak_cost);
  EXPECT_EQ(first.peak_cost, second.peak_cost);
  EXPECT_EQ(first.trace.size(), second.trace.size());
  EXPECT_GE(first.final_stats.expropriations, 1u)
      << "the drained replay never recovered the dead lease";
  expect_conserved(first.history, is_queue ? Method::kDeq : Method::kPop);
}

TEST(CrashSearch, FindsRecoveringCrashScheduleStackHazardCached) {
  expect_searched_crash_recovers("stack_hazard_cached");
}

TEST(CrashSearch, FindsRecoveringCrashScheduleStackEpoch) {
  expect_searched_crash_recovers("stack_epoch");
}

TEST(CrashSearch, ZeroBudgetSearchStaysCrashFree) {
  const std::string name = "stack_hazard_cached";
  const auto factory = reclaim_fixture(name);
  const auto workload = storm_workload(name, kProcs, 8);
  SearchOptions options;
  options.top_k = 4;
  options.max_executions = 32;  // max_crashes stays at its default of 0.
  ScheduleExplorer explorer(factory, kProcs, workload,
                            retired_unreclaimed_cost, options);
  const SearchResult result = explorer.run();
  for (const FoundSchedule& found : result.best) {
    for (const int g : found.script.grants) EXPECT_FALSE(is_crash_grant(g));
  }
}

}  // namespace
}  // namespace aba::search
