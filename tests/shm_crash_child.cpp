// The sacrificial worker of the multi-process crash harness.
//
//   shm_crash_child <segment-name> <kind> <park-point> <cycles>
//
// Attaches to the driver's segment, acquires lease slot 1, waits until the
// driver plants a park request on that lease, then storms put/take cycles.
// The leased reclaimers call PidLeaseTable::maybe_park at each instrumented
// instant (guard just published, epoch just announced, mid-retire), so the
// worker ends up spinning at the requested vulnerable point with its
// protocol state still published — which is where the driver SIGKILLs it.
// Every exit path other than the kill reports a distinct code so the driver
// can tell "never parked" from "lease revoked" from "bad invocation".
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "shm_crash_common.h"

namespace {

constexpr int kExitBadArgs = 3;
constexpr int kExitFinishedWithoutPark = 2;
constexpr int kExitLeaseRevoked = 4;
constexpr int kExitWrongSlot = 5;

}  // namespace

int main(int argc, char** argv) {
  using namespace aba::shm;
  using namespace aba::shm::crash;

  if (argc != 5) {
    std::fprintf(stderr, "usage: %s <segment> <kind> <park-point> <cycles>\n",
                 argv[0]);
    return kExitBadArgs;
  }
  const std::string segment_name = argv[1];
  const std::string kind = argv[2];
  const std::uint64_t park_point =
      static_cast<std::uint64_t>(std::strtoull(argv[3], nullptr, 10));
  const int cycles = std::atoi(argv[4]);

  CrashWorld world(ShmSegment::attach(segment_name), /*owner=*/false, kind);
  const int slot = world.leases.acquire();
  if (slot != kVictimSlot) return kExitWrongSlot;

  // Self-plant the park request (acquire() just reset it): the reclaimer
  // will park us at that instant and raise park_ack, which is the driver's
  // signal to shoot. Planting driver-side would race with acquire's reset.
  LeaseRecord& rec = world.leases.record(slot);
  rec.park_request.store(park_point, std::memory_order_release);

  try {
    if (kind == kKindQueueEpochBatch) {
      // Batch kind: storm the reclaimer's batched hand-off directly so the
      // mid-retire park catches us with a STAGED pending window.
      for (int c = 0; c < cycles; ++c) {
        if (!world.batch_retire_cycle(slot)) break;
      }
    } else {
      for (int c = 0; c < cycles; ++c) {
        if (!world.put(slot, 1000u + static_cast<std::uint64_t>(c))) break;
        world.take(slot);
      }
    }
  } catch (const aba::reclaim::LeaseRevoked&) {
    return kExitLeaseRevoked;
  }
  // Reaching here means the park point never caught us — the driver wanted
  // us dead mid-protocol, so a clean finish is a harness failure.
  return kExitFinishedWithoutPark;
}
