// Tests for the sequential specifications and the linearizability checker,
// on hand-crafted histories with known verdicts. The checker is itself part
// of the verification infrastructure, so these tests pin its behaviour
// before it is used to judge the paper's algorithms.
#include <gtest/gtest.h>

#include "spec/history.h"
#include "spec/lin_checker.h"
#include "spec/specs.h"

namespace aba::spec {
namespace {

Op make_op(int pid, Method m, std::uint64_t arg, std::uint64_t ret,
           std::uint64_t inv, std::uint64_t resp) {
  Op op;
  op.pid = pid;
  op.method = m;
  op.arg = arg;
  op.ret = ret;
  op.invoke_ts = inv;
  op.response_ts = resp;
  return op;
}

// ------------------------------------------------------------ RegisterSpec

TEST(RegisterSpecCheck, SequentialReadsSeeWrites) {
  std::vector<Op> ops = {
      make_op(0, Method::kWrite, 5, 0, 0, 1),
      make_op(1, Method::kRead, 0, 5, 2, 3),
  };
  EXPECT_TRUE(check_linearizable<RegisterSpec>(ops, RegisterSpec::initial(0)));
}

TEST(RegisterSpecCheck, StaleSequentialReadRejected) {
  std::vector<Op> ops = {
      make_op(0, Method::kWrite, 5, 0, 0, 1),
      make_op(1, Method::kRead, 0, 0, 2, 3),  // Reads initial after write.
  };
  EXPECT_FALSE(check_linearizable<RegisterSpec>(ops, RegisterSpec::initial(0)));
}

TEST(RegisterSpecCheck, OverlappingReadMayGoEitherWay) {
  // Read overlaps the write: both old and new values are linearizable.
  for (std::uint64_t ret : {0ull, 5ull}) {
    std::vector<Op> ops = {
        make_op(0, Method::kWrite, 5, 0, 0, 3),
        make_op(1, Method::kRead, 0, ret, 1, 2),
    };
    EXPECT_TRUE(check_linearizable<RegisterSpec>(ops, RegisterSpec::initial(0)))
        << "ret=" << ret;
  }
}

TEST(RegisterSpecCheck, ImpossibleValueRejected) {
  std::vector<Op> ops = {
      make_op(0, Method::kWrite, 5, 0, 0, 3),
      make_op(1, Method::kRead, 0, 7, 1, 2),
  };
  EXPECT_FALSE(check_linearizable<RegisterSpec>(ops, RegisterSpec::initial(0)));
}

// ---------------------------------------------------------- AbaRegisterSpec

TEST(AbaRegSpecCheck, FirstReadIsCleanWithoutWrites) {
  std::vector<Op> ops = {
      make_op(1, Method::kDRead, 0, pack_dread_result(9, false), 0, 1),
  };
  EXPECT_TRUE(check_linearizable<AbaRegisterSpec>(
      ops, AbaRegisterSpec::initial(2, 9)));
}

TEST(AbaRegSpecCheck, FirstReadFlagTrueWithoutWritesRejected) {
  std::vector<Op> ops = {
      make_op(1, Method::kDRead, 0, pack_dread_result(9, true), 0, 1),
  };
  EXPECT_FALSE(check_linearizable<AbaRegisterSpec>(
      ops, AbaRegisterSpec::initial(2, 9)));
}

TEST(AbaRegSpecCheck, WriteThenReadSetsFlagOnce) {
  std::vector<Op> ops = {
      make_op(0, Method::kDWrite, 4, 0, 0, 1),
      make_op(1, Method::kDRead, 0, pack_dread_result(4, true), 2, 3),
      make_op(1, Method::kDRead, 0, pack_dread_result(4, false), 4, 5),
  };
  EXPECT_TRUE(check_linearizable<AbaRegisterSpec>(
      ops, AbaRegisterSpec::initial(2, 0)));
}

TEST(AbaRegSpecCheck, MissedWriteRejected) {
  // Write completes strictly between two reads; second read must flag it.
  std::vector<Op> ops = {
      make_op(1, Method::kDRead, 0, pack_dread_result(0, false), 0, 1),
      make_op(0, Method::kDWrite, 0, 0, 2, 3),  // ABA: writes the same value.
      make_op(1, Method::kDRead, 0, pack_dread_result(0, false), 4, 5),
  };
  EXPECT_FALSE(check_linearizable<AbaRegisterSpec>(
      ops, AbaRegisterSpec::initial(2, 0)));
}

TEST(AbaRegSpecCheck, AbaWriteDetected) {
  // The same history with the flag reported is accepted — this is exactly
  // the ABA-detection property.
  std::vector<Op> ops = {
      make_op(1, Method::kDRead, 0, pack_dread_result(0, false), 0, 1),
      make_op(0, Method::kDWrite, 0, 0, 2, 3),
      make_op(1, Method::kDRead, 0, pack_dread_result(0, true), 4, 5),
  };
  EXPECT_TRUE(check_linearizable<AbaRegisterSpec>(
      ops, AbaRegisterSpec::initial(2, 0)));
}

TEST(AbaRegSpecCheck, FlagIsPerProcess) {
  // p1 consumes the write's flag; p2 must still see it.
  std::vector<Op> ops = {
      make_op(0, Method::kDWrite, 7, 0, 0, 1),
      make_op(1, Method::kDRead, 0, pack_dread_result(7, true), 2, 3),
      make_op(2, Method::kDRead, 0, pack_dread_result(7, true), 4, 5),
      make_op(1, Method::kDRead, 0, pack_dread_result(7, false), 6, 7),
  };
  EXPECT_TRUE(check_linearizable<AbaRegisterSpec>(
      ops, AbaRegisterSpec::initial(3, 0)));
}

TEST(AbaRegSpecCheck, OverlappingWriteAllowsEitherFlag) {
  for (bool flag : {false, true}) {
    std::vector<Op> ops = {
        make_op(0, Method::kDWrite, 3, 0, 0, 5),
        make_op(1, Method::kDRead, 0,
                pack_dread_result(flag ? 3 : 0, flag), 1, 2),
    };
    EXPECT_TRUE(check_linearizable<AbaRegisterSpec>(
        ops, AbaRegisterSpec::initial(2, 0)))
        << "flag=" << flag;
  }
}

TEST(AbaRegSpecCheck, FlagValueMismatchRejected) {
  // Read returns the new value but no flag, with the write completed before.
  std::vector<Op> ops = {
      make_op(0, Method::kDWrite, 3, 0, 0, 1),
      make_op(1, Method::kDRead, 0, pack_dread_result(3, false), 2, 3),
  };
  EXPECT_FALSE(check_linearizable<AbaRegisterSpec>(
      ops, AbaRegisterSpec::initial(2, 0)));
}

// ----------------------------------------------------------------- LlscSpec

TEST(LlscSpecCheck, LlScSucceedsAlone) {
  std::vector<Op> ops = {
      make_op(0, Method::kLL, 0, 0, 0, 1),
      make_op(0, Method::kSC, 9, 1, 2, 3),
      make_op(0, Method::kLL, 0, 9, 4, 5),
  };
  EXPECT_TRUE(check_linearizable<LlscSpec>(ops, LlscSpec::initial(2, 0, false)));
}

TEST(LlscSpecCheck, ScWithoutLlFailsWhenInitiallyUnlinked) {
  std::vector<Op> ops = {
      make_op(0, Method::kSC, 9, 1, 0, 1),
  };
  EXPECT_FALSE(check_linearizable<LlscSpec>(ops, LlscSpec::initial(2, 0, false)));
  EXPECT_TRUE(check_linearizable<LlscSpec>(ops, LlscSpec::initial(2, 0, true)));
}

TEST(LlscSpecCheck, InterveningScForcesFailure) {
  std::vector<Op> ops = {
      make_op(0, Method::kLL, 0, 0, 0, 1),
      make_op(1, Method::kLL, 0, 0, 2, 3),
      make_op(1, Method::kSC, 5, 1, 4, 5),
      make_op(0, Method::kSC, 9, 1, 6, 7),  // Claims success: must fail.
  };
  EXPECT_FALSE(check_linearizable<LlscSpec>(ops, LlscSpec::initial(2, 0, false)));
  ops[3].ret = 0;  // Reporting failure is the only legal outcome.
  EXPECT_TRUE(check_linearizable<LlscSpec>(ops, LlscSpec::initial(2, 0, false)));
}

TEST(LlscSpecCheck, VlReflectsLinkState) {
  std::vector<Op> ops = {
      make_op(0, Method::kLL, 0, 0, 0, 1),
      make_op(0, Method::kVL, 0, 1, 2, 3),
      make_op(1, Method::kLL, 0, 0, 4, 5),
      make_op(1, Method::kSC, 5, 1, 6, 7),
      make_op(0, Method::kVL, 0, 0, 8, 9),
  };
  EXPECT_TRUE(check_linearizable<LlscSpec>(ops, LlscSpec::initial(2, 0, false)));
}

TEST(LlscSpecCheck, FailedScDoesNotBreakOthersLinks) {
  std::vector<Op> ops = {
      make_op(0, Method::kLL, 0, 0, 0, 1),
      make_op(1, Method::kSC, 5, 0, 2, 3),  // Fails (p1 unlinked).
      make_op(0, Method::kSC, 9, 1, 4, 5),  // p0 still linked: succeeds.
  };
  EXPECT_TRUE(check_linearizable<LlscSpec>(ops, LlscSpec::initial(2, 0, false)));
}

TEST(LlscSpecCheck, ConcurrentScsOnlyOneSucceeds) {
  // Two overlapping SCs after fresh LLs: both claiming success is invalid.
  std::vector<Op> ops = {
      make_op(0, Method::kLL, 0, 0, 0, 1),
      make_op(1, Method::kLL, 0, 0, 2, 3),
      make_op(0, Method::kSC, 7, 1, 4, 7),
      make_op(1, Method::kSC, 8, 1, 5, 6),
  };
  EXPECT_FALSE(check_linearizable<LlscSpec>(ops, LlscSpec::initial(2, 0, false)));
  ops[2].ret = 0;
  EXPECT_TRUE(check_linearizable<LlscSpec>(ops, LlscSpec::initial(2, 0, false)));
}

TEST(LlscSpecCheck, LlReturnsLatestSuccessfulScValue) {
  std::vector<Op> ops = {
      make_op(0, Method::kLL, 0, 0, 0, 1),
      make_op(0, Method::kSC, 7, 1, 2, 3),
      make_op(1, Method::kLL, 0, 0, 4, 5),  // Must see 7, not 0.
  };
  EXPECT_FALSE(check_linearizable<LlscSpec>(ops, LlscSpec::initial(2, 0, false)));
  ops[2].ret = 7;
  EXPECT_TRUE(check_linearizable<LlscSpec>(ops, LlscSpec::initial(2, 0, false)));
}

// ------------------------------------------------------- Stack / Queue specs

TEST(StackSpecCheck, LifoOrder) {
  std::vector<Op> ops = {
      make_op(0, Method::kPush, 1, 1, 0, 1),
      make_op(0, Method::kPush, 2, 1, 2, 3),
      make_op(1, Method::kPop, 0, pack_opt(true, 2), 4, 5),
      make_op(1, Method::kPop, 0, pack_opt(true, 1), 6, 7),
      make_op(1, Method::kPop, 0, pack_opt(false, 0), 8, 9),
  };
  EXPECT_TRUE(check_linearizable<StackSpec>(ops, StackSpec::initial()));
}

TEST(StackSpecCheck, FifoOrderRejected) {
  std::vector<Op> ops = {
      make_op(0, Method::kPush, 1, 1, 0, 1),
      make_op(0, Method::kPush, 2, 1, 2, 3),
      make_op(1, Method::kPop, 0, pack_opt(true, 1), 4, 5),
  };
  EXPECT_FALSE(check_linearizable<StackSpec>(ops, StackSpec::initial()));
}

TEST(QueueSpecCheck, FifoOrder) {
  std::vector<Op> ops = {
      make_op(0, Method::kEnq, 1, 1, 0, 1),
      make_op(0, Method::kEnq, 2, 1, 2, 3),
      make_op(1, Method::kDeq, 0, pack_opt(true, 1), 4, 5),
      make_op(1, Method::kDeq, 0, pack_opt(true, 2), 6, 7),
      make_op(1, Method::kDeq, 0, pack_opt(false, 0), 8, 9),
  };
  EXPECT_TRUE(check_linearizable<QueueSpec>(ops, QueueSpec::initial()));
}

TEST(QueueSpecCheck, LifoOrderRejected) {
  std::vector<Op> ops = {
      make_op(0, Method::kEnq, 1, 1, 0, 1),
      make_op(0, Method::kEnq, 2, 1, 2, 3),
      make_op(1, Method::kDeq, 0, pack_opt(true, 2), 4, 5),
  };
  EXPECT_FALSE(check_linearizable<QueueSpec>(ops, QueueSpec::initial()));
}

// ------------------------------------------------------------ checker edge

TEST(Checker, EmptyHistoryIsLinearizable) {
  std::vector<Op> ops;
  EXPECT_TRUE(check_linearizable<RegisterSpec>(ops, RegisterSpec::initial(0)));
}

TEST(Checker, WitnessRespectsHappensBefore) {
  std::vector<Op> ops = {
      make_op(0, Method::kWrite, 1, 0, 0, 1),
      make_op(1, Method::kWrite, 2, 0, 2, 3),
      make_op(0, Method::kRead, 0, 2, 4, 5),
  };
  const auto result =
      check_linearizable<RegisterSpec>(ops, RegisterSpec::initial(0));
  ASSERT_TRUE(result);
  ASSERT_EQ(result.witness.size(), 3u);
  // The non-overlapping ops must appear in real-time order.
  EXPECT_EQ(result.witness[0], 0u);
  EXPECT_EQ(result.witness[1], 1u);
  EXPECT_EQ(result.witness[2], 2u);
}

TEST(Checker, ExplainsOutcomes) {
  std::vector<Op> ops = {make_op(0, Method::kWrite, 1, 0, 0, 1)};
  const auto good = check_linearizable<RegisterSpec>(ops, RegisterSpec::initial(0));
  EXPECT_NE(explain(ops, good).find("witness"), std::string::npos);
  std::vector<Op> bad = {make_op(0, Method::kRead, 0, 9, 0, 1)};
  const auto fail = check_linearizable<RegisterSpec>(bad, RegisterSpec::initial(0));
  EXPECT_NE(explain(bad, fail).find("NOT linearizable"), std::string::npos);
}

TEST(Checker, HandlesManyOverlappingOps) {
  // 3 writers x 4 ops, all overlapping: stress the memoization.
  std::vector<Op> ops;
  std::uint64_t t = 0;
  for (int round = 0; round < 4; ++round) {
    for (int pid = 0; pid < 3; ++pid) {
      ops.push_back(make_op(pid, Method::kWrite,
                            static_cast<std::uint64_t>(10 * pid + round), 0,
                            100 * round + pid, 1000000 + t++));
    }
  }
  // Fix response times so ops of one process do not overlap each other.
  for (auto& op : ops) op.response_ts = op.invoke_ts + 50;
  EXPECT_TRUE(check_linearizable<RegisterSpec>(ops, RegisterSpec::initial(0)));
}

// History recorder.

TEST(History, RecordsAndRenders) {
  History h;
  const auto idx = h.begin_op(0, Method::kDRead, 0, 1);
  h.complete(idx, pack_dread_result(5, true), 2);
  const auto ops = h.ops();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].pid, 0);
  EXPECT_EQ(dread_value(ops[0].ret), 5u);
  EXPECT_TRUE(dread_flag(ops[0].ret));
  EXPECT_NE(h.to_string().find("DRead"), std::string::npos);
  h.clear();
  EXPECT_EQ(h.size(), 0u);
}

}  // namespace
}  // namespace aba::spec
