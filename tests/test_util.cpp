// Unit tests for the utility layer: packing codecs, the sequential local
// ring, RNG, histograms, table printer.
#include <gtest/gtest.h>

#include <set>

#include "structures/ring_buffer.h"
#include "util/histogram.h"
#include "util/packed_word.h"
#include "util/rng.h"
#include "util/table.h"

namespace aba::util {
namespace {

// ---------------------------------------------------------------- BitField

TEST(BitField, GetSetRoundTrip) {
  BitField f{5, 7};
  std::uint64_t w = 0;
  w = f.set(w, 0x55);
  EXPECT_EQ(f.get(w), 0x55u);
  EXPECT_EQ(w, 0x55ull << 5);
}

TEST(BitField, SetPreservesOtherBits) {
  BitField lo{0, 8};
  BitField hi{8, 8};
  std::uint64_t w = 0;
  w = lo.set(w, 0xAB);
  w = hi.set(w, 0xCD);
  EXPECT_EQ(lo.get(w), 0xABu);
  EXPECT_EQ(hi.get(w), 0xCDu);
  w = lo.set(w, 0x01);
  EXPECT_EQ(lo.get(w), 0x01u);
  EXPECT_EQ(hi.get(w), 0xCDu);
}

TEST(BitField, FullWidthMask) {
  BitField f{0, 64};
  EXPECT_EQ(f.mask(), ~0ULL);
  EXPECT_EQ(f.get(~0ULL), ~0ULL);
}

TEST(BitsFor, Values) {
  EXPECT_EQ(bits_for(0), 1u);
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 2u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 3u);
  EXPECT_EQ(bits_for(255), 8u);
  EXPECT_EQ(bits_for(256), 9u);
}

// ------------------------------------------------------------ PackedTriple

using Triple = PackedTriple<8, 4, 6>;

TEST(PackedTriple, InitialIsInvalid) {
  EXPECT_FALSE(Triple::valid(Triple::initial()));
}

TEST(PackedTriple, RoundTrip) {
  const std::uint64_t w = Triple::pack(0xAB, 3, 17);
  EXPECT_TRUE(Triple::valid(w));
  EXPECT_EQ(Triple::value(w), 0xABu);
  EXPECT_EQ(Triple::pid(w), 3u);
  EXPECT_EQ(Triple::seq(w), 17u);
}

TEST(PackedTriple, AnnouncementMatchesPackAnnouncement) {
  const std::uint64_t w = Triple::pack(0xAB, 3, 17);
  EXPECT_EQ(Triple::announcement(w), Triple::pack_announcement(3, 17));
}

TEST(PackedTriple, AnnouncementOfInitialDiffersFromAnyValid) {
  const std::uint64_t init_a = Triple::announcement(Triple::initial());
  for (std::uint64_t p = 0; p < 4; ++p) {
    for (std::uint64_t s = 0; s < 10; ++s) {
      EXPECT_NE(init_a, Triple::pack_announcement(p, s));
    }
  }
}

// ------------------------------------------------------------- TripleCodec

TEST(TripleCodec, ForProcessesWidths) {
  // n = 8: pid in {0..7} -> 3 bits, seq in {0..17} -> 5 bits. With b = 8:
  // total = 8 + 3 + 5 + 1 = 17 = b + 2*log n + O(1).
  auto codec = TripleCodec::for_processes(8, 8);
  EXPECT_EQ(codec.total_bits(), 17u);
  EXPECT_EQ(codec.announcement_bits(), 9u);
}

TEST(TripleCodec, RoundTrip) {
  auto codec = TripleCodec::for_processes(5, 8);
  const std::uint64_t w = codec.pack(200, 4, 11);
  EXPECT_TRUE(codec.valid(w));
  EXPECT_EQ(codec.value(w), 200u);
  EXPECT_EQ(codec.pid(w), 4u);
  EXPECT_EQ(codec.seq(w), 11u);
  EXPECT_FALSE(codec.valid(TripleCodec::initial()));
}

TEST(TripleCodec, AnnouncementRoundTrip) {
  auto codec = TripleCodec::for_processes(5, 8);
  const std::uint64_t w = codec.pack(200, 4, 11);
  const std::uint64_t a = codec.announcement(w);
  EXPECT_TRUE(codec.announcement_valid(a));
  EXPECT_EQ(codec.announcement_pid(a), 4u);
  EXPECT_EQ(codec.announcement_seq(a), 11u);
  EXPECT_EQ(a, codec.pack_announcement(4, 11));
  EXPECT_FALSE(codec.announcement_valid(codec.announcement(TripleCodec::initial())));
}

TEST(TripleCodec, DistinctTriplesDistinctWords) {
  auto codec = TripleCodec::for_processes(3, 4);
  std::set<std::uint64_t> words;
  for (std::uint64_t v = 0; v < 16; ++v) {
    for (std::uint64_t p = 0; p < 3; ++p) {
      for (std::uint64_t s = 0; s < 8; ++s) {
        words.insert(codec.pack(v, p, s));
      }
    }
  }
  EXPECT_EQ(words.size(), 16u * 3u * 8u);
}

// --------------------------------------------------------------- PairCodec

TEST(PairCodec, RoundTrip) {
  PairCodec codec(8, 16);
  const std::uint64_t w = codec.pack(0xBEEF, 0xA5);
  EXPECT_EQ(codec.value(w), 0xBEEFu);
  EXPECT_EQ(codec.bits(w), 0xA5u);
  EXPECT_EQ(codec.total_bits(), 24u);
}

TEST(PairCodec, BitOperations) {
  PairCodec codec(8, 8);
  std::uint64_t w = codec.pack(7, codec.all_bits());
  EXPECT_EQ(codec.bits(w), 0xFFu);
  for (unsigned p = 0; p < 8; ++p) EXPECT_TRUE(codec.bit(w, p));
  w = codec.with_bit_cleared(w, 3);
  EXPECT_FALSE(codec.bit(w, 3));
  EXPECT_TRUE(codec.bit(w, 2));
  EXPECT_EQ(codec.value(w), 7u);
}

TEST(PairCodec, AllBitsWidth) {
  EXPECT_EQ(PairCodec(1, 8).all_bits(), 1u);
  EXPECT_EQ(PairCodec(4, 8).all_bits(), 15u);
  EXPECT_EQ(PairCodec(32, 16).all_bits(), 0xFFFFFFFFull);
}

// --------------------------------------------------------------- LocalRing

TEST(LocalRing, FifoOrder) {
  structures::LocalRing<int> q(3);
  q.enqueue(1);
  q.enqueue(2);
  q.enqueue(3);
  EXPECT_TRUE(q.full());
  EXPECT_EQ(q.dequeue(), 1);
  EXPECT_EQ(q.dequeue(), 2);
  q.enqueue(4);
  EXPECT_EQ(q.dequeue(), 3);
  EXPECT_EQ(q.dequeue(), 4);
  EXPECT_TRUE(q.empty());
}

TEST(LocalRing, Contains) {
  structures::LocalRing<int> q(4);
  q.enqueue(10);
  q.enqueue(20);
  EXPECT_TRUE(q.contains(10));
  EXPECT_TRUE(q.contains(20));
  EXPECT_FALSE(q.contains(30));
  q.dequeue();
  EXPECT_FALSE(q.contains(10));
}

TEST(LocalRing, WrapsAroundManyTimes) {
  structures::LocalRing<int> q(2);
  for (int i = 0; i < 100; ++i) {
    q.enqueue(i);
    EXPECT_EQ(q.dequeue(), i);
  }
}

TEST(LocalRing, FrontPeeks) {
  structures::LocalRing<int> q(2);
  q.enqueue(5);
  q.enqueue(6);
  EXPECT_EQ(q.front(), 5);
  EXPECT_EQ(q.size(), 2u);
}

TEST(LocalRing, TryVerbsRefuseAtBoundaries) {
  structures::LocalRing<int> q(2);
  EXPECT_EQ(q.try_pop(), std::nullopt);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // Full: refusal is exact, not approximate.
  EXPECT_EQ(q.try_pop(), std::optional<int>(1));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.try_pop(), std::optional<int>(2));
  EXPECT_EQ(q.try_pop(), std::optional<int>(3));
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

// --------------------------------------------------------------------- RNG

TEST(Rng, DeterministicBySeed) {
  Xoshiro256 a(42), b(42), c(43);
  bool all_equal = true;
  bool any_diff_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    if (va != b()) all_equal = false;
    if (va != c()) any_diff_from_c = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_from_c);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Xoshiro256 rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, HashCombineSpreads) {
  std::set<std::uint64_t> hashes;
  for (std::uint64_t i = 0; i < 100; ++i) {
    hashes.insert(hash_combine(0, i));
  }
  EXPECT_EQ(hashes.size(), 100u);
}

// ----------------------------------------------------------------- Summary

TEST(Summary, Statistics) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.quantile(0.99), 99.0, 1.0);
}

TEST(StepHistogram, CountsAndMax) {
  StepHistogram h;
  h.add(2);
  h.add(2);
  h.add(4);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.max_steps(), 4u);
  EXPECT_EQ(h.count_at(2), 2u);
  EXPECT_EQ(h.count_at(3), 0u);
  EXPECT_NEAR(h.mean_steps(), (2 + 2 + 4) / 3.0, 1e-9);
}

// ------------------------------------------------------------------- Table

TEST(Table, RendersAlignedRows) {
  Table t({"name", "n", "value"});
  t.add_row({"alpha", "1", "2.50"});
  t.add_row({"beta-long-name", "100", "0.01"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("beta-long-name"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::fmt(std::int64_t{-7}), "-7");
}

}  // namespace
}  // namespace aba::util
