// The real-process half of the crash-robustness gate: fork an actual
// worker process, park it at a named vulnerable instant of the reclamation
// protocol (guard just published, epoch just announced, mid-retire),
// SIGKILL it there, and verify the survivor recovers — two-phase
// expropriation confirms within TWO survivor passes, the pool conserves
// (free + retired + quarantined + structure-resident == pool), at most one
// node is quarantined, and the structure keeps working afterwards.
//
// The SimWorld twin of this file is test_crash_sim.cpp: same protocol,
// same bounds, but with model-checked interleavings instead of a real
// SIGKILL. This one proves the story holds for OS processes — zombies,
// kill(pid, 0) semantics, shared mappings and all.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shm_crash_common.h"

#ifndef ABA_SHM_CRASH_CHILD
#error "ABA_SHM_CRASH_CHILD (path to the worker binary) must be defined"
#endif

namespace aba::shm::crash {
namespace {

bool wait_until(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    ::usleep(200);
  }
  return pred();
}

pid_t spawn_child(const std::string& segment, const std::string& kind,
                  std::uint64_t park_point) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const std::string park = std::to_string(park_point);
    ::execl(ABA_SHM_CRASH_CHILD, ABA_SHM_CRASH_CHILD, segment.c_str(),
            kind.c_str(), park.c_str(), "256", static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed.
  }
  return pid;
}

// The whole play: create the world, sacrifice a worker at `park_point`,
// assert bounded recovery and conservation.
void run_crash_case(const std::string& kind, std::uint64_t park_point) {
  SCOPED_TRACE(kind + " @ park-point " + std::to_string(park_point));
  const std::string name = unique_segment_name();
  CrashWorld world(ShmSegment::create(name, kSegmentBytes, kProcs),
                   /*owner=*/true, kind);
  const int me = world.leases.acquire();
  ASSERT_EQ(me, kDriverSlot);

  const pid_t child = spawn_child(name, kind, park_point);
  ASSERT_GT(child, 0);

  // The worker raises park_ack at the instrumented instant, still holding
  // whatever it just published. That is the kill signal.
  LeaseRecord& victim = world.leases.record(kVictimSlot);
  ASSERT_TRUE(wait_until(
      [&] {
        return victim.park_ack.load(std::memory_order_acquire) == park_point;
      },
      10000))
      << "worker never reached the park point";
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  // Reap before probing: a zombie still answers kill(pid, 0) with 0, which
  // would stall the suspect/confirm handshake until the wait.
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "worker exited on its own (status " << status
      << ") instead of dying parked";

  // Bounded recovery: pass one suspects the dead lease, pass two confirms
  // and drains it. No third pass is needed to reclaim ownership.
  world.survivor_pass(me);
  EXPECT_TRUE(world.leases.is_held(kVictimSlot));  // Suspected, not seized.
  world.survivor_pass(me);
  EXPECT_EQ(world.stats().expropriations, 1u);
  EXPECT_FALSE(world.leases.is_held(kVictimSlot));

  // Drain whatever the dead worker left in the structure, then let the
  // survivor's reclamation settle (epoch limbo needs two more advances).
  std::size_t drained = 0;
  while (world.take(me).has_value()) ++drained;
  for (int i = 0; i < 4; ++i) world.survivor_pass(me);

  const reclaim::ReclaimStats s = world.stats();
  EXPECT_LE(s.quarantined, 1u);
  EXPECT_EQ(s.free_nodes + s.retired_unreclaimed + s.quarantined +
                world.resident_nodes(),
            s.pool_size)
      << "pool leak or double-count after expropriation (drained " << drained
      << ")";

  // The slot is reusable and the structure still works end to end.
  EXPECT_EQ(world.leases.acquire(), kVictimSlot);
  for (std::uint64_t v = 0; v < 8; ++v) ASSERT_TRUE(world.put(me, v));
  for (std::uint64_t v = 0; v < 8; ++v) EXPECT_TRUE(world.take(me).has_value());
  EXPECT_FALSE(world.take(me).has_value());
}

TEST(ShmCrash, HazardStackKilledAtGuardPublished) {
  run_crash_case(kKindStackHazard, kParkGuardPublished);
}

TEST(ShmCrash, HazardStackKilledMidRetire) {
  run_crash_case(kKindStackHazard, kParkMidRetire);
}

TEST(ShmCrash, EpochQueueKilledAtEpochAnnounced) {
  run_crash_case(kKindQueueEpoch, kParkEpochAnnounced);
}

TEST(ShmCrash, EpochQueueKilledMidRetire) {
  run_crash_case(kKindQueueEpoch, kParkMidRetire);
}

// The batched hand-off's crash window: the worker dies parked between
// STAGING a retire_batch chunk in its shm pending window and stamping or
// listing any of its nodes — at that instant the window is the chunk's only
// record. The survivor's expropriation must sweep the window (re-stamping
// every staged node at the current epoch, like the in_retire orphan) or the
// whole chunk leaks from the pool; the conservation equation below convicts
// either a leak or a double-record.
TEST(ShmCrash, EpochQueueKilledMidBatchRetire) {
  run_crash_case(kKindQueueEpochBatch, kParkMidRetire);
}

// The false-suspicion side in real processes: a live-but-silent worker is
// suspected (stale heartbeat), then vetoes at its next entry point instead
// of losing its lease.
TEST(ShmCrash, LiveWorkerVetoesStaleSuspicion) {
  const std::string name = unique_segment_name();
  CrashWorld world(ShmSegment::create(name, kSegmentBytes, kProcs),
                   /*owner=*/true, kKindStackHazard);
  const int me = world.leases.acquire();
  const pid_t child = spawn_child(name, kKindStackHazard, kParkGuardPublished);
  ASSERT_GT(child, 0);
  LeaseRecord& victim = world.leases.record(kVictimSlot);
  ASSERT_TRUE(wait_until(
      [&] {
        return victim.park_ack.load(std::memory_order_acquire) ==
               kParkGuardPublished;
      },
      10000));

  // Suspect on staleness alone; the pid is alive, so no number of survivor
  // passes may confirm.
  EXPECT_EQ(world.leases.advance_death(kVictimSlot, /*stale=*/true),
            reclaim::DeathStep::kSuspected);
  for (int i = 0; i < 4; ++i) world.survivor_pass(me);
  EXPECT_EQ(world.stats().expropriations, 0u);
  EXPECT_TRUE(world.leases.is_held(kVictimSlot));

  // Release the park: the worker's next reclaimer entry self-checks and
  // vetoes, and its lease is fully live again.
  victim.park_request.store(kParkNone, std::memory_order_release);
  ASSERT_TRUE(wait_until([&] { return world.leases.is_live(kVictimSlot); },
                         10000));
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
}

}  // namespace
}  // namespace aba::shm::crash
