// Backoff semantics: truncated exponential growth, reset, and the
// platform-level selection trait.
#include <gtest/gtest.h>

#include <type_traits>

#include "core/platform.h"
#include "native/native_platform.h"
#include "sim/sim_platform.h"
#include "util/backoff.h"

namespace aba::testing {
namespace {

TEST(ExpBackoff, DoublesUntilTruncatedAtMax) {
  util::ExpBackoff b(/*initial_spins=*/2, /*max_spins=*/16);
  EXPECT_EQ(b.current_spins(), 2u);
  b();
  EXPECT_EQ(b.current_spins(), 4u);
  b();
  EXPECT_EQ(b.current_spins(), 8u);
  b();
  EXPECT_EQ(b.current_spins(), 16u);
  // Saturated: stays at max however often it fires.
  for (int i = 0; i < 10; ++i) b();
  EXPECT_EQ(b.current_spins(), 16u);
}

TEST(ExpBackoff, GrowthIsBoundedByMaxForAnyCallCount) {
  util::ExpBackoff b(/*initial_spins=*/3, /*max_spins=*/100);
  for (int i = 0; i < 64; ++i) {
    b();
    EXPECT_LE(b.current_spins(), 100u);
    EXPECT_GE(b.current_spins(), 3u);
  }
  EXPECT_EQ(b.current_spins(), 100u);  // Truncated, not wrapped.
}

TEST(ExpBackoff, ResetRestoresInitialBudget) {
  util::ExpBackoff b(/*initial_spins=*/4, /*max_spins=*/64);
  b();
  b();
  ASSERT_GT(b.current_spins(), 4u);
  b.reset();
  EXPECT_EQ(b.current_spins(), 4u);
  // And growth restarts from the initial budget.
  b();
  EXPECT_EQ(b.current_spins(), 8u);
}

TEST(ExpBackoff, DefaultsAreSane) {
  util::ExpBackoff b;
  EXPECT_GE(b.max_spins(), b.initial_spins());
  EXPECT_EQ(b.current_spins(), b.initial_spins());
}

TEST(Backoff, PlatformSelection) {
  // The simulator never backs off (adversary-controlled schedules), the
  // Counted native policy never backs off (deterministic step counts), and
  // the Fast native policy uses truncated exponential backoff.
  static_assert(std::is_same_v<PlatformBackoffT<sim::SimPlatform>,
                               util::NullBackoff>);
  static_assert(
      std::is_same_v<PlatformBackoffT<native::NativePlatform<native::Counted>>,
                     util::NullBackoff>);
  static_assert(
      std::is_same_v<PlatformBackoffT<native::NativePlatform<native::Fast>>,
                     util::ExpBackoff>);
  SUCCEED();
}

}  // namespace
}  // namespace aba::testing
