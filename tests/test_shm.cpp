// In-process tests for the crash-robust cross-process tier (src/shm/):
//
//   * ShmSegment — create/attach discovery, header validation, the
//     publish/verify_layout handshake;
//   * ShmArena — deterministic placement (creator and attacher walk the
//     same construction sequence to the same offsets) and the layout-hash
//     fingerprint that turns drift into a checked error;
//   * PidLeaseTable — acquire/release/beat, the two-phase suspect/confirm
//     death handshake over real pids (a reaped child is definitively dead;
//     heartbeat movement between suspicion and confirmation cancels it —
//     the pid-recycling guard), staleness that can only ever *suspect*,
//     the self_check veto and the LeaseRevoked self-fence, and the
//     park-point rendezvous the crash harness drives workers with;
//   * the leased reclaimers — correctness of the shared-arena hazard and
//     epoch variants under multi-slot use from one process, and
//     expropriation: plant a dead pid on a lease mid-protocol and assert a
//     survivor confirms, drains, and reaps it within two scans, with pool
//     conservation intact.
//
// The REAL multi-process crash coverage (fork + SIGKILL at parked
// vulnerable instants) lives in test_shm_crash.cpp; these tests keep the
// building blocks debuggable in one process.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "reclaim/death.h"
#include "shm/leased_reclaimer.h"
#include "shm/pid_lease.h"
#include "shm/shm_platform.h"
#include "shm/shm_segment.h"
#include "structures/ms_queue.h"
#include "structures/treiber_stack.h"

namespace aba::shm {
namespace {

// Forks a child that exits immediately and reaps it: a pid that is
// definitively dead (kill(pid, 0) == ESRCH) for the death-handshake tests.
pid_t dead_pid() {
  const pid_t pid = ::fork();
  if (pid == 0) ::_exit(0);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return pid;
}

// ------------------------------------------------------------- segment

TEST(ShmSegment, CreatePublishAttachRoundTrip) {
  const std::string name = unique_segment_name();
  ShmSegment created = ShmSegment::create(name, 1 << 16, 4);
  EXPECT_TRUE(created.owner());
  EXPECT_EQ(created.max_procs(), 4);

  ShmArena arena(created, /*owner=*/true);
  auto* word = arena.place<std::atomic<std::uint64_t>>("word");
  word->store(0x5eed, std::memory_order_relaxed);
  created.publish(arena.layout_hash());

  // A second mapping of the same segment (what another process would do).
  ShmSegment attached = ShmSegment::attach(name);
  EXPECT_FALSE(attached.owner());
  EXPECT_EQ(attached.max_procs(), 4);
  ShmArena bound(attached, /*owner=*/false);
  auto* same = bound.place<std::atomic<std::uint64_t>>("word");
  attached.verify_layout(bound.layout_hash());
  EXPECT_EQ(same->load(std::memory_order_relaxed), 0x5eedu);

  // Writes through one mapping are visible through the other.
  same->store(0xbeef, std::memory_order_relaxed);
  EXPECT_EQ(word->load(std::memory_order_relaxed), 0xbeefu);
}

TEST(ShmSegment, UniqueNamesDoNotCollide) {
  const std::string a = unique_segment_name();
  const std::string b = unique_segment_name();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.front(), '/');
}

// --------------------------------------------------------------- arena

TEST(ShmArena, IdenticalSequencesHashIdentically) {
  const std::string name = unique_segment_name();
  ShmSegment seg = ShmSegment::create(name, 1 << 16, 2);
  ShmArena first(seg, true);
  first.place<std::atomic<std::uint64_t>>("a");
  first.place_array<std::atomic<std::uint64_t>>("b", 7);

  ShmArena second(seg, false);  // Re-walk the same sequence, binding.
  second.place<std::atomic<std::uint64_t>>("a");
  second.place_array<std::atomic<std::uint64_t>>("b", 7);
  EXPECT_EQ(first.layout_hash(), second.layout_hash());
  EXPECT_EQ(first.bytes_used(), second.bytes_used());
}

TEST(ShmArena, DivergentSequencesHashDifferently) {
  const std::string name = unique_segment_name();
  ShmSegment seg = ShmSegment::create(name, 1 << 16, 2);
  ShmArena first(seg, true);
  first.place<std::atomic<std::uint64_t>>("a");
  ShmArena renamed(seg, false);
  renamed.place<std::atomic<std::uint64_t>>("b");  // Different name.
  EXPECT_NE(first.layout_hash(), renamed.layout_hash());

  ShmArena resized(seg, false);
  resized.place_array<std::atomic<std::uint64_t>>("a", 2);  // Different size.
  EXPECT_NE(first.layout_hash(), resized.layout_hash());
}

TEST(ShmArena, PlacementsAreCacheLineGranular) {
  const std::string name = unique_segment_name();
  ShmSegment seg = ShmSegment::create(name, 1 << 16, 2);
  ShmArena arena(seg, true);
  auto* a = arena.place<std::atomic<std::uint64_t>>("a");
  auto* b = arena.place<std::atomic<std::uint64_t>>("b");
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % util::kCacheLineSize, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % util::kCacheLineSize, 0u);
  EXPECT_GE(reinterpret_cast<char*>(b) - reinterpret_cast<char*>(a),
            static_cast<std::ptrdiff_t>(util::kCacheLineSize));
}

// --------------------------------------------------------------- leases

struct LeaseFixture {
  ShmSegment seg;
  ShmArena arena;
  PidLeaseTable leases;

  explicit LeaseFixture(int max_procs = 4)
      : seg(ShmSegment::create(unique_segment_name(), 1 << 16, max_procs)),
        arena(seg, true),
        leases(arena, max_procs) {}
};

TEST(PidLease, AcquireBeatReleaseLifecycle) {
  LeaseFixture fx;
  const int a = fx.leases.acquire();
  const int b = fx.leases.acquire();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_TRUE(fx.leases.is_live(a));
  EXPECT_TRUE(fx.leases.is_held(b));
  fx.leases.beat(a);
  EXPECT_NO_THROW(fx.leases.self_check(a));

  fx.leases.release(a);
  EXPECT_FALSE(fx.leases.is_held(a));
  // The released slot recirculates (with a fresh generation).
  EXPECT_EQ(fx.leases.acquire(), 0);
}

TEST(PidLease, DeadPidConfirmsInTwoVisitsAndReaps) {
  LeaseFixture fx;
  const int q = fx.leases.acquire();
  fx.leases.record(q).pid.store(dead_pid(), std::memory_order_release);

  EXPECT_EQ(fx.leases.advance_death(q), reclaim::DeathStep::kSuspected);
  EXPECT_TRUE(fx.leases.is_held(q)) << "suspicion must not drop the lease";
  EXPECT_EQ(fx.leases.advance_death(q), reclaim::DeathStep::kConfirmed);
  EXPECT_EQ(fx.leases.advance_death(q),
            reclaim::DeathStep::kAlreadyExpropriated);
  fx.leases.reap(q);
  EXPECT_FALSE(fx.leases.is_held(q));
}

TEST(PidLease, HeartbeatMovementCancelsSuspicion) {
  // The pid-recycling guard: between suspicion and confirmation the
  // heartbeat moved, so the lease owner (or a new process wearing the
  // recycled pid after a proper re-acquire) is treated as alive.
  LeaseFixture fx;
  const int q = fx.leases.acquire();
  fx.leases.record(q).pid.store(dead_pid(), std::memory_order_release);
  EXPECT_EQ(fx.leases.advance_death(q), reclaim::DeathStep::kSuspected);
  fx.leases.beat(q);
  EXPECT_EQ(fx.leases.advance_death(q), reclaim::DeathStep::kVetoed);
}

TEST(PidLease, StalenessAloneNeverConfirms) {
  // Our own (live) pid with a "stale" heartbeat: staleness may suspect,
  // but a process the kernel still knows can never be confirmed dead.
  LeaseFixture fx;
  const int q = fx.leases.acquire();
  EXPECT_EQ(fx.leases.advance_death(q, /*stale=*/true),
            reclaim::DeathStep::kSuspected);
  EXPECT_EQ(fx.leases.advance_death(q, /*stale=*/true),
            reclaim::DeathStep::kVetoed);
  EXPECT_TRUE(fx.leases.is_held(q));
}

TEST(PidLease, AcquireWindowPidZeroIsIndeterminate) {
  // Rewind a lease to the acquire window: kLive already published, the pid
  // store still in flight. pid_alive(0) is false, but a survivor must treat
  // the window as indeterminate — suspecting (let alone confirming) here
  // would expropriate a live, freshly-acquired lease.
  LeaseFixture fx;
  const int q = fx.leases.acquire();
  fx.leases.record(q).pid.store(0, std::memory_order_release);
  EXPECT_EQ(fx.leases.advance_death(q), reclaim::DeathStep::kVetoed);
  EXPECT_EQ(fx.leases.advance_death(q, /*stale=*/true),
            reclaim::DeathStep::kVetoed);
  EXPECT_TRUE(fx.leases.is_live(q));
}

TEST(PidLease, GenerationFencesRecycledSlot) {
  LeaseFixture fx;
  const int q = fx.leases.acquire();
  // q's owner "dies" (planted dead pid); a survivor confirms and reaps.
  fx.leases.record(q).pid.store(dead_pid(), std::memory_order_release);
  fx.leases.advance_death(q);
  ASSERT_EQ(fx.leases.advance_death(q), reclaim::DeathStep::kConfirmed);
  fx.leases.reap(q);

  // Another process (a second table instance bound to the same records)
  // reacquires the slot: it reads kLive again, but in a new generation.
  ShmArena bind(fx.seg, /*owner=*/false);
  PidLeaseTable other(bind, 4);
  ASSERT_EQ(other.acquire(), q);
  ASSERT_TRUE(other.is_live(q));

  // The original owner sees kLive wearing a generation it never installed:
  // it must self-fence, not beat or operate on the new owner's lease.
  EXPECT_THROW(fx.leases.self_check(q), reclaim::LeaseRevoked);
  EXPECT_THROW(fx.leases.beat(q), reclaim::LeaseRevoked);
  // Nor may its clean-exit path free the new owner's lease.
  fx.leases.release(q);
  EXPECT_TRUE(other.is_live(q));
  EXPECT_NO_THROW(other.self_check(q));
}

TEST(PidLease, SelfCheckVetoesSuspicionAndFencesExpropriation) {
  LeaseFixture fx;
  const int q = fx.leases.acquire();
  // Falsely suspected (stale heartbeat, live pid): self_check vetoes.
  EXPECT_EQ(fx.leases.advance_death(q, /*stale=*/true),
            reclaim::DeathStep::kSuspected);
  EXPECT_NO_THROW(fx.leases.self_check(q));
  EXPECT_TRUE(fx.leases.is_live(q));

  // Confirmed dead (planted pid): self_check must self-fence.
  fx.leases.record(q).pid.store(dead_pid(), std::memory_order_release);
  fx.leases.advance_death(q);
  ASSERT_EQ(fx.leases.advance_death(q), reclaim::DeathStep::kConfirmed);
  EXPECT_THROW(fx.leases.self_check(q), reclaim::LeaseRevoked);
}

TEST(PidLease, ParkRendezvous) {
  LeaseFixture fx;
  const int slot = fx.leases.acquire();
  auto& rec = fx.leases.record(slot);
  // No request: maybe_park returns immediately.
  fx.leases.maybe_park(slot, kParkGuardPublished);
  EXPECT_EQ(rec.park_ack.load(), kParkNone);

  // Request the guard-published point; a worker thread parks there until
  // the driver (this thread) releases it — the SIGKILL rendezvous minus
  // the kill.
  rec.park_request.store(kParkGuardPublished, std::memory_order_release);
  std::thread worker(
      [&] { fx.leases.maybe_park(slot, kParkGuardPublished); });
  while (rec.park_ack.load(std::memory_order_acquire) != kParkGuardPublished) {
    std::this_thread::yield();
  }
  rec.park_request.store(kParkNone, std::memory_order_release);
  worker.join();
  EXPECT_EQ(rec.park_ack.load(), kParkNone);
}

// ------------------------------------------------- leased reclaimers

using ShmStack = structures::TreiberStack<ShmPlatform,
                                          structures::RawCasHead<ShmPlatform>,
                                          LeasedCachedHazardReclaimer>;
using ShmEpochQueue = structures::MsQueue<ShmPlatform, LeasedEpochReclaimer>;

struct TierFixture {
  ShmSegment seg;
  ShmArena arena;
  PidLeaseTable leases;
  ShmPlatform::Env env;

  explicit TierFixture(int max_procs = 2)
      : seg(ShmSegment::create(unique_segment_name(), 1 << 21, max_procs)),
        arena(seg, true),
        leases(arena, max_procs),
        env{&arena, &leases, /*owner=*/true} {}
};

TEST(LeasedReclaimer, HazardStackPushPopAcrossSlots) {
  TierFixture fx;
  ShmStack stack(fx.env, 2,
                 std::make_unique<structures::RawCasHead<ShmPlatform>>(fx.env, 2),
                 ShmStack::partition(2, 16));
  fx.seg.publish(fx.arena.layout_hash());
  const int p0 = fx.leases.acquire();
  const int p1 = fx.leases.acquire();

  for (std::uint64_t v = 0; v < 20; ++v) {
    ASSERT_TRUE(stack.push(v % 2 == 0 ? p0 : p1, v));
  }
  for (std::uint64_t v = 0; v < 20; ++v) {
    const auto got = stack.pop(v % 2 == 0 ? p1 : p0);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 19 - v);  // LIFO.
  }
  EXPECT_FALSE(stack.pop(p0).has_value());

  // Everything is either free or retired; nothing leaked.
  const reclaim::ReclaimStats s = stack.reclaimer().stats();
  EXPECT_EQ(s.free_nodes + s.retired_unreclaimed, s.pool_size);
  EXPECT_EQ(s.quarantined, 0u);
  EXPECT_EQ(s.expropriations, 0u);
}

TEST(LeasedReclaimer, EpochQueueFifoAcrossSlots) {
  TierFixture fx;
  ShmEpochQueue queue(fx.env, 2, 16);
  fx.seg.publish(fx.arena.layout_hash());
  const int p0 = fx.leases.acquire();
  const int p1 = fx.leases.acquire();

  for (std::uint64_t v = 0; v < 24; ++v) {
    ASSERT_TRUE(queue.enqueue(v % 2 == 0 ? p0 : p1, v));
  }
  for (std::uint64_t v = 0; v < 24; ++v) {
    const auto got = queue.dequeue(v % 2 == 0 ? p1 : p0);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);  // FIFO.
  }
  EXPECT_FALSE(queue.dequeue(p0).has_value());

  const reclaim::ReclaimStats s = queue.reclaimer().stats();
  // Pool = 1 dummy + 2*16; one node always lives on as the current dummy.
  EXPECT_EQ(s.free_nodes + s.retired_unreclaimed + 1, s.pool_size);
  EXPECT_EQ(s.quarantined, 0u);
}

// Kill a lease mid-protocol (planted dead pid) and let the other slot's
// storm drive the two-phase handshake: confirmed, drained, reaped — and
// the pool conserves.
TEST(LeasedReclaimer, HazardExpropriatesPlantedDeadLease) {
  TierFixture fx;
  ShmStack stack(fx.env, 2,
                 std::make_unique<structures::RawCasHead<ShmPlatform>>(fx.env, 2),
                 ShmStack::partition(2, 16));
  fx.seg.publish(fx.arena.layout_hash());
  const int p0 = fx.leases.acquire();
  const int p1 = fx.leases.acquire();

  // p1 operates — its cached guard stays published after the pop — then
  // "dies" (its lease now wears a dead pid).
  ASSERT_TRUE(stack.push(p1, 7));
  ASSERT_TRUE(stack.pop(p1).has_value());
  ASSERT_GE(stack.reclaimer().stats().guard_slots_occupied, 1u);
  fx.leases.record(p1).pid.store(dead_pid(), std::memory_order_release);

  // The survivor storms: scans at the threshold suspect, then confirm and
  // drain. 3 nodes/cycle retire-pressure over 16-node lists reaches the
  // 2·n·slots = 8 threshold fast.
  for (std::uint64_t v = 0; v < 40 &&
       stack.reclaimer().stats().expropriations == 0; ++v) {
    stack.push(p0, v);
    stack.pop(p0);
  }

  const reclaim::ReclaimStats s = stack.reclaimer().stats();
  EXPECT_EQ(s.expropriations, 1u);
  EXPECT_FALSE(fx.leases.is_held(p1)) << "confirmed lease must be reaped";
  EXPECT_EQ(s.free_nodes + s.retired_unreclaimed + s.quarantined,
            s.pool_size);
  EXPECT_LE(s.quarantined, 1u);
  // p1's guards were cleared by the expropriator; only p0's cache remains.
  EXPECT_LE(s.guard_slots_occupied, 2u);
}

TEST(LeasedReclaimer, EpochExpropriatesFrozenAnnouncement) {
  TierFixture fx;
  ShmEpochQueue queue(fx.env, 2, 16);
  fx.seg.publish(fx.arena.layout_hash());
  const int p0 = fx.leases.acquire();
  const int p1 = fx.leases.acquire();

  // Freeze p1 mid-region: announce (begin_op) without the matching end_op,
  // as if the process died right after publishing — then plant the death.
  ASSERT_TRUE(queue.enqueue(p1, 1));
  queue.reclaimer().begin_op(p1);
  fx.leases.record(p1).pid.store(dead_pid(), std::memory_order_release);

  for (std::uint64_t v = 0; v < 60 &&
       queue.reclaimer().stats().expropriations == 0; ++v) {
    queue.enqueue(p0, v);
    queue.dequeue(p0);
  }

  const reclaim::ReclaimStats s = queue.reclaimer().stats();
  EXPECT_EQ(s.expropriations, 1u);
  EXPECT_FALSE(fx.leases.is_held(p1));
  // The frozen announcement is gone, so the epoch advances again and the
  // spliced limbo matures: the storm keeps reclaiming (free list nonzero).
  EXPECT_GT(s.free_nodes, 0u);
  // One node is in the structure (p1's enqueue) plus the current dummy.
  EXPECT_EQ(s.free_nodes + s.retired_unreclaimed + s.quarantined + 2,
            s.pool_size);
}

// A process killed at the mid-retire park point leaves in_retire set with
// the node's epoch stamp never written (retire stamps after the park).
// Expropriation must re-stamp the orphan with the current epoch before
// re-homing it: with the stale/zero stamp it would pass the two-epoch grace
// test immediately and be freed while a reader announced in an earlier
// epoch still holds it.
TEST(LeasedReclaimer, EpochMidRetireOrphanKeepsGracePeriod) {
  TierFixture fx(3);
  reclaim::FreeLists initial(3);
  for (std::uint64_t p = 0; p < 3; ++p) {
    for (std::uint64_t i = 0; i < 4; ++i) initial[p].push_back(p * 4 + i);
  }
  LeasedEpochReclaimer r(fx.env, 3, initial);
  fx.seg.publish(fx.arena.layout_hash());
  const int p0 = fx.leases.acquire();
  const int p1 = fx.leases.acquire();
  const int p2 = fx.leases.acquire();

  // Push the global epoch well past the value-initialized stamp of 0, so a
  // never-stamped node would look ancient to collect().
  for (int i = 0; i < 4; ++i) r.try_advance(p0);

  // p2 enters a region: announced at the current epoch — an old-epoch
  // reader for everything retired from here on.
  r.begin_op(p2);

  // p1 allocates a node and "dies" parked mid-retire: in_retire set, the
  // stamp never written.
  const auto idx = r.allocate(p1);
  ASSERT_TRUE(idx.has_value());
  r.commit(p1);
  auto& rec = fx.leases.record(p1);
  rec.park_request.store(kParkMidRetire, std::memory_order_release);
  std::thread victim([&] {
    try {
      r.retire(p1, *idx);
    } catch (const reclaim::LeaseRevoked&) {
      // Expected: expropriated while parked; the post-park self-check
      // fences the resumed worker before it touches the drained lists.
    }
  });
  while (rec.park_ack.load(std::memory_order_acquire) != kParkMidRetire) {
    std::this_thread::yield();
  }
  rec.pid.store(dead_pid(), std::memory_order_release);

  // Two survivor advances: suspect, then confirm + re-stamp + drain.
  r.try_advance(p0);
  r.try_advance(p0);
  ASSERT_EQ(r.stats().expropriations, 1u);

  // While p2 still pins its (older) epoch, collect must keep the re-homed
  // orphan in limbo — freeing it here is the use-after-free.
  r.collect(p0);
  EXPECT_EQ(r.stats().retired_unreclaimed, 1u)
      << "orphaned mid-retire node freed without a grace period";

  // Release the park; the resumed victim self-fences on its revoked lease.
  rec.park_request.store(kParkNone, std::memory_order_release);
  victim.join();

  // Once the reader leaves, the normal two-advance rule drains the orphan
  // and the pool conserves in full.
  r.end_op(p2);
  for (int i = 0; i < 3; ++i) {
    r.try_advance(p0);
    r.collect(p0);
  }
  const reclaim::ReclaimStats s = r.stats();
  EXPECT_EQ(s.retired_unreclaimed, 0u);
  EXPECT_EQ(s.quarantined, 0u);
  EXPECT_EQ(s.free_nodes, s.pool_size);
}

// The global quarantine is the one list with concurrent pushers (confirm
// winners of different victims); its push must be lossless under
// contention, keeping the count and the list in sync.
TEST(LeasedReclaimer, SharedQuarantinePushIsLosslessUnderContention) {
  const std::string name = unique_segment_name();
  ShmSegment seg = ShmSegment::create(name, 1 << 18, 2);
  ShmArena arena(seg, true);
  constexpr std::uint64_t kNodes = 256;
  detail::NodeLists lists(arena, "links", kNodes);
  auto* head = arena.place<std::atomic<std::uint64_t>>("head");

  std::thread evens([&] {
    for (std::uint64_t i = 0; i < kNodes; i += 2) lists.push_shared(*head, i);
  });
  std::thread odds([&] {
    for (std::uint64_t i = 1; i < kNodes; i += 2) lists.push_shared(*head, i);
  });
  evens.join();
  odds.join();

  std::uint64_t seen = 0;
  for (std::uint64_t i = 0; i < kNodes; ++i) {
    if (lists.contains(*head, i)) ++seen;
  }
  EXPECT_EQ(seen, kNodes) << "concurrent pushes lost a link";
}

}  // namespace
}  // namespace aba::shm
