#!/usr/bin/env python3
"""Smoke tests for tools/shm_gc.py (ctest: tools.shm_gc).

Runs the sweeper as a subprocess against a temp directory standing in for
/dev/shm, with hand-packed segment headers: a live creator must be kept, a
dead creator swept (and only reported under --dry-run), and short or
foreign files skipped untouched.
"""

import os
import struct
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, os.pardir, "tools", "shm_gc.py")

# Mirrors SegmentHeader (src/shm/shm_segment.h) and the constants in the
# tool itself.
MAGIC = 0x314D485341424121
HEADER_FMT = "<QIIQqQ"


def dead_pid():
    """A pid that demonstrably no longer exists: a reaped child's."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def run_tool(shm_dir, *extra):
    return subprocess.run(
        [sys.executable, TOOL, "--shm-dir", shm_dir, *extra],
        capture_output=True, text=True)


class ShmGcTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)
        self.shm_dir = self._dir.name

    def segment(self, name, creator_pid, magic=MAGIC):
        path = os.path.join(self.shm_dir, name)
        with open(path, "wb") as f:
            f.write(struct.pack(HEADER_FMT, magic, 1, 8, 4096, creator_pid, 0)
                    + b"\0" * 64)
        return path

    def test_live_creator_is_kept(self):
        path = self.segment("aba.live.0", os.getpid())
        result = run_tool(self.shm_dir)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("keep aba.live.0", result.stdout)
        self.assertTrue(os.path.exists(path))

    def test_dead_creator_is_swept(self):
        path = self.segment("aba.dead.0", dead_pid())
        result = run_tool(self.shm_dir)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("swept aba.dead.0", result.stdout)
        self.assertFalse(os.path.exists(path))

    def test_dry_run_reports_but_keeps(self):
        path = self.segment("aba.dead.1", dead_pid())
        result = run_tool(self.shm_dir, "--dry-run")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("would sweep aba.dead.1", result.stdout)
        self.assertTrue(os.path.exists(path))

    def test_short_file_is_skipped(self):
        path = os.path.join(self.shm_dir, "aba.short.0")
        with open(path, "wb") as f:
            f.write(b"tiny")
        result = run_tool(self.shm_dir)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("too short", result.stdout)
        self.assertTrue(os.path.exists(path))

    def test_wrong_magic_is_skipped(self):
        path = self.segment("aba.foreign.0", dead_pid(), magic=0xDEADBEEF)
        result = run_tool(self.shm_dir)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("magic mismatch", result.stdout)
        self.assertTrue(os.path.exists(path))

    def test_non_prefixed_files_are_ignored(self):
        path = self.segment("other.dead.0", dead_pid())
        result = run_tool(self.shm_dir)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertNotIn("other.dead.0", result.stdout)
        self.assertTrue(os.path.exists(path))

    def test_empty_dir_reports_nothing_to_sweep(self):
        result = run_tool(self.shm_dir)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("nothing to sweep", result.stdout)


if __name__ == "__main__":
    unittest.main()
